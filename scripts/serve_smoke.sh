#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the dprofiled ingestion service
# through the real binaries: save an analysis, start the daemon, push
# profiles with dprun, query every endpoint, then prove both a graceful
# restart (SIGTERM drain) and an unclean one (SIGKILL + WAL replay)
# preserve the aggregate exactly. Run via `make serve-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP" ./cmd/dprofiled ./cmd/dprun
"$TMP/dprun" -save "$TMP/app.dpa" -record /dev/null testdata/recursion.mv >/dev/null

start_daemon() {
  : >"$TMP/stdout"
  "$TMP/dprofiled" -data "$TMP/data" -analysis "app=$TMP/app.dpa" \
    -addr 127.0.0.1:0 -drain-timeout 5s >"$TMP/stdout" 2>"$TMP/stderr" &
  PID=$!
  disown "$PID" # keep bash job control from narrating the SIGKILL below
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(awk '/listening on/ {print $NF}' "$TMP/stdout")"
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "serve-smoke: daemon did not start" >&2
    cat "$TMP/stderr" >&2
    exit 1
  fi
  URL="http://$ADDR"
}

records_now() {
  curl -fsS "$URL/healthz" | sed -E 's/.*"records":([0-9]+).*/\1/'
}

wait_dead() {
  for _ in $(seq 1 100); do
    kill -0 "$1" 2>/dev/null || return 0
    sleep 0.1
  done
  echo "serve-smoke: pid $1 would not die" >&2
  exit 1
}

start_daemon

# Two pushes from the agent side, different seeds so counts differ.
"$TMP/dprun" -push "$URL" -runs 4 testdata/recursion.mv
"$TMP/dprun" -push "$URL" -runs 2 -seed 7 testdata/recursion.mv

# Every query endpoint answers with real content.
curl -fsS "$URL/healthz" | grep -q '"name":"app"'
curl -fsS "$URL/top?tenant=app&n=5" | grep -q '"context"'
curl -fsS "$URL/metrics" | grep -q '^dp_server_batches_total'
BATCHES="$(curl -fsS "$URL/metrics" | awk '/^dp_server_batches_total/ {print $2}')"
[ "$BATCHES" -ge 2 ] || { echo "serve-smoke: expected >=2 ingested batches, got $BATCHES" >&2; exit 1; }
BEFORE="$(records_now)"
[ "$BEFORE" -gt 0 ] || { echo "serve-smoke: no records ingested" >&2; exit 1; }

# Graceful restart: SIGTERM drains and snapshots; totals must survive.
kill -TERM "$PID"
wait_dead "$PID"
grep -q "stopped" "$TMP/stderr" || { echo "serve-smoke: no clean-shutdown log" >&2; cat "$TMP/stderr" >&2; exit 1; }
start_daemon
AFTER_TERM="$(records_now)"
[ "$AFTER_TERM" = "$BEFORE" ] || { echo "serve-smoke: graceful restart lost records: $BEFORE -> $AFTER_TERM" >&2; exit 1; }

# Unclean restart: push more, SIGKILL mid-life, WAL replay must recover
# every acked record.
"$TMP/dprun" -push "$URL" -runs 3 -seed 42 testdata/recursion.mv
BEFORE_KILL="$(records_now)"
kill -9 "$PID"
wait_dead "$PID"
start_daemon
AFTER_KILL="$(records_now)"
[ "$AFTER_KILL" = "$BEFORE_KILL" ] || { echo "serve-smoke: SIGKILL lost records: $BEFORE_KILL -> $AFTER_KILL" >&2; exit 1; }

kill -TERM "$PID"
wait_dead "$PID"
PID=""
echo "serve-smoke: OK ($AFTER_KILL records survived SIGTERM and SIGKILL restarts)"
