package deltapath_test

import (
	"errors"
	"strings"
	"testing"

	"deltapath"
)

const chaosAPIProgram = `
entry Main.main
class Main {
  method main {
    load X
    loop 12 { call Main.work; vcall Shape.area }
    call Main.rec
    emit top
  }
  method work { vcall Shape.area; emit w }
  method rec { rcall 6 Main.rec; emit r }
}
class Shape { method area { emit s } }
class Circle extends Shape { method area { call Shape.area; emit c } }
class Square extends Shape { method area { emit q } }
dynamic class X extends Shape { method area { call Shape.area; emit x } }
`

// TestSessionChaosEndToEnd drives the public fault-injection surface the
// way cmd/dprun does: enable chaos on a session, run, and require that
// every captured context still decodes to a well-formed calling context
// while the health counters report the faults and repairs.
func TestSessionChaosEndToEnd(t *testing.T) {
	prog, err := deltapath.ParseProgram(chaosAPIProgram)
	if err != nil {
		t.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sawFaults := false
	sawResyncs := false
	for seed := uint64(0); seed < 20 && !(sawFaults && sawResyncs); seed++ {
		sess, err := an.NewSession(seed)
		if err != nil {
			t.Fatal(err)
		}
		sess.EnableChaos(deltapath.ChaosOptions{Seed: seed, Rate: 0.05})
		contexts, err := sess.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(contexts) == 0 {
			t.Fatal("no contexts captured")
		}
		for _, c := range contexts {
			names, err := an.Decode(c)
			if err != nil {
				if strings.Contains(err.Error(), "outside the analysed") {
					continue // emit inside the dynamic class: not encoded
				}
				t.Fatalf("seed %d: captured context undecodable: %v", seed, err)
			}
			if len(names) == 0 {
				t.Fatalf("seed %d: empty decoded context", seed)
			}
			// Best-effort decode must agree on a healthy context.
			be, complete, err := an.DecodeBestEffort(c)
			if err != nil || !complete {
				t.Fatalf("seed %d: best-effort disagrees: complete=%v err=%v", seed, complete, err)
			}
			if strings.Join(be, ">") != strings.Join(names, ">") {
				t.Fatalf("seed %d: best-effort decode differs: %v vs %v", seed, be, names)
			}
		}
		h := sess.Health()
		if h.ProbeEvents == 0 {
			t.Fatalf("seed %d: injector saw no probe events", seed)
		}
		if h.FaultsInjected > 0 {
			sawFaults = true
		}
		if h.Resyncs > 0 {
			sawResyncs = true
			if h.CorruptionsDetected == 0 {
				t.Fatalf("seed %d: resyncs without detections: %+v", seed, h)
			}
		}
	}
	if !sawFaults {
		t.Fatal("no seed injected any fault at rate 0.05")
	}
	if !sawResyncs {
		t.Fatal("no seed exercised the resync path")
	}
}

// TestHealthZeroWithoutChaos pins the default: a plain session reports
// all-zero health counters.
func TestHealthZeroWithoutChaos(t *testing.T) {
	prog, err := deltapath.ParseProgram(chaosAPIProgram)
	if err != nil {
		t.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := an.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(nil); err != nil {
		t.Fatal(err)
	}
	if h := sess.Health(); h != (deltapath.Health{}) {
		t.Fatalf("health moved without chaos: %+v", h)
	}
}

// TestSentinelErrorsExported pins the re-exported sentinels: a corrupt
// record must classify via errors.Is against the package-level errors, and
// the best-effort path must salvage it instead.
func TestSentinelErrorsExported(t *testing.T) {
	prog, err := deltapath.ParseProgram(chaosAPIProgram)
	if err != nil {
		t.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	contexts, err := an.Run(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec []byte
	for _, c := range contexts {
		if r, err := c.MarshalBinary(); err == nil && c.ID() > 0 {
			rec = r
			break
		}
	}
	if rec == nil {
		t.Skip("no captured context with a nonzero ID to corrupt")
	}
	if _, err := an.DecodeBytes(rec); err != nil {
		t.Fatalf("intact record undecodable: %v", err)
	}
	// Scan byte corruptions until one produces a typed decode failure.
	sawTyped := false
	for i := range rec {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), rec...)
			bad[i] ^= 1 << bit
			_, err := an.DecodeBytes(bad)
			if err == nil {
				continue
			}
			if errors.Is(err, deltapath.ErrCorruptEncoding) ||
				errors.Is(err, deltapath.ErrNoMatchingEdge) ||
				errors.Is(err, deltapath.ErrResidualID) {
				sawTyped = true
				names, _, berr := an.DecodeBytesBestEffort(bad)
				if berr != nil {
					// Structurally unreadable records are allowed to fail
					// even best-effort; only readable ones must salvage.
					continue
				}
				if len(names) == 0 {
					t.Fatalf("best-effort salvage returned nothing for %v", err)
				}
			}
		}
	}
	if !sawTyped {
		t.Fatal("no single-bit corruption produced a typed decode error")
	}
}
