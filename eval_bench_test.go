// Benchmarks over internal/eval's table generators. These live in the
// external test package: internal/eval imports the root package for the
// extend experiment, so an in-package test importing eval would form a
// cycle.
package deltapath_test

import (
	"testing"

	"deltapath/internal/eval"
	"deltapath/internal/workload"
)

// evalBenchSubset mirrors benchSubset in bench_test.go: a small program, a
// large >64-bit one (anchors), and a large application.
func evalBenchSubset(b *testing.B) []workload.Params {
	b.Helper()
	var out []workload.Params
	for _, name := range []string{"compress", "crypto.aes", "xml.validation"} {
		p, ok := workload.ByName(name)
		if !ok {
			b.Fatalf("missing benchmark %s", name)
		}
		out = append(out, p)
	}
	return out
}

// BenchmarkTable1StaticAnalysis measures the full static pipeline per
// benchmark program: generation, call-graph construction (both settings),
// space estimation, and Algorithm 2 with anchor insertion.
func BenchmarkTable1StaticAnalysis(b *testing.B) {
	for _, p := range evalBenchSubset(b) {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := eval.Table1([]workload.Params{p})
				if err != nil {
					b.Fatal(err)
				}
				if rows[0].All.Nodes == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkTable2Collection measures the context-collection pass (DeltaPath
// with CPT, statistics, decode audit) that generates Table 2 rows.
func BenchmarkTable2Collection(b *testing.B) {
	for _, p := range evalBenchSubset(b) {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := eval.Table2([]workload.Params{p}, 0.05)
				if err != nil {
					b.Fatal(err)
				}
				if rows[0].DecodeErrors != 0 {
					b.Fatalf("%d decode errors", rows[0].DecodeErrors)
				}
			}
		})
	}
}
