package deltapath

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// mustParse parses src or fails the test.
func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// readTestdata reads a corpus file or fails the test.
func readTestdata(t *testing.T, path string) string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// dynloadSrc reads the corpus program of Figure 6: a dynamic class Ext joins
// the Base.op dispatch mid-run, so epoch 0 pays a hazard push every time a
// vcall lands in Ext.op.
func dynloadSrc(t *testing.T) string {
	t.Helper()
	return readTestdata(t, "testdata/dynload.mv")
}

// TestExtendAbsorbsDynamicClass is the tentpole acceptance scenario: after
// absorbing Ext, steady-state runs of dynload.mv pay zero hazard pushes
// (epoch 0 pays one per dispatch into Ext) and contexts through Ext decode
// exactly, with no gaps.
func TestExtendAbsorbsDynamicClass(t *testing.T) {
	prog := mustParse(t, dynloadSrc(t))
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := an.Epoch(); got != 0 {
		t.Fatalf("fresh analysis at epoch %d, want 0", got)
	}

	// Epoch 0: some seed must dispatch into Ext and pay hazards.
	var hazardsBefore uint64
	for seed := uint64(0); seed < 8; seed++ {
		s, err := an.NewSession(seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(nil); err != nil {
			t.Fatal(err)
		}
		hazardsBefore += s.Hazards()
	}
	if hazardsBefore == 0 {
		t.Fatal("no seed dispatched into the dynamic class at epoch 0 — the scenario tests nothing")
	}

	stats, err := an.Extend("Ext")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 1 {
		t.Fatalf("Extend published epoch %d, want 1", stats.Epoch)
	}
	if len(stats.NewClasses) != 1 || stats.NewClasses[0] != "Ext" {
		t.Fatalf("Extend absorbed %v, want [Ext]", stats.NewClasses)
	}
	if got := an.Epoch(); got != 1 {
		t.Fatalf("analysis at epoch %d after Extend, want 1", got)
	}
	if got := an.Absorbed(); len(got) != 1 || got[0] != "Ext" {
		t.Fatalf("Absorbed() = %v, want [Ext]", got)
	}
	if err := an.VerifyEncoding(); err != nil {
		t.Fatalf("extended encoding fails verification: %v", err)
	}

	// Post-extend steady state: zero hazards on every seed, and Ext frames
	// decode by name.
	sawExt := false
	for seed := uint64(0); seed < 8; seed++ {
		s, err := an.NewSession(seed)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Epoch(); got != 1 {
			t.Fatalf("new session pinned epoch %d, want 1", got)
		}
		contexts, err := s.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if h := s.Hazards(); h != 0 {
			t.Fatalf("seed %d: %d hazard pushes after absorbing Ext, want 0", seed, h)
		}
		for _, c := range contexts {
			names, err := an.Decode(c)
			if err != nil {
				t.Fatalf("seed %d: decode at %s: %v", seed, c.At, err)
			}
			for _, n := range names {
				if n == "..." {
					t.Fatalf("seed %d: gap in post-extend context %v", seed, names)
				}
				if strings.HasPrefix(n, "Ext.") {
					sawExt = true
				}
			}
		}
	}
	if !sawExt {
		t.Fatal("no post-extend context ran through Ext")
	}
}

// TestExtendEpochPinning certifies the immutability contract: contexts and
// profiles captured at epoch 0 decode unchanged — against their own epoch —
// after the analysis moves on.
func TestExtendEpochPinning(t *testing.T) {
	prog := mustParse(t, dynloadSrc(t))
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p0 := an.NewProfile(0)
	var oldContexts []Context
	var oldDecodes []string
	for seed := uint64(0); seed < 4; seed++ {
		contexts, err := an.Run(seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range contexts {
			if c.Epoch() != 0 {
				t.Fatalf("epoch-0 context reports epoch %d", c.Epoch())
			}
			if !c.known {
				continue // emits inside unabsorbed Ext are not decodable at epoch 0
			}
			names, err := an.Decode(c)
			if err != nil {
				t.Fatal(err)
			}
			oldContexts = append(oldContexts, c)
			oldDecodes = append(oldDecodes, strings.Join(names, " > "))
			p0.Add(c)
		}
	}
	var dpp0 bytes.Buffer
	if err := p0.Save(&dpp0); err != nil {
		t.Fatal(err)
	}
	reportBefore, err := an.DecodeProfile(bytes.NewReader(dpp0.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}

	digest0 := an.GraphDigest()
	if _, err := an.Extend("Ext"); err != nil {
		t.Fatal(err)
	}
	if an.GraphDigest() == digest0 {
		t.Fatal("extension did not change the graph digest")
	}

	// Old contexts decode identically against their pinned epoch.
	for i, c := range oldContexts {
		names, err := an.Decode(c)
		if err != nil {
			t.Fatalf("epoch-0 context no longer decodes: %v", err)
		}
		if got := strings.Join(names, " > "); got != oldDecodes[i] {
			t.Fatalf("epoch-0 context decode changed:\n  before: %s\n  after:  %s", oldDecodes[i], got)
		}
	}
	// The epoch-0 profile still routes to epoch 0 and yields the same report.
	reportAfter, err := an.DecodeProfile(bytes.NewReader(dpp0.Bytes()), 4)
	if err != nil {
		t.Fatalf("epoch-0 profile refused after extension: %v", err)
	}
	if len(reportAfter.Rows) != len(reportBefore.Rows) {
		t.Fatalf("epoch-0 report changed: %d rows vs %d", len(reportAfter.Rows), len(reportBefore.Rows))
	}
	for i := range reportBefore.Rows {
		if reportBefore.Rows[i] != reportAfter.Rows[i] {
			t.Fatalf("epoch-0 report row %d changed: %+v vs %+v", i, reportBefore.Rows[i], reportAfter.Rows[i])
		}
	}

	// A fresh profile pins epoch 1 and refuses epoch-0 contexts.
	p1 := an.NewProfile(0)
	if p1.Epoch() != 1 {
		t.Fatalf("new profile at epoch %d, want 1", p1.Epoch())
	}
	if p1.Add(oldContexts[0]) {
		t.Fatal("epoch-1 profile accepted an epoch-0 context")
	}
	if p1.Skipped() != 1 {
		t.Fatalf("cross-epoch add not counted as skipped: %d", p1.Skipped())
	}
}

// TestExtendIdempotentAndClosure: re-absorbing is a no-op, and absorbing a
// subclass pulls in its dynamic superclass automatically.
func TestExtendIdempotentAndClosure(t *testing.T) {
	src := `
entry E.main
class E {
  method main { call E.go; load Mid; load Leaf; loop 2 { vcall R.op }; emit end }
  method go { vcall R.op }
}
class R { method op { emit rop } }
dynamic class Mid extends R { method op { call E.go2; emit mid } }
dynamic class Leaf extends Mid { method op { emit leaf } }
`
	// E.go2 does not exist; fix the body to something valid.
	src = strings.Replace(src, "call E.go2; ", "", 1)
	prog := mustParse(t, src)
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := an.Extend("Leaf")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"Mid", "Leaf"}; strings.Join(stats.NewClasses, ",") != strings.Join(want, ",") {
		t.Fatalf("super-closure absorbed %v, want %v", stats.NewClasses, want)
	}
	if stats.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", stats.Epoch)
	}
	// Idempotent: same classes again, no new epoch.
	again, err := an.Extend("Leaf", "Mid")
	if err != nil {
		t.Fatal(err)
	}
	if again.Epoch != 1 || len(again.NewClasses) != 0 {
		t.Fatalf("re-absorb published epoch %d with %v, want no-op at 1", again.Epoch, again.NewClasses)
	}
	// Absorbing a static class is likewise a no-op.
	static, err := an.Extend("R")
	if err != nil {
		t.Fatal(err)
	}
	if static.Epoch != 1 || len(static.NewClasses) != 0 {
		t.Fatalf("absorbing a static class published epoch %d with %v", static.Epoch, static.NewClasses)
	}
	if err := an.VerifyEncoding(); err != nil {
		t.Fatal(err)
	}
}

// TestExtendRejections: the incompatible modes and unknown classes fail
// loudly, and a failed Extend leaves the current epoch in place.
func TestExtendRejections(t *testing.T) {
	prog := mustParse(t, dynloadSrc(t))

	rta, err := Analyze(prog, Options{GraphBuilder: GraphRTA})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rta.Extend("Ext"); err == nil {
		t.Fatal("Extend accepted under the RTA graph builder")
	}

	pruned, err := Analyze(prog, Options{TargetMethods: []string{"Sink.accept"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pruned.Extend("Ext"); err == nil {
		t.Fatal("Extend accepted under a pruned encoding")
	}

	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Extend("NoSuchClass"); err == nil {
		t.Fatal("Extend accepted an unknown class")
	}
	if got := an.Epoch(); got != 0 {
		t.Fatalf("failed Extend moved the epoch to %d", got)
	}
	if _, err := an.Extend("Ext"); err != nil {
		t.Fatalf("valid Extend after a failed one: %v", err)
	}
}

// TestSessionAdoptMidRun moves a running session to a new epoch from inside
// an OnEmit callback: the encoding state is rebuilt from the VM stack, and
// every subsequent context decodes exactly under the new epoch.
func TestSessionAdoptMidRun(t *testing.T) {
	prog := mustParse(t, dynloadSrc(t))
	for seed := uint64(0); seed < 8; seed++ {
		an, err := Analyze(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := an.NewSession(seed)
		if err != nil {
			t.Fatal(err)
		}
		extended := false
		type ev struct {
			c     Context
			stack []MethodRef
		}
		var events []ev
		if _, err := s.Run(func(c Context) {
			events = append(events, ev{c: c, stack: append([]MethodRef(nil), s.VM().Stack()...)})
			if !extended && s.VM().Loaded("Ext") {
				extended = true
				if _, err := an.Extend("Ext"); err != nil {
					t.Errorf("mid-run Extend: %v", err)
					return
				}
				if !s.Adopt() {
					t.Error("Adopt reported no move after Extend")
				}
				if got := s.Epoch(); got != 1 {
					t.Errorf("session at epoch %d after Adopt, want 1", got)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		if !extended {
			continue // this seed never loaded Ext
		}
		// Every context decodes against its own epoch, gap-free once Ext is
		// absorbed, and matches the VM's ground-truth stack.
		for _, e := range events {
			if !e.c.known {
				// Emits inside Ext before absorption are legitimately
				// outside the analysed program.
				continue
			}
			names, err := an.Decode(e.c)
			if err != nil {
				t.Fatalf("seed %d: decode epoch-%d context at %s: %v", seed, e.c.Epoch(), e.c.At, err)
			}
			analysed := func(m MethodRef) bool {
				_, ok := e.c.ep.build.NodeOf[m]
				return ok
			}
			want := renderStack(e.stack, analysed)
			if got := strings.Join(names, " > "); got != want {
				t.Fatalf("seed %d: epoch-%d context decodes to\n  %s\nVM stack says\n  %s", seed, e.c.Epoch(), got, want)
			}
		}
	}
}

// renderStack renders a ground-truth VM stack the way a decode should read:
// analysed frames by name, each maximal run of unanalysed frames as one gap.
func renderStack(stack []MethodRef, analysed func(MethodRef) bool) string {
	var out []string
	inGap := false
	for _, m := range stack {
		if analysed(m) {
			out = append(out, m.String())
			inGap = false
		} else if !inGap {
			out = append(out, "...")
			inGap = true
		}
	}
	return strings.Join(out, " > ")
}

// TestSaveAnalysisEpoch round-trips the epoch id through the .dpa format.
func TestSaveAnalysisEpoch(t *testing.T) {
	prog := mustParse(t, dynloadSrc(t))
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var v0 bytes.Buffer
	if err := an.SaveAnalysis(&v0); err != nil {
		t.Fatal(err)
	}
	d0, err := LoadDecoder(bytes.NewReader(v0.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d0.Epoch() != 0 {
		t.Fatalf("epoch-0 analysis loads as epoch %d", d0.Epoch())
	}

	if _, err := an.Extend("Ext"); err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := an.SaveAnalysis(&v1); err != nil {
		t.Fatal(err)
	}
	d1, err := LoadDecoder(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Epoch() != 1 {
		t.Fatalf("epoch-1 analysis loads as epoch %d", d1.Epoch())
	}
	if err := d1.CheckAnalysis(an); err != nil {
		t.Fatalf("persisted epoch-1 analysis mismatches the live one: %v", err)
	}
	// The persisted epoch decodes an epoch-1 run end to end.
	contexts, err := an.Run(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range contexts {
		rec, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		live, err := an.Decode(c)
		if err != nil {
			t.Fatal(err)
		}
		offline, err := d1.DecodeBytes(rec)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(live, ">") != strings.Join(offline, ">") {
			t.Fatalf("offline decode %v differs from live %v", offline, live)
		}
	}
}

// TestExtendVerifyDeltaGate pins the incremental soundness gate: the first
// Extend has no predecessor certificate (epoch 0 publishes unverified) and
// proves the whole graph; every later Extend proves incrementally against
// the previous epoch's certificate and reports real reuse counters.
func TestExtendVerifyDeltaGate(t *testing.T) {
	src := `
entry E.main
class E {
  method main { call E.go; load Mid; load Leaf; loop 2 { vcall R.op }; emit end }
  method go { vcall R.op }
}
class R { method op { emit rop } }
dynamic class Mid extends R { method op { emit mid } }
dynamic class Leaf extends Mid { method op { emit leaf } }
`
	prog := mustParse(t, src)
	an, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := an.Extend("Mid")
	if err != nil {
		t.Fatal(err)
	}
	if first.VerifyDelta {
		t.Fatal("first Extend claims a delta proof: epoch 0 has no certificate")
	}
	if first.TotalTerritories == 0 || first.DirtyTerritories != first.TotalTerritories {
		t.Fatalf("full gate should prove every territory: %d/%d",
			first.DirtyTerritories, first.TotalTerritories)
	}
	second, err := an.Extend("Leaf")
	if err != nil {
		t.Fatal(err)
	}
	if !second.VerifyDelta {
		t.Fatal("second Extend fell back to a full proof: certificate went stale on a genuine delta")
	}
	if second.TotalTerritories == 0 {
		t.Fatal("delta gate reported no territories")
	}
	if second.DirtyTerritories > second.TotalTerritories {
		t.Fatalf("dirty %d > total %d", second.DirtyTerritories, second.TotalTerritories)
	}
	if second.ObligationsChecked > second.ObligationsTotal {
		t.Fatalf("obligations checked %d > total %d",
			second.ObligationsChecked, second.ObligationsTotal)
	}
	if second.VerifyNs <= 0 {
		t.Fatal("verify wall time not recorded")
	}
	if err := an.VerifyEncoding(); err != nil {
		t.Fatal(err)
	}
}
