package deltapath

import (
	"io"

	"deltapath/internal/obs"
)

// This file is the public surface of the runtime observability layer
// (internal/obs): per-analysis metrics and an optional event tracer, both
// off by default. Disabled, every hook in the stack is a nil-pointer no-op
// — the before/after benchmark in hotpath_bench_test.go holds the encode
// hot path to within 2% of the un-instrumented baseline. Enabled, every
// session, decoder, and profile created from the analysis feeds one shared
// registry.

// Metrics is a read handle on an analysis's metric registry. The zero
// value (and the handle of an analysis that never called EnableMetrics)
// is empty but safe: Snapshot returns an empty map and the writers write
// an empty document.
type Metrics struct {
	reg *obs.Registry
}

// Snapshot returns every metric as a flat name→value map. Histograms
// contribute name_count and name_sum entries.
func (m Metrics) Snapshot() map[string]uint64 { return m.reg.Snapshot() }

// Value returns one metric by canonical name (see DESIGN.md §11 for the
// table), 0 if it was never registered.
func (m Metrics) Value(name string) uint64 { return m.reg.Snapshot()[name] }

// WriteJSON writes the metrics as one flat, name-sorted JSON document.
func (m Metrics) WriteJSON(w io.Writer) error { return m.reg.WriteJSON(w) }

// WritePrometheus writes the metrics in Prometheus text exposition format.
func (m Metrics) WritePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

// TraceEvent is one record of the event tracer, decoded for presentation.
type TraceEvent struct {
	// Seq is the global 1-based sequence number; gaps show how many
	// records the ring overwrote.
	Seq uint64
	// Time is the capture time in Unix nanoseconds.
	Time int64
	// Kind names the event ("call", "anchor-push", "ucp-push", ...).
	Kind string
	// Site is the program point: a call-site label or graph node id,
	// depending on Kind.
	Site uint64
	// Context is the encoding ID in flight at the event.
	Context uint64
}

// EnableMetrics switches the analysis's observability on: sessions,
// decoders, and profiles created afterwards (and the shared decoder used
// by Decode/DecodeProfile) resolve their hooks against one registry.
// Idempotent; call it before creating sessions. The static shape of the
// analysis — graph size, anchors, encoding-space requirement, CPT set
// counts — is published as gauges immediately.
func (a *Analysis) EnableMetrics() {
	a.obsMu.Lock()
	if a.obsReg != nil {
		a.obsMu.Unlock()
		return
	}
	a.obsReg = obs.NewRegistry()
	a.obsMu.Unlock()
	a.epochGauges(a.epoch())
}

// epochGauges republishes the static-shape gauges for an epoch — called at
// EnableMetrics and again at every successful Extend, so the gauges always
// describe the current epoch. No-op while metrics are off. Extend already
// holds epochMu; only obsMu is taken here.
func (a *Analysis) epochGauges(e *epochState) {
	a.obsMu.Lock()
	reg := a.obsReg
	a.obsMu.Unlock()
	if reg == nil {
		return
	}
	reg.Gauge(obs.MetricGraphNodes).Set(uint64(e.build.Graph.NumNodes()))
	reg.Gauge(obs.MetricGraphEdges).Set(uint64(e.build.Graph.NumEdges()))
	reg.Gauge(obs.MetricAnchors).Set(uint64(len(e.result.Spec.Anchors)))
	reg.Gauge(obs.MetricMaxID).Set(e.result.MaxID)
	if e.plan.CPT != nil {
		e.plan.CPT.Observe(reg)
	}
	e.decoder.Observe(reg)
}

// EnableTracing attaches a fixed-size lock-free ring buffer tracer that
// keeps the most recent capacity events (rounded up to a power of two;
// <= 0 selects the default, 4096). It implies EnableMetrics. Idempotent;
// call it before creating sessions.
func (a *Analysis) EnableTracing(capacity int) {
	a.EnableMetrics()
	a.obsMu.Lock()
	defer a.obsMu.Unlock()
	if a.tracer == nil {
		a.tracer = obs.NewTracer(capacity)
		a.obsReg.SetTracer(a.tracer)
	}
}

// Metrics returns the analysis's metric handle. Valid — but empty — when
// EnableMetrics was never called.
func (a *Analysis) Metrics() Metrics {
	a.obsMu.Lock()
	defer a.obsMu.Unlock()
	return Metrics{reg: a.obsReg}
}

// TraceEvents returns the tracer ring's current contents, oldest first
// (nil when EnableTracing was never called). Records still being written
// by concurrent sessions are skipped, never misreported.
func (a *Analysis) TraceEvents() []TraceEvent {
	a.obsMu.Lock()
	tr := a.tracer
	a.obsMu.Unlock()
	if tr == nil {
		return nil
	}
	events := tr.Events()
	out := make([]TraceEvent, len(events))
	for i, ev := range events {
		out[i] = TraceEvent{
			Seq:     ev.Seq,
			Time:    ev.Time,
			Kind:    ev.Kind.String(),
			Site:    ev.Site,
			Context: ev.Context,
		}
	}
	return out
}

// WriteTrace dumps the tracer ring as one "seq=… t=… kind=… site=… ctx=…"
// line per record, oldest first — the dprun -trace output.
func (a *Analysis) WriteTrace(w io.Writer) error {
	a.obsMu.Lock()
	tr := a.tracer
	a.obsMu.Unlock()
	return tr.Dump(w)
}

// observability returns the registry and tracer a new component should
// resolve its hooks from (both nil when metrics are off).
func (a *Analysis) observability() (*obs.Registry, *obs.Tracer) {
	a.obsMu.Lock()
	defer a.obsMu.Unlock()
	return a.obsReg, a.tracer
}
