// Package cct implements dynamic calling context trees — the related-work
// representation the paper positions encoding against (Section 7, citing
// Ammons et al. and Zhuang et al.): every distinct calling context is a
// tree node, maintained eagerly as the program runs by moving a cursor down
// on calls and up on returns.
//
// A CCT answers the same queries as an encoding (what is the current
// context? how often did each context occur?) but trades the encoding's
// O(1)-integer state for a pointer into a tree that must be kept in sync at
// every call and return, and whose size is the number of distinct contexts.
// BenchmarkAblationCCT quantifies the trade against DeltaPath on the same
// workloads.
package cct

import (
	"fmt"
	"sort"
	"strings"

	"deltapath/internal/minivm"
)

// Node is one calling context: the path from the root to this node.
type Node struct {
	// Frame is the method of this node.
	Frame minivm.MethodRef
	// Count is how many times this exact context was current at a query
	// point.
	Count uint64
	// Calls is how many times this context was entered.
	Calls uint64

	parent   *Node
	children map[minivm.SiteRef]*Node
}

// Child returns the child reached by calling target from the given site,
// or nil.
func (n *Node) Child(site minivm.SiteRef, target minivm.MethodRef) *Node {
	c := n.children[site]
	if c != nil && c.Frame == target {
		return c
	}
	return nil
}

// Path returns the context from the root to n.
func (n *Node) Path() []minivm.MethodRef {
	var out []minivm.MethodRef
	for cur := n; cur != nil; cur = cur.parent {
		out = append(out, cur.Frame)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Tree is a calling context tree rooted at the program entry.
type Tree struct {
	root  *Node
	nodes int

	cursor *Node
}

// New creates a tree rooted at the entry method.
func New(entry minivm.MethodRef) *Tree {
	root := &Node{Frame: entry, children: make(map[minivm.SiteRef]*Node)}
	return &Tree{root: root, nodes: 1, cursor: root}
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Cursor returns the node for the current context.
func (t *Tree) Cursor() *Node { return t.cursor }

// Nodes reports the number of distinct contexts materialized.
func (t *Tree) Nodes() int { return t.nodes }

// MaxDepth reports the deepest context (root = depth 1).
func (t *Tree) MaxDepth() int {
	var walk func(n *Node, d int) int
	walk = func(n *Node, d int) int {
		max := d
		for _, c := range n.children {
			if v := walk(c, d+1); v > max {
				max = v
			}
		}
		return max
	}
	return walk(t.root, 1)
}

// Mark counts the current context as observed at a query point (the CCT
// analog of recording an encoding at an emit).
func (t *Tree) Mark() { t.cursor.Count++ }

// BeforeCall implements minivm.Probes: descend, creating the child if this
// context is new. This is the eager maintenance cost the paper's encodings
// avoid: a map access and possible allocation at every call.
func (t *Tree) BeforeCall(site minivm.SiteRef, target minivm.MethodRef) uint8 {
	child := t.cursor.children[site]
	if child == nil || child.Frame != target {
		// Virtual sites can reach different targets from one site; keep
		// one child per (site, target). For the common monomorphic case
		// the single map entry suffices; otherwise chain by synthetic
		// site labels derived from the target.
		key := site
		if child != nil {
			key = minivm.SiteRef{In: site.In, Site: site.Site ^ int32(hashRef(target))}
			child = t.cursor.children[key]
		}
		if child == nil || child.Frame != target {
			child = &Node{
				Frame:    target,
				parent:   t.cursor,
				children: make(map[minivm.SiteRef]*Node),
			}
			t.cursor.children[key] = child
			t.nodes++
		}
	}
	child.Calls++
	t.cursor = child
	return 0
}

// AfterCall implements minivm.Probes: ascend.
func (t *Tree) AfterCall(minivm.SiteRef, minivm.MethodRef, uint8) {
	if t.cursor.parent != nil {
		t.cursor = t.cursor.parent
	}
}

// Enter implements minivm.Probes (the CCT moves at calls, not entries).
func (t *Tree) Enter(minivm.MethodRef) uint8 { return 0 }

// Exit implements minivm.Probes.
func (t *Tree) Exit(minivm.MethodRef, uint8) {}

// hashRef is a tiny stable hash for disambiguating dispatch targets.
func hashRef(m minivm.MethodRef) uint32 {
	h := uint32(2166136261)
	for _, b := range []byte(m.Class) {
		h = (h ^ uint32(b)) * 16777619
	}
	for _, b := range []byte(m.Method) {
		h = (h ^ uint32(b)) * 16777619
	}
	return h | 1<<16 // never zero, keep labels distinct from real sites
}

// Hot returns the n contexts with the highest Count, most frequent first.
func (t *Tree) Hot(n int) []*Node {
	var all []*Node
	var walk func(*Node)
	walk = func(node *Node) {
		if node.Count > 0 {
			all = append(all, node)
		}
		for _, c := range node.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return fmt.Sprint(all[i].Path()) < fmt.Sprint(all[j].Path())
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Render returns an indented textual dump (depth-first, sorted by frame
// name for determinism), for debugging and golden tests.
func (t *Tree) Render() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", depth), n.Frame)
		if n.Count > 0 {
			fmt.Fprintf(&b, " ×%d", n.Count)
		}
		b.WriteByte('\n')
		kids := make([]*Node, 0, len(n.children))
		for _, c := range n.children {
			kids = append(kids, c)
		}
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Frame != kids[j].Frame {
				return kids[i].Frame.String() < kids[j].Frame.String()
			}
			return kids[i].Calls > kids[j].Calls
		})
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}

// BeginTask implements minivm.TaskProbes: a new task's contexts hang off
// the root (the tree becomes a forest rooted at the virtual root).
func (t *Tree) BeginTask(minivm.MethodRef) { t.cursor = t.root }

var _ minivm.Probes = (*Tree)(nil)
var _ minivm.TaskProbes = (*Tree)(nil)
