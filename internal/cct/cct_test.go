package cct

import (
	"strings"
	"testing"

	"deltapath/internal/lang"
	"deltapath/internal/minivm"
	"deltapath/internal/stackwalk"
)

const src = `
entry A.main
class A {
  method main {
    loop 3 { call B.f }
    call B.g
    emit top
  }
}
class B {
  method f { call C.h; emit f }
  method g { call C.h; emit g }
}
class C { method h { emit h } }
`

func runTree(t *testing.T, seed uint64) (*Tree, int) {
	t.Helper()
	prog := lang.MustParse(src)
	vm, err := minivm.NewVM(prog, seed)
	if err != nil {
		t.Fatal(err)
	}
	tree := New(prog.Entry)
	vm.SetProbes(tree)
	walker := &stackwalk.Walker{}
	checked := 0
	vm.OnEmit = func(v *minivm.VM, _ minivm.MethodRef, _ string) {
		tree.Mark()
		// The cursor's path must equal the ground-truth stack.
		var got []string
		for _, f := range tree.Cursor().Path() {
			got = append(got, f.String())
		}
		want := stackwalk.Key(walker.Capture(v))
		if strings.Join(got, ">") != want {
			t.Fatalf("cursor path %v != stack %s", got, want)
		}
		checked++
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	return tree, checked
}

func TestCursorTracksStack(t *testing.T) {
	tree, checked := runTree(t, 1)
	if checked == 0 {
		t.Fatal("no emits checked")
	}
	if tree.Cursor() != tree.Root() {
		t.Fatal("cursor did not return to root")
	}
}

func TestNodeCounts(t *testing.T) {
	tree, _ := runTree(t, 1)
	// Distinct contexts: A; A>B.f; A>B.f>C.h; A>B.g; A>B.g>C.h = 5 nodes.
	if tree.Nodes() != 5 {
		t.Fatalf("nodes = %d, want 5:\n%s", tree.Nodes(), tree.Render())
	}
	if tree.MaxDepth() != 3 {
		t.Fatalf("max depth = %d, want 3", tree.MaxDepth())
	}
	hot := tree.Hot(2)
	if len(hot) != 2 {
		t.Fatalf("Hot(2) returned %d", len(hot))
	}
	// The loop runs B.f (and its C.h) three times: those are the hottest.
	if hot[0].Count != 3 {
		t.Fatalf("hottest count = %d, want 3\n%s", hot[0].Count, tree.Render())
	}
}

func TestRenderShape(t *testing.T) {
	tree, _ := runTree(t, 1)
	r := tree.Render()
	for _, frag := range []string{"A.main", "B.f", "B.g", "C.h", "×3"} {
		if !strings.Contains(r, frag) {
			t.Fatalf("render missing %q:\n%s", frag, r)
		}
	}
}

func TestVirtualDispatchSplitsChildren(t *testing.T) {
	prog := lang.MustParse(`
entry A.main
class A { method main { loop 8 { vcall S.go } emit top } }
class S { method go { emit s } }
class T extends S { method go { emit t } }
`)
	vm, err := minivm.NewVM(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	tree := New(prog.Entry)
	vm.SetProbes(tree)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	// One site, two dynamic targets: both contexts must exist.
	found := map[string]bool{}
	for _, n := range tree.Hot(100) {
		var parts []string
		for _, f := range n.Path() {
			parts = append(parts, f.String())
		}
		found[strings.Join(parts, ">")] = true
	}
	_ = found
	if tree.Nodes() != 3 { // root + S.go + T.go
		t.Fatalf("nodes = %d, want 3:\n%s", tree.Nodes(), tree.Render())
	}
}

func TestRecursionGrowsTree(t *testing.T) {
	prog := lang.MustParse(`
entry A.main
class A { method main { call A.r } method r { rcall 6 A.r; emit e } }
`)
	vm, err := minivm.NewVM(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree := New(prog.Entry)
	vm.SetProbes(tree)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	// Unlike encodings (constant state + stack), the CCT materializes one
	// node per recursion depth.
	if tree.MaxDepth() < 5 {
		t.Fatalf("recursive chain not materialized: depth %d\n%s", tree.MaxDepth(), tree.Render())
	}
}
