package workload

import (
	"fmt"
	"strconv"

	"deltapath/internal/callgraph"
)

// HugeParams describes a synthetic huge program in the 10⁵–10⁶ node range
// (the scalability tier: far past the SPECjvm2008-shaped suite, toward the
// Android-OS-scale graphs of arXiv:1602.03942). Unlike Params, which
// generates a minivm program, Build emits the call graph directly — at a
// million nodes the graph is the artifact under test, and bytecode for it
// would only burn memory.
//
// The shape is a layered DAG cut into segments by narrow hub waists:
//
//	entry → [seg 0: CutEvery layers] → cut 0 hubs → [seg 1] → cut 1 hubs → …
//
// Every cross-segment call routes through the hubs, and each cut's hubs
// form a mutual-recursion ring, so they are recursive-edge targets —
// anchors whose territories tile the segments. That bounds every anchor's
// territory to one segment and keeps the total CAV cell count at a small
// multiple of the node count, which is what makes million-node analysis
// tractable; it is also how real layered systems (drivers → services →
// framework → apps) behave. Recursion pockets (mutual 2-cycles) inside
// segments and virtual fan-out sites complete the paper's feature set at
// scale. Deterministic by Seed.
type HugeParams struct {
	Name string
	// Nodes is the approximate target node count; Build reports the exact
	// count via the graph.
	Nodes int
	// Layers is the number of normal (non-hub) layers. 0 → 48.
	Layers int
	// CutEvery is the number of normal layers per segment. 0 → 12.
	CutEvery int
	// CutHubs is the number of hub nodes per cut. 0 → 6.
	CutHubs int
	// MaxSpan is the maximum forward distance, in layers, of a call edge
	// (always clamped at the next cut). 0 → 3.
	MaxSpan int
	// SitesMin/SitesMax bound the call sites per interior node. 0 → 1/3.
	SitesMin, SitesMax int
	// VirtualFrac is the fraction of sites with FanOut dispatch targets
	// instead of one. 0 → 0.2 (set negative for none).
	VirtualFrac float64
	// FanOut is the dispatch-target count of a virtual site. 0 → 3.
	FanOut int
	// Pockets is the number of mutual-recursion 2-cycles per segment.
	// 0 → 2 (set negative for none).
	Pockets int
	Seed    uint64
}

func (p HugeParams) withDefaults() HugeParams {
	if p.Layers == 0 {
		p.Layers = 48
	}
	if p.CutEvery == 0 {
		p.CutEvery = 12
	}
	if p.CutHubs == 0 {
		p.CutHubs = 6
	}
	if p.MaxSpan == 0 {
		p.MaxSpan = 3
	}
	if p.SitesMin == 0 {
		p.SitesMin = 1
	}
	if p.SitesMax == 0 {
		p.SitesMax = 3
	}
	if p.VirtualFrac == 0 {
		p.VirtualFrac = 0.2
	}
	if p.VirtualFrac < 0 {
		p.VirtualFrac = 0
	}
	if p.FanOut == 0 {
		p.FanOut = 3
	}
	if p.Pockets == 0 {
		p.Pockets = 2
	}
	if p.Pockets < 0 {
		p.Pockets = 0
	}
	if p.Seed == 0 {
		p.Seed = 0x9e3779b97f4a7c15
	}
	return p
}

// Build generates the call graph. The node count lands within a few hub
// widths of p.Nodes; the edge count is roughly Nodes × 2.8 with default
// parameters.
func (p HugeParams) Build() (*callgraph.Graph, error) {
	p = p.withDefaults()
	if p.Nodes < p.Layers*2 {
		return nil, fmt.Errorf("workload: huge graph needs at least %d nodes, got %d", p.Layers*2, p.Nodes)
	}
	r := &rng{s: p.Seed}
	g := callgraph.New()

	// Level plan: level 0 is the entry; every CutEvery normal layers a hub
	// cut is interposed. cutLevel marks hub levels.
	numCuts := 0
	if p.Layers > p.CutEvery {
		numCuts = (p.Layers - 1) / p.CutEvery
	}
	width := (p.Nodes - 1 - numCuts*p.CutHubs) / p.Layers
	if width < 1 {
		width = 1
	}

	type level struct {
		nodes []callgraph.NodeID
		cut   bool
	}
	var levels []level
	entry := g.AddNode("main", false)
	g.SetEntry(entry)
	levels = append(levels, level{nodes: []callgraph.NodeID{entry}})
	for l := 0; l < p.Layers; l++ {
		if l > 0 && l%p.CutEvery == 0 {
			cut := make([]callgraph.NodeID, p.CutHubs)
			for h := range cut {
				cut[h] = g.AddNode("hub"+strconv.Itoa(len(g.Nodes()))+"_"+strconv.Itoa(h), false)
			}
			levels = append(levels, level{nodes: cut, cut: true})
		}
		layer := make([]callgraph.NodeID, width)
		for i := range layer {
			layer[i] = g.AddNode("f"+strconv.Itoa(l)+"_"+strconv.Itoa(i), false)
		}
		levels = append(levels, level{nodes: layer})
	}

	// nextCut[i] is the index of the first cut level after i (or the last
	// level index when no cut follows): the clamp that routes all
	// cross-segment calls through the hubs.
	nextCut := make([]int, len(levels))
	next := len(levels) - 1
	for i := len(levels) - 1; i >= 0; i-- {
		nextCut[i] = next
		if levels[i].cut {
			next = i
		}
	}

	// siteCount tracks the next site label per caller. All nodes exist by
	// now — only edges are added below.
	siteCount := make([]int32, g.NumNodes())
	addSite := func(caller callgraph.NodeID, targets []callgraph.NodeID) {
		lab := siteCount[caller]
		siteCount[caller]++
		for _, t := range targets {
			g.AddEdge(caller, lab, t)
		}
	}
	pick := func(lv level) callgraph.NodeID { return lv.nodes[r.intn(len(lv.nodes))] }

	// Forward call sites. The entry fans out over the whole first layer so
	// every root-segment chain is reachable; interior nodes emit
	// SitesMin..SitesMax sites into later levels of their segment.
	var scratch []callgraph.NodeID
	for li, lv := range levels {
		hi := nextCut[li]
		if li == hi {
			continue // last level: leaves
		}
		for _, n := range lv.nodes {
			nsites := p.SitesMin
			if p.SitesMax > p.SitesMin {
				nsites += r.intn(p.SitesMax - p.SitesMin + 1)
			}
			if li == 0 {
				nsites = len(levels[1].nodes) // entry covers layer 1
			}
			for s := 0; s < nsites; s++ {
				tl := li + 1 + r.intn(min(p.MaxSpan, hi-li))
				fan := 1
				if p.VirtualFrac > 0 && r.float() < p.VirtualFrac {
					fan = p.FanOut
				}
				scratch = scratch[:0]
				for k := 0; k < fan; k++ {
					scratch = append(scratch, pick(levels[tl]))
				}
				addSite(n, scratch)
			}
		}
	}

	// Hub recursion rings: each cut's hubs call one another in a cycle, so
	// every hub is a recursive-edge target — an anchor rooting the next
	// segment's territory.
	for _, lv := range levels {
		if !lv.cut {
			continue
		}
		for h, n := range lv.nodes {
			addSite(n, []callgraph.NodeID{lv.nodes[(h+1)%len(lv.nodes)]})
		}
	}

	// Recursion pockets: mutual 2-cycles between same-level interior
	// nodes. Both partners become anchors with segment-bounded
	// territories.
	for li, lv := range levels {
		if lv.cut || li == 0 || li%p.CutEvery != 1 || len(lv.nodes) < 2 {
			continue
		}
		for k := 0; k < p.Pockets; k++ {
			a := pick(lv)
			b := pick(lv)
			if a == b {
				continue
			}
			addSite(a, []callgraph.NodeID{b})
			addSite(b, []callgraph.NodeID{a})
		}
	}

	// Coverage: every non-entry node must be forward-reachable — an
	// uncovered node gets one caller from the previous level. Hub levels
	// draw from the layer before the cut; the layer after a cut draws
	// from the hubs.
	for li := 1; li < len(levels); li++ {
		prev := levels[li-1]
		for _, n := range levels[li].nodes {
			if len(g.In(n)) > 0 {
				continue
			}
			addSite(pick(prev), []callgraph.NodeID{n})
		}
	}

	return g, nil
}

// HugeTiers returns the scale curve the dpbench scale experiment sweeps:
// node counts from 10⁵ to 10⁶, multiplied by scale (so -scale 0.2 gives a
// quick 2×10⁴…2×10⁵ pass and -scale 1.0 the full million-node tier).
func HugeTiers(scale float64) []HugeParams {
	if scale <= 0 {
		scale = 1
	}
	base := []int{100_000, 250_000, 500_000, 1_000_000}
	tiers := make([]HugeParams, 0, len(base))
	for i, n := range base {
		nodes := int(float64(n) * scale)
		if nodes < 2_000 {
			nodes = 2_000
		}
		tiers = append(tiers, HugeParams{
			Name:  fmt.Sprintf("huge-%dk", nodes/1000),
			Nodes: nodes,
			Seed:  uint64(0xd1fa7 + i),
		})
	}
	return tiers
}

// HugeSmoke returns the reduced tier the CI scale-smoke job runs end to
// end: same shape as the full tiers, sized for minutes-not-hours runners.
func HugeSmoke(nodes int) HugeParams {
	return HugeParams{Name: fmt.Sprintf("smoke-%dk", nodes/1000), Nodes: nodes, Seed: 0x50a6e}
}
