// Package workload generates the benchmark programs for the evaluation.
//
// The paper evaluates on SPECjvm2008, which we cannot ship or run; instead,
// a deterministic generator produces fifteen synthetic minivm programs named
// and shaped after the suite's benchmarks. Shape means: the call-graph size
// (nodes/edges/call sites/virtual sites) under both encoding settings, the
// application-vs-library split, virtual-dispatch density, recursion, hot
// loops, dynamic class loading, and execution depth are all parameterized
// per benchmark to land in the regions Table 1 and Table 2 report. Absolute
// agreement with a closed-source suite on different hardware is not the
// goal (and is unattainable); structural agreement is, because every claim
// of the paper — encoding-space growth, anchor counts, overhead ratios,
// stack depths — depends only on this structure.
//
// Construction. Methods are arranged in layers; calls go to the next layer
// (occasionally deeper), which gives the call graph the multiplicative
// fan-in that makes context counts grow geometrically with depth — the
// encoding-space explosion of Section 3.2. Every call carries a depth
// bound ("hot" calls run to the configured execution depth, "cold" ones
// only near the root), so the executed call tree stays a sparse sample of
// the dense static graph, exactly the relationship between a real
// program's call graph and its dynamic behaviour. A final coverage pass
// guarantees every generated method is statically reachable.
package workload

import (
	"fmt"
	"math"

	"deltapath/internal/minivm"
)

// Params describes one synthetic benchmark program.
type Params struct {
	// Name of the benchmark (SPECjvm2008 names).
	Name string
	// Seed drives every random choice; same params, same program.
	Seed uint64

	// Static shape: library ("JDK") bulk and application size.
	LibClasses, LibMethods int // library classes x methods per class
	AppClasses, AppMethods int // application classes x methods per class
	LibFamilies            int // virtual-dispatch families in the library
	AppFamilies            int // virtual-dispatch families in the app
	FamilySubs             int // overriding subclasses per family
	Layers                 int // call-graph layering (depth potential)
	CallsPerMethod         int // call instructions per method body
	VirtualFrac            float64
	CallbackFrac           float64 // library sites that call back into the app
	RecursionFrac          float64
	ExceptionFrac          float64 // methods with try/catch around a call, paired with rare deep throws
	DynClasses             int     // dynamically loaded classes

	// Amplifier chains (for the >64-bit benchmarks of Table 1).
	// A chain is a sequence of AmpLen library methods in which each
	// method contains AmpFan distinct call sites invoking the next —
	// the static structure of a method that calls a helper many times.
	// Context counts multiply by AmpFan per link, so a chain fed from a
	// node with a large context count carries the graph's encoding
	// pressure past 64 bits through a handful of narrow hub nodes —
	// which is why Algorithm 2 can defuse it with roughly one anchor
	// per chain, reproducing the small anchor counts of Table 1.
	AmpChains      int // number of chains (0 disables)
	AmpLen         int // methods per chain (default 9)
	AmpFan         int // call sites per link (default 32)
	AmpFeederLayer int // layer of the broad-graph node feeding each chain

	// SpawnTasks is the number of executor tasks the program submits:
	// SPECjvm2008 runs benchmark operations on worker threads, whose
	// calling contexts root at the task entry rather than at main.
	SpawnTasks int

	// Dynamic shape.
	ExecDepth int     // depth bound of hot calls (drives context depth)
	HotFrac   float64 // fraction of calls that are hot (default 0.42)
	LoopTrip  int     // top-level loop iterations (drives run length)
	WorkUnits int     // synthetic work per method body
	EmitFrac  float64
}

// Scale returns a copy with the top-level trip count multiplied by f
// (minimum 1), for quick or extended runs.
func (p Params) Scale(f float64) Params {
	p.LoopTrip = int(math.Max(1, float64(p.LoopTrip)*f))
	return p
}

// rng is splitmix64.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// methodSlot is a generated method.
type methodSlot struct {
	class   *minivm.Class
	method  *minivm.Method
	layer   int
	library bool
	famBase string // non-empty if this is a family implementation
}

func (s *methodSlot) ref() minivm.MethodRef {
	return minivm.MethodRef{Class: s.class.Name, Method: s.method.Name}
}

// family is a virtual-dispatch group: a base class plus overriding subs.
type family struct {
	base    string
	layer   int
	library bool
	impls   []int // slot indices of all implementations
}

type gen struct {
	p        Params
	r        *rng
	prog     *minivm.Program
	slots    []*methodSlot
	families []family
	// libByLayer/appByLayer index slots by layer for near-layer targeting.
	libByLayer, appByLayer [][]int
	// libHubs/appHubs are the per-layer hub methods: a small set that
	// attracts most incoming calls, giving the call graph the "waist"
	// structure of real programs (utility and dispatcher methods). Hubs
	// concentrate encoding-space pressure, which is why Algorithm 2 can
	// defuse a >64-bit program with a handful of anchors, as in Table 1.
	libHubs, appHubs [][]int
	// famByLayer indexes families by layer.
	famByLayer [][]int
	mainClass  *minivm.Class
}

// Generate builds the program.
func (p Params) Generate() (*minivm.Program, error) {
	if p.Layers < 3 {
		return nil, fmt.Errorf("workload %s: need at least 3 layers", p.Name)
	}
	if p.HotFrac == 0 {
		p.HotFrac = 0.42
	}
	g := &gen{
		r:          &rng{s: p.Seed ^ 0xdeadbeefcafe},
		prog:       &minivm.Program{Entry: minivm.MethodRef{Class: "Main", Method: "main"}},
		libByLayer: make([][]int, p.Layers),
		appByLayer: make([][]int, p.Layers),
		libHubs:    make([][]int, p.Layers),
		appHubs:    make([][]int, p.Layers),
		famByLayer: make([][]int, p.Layers),
	}
	if p.AmpChains > 0 {
		if p.AmpLen == 0 {
			p.AmpLen = 9
		}
		if p.AmpFan == 0 {
			p.AmpFan = 32
		}
	}
	g.p = p
	g.buildPopulation()
	g.pickHubs()
	g.buildBodies()
	g.buildAmpChains()
	g.buildDynamicClasses()
	g.buildMain()
	g.ensureCoverage()
	if err := g.prog.Normalize(); err != nil {
		return nil, fmt.Errorf("workload %s: %w", p.Name, err)
	}
	return g.prog, nil
}

func (g *gen) newClass(name, super string, library bool) *minivm.Class {
	c := &minivm.Class{Name: name, Super: super, Library: library}
	g.prog.Classes = append(g.prog.Classes, c)
	return c
}

func (g *gen) addMethod(c *minivm.Class, name string, layer int, library bool, famBase string) int {
	m := &minivm.Method{Name: name}
	c.Methods = append(c.Methods, m)
	s := &methodSlot{class: c, method: m, layer: layer, library: library, famBase: famBase}
	idx := len(g.slots)
	g.slots = append(g.slots, s)
	if library {
		g.libByLayer[layer] = append(g.libByLayer[layer], idx)
	} else {
		g.appByLayer[layer] = append(g.appByLayer[layer], idx)
	}
	return idx
}

// buildPopulation creates classes, methods and dispatch families, assigning
// layers 1..Layers-1 roughly uniformly.
func (g *gen) buildPopulation() {
	p, r := g.p, g.r
	g.mainClass = g.newClass("Main", "", false)
	g.addMethod(g.mainClass, "main", 0, false, "")

	layerFor := func() int { return 1 + r.intn(p.Layers-1) }
	// Application methods occupy a compressed band of consecutive layers:
	// with a small application spread over many layers, app-to-app call
	// chains could not form and application contexts would be
	// unrealistically shallow.
	appSpan := p.AppClasses * p.AppMethods / 6
	if appSpan > p.Layers-1 {
		appSpan = p.Layers - 1
	}
	if appSpan < 4 {
		appSpan = 4
	}
	if appSpan > p.Layers-1 {
		appSpan = p.Layers - 1
	}
	appLayerFor := func() int { return 1 + r.intn(appSpan) }

	for i := 0; i < p.LibClasses; i++ {
		c := g.newClass(fmt.Sprintf("lib.C%d", i), "", true)
		for j := 0; j < p.LibMethods; j++ {
			g.addMethod(c, fmt.Sprintf("m%d", j), layerFor(), true, "")
		}
	}
	for i := 0; i < p.AppClasses; i++ {
		c := g.newClass(fmt.Sprintf("app.C%d", i), "", false)
		for j := 0; j < p.AppMethods; j++ {
			g.addMethod(c, fmt.Sprintf("m%d", j), appLayerFor(), false, "")
		}
	}
	mkFam := func(idx int, library bool) {
		prefix := "app"
		if library {
			prefix = "lib"
		}
		base := fmt.Sprintf("%s.Fam%d", prefix, idx)
		layer := layerFor()
		f := family{base: base, layer: layer, library: library}
		bc := g.newClass(base, "", library)
		f.impls = append(f.impls, g.addMethod(bc, "run", layer, library, base))
		for s := 0; s < p.FamilySubs; s++ {
			sc := g.newClass(fmt.Sprintf("%s.Sub%d", base, s), base, library)
			f.impls = append(f.impls, g.addMethod(sc, "run", layer, library, base))
		}
		g.famByLayer[layer] = append(g.famByLayer[layer], len(g.families))
		g.families = append(g.families, f)
	}
	for i := 0; i < p.LibFamilies; i++ {
		mkFam(i, true)
	}
	for i := 0; i < p.AppFamilies; i++ {
		mkFam(p.LibFamilies+i, false)
	}
}

// pickHubs designates the per-layer hub methods: roughly one in sixteen,
// at least one per populated layer.
func (g *gen) pickHubs() {
	for l := 1; l < g.p.Layers; l++ {
		if n := len(g.libByLayer[l]); n > 0 {
			k := 1 + n/16
			g.libHubs[l] = g.libByLayer[l][:k]
		}
		if n := len(g.appByLayer[l]); n > 0 {
			k := 1 + n/16
			g.appHubs[l] = g.appByLayer[l][:k]
		}
	}
}

// callee picks a slot near layer l+1 with the wanted library flag,
// searching progressively deeper layers. Most calls route through the
// layer's hubs.
func (g *gen) callee(fromLayer int, wantLib bool) *methodSlot {
	buckets, hubs := g.appByLayer, g.appHubs
	if wantLib {
		buckets, hubs = g.libByLayer, g.libHubs
	}
	for l := fromLayer + 1; l < g.p.Layers; l++ {
		// Mostly the next layer; skip ahead occasionally for long edges.
		if l > fromLayer+1 && g.r.float() < 0.7 {
			continue
		}
		if n := len(hubs[l]); n > 0 && g.r.float() < 0.6 {
			return g.slots[hubs[l][g.r.intn(n)]]
		}
		if n := len(buckets[l]); n > 0 {
			return g.slots[buckets[l][g.r.intn(n)]]
		}
	}
	// Fallback: any deeper bucket, either kind.
	for l := fromLayer + 1; l < g.p.Layers; l++ {
		if n := len(g.libByLayer[l]); n > 0 {
			return g.slots[g.libByLayer[l][g.r.intn(n)]]
		}
		if n := len(g.appByLayer[l]); n > 0 {
			return g.slots[g.appByLayer[l][g.r.intn(n)]]
		}
	}
	return nil
}

// calleeFamily picks a dispatch family near layer l+1.
func (g *gen) calleeFamily(fromLayer int, fromLib bool) *family {
	for l := fromLayer + 1; l < g.p.Layers; l++ {
		if l > fromLayer+1 && g.r.float() < 0.7 {
			continue
		}
		if n := len(g.famByLayer[l]); n > 0 {
			f := &g.families[g.famByLayer[l][g.r.intn(n)]]
			if fromLib && !f.library && g.r.float() >= g.p.CallbackFrac {
				continue // library code rarely dispatches into the app
			}
			return f
		}
	}
	return nil
}

// bound picks a call's depth bound: hot calls descend to ExecDepth, cold
// calls only run near the root, keeping execution tractable while the
// static graph stays dense. hotProb is the probability this call is hot.
func (g *gen) bound(hotProb float64) int {
	if g.r.float() < hotProb {
		return g.p.ExecDepth + g.r.intn(3)
	}
	return 4 + g.r.intn(3)
}

// hotProbFor returns the hot probability for a call: application-to-
// application calls run hot most of the time so that application call
// chains reach realistic depths (Table 2 reports average context depths of
// 5-22 application frames), while the bulky library subtrees stay sparse.
func (g *gen) hotProbFor(callerLib, calleeLib bool) float64 {
	if !callerLib && !calleeLib {
		p := g.p.HotFrac * 2.1
		if p > 0.95 {
			p = 0.95
		}
		return p
	}
	return g.p.HotFrac
}

// buildBodies synthesizes every method body except main's.
func (g *gen) buildBodies() {
	p, r := g.p, g.r
	for _, s := range g.slots {
		if s.class == g.mainClass {
			continue
		}
		body := []minivm.Instr{minivm.Work(p.WorkUnits)}
		for k := 0; k < p.CallsPerMethod; k++ {
			if r.float() < p.VirtualFrac {
				if f := g.calleeFamily(s.layer, s.library); f != nil {
					body = append(body, minivm.VCallBounded(f.base, "run",
						g.bound(g.hotProbFor(s.library, f.library))))
					continue
				}
			}
			wantLib := true
			if s.library {
				wantLib = r.float() >= p.CallbackFrac
			} else {
				wantLib = r.float() < 0.25 // app code mostly calls app code
			}
			if t := g.callee(s.layer, wantLib); t != nil {
				body = append(body, minivm.CallBounded(t.class.Name, t.method.Name,
					g.bound(g.hotProbFor(s.library, wantLib))))
			}
		}
		if r.float() < p.RecursionFrac {
			body = append(body, minivm.CallBounded(s.class.Name, s.method.Name, p.ExecDepth))
		}
		if p.ExceptionFrac > 0 && r.float() < p.ExceptionFrac {
			// Exception handling: a guarded call whose callee subtree may
			// throw (the rare deep rthrow below), with a recovery call in
			// the handler. Keeps the unwinding paths of the instrumentation
			// exercised under benchmark load.
			if t := g.callee(s.layer, s.library); t != nil {
				tryBody := []minivm.Instr{minivm.CallBounded(t.class.Name, t.method.Name, g.bound(g.hotProbFor(s.library, t.library)))}
				handler := []minivm.Instr{minivm.Work(p.WorkUnits / 2)}
				if h := g.callee(s.layer, s.library); h != nil {
					handler = append(handler, minivm.CallBounded(h.class.Name, h.method.Name, 4))
				}
				body = append(body, minivm.Try(tryBody, handler))
			}
		}
		if p.ExceptionFrac > 0 && r.float() < p.ExceptionFrac*0.5 {
			// A rare thrower: fires only deep in the call tree.
			body = append(body, minivm.ThrowIfDeeper("e", p.ExecDepth-1+r.intn(3)))
		}
		emitProb := p.EmitFrac
		if s.library {
			emitProb *= 0.3
		}
		if r.float() < emitProb {
			body = append(body, minivm.Emit("e"))
		}
		s.method.Body = body
	}
}

// buildAmpChains creates the amplifier chains. Each chain hangs off a hub
// at AmpFeederLayer via a single cold call; chain-internal calls carry a
// small depth bound so they contribute dense static structure at near-zero
// dynamic cost.
func (g *gen) buildAmpChains() {
	p := g.p
	if p.AmpChains <= 0 {
		return
	}
	feederLayer := p.AmpFeederLayer
	if feederLayer < 1 {
		feederLayer = 1
	}
	if feederLayer > p.Layers-2 {
		feederLayer = p.Layers - 2
	}
	for c := 0; c < p.AmpChains; c++ {
		cls := g.newClass(fmt.Sprintf("lib.Amp%d", c), "", true)
		idxs := make([]int, p.AmpLen)
		for i := 0; i < p.AmpLen; i++ {
			layer := feederLayer + 1 + i
			if layer > p.Layers-1 {
				layer = p.Layers - 1
			}
			idxs[i] = g.addMethod(cls, fmt.Sprintf("a%d", i), layer, true, "")
		}
		for i := 0; i < p.AmpLen; i++ {
			s := g.slots[idxs[i]]
			body := []minivm.Instr{minivm.Work(p.WorkUnits)}
			if i+1 < p.AmpLen {
				next := g.slots[idxs[i+1]]
				for k := 0; k < p.AmpFan; k++ {
					body = append(body, minivm.CallBounded(next.class.Name, next.method.Name, 3))
				}
			}
			// One ordinary deeper callee per link, so the chain's
			// pressure also touches the broad graph.
			if t := g.callee(s.layer, true); t != nil {
				body = append(body, minivm.CallBounded(t.class.Name, t.method.Name, 3))
			}
			s.method.Body = body
		}
		// Feed the chain from a hub at the feeder layer (round-robin).
		if hubs := g.libHubs[feederLayer]; len(hubs) > 0 {
			feeder := g.slots[hubs[c%len(hubs)]]
			first := g.slots[idxs[0]]
			feeder.method.Body = append(feeder.method.Body,
				minivm.CallBounded(first.class.Name, first.method.Name, 3))
		}
	}
}

// buildDynamicClasses creates the dynamically loadable classes: subclasses
// of application families whose run methods call statically analysed
// methods, producing unexpected call paths when dispatched to (Figure 6).
func (g *gen) buildDynamicClasses() {
	p, r := g.p, g.r
	if len(g.families) == 0 {
		return
	}
	// Prefer application families so UCPs land in instrumented code.
	var appFams []int
	for i, f := range g.families {
		if !f.library {
			appFams = append(appFams, i)
		}
	}
	pool := appFams
	if len(pool) == 0 {
		pool = make([]int, len(g.families))
		for i := range pool {
			pool[i] = i
		}
	}
	for d := 0; d < p.DynClasses; d++ {
		f := &g.families[pool[r.intn(len(pool))]]
		dc := &minivm.Class{Name: fmt.Sprintf("dyn.D%d", d), Super: f.base}
		body := []minivm.Instr{minivm.Work(p.WorkUnits)}
		for k := 0; k < 2; k++ {
			if t := g.callee(f.layer, k == 0); t != nil {
				body = append(body, minivm.CallBounded(t.class.Name, t.method.Name, p.ExecDepth))
			}
		}
		dc.Methods = append(dc.Methods, &minivm.Method{Name: "run", Body: body})
		g.prog.Dynamic = append(g.prog.Dynamic, dc)
	}
}

// buildMain gives the entry method its body: dynamic loads, then the
// measured loop over a spread of layer-1 roots covering both the library
// and the application.
func (g *gen) buildMain() {
	p, r := g.p, g.r
	var body []minivm.Instr
	for _, dc := range g.prog.Dynamic {
		body = append(body, minivm.LoadClass(dc.Name))
	}
	var loop []minivm.Instr
	addRoot := func(idx int) {
		t := g.slots[idx]
		loop = append(loop, minivm.CallBounded(t.class.Name, t.method.Name,
			g.bound(g.hotProbFor(false, t.library))))
	}
	// A few roots from the first populated app layer and lib layer each.
	for l := 1; l < p.Layers && len(loop) < 3; l++ {
		for _, idx := range g.appByLayer[l] {
			if len(loop) >= 3 {
				break
			}
			if r.float() < 0.5 {
				addRoot(idx)
			}
		}
	}
	for l := 1; l < p.Layers && len(loop) < 6; l++ {
		for _, idx := range g.libByLayer[l] {
			if len(loop) >= 6 {
				break
			}
			if r.float() < 0.3 {
				addRoot(idx)
			}
		}
	}
	// One virtual root when available.
	if f := g.calleeFamily(0, false); f != nil {
		loop = append(loop, minivm.VCallBounded(f.base, "run", p.ExecDepth))
	}
	// Executor tasks: each task is a Runnable-style wrapper class whose
	// run method guards a worker call (tasks swallow their own failures,
	// as executor workers do). Worker targets are drawn from the shallow
	// application layers with an independent RNG, so enabling tasks does
	// not perturb the rest of the generated program.
	tr := &rng{s: p.Seed ^ 0x5bd1e995}
	for k := 0; k < p.SpawnTasks; k++ {
		for attempt := 0; attempt < 16; attempt++ {
			l := 1 + tr.intn(3)
			if l >= p.Layers {
				l = 1
			}
			n := len(g.appByLayer[l])
			if n == 0 {
				continue
			}
			t := g.slots[g.appByLayer[l][tr.intn(n)]]
			taskCls := g.newClass(fmt.Sprintf("app.Task%d", k), "", false)
			work := minivm.CallBounded(t.class.Name, t.method.Name, p.ExecDepth)
			taskBody := []minivm.Instr{
				minivm.Try([]minivm.Instr{work}, []minivm.Instr{minivm.Emit("taskfail")}),
				minivm.Emit("task"),
			}
			taskCls.Methods = append(taskCls.Methods, &minivm.Method{Name: "run", Body: taskBody})
			body = append(body, minivm.Spawn(taskCls.Name, "run"))
			break
		}
	}
	loop = append(loop, minivm.Emit("iter"))
	if p.ExceptionFrac > 0 {
		// The benchmark harness catches per-operation exceptions, as
		// SPECjvm2008's dispatcher does: a throw aborts one iteration's
		// work, not the run.
		loop = []minivm.Instr{minivm.Try(loop, []minivm.Instr{minivm.Emit("iterfail")})}
	}
	body = append(body,
		minivm.Instr{Op: minivm.OpLoop, N: p.LoopTrip, Body: loop},
		minivm.Emit("done"))
	g.mainClass.Methods[0].Body = body
}

// ensureCoverage adds, for every statically unreachable method, a cold
// (depth-bounded) call from a reachable method in a shallower layer, so the
// final program's call graph contains every generated method. The added
// calls execute only near the root of the call tree, so they perturb the
// dynamic profile minimally.
func (g *gen) ensureCoverage() {
	// Reachability over the static program, resolving vcalls through
	// family implementation lists.
	implsOf := make(map[string][]int)
	for _, f := range g.families {
		implsOf[f.base] = f.impls
	}
	index := make(map[minivm.MethodRef]int)
	for i, s := range g.slots {
		index[s.ref()] = i
	}
	reached := make([]bool, len(g.slots))
	var work []int

	var scan func(body []minivm.Instr)
	mark := func(i int) {
		if !reached[i] {
			reached[i] = true
			work = append(work, i)
		}
	}
	scan = func(body []minivm.Instr) {
		for _, in := range body {
			switch in.Op {
			case minivm.OpCall:
				if i, ok := index[minivm.MethodRef{Class: in.Class, Method: in.Name}]; ok {
					mark(i)
				}
			case minivm.OpVCall:
				for _, i := range implsOf[in.Class] {
					mark(i)
				}
			case minivm.OpLoop:
				scan(in.Body)
			}
		}
	}
	scan(g.mainClass.Methods[0].Body)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		scan(g.slots[i].method.Body)
	}

	// Attach unreached methods, shallowest first, to reached methods one
	// layer up (round-robin); the attachment makes them reached, which can
	// carry their callees too, so we re-scan incrementally.
	reachedByLayer := make([][]int, g.p.Layers)
	for i, s := range g.slots {
		if reached[i] {
			reachedByLayer[s.layer] = append(reachedByLayer[s.layer], i)
		}
	}
	rr := 0
	for layer := 1; layer < g.p.Layers; layer++ {
		for i, s := range g.slots {
			if reached[i] || s.layer != layer {
				continue
			}
			// Find a reached host in any shallower layer, preferring the
			// immediately shallower ones; main hosts layer-1 leftovers.
			var host *minivm.Method
			for hl := layer - 1; hl >= 1 && host == nil; hl-- {
				if n := len(reachedByLayer[hl]); n > 0 {
					host = g.slots[reachedByLayer[hl][rr%n]].method
					rr++
				}
			}
			if host == nil {
				host = g.mainClass.Methods[0]
			}
			cover := minivm.CallBounded(s.class.Name, s.method.Name, 3+g.r.intn(3))
			if g.p.ExceptionFrac > 0 {
				// Coverage calls may reach throwers outside the guarded
				// benchmark loop; guard them individually.
				cover = minivm.Try([]minivm.Instr{cover}, []minivm.Instr{minivm.Work(1)})
			}
			host.Body = append(host.Body, cover)
			mark(i)
			for len(work) > 0 {
				j := work[len(work)-1]
				work = work[:len(work)-1]
				reachedByLayer[g.slots[j].layer] = append(reachedByLayer[g.slots[j].layer], j)
				scan(g.slots[j].method.Body)
			}
		}
	}
}
