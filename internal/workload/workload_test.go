package workload

import (
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/minivm"
)

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("compress")
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same params produced different programs")
	}
}

func TestSuiteShapes(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := p.Generate()
			if err != nil {
				t.Fatal(err)
			}
			all, err := cha.Build(prog, cha.Options{Setting: cha.EncodingAll})
			if err != nil {
				t.Fatal(err)
			}
			app, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
			if err != nil {
				t.Fatal(err)
			}
			est, bits, err := core.EstimateSpace(all.Graph)
			if err != nil {
				t.Fatal(err)
			}
			appEst, appBits, err := core.EstimateSpace(app.Graph)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("all: nodes=%d edges=%d CS=%d VCS=%d maxID=%s (%d bits)",
				all.Graph.NumNodes(), all.Graph.NumEdges(), all.Graph.NumSites(),
				all.Graph.NumVirtualSites(), core.FormatSpace(est), bits)
			t.Logf("app: nodes=%d edges=%d CS=%d VCS=%d maxID=%s (%d bits)",
				app.Graph.NumNodes(), app.Graph.NumEdges(), app.Graph.NumSites(),
				app.Graph.NumVirtualSites(), core.FormatSpace(appEst), appBits)

			// Structural requirements shared by all benchmarks.
			if n := all.Graph.NumNodes(); n < 400 {
				t.Errorf("encoding-all graph too small: %d nodes", n)
			}
			if app.Graph.NumNodes() >= all.Graph.NumNodes()/3 {
				t.Errorf("application graph not much smaller: %d vs %d",
					app.Graph.NumNodes(), all.Graph.NumNodes())
			}
			if all.Graph.NumVirtualSites() == 0 {
				t.Error("no virtual sites generated")
			}
			if appBits > bits {
				t.Errorf("application space (%d bits) exceeds all space (%d bits)", appBits, bits)
			}
		})
	}
}

func TestSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("suite execution is slow")
	}
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := p.Scale(0.05).Generate()
			if err != nil {
				t.Fatal(err)
			}
			vm, err := minivm.NewVM(prog, p.Seed)
			if err != nil {
				t.Fatal(err)
			}
			emits := 0
			maxDepth, totalDepth := 0, 0
			vm.OnEmit = func(v *minivm.VM, _ minivm.MethodRef, _ string) {
				emits++
				d := v.Depth()
				totalDepth += d
				if d > maxDepth {
					maxDepth = d
				}
			}
			if err := vm.Run(); err != nil {
				t.Fatal(err)
			}
			if emits == 0 {
				t.Fatal("no contexts emitted")
			}
			t.Logf("steps=%d emits=%d maxDepth=%d avgDepth=%.1f loads=%d",
				vm.Steps, emits, maxDepth, float64(totalDepth)/float64(emits), vm.Loads)
		})
	}
}
