package workload

import (
	"testing"

	"deltapath/internal/analysisio"
)

func TestHugeBuildShape(t *testing.T) {
	p := HugeSmoke(20_000)
	g, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumNodes(); got < 18_000 || got > 21_000 {
		t.Errorf("node count %d far from target %d", got, p.Nodes)
	}
	if g.NumEdges() < 2*g.NumNodes() {
		t.Errorf("edge count %d below 2 per node (%d nodes)", g.NumEdges(), g.NumNodes())
	}
	if g.NumVirtualSites() == 0 {
		t.Error("no virtual fan-out sites generated")
	}
	rec := g.RecursiveEdges()
	if len(rec) == 0 {
		t.Error("no recursion pockets or hub rings generated")
	}
	if _, err := g.TopoOrder(rec); err != nil {
		t.Errorf("forward graph not acyclic: %v", err)
	}
	// Coverage pass: every non-entry node must have an incoming edge, so
	// the whole graph is forward-reachable and no orphan anchors appear.
	entry, _ := g.Entry()
	for _, n := range g.Nodes() {
		if n != entry && len(g.In(n)) == 0 {
			t.Fatalf("node %s has no callers", g.Name(n))
		}
	}
}

func TestHugeBuildDeterministic(t *testing.T) {
	p := HugeSmoke(10_000)
	a, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if da, db := analysisio.DigestGraph(a), analysisio.DigestGraph(b); da != db {
		t.Errorf("same seed produced different graphs: %v vs %v", da, db)
	}
	p.Seed = 12345
	c, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if analysisio.DigestGraph(a) == analysisio.DigestGraph(c) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestHugeTiers(t *testing.T) {
	tiers := HugeTiers(0.2)
	if len(tiers) != 4 {
		t.Fatalf("expected 4 tiers, got %d", len(tiers))
	}
	if tiers[0].Nodes != 20_000 || tiers[3].Nodes != 200_000 {
		t.Errorf("scale 0.2 tiers wrong: %d..%d", tiers[0].Nodes, tiers[3].Nodes)
	}
	full := HugeTiers(1.0)
	if full[3].Nodes != 1_000_000 {
		t.Errorf("full top tier must be 10⁶ nodes, got %d", full[3].Nodes)
	}
}
