package workload

// Suite returns the fifteen benchmark programs of the evaluation, named and
// shaped after SPECjvm2008 (Section 6). Per-benchmark parameters target the
// structural characteristics Table 1 reports:
//
//   - call-graph sizes in the low thousands of nodes under encoding-all and
//     roughly two orders of magnitude fewer under encoding-application;
//   - encoding spaces from ~1e5 (compress, scimark) through ~1e9 (crypto)
//     and ~1e14 (mpegaudio) up to beyond 64 bits (sunflow, xml.validation),
//     the last two forcing Algorithm 2 to introduce anchor nodes;
//   - virtual-site densities of roughly a third to a half of all sites;
//   - small applications for scimark/crypto/compress and large ones for
//     sunflow and xml.transform.
func Suite() []Params {
	base := Params{
		LibMethods:    8,
		AppMethods:    4,
		FamilySubs:    5,
		VirtualFrac:   0.40,
		CallbackFrac:  0.02,
		RecursionFrac: 0.02,
		ExceptionFrac: 0.04,
		SpawnTasks:    2,
		EmitFrac:      0.30,
		WorkUnits:     24,
		DynClasses:    2,
	}
	mk := func(name string, seed uint64, f func(*Params)) Params {
		p := base
		p.Name = name
		p.Seed = seed
		f(&p)
		return p
	}
	return []Params{
		mk("compiler.compiler", 101, func(p *Params) {
			p.LibClasses, p.AppClasses = 270, 28
			p.LibFamilies, p.AppFamilies = 60, 6
			p.Layers, p.CallsPerMethod = 12, 2
			p.ExecDepth, p.LoopTrip = 11, 60
		}),
		mk("compiler.sunflow", 102, func(p *Params) {
			p.LibClasses, p.AppClasses = 210, 29
			p.LibFamilies, p.AppFamilies = 50, 7
			p.Layers, p.CallsPerMethod = 12, 2
			p.ExecDepth, p.LoopTrip = 11, 60
		}),
		mk("compress", 103, func(p *Params) {
			p.LibClasses, p.AppClasses = 150, 24
			p.LibFamilies, p.AppFamilies = 30, 5
			p.Layers, p.CallsPerMethod = 9, 2
			p.VirtualFrac = 0.35
			p.ExecDepth, p.LoopTrip = 11, 400
			p.RecursionFrac = 0.005
			p.WorkUnits = 40 // compress has small hot functions
		}),
		mk("crypto.aes", 104, func(p *Params) {
			p.LibClasses, p.AppClasses = 310, 25
			p.LibFamilies, p.AppFamilies = 65, 5
			p.Layers, p.CallsPerMethod = 14, 2
			p.ExecDepth, p.LoopTrip = 10, 50
		}),
		mk("crypto.rsa", 105, func(p *Params) {
			p.LibClasses, p.AppClasses = 310, 25
			p.LibFamilies, p.AppFamilies = 65, 5
			p.Layers, p.CallsPerMethod = 13, 2
			p.ExecDepth, p.LoopTrip = 10, 50
		}),
		mk("crypto.signverify", 106, func(p *Params) {
			p.LibClasses, p.AppClasses = 315, 24
			p.LibFamilies, p.AppFamilies = 66, 6
			p.Layers, p.CallsPerMethod = 14, 2
			p.ExecDepth, p.LoopTrip = 10, 50
		}),
		mk("mpegaudio", 107, func(p *Params) {
			p.LibClasses, p.AppClasses = 360, 62
			p.LibFamilies, p.AppFamilies = 75, 12
			p.Layers, p.CallsPerMethod = 22, 2
			p.ExecDepth, p.LoopTrip = 14, 60
			p.WorkUnits = 16
		}),
		mk("scimark.fft.large", 108, func(p *Params) {
			p.LibClasses, p.AppClasses = 148, 19
			p.LibFamilies, p.AppFamilies = 28, 3
			p.Layers, p.CallsPerMethod = 10, 2
			p.VirtualFrac = 0.35
			p.ExecDepth, p.LoopTrip = 11, 300
		}),
		mk("scimark.lu.large", 109, func(p *Params) {
			p.LibClasses, p.AppClasses = 147, 19
			p.LibFamilies, p.AppFamilies = 28, 3
			p.Layers, p.CallsPerMethod = 10, 2
			p.VirtualFrac = 0.35
			p.ExecDepth, p.LoopTrip = 10, 300
		}),
		mk("scimark.monte_carlo", 110, func(p *Params) {
			p.LibClasses, p.AppClasses = 146, 15
			p.LibFamilies, p.AppFamilies = 27, 3
			p.Layers, p.CallsPerMethod = 10, 2
			p.VirtualFrac = 0.34
			p.ExecDepth, p.LoopTrip = 11, 350
			p.WorkUnits = 12 // small hot functions
		}),
		mk("scimark.sor.large", 111, func(p *Params) {
			p.LibClasses, p.AppClasses = 147, 18
			p.LibFamilies, p.AppFamilies = 28, 3
			p.Layers, p.CallsPerMethod = 10, 2
			p.VirtualFrac = 0.35
			p.ExecDepth, p.LoopTrip = 10, 300
		}),
		mk("scimark.sparse.large", 112, func(p *Params) {
			p.LibClasses, p.AppClasses = 146, 17
			p.LibFamilies, p.AppFamilies = 28, 3
			p.Layers, p.CallsPerMethod = 10, 2
			p.VirtualFrac = 0.35
			p.ExecDepth, p.LoopTrip = 11, 300
		}),
		mk("sunflow", 113, func(p *Params) {
			p.LibClasses, p.AppClasses = 860, 260
			p.LibFamilies, p.AppFamilies = 190, 55
			p.Layers, p.CallsPerMethod = 20, 2
			p.VirtualFrac = 0.50
			p.ExecDepth, p.LoopTrip = 18, 12
			p.RecursionFrac = 0.01
			p.WorkUnits = 10
			p.AmpChains, p.AmpFeederLayer = 6, 12
		}),
		mk("xml.transform", 114, func(p *Params) {
			p.LibClasses, p.AppClasses = 1090, 470
			p.LibFamilies, p.AppFamilies = 260, 90
			p.Layers, p.CallsPerMethod = 19, 3
			p.VirtualFrac = 0.52
			p.ExecDepth, p.LoopTrip = 15, 12
			p.RecursionFrac = 0.01
		}),
		mk("xml.validation", 115, func(p *Params) {
			p.LibClasses, p.AppClasses = 770, 25
			p.LibFamilies, p.AppFamilies = 170, 5
			p.Layers, p.CallsPerMethod = 21, 2
			p.VirtualFrac = 0.52
			p.ExecDepth, p.LoopTrip = 12, 40
			p.RecursionFrac = 0.01
			p.AmpChains, p.AmpFeederLayer = 7, 11
		}),
	}
}

// ByName returns the suite benchmark with the given name.
func ByName(name string) (Params, bool) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}
