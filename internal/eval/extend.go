package eval

// The incremental-encoding experiment: what does absorbing a dynamically
// loaded class cost, and what does it buy? For each corpus program the
// experiment publishes one epoch per dynamic class and reports, per step,
// the Extend latency against a whole-program re-analysis of the same class
// set (the baseline Extend replaces), how much of the graph the delta
// actually dirtied, and the steady-state hazard pushes of fresh sessions
// before and after the absorption — the run-time rent unanalysed classes
// charge (one unexpected-call-path push per entry from unanalysed code)
// that absorbing them eliminates.

import (
	"fmt"
	"strings"
	"time"

	"deltapath"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
)

// extendDynload mirrors testdata/dynload.mv: one dynamic class joining a
// hot virtual-dispatch loop — the paper's motivating late-loading shape.
const extendDynload = `
entry D.main
class D {
  method main {
    call D.first
    load Ext
    loop 4 { vcall Base.op }
    emit done
  }
  method first { vcall Base.op }
}
class Base { method op { call Sink.accept; emit base } }
class Sink { method accept { work 1 } }
class Alt { method helper { work 1 } }
dynamic class Ext extends Base {
  method op { call Alt.helper; call Sink.accept; emit ext }
}
`

// extendStaged is the differential suite's workhorse: three dynamic
// classes, including a subclass of a dynamic class and one that makes an
// old site recursive once absorbed.
const extendStaged = `
entry P.main
class P {
  method main {
    call P.warm
    load X
    loop 2 { vcall Q.op }
    load Y
    loop 2 { vcall Q.op }
    load Z
    loop 3 { vcall Q.op }
    call P.tail
    emit fin
  }
  method warm { vcall Q.op; emit warm }
  method tail { vcall Q.op }
}
class Q { method op { call S.leaf; emit qop } }
class S { method leaf { emit leaf } }
dynamic class X extends Q { method op { call S.leaf; emit xop } }
dynamic class Y extends X { method op { emit yop } }
dynamic class Z extends Q { method op { call P.tail; emit zop } }
`

// extendSeeds is the fixed dispatch-seed set hazard columns average over.
var extendSeeds = []uint64{0, 1, 2, 3, 4, 5, 6, 7}

// ExtendRow is one absorption step of one program.
type ExtendRow struct {
	Program string `json:"program"`
	// Class is the class passed to Extend; NewClasses is its dynamic
	// super-closure, what the epoch actually absorbed.
	Class      string   `json:"class"`
	Epoch      uint64   `json:"epoch"`
	NewClasses []string `json:"new_classes"`
	// ExtendNs is Analysis.Extend's latency (graph patch, delta encode,
	// CPT, verification gate, plan rebuild, publish); FullNs the latency
	// of the whole-program re-analysis it replaces. Speedup is Full/Extend.
	// VerifyNs splits out the soundness gate's share of ExtendNs and
	// AnalyzeNs the rest, so the verify-dominates caveat is measured, not
	// guessed.
	ExtendNs  int64   `json:"extend_ns"`
	AnalyzeNs int64   `json:"analyze_ns"`
	VerifyNs  int64   `json:"verify_ns"`
	FullNs    int64   `json:"full_ns"`
	Speedup   float64 `json:"speedup"`
	// VerifyDelta reports whether the gate proved the epoch incrementally
	// (delta-proof against the previous certificate) rather than from
	// scratch; the counters say how much of the proof it reused. These are
	// deterministic for a given program, unlike the timings.
	VerifyDelta        bool `json:"verify_delta"`
	DirtyTerritories   int  `json:"dirty_territories"`
	TotalTerritories   int  `json:"total_territories"`
	ObligationsChecked int  `json:"obligations_checked"`
	ObligationsTotal   int  `json:"obligations_total"`
	// Dirty territory: how much of the graph the delta actually touched.
	DirtyNodes        int `json:"dirty_nodes"`
	TotalNodes        int `json:"total_nodes"`
	RecomputedAnchors int `json:"recomputed_anchors"`
	// Hazard pushes per run (mean over the seed set) with fresh sessions
	// before and after this step — the steady-state run-time cost the
	// absorption removes.
	HazardsBefore float64 `json:"hazards_before"`
	HazardsAfter  float64 `json:"hazards_after"`
}

// ExtendLatency runs the experiment over the built-in corpus plus any
// extra programs that declare dynamic classes (others are skipped — there
// is nothing to absorb).
func ExtendLatency(extra []NamedProgram) ([]ExtendRow, error) {
	programs := []NamedProgram{
		{Name: "dynload", Prog: lang.MustParse(extendDynload)},
		{Name: "staged", Prog: lang.MustParse(extendStaged)},
	}
	for _, np := range extra {
		if len(np.Prog.Dynamic) > 0 {
			programs = append(programs, np)
		}
	}

	var rows []ExtendRow
	for _, np := range programs {
		r, err := extendProgram(np)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", np.Name, err)
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

func extendProgram(np NamedProgram) ([]ExtendRow, error) {
	an, err := deltapath.Analyze(np.Prog, deltapath.Options{})
	if err != nil {
		return nil, err
	}
	hazards, err := meanHazards(an)
	if err != nil {
		return nil, err
	}
	var rows []ExtendRow
	for _, class := range dynamicOrder(np.Prog) {
		if contains(an.Absorbed(), class) {
			continue // pulled in by an earlier class's super-closure
		}
		start := time.Now()
		stats, err := an.Extend(class)
		if err != nil {
			return nil, fmt.Errorf("Extend(%s): %w", class, err)
		}
		extendNs := time.Since(start).Nanoseconds()

		fullNs, err := fullReanalysisNs(np.Prog, an.Absorbed())
		if err != nil {
			return nil, err
		}
		after, err := meanHazards(an)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if extendNs > 0 {
			speedup = float64(fullNs) / float64(extendNs)
		}
		rows = append(rows, ExtendRow{
			Program:            np.Name,
			Class:              class,
			Epoch:              stats.Epoch,
			NewClasses:         stats.NewClasses,
			ExtendNs:           extendNs,
			AnalyzeNs:          extendNs - stats.VerifyNs,
			VerifyNs:           stats.VerifyNs,
			FullNs:             fullNs,
			Speedup:            speedup,
			VerifyDelta:        stats.VerifyDelta,
			DirtyTerritories:   stats.DirtyTerritories,
			TotalTerritories:   stats.TotalTerritories,
			ObligationsChecked: stats.ObligationsChecked,
			ObligationsTotal:   stats.ObligationsTotal,
			DirtyNodes:         stats.Core.DirtyNodes,
			TotalNodes:         stats.Core.TotalNodes,
			RecomputedAnchors:  stats.Core.RecomputedAnchors,
			HazardsBefore:      hazards,
			HazardsAfter:       after,
		})
		hazards = after
	}
	return rows, nil
}

// meanHazards runs fresh sessions over the seed set at the analysis's
// current epoch and returns the mean hazardous-UCP pushes per run.
func meanHazards(an *deltapath.Analysis) (float64, error) {
	var total uint64
	for _, seed := range extendSeeds {
		s, err := an.NewSession(seed)
		if err != nil {
			return 0, err
		}
		if _, err := s.Run(nil); err != nil {
			return 0, err
		}
		total += s.Hazards()
	}
	return float64(total) / float64(len(extendSeeds)), nil
}

// fullReanalysisNs times the baseline Extend replaces: a whole-program
// analysis of the original program with the absorbed classes promoted to
// static.
func fullReanalysisNs(prog *minivm.Program, absorbed []string) (int64, error) {
	promoted := &minivm.Program{Entry: prog.Entry}
	promoted.Classes = append(promoted.Classes, prog.Classes...)
	for _, name := range absorbed {
		for _, c := range prog.Dynamic {
			if c.Name == name {
				promoted.Classes = append(promoted.Classes, c)
			}
		}
	}
	for _, c := range prog.Dynamic {
		if !contains(absorbed, c.Name) {
			promoted.Dynamic = append(promoted.Dynamic, c)
		}
	}
	start := time.Now()
	if _, err := deltapath.Analyze(promoted, deltapath.Options{}); err != nil {
		return 0, err
	}
	return time.Since(start).Nanoseconds(), nil
}

// dynamicOrder returns the program's dynamic class names in declaration
// order — the absorption schedule.
func dynamicOrder(prog *minivm.Program) []string {
	out := make([]string, 0, len(prog.Dynamic))
	for _, c := range prog.Dynamic {
		out = append(out, c.Name)
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// RenderExtend prints the incremental-encoding table. The verify column is
// split out of the Extend latency (analyze_us + verify_us = extend total),
// and the proof column reports the gate's reuse: "full" for a from-scratch
// certification, or re-proven/total territory counts for a delta proof.
func RenderExtend(rows []ExtendRow) string {
	var b strings.Builder
	b.WriteString("Incremental encoding: Extend latency vs whole-program re-analysis, and steady-state hazard pushes\n")
	fmt.Fprintf(&b, "%-10s %-8s %5s | %10s %10s %10s %7s | %11s %7s %11s | %10s %10s\n",
		"program", "class", "epoch", "analyze_us", "verify_us", "full_us", "speedup",
		"dirty/total", "re-anch", "proof", "haz before", "haz after")
	for _, r := range rows {
		proof := "full"
		if r.VerifyDelta {
			proof = fmt.Sprintf("%d/%d terr", r.DirtyTerritories, r.TotalTerritories)
		}
		fmt.Fprintf(&b, "%-10s %-8s %5d | %10.1f %10.1f %10.1f %6.1fx | %5d/%-5d %7d %11s | %10.2f %10.2f\n",
			r.Program, r.Class, r.Epoch,
			float64(r.AnalyzeNs)/1e3, float64(r.VerifyNs)/1e3, float64(r.FullNs)/1e3, r.Speedup,
			r.DirtyNodes, r.TotalNodes, r.RecomputedAnchors, proof,
			r.HazardsBefore, r.HazardsAfter)
	}
	return b.String()
}
