package eval

import (
	"strings"
	"testing"

	"deltapath/internal/workload"
)

// smallSuite picks three benchmarks spanning the interesting regimes:
// a small one, a >64-bit one (anchors), and one with a big application.
func smallSuite(t *testing.T) []workload.Params {
	t.Helper()
	var out []workload.Params
	for _, name := range []string{"compress", "xml.validation", "sunflow"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("benchmark %s missing", name)
		}
		out = append(out, p)
	}
	return out
}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(smallSuite(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Program] = r
	}
	// compress: modest space, no anchors, small app graph.
	c := byName["compress"]
	if c.All.Anchors != 0 {
		t.Errorf("compress needed %d anchors", c.All.Anchors)
	}
	if c.All.MaxIDBits >= 63 || c.All.MaxIDBits < 14 {
		t.Errorf("compress space = %d bits, want mid-range", c.All.MaxIDBits)
	}
	if c.App.Nodes >= c.All.Nodes/5 {
		t.Errorf("compress app graph not much smaller: %d vs %d", c.App.Nodes, c.All.Nodes)
	}
	// The two >64-bit programs of Table 1 require anchors under
	// encoding-all; their application setting must not.
	for _, name := range []string{"xml.validation", "sunflow"} {
		r := byName[name]
		if r.All.MaxIDBits <= 64 {
			t.Errorf("%s space = %d bits, want >64 (Table 1 bold)", name, r.All.MaxIDBits)
		}
		if r.All.Anchors == 0 {
			t.Errorf("%s: no anchors added despite >64-bit space", name)
		}
		if r.App.Anchors != 0 {
			t.Errorf("%s: application setting needed %d anchors", name, r.App.Anchors)
		}
		t.Logf("%s: space=%s anchors=%d", name, r.All.MaxID, r.All.Anchors)
	}
}

func TestFigure8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is slow")
	}
	rows, err := Figure8(smallSuite(t), 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s: pcc=%.3f dp=%.3f dp+cpt=%.3f (native %.0f steps/s)",
			r.Program, r.PCC, r.DeltaNoCPT, r.DeltaCPT, r.NativeSteps)
		// All instrumented configurations are slower than native but
		// must not be catastrophically slow. Wide bounds: these are
		// short runs on a shared machine, so per-benchmark numbers are
		// noisy; the real measurement lives in cmd/dpbench at full
		// scale.
		for _, v := range []float64{r.PCC, r.DeltaNoCPT, r.DeltaCPT} {
			if v <= 0.05 || v > 1.6 {
				t.Errorf("%s: normalized speed %.3f out of plausible range", r.Program, v)
			}
		}
	}
	g := GeoMean(rows, func(r Fig8Row) float64 { return r.DeltaNoCPT })
	if g <= 0 || g > 1.5 {
		t.Errorf("geometric mean %.3f implausible", g)
	}
	// On average, CPT must not be faster than plain DeltaPath beyond
	// measurement noise.
	gc := GeoMean(rows, func(r Fig8Row) float64 { return r.DeltaCPT })
	if gc > g*1.25 {
		t.Errorf("CPT geomean %.3f implausibly faster than no-CPT %.3f", gc, g)
	}
}

func TestTable2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("collection run is slow")
	}
	rows, err := Table2(smallSuite(t), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s: total=%d depth=%d/%.1f uniq true/pcc/dp=%d/%d/%d stack=%d/%.1f ucp=%d/%.2f maxID=%d",
			r.Program, r.TotalContexts, r.MaxDepth, r.AvgDepth,
			r.UniqueTrue, r.UniquePCC, r.UniqueDelta,
			r.MaxStack, r.AvgStack, r.MaxUCP, r.AvgUCP, r.MaxID)
		if r.DecodeErrors != 0 {
			t.Errorf("%s: %d decode errors", r.Program, r.DecodeErrors)
		}
		if r.TotalContexts == 0 {
			t.Errorf("%s: no contexts collected", r.Program)
		}
		// DeltaPath never loses contexts: its unique encodings are at
		// least the ground-truth count (site-level granularity can only
		// add distinctions), while PCC may lose some to collisions.
		if r.UniqueDelta < r.UniqueTrue {
			t.Errorf("%s: DeltaPath unique %d < ground truth %d",
				r.Program, r.UniqueDelta, r.UniqueTrue)
		}
		if r.UniquePCC > r.UniqueDelta {
			t.Errorf("%s: PCC unique %d > DeltaPath %d", r.Program, r.UniquePCC, r.UniqueDelta)
		}
		// The encoding stack stays shallower than the context depth
		// (small slack absorbs tiny-run noise; the full-scale gap is
		// reported in EXPERIMENTS.md).
		if r.AvgStack > r.AvgDepth+0.5 {
			t.Errorf("%s: avg stack %.1f deeper than avg context %.1f",
				r.Program, r.AvgStack, r.AvgDepth)
		}
		// Dynamic classes are loaded, so hazardous UCPs must appear.
		if r.MaxUCP == 0 {
			t.Errorf("%s: no hazardous UCPs detected", r.Program)
		}
	}
}

func TestFigure8WorkersParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is slow")
	}
	p, _ := workload.ByName("compress")
	rows, err := Figure8Workers([]workload.Params{p}, 0.05, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("4 workers: pcc=%.3f dp=%.3f cpt=%.3f native=%.0f steps/s",
		r.PCC, r.DeltaNoCPT, r.DeltaCPT, r.NativeSteps)
	for _, v := range []float64{r.PCC, r.DeltaNoCPT, r.DeltaCPT} {
		if v <= 0.05 || v > 1.8 {
			t.Errorf("normalized speed %.3f implausible", v)
		}
	}
}

func TestDecodeLatency(t *testing.T) {
	p, _ := workload.ByName("compress")
	rows, err := DecodeLatency([]workload.Params{p}, 0.1, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Contexts == 0 || r.LegacyNs <= 0 || r.CompiledNs <= 0 || r.Speedup <= 0 || r.FramesPerSec <= 0 {
		t.Fatalf("implausible decode row: %+v", r)
	}
	// "Instant decoding": the compiled path must stay far under a
	// millisecond per context on these graphs.
	if r.CompiledNs > 10_000_000 {
		t.Fatalf("compiled decode took %.0f ns/context; not instant", r.CompiledNs)
	}
	// The allocation-free claim: the best timed batch must see (nearly) no
	// heap allocations per decode. Allow slack for incidental runtime
	// allocations outside the decoder (GC bookkeeping on a busy box), and
	// skip the bound entirely under -race, where sync.Pool intentionally
	// drops items and every decode re-allocates its scratch.
	if r.AllocsPerOp > 1 && !raceEnabled {
		t.Fatalf("compiled decode allocated %.2f objects/op; expected ~0", r.AllocsPerOp)
	}
	out := RenderDecodeLatency(rows)
	if !strings.Contains(out, "compress") {
		t.Fatalf("render missing program:\n%s", out)
	}
}
