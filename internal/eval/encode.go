package eval

import (
	"math"
	"time"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/instrument"
	"deltapath/internal/minivm"
	"deltapath/internal/obs"
	"deltapath/internal/workload"
)

// EncodeRow reports encode hot-path cost for one benchmark: nanoseconds of
// whole-run time per probe event with the observability layer off (the
// nil-sink default) and on (a live registry), and the relative overhead.
// This is the guard for the layer's design constraint — metrics must not
// distort what they measure — and the row the bench-smoke CI gate compares
// across commits (ratios, not absolute times: the overhead percentage is
// machine-independent even when ns/event is not).
type EncodeRow struct {
	Program       string
	Events        uint64  // probe events per run (calls×2 + entries×2)
	NsPerEventOff float64 // best-of-repeats, observability disabled
	NsPerEventOn  float64 // best-of-repeats, registry attached
	OverheadPct   float64 // (on-off)/off × 100
}

// countingProbes counts probe events without doing any other work — the
// pre-pass that fixes the per-run event count both timed configurations
// are normalized by.
type countingProbes struct{ events uint64 }

func (c *countingProbes) BeforeCall(minivm.SiteRef, minivm.MethodRef) uint8 {
	c.events++
	return 0
}
func (c *countingProbes) AfterCall(minivm.SiteRef, minivm.MethodRef, uint8) { c.events++ }
func (c *countingProbes) Enter(minivm.MethodRef) uint8 {
	c.events++
	return 0
}
func (c *countingProbes) Exit(minivm.MethodRef, uint8) { c.events++ }

// EncodeOverhead measures the observability layer's encode hot-path cost
// over the suite. Each configuration reports the fastest of repeats runs —
// the best-of-N discipline the 1-CPU container demands. reg (nil = a
// private registry) receives the metrics-on runs' counts, so dpbench -json
// can emit the aggregate as its meta.metrics block.
func EncodeOverhead(suite []workload.Params, scale float64, repeats int, reg *obs.Registry) ([]EncodeRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rows := make([]EncodeRow, 0, len(suite))
	for _, p := range suite {
		prog, err := p.Scale(scale).Generate()
		if err != nil {
			return nil, err
		}
		build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
		if err != nil {
			return nil, err
		}
		res, err := core.Encode(build.Graph, core.Options{})
		if err != nil {
			return nil, err
		}
		plan, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
		if err != nil {
			return nil, err
		}
		instrSet := plan.InstrumentedMethods()

		// Pre-pass: fix the probe-event count for this (program, seed).
		counter := &countingProbes{}
		vm, err := minivm.NewVM(prog, p.Seed)
		if err != nil {
			return nil, err
		}
		vm.SetProbes(counter)
		vm.SetInstrumented(instrSet)
		if err := vm.Run(); err != nil {
			return nil, err
		}
		events := counter.events
		if events == 0 {
			continue // nothing instrumented at this scale
		}

		// timeRun reports the fastest whole-run seconds over repeats with a
		// fresh encoder per run (observe == nil leaves the no-op sinks).
		timeRun := func(observe func(*instrument.Encoder)) (float64, error) {
			best := math.Inf(1)
			for i := 0; i < repeats; i++ {
				enc := instrument.NewEncoder(plan)
				if observe != nil {
					observe(enc)
				}
				vm, err := minivm.NewVM(prog, p.Seed)
				if err != nil {
					return 0, err
				}
				vm.SetProbes(enc)
				vm.SetInstrumented(instrSet)
				start := time.Now()
				if err := vm.Run(); err != nil {
					return 0, err
				}
				if d := time.Since(start).Seconds(); d < best {
					best = d
				}
			}
			return best, nil
		}

		off, err := timeRun(nil)
		if err != nil {
			return nil, err
		}
		on, err := timeRun(func(enc *instrument.Encoder) { enc.Observe(reg, nil) })
		if err != nil {
			return nil, err
		}
		row := EncodeRow{
			Program:       p.Name,
			Events:        events,
			NsPerEventOff: off * 1e9 / float64(events),
			NsPerEventOn:  on * 1e9 / float64(events),
		}
		row.OverheadPct = (row.NsPerEventOn - row.NsPerEventOff) / row.NsPerEventOff * 100
		rows = append(rows, row)
	}
	return rows, nil
}
