package eval

import (
	"fmt"
	"sync"
	"time"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/instrument"
	"deltapath/internal/minivm"
	"deltapath/internal/profile"
	"deltapath/internal/workload"
)

// ProfileRow is the sharded store's intern throughput at one worker count.
type ProfileRow struct {
	Workers       int
	Interns       uint64  // total Intern calls across all workers
	Unique        uint64  // distinct context records in the corpus
	NsPerIntern   float64 // wall-clock ns per intern (aggregate)
	InternsPerSec float64
	Speedup       float64 // throughput relative to the first worker count
}

// minProfileInterns sets the measurement floor: the corpus is replayed
// enough rounds that every worker count performs at least this many interns,
// so the timings are not dominated by goroutine start-up.
const minProfileInterns = 1 << 18

// ProfileThroughput measures the concurrent profile store: it collects one
// corpus of marshalled context records by running the suite's workloads
// under full instrumentation, then times workerCounts goroutines interning
// the corpus concurrently into a fresh store. Total work is fixed across
// worker counts (the corpus rounds are striped over the workers), so
// Speedup is the classic fixed-work scaling ratio. On a single-CPU machine
// the rows degenerate to ~1.0× — the store is then measured for overhead,
// not scaling.
func ProfileThroughput(suite []workload.Params, scale float64, workerCounts []int) ([]ProfileRow, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	corpus, err := profileCorpus(suite, scale)
	if err != nil {
		return nil, err
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("eval: profile corpus is empty")
	}
	rounds := 1
	for rounds*len(corpus) < minProfileInterns {
		rounds++
	}
	total := uint64(rounds * len(corpus))

	rows := make([]ProfileRow, 0, len(workerCounts))
	var base float64
	for _, workers := range workerCounts {
		if workers < 1 {
			return nil, fmt.Errorf("eval: worker count %d < 1", workers)
		}
		store := profile.NewStore(0)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Stripe the rounds over the workers: fixed total work.
				for r := w; r < rounds; r += workers {
					for _, rec := range corpus {
						store.Intern(rec)
					}
				}
			}(w)
		}
		// Workers may not divide rounds evenly; the stripes above cover
		// every round exactly once regardless.
		wg.Wait()
		elapsed := time.Since(start)
		if store.Total() != total {
			return nil, fmt.Errorf("eval: store total %d, want %d", store.Total(), total)
		}
		row := ProfileRow{
			Workers:       workers,
			Interns:       total,
			Unique:        store.Unique(),
			NsPerIntern:   float64(elapsed.Nanoseconds()) / float64(total),
			InternsPerSec: float64(total) / elapsed.Seconds(),
		}
		if base == 0 {
			base = row.InternsPerSec
		}
		row.Speedup = row.InternsPerSec / base
		rows = append(rows, row)
	}
	return rows, nil
}

// profileCorpus runs each workload once under full instrumentation and
// collects the marshalled context record of every emit — the same bytes the
// runtime pipeline interns.
func profileCorpus(suite []workload.Params, scale float64) ([][]byte, error) {
	var corpus [][]byte
	for _, p := range suite {
		prog, err := p.Scale(scale).Generate()
		if err != nil {
			return nil, err
		}
		build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		res, err := core.Encode(build.Graph, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		plan, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		enc := instrument.NewEncoder(plan)
		vm, err := minivm.NewVM(prog, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		vm.SetProbes(enc)
		vm.SetInstrumented(plan.InstrumentedMethods())
		vm.OnEmit = func(_ *minivm.VM, m minivm.MethodRef, _ string) {
			node, known := build.NodeOf[m]
			if !known {
				return
			}
			corpus = append(corpus, encoding.MarshalContext(enc.State(), node))
		}
		if err := vm.Run(); err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
	}
	return corpus, nil
}
