package eval

import (
	"fmt"
	"strings"
)

// RenderTable1 prints Table 1 in the paper's layout: one row per program,
// static characteristics under encoding-all and encoding-application.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Static program characteristics (synthetic SPECjvm2008-shaped suite)\n")
	fmt.Fprintf(&b, "%-22s %8s | %6s %6s %6s %6s %9s %4s | %6s %6s %6s %6s %9s %4s\n",
		"program", "size(B)",
		"nodes", "edges", "CS", "VCS", "max.ID", "anc",
		"nodes", "edges", "CS", "VCS", "max.ID", "anc")
	fmt.Fprintf(&b, "%-22s %8s | %-48s | %-48s\n", "", "",
		"---------------- encoding-all ------------------",
		"------------- encoding-application -------------")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %8d | %6d %6d %6d %6d %9s %4d | %6d %6d %6d %6d %9s %4d\n",
			r.Program, r.Size,
			r.All.Nodes, r.All.Edges, r.All.CS, r.All.VCS, r.All.MaxID, r.All.Anchors,
			r.App.Nodes, r.App.Edges, r.App.CS, r.App.VCS, r.App.MaxID, r.App.Anchors)
	}
	return b.String()
}

// RenderFigure8 prints Figure 8 as a text table plus bar chart: normalized
// execution speed (1.00 = native) under PCC, DeltaPath without call path
// tracking, and DeltaPath with call path tracking.
func RenderFigure8(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString("Figure 8: Normalized execution speed (1.00 = native; higher is better)\n")
	fmt.Fprintf(&b, "%-22s %8s %10s %9s  %s\n", "program", "PCC", "DP(woCPT)", "DP(wCPT)", "speed bars (PCC/woCPT/wCPT)")
	bar := func(v float64) string {
		n := int(v*30 + 0.5)
		if n < 0 {
			n = 0
		}
		if n > 45 {
			n = 45
		}
		return strings.Repeat("█", n)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %8.3f %10.3f %9.3f\n", r.Program, r.PCC, r.DeltaNoCPT, r.DeltaCPT)
		fmt.Fprintf(&b, "%22s P %s\n", "", bar(r.PCC))
		fmt.Fprintf(&b, "%22s D %s\n", "", bar(r.DeltaNoCPT))
		fmt.Fprintf(&b, "%22s C %s\n", "", bar(r.DeltaCPT))
	}
	gm := func(sel func(Fig8Row) float64) float64 { return GeoMean(rows, sel) }
	fmt.Fprintf(&b, "%-22s %8.3f %10.3f %9.3f   (geometric means)\n", "geomean",
		gm(func(r Fig8Row) float64 { return r.PCC }),
		gm(func(r Fig8Row) float64 { return r.DeltaNoCPT }),
		gm(func(r Fig8Row) float64 { return r.DeltaCPT }))
	fmt.Fprintf(&b, "average slowdowns: PCC %.2f%%, DeltaPath wo/CPT %.2f%%, w/CPT %.2f%%\n",
		100*(1-gm(func(r Fig8Row) float64 { return r.PCC })),
		100*(1-gm(func(r Fig8Row) float64 { return r.DeltaNoCPT })),
		100*(1-gm(func(r Fig8Row) float64 { return r.DeltaCPT })))
	return b.String()
}

// RenderTable2 prints Table 2 in the paper's layout: dynamic
// characteristics of the collected calling contexts.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Dynamic program characteristics\n")
	fmt.Fprintf(&b, "%-22s %10s %5s %6s | %8s | %8s %6s %6s %4s %6s %10s | %6s\n",
		"program", "total ctx", "max.d", "avg.d", "PCC uniq",
		"DP uniq", "max.st", "avg.st", "mUCP", "aUCP", "max.ID", "dec.err")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10d %5d %6.1f | %8d | %8d %6d %6.1f %4d %6.2f %10d | %6d\n",
			r.Program, r.TotalContexts, r.MaxDepth, r.AvgDepth, r.UniquePCC,
			r.UniqueDelta, r.MaxStack, r.AvgStack, r.MaxUCP, r.AvgUCP, r.MaxID, r.DecodeErrors)
	}
	return b.String()
}

// RenderProfile prints the concurrent-store throughput table.
func RenderProfile(rows []ProfileRow) string {
	var b strings.Builder
	b.WriteString("Profile store throughput (fixed total work; speedup vs first worker count)\n")
	fmt.Fprintf(&b, "%8s %12s %10s %12s %14s %8s\n",
		"workers", "interns", "unique", "ns/intern", "interns/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %12d %10d %12.1f %14.0f %7.2fx\n",
			r.Workers, r.Interns, r.Unique, r.NsPerIntern, r.InternsPerSec, r.Speedup)
	}
	return b.String()
}

// RenderEncode prints the observability-overhead table.
func RenderEncode(rows []EncodeRow) string {
	var b strings.Builder
	b.WriteString("Encode hot-path cost (whole-run ns per probe event; metrics off vs on)\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %12s %10s\n",
		"program", "events", "off ns/ev", "on ns/ev", "overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12d %12.2f %12.2f %9.2f%%\n",
			r.Program, r.Events, r.NsPerEventOff, r.NsPerEventOn, r.OverheadPct)
	}
	return b.String()
}

// RenderScale prints the huge-graph scalability curve: nodes vs analysis,
// compile, memory budget, and decode cost, with the per-tier equivalence
// and certification verdicts.
func RenderScale(rows []ScaleRow) string {
	var b strings.Builder
	b.WriteString("Scale curve: huge-graph tiers (parallel level-wise analysis vs serial reference)\n")
	fmt.Fprintf(&b, "%-12s %9s %9s %4s %6s %4s %9s %9s %9s %9s %9s %8s %9s %5s %9s %6s\n",
		"tier", "nodes", "edges", "anc", "levels", "par",
		"par ms", "serial ms", "compile", "verify", "ver(par)", "MiB", "B/node", "bits", "decode ns", "proof")
	for _, r := range rows {
		proof := "OK"
		if !r.Identical {
			proof = "DIVERGED"
		} else if !r.VerifyClean {
			proof = "UNSOUND"
		} else if !r.VerifyIdentical {
			proof = "VDIVERGED"
		}
		fmt.Fprintf(&b, "%-12s %9d %9d %4d %6d %4d %9.0f %9.0f %9.0f %9.0f %9.0f %8.0f %9.0f %5d %9.0f %6s\n",
			r.Tier, r.Nodes, r.Edges, r.Anchors, r.Levels, r.Par,
			r.ParMs, r.SerialMs, r.CompileMs, r.VerifyMs, r.VerifyParMs,
			float64(r.PeakBytes)/(1<<20), r.BytesPerNode, r.MaxIDBits, r.DecodeNs, proof)
	}
	b.WriteString("proof: OK = parallel .dpa byte-identical to serial, verifier certified the spec,\n" +
		"       and the parallel verifier's report byte-identical to the serial one's\n")
	return b.String()
}

// RenderDecodeLatency prints the decode-throughput table: legacy map
// decoder vs compiled flat tables on the same sampled contexts.
func RenderDecodeLatency(rows []DecodeRow) string {
	var b strings.Builder
	b.WriteString("Decode throughput (ns per context; legacy map decoder vs compiled flat tables)\n")
	fmt.Fprintf(&b, "%-22s %9s %11s %12s %8s %13s %10s %7s\n",
		"program", "contexts", "legacy ns", "compiled ns", "speedup", "frames/s", "allocs/op", "max.d")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %9d %11.1f %12.1f %7.2fx %13.0f %10.2f %7d\n",
			r.Program, r.Contexts, r.LegacyNs, r.CompiledNs, r.Speedup,
			r.FramesPerSec, r.AllocsPerOp, r.MaxDepth)
	}
	return b.String()
}
