package eval

// The ingest-throughput experiment: what does the group-commit WAL buy on
// the dprofiled write path? For each agent count it boots two in-process
// servers over real durable state — one with group commit (the default),
// one fsyncing every batch individually — drives the same fixed batch
// count per agent through the HTTP ingest protocol (prebuilt .dpp bodies:
// the server commit path is under test, not client-side marshalling),
// and reports acked-batch throughput, ack-latency quantiles,
// and the fsyncs each policy actually issued. Speedup is the
// group/per-batch throughput ratio — the machine-independent number the
// bench-smoke gate compares, since absolute fsync cost is a property of
// the box's storage, not of the code.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"deltapath"
	"deltapath/internal/analysisio"
	"deltapath/internal/obs"
	"deltapath/internal/profile"
	"deltapath/internal/server"
)

// ingestCorpusSrc is the fixture program: recursion gives the batch a
// realistic spread of context records (hundreds of distinct keys, variable
// length) without a large analysis.
const ingestCorpusSrc = `
entry G.main
class G {
  method main {
    call G.fib
    call Even.check
    loop 3 { call G.leaf }
    emit done
  }
  method fib { rcall 7 G.fib; rcall 8 G.fib; emit fib }
  method leaf { work 1; emit leaf }
}
class Even { method check { rcall 9 Odd.check; emit even } }
class Odd { method check { rcall 9 Even.check; emit odd } }
`

// IngestRow is one agent count's paired measurement: the same workload
// under group commit and under per-batch fsync.
type IngestRow struct {
	Agents       int `json:"agents"`
	BatchRecords int `json:"batch_records"` // records per batch
	Batches      int `json:"batches"`       // total acked batches per mode
	// Group-commit mode (the production default).
	GroupBPS    float64 `json:"group_batches_per_sec"`
	GroupP50Ms  float64 `json:"group_p50_ack_ms"`
	GroupP99Ms  float64 `json:"group_p99_ack_ms"`
	GroupFsyncs uint64  `json:"group_fsyncs"`
	// Per-batch-fsync mode (server.Config.NoGroupCommit).
	PerBatchBPS    float64 `json:"per_batch_batches_per_sec"`
	PerBatchP50Ms  float64 `json:"per_batch_p50_ack_ms"`
	PerBatchP99Ms  float64 `json:"per_batch_p99_ack_ms"`
	PerBatchFsyncs uint64  `json:"per_batch_fsyncs"`
	// Speedup is GroupBPS / PerBatchBPS — the gated ratio.
	Speedup float64 `json:"speedup"`
}

// ingestBatchRecords bounds one pushed batch. Small batches are the shape
// group commit exists for — many agents acking frequent small pushes, where
// the fsync (not batch parsing) is the per-ack cost. Larger batches shift
// the bottleneck to CPU and flatten the policies together.
const ingestBatchRecords = 16

// IngestThroughput runs the experiment for each agent count. scale sets the
// batches each agent pushes (600 at scale 1.0, floor 10, cap 120), so a
// smoke run stays cheap while the baseline gets stable quantiles. The cap
// exists because the run is fsync-bound: the policy ratio stabilizes after
// ~100 batches per agent, and longer runs only accumulate disk-state drift
// (journal warm-up, file growth) that moves both modes' absolutes without
// informing the gated ratio. All agents push the same record set to one
// tenant; batch IDs are unique per push, so every batch is fresh work for
// the WAL.
//
// repeats runs each agent count's (group, per-batch) pair that many times
// and keeps the MEDIAN-speedup row. Median, not best: the ratio's noise
// comes from either arm hitting a slow disk moment, and a best-of rule
// would systematically keep the repetitions where the per-batch arm
// stalled — recording an inflated ratio no honest re-measurement could
// reproduce. The -compare gate's fresh side still takes its best
// repetition, which only errs toward passing.
func IngestThroughput(scale float64, repeats int, agentCounts []int) ([]IngestRow, error) {
	if len(agentCounts) == 0 {
		agentCounts = []int{1, 4, 8}
	}
	if repeats < 1 {
		repeats = 1
	}
	batchesPerAgent := int(scale * 600)
	if batchesPerAgent < 10 {
		batchesPerAgent = 10
	}
	if batchesPerAgent > 120 {
		batchesPerAgent = 120
	}

	prog, err := deltapath.ParseProgram(ingestCorpusSrc)
	if err != nil {
		return nil, fmt.Errorf("eval: ingest corpus: %w", err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		return nil, fmt.Errorf("eval: ingest corpus: %w", err)
	}
	var dpa bytes.Buffer
	if err := an.SaveAnalysis(&dpa); err != nil {
		return nil, err
	}
	bundle, err := analysisio.Load(bytes.NewReader(dpa.Bytes()))
	if err != nil {
		return nil, err
	}
	ctxs, err := an.Run(1, nil)
	if err != nil {
		return nil, err
	}
	var recs []profile.Record
	for _, c := range ctxs {
		key, err := c.MarshalBinary()
		if err != nil {
			continue
		}
		recs = append(recs, profile.Record{Key: key, Count: 1})
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("eval: ingest corpus emitted no records")
	}
	if len(recs) > ingestBatchRecords {
		recs = recs[:ingestBatchRecords]
	}

	var rows []IngestRow
	for _, agents := range agentCounts {
		if agents < 1 {
			return nil, fmt.Errorf("eval: agent count %d < 1", agents)
		}
		var reps []IngestRow
		for rep := 0; rep < repeats; rep++ {
			grp, err := measureIngest(false, agents, batchesPerAgent, dpa.Bytes(), bundle.Digest, recs)
			if err != nil {
				return nil, fmt.Errorf("eval: ingest group agents=%d: %w", agents, err)
			}
			per, err := measureIngest(true, agents, batchesPerAgent, dpa.Bytes(), bundle.Digest, recs)
			if err != nil {
				return nil, fmt.Errorf("eval: ingest per-batch agents=%d: %w", agents, err)
			}
			row := IngestRow{
				Agents:         agents,
				BatchRecords:   len(recs),
				Batches:        agents * batchesPerAgent,
				GroupBPS:       grp.bps,
				GroupP50Ms:     grp.p50ms,
				GroupP99Ms:     grp.p99ms,
				GroupFsyncs:    grp.fsyncs,
				PerBatchBPS:    per.bps,
				PerBatchP50Ms:  per.p50ms,
				PerBatchP99Ms:  per.p99ms,
				PerBatchFsyncs: per.fsyncs,
			}
			if per.bps > 0 {
				row.Speedup = grp.bps / per.bps
			}
			reps = append(reps, row)
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i].Speedup < reps[j].Speedup })
		rows = append(rows, reps[len(reps)/2])
	}
	return rows, nil
}

// ingestMeasure is one mode's result.
type ingestMeasure struct {
	bps, p50ms, p99ms float64
	fsyncs            uint64
}

// measureIngest boots a fresh server over a temp data dir, pushes
// batchesPerAgent batches from each of agents concurrent clients, and
// tears everything down. WAL and memtable thresholds are set high so the
// measurement isolates the commit policy — no flush lands mid-run.
func measureIngest(noGroup bool, agents, batchesPerAgent int, dpa []byte, digest analysisio.GraphDigest, recs []profile.Record) (ingestMeasure, error) {
	dir, err := os.MkdirTemp("", "dp-ingest-*")
	if err != nil {
		return ingestMeasure{}, err
	}
	defer os.RemoveAll(dir)

	srv, err := server.New(server.Config{
		DataDir:          dir,
		QueueDepth:       64,
		WALMaxBytes:      256 << 20,
		MemtableMaxBytes: 256 << 20,
		NoGroupCommit:    noGroup,
		Registry:         obs.NewRegistry(),
	})
	if err != nil {
		return ingestMeasure{}, err
	}
	if _, err := srv.AddTenant("bench", bytes.NewReader(dpa)); err != nil {
		return ingestMeasure{}, err
	}
	// One .dpp body, built once: the server's commit path is under test, so
	// the pushing side must not spend the box's single CPU re-marshalling a
	// body that never changes. Batch identity still changes per push — the
	// X-Batch-ID header is what the dedupe set keys on.
	var body bytes.Buffer
	pw, err := profile.NewWriter(&body, digest)
	if err != nil {
		return ingestMeasure{}, err
	}
	for _, r := range recs {
		if err := pw.Add(r.Key, r.Count); err != nil {
			return ingestMeasure{}, err
		}
	}
	if err := pw.Flush(); err != nil {
		return ingestMeasure{}, err
	}

	// Agents drive the handler directly rather than through a TCP socket:
	// the full ingest path runs — routing, parse, queue, group commit,
	// fsync, ack — but the box's single CPU is not also spent on kernel
	// networking, which is identical under both commit policies and only
	// dilutes the ratio this experiment measures.
	handler := srv.Handler()
	lats := make([][]time.Duration, agents)
	errs := make([]error, agents)
	startGate := make(chan struct{})
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			<-startGate
			for i := 0; i < batchesPerAgent; i++ {
				t0 := time.Now()
				if err := postBatch(handler, body.Bytes(), fmt.Sprintf("bench-%d-%d", a, i)); err != nil {
					errs[a] = err
					return
				}
				lats[a] = append(lats[a], time.Since(t0))
			}
		}(a)
	}
	start := time.Now()
	close(startGate)
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ingestMeasure{}, err
		}
	}

	fsyncs, err := tenantFsyncs(handler)
	if err != nil {
		return ingestMeasure{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		return ingestMeasure{}, err
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := agents * batchesPerAgent
	return ingestMeasure{
		bps:    float64(total) / wall.Seconds(),
		p50ms:  float64(quantile(all, 0.50).Nanoseconds()) / 1e6,
		p99ms:  float64(quantile(all, 0.99).Nanoseconds()) / 1e6,
		fsyncs: fsyncs,
	}, nil
}

// postBatch sends one prebuilt .dpp body under a fresh batch ID, retrying
// backpressure sheds (429) and transient unavailability (503) until the
// batch is acked — the same contract agentclient keeps, minus its
// per-push marshalling.
func postBatch(handler http.Handler, body []byte, batchID string) error {
	for {
		req := httptest.NewRequest("POST", "/ingest", bytes.NewReader(body))
		req.Header.Set("X-Batch-ID", batchID)
		req.Header.Set("Content-Type", "application/octet-stream")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(time.Millisecond)
		default:
			return fmt.Errorf("ingest batch %s: status %d: %s", batchID, rec.Code, rec.Body.String())
		}
	}
}

// quantile indexes a sorted latency slice at q (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// tenantFsyncs reads the single tenant's group_fsyncs counter from
// /healthz: the number of WAL fsyncs the commit loop issued. Under
// per-batch mode every fresh batch is its own group, so the same counter
// is the per-batch fsync count.
func tenantFsyncs(handler http.Handler) (uint64, error) {
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		return 0, fmt.Errorf("healthz status %d", rec.Code)
	}
	var h struct {
		Tenants []struct {
			GroupFsyncs uint64 `json:"group_fsyncs"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&h); err != nil {
		return 0, err
	}
	if len(h.Tenants) != 1 {
		return 0, fmt.Errorf("healthz reported %d tenants, want 1", len(h.Tenants))
	}
	return h.Tenants[0].GroupFsyncs, nil
}

// RenderIngest prints the ingest-throughput table.
func RenderIngest(rows []IngestRow) string {
	var b strings.Builder
	b.WriteString("Ingest fast path: group-commit WAL vs per-batch fsync (one tenant, fixed batches per agent)\n")
	fmt.Fprintf(&b, "%6s %7s %7s | %9s %8s %8s %7s | %9s %8s %8s %7s | %7s\n",
		"agents", "batches", "rec/bat",
		"grp b/s", "p50 ms", "p99 ms", "fsyncs",
		"solo b/s", "p50 ms", "p99 ms", "fsyncs",
		"speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %7d %7d | %9.1f %8.2f %8.2f %7d | %9.1f %8.2f %8.2f %7d | %6.2fx\n",
			r.Agents, r.Batches, r.BatchRecords,
			r.GroupBPS, r.GroupP50Ms, r.GroupP99Ms, r.GroupFsyncs,
			r.PerBatchBPS, r.PerBatchP50Ms, r.PerBatchP99Ms, r.PerBatchFsyncs,
			r.Speedup)
	}
	return b.String()
}
