package eval

import (
	"strings"
	"testing"
)

func TestRenderTable1(t *testing.T) {
	rows := []Table1Row{{
		Program: "demo",
		Size:    1234,
		All:     Table1Cols{Nodes: 10, Edges: 20, CS: 15, VCS: 5, MaxID: "4.4e+21", MaxIDBits: 72, Anchors: 6},
		App:     Table1Cols{Nodes: 3, Edges: 2, CS: 2, VCS: 1, MaxID: "12", Anchors: 0},
	}}
	out := RenderTable1(rows)
	for _, frag := range []string{"demo", "4.4e+21", "encoding-all", "encoding-application", "12"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 1 render missing %q:\n%s", frag, out)
		}
	}
}

func TestRenderFigure8(t *testing.T) {
	rows := []Fig8Row{
		{Program: "a", PCC: 0.8, DeltaNoCPT: 0.7, DeltaCPT: 0.65, NativeSteps: 1e8},
		{Program: "b", PCC: 0.9, DeltaNoCPT: 0.85, DeltaCPT: 0.8, NativeSteps: 2e8},
	}
	out := RenderFigure8(rows)
	for _, frag := range []string{"geomean", "average slowdowns", "0.800", "0.650"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Figure 8 render missing %q:\n%s", frag, out)
		}
	}
	// Bars present and bounded.
	if !strings.Contains(out, "█") {
		t.Error("no bars rendered")
	}
}

func TestRenderTable2(t *testing.T) {
	rows := []Table2Row{{
		Program: "demo", TotalContexts: 100, MaxDepth: 9, AvgDepth: 4.5,
		UniqueTrue: 40, UniquePCC: 38, UniqueDelta: 42,
		MaxStack: 5, AvgStack: 1.2, MaxUCP: 2, AvgUCP: 0.3, MaxID: 77,
	}}
	out := RenderTable2(rows)
	for _, frag := range []string{"demo", "100", "4.5", "38", "42", "77"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 2 render missing %q:\n%s", frag, out)
		}
	}
}

func TestGeoMeanEdgeCases(t *testing.T) {
	if GeoMean(nil, func(Fig8Row) float64 { return 1 }) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	rows := []Fig8Row{{PCC: 4}, {PCC: 1}}
	if g := GeoMean(rows, func(r Fig8Row) float64 { return r.PCC }); g < 1.99 || g > 2.01 {
		t.Errorf("GeoMean(4,1) = %f, want 2", g)
	}
}
