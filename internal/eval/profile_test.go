package eval

import (
	"strings"
	"testing"

	"deltapath/internal/workload"
)

func oneBench(t *testing.T, name string) []workload.Params {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("benchmark %s missing", name)
	}
	return []workload.Params{p}
}

func TestProfileThroughput(t *testing.T) {
	rows, err := ProfileThroughput(oneBench(t, "compress"), 0.02, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Workers != 1 || rows[1].Workers != 2 {
		t.Fatalf("worker counts: %d, %d", rows[0].Workers, rows[1].Workers)
	}
	// Fixed total work: every worker count interns the same corpus.
	if rows[0].Interns != rows[1].Interns || rows[0].Interns == 0 {
		t.Fatalf("intern totals differ: %d vs %d", rows[0].Interns, rows[1].Interns)
	}
	if rows[0].Unique != rows[1].Unique || rows[0].Unique == 0 {
		t.Fatalf("unique counts differ: %d vs %d", rows[0].Unique, rows[1].Unique)
	}
	if rows[0].Speedup != 1.0 {
		t.Fatalf("first row speedup %f, want 1.0", rows[0].Speedup)
	}
	for _, r := range rows {
		if r.NsPerIntern <= 0 || r.InternsPerSec <= 0 || r.Speedup <= 0 {
			t.Fatalf("non-positive timing in row %+v", r)
		}
	}
}

func TestProfileThroughputRejectsBadWorkers(t *testing.T) {
	if _, err := ProfileThroughput(oneBench(t, "compress"), 0.02, []int{0}); err == nil {
		t.Fatal("worker count 0 accepted")
	}
}

func TestRenderProfile(t *testing.T) {
	out := RenderProfile([]ProfileRow{
		{Workers: 1, Interns: 1000, Unique: 10, NsPerIntern: 50, InternsPerSec: 2e7, Speedup: 1},
		{Workers: 4, Interns: 1000, Unique: 10, NsPerIntern: 20, InternsPerSec: 5e7, Speedup: 2.5},
	})
	for _, want := range []string{"workers", "speedup", "2.50x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
