//go:build race

package eval

// raceEnabled reports that this binary was built with -race, whose
// instrumentation inflates allocations (sync.Pool intentionally drops
// items under it) — allocation-count assertions are meaningless there.
const raceEnabled = true
