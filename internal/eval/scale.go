package eval

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/bits"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"deltapath/internal/analysisio"
	"deltapath/internal/callgraph"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/verify"
	"deltapath/internal/workload"
)

// ScaleRow is one huge-graph tier of the scalability curve: analysis and
// compile latency, memory budget, and decode throughput at 10⁵–10⁶ nodes,
// plus the proofs the tier demands — the parallel engine's .dpa bytes
// identical to the serial reference's, and the verifier certifying the
// result.
type ScaleRow struct {
	Tier    string `json:"tier"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Sites   int    `json:"sites"`
	Anchors int    `json:"anchors"`
	// Levels is the parallel engine's wave count; Par its worker count.
	Levels    int     `json:"levels"`
	Par       int     `json:"par"`
	BuildMs   float64 `json:"build_ms"`
	ParMs     float64 `json:"par_ms"`    // parallel-engine analysis
	SerialMs  float64 `json:"serial_ms"` // serial reference analysis
	CompileMs float64 `json:"compile_ms"`
	// VerifyMs is the serial (Workers=1) soundness verification;
	// VerifyParMs the same proof on Par workers. VerifyIdentical proves
	// the parallel verifier's report and certificate byte-identical to the
	// serial one's — the level-parallel analogue of Identical.
	VerifyMs    float64 `json:"verify_ms"`
	VerifyParMs float64 `json:"verify_par_ms"`
	// Identical: SHA-256 of the serialized .dpa from both engines agree.
	Identical       bool `json:"identical"`
	VerifyClean     bool `json:"verify_clean"`
	VerifyIdentical bool `json:"verify_identical"`
	// PeakBytes/BytesPerNode are sampled heap peaks of the parallel run
	// (core.AnalysisStats); the parallel run goes first so the serial
	// engine's state never inflates them.
	PeakBytes    uint64  `json:"peak_bytes"`
	BytesPerNode float64 `json:"bytes_per_node"`
	MaxIDBits    int     `json:"max_id_bits"`
	Restarts     int     `json:"restarts"`
	// DecodeNs is best-of-repeats mean ns/context over sampled random-walk
	// contexts through the compiled decoder.
	DecodeNs     float64 `json:"decode_ns"`
	DecodeSample int     `json:"decode_sample"`
}

// ScaleCurve measures one row per tier. workers is the parallel engine's
// worker count (the size gate is bypassed so every tier exercises the
// level-parallel schedule); sample bounds the decoded contexts per tier
// (0 → 256).
func ScaleCurve(tiers []workload.HugeParams, workers, sample int) ([]ScaleRow, error) {
	if workers < 2 {
		workers = 2
	}
	if sample <= 0 {
		sample = 256
	}
	rows := make([]ScaleRow, 0, len(tiers))
	for _, p := range tiers {
		row, err := scaleTier(p, workers, sample)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		rows = append(rows, row)
		// Each tier holds multi-GB state at the top end; return it before
		// the next tier starts measuring its own peak.
		runtime.GC()
	}
	return rows, nil
}

func scaleTier(p workload.HugeParams, workers, sample int) (ScaleRow, error) {
	row := ScaleRow{Tier: p.Name}

	start := time.Now()
	g, err := p.Build()
	if err != nil {
		return row, err
	}
	row.BuildMs = msSince(start)
	row.Nodes, row.Edges, row.Sites = g.NumNodes(), g.NumEdges(), g.NumSites()

	// Parallel engine first, with memory measurement: at this point the
	// heap holds only the graph, so the sampled peak is the analysis's own.
	runtime.GC()
	start = time.Now()
	par, err := core.Encode(g, core.Options{Workers: workers, ParThreshold: -1, MeasureMemory: true})
	if err != nil {
		return row, fmt.Errorf("parallel encode: %w", err)
	}
	row.ParMs = msSince(start)
	if st := par.Stats; st != nil {
		row.Levels, row.Par = st.Levels, st.Par
		row.PeakBytes, row.BytesPerNode = st.PeakBytes, st.BytesPerNode
	}
	row.Anchors = len(par.Spec.Anchors)
	row.MaxIDBits = bits.Len64(par.MaxID)
	row.Restarts = par.Restarts

	start = time.Now()
	serial, err := core.Encode(g, core.Options{Workers: 1})
	if err != nil {
		return row, fmt.Errorf("serial encode: %w", err)
	}
	row.SerialMs = msSince(start)

	// Byte-identity of the full serialized analysis (spec + SIDs), hashed
	// streaming so neither .dpa is materialized.
	plan := cpt.Compute(g)
	ph, sh := sha256.New(), sha256.New()
	if err := analysisio.Save(ph, par.Spec, plan); err != nil {
		return row, err
	}
	if err := analysisio.Save(sh, serial.Spec, plan); err != nil {
		return row, err
	}
	row.Identical = string(ph.Sum(nil)) == string(sh.Sum(nil))
	serial = nil
	runtime.GC()

	start = time.Now()
	dec := encoding.Compile(par.Spec)
	row.CompileMs = msSince(start)

	start = time.Now()
	rep := verify.Check(par.Spec, plan, verify.Options{})
	row.VerifyMs = msSince(start)
	row.VerifyClean = rep.Clean()

	// Same proof on Par workers: the report (findings, stats, text) and the
	// emitted certificate must match the serial run byte for byte.
	start = time.Now()
	prep := verify.Check(par.Spec, plan, verify.Options{Workers: workers})
	row.VerifyParMs = msSince(start)
	row.VerifyIdentical, err = sameReport(rep, prep)
	if err != nil {
		return row, err
	}

	ns, n, err := scaleDecode(g, par.Spec, dec, p.Seed, sample)
	if err != nil {
		return row, err
	}
	row.DecodeNs, row.DecodeSample = ns, n
	return row, nil
}

// sameReport proves two verification reports interchangeable: identical
// JSON documents (findings, stats, delta block), identical rendered text,
// and structurally equal certificates.
func sameReport(a, b *verify.Report) (bool, error) {
	aj, err := json.Marshal(a)
	if err != nil {
		return false, err
	}
	bj, err := json.Marshal(b)
	if err != nil {
		return false, err
	}
	return string(aj) == string(bj) &&
		a.Text() == b.Text() &&
		reflect.DeepEqual(a.Certificate, b.Certificate), nil
}

// scaleDecode samples random call paths from the entry, encodes each through
// the reference runtime semantics (encoding.EncodePath), and times their
// decoding through the compiled tables: best-of-2 mean ns/context.
func scaleDecode(g *callgraph.Graph, spec *encoding.Spec, dec *encoding.CompiledDecoder, seed uint64, sample int) (float64, int, error) {
	entry, ok := g.Entry()
	if !ok {
		return 0, 0, fmt.Errorf("graph has no entry")
	}
	rnd := rand.New(rand.NewSource(int64(seed) + 1))
	type rec struct {
		st  *encoding.State
		end callgraph.NodeID
	}
	samples := make([]rec, 0, sample)
	var path []callgraph.Edge
	for i := 0; i < sample; i++ {
		path = path[:0]
		cur := entry
		depth := 8 + rnd.Intn(120)
		for d := 0; d < depth; d++ {
			outs := g.Out(cur)
			if len(outs) == 0 {
				break
			}
			e := outs[rnd.Intn(len(outs))]
			path = append(path, e)
			cur = e.Callee
		}
		st, err := encoding.EncodePath(spec, path)
		if err != nil {
			return 0, 0, fmt.Errorf("sample %d: %w", i, err)
		}
		samples = append(samples, rec{st: st, end: cur})
	}

	var buf []encoding.Frame
	for _, s := range samples {
		var err error
		if buf, err = dec.DecodeInto(buf[:0], s.st, s.end); err != nil {
			return 0, 0, fmt.Errorf("decode: %w", err)
		}
	}
	best := 0.0
	for r := 0; r < 2; r++ {
		start := time.Now()
		for _, s := range samples {
			var err error
			if buf, err = dec.DecodeInto(buf[:0], s.st, s.end); err != nil {
				return 0, 0, err
			}
		}
		if ns := float64(time.Since(start).Nanoseconds()) / float64(len(samples)); best == 0 || ns < best {
			best = ns
		}
	}
	return best, len(samples), nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Nanoseconds()) / 1e6
}
