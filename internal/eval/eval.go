// Package eval reproduces the paper's evaluation (Section 6): Table 1
// (static program characteristics), Figure 8 (execution speed under PCC and
// DeltaPath with and without call path tracking), and Table 2 (dynamic
// program characteristics), over the SPECjvm2008-shaped workload suite.
//
// One deliberate substitution: the paper collects a calling context at the
// entry of every instrumented application function; we collect at the
// workload programs' emit points (the logging/system-call analog). Both
// sample the same distribution of application calling contexts; emits keep
// collection cost out of the throughput measurements.
package eval

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/instrument"
	"deltapath/internal/minivm"
	"deltapath/internal/pcc"
	"deltapath/internal/stackwalk"
	"deltapath/internal/workload"
)

// Table1Cols is one encoding setting's static characteristics.
type Table1Cols struct {
	Nodes, Edges, CS, VCS int
	MaxID                 string // formatted encoding-space requirement
	MaxIDBits             int
	Anchors               int // overflow anchors Algorithm 2 added at 63-bit width
}

// Table1Row is one benchmark's static characteristics under both settings.
type Table1Row struct {
	Program string
	Size    int // program size (bytes of canonical source — the "size" analog)
	All     Table1Cols
	App     Table1Cols
}

// Table1 computes the static characteristics of each benchmark.
func Table1(suite []workload.Params) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(suite))
	for _, p := range suite {
		prog, err := p.Generate()
		if err != nil {
			return nil, err
		}
		row := Table1Row{Program: p.Name, Size: len(prog.String())}
		for _, setting := range []cha.Setting{cha.EncodingAll, cha.EncodingApplication} {
			build, err := cha.Build(prog, cha.Options{Setting: setting})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.Name, err)
			}
			g := build.Graph
			est, bits, err := core.EstimateSpace(g)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.Name, err)
			}
			res, err := core.Encode(g, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("%s: Algorithm 2: %w", p.Name, err)
			}
			cols := Table1Cols{
				Nodes:     g.NumNodes(),
				Edges:     g.NumEdges(),
				CS:        g.NumSites(),
				VCS:       g.NumVirtualSites(),
				MaxID:     core.FormatSpace(est),
				MaxIDBits: bits,
				Anchors:   len(res.OverflowAnchors),
			}
			if setting == cha.EncodingAll {
				row.All = cols
			} else {
				row.App = cols
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8Row is one benchmark's normalized execution speed under each
// configuration (1.0 = native, smaller is slower).
type Fig8Row struct {
	Program    string
	PCC        float64
	DeltaNoCPT float64
	DeltaCPT   float64
	// NativeSteps reports raw interpreter throughput (steps/second) for
	// context.
	NativeSteps float64
}

// Figure8 measures normalized execution speed over the suite. scale
// multiplies the workloads' loop trip counts; repeats selects the fastest
// of N runs per configuration (standard practice for throughput medians on
// a noisy machine).
func Figure8(suite []workload.Params, scale float64, repeats int) ([]Fig8Row, error) {
	return Figure8Workers(suite, scale, repeats, 1)
}

// Figure8Workers is Figure8 with SPECjvm2008-style worker threads: each of
// the workers goroutines runs its own VM with its own encoder — the
// encoding state is thread-local, exactly as the paper's implementation
// keeps it (Section 8, "thread-local variables ... for each thread") — and
// the throughput is the aggregate step rate.
func Figure8Workers(suite []workload.Params, scale float64, repeats, workers int) ([]Fig8Row, error) {
	if repeats < 1 {
		repeats = 1
	}
	if workers < 1 {
		workers = 1
	}
	rows := make([]Fig8Row, 0, len(suite))
	for _, p := range suite {
		prog, err := p.Scale(scale).Generate()
		if err != nil {
			return nil, err
		}
		// The paper's Figure 8 uses the encoding-application setting,
		// matching the original PCC's application-only instrumentation.
		build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
		if err != nil {
			return nil, err
		}
		res, err := core.Encode(build.Graph, core.Options{})
		if err != nil {
			return nil, err
		}
		planNoCPT, err := instrument.NewPlan(build, res.Spec, nil)
		if err != nil {
			return nil, err
		}
		planCPT, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
		if err != nil {
			return nil, err
		}
		instrSet := planNoCPT.InstrumentedMethods()

		// run measures aggregate steps/second across the worker pool;
		// probes == nil means native. Each worker builds its own encoder
		// from the factory (thread-local state).
		run := func(factory func() minivm.Probes) (float64, error) {
			best := math.Inf(1)
			var steps uint64
			for i := 0; i < repeats; i++ {
				vms := make([]*minivm.VM, workers)
				for w := 0; w < workers; w++ {
					vm, err := minivm.NewVM(prog, p.Seed+uint64(w))
					if err != nil {
						return 0, err
					}
					if factory != nil {
						vm.SetProbes(factory())
						vm.SetInstrumented(instrSet)
					}
					vms[w] = vm
				}
				errs := make(chan error, workers)
				start := time.Now()
				for _, vm := range vms {
					vm := vm
					go func() { errs <- vm.Run() }()
				}
				for range vms {
					if err := <-errs; err != nil {
						return 0, err
					}
				}
				if d := time.Since(start).Seconds(); d < best {
					best = d
				}
				steps = 0
				for _, vm := range vms {
					steps += vm.Steps
				}
			}
			return float64(steps) / best, nil
		}

		native, err := run(nil)
		if err != nil {
			return nil, fmt.Errorf("%s native: %w", p.Name, err)
		}
		pccSpeed, err := run(func() minivm.Probes { return pcc.New(build) })
		if err != nil {
			return nil, fmt.Errorf("%s pcc: %w", p.Name, err)
		}
		dpSpeed, err := run(func() minivm.Probes { return instrument.NewEncoder(planNoCPT) })
		if err != nil {
			return nil, fmt.Errorf("%s deltapath: %w", p.Name, err)
		}
		cptSpeed, err := run(func() minivm.Probes { return instrument.NewEncoder(planCPT) })
		if err != nil {
			return nil, fmt.Errorf("%s deltapath+cpt: %w", p.Name, err)
		}
		rows = append(rows, Fig8Row{
			Program:     p.Name,
			PCC:         pccSpeed / native,
			DeltaNoCPT:  dpSpeed / native,
			DeltaCPT:    cptSpeed / native,
			NativeSteps: native,
		})
	}
	return rows, nil
}

// GeoMean returns the geometric mean of a selector over rows (the paper
// reports average slowdowns as geometric means).
func GeoMean(rows []Fig8Row, sel func(Fig8Row) float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += math.Log(sel(r))
	}
	return math.Exp(sum / float64(len(rows)))
}

// Table2Row is one benchmark's dynamic characteristics.
type Table2Row struct {
	Program       string
	TotalContexts uint64
	MaxDepth      int
	AvgDepth      float64
	UniqueTrue    int // ground truth (stack walking)
	UniquePCC     int // PCC loses some to hash collisions
	UniqueDelta   int // DeltaPath encodings (must equal UniqueTrue)
	MaxStack      int
	AvgStack      float64
	MaxUCP        int
	AvgUCP        float64
	MaxID         uint64
	DecodeErrors  int // decode-verified sample failures (must be 0)
}

// Table2 runs each benchmark twice with identical seeds — once under PCC,
// once under DeltaPath with call path tracking — collecting context
// statistics at emit points. Every 64th DeltaPath context is decoded and
// compared against the ground-truth stack as an online correctness audit.
func Table2(suite []workload.Params, scale float64) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(suite))
	for _, p := range suite {
		prog, err := p.Scale(scale).Generate()
		if err != nil {
			return nil, err
		}
		build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
		if err != nil {
			return nil, err
		}
		res, err := core.Encode(build.Graph, core.Options{})
		if err != nil {
			return nil, err
		}
		plan, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
		if err != nil {
			return nil, err
		}
		row := Table2Row{Program: p.Name}

		// Pass 1: PCC.
		pccEnc := pcc.New(build)
		vm, err := minivm.NewVM(prog, p.Seed)
		if err != nil {
			return nil, err
		}
		vm.SetProbes(pccEnc)
		vm.SetInstrumented(plan.InstrumentedMethods())
		// As in the original PCC, a calling context is identified by the
		// value V together with the query point (the querying code knows
		// where it is), so uniqueness is per (V, method).
		type pccKey struct {
			v uint64
			m minivm.MethodRef
		}
		pccSeen := make(map[pccKey]struct{})
		vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
			if _, known := build.NodeOf[m]; known {
				pccSeen[pccKey{pccEnc.Value(), m}] = struct{}{}
			}
		}
		if err := vm.Run(); err != nil {
			return nil, fmt.Errorf("%s pcc pass: %w", p.Name, err)
		}
		row.UniquePCC = len(pccSeen)

		// Pass 2: DeltaPath with CPT, plus ground truth.
		enc := instrument.NewEncoder(plan)
		vm, err = minivm.NewVM(prog, p.Seed)
		if err != nil {
			return nil, err
		}
		vm.SetProbes(enc)
		vm.SetInstrumented(plan.InstrumentedMethods())
		walker := &stackwalk.Walker{Filter: plan.InstrumentedMethods()}
		dec := encoding.NewDecoder(res.Spec)
		dpSeen := make(map[string]struct{})
		trueSeen := make(map[string]struct{})
		var totalDepth, totalStack, totalUCP uint64
		vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
			node, known := build.NodeOf[m]
			if !known {
				return // context query inside unanalysed code
			}
			row.TotalContexts++
			ctx := walker.Capture(v)
			d := len(ctx)
			totalDepth += uint64(d)
			if d > row.MaxDepth {
				row.MaxDepth = d
			}
			trueSeen[stackwalk.Key(ctx)] = struct{}{}

			st := enc.State()
			dpSeen[st.Key(node)] = struct{}{}
			if sd := st.Depth(); sd > row.MaxStack {
				row.MaxStack = sd
			}
			totalStack += uint64(st.Depth())
			u := st.UCPCount()
			totalUCP += uint64(u)
			if u > row.MaxUCP {
				row.MaxUCP = u
			}
			if st.ID > row.MaxID {
				row.MaxID = st.ID
			}
			if row.TotalContexts%64 == 1 {
				snap := st.Snapshot()
				names, err := dec.DecodeNames(snap, node)
				if err != nil {
					row.DecodeErrors++
					return
				}
				i := 0
				for _, n := range names {
					if n == "..." {
						continue
					}
					if i >= len(ctx) || n != ctx[i].String() {
						row.DecodeErrors++
						return
					}
					i++
				}
				if i != len(ctx) {
					row.DecodeErrors++
				}
			}
		}
		if err := vm.Run(); err != nil {
			return nil, fmt.Errorf("%s deltapath pass: %w", p.Name, err)
		}
		row.UniqueDelta = len(dpSeen)
		row.UniqueTrue = len(trueSeen)
		if row.TotalContexts > 0 {
			row.AvgDepth = float64(totalDepth) / float64(row.TotalContexts)
			row.AvgStack = float64(totalStack) / float64(row.TotalContexts)
			row.AvgUCP = float64(totalUCP) / float64(row.TotalContexts)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DecodeRow reports decode throughput for one benchmark: the quantitative
// backing for the paper's "deterministic and instant decoding" claim
// (contrast Breadcrumbs' 5-second-per-context offline search), measured
// through both data paths — the legacy map-based reference decoder and the
// compiled flat tables (encoding.Compile). Speedup is the machine-independent
// metric the bench-smoke gate compares; absolute ns/context is recorded for
// the record but never gated (1-CPU container noise).
type DecodeRow struct {
	Program      string
	Contexts     int     // distinct contexts timed
	LegacyNs     float64 // best-of-repeats mean ns/context, legacy map decoder
	CompiledNs   float64 // same contexts through the compiled flat tables
	Speedup      float64 // LegacyNs / CompiledNs
	FramesPerSec float64 // compiled-path frame throughput at CompiledNs
	AllocsPerOp  float64 // compiled steady-state heap allocations per decode
	MaxDepth     int     // deepest decoded context
}

// DecodeLatency collects up to sample distinct contexts per benchmark and
// times their decoding through both decoders, keeping the best of repeats
// timed batches per side.
func DecodeLatency(suite []workload.Params, scale float64, sample, repeats int) ([]DecodeRow, error) {
	if sample <= 0 {
		sample = 2048
	}
	if repeats < 1 {
		repeats = 1
	}
	rows := make([]DecodeRow, 0, len(suite))
	for _, p := range suite {
		prog, err := p.Scale(scale).Generate()
		if err != nil {
			return nil, err
		}
		build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
		if err != nil {
			return nil, err
		}
		res, err := core.Encode(build.Graph, core.Options{})
		if err != nil {
			return nil, err
		}
		plan, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
		if err != nil {
			return nil, err
		}
		enc := instrument.NewEncoder(plan)
		vm, err := minivm.NewVM(prog, p.Seed)
		if err != nil {
			return nil, err
		}
		vm.SetProbes(enc)
		vm.SetInstrumented(plan.InstrumentedMethods())
		type sampleRec struct {
			st   *encoding.State
			node callgraph.NodeID
		}
		var samples []sampleRec
		seen := make(map[string]bool)
		vm.OnEmit = func(_ *minivm.VM, m minivm.MethodRef, _ string) {
			if len(samples) >= sample {
				return
			}
			node, known := build.NodeOf[m]
			if !known {
				return
			}
			key := enc.State().Key(node)
			if seen[key] {
				return
			}
			seen[key] = true
			samples = append(samples, sampleRec{st: enc.State().Snapshot(), node: node})
		}
		if err := vm.Run(); err != nil {
			return nil, err
		}
		if len(samples) == 0 {
			return nil, fmt.Errorf("%s: no contexts sampled", p.Name)
		}
		legacy := encoding.NewDecoder(res.Spec)
		compiled := encoding.Compile(res.Spec)
		row := DecodeRow{Program: p.Name, Contexts: len(samples)}
		// Warm both paths once (legacy memo caches, compiled scratch pool
		// and frame buffer), collecting depth and frame totals from the
		// warm pass so the timed batches are measurement only.
		var buf []encoding.Frame
		totalFrames := 0
		for _, s := range samples {
			frames, err := legacy.Decode(s.st, s.node)
			if err != nil {
				return nil, fmt.Errorf("%s: decode: %w", p.Name, err)
			}
			if len(frames) > row.MaxDepth {
				row.MaxDepth = len(frames)
			}
			totalFrames += len(frames)
			if buf, err = compiled.DecodeInto(buf[:0], s.st, s.node); err != nil {
				return nil, fmt.Errorf("%s: compiled decode: %w", p.Name, err)
			}
			if len(buf) != len(frames) {
				return nil, fmt.Errorf("%s: decoder disagreement: legacy %d frames, compiled %d",
					p.Name, len(frames), len(buf))
			}
		}
		n := float64(len(samples))
		for r := 0; r < repeats; r++ {
			start := time.Now()
			for _, s := range samples {
				if _, err := legacy.Decode(s.st, s.node); err != nil {
					return nil, err
				}
			}
			if ns := float64(time.Since(start).Nanoseconds()) / n; row.LegacyNs == 0 || ns < row.LegacyNs {
				row.LegacyNs = ns
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start = time.Now()
			for _, s := range samples {
				if buf, err = compiled.DecodeInto(buf[:0], s.st, s.node); err != nil {
					return nil, err
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			if ns := float64(elapsed.Nanoseconds()) / n; row.CompiledNs == 0 || ns < row.CompiledNs {
				row.CompiledNs = ns
			}
			if allocs := float64(after.Mallocs-before.Mallocs) / n; r == 0 || allocs < row.AllocsPerOp {
				row.AllocsPerOp = allocs
			}
		}
		if row.CompiledNs > 0 {
			row.Speedup = row.LegacyNs / row.CompiledNs
			row.FramesPerSec = float64(totalFrames) / n / row.CompiledNs * 1e9
		}
		rows = append(rows, row)
	}
	return rows, nil
}
