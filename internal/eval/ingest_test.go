package eval

import "testing"

// TestIngestThroughputSmoke runs a tiny configuration end to end: both
// commit modes over real durable state and the HTTP protocol. It asserts
// the deterministic facts — batch accounting and the per-batch mode's
// one-fsync-per-batch identity — not the throughput ratio, which a loaded
// CI box can't promise. The ratio is gated by dpbench -compare against a
// real baseline instead.
func TestIngestThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fsync-bound; skipped in -short")
	}
	rows, err := IngestThroughput(0.05, 1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Agents != 2 || r.Batches != 60 { // scale 0.05 → 30 batches per agent
		t.Fatalf("row accounting: agents=%d batches=%d, want 2/60", r.Agents, r.Batches)
	}
	if r.BatchRecords == 0 {
		t.Fatal("empty batch corpus")
	}
	if r.GroupBPS <= 0 || r.PerBatchBPS <= 0 || r.Speedup <= 0 {
		t.Fatalf("degenerate throughput: group=%.1f per-batch=%.1f speedup=%.2f",
			r.GroupBPS, r.PerBatchBPS, r.Speedup)
	}
	// Per-batch mode commits every fresh batch alone: fsyncs == batches,
	// exactly. Group mode can only do better or equal.
	if r.PerBatchFsyncs != uint64(r.Batches) {
		t.Fatalf("per-batch mode issued %d fsyncs for %d batches", r.PerBatchFsyncs, r.Batches)
	}
	if r.GroupFsyncs == 0 || r.GroupFsyncs > uint64(r.Batches) {
		t.Fatalf("group mode issued %d fsyncs for %d batches", r.GroupFsyncs, r.Batches)
	}
	t.Logf("smoke: group %.1f b/s (%d fsyncs), per-batch %.1f b/s (%d fsyncs), speedup %.2fx",
		r.GroupBPS, r.GroupFsyncs, r.PerBatchBPS, r.PerBatchFsyncs, r.Speedup)
}
