package eval

import "testing"

// TestExtendLatencyDynload pins the experiment's headline behaviour on the
// dynload corpus program: before absorbing Ext every run pays hazard
// pushes for the unanalysed class (up to 4 per run — one per entry into
// the analysed world from Ext.op's frames; the seed-set mean is lower
// because dispatch does not always choose Ext), and after one Extend the
// steady state is hazard-free.
func TestExtendLatencyDynload(t *testing.T) {
	rows, err := ExtendLatency(nil)
	if err != nil {
		t.Fatal(err)
	}
	var dynload *ExtendRow
	for i := range rows {
		if rows[i].Program == "dynload" && rows[i].Class == "Ext" {
			dynload = &rows[i]
		}
	}
	if dynload == nil {
		t.Fatalf("no dynload/Ext row in %+v", rows)
	}
	if dynload.Epoch != 1 {
		t.Errorf("epoch = %d, want 1", dynload.Epoch)
	}
	if dynload.HazardsBefore <= 0 {
		t.Errorf("hazards before absorb = %v, want > 0", dynload.HazardsBefore)
	}
	if dynload.HazardsAfter != 0 {
		t.Errorf("hazards after absorb = %v, want 0", dynload.HazardsAfter)
	}
	if dynload.ExtendNs <= 0 || dynload.FullNs <= 0 {
		t.Errorf("non-positive latencies: extend=%d full=%d", dynload.ExtendNs, dynload.FullNs)
	}
	if dynload.DirtyNodes <= 0 || dynload.DirtyNodes > dynload.TotalNodes {
		t.Errorf("implausible dirty territory %d/%d", dynload.DirtyNodes, dynload.TotalNodes)
	}
}

// TestExtendLatencyStaged checks every staged step publishes a fresh epoch
// and the super-closure shows up in the Y step (absorbing Y pulls in X
// when X was not absorbed first — here X is first in declaration order, so
// instead assert each row's class is in its own NewClasses and hazards
// never increase as classes are absorbed).
func TestExtendLatencyStaged(t *testing.T) {
	rows, err := ExtendLatency(nil)
	if err != nil {
		t.Fatal(err)
	}
	var staged []ExtendRow
	for _, r := range rows {
		if r.Program == "staged" {
			staged = append(staged, r)
		}
	}
	if len(staged) != 3 {
		t.Fatalf("staged rows = %d, want 3 (X, Y, Z)", len(staged))
	}
	prev := staged[0].HazardsBefore
	for i, r := range staged {
		if r.Epoch != uint64(i+1) {
			t.Errorf("step %d epoch = %d, want %d", i, r.Epoch, i+1)
		}
		if !contains(r.NewClasses, r.Class) {
			t.Errorf("step %d: %s not in NewClasses %v", i, r.Class, r.NewClasses)
		}
		if r.HazardsAfter > r.HazardsBefore {
			t.Errorf("step %d: hazards grew %v -> %v", i, r.HazardsBefore, r.HazardsAfter)
		}
		if r.HazardsBefore > prev {
			t.Errorf("step %d: before-hazards inconsistent with previous after", i)
		}
		prev = r.HazardsAfter
	}
	if last := staged[len(staged)-1]; last.HazardsAfter != 0 {
		t.Errorf("fully absorbed program still pays %v hazards per run", last.HazardsAfter)
	}
}
