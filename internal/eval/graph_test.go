package eval

import (
	"os"
	"path/filepath"
	"testing"

	"deltapath/internal/lang"
	"deltapath/internal/workload"
)

func exampleProgramsT(t *testing.T) []NamedProgram {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.mv"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example programs: %v", err)
	}
	var out []NamedProgram
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		out = append(out, NamedProgram{Name: filepath.Base(p), Prog: prog})
	}
	return out
}

// TestGraphPrecision pins the experiment's acceptance inequalities over a
// suite subset plus every curated example: RTA is never larger than CHA on
// any program, and at least one example shows a strict edge or anchor
// improvement.
func TestGraphPrecision(t *testing.T) {
	small, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("compress not in suite")
	}
	rows, err := GraphPrecision([]workload.Params{small.Scale(0.05)}, exampleProgramsT(t))
	if err != nil {
		t.Fatal(err)
	}
	strict := false
	for _, r := range rows {
		if r.EdgeDelta < 0 || r.AnchorDelta < 0 {
			t.Errorf("%s: RTA larger than CHA: Δedges=%d Δanchors=%d",
				r.Program, r.EdgeDelta, r.AnchorDelta)
		}
		if r.RTA.Nodes > r.CHA.Nodes {
			t.Errorf("%s: RTA has more nodes (%d) than CHA (%d)", r.Program, r.RTA.Nodes, r.CHA.Nodes)
		}
		if r.EdgeDelta > 0 || r.AnchorDelta > 0 {
			strict = true
		}
	}
	if !strict {
		t.Error("no program shows a strict RTA improvement; the precision witness examples are broken")
	}
	if out := RenderGraph(rows); len(out) == 0 {
		t.Error("empty render")
	}
}
