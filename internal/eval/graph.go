package eval

// The graph-precision experiment: CHA versus RTA call-graph construction,
// column for column, over the workload suite plus curated example
// programs. Precision here is the paper's scalability lever (Section 6):
// every spurious edge inflates some node's ICC product, and enough
// inflation forces extra anchors — so fewer edges and fewer anchors is a
// directly encoding-relevant improvement, not just a smaller picture.
//
// Both builders are measured as analysis construction uses them
// (cha.Options{KeepUnreachable: true}): the CHA column is the graph a
// default Analyze instruments, the RTA column the graph Analyze with
// Options.GraphBuilder = GraphRTA instruments. RTA's whole contribution is
// discarding what the entry cannot reach, so the deltas are the price CHA
// pays for instrumenting everything a class loader might see.

import (
	"fmt"
	"strings"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/minivm"
	"deltapath/internal/rta"
	"deltapath/internal/workload"
)

// NamedProgram is a parsed program with a display name — how curated .mv
// files (examples/*.mv) join the generated workload suite in an
// experiment.
type NamedProgram struct {
	Name string
	Prog *minivm.Program
}

// GraphCols is one builder's graph shape and its encoding consequences.
type GraphCols struct {
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	Sites          int     `json:"sites"`
	VirtualSites   int     `json:"virtual_sites"`
	TargetsPerSite float64 `json:"targets_per_site"`
	Anchors        int     `json:"anchors"`      // total piece-dividing anchors Algorithm 2 chose
	PieceStarts    int     `json:"piece_starts"` // entry + anchors: decode restart points
	MaxIDBits      int     `json:"max_id_bits"`  // bits to hold the largest context ID
}

// GraphRow compares the two builders on one program. EdgeDelta and
// AnchorDelta are CHA minus RTA: non-negative by the subset theorem
// (internal/rta), positive where RTA's reachability pruning bought
// encoding space.
type GraphRow struct {
	Program     string    `json:"program"`
	CHA         GraphCols `json:"cha"`
	RTA         GraphCols `json:"rta"`
	EdgeDelta   int       `json:"edge_delta"`
	AnchorDelta int       `json:"anchor_delta"`
}

// GraphPrecision measures both builders over the generated suite and any
// extra curated programs.
func GraphPrecision(suite []workload.Params, extra []NamedProgram) ([]GraphRow, error) {
	programs := make([]NamedProgram, 0, len(suite)+len(extra))
	for _, p := range suite {
		prog, err := p.Generate()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		programs = append(programs, NamedProgram{Name: p.Name, Prog: prog})
	}
	programs = append(programs, extra...)

	rows := make([]GraphRow, 0, len(programs))
	for _, np := range programs {
		opts := cha.Options{KeepUnreachable: true}
		chaRes, err := cha.Build(np.Prog, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: cha: %w", np.Name, err)
		}
		rtaRes, err := rta.Build(np.Prog, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: rta: %w", np.Name, err)
		}
		chaCols, err := graphCols(chaRes)
		if err != nil {
			return nil, fmt.Errorf("%s: cha: %w", np.Name, err)
		}
		rtaCols, err := graphCols(rtaRes)
		if err != nil {
			return nil, fmt.Errorf("%s: rta: %w", np.Name, err)
		}
		rows = append(rows, GraphRow{
			Program:     np.Name,
			CHA:         chaCols,
			RTA:         rtaCols,
			EdgeDelta:   chaCols.Edges - rtaCols.Edges,
			AnchorDelta: chaCols.Anchors - rtaCols.Anchors,
		})
	}
	return rows, nil
}

func graphCols(build *cha.Result) (GraphCols, error) {
	g := build.Graph
	res, err := core.Encode(g, core.Options{})
	if err != nil {
		return GraphCols{}, err
	}
	_, bits, err := core.EstimateSpace(g)
	if err != nil {
		return GraphCols{}, err
	}
	tps := 0.0
	if g.NumSites() > 0 {
		tps = float64(g.NumEdges()) / float64(g.NumSites())
	}
	return GraphCols{
		Nodes:          g.NumNodes(),
		Edges:          g.NumEdges(),
		Sites:          g.NumSites(),
		VirtualSites:   g.NumVirtualSites(),
		TargetsPerSite: tps,
		Anchors:        len(res.Spec.Anchors),
		PieceStarts:    len(res.PieceStarts),
		MaxIDBits:      bits,
	}, nil
}

// RenderGraph prints the precision table.
func RenderGraph(rows []GraphRow) string {
	var b strings.Builder
	b.WriteString("Graph precision: CHA vs RTA call-graph construction (instrumentation graphs)\n")
	fmt.Fprintf(&b, "%-22s | %6s %6s %5s %4s %4s | %6s %6s %5s %4s %4s | %6s %6s\n",
		"program",
		"nodes", "edges", "t/cs", "anc", "bits",
		"nodes", "edges", "t/cs", "anc", "bits",
		"Δedge", "Δanc")
	fmt.Fprintf(&b, "%-22s | %-30s | %-30s |\n", "",
		"------------ CHA -------------", "------------ RTA -------------")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s | %6d %6d %5.2f %4d %4d | %6d %6d %5.2f %4d %4d | %6d %6d\n",
			r.Program,
			r.CHA.Nodes, r.CHA.Edges, r.CHA.TargetsPerSite, r.CHA.Anchors, r.CHA.MaxIDBits,
			r.RTA.Nodes, r.RTA.Edges, r.RTA.TargetsPerSite, r.RTA.Anchors, r.RTA.MaxIDBits,
			r.EdgeDelta, r.AnchorDelta)
	}
	return b.String()
}
