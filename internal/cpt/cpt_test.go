package cpt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"deltapath/internal/callgraph"
)

// figure6 builds the static part of Figure 6: A calls B and C; C calls E and
// D; B's virtual call site statically dispatches only to D (the dynamic
// class X is invisible here).
func figure6() (*callgraph.Graph, map[string]callgraph.NodeID) {
	g := callgraph.New()
	ids := make(map[string]callgraph.NodeID)
	for _, n := range []string{"A", "B", "C", "D", "E"} {
		ids[n] = g.AddNode(n, false)
	}
	g.SetEntry(ids["A"])
	g.AddEdge(ids["A"], 0, ids["B"])
	g.AddEdge(ids["A"], 1, ids["C"])
	g.AddEdge(ids["B"], 0, ids["D"]) // the virtual site that X will join
	g.AddEdge(ids["C"], 0, ids["E"])
	g.AddEdge(ids["C"], 1, ids["D"])
	return g, ids
}

func TestFigure6SIDs(t *testing.T) {
	g, ids := figure6()
	plan := Compute(g)
	// Every site is monomorphic, so every node keeps its own set.
	if plan.NumSets != 5 {
		t.Fatalf("NumSets = %d, want 5", plan.NumSets)
	}
	// The hazard check of Figure 6: B's expectation is D's SID; E's SID
	// differs, so reaching E through X is detected as hazardous, while
	// reaching D through X is benign.
	siteB := callgraph.Site{Caller: ids["B"], Label: 0}
	if plan.Expected[siteB] != plan.SID[ids["D"]] {
		t.Fatal("expected SID at B's site is not D's SID")
	}
	if plan.Expected[siteB] == plan.SID[ids["E"]] {
		t.Fatal("E's SID equals the expectation: hazard would be missed")
	}
}

func TestVirtualSiteMergesTargets(t *testing.T) {
	g := callgraph.New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", false)
	c := g.AddNode("C", false)
	d := g.AddNode("D", false)
	g.SetEntry(a)
	g.AddEdge(a, 0, b) // one virtual site dispatching to B and C
	g.AddEdge(a, 0, c)
	g.AddEdge(a, 1, d) // separate site
	plan := Compute(g)
	if plan.SID[b] != plan.SID[c] {
		t.Fatal("dispatch targets of one site must share a SID")
	}
	if plan.SID[b] == plan.SID[d] {
		t.Fatal("unrelated nodes should not share a SID")
	}
	if !plan.SharedSID(g, callgraph.Site{Caller: a, Label: 0}) {
		t.Fatal("SharedSID invariant violated")
	}
}

func TestTransitiveMerge(t *testing.T) {
	// Site 1 dispatches to {B, C}; site 2 dispatches to {C, D}:
	// B, C, D all end in one set.
	g := callgraph.New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", false)
	c := g.AddNode("C", false)
	d := g.AddNode("D", false)
	e := g.AddNode("E", false)
	g.SetEntry(a)
	g.AddEdge(a, 0, b)
	g.AddEdge(a, 0, c)
	g.AddEdge(e, 0, c)
	g.AddEdge(e, 0, d)
	plan := Compute(g)
	if plan.SID[b] != plan.SID[c] || plan.SID[c] != plan.SID[d] {
		t.Fatalf("transitive merge failed: SIDs %v", plan.SID)
	}
	if plan.SID[a] == plan.SID[b] || plan.SID[e] == plan.SID[b] {
		t.Fatal("callers merged into callee set")
	}
}

// TestPropertySharedSIDInvariant: on random graphs, every site's targets
// share a SID, and nodes never reached by a common site keep distinct SIDs
// unless merged transitively.
func TestPropertySharedSIDInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := callgraph.New()
		n := 3 + rng.Intn(40)
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("n%d", i), false)
		}
		g.SetEntry(0)
		var label int32
		for i := 1; i < n; i++ {
			k := 1 + rng.Intn(3)
			p := callgraph.NodeID(rng.Intn(i))
			for j := 0; j < k; j++ {
				g.AddEdge(p, label, callgraph.NodeID(rng.Intn(n)))
			}
			label++
		}
		plan := Compute(g)
		for _, s := range g.Sites() {
			if !plan.SharedSID(g, s) {
				return false
			}
		}
		// SIDs are dense: 0..NumSets-1 all appear.
		seen := make(map[int32]bool)
		for _, sid := range plan.SID {
			seen[sid] = true
		}
		return len(seen) == plan.NumSets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
