package cpt

import "deltapath/internal/obs"

// Observe publishes the plan's static shape as gauges (nil reg = no-op):
// how many SID sets the union-find produced and how many call sites carry
// a saved expectation. Both are fixed per analysis, so a single Set at
// enable time suffices.
func (p *Plan) Observe(reg *obs.Registry) {
	reg.Gauge(obs.MetricCPTSets).Set(uint64(p.NumSets))
	reg.Gauge(obs.MetricCPTSites).Set(uint64(len(p.Expected)))
}
