// Package cpt implements the call path tracking technique of Section 4.1 —
// the piece of DeltaPath that keeps encodings correct when dynamically
// loaded classes introduce call paths static analysis never saw, and that
// enables the selective ("flexible") encoding of Section 4.2.
//
// Static side (this package): every node starts in its own set; for each
// call site, the sets of all its dispatch targets are merged (union–find).
// Each final set gets a set identifier (SID); all possible targets of any
// one call site share a SID.
//
// Runtime side (package instrument): before an instrumented call, the
// expected callee SID, the call site, and the current encoding ID are
// saved; at the entry of every statically loaded function, the function's
// SID is compared with the saved expectation. A mismatch means control
// reached this function through at least one unanalysed frame — a
// hazardous unexpected call path (UCP) — and the encoding responds by
// pushing the saved information and restarting a piece. Equal SIDs mean the
// UCP, if any, was benign: the decoded context is exact except that
// unanalysed frames are transparently absent (Figure 6's B→X→D case).
package cpt

import (
	"deltapath/internal/callgraph"
)

// Plan is the static output of call path tracking analysis.
type Plan struct {
	// SID maps each node to its set identifier. SIDs are dense, 0-based.
	SID []int32
	// Expected maps each call site to the SID every one of its static
	// dispatch targets carries.
	Expected map[callgraph.Site]int32
	// NumSets is the number of distinct SIDs.
	NumSets int
}

// Compute runs the set-merging analysis on g.
func Compute(g *callgraph.Graph) *Plan {
	n := g.NumNodes()
	uf := newUnionFind(n)
	for _, s := range g.Sites() {
		targets := g.SiteTargets(s)
		for i := 1; i < len(targets); i++ {
			uf.union(int(targets[0].Callee), int(targets[i].Callee))
		}
	}
	plan := &Plan{
		SID:      make([]int32, n),
		Expected: make(map[callgraph.Site]int32),
	}
	// Densify set identifiers in node order for determinism.
	next := int32(0)
	sidOfRoot := make(map[int]int32)
	for i := 0; i < n; i++ {
		root := uf.find(i)
		sid, ok := sidOfRoot[root]
		if !ok {
			sid = next
			next++
			sidOfRoot[root] = sid
		}
		plan.SID[i] = sid
	}
	plan.NumSets = int(next)
	for _, s := range g.Sites() {
		targets := g.SiteTargets(s)
		if len(targets) > 0 {
			plan.Expected[s] = plan.SID[targets[0].Callee]
		}
	}
	return plan
}

// SharedSID reports whether every target of the site has the same SID —
// an internal invariant, exported for tests and validation.
func (p *Plan) SharedSID(g *callgraph.Graph, s callgraph.Site) bool {
	targets := g.SiteTargets(s)
	for _, e := range targets {
		if p.SID[e.Callee] != p.Expected[s] {
			return false
		}
	}
	return true
}

// unionFind is a standard union–find with path halving and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
