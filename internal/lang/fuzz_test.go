package lang

import "testing"

// FuzzParse asserts the parser never panics and that anything it accepts
// survives a print→parse round trip. Runs its seed corpus under plain
// `go test`; run with -fuzz=FuzzParse for exploration.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"entry A.m class A { method m { } }",
		"entry A.m class A { method m { call B.f; vcall C.g } } class B { method f { } } class C { method g { } }",
		"entry A.m class A { method m { loop 3 { work 1 } emit x } }",
		"entry A.m class A { method m { try { throw t } catch { emit h } } }",
		"entry A.m dynamic class D extends A { method m { rcall 5 D.m } } class A { method m { load D } }",
		"entry A.m library class A { method m { rthrow 2 x } }",
		"class { } } {",
		"entry .. class .. {",
		"entry A.m class A { method m { loop 99999999999999999999 { } } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := prog.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse: %v\n%s", err, printed)
		}
		if again.String() != printed {
			t.Fatalf("print/parse not idempotent:\n%s\n---\n%s", printed, again.String())
		}
	})
}
