// Package lang parses the small textual form of minivm programs used in
// tests, examples, and the command-line tools. The grammar:
//
//	program   = { decl } .
//	decl      = "entry" qname | classdecl .
//	classdecl = [ "dynamic" ] [ "library" ] "class" ident
//	            [ "extends" ident ] "{" { method } "}" .
//	method    = "method" ident "{" { stmt } "}" .
//	stmt      = "call" qname | "vcall" qname
//	          | "rcall" int qname | "rvcall" int qname
//	          | "loop" int "{" { stmt } "}"
//	          | "try" "{" { stmt } "}" "catch" "{" { stmt } "}"
//	          | "throw" ident | "rthrow" int ident
//	          | "spawn" qname
//	          | "emit" ident | "load" ident | "work" int .
//	qname     = ident "." ident .
//
// "#" starts a comment running to end of line. Statements are separated by
// newlines or semicolons. Identifiers may contain letters, digits, '_',
// '$' and — in qualified positions — '.' (split at the last dot).
package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"deltapath/internal/minivm"
)

// Parse parses src into a normalized minivm program.
func Parse(src string) (*minivm.Program, error) {
	p := &parser{toks: lex(src)}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.Normalize(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *minivm.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type token struct {
	text string
	line int
}

func lex(src string) []token {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r' || c == ';':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{' || c == '}':
			toks = append(toks, token{string(c), line})
			i++
		default:
			j := i
			for j < len(src) && isWordByte(src[j]) {
				j++
			}
			if j == i {
				toks = append(toks, token{string(c), line})
				i++
				continue
			}
			toks = append(toks, token{src[i:j], line})
			i = j
		}
	}
	return toks
}

func isWordByte(b byte) bool {
	r := rune(b)
	return unicode.IsLetter(r) || unicode.IsDigit(r) || b == '_' || b == '$' || b == '.' || b == '-'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{"", -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("lang: line %d: expected %q, found %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) ident(what string) (string, error) {
	t := p.next()
	if t.line == -1 {
		return "", fmt.Errorf("lang: unexpected end of input, expected %s", what)
	}
	if t.text == "{" || t.text == "}" {
		return "", fmt.Errorf("lang: line %d: expected %s, found %q", t.line, what, t.text)
	}
	return t.text, nil
}

func (p *parser) qname(what string) (class, method string, err error) {
	s, err := p.ident(what)
	if err != nil {
		return "", "", err
	}
	dot := strings.LastIndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return "", "", fmt.Errorf("lang: %q is not a qualified Class.method name", s)
	}
	return s[:dot], s[dot+1:], nil
}

func (p *parser) program() (*minivm.Program, error) {
	prog := &minivm.Program{}
	for !p.eof() {
		t := p.next()
		switch t.text {
		case "entry":
			c, m, err := p.qname("entry method")
			if err != nil {
				return nil, err
			}
			prog.Entry = minivm.MethodRef{Class: c, Method: m}
		case "class", "dynamic", "library":
			dynamic, library := false, false
			for t.text != "class" {
				switch t.text {
				case "dynamic":
					dynamic = true
				case "library":
					library = true
				default:
					return nil, fmt.Errorf("lang: line %d: unexpected %q before class", t.line, t.text)
				}
				t = p.next()
			}
			c, err := p.class(library)
			if err != nil {
				return nil, err
			}
			if dynamic {
				prog.Dynamic = append(prog.Dynamic, c)
			} else {
				prog.Classes = append(prog.Classes, c)
			}
		default:
			return nil, fmt.Errorf("lang: line %d: unexpected %q at top level", t.line, t.text)
		}
	}
	return prog, nil
}

func (p *parser) class(library bool) (*minivm.Class, error) {
	name, err := p.ident("class name")
	if err != nil {
		return nil, err
	}
	c := &minivm.Class{Name: name, Library: library}
	if p.peek().text == "extends" {
		p.next()
		if c.Super, err = p.ident("superclass name"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for p.peek().text != "}" {
		if p.eof() {
			return nil, fmt.Errorf("lang: unterminated class %q", name)
		}
		if err := p.expect("method"); err != nil {
			return nil, err
		}
		mname, err := p.ident("method name")
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		c.Methods = append(c.Methods, &minivm.Method{Name: mname, Body: body})
	}
	p.next() // consume "}"
	return c, nil
}

func (p *parser) block() ([]minivm.Instr, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var body []minivm.Instr
	for {
		t := p.peek()
		switch t.text {
		case "}":
			p.next()
			return body, nil
		case "":
			return nil, fmt.Errorf("lang: unterminated block")
		}
		in, err := p.stmt()
		if err != nil {
			return nil, err
		}
		body = append(body, in)
	}
}

func (p *parser) stmt() (minivm.Instr, error) {
	t := p.next()
	switch t.text {
	case "call", "vcall":
		c, m, err := p.qname("call target")
		if err != nil {
			return minivm.Instr{}, err
		}
		if t.text == "call" {
			return minivm.Call(c, m), nil
		}
		return minivm.VCall(c, m), nil
	case "rcall", "rvcall":
		ds, err := p.ident("depth limit")
		if err != nil {
			return minivm.Instr{}, err
		}
		d, err := strconv.Atoi(ds)
		if err != nil || d <= 0 {
			return minivm.Instr{}, fmt.Errorf("lang: line %d: bad depth limit %q", t.line, ds)
		}
		c, m, err := p.qname("call target")
		if err != nil {
			return minivm.Instr{}, err
		}
		if t.text == "rcall" {
			return minivm.CallBounded(c, m, d), nil
		}
		return minivm.VCallBounded(c, m, d), nil
	case "loop":
		ns, err := p.ident("loop count")
		if err != nil {
			return minivm.Instr{}, err
		}
		n, err := strconv.Atoi(ns)
		if err != nil || n < 0 {
			return minivm.Instr{}, fmt.Errorf("lang: line %d: bad loop count %q", t.line, ns)
		}
		body, err := p.block()
		if err != nil {
			return minivm.Instr{}, err
		}
		return minivm.Instr{Op: minivm.OpLoop, N: n, Body: body}, nil
	case "emit":
		tag, err := p.ident("emit tag")
		if err != nil {
			return minivm.Instr{}, err
		}
		return minivm.Emit(tag), nil
	case "spawn":
		c, m, err := p.qname("spawn target")
		if err != nil {
			return minivm.Instr{}, err
		}
		return minivm.Spawn(c, m), nil
	case "load":
		cls, err := p.ident("class name")
		if err != nil {
			return minivm.Instr{}, err
		}
		return minivm.LoadClass(cls), nil
	case "throw":
		tag, err := p.ident("exception tag")
		if err != nil {
			return minivm.Instr{}, err
		}
		return minivm.Throw(tag), nil
	case "rthrow":
		ds, err := p.ident("depth threshold")
		if err != nil {
			return minivm.Instr{}, err
		}
		d, err := strconv.Atoi(ds)
		if err != nil || d <= 0 {
			return minivm.Instr{}, fmt.Errorf("lang: line %d: bad throw depth %q", t.line, ds)
		}
		tag, err := p.ident("exception tag")
		if err != nil {
			return minivm.Instr{}, err
		}
		return minivm.ThrowIfDeeper(tag, d), nil
	case "try":
		body, err := p.block()
		if err != nil {
			return minivm.Instr{}, err
		}
		if err := p.expect("catch"); err != nil {
			return minivm.Instr{}, err
		}
		handler, err := p.block()
		if err != nil {
			return minivm.Instr{}, err
		}
		return minivm.Try(body, handler), nil
	case "work":
		ns, err := p.ident("work units")
		if err != nil {
			return minivm.Instr{}, err
		}
		n, err := strconv.Atoi(ns)
		if err != nil || n < 0 {
			return minivm.Instr{}, fmt.Errorf("lang: line %d: bad work units %q", t.line, ns)
		}
		return minivm.Work(n), nil
	default:
		return minivm.Instr{}, fmt.Errorf("lang: line %d: unknown statement %q", t.line, t.text)
	}
}
