package lang

import (
	"strings"
	"testing"

	"deltapath/internal/minivm"
)

const sample = `
# Figure-style sample program
entry Main.main

class Main {
  method main {
    call Util.setup
    loop 2 {
      vcall Shape.area
    }
    emit done
  }
}

library class Util {
  method setup { work 5 }
}

class Shape {
  method area { work 1 }
}

class Circle extends Shape {
  method area { work 2; emit circ }
}

dynamic class Dyn extends Shape {
  method area { work 1 }
}
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry != (minivm.MethodRef{Class: "Main", Method: "main"}) {
		t.Fatalf("entry = %v", prog.Entry)
	}
	if len(prog.Classes) != 4 || len(prog.Dynamic) != 1 {
		t.Fatalf("classes = %d static, %d dynamic", len(prog.Classes), len(prog.Dynamic))
	}
	util := prog.Class("Util")
	if util == nil || !util.Library {
		t.Fatalf("Util should be a library class")
	}
	circle := prog.Class("Circle")
	if circle.Super != "Shape" {
		t.Fatalf("Circle.Super = %q", circle.Super)
	}
	main := prog.Class("Main").Method("main")
	if main.Body[1].Op != minivm.OpLoop || main.Body[1].N != 2 {
		t.Fatalf("loop not parsed: %+v", main.Body[1])
	}
	if main.Body[1].Body[0].Op != minivm.OpVCall {
		t.Fatalf("vcall not parsed inside loop")
	}
}

func TestParseRunsOnVM(t *testing.T) {
	prog := MustParse(sample)
	vm, err := minivm.NewVM(prog, 11)
	if err != nil {
		t.Fatal(err)
	}
	var tags []string
	vm.OnEmit = func(_ *minivm.VM, _ minivm.MethodRef, tag string) { tags = append(tags, tag) }
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if tags[len(tags)-1] != "done" {
		t.Fatalf("tags = %v", tags)
	}
}

func TestRoundTripThroughString(t *testing.T) {
	prog := MustParse(sample)
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("re-parse of String() failed: %v\n%s", err, prog.String())
	}
	if again.String() != prog.String() {
		t.Fatalf("round trip not stable:\n%s\n---\n%s", prog.String(), again.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bad top level", "frobnicate", "unexpected"},
		{"unterminated class", "entry A.m class A { method m {}", "unterminated class"},
		{"unterminated block", "entry A.m class A { method m { call B.f", "unterminated block"},
		{"unqualified call", "entry A.m class A { method m { call B } }", "not a qualified"},
		{"bad loop count", "entry A.m class A { method m { loop x { } } }", "bad loop count"},
		{"negative work", "entry A.m class A { method m { work -3 } }", "bad work units"},
		{"unknown stmt", "entry A.m class A { method m { jump B.f } }", "unknown statement"},
		{"missing entry", "class A { method m { } }", "no entry"},
		{"trailing qualifier dot", "entry A.m class A { method m { call B. } }", "not a qualified"},
		{"modifier misuse", "entry A.m dynamic library frob A {}", "unexpected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestCommentsAndSemicolons(t *testing.T) {
	prog, err := Parse(`
entry A.m  # the entry
class A {
  method m { work 1; work 2; emit a # trailing comment
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Class("A").Method("m").Body
	if len(body) != 3 {
		t.Fatalf("body = %d instrs, want 3", len(body))
	}
}

func TestDottedClassNames(t *testing.T) {
	prog, err := Parse(`
entry spec.Main.main
class spec.Main {
  method main { call java.util.List.add }
}
class java.util.List {
  method add { work 1 }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Entry.Class != "spec.Main" || prog.Entry.Method != "main" {
		t.Fatalf("entry = %+v", prog.Entry)
	}
	body := prog.Class("spec.Main").Method("main").Body
	if body[0].Class != "java.util.List" || body[0].Name != "add" {
		t.Fatalf("call target = %s.%s", body[0].Class, body[0].Name)
	}
}

func TestBoundedCalls(t *testing.T) {
	prog, err := Parse(`
entry A.main
class A {
  method main { rcall 5 A.main; rvcall 7 A.main; emit x }
}`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Class("A").Method("main").Body
	if body[0].Depth != 5 || body[0].Op != minivm.OpCall {
		t.Fatalf("rcall parsed as %+v", body[0])
	}
	if body[1].Depth != 7 || body[1].Op != minivm.OpVCall {
		t.Fatalf("rvcall parsed as %+v", body[1])
	}
	// Bounded self-recursion terminates on its own.
	vm, err := minivm.NewVM(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	emits := 0
	vm.OnEmit = func(*minivm.VM, minivm.MethodRef, string) { emits++ }
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if emits == 0 {
		t.Fatal("bounded recursion never reached the emit")
	}
	// Round trip through the printer.
	if _, err := Parse(prog.String()); err != nil {
		t.Fatalf("re-parse of printed bounded calls: %v", err)
	}
	if !strings.Contains(prog.String(), "rcall 5 A.main") {
		t.Fatalf("printer lost the bound:\n%s", prog.String())
	}
}

func TestTryCatchThrowParsing(t *testing.T) {
	prog, err := Parse(`
entry A.main
class A {
  method main {
    try {
      call A.risky
      throw direct
    } catch {
      emit handled
      rthrow 4 deep
    }
    emit end
  }
  method risky { work 1 }
}`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Class("A").Method("main").Body
	if body[0].Op != minivm.OpTry {
		t.Fatalf("try not parsed: %+v", body[0])
	}
	if body[0].Body[1].Op != minivm.OpThrow || body[0].Body[1].Tag != "direct" {
		t.Fatalf("throw not parsed: %+v", body[0].Body[1])
	}
	h := body[0].Handler
	if h[1].Op != minivm.OpThrow || h[1].Depth != 4 || h[1].Tag != "deep" {
		t.Fatalf("rthrow not parsed: %+v", h[1])
	}
	// Printer round trip.
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, prog.String())
	}
	if again.String() != prog.String() {
		t.Fatalf("try/catch round trip unstable:\n%s---\n%s", prog.String(), again.String())
	}
}

func TestTryParseErrors(t *testing.T) {
	cases := []string{
		"entry A.m class A { method m { try { } } }",       // missing catch
		"entry A.m class A { method m { throw } }",         // missing tag
		"entry A.m class A { method m { rthrow x boom } }", // bad depth
		"entry A.m class A { method m { try { } catch } }", // missing handler block
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
