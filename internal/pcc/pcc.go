// Package pcc implements Probabilistic Calling Context (Bond & McKinley,
// OOPSLA 2007), the state-of-the-art baseline the paper compares against
// (Section 6.2). PCC is a purely runtime mechanism: each thread maintains a
// value V, and every instrumented call site updates it as
//
//	V' = 3·V + cs
//
// where cs is a constant identifying the call site. V is a probabilistically
// unique hash of the current calling context: querying it is cheap and needs
// no static analysis, but distinct contexts can collide and there is no
// decoding — the critical difference from DeltaPath.
//
// As in the paper's head-to-head setup, the Encoder here is implemented on
// the same instrumentation substrate as DeltaPath (minivm probes over the
// same instrumented method set), so the overhead comparison isolates the
// encoding arithmetic.
package pcc

import (
	"deltapath/internal/cha"
	"deltapath/internal/minivm"
)

// Encoder implements minivm.Probes maintaining the PCC value V. The saved
// caller value around each call models the callee-local V of the original
// implementation (a compiler temporary there, a shadow stack here).
//
// V is kept to 32 bits, as in Bond & McKinley's Jikes RVM implementation:
// the hash collisions Table 2 observes (PCC collecting fewer unique
// encodings than DeltaPath) are a property of that 32-bit space; a 64-bit V
// would hide the effect at benchmark scale.
type Encoder struct {
	v     uint64
	saved []uint64
	sites map[minivm.SiteRef]uint64
}

// New builds a PCC encoder instrumenting exactly the call sites of the
// analysed call graph in build — the same set DeltaPath instruments.
func New(build *cha.Result) *Encoder {
	sites := make(map[minivm.SiteRef]uint64)
	g := build.Graph
	for _, s := range g.Sites() {
		ref := build.RefOf[s.Caller]
		key := minivm.SiteRef{In: ref, Site: s.Label}
		sites[key] = SiteConstant(key)
	}
	return &Encoder{sites: sites, saved: make([]uint64, 0, 64)}
}

// SiteConstant derives the per-site constant cs: a stable FNV-1a hash of
// the site's identity, standing in for the call-site program counter the
// original uses. Exported so the Breadcrumbs-style search decoder can run
// against the same constants.
func SiteConstant(s minivm.SiteRef) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range []byte(s.In.Class) {
		h = (h ^ uint64(b)) * prime
	}
	h = (h ^ '.') * prime
	for _, b := range []byte(s.In.Method) {
		h = (h ^ uint64(b)) * prime
	}
	h = (h ^ uint64(s.Site)) * prime
	h = (h ^ uint64(s.Site>>8)) * prime
	return h & 0xffffffff
}

// Value returns the current PCC value V — the probabilistic context hash
// recorded at query points.
func (e *Encoder) Value() uint64 { return e.v }

// Reset clears the state for a fresh run.
func (e *Encoder) Reset() {
	e.v = 0
	e.saved = e.saved[:0]
}

// BeforeCall implements minivm.Probes: V' = 3V + cs.
func (e *Encoder) BeforeCall(site minivm.SiteRef, _ minivm.MethodRef) uint8 {
	cs, ok := e.sites[site]
	if !ok {
		return 0
	}
	e.saved = append(e.saved, e.v)
	e.v = (3*e.v + cs) & 0xffffffff
	return 1
}

// AfterCall implements minivm.Probes: restore the caller's V.
func (e *Encoder) AfterCall(_ minivm.SiteRef, _ minivm.MethodRef, token uint8) {
	if token == 0 {
		return
	}
	e.v = e.saved[len(e.saved)-1]
	e.saved = e.saved[:len(e.saved)-1]
}

// Enter implements minivm.Probes (PCC does nothing at method entries).
func (e *Encoder) Enter(minivm.MethodRef) uint8 { return 0 }

// Exit implements minivm.Probes.
func (e *Encoder) Exit(minivm.MethodRef, uint8) {}

// BeginTask implements minivm.TaskProbes: V is per-thread state.
func (e *Encoder) BeginTask(minivm.MethodRef) { e.Reset() }

var _ minivm.Probes = (*Encoder)(nil)
var _ minivm.TaskProbes = (*Encoder)(nil)
