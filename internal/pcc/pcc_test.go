package pcc

import (
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
)

const src = `
entry Main.main
class Main {
  method main {
    call A.f
    call A.g
    emit top
  }
}
class A {
  method f { emit f }
  method g { call A.f; emit g }
}
`

func TestPCCDistinguishesContexts(t *testing.T) {
	prog := lang.MustParse(src)
	build, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc := New(build)
	vm, err := minivm.NewVM(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	values := make(map[string]uint64)
	vm.OnEmit = func(_ *minivm.VM, m minivm.MethodRef, tag string) {
		values[tag] = enc.Value()
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	// main>A.f and main>A.g>A.f both end in A.f but must hash differently.
	fDirect := values["f"]
	if values["g"] == fDirect {
		t.Fatal("distinct contexts share PCC value")
	}
	// After the run, V is restored to the empty-context value 0.
	if enc.Value() != 0 {
		t.Fatalf("V = %d after balanced run, want 0", enc.Value())
	}
}

func TestPCCDeterministic(t *testing.T) {
	prog := lang.MustParse(src)
	build, _ := cha.Build(prog, cha.Options{})
	run := func() uint64 {
		enc := New(build)
		vm, _ := minivm.NewVM(prog, 0)
		vm.SetProbes(enc)
		var last uint64
		vm.OnEmit = func(_ *minivm.VM, _ minivm.MethodRef, _ string) { last = enc.Value() }
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	if run() != run() {
		t.Fatal("PCC values not deterministic")
	}
}

func TestPCC32Bit(t *testing.T) {
	prog := lang.MustParse(src)
	build, _ := cha.Build(prog, cha.Options{})
	enc := New(build)
	for _, cs := range enc.sites {
		if cs > 0xffffffff {
			t.Fatalf("site constant %d exceeds 32 bits", cs)
		}
	}
}

func TestPCCReset(t *testing.T) {
	prog := lang.MustParse(src)
	build, _ := cha.Build(prog, cha.Options{})
	enc := New(build)
	enc.v = 42
	enc.saved = append(enc.saved, 7)
	enc.Reset()
	if enc.Value() != 0 || len(enc.saved) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestSiteConstantStable(t *testing.T) {
	a := SiteConstant(minivm.SiteRef{In: minivm.MethodRef{Class: "A", Method: "f"}, Site: 3})
	b := SiteConstant(minivm.SiteRef{In: minivm.MethodRef{Class: "A", Method: "f"}, Site: 3})
	c := SiteConstant(minivm.SiteRef{In: minivm.MethodRef{Class: "A", Method: "f"}, Site: 4})
	if a != b {
		t.Fatal("site constant not stable")
	}
	if a == c {
		t.Fatal("different sites share a constant")
	}
}
