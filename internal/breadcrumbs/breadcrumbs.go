// Package breadcrumbs implements the essence of Breadcrumbs (Bond, Baker &
// Guyer, PLDI 2010), the system the paper contrasts DeltaPath against in
// Sections 1–2: PCC's hash value V is "decoded" by searching the static
// call graph for contexts that hash to V.
//
// Because PCC's update is V' = 3·V + cs over a 32-bit ring and 3 is
// invertible modulo 2^32, each candidate incoming call site permits one
// exact backward step, V = (V' − cs) · 3⁻¹. Decoding is then a depth-first
// search from the query node toward the entry, branching over all incoming
// sites at each step. The search can:
//
//   - succeed uniquely — the common case for shallow contexts;
//   - return several candidate contexts — PCC values are probabilistic, so
//     distinct contexts can decode ambiguously (the "accuracy/reliability"
//     cost the paper cites); or
//   - blow up combinatorially on deep or wide graphs — Breadcrumbs' offline
//     decoder ran with a 5-second budget per context; ours takes a step
//     budget.
//
// DeltaPath's decoder needs none of this: BenchmarkAblationBreadcrumbs
// puts the two side by side.
package breadcrumbs

import (
	"fmt"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/minivm"
	"deltapath/internal/pcc"
)

// inv3 is the multiplicative inverse of 3 modulo 2^32.
const inv3 = 0xaaaaaaab

const mask32 = 0xffffffff

// Decoder searches PCC values against a call graph.
type Decoder struct {
	build *cha.Result
	// cs caches the per-edge site constants of the PCC encoder.
	cs map[callgraph.Edge]uint64
	// Budget bounds the number of search steps per Decode call; zero
	// means 1e6. When exhausted, Decode returns ErrBudget.
	Budget int
}

// ErrBudget is returned when the search exceeds its step budget.
var ErrBudget = fmt.Errorf("breadcrumbs: search budget exhausted")

// NewDecoder prepares a search-based decoder for the graph in build, using
// the same site constants as pcc.New.
func NewDecoder(build *cha.Result) *Decoder {
	d := &Decoder{
		build: build,
		cs:    make(map[callgraph.Edge]uint64),
	}
	g := build.Graph
	for _, s := range g.Sites() {
		ref := build.RefOf[s.Caller]
		c := pcc.SiteConstant(minivm.SiteRef{In: ref, Site: s.Label})
		for _, e := range g.SiteTargets(s) {
			d.cs[e] = c
		}
	}
	return d
}

// Candidate is one context the search found: the node sequence from the
// entry to the query node.
type Candidate []callgraph.NodeID

// Decode searches for all contexts ending at node whose PCC value is v,
// up to max candidates (0 = unlimited). steps reports the search effort.
func (d *Decoder) Decode(v uint64, node callgraph.NodeID, max int) (cands []Candidate, steps int, err error) {
	budget := d.Budget
	if budget == 0 {
		budget = 1_000_000
	}
	entry, ok := d.build.Graph.Entry()
	if !ok {
		return nil, 0, fmt.Errorf("breadcrumbs: graph has no entry")
	}
	g := d.build.Graph

	var path []callgraph.NodeID
	var search func(n callgraph.NodeID, v uint64) error
	search = func(n callgraph.NodeID, v uint64) error {
		steps++
		if steps > budget {
			return ErrBudget
		}
		path = append(path, n)
		defer func() { path = path[:len(path)-1] }()
		if n == entry && v == 0 {
			cand := make(Candidate, len(path))
			for i, p := range path {
				cand[len(path)-1-i] = p
			}
			cands = append(cands, cand)
			if max > 0 && len(cands) >= max {
				return errDone
			}
			// The entry can also have been reached mid-hash in
			// pathological graphs; fall through and keep searching
			// only if it has in-edges (it normally does not).
		}
		for _, e := range g.In(n) {
			prev := ((v - d.cs[e]) * inv3) & mask32
			// A valid predecessor hash must be reproducible: forward
			// application must return v (always true in modular
			// arithmetic, so no pruning is available from the hash
			// itself — this is exactly why the search explodes).
			if err := search(e.Caller, prev); err != nil {
				return err
			}
		}
		return nil
	}
	err = search(node, v&mask32)
	if err == errDone {
		err = nil
	}
	return cands, steps, err
}

var errDone = fmt.Errorf("done")

// Ambiguous reports whether decoding v at node yields more than one
// candidate within the budget.
func (d *Decoder) Ambiguous(v uint64, node callgraph.NodeID) (bool, error) {
	cands, _, err := d.Decode(v, node, 2)
	if err != nil {
		return false, err
	}
	return len(cands) > 1, nil
}
