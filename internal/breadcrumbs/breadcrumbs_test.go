package breadcrumbs

import (
	"strings"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
	"deltapath/internal/pcc"
	"deltapath/internal/workload"
)

const src = `
entry A.main
class A {
  method main { call B.f; call B.g; emit top }
}
class B {
  method f { call C.h; emit f }
  method g { call C.h; emit g }
}
class C { method h { emit h } }
`

// TestSearchRecoversTrueContext: run PCC, then search-decode each observed
// value; the true context must be among the candidates.
func TestSearchRecoversTrueContext(t *testing.T) {
	prog := lang.MustParse(src)
	build, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	enc := pcc.New(build)
	vm, err := minivm.NewVM(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	dec := NewDecoder(build)
	checked := 0
	vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
		node, ok := build.NodeOf[m]
		if !ok {
			return
		}
		var truth []string
		for _, f := range v.Stack() {
			truth = append(truth, f.String())
		}
		truthStr := strings.Join(truth, ">")
		cands, steps, err := dec.Decode(enc.Value(), node, 0)
		if err != nil {
			t.Fatalf("search decode: %v", err)
		}
		if steps == 0 {
			t.Fatal("search did no work")
		}
		found := false
		for _, cand := range cands {
			var names []string
			for _, n := range cand {
				names = append(names, build.Graph.Name(n))
			}
			if strings.Join(names, ">") == truthStr {
				found = true
			}
		}
		if !found {
			t.Fatalf("true context %s not among %d candidates", truthStr, len(cands))
		}
		checked++
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

// TestSearchBudgetExplodes: on a benchmark-sized graph the context count is
// astronomically large, so the search hits its budget — the effect behind
// Breadcrumbs' 5-second offline decode limit.
func TestSearchBudgetExplodes(t *testing.T) {
	p, _ := workload.ByName("compress")
	prog, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingAll})
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(build)
	dec.Budget = 200_000
	// Pick a deep node: any node with in-edges whose graph region is wide.
	g := build.Graph
	deepest := -1
	var target callgraph.NodeID
	for _, n := range g.Nodes() {
		if d := len(g.In(n)); d > deepest {
			deepest = d
			target = n
		}
	}
	_, steps, err := dec.Decode(12345, target, 0)
	if err == nil {
		// Either the budget was hit or (unlikely) the search completed;
		// require that real work happened.
		if steps < 1000 {
			t.Fatalf("search suspiciously cheap: %d steps", steps)
		}
		t.Logf("search completed in %d steps", steps)
		return
	}
	if err != ErrBudget {
		t.Fatalf("unexpected error: %v", err)
	}
	t.Logf("budget exhausted after %d steps (as Breadcrumbs' 5s limit models)", steps)
}

// TestAmbiguity: two distinct contexts that collide in the 32-bit hash are
// both reported — the reliability cost the paper cites.
func TestAmbiguity(t *testing.T) {
	prog := lang.MustParse(src)
	build, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(build)
	// B.f and B.g both reach C.h; their PCC values differ here (no forced
	// collision in a tiny graph), so decoding each value must yield
	// exactly one candidate — unambiguous at this scale.
	node := build.NodeOf[minivm.MethodRef{Class: "C", Method: "h"}]
	enc := pcc.New(build)
	vm, _ := minivm.NewVM(prog, 0)
	vm.SetProbes(enc)
	var values []uint64
	vm.OnEmit = func(_ *minivm.VM, m minivm.MethodRef, _ string) {
		if m == (minivm.MethodRef{Class: "C", Method: "h"}) {
			values = append(values, enc.Value())
		}
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if len(values) != 2 || values[0] == values[1] {
		t.Fatalf("expected two distinct C.h contexts, got %v", values)
	}
	for _, v := range values {
		amb, err := dec.Ambiguous(v, node)
		if err != nil {
			t.Fatal(err)
		}
		if amb {
			t.Fatalf("value %d unexpectedly ambiguous in a 5-node graph", v)
		}
	}
}
