package analysisio

import (
	"bytes"
	"strings"
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/lang"
)

func TestDigestStableAcrossRoundTrip(t *testing.T) {
	build, _, bundle := roundTrip(t)
	want := DigestGraph(build.Graph)
	if bundle.Digest != want {
		t.Fatalf("digest changed across save/load: %s vs %s", bundle.Digest, want)
	}
	if got := DigestGraph(bundle.Graph); got != want {
		t.Fatalf("restored graph digests differently: %s vs %s", got, want)
	}
}

func TestCheckGraphAcceptsSameRefusesSkewed(t *testing.T) {
	build, _, bundle := roundTrip(t)
	if err := bundle.CheckGraph(build.Graph); err != nil {
		t.Fatalf("same graph refused: %v", err)
	}
	// The version-skew scenario: the program gained a method after the
	// analysis was saved, so the rebuilt call graph differs.
	skewed := strings.Replace(src,
		"class C { method leaf { emit leaf } }",
		"class C { method leaf { emit leaf } method extra { emit e } }", 1)
	prog := lang.MustParse(skewed)
	newBuild, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	err = bundle.CheckGraph(newBuild.Graph)
	if err == nil {
		t.Fatal("skewed graph accepted")
	}
	if !strings.Contains(err.Error(), "stale analysis file") {
		t.Fatalf("skew error not descriptive: %v", err)
	}
	// The message must name both digests — expected (the analysis) and
	// actual (the live graph) — so a mismatch report is actionable without
	// re-running anything.
	for _, want := range []string{bundle.Digest.String(), DigestGraph(newBuild.Graph).String()} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("skew error does not name digest %s: %v", want, err)
		}
	}
}

func TestLoadRejectsTamperedDigest(t *testing.T) {
	prog := lang.MustParse(src)
	build, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, res.Spec, cpt.Compute(build.Graph)); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the persisted digest (the bytes right after the
	// 5-byte magic); the graph payload no longer matches it.
	data := append([]byte(nil), buf.Bytes()...)
	data[len(magic)] ^= 0x01
	_, err = Load(bytes.NewReader(data))
	if err == nil {
		t.Fatal("tampered digest accepted")
	}
	if !strings.Contains(err.Error(), "digest") {
		t.Fatalf("digest mismatch error not descriptive: %v", err)
	}
}

func TestLoadRejectsV1Files(t *testing.T) {
	prog := lang.MustParse(src)
	build, _ := cha.Build(prog, cha.Options{})
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, res.Spec, nil); err != nil {
		t.Fatal(err)
	}
	// A DPA1 file is a pre-digest layout; whatever its payload, the load
	// must refuse it with advice rather than misparse it.
	data := append([]byte(magicV1), buf.Bytes()[len(magic):]...)
	_, err = Load(bytes.NewReader(data))
	if err == nil {
		t.Fatal("DPA1 file accepted")
	}
	if !strings.Contains(err.Error(), "re-save") {
		t.Fatalf("version error not descriptive: %v", err)
	}
}
