package analysisio

import (
	"bytes"
	"strings"
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/instrument"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
)

const src = `
entry A.main
class A {
  method main {
    load X
    spawn W.run
    loop 3 { vcall B.go }
    call A.rec
    emit top
  }
  method rec { rcall 5 A.rec; emit r }
}
class B { method go { call C.leaf; emit b } }
class B2 extends B { method go { emit b2 } }
class C { method leaf { emit leaf } }
class W { method run { call C.leaf; emit w } }
library class L { method l { work 1 } }
dynamic class X extends B { method go { call C.leaf; emit x } }
`

// roundTrip saves and reloads the analysis of src.
func roundTrip(t *testing.T) (*cha.Result, *core.Result, *Bundle) {
	t.Helper()
	prog := lang.MustParse(src)
	build, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := cpt.Compute(build.Graph)
	var buf bytes.Buffer
	if err := Save(&buf, res.Spec, plan); err != nil {
		t.Fatal(err)
	}
	bundle, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return build, res, bundle
}

func TestRoundTripStructure(t *testing.T) {
	build, res, bundle := roundTrip(t)
	g, lg := build.Graph, bundle.Graph
	if lg.NumNodes() != g.NumNodes() || lg.NumEdges() != g.NumEdges() ||
		lg.NumSites() != g.NumSites() || lg.NumVirtualSites() != g.NumVirtualSites() {
		t.Fatalf("graph shape changed: %d/%d/%d/%d vs %d/%d/%d/%d",
			lg.NumNodes(), lg.NumEdges(), lg.NumSites(), lg.NumVirtualSites(),
			g.NumNodes(), g.NumEdges(), g.NumSites(), g.NumVirtualSites())
	}
	for _, id := range g.Nodes() {
		if g.Name(id) != lg.Name(id) {
			t.Fatalf("node %d name changed: %q vs %q", id, g.Name(id), lg.Name(id))
		}
		if g.Node(id).Library != lg.Node(id).Library {
			t.Fatalf("node %d library flag changed", id)
		}
	}
	e1, _ := g.Entry()
	e2, _ := lg.Entry()
	if e1 != e2 {
		t.Fatalf("entry changed: %d vs %d", e1, e2)
	}
	if len(lg.ContextRoots()) != len(g.ContextRoots()) {
		t.Fatalf("context roots changed")
	}
	// Spec contents identical.
	for s, av := range res.Spec.SiteAV {
		if bundle.Spec.SiteAV[s] != av {
			t.Fatalf("AV of %v changed", s)
		}
	}
	if len(bundle.Spec.Push) != len(res.Spec.Push) {
		t.Fatalf("push edges changed: %d vs %d", len(bundle.Spec.Push), len(res.Spec.Push))
	}
	if len(bundle.Spec.Anchors) != len(res.Spec.Anchors) {
		t.Fatalf("anchors changed")
	}
	if bundle.CPT == nil || bundle.CPT.NumSets == 0 {
		t.Fatalf("CPT plan lost")
	}
}

// TestDecodeWithLoadedAnalysis is the deployment scenario: context records
// produced by a live run decode identically under the reloaded analysis.
func TestDecodeWithLoadedAnalysis(t *testing.T) {
	build, res, bundle := roundTrip(t)
	prog := lang.MustParse(src)
	plan, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
	if err != nil {
		t.Fatal(err)
	}
	enc := instrument.NewEncoder(plan)
	vm, err := minivm.NewVM(prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(plan.InstrumentedMethods())
	liveDec := encoding.NewDecoder(res.Spec)
	loadedDec := encoding.NewDecoder(bundle.Spec)
	var records [][]byte
	var live []string
	vm.OnEmit = func(_ *minivm.VM, m minivm.MethodRef, _ string) {
		node, known := build.NodeOf[m]
		if !known {
			return
		}
		st := enc.State().Snapshot()
		names, err := liveDec.DecodeNames(st, node)
		if err != nil {
			t.Fatalf("live decode: %v", err)
		}
		live = append(live, strings.Join(names, ">"))
		records = append(records, encoding.MarshalContext(st, node))
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records")
	}
	for i, rec := range records {
		st, end, err := encoding.UnmarshalContext(rec)
		if err != nil {
			t.Fatal(err)
		}
		names, err := loadedDec.DecodeNames(st, end)
		if err != nil {
			t.Fatalf("loaded-analysis decode: %v", err)
		}
		if got := strings.Join(names, ">"); got != live[i] {
			t.Fatalf("record %d decodes differently: %s vs %s", i, got, live[i])
		}
	}
}

func TestSaveWithoutCPT(t *testing.T) {
	prog := lang.MustParse(src)
	build, _ := cha.Build(prog, cha.Options{})
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, res.Spec, nil); err != nil {
		t.Fatal(err)
	}
	bundle, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if bundle.CPT != nil {
		t.Fatal("phantom CPT plan appeared")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	prog := lang.MustParse(src)
	build, _ := cha.Build(prog, cha.Options{})
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, res.Spec, cpt.Compute(build.Graph)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := [][]byte{
		nil,
		[]byte("nope"),
		data[:len(data)/2],                    // truncated
		append([]byte("DPXX\n"), data[5:]...), // bad magic
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt analysis accepted", i)
		}
	}
}
