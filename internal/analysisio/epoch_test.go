package analysisio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/lang"
)

// Wire-format tests for the epoch header field DPA3 added: its exact byte
// position, the epoch-0 compatibility guarantee (SaveEpoch(0) must remain
// byte-identical with the pre-epoch DPA2 writer), and the typed error a
// version-skewed file produces.

func buildAnalysis(t *testing.T) (*cha.Result, *core.Result, *cpt.Plan) {
	t.Helper()
	prog := lang.MustParse(src)
	build, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return build, res, cpt.Compute(build.Graph)
}

// TestEpochHeaderGolden pins the DPA3 layout: "DPA3\n", the three digest
// uvarints, then the epoch uvarint, then a body byte-identical with the
// DPA2 body. Decoding by structure (not offsets) keeps the test valid for
// any digest width.
func TestEpochHeaderGolden(t *testing.T) {
	_, res, plan := buildAnalysis(t)

	var v2, v2exp, v3 bytes.Buffer
	if err := Save(&v2, res.Spec, plan); err != nil {
		t.Fatal(err)
	}
	if err := SaveEpoch(&v2exp, res.Spec, plan, 0); err != nil {
		t.Fatal(err)
	}
	const epoch = 7
	if err := SaveEpoch(&v3, res.Spec, plan, epoch); err != nil {
		t.Fatal(err)
	}

	// Epoch 0 is not a new format: byte-identical with the DPA2 writer.
	if !bytes.Equal(v2.Bytes(), v2exp.Bytes()) {
		t.Fatal("SaveEpoch(0) is not byte-identical with Save")
	}
	if !bytes.HasPrefix(v2.Bytes(), []byte("DPA2\n")) {
		t.Fatalf("epoch-0 magic = %q, want DPA2", v2.Bytes()[:5])
	}
	if !bytes.HasPrefix(v3.Bytes(), []byte("DPA3\n")) {
		t.Fatalf("epochal magic = %q, want DPA3", v3.Bytes()[:5])
	}

	// Structure of the v3 header: digest (identical bytes to v2), then the
	// epoch, then the identical body.
	v2rest := v2.Bytes()[5:]
	v3rest := v3.Bytes()[5:]
	dlen := 0
	for i := 0; i < 3; i++ {
		_, n := binary.Uvarint(v2rest[dlen:])
		if n <= 0 {
			t.Fatal("cannot parse digest uvarints")
		}
		dlen += n
	}
	if !bytes.Equal(v2rest[:dlen], v3rest[:dlen]) {
		t.Fatal("digest bytes differ between DPA2 and DPA3")
	}
	got, n := binary.Uvarint(v3rest[dlen:])
	if n <= 0 || got != epoch {
		t.Fatalf("epoch field after digest = %d (n=%d), want %d", got, n, epoch)
	}
	if !bytes.Equal(v2rest[dlen:], v3rest[dlen+n:]) {
		t.Fatal("body after the epoch field differs from the DPA2 body")
	}

	// Round trip through Load.
	for _, tc := range []struct {
		buf  *bytes.Buffer
		want uint64
	}{{&v2, 0}, {&v3, epoch}} {
		bundle, err := Load(bytes.NewReader(tc.buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if bundle.Epoch != tc.want {
			t.Fatalf("loaded epoch = %d, want %d", bundle.Epoch, tc.want)
		}
	}
}

// TestVersionSkew checks the typed error: an unreadable version names both
// what was found and what this build supports.
func TestVersionSkew(t *testing.T) {
	_, res, plan := buildAnalysis(t)
	var buf bytes.Buffer
	if err := Save(&buf, res.Spec, plan); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()[5:]

	for _, tc := range []struct {
		head  string
		found string
	}{
		{"DPA1\n", "DPA1"}, // the pre-digest ancestor
		{"DPA9\n", "DPA9"}, // a future version this build predates
	} {
		data := append([]byte(tc.head), body...)
		_, err := Load(bytes.NewReader(data))
		var skew *VersionSkewError
		if !errors.As(err, &skew) {
			t.Fatalf("%s: Load = %v, want VersionSkewError", tc.found, err)
		}
		if skew.Found != tc.found {
			t.Errorf("Found = %q, want %q", skew.Found, tc.found)
		}
		msg := skew.Error()
		for _, v := range []string{tc.found, "DPA3", "DPA2"} {
			if !strings.Contains(msg, v) {
				t.Errorf("error %q does not name version %q", msg, v)
			}
		}
	}

	// A non-DPA magic is corruption, not skew.
	_, err := Load(bytes.NewReader(append([]byte("XXXX\n"), body...)))
	var skew *VersionSkewError
	if err == nil || errors.As(err, &skew) {
		t.Fatalf("bad magic: Load = %v, want a plain (non-skew) error", err)
	}
}
