// Package analysisio persists and restores a complete encoding analysis:
// the call graph, the addition values/anchors/push edges of the Spec, and
// the call-path-tracking SIDs. This is the artifact a deployment ships next
// to its logs — a collector records integer-sized context records
// (encoding.MarshalContext), and any host holding the analysis file can
// decode them exactly, with no access to the program and no re-analysis.
//
// Format: the header "DPA3\n", then a graph digest (node count, edge
// count, FNV-1a hash), then the analysis epoch (the number of incremental
// extensions behind the encoding — 0 for a whole-program analysis), then
// unsigned varints and length-prefixed strings. An epoch-0 analysis is
// written in the previous "DPA2\n" format (no epoch field), byte-identical
// with earlier builds; Load reads both. The file is self-contained and
// versioned; Load rejects unknown versions (with a typed VersionSkewError
// naming both sides), truncated input, and files whose persisted digest
// does not match the graph they carry (bit rot, partial writes). The digest
// also lets a caller refuse to bind a stale Spec to a newer call graph
// (CheckGraph) — the version-skew hazard of shipping analysis files
// separately from the programs that produced them.
package analysisio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"deltapath/internal/callgraph"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
)

const (
	magicV3 = "DPA3\n" // adds the analysis epoch after the digest
	magic   = "DPA2\n"
	magicV1 = "DPA1\n" // pre-digest format; recognized only to reject clearly
)

// VersionSkewError reports a wire-format version this build cannot read: a
// file written by a newer (or long-dead) format revision. It names both
// sides so the operator can tell which end to upgrade.
type VersionSkewError struct {
	// Found is the version tag in the file, e.g. "DPA1".
	Found string
	// Supported lists the versions this build reads, newest first.
	Supported []string
}

func (e *VersionSkewError) Error() string {
	return fmt.Sprintf("file version %s is not readable by this build (supported: %s)",
		e.Found, strings.Join(e.Supported, ", "))
}

// GraphDigest summarizes a call graph for compatibility checking: two
// graphs with equal digests have the same nodes (names, order, library
// flags), entry, context roots, and edges.
type GraphDigest struct {
	Nodes, Edges uint64
	Hash         uint64
}

func (d GraphDigest) String() string {
	return fmt.Sprintf("%d nodes/%d edges/%016x", d.Nodes, d.Edges, d.Hash)
}

// DigestGraph computes the digest of g. Iteration follows the same
// deterministic order Save uses, so a saved-then-loaded graph digests
// identically.
func DigestGraph(g *callgraph.Graph) GraphDigest {
	h := fnv.New64a()
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		h.Write(buf[:n])
	}
	put(uint64(g.NumNodes()))
	for _, id := range g.Nodes() {
		n := g.Node(id)
		put(uint64(len(n.Name)))
		h.Write([]byte(n.Name))
		if n.Library {
			put(1)
		} else {
			put(0)
		}
	}
	if entry, ok := g.Entry(); ok {
		put(uint64(entry))
	}
	for _, r := range g.ContextRoots() {
		put(uint64(r))
	}
	var edges uint64
	for _, s := range g.Sites() {
		for _, e := range g.SiteTargets(s) {
			put(uint64(e.Caller))
			put(uint64(e.Label))
			put(uint64(e.Callee))
			edges++
		}
	}
	return GraphDigest{Nodes: uint64(g.NumNodes()), Edges: edges, Hash: h.Sum64()}
}

// Bundle is a restored analysis: everything needed to decode context
// records.
type Bundle struct {
	Graph *callgraph.Graph
	Spec  *encoding.Spec
	CPT   *cpt.Plan // nil if the analysis ran without call path tracking
	// Digest is the graph digest persisted with (and verified against)
	// the analysis.
	Digest GraphDigest
	// Epoch is the analysis epoch the file was saved at: how many
	// incremental extensions (Analysis.Extend) the encoding is behind the
	// original whole-program analysis. 0 for DPA2 files.
	Epoch uint64
}

// CheckGraph verifies that a live call graph matches the graph this
// analysis was computed over. Use it before binding the bundle's Spec to a
// freshly built graph: addition values are meaningful only relative to
// their graph, so decoding against a program that has since changed would
// silently produce wrong contexts.
func (b *Bundle) CheckGraph(g *callgraph.Graph) error {
	if got := DigestGraph(g); got != b.Digest {
		return fmt.Errorf("analysisio: graph mismatch: analysis was computed over %s, live graph is %s (stale analysis file?)",
			b.Digest, got)
	}
	return nil
}

// Save writes the analysis to w. cptPlan may be nil. It writes epoch 0 —
// the whole-program case; use SaveEpoch for extended analyses.
func Save(w io.Writer, spec *encoding.Spec, cptPlan *cpt.Plan) error {
	return SaveEpoch(w, spec, cptPlan, 0)
}

// SaveEpoch writes the analysis to w, stamped with its epoch. Epoch 0 is
// written in the DPA2 format (no epoch field) — byte-identical with
// pre-epoch builds, so existing files and golden bytes stay valid; a
// nonzero epoch selects DPA3, which carries the epoch after the digest.
func SaveEpoch(w io.Writer, spec *encoding.Spec, cptPlan *cpt.Plan, epoch uint64) error {
	bw := bufio.NewWriter(w)
	head := magic
	if epoch > 0 {
		head = magicV3
	}
	if _, err := bw.WriteString(head); err != nil {
		return err
	}
	g := spec.Graph
	dig := DigestGraph(g)
	putUvarint(bw, dig.Nodes)
	putUvarint(bw, dig.Edges)
	putUvarint(bw, dig.Hash)
	if epoch > 0 {
		putUvarint(bw, epoch)
	}
	putUvarint(bw, uint64(g.NumNodes()))
	for _, id := range g.Nodes() {
		n := g.Node(id)
		putString(bw, n.Name)
		putBool(bw, n.Library)
	}
	entry, ok := g.Entry()
	if !ok {
		return fmt.Errorf("analysisio: graph has no entry")
	}
	putUvarint(bw, uint64(entry))
	roots := g.ContextRoots()
	putUvarint(bw, uint64(len(roots)))
	for _, r := range roots {
		putUvarint(bw, uint64(r))
	}
	// Edges in deterministic site order.
	sites := g.Sites()
	var edgeCount uint64
	for _, s := range sites {
		edgeCount += uint64(len(g.SiteTargets(s)))
	}
	putUvarint(bw, edgeCount)
	for _, s := range sites {
		for _, e := range g.SiteTargets(s) {
			putUvarint(bw, uint64(e.Caller))
			putUvarint(bw, uint64(e.Label))
			putUvarint(bw, uint64(e.Callee))
		}
	}

	// Spec.
	putBool(bw, spec.PerEdge)
	putUvarint(bw, uint64(len(spec.SiteAV)))
	for _, s := range sites {
		if av, ok := spec.SiteAV[s]; ok {
			putUvarint(bw, uint64(s.Caller))
			putUvarint(bw, uint64(s.Label))
			putUvarint(bw, av)
		}
	}
	// Per-edge AVs (PCCE mode).
	putUvarint(bw, uint64(len(spec.EdgeAV)))
	for _, s := range sites {
		for _, e := range g.SiteTargets(s) {
			if av, ok := spec.EdgeAV[e]; ok {
				putUvarint(bw, uint64(e.Caller))
				putUvarint(bw, uint64(e.Label))
				putUvarint(bw, uint64(e.Callee))
				putUvarint(bw, av)
			}
		}
	}
	putUvarint(bw, uint64(len(spec.Push)))
	for _, s := range sites {
		for _, e := range g.SiteTargets(s) {
			if kind, ok := spec.Push[e]; ok {
				putUvarint(bw, uint64(e.Caller))
				putUvarint(bw, uint64(e.Label))
				putUvarint(bw, uint64(e.Callee))
				putUvarint(bw, uint64(kind))
			}
		}
	}
	putUvarint(bw, uint64(len(spec.Anchors)))
	for _, id := range g.Nodes() {
		if spec.Anchors[id] {
			putUvarint(bw, uint64(id))
		}
	}

	// CPT.
	if cptPlan == nil {
		putBool(bw, false)
	} else {
		putBool(bw, true)
		putUvarint(bw, uint64(len(cptPlan.SID)))
		for _, sid := range cptPlan.SID {
			putUvarint(bw, uint64(sid))
		}
		putUvarint(bw, uint64(cptPlan.NumSets))
		putUvarint(bw, uint64(len(cptPlan.Expected)))
		for _, s := range sites {
			if sid, ok := cptPlan.Expected[s]; ok {
				putUvarint(bw, uint64(s.Caller))
				putUvarint(bw, uint64(s.Label))
				putUvarint(bw, uint64(sid))
			}
		}
	}
	return bw.Flush()
}

// Load restores an analysis from r.
func Load(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("analysisio: %w", err)
	}
	var epochal bool
	switch string(head) {
	case magic:
	case magicV3:
		epochal = true
	case magicV1:
		return nil, fmt.Errorf("analysisio: %w (DPA1 predates graph digests; re-save the analysis with this build)",
			&VersionSkewError{Found: "DPA1", Supported: []string{"DPA3", "DPA2"}})
	default:
		if strings.HasPrefix(string(head), "DPA") {
			return nil, fmt.Errorf("analysisio: %w",
				&VersionSkewError{Found: strings.TrimSuffix(string(head), "\n"), Supported: []string{"DPA3", "DPA2"}})
		}
		return nil, fmt.Errorf("analysisio: bad magic %q (not an analysis file)", head)
	}
	d := &decoder{r: br}
	want := GraphDigest{Nodes: d.uvarint(), Edges: d.uvarint(), Hash: d.uvarint()}
	var epoch uint64
	if epochal {
		epoch = d.uvarint()
	}

	g := callgraph.New()
	nodes := d.uvarint()
	if d.err == nil && nodes > 1<<26 {
		return nil, fmt.Errorf("analysisio: implausible node count %d", nodes)
	}
	for i := uint64(0); i < nodes && d.err == nil; i++ {
		name := d.str()
		lib := d.boolean()
		g.AddNode(name, lib)
	}
	g.SetEntry(d.node(nodes))
	nroots := d.uvarint()
	for i := uint64(0); i < nroots && d.err == nil; i++ {
		g.MarkContextRoot(d.node(nodes))
	}
	nedges := d.uvarint()
	if d.err == nil && nedges > 1<<28 {
		return nil, fmt.Errorf("analysisio: implausible edge count %d", nedges)
	}
	for i := uint64(0); i < nedges && d.err == nil; i++ {
		caller := d.node(nodes)
		label := int32(d.uvarint())
		callee := d.node(nodes)
		g.AddEdge(caller, label, callee)
	}

	spec := &encoding.Spec{
		Graph:   g,
		SiteAV:  make(map[callgraph.Site]uint64),
		EdgeAV:  make(map[callgraph.Edge]uint64),
		Push:    make(map[callgraph.Edge]encoding.PieceKind),
		Anchors: make(map[callgraph.NodeID]bool),
	}
	spec.PerEdge = d.boolean()
	nav := d.uvarint()
	for i := uint64(0); i < nav && d.err == nil; i++ {
		s := callgraph.Site{Caller: d.node(nodes), Label: int32(d.uvarint())}
		spec.SiteAV[s] = d.uvarint()
	}
	neav := d.uvarint()
	for i := uint64(0); i < neav && d.err == nil; i++ {
		e := callgraph.Edge{Caller: d.node(nodes)}
		e.Label = int32(d.uvarint())
		e.Callee = d.node(nodes)
		spec.EdgeAV[e] = d.uvarint()
	}
	npush := d.uvarint()
	for i := uint64(0); i < npush && d.err == nil; i++ {
		e := callgraph.Edge{Caller: d.node(nodes)}
		e.Label = int32(d.uvarint())
		e.Callee = d.node(nodes)
		spec.Push[e] = encoding.PieceKind(d.uvarint())
	}
	nanch := d.uvarint()
	for i := uint64(0); i < nanch && d.err == nil; i++ {
		spec.Anchors[d.node(nodes)] = true
	}

	bundle := &Bundle{Graph: g, Spec: spec}
	if d.boolean() {
		plan := &cpt.Plan{Expected: make(map[callgraph.Site]int32)}
		nsid := d.uvarint()
		if d.err == nil && nsid != nodes {
			return nil, fmt.Errorf("analysisio: SID count %d != node count %d", nsid, nodes)
		}
		for i := uint64(0); i < nsid && d.err == nil; i++ {
			plan.SID = append(plan.SID, int32(d.uvarint()))
		}
		plan.NumSets = int(d.uvarint())
		nexp := d.uvarint()
		for i := uint64(0); i < nexp && d.err == nil; i++ {
			s := callgraph.Site{Caller: d.node(nodes), Label: int32(d.uvarint())}
			plan.Expected[s] = int32(d.uvarint())
		}
		bundle.CPT = plan
	}
	if d.err != nil {
		return nil, fmt.Errorf("analysisio: corrupt file: %w", d.err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("analysisio: %w", err)
	}
	// The persisted digest must match the graph actually restored: a
	// mismatch means the graph section was corrupted in storage, or the
	// file was assembled from mismatched pieces.
	if got := DigestGraph(g); got != want {
		return nil, fmt.Errorf("analysisio: corrupt file: persisted digest %s does not match restored graph %s",
			want, got)
	}
	bundle.Digest = want
	bundle.Epoch = epoch
	return bundle, nil
}

// --- primitive readers/writers ---

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putString(w *bufio.Writer, s string) {
	putUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func putBool(w *bufio.Writer, b bool) {
	if b {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) node(numNodes uint64) callgraph.NodeID {
	v := d.uvarint()
	if d.err == nil && v >= numNodes {
		d.err = fmt.Errorf("node id %d out of range (%d nodes)", v, numNodes)
		return 0
	}
	return callgraph.NodeID(v)
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return ""
	}
	return string(buf)
}

func (d *decoder) boolean() bool {
	if d.err != nil {
		return false
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
		return false
	}
	return b != 0
}
