package encoding

import (
	"testing"

	"deltapath/internal/callgraph"
)

func TestStateLifecycle(t *testing.T) {
	st := NewState(0)
	if st.Depth() != 1 || st.ID != 0 || st.Start != 0 {
		t.Fatalf("fresh state: %+v", st)
	}
	st.Add(5)
	st.Add(2)
	if st.ID != 7 {
		t.Fatalf("ID = %d, want 7", st.ID)
	}
	st.Sub(2)
	if st.ID != 5 {
		t.Fatalf("ID = %d, want 5", st.ID)
	}
}

func TestPushPopAnchor(t *testing.T) {
	st := NewState(0)
	st.Add(9)
	st.PushAnchor(4)
	if st.ID != 0 || st.Start != 4 || st.Depth() != 2 {
		t.Fatalf("after anchor push: %+v", st)
	}
	st.Add(3)
	el := st.Pop()
	if el.Kind != PieceAnchor || el.DecodeID != 9 || el.OuterEnd != 4 {
		t.Fatalf("popped element: %+v", el)
	}
	if st.ID != 9 || st.Start != 0 || st.Depth() != 1 {
		t.Fatalf("after pop: %+v", st)
	}
}

func TestPushPopRecursion(t *testing.T) {
	st := NewState(0)
	st.Add(2)
	site := callgraph.Site{Caller: 1, Label: 3}
	st.PushCallEdge(PieceRecursion, site, 1)
	if st.ID != 0 || st.Start != 1 {
		t.Fatalf("after recursion push: %+v", st)
	}
	el := st.Pop()
	if el.Kind != PieceRecursion || !el.HasSite || el.Site != site || el.OuterEnd != 1 {
		t.Fatalf("popped: %+v", el)
	}
	if st.ID != 2 {
		t.Fatalf("ID not restored: %d", st.ID)
	}
}

func TestPushUCP(t *testing.T) {
	st := NewState(0)
	st.Add(6)
	site := callgraph.Site{Caller: 2, Label: 0}
	st.PushUCP(site, 4, 2, 7)
	top := st.Stack[len(st.Stack)-1]
	if !top.Gap || top.DecodeID != 4 || top.ResumeID != 6 || top.OuterEnd != 2 {
		t.Fatalf("UCP element: %+v", top)
	}
	if st.Start != 7 || st.ID != 0 {
		t.Fatalf("state after UCP push: %+v", st)
	}
	if st.UCPCount() != 1 {
		t.Fatalf("UCPCount = %d", st.UCPCount())
	}
	st.Pop()
	if st.ID != 6 {
		t.Fatalf("ResumeID not restored: %d", st.ID)
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pop of empty stack did not panic")
		}
	}()
	NewState(0).Pop()
}

func TestSnapshotIsolated(t *testing.T) {
	st := NewState(0)
	st.PushAnchor(1)
	snap := st.Snapshot()
	st.Pop()
	st.Add(99)
	if snap.ID != 0 || len(snap.Stack) != 1 {
		t.Fatalf("snapshot mutated: %+v", snap)
	}
}

func TestKeyDistinguishes(t *testing.T) {
	a := NewState(0)
	a.Add(3)
	b := NewState(0)
	b.Add(3)
	if a.Key(5) != b.Key(5) {
		t.Fatal("identical states produced different keys")
	}
	if a.Key(5) == a.Key(6) {
		t.Fatal("different end nodes share a key")
	}
	b.PushAnchor(2)
	if a.Key(5) == b.Key(5) {
		t.Fatal("different stacks share a key")
	}
}

func TestReset(t *testing.T) {
	st := NewState(0)
	st.Add(3)
	st.PushAnchor(1)
	st.Reset(0)
	if st.ID != 0 || st.Start != 0 || st.Depth() != 1 {
		t.Fatalf("after reset: %+v", st)
	}
}

func TestPieceKindString(t *testing.T) {
	for k, want := range map[PieceKind]string{
		PieceEntry: "entry", PieceAnchor: "anchor", PieceRecursion: "recursion",
		PiecePruned: "pruned", PieceUCP: "ucp", PieceKind(99): "PieceKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("PieceKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestSpecAV(t *testing.T) {
	g := callgraph.New()
	a := g.AddNode("a", false)
	b := g.AddNode("b", false)
	g.SetEntry(a)
	e := g.AddEdge(a, 1, b)
	spec := &Spec{
		Graph:  g,
		SiteAV: map[callgraph.Site]uint64{{Caller: a, Label: 1}: 7},
	}
	if spec.AV(e) != 7 {
		t.Fatalf("site-mode AV = %d", spec.AV(e))
	}
	spec.PerEdge = true
	spec.EdgeAV = map[callgraph.Edge]uint64{e: 9}
	if spec.AV(e) != 9 {
		t.Fatalf("edge-mode AV = %d", spec.AV(e))
	}
}

func TestEncodePathRejectsDiscontinuousPath(t *testing.T) {
	g := callgraph.New()
	a := g.AddNode("a", false)
	b := g.AddNode("b", false)
	c := g.AddNode("c", false)
	g.SetEntry(a)
	g.AddEdge(a, 0, b)
	e2 := g.AddEdge(b, 0, c)
	spec := &Spec{Graph: g, SiteAV: map[callgraph.Site]uint64{}}
	if _, err := EncodePath(spec, []callgraph.Edge{e2}); err == nil {
		t.Fatal("discontinuous path accepted")
	}
}

func TestEncodePathNoEntry(t *testing.T) {
	spec := &Spec{Graph: callgraph.New()}
	if _, err := EncodePath(spec, nil); err == nil {
		t.Fatal("entry-less graph accepted")
	}
}

func TestEnumeratePathsCountsAcyclic(t *testing.T) {
	// Diamond: a->b->d, a->c->d: paths are (), b, c, bd, cd = 5.
	g := callgraph.New()
	a := g.AddNode("a", false)
	b := g.AddNode("b", false)
	c := g.AddNode("c", false)
	d := g.AddNode("d", false)
	g.SetEntry(a)
	g.AddEdge(a, 0, b)
	g.AddEdge(a, 1, c)
	g.AddEdge(b, 0, d)
	g.AddEdge(c, 0, d)
	n := 0
	EnumeratePaths(g, 0, 10, func(path []callgraph.Edge) { n++ })
	if n != 5 {
		t.Fatalf("enumerated %d paths, want 5", n)
	}
}

func TestEnumeratePathsRecursionBound(t *testing.T) {
	g := callgraph.New()
	a := g.AddNode("a", false)
	g.SetEntry(a)
	g.AddEdge(a, 0, a)
	var lens []int
	EnumeratePaths(g, 3, 10, func(path []callgraph.Edge) { lens = append(lens, len(path)) })
	// Paths: length 0,1,2,3 — the self loop used at most 3 times.
	if len(lens) != 4 {
		t.Fatalf("paths = %v, want 4 of lengths 0..3", lens)
	}
}

func TestFormatContext(t *testing.T) {
	if got := FormatContext([]string{"a", "b"}); got != "a > b" {
		t.Fatalf("FormatContext = %q", got)
	}
}
