package encoding

import (
	"fmt"
	"sort"
	"sync"

	"deltapath/internal/callgraph"
	"deltapath/internal/obs"
)

// This file is the compiled decode path: Compile lowers a Spec into flat,
// cache-friendly arrays — CSR in-edge rows sorted by descending AV, edge-
// index bitsets for the anchor territories — built once and read-only
// afterwards, so decoding needs no locks, no map lookups, and (through
// DecodeInto plus a pooled scratch arena) no steady-state allocations.
// The legacy Decoder remains as the map-based reference implementation;
// the differential tests and FuzzCompiledDecode hold the two byte-identical
// on every input, valid or corrupt.

// ContextDecoder is the read-side contract shared by the legacy Decoder and
// the CompiledDecoder: recover a context precisely, or salvage the longest
// decodable suffix. The recovery path (instrument.Encoder) accepts either.
type ContextDecoder interface {
	Decode(st *State, end callgraph.NodeID) ([]Frame, error)
	DecodeBestEffort(st *State, end callgraph.NodeID) ([]Frame, bool)
}

var (
	_ ContextDecoder = (*Decoder)(nil)
	_ ContextDecoder = (*CompiledDecoder)(nil)
)

// CompiledDecoder decodes contexts from flat precomputed tables. Unlike the
// legacy Decoder it has no mutable state at all after Compile returns —
// every field is written once and only read afterwards — so it is safe for
// unlimited concurrent use without any synchronization (the sync.Pool
// scratch arena is internally concurrent).
type CompiledDecoder struct {
	spec     *Spec
	numNodes int32

	// CSR in-edge rows: node n's non-push in-edges occupy slots
	// inStart[n]..inStart[n+1], sorted by descending AV with ties in the
	// exact order the legacy sortedIn cache uses (see sortedInEdges).
	// inCaller/inAV are parallel per-slot arrays. Each non-push edge
	// appears in exactly one slot (as an in-edge of its callee), so the
	// slot number doubles as the dense edge index keying the territory
	// bitsets.
	inStart  []int32
	inCaller []int32
	inAV     []uint64

	// Territory bitsets: bit inIdx[s] of a row is set iff slot s's edge is
	// reachable from the row's node without leaving through another anchor
	// (Section 3.2's bounded DFS, precomputed). Two storage modes:
	//
	//   - eager (terr non-nil): one row per node, any piece start served
	//     from the flat table. Chosen while V×⌈E/64⌉ words fit the
	//     maxEagerTerritoryWords budget — every suite-scale graph.
	//   - sparse (terrRows non-nil): rows only for the known piece starts
	//     (anchors, the entry, context roots); an arbitrary UCP resume
	//     point falls back to an on-the-fly DFS over the retained
	//     out-CSR. At 10⁶ nodes the eager table would need hundreds of
	//     gigabytes; the sparse rows need megabytes.
	//
	// Both nil when the spec has no anchors — then every edge qualifies
	// and the filter would be pure overhead, exactly the legacy
	// territoryOf contract.
	terrWords int32
	terr      []uint64
	terrRows  map[int32][]uint64

	// Out-CSR of the non-push edges (counting-sorted from the in-rows),
	// retained only in sparse mode for the fallback DFS; anchorBits is the
	// retreat set.
	outStart   []int32
	outCallee  []int32
	outIdx     []int32
	anchorBits []bool

	// scratch pools per-decode working space (piece node stack + segment
	// table), so a warm DecodeInto performs zero allocations.
	scratch sync.Pool

	// Observability hooks (nil = no-op), registered under the same
	// dp_decode_memo_* names as the legacy decoder: every table lookup is
	// a hit. memoMisses stays zero in eager mode (the tables are
	// precomputed, so the "memo" cannot miss) and counts sparse-mode
	// fallback DFS runs for piece starts outside the precomputed set.
	memoHits   *obs.Counter
	memoMisses *obs.Counter
	frames     *obs.Histogram
}

// pieceSeg locates one decoded piece inside the scratch arena's flat node
// buffer, in entry-to-end order.
type pieceSeg struct {
	off, n int32
}

// decodeScratch is the reusable working space of one decode: the bottom-up
// node stack of the piece being decoded, the flat buffer holding every
// finished piece, and the per-piece segment table.
type decodeScratch struct {
	nodes []callgraph.NodeID
	flat  []callgraph.NodeID
	segs  []pieceSeg
}

// Compile lowers spec into a CompiledDecoder. Cost is O(V + E log E) for
// the CSR rows plus, only when the spec has anchors, O(V·E) for the
// territory bitsets — paid once per analysis, amortized over every decode.
func Compile(spec *Spec) *CompiledDecoder {
	g := spec.Graph
	n := g.NumNodes()
	c := &CompiledDecoder{
		spec:     spec,
		numNodes: int32(n),
		inStart:  make([]int32, n+1),
	}
	c.scratch.New = func() any { return &decodeScratch{} }

	// CSR in-edge rows, slot-for-slot the legacy sortedIn order.
	for v := 0; v < n; v++ {
		row := sortedInEdges(spec, callgraph.NodeID(v))
		c.inStart[v+1] = c.inStart[v] + int32(len(row))
		for _, ae := range row {
			c.inCaller = append(c.inCaller, int32(ae.e.Caller))
			c.inAV = append(c.inAV, ae.av)
		}
	}

	if len(spec.Anchors) > 0 {
		c.compileTerritories()
	}
	return c
}

// Precompile is the Decoder-side spelling of Compile, for callers holding a
// legacy decoder: both decode over the same spec.
func (d *Decoder) Precompile() *CompiledDecoder { return Compile(d.spec) }

// maxEagerTerritoryWords bounds the eager all-nodes territory table:
// 8M words = 64 MB. Suite-scale graphs sit orders of magnitude below it;
// the huge tier (10⁵–10⁶ nodes) switches to sparse piece-start rows. A var
// so the differential tests can force sparse mode on small graphs.
var maxEagerTerritoryWords = int64(8 << 20)

// compileTerritories precomputes territory bitsets: the same bounded DFS
// the legacy territoryOf memoizes lazily, stored as packed edge-index bits.
// Under the eager budget every node gets a row (a piece start can be any
// node — UCP pushes record arbitrary resume points); past it only the known
// piece starts are precomputed and other starts fall back to an on-the-fly
// DFS at decode time (see territory).
func (c *CompiledDecoder) compileTerritories() {
	n := int(c.numNodes)
	numEdges := len(c.inCaller)
	c.terrWords = int32((numEdges + 63) / 64)

	// Out-CSR of the non-push edges carrying their dense indexes, built by
	// counting sort: each CSR in-row slot is one edge caller→callee whose
	// dense index is the slot itself, so the out-adjacency is a regrouping
	// of the in-rows — no per-node slice headers at huge node counts.
	outStart := make([]int32, n+1)
	for slot := 0; slot < numEdges; slot++ {
		outStart[c.inCaller[slot]+1]++
	}
	for v := 0; v < n; v++ {
		outStart[v+1] += outStart[v]
	}
	outCallee := make([]int32, numEdges)
	outIdx := make([]int32, numEdges)
	fill := make([]int32, n)
	copy(fill, outStart[:n])
	for callee := 0; callee < n; callee++ {
		for slot := c.inStart[callee]; slot < c.inStart[callee+1]; slot++ {
			caller := c.inCaller[slot]
			outCallee[fill[caller]] = int32(callee)
			outIdx[fill[caller]] = slot
			fill[caller]++
		}
	}

	anchors := make([]bool, n)
	for a, on := range c.spec.Anchors {
		if on && a >= 0 && int(a) < n {
			anchors[a] = true
		}
	}
	c.outStart, c.outCallee, c.outIdx, c.anchorBits = outStart, outCallee, outIdx, anchors

	if int64(n)*int64(c.terrWords) <= maxEagerTerritoryWords {
		c.terr = make([]uint64, n*int(c.terrWords))
		seen := make([]int32, n)
		for i := range seen {
			seen[i] = -1
		}
		var work []int32
		for start := 0; start < n; start++ {
			bits := c.terr[start*int(c.terrWords) : (start+1)*int(c.terrWords)]
			work = c.fillTerritory(int32(start), bits, seen, int32(start), work)
		}
		// Eager mode serves every start from the table; the fallback CSR
		// is dead weight.
		c.outStart, c.outCallee, c.outIdx, c.anchorBits = nil, nil, nil, nil
		return
	}

	// Sparse mode: precompute the piece starts that occur in practice —
	// every anchor, the entry, and the context roots.
	starts := make([]int32, 0, len(c.spec.Anchors)+4)
	for a, on := range c.spec.Anchors {
		if on && a >= 0 && int(a) < n {
			starts = append(starts, int32(a))
		}
	}
	if e, ok := c.spec.Graph.Entry(); ok && int(e) < n {
		starts = append(starts, int32(e))
	}
	for _, r := range c.spec.Graph.ContextRoots() {
		if r >= 0 && int(r) < n {
			starts = append(starts, int32(r))
		}
	}
	c.terrRows = make(map[int32][]uint64, len(starts))
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	var work []int32
	for i, start := range starts {
		if _, dup := c.terrRows[start]; dup {
			continue
		}
		bits := make([]uint64, c.terrWords)
		work = c.fillTerritory(start, bits, seen, int32(i), work)
		c.terrRows[start] = bits
	}
}

// fillTerritory runs the bounded territory DFS from start, setting the
// dense edge-index bit of every edge inside the territory. seen is an
// epoch-stamped visited array (epoch must be unique per call for a shared
// array); work is the reusable stack, returned for reuse.
func (c *CompiledDecoder) fillTerritory(start int32, bits []uint64, seen []int32, epoch int32, work []int32) []int32 {
	seen[start] = epoch
	work = append(work[:0], start)
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if v != start && c.anchorBits[v] {
			continue // retreat at other anchors
		}
		for j := c.outStart[v]; j < c.outStart[v+1]; j++ {
			idx := c.outIdx[j]
			bits[idx>>6] |= 1 << (uint(idx) & 63)
			callee := c.outCallee[j]
			if seen[callee] != epoch {
				seen[callee] = epoch
				work = append(work, callee)
			}
		}
	}
	return work
}

// Observe resolves the compiled decoder's metric hooks from reg (nil
// disables), under the same names as the legacy decoder's: one
// dp_decode_memo_hits_total per table lookup (misses stay zero — the
// tables are precomputed) and the decoded-context size histogram.
func (c *CompiledDecoder) Observe(reg *obs.Registry) {
	c.memoHits = reg.Counter(obs.MetricDecodeMemoHits)
	c.memoMisses = reg.Counter(obs.MetricDecodeMemoMisses)
	c.frames = reg.Histogram(obs.MetricDecodeFrames, obs.DefaultDepthBuckets)
}

// Decode recovers the full calling context whose encoding is st and which
// ends at node end, like Decoder.Decode — byte-identical frames, identical
// error classification — but from the flat tables.
func (c *CompiledDecoder) Decode(st *State, end callgraph.NodeID) ([]Frame, error) {
	return c.DecodeInto(nil, st, end)
}

// DecodeInto is Decode writing into dst's storage (dst is truncated first;
// pass the previous result to reuse its capacity). With a warmed buffer the
// steady-state batch-decode loop performs zero allocations per context.
func (c *CompiledDecoder) DecodeInto(dst []Frame, st *State, end callgraph.NodeID) ([]Frame, error) {
	if !c.valid(end) || !c.valid(st.Start) {
		return nil, fmt.Errorf("%w: piece boundary node out of range", ErrCorruptEncoding)
	}
	sc := c.scratch.Get().(*decodeScratch)
	defer c.scratch.Put(sc)
	sc.flat = sc.flat[:0]
	sc.segs = sc.segs[:0]

	// Decode pieces in the legacy order — live first, then the stack from
	// the innermost suspended piece outward — so corrupt inputs fail on
	// the same piece with the same error the legacy decoder reports.
	seg, err := c.decodePiece(sc, st.ID, end, st.Start)
	if err != nil {
		return nil, err
	}
	sc.segs = append(sc.segs, seg)
	innerStart := st.Start
	for i := len(st.Stack) - 1; i >= 0; i-- {
		el := &st.Stack[i]
		seg, err := c.joinPiece(sc, el, innerStart)
		if err != nil {
			return nil, fmt.Errorf("piece %d (%s): %w", i, el.Kind, err)
		}
		sc.segs = append(sc.segs, seg)
		innerStart = el.OuterStart
	}
	out := c.assemble(dst, sc, st.Stack, true)
	c.frames.Observe(uint64(len(out)))
	return out, nil
}

// DecodeBestEffort mirrors Decoder.DecodeBestEffort on the flat tables: the
// longest decodable suffix behind a Gap frame, never an error. It is the
// cold salvage path, so it allocates its result freshly.
func (c *CompiledDecoder) DecodeBestEffort(st *State, end callgraph.NodeID) ([]Frame, bool) {
	if !c.valid(end) {
		return []Frame{{Gap: true}}, false
	}
	if !c.valid(st.Start) {
		return []Frame{{Gap: true}, {Node: end}}, false
	}
	sc := c.scratch.Get().(*decodeScratch)
	defer c.scratch.Put(sc)
	sc.flat = sc.flat[:0]
	sc.segs = sc.segs[:0]

	seg, err := c.decodePiece(sc, st.ID, end, st.Start)
	if err != nil {
		return []Frame{{Gap: true}, {Node: end}}, false
	}
	sc.segs = append(sc.segs, seg)
	innerStart := st.Start
	complete := true
	joined := st.Stack
	for i := len(st.Stack) - 1; i >= 0; i-- {
		el := &st.Stack[i]
		seg, err := c.joinPiece(sc, el, innerStart)
		if err != nil {
			complete = false
			joined = st.Stack[i+1:]
			break
		}
		sc.segs = append(sc.segs, seg)
		innerStart = el.OuterStart
	}
	var out []Frame
	if !complete {
		out = append(out, Frame{Gap: true})
	}
	return c.assemble(out, sc, joined, false), complete
}

// joinPiece validates and decodes one suspended piece, checking the same
// invariants joinOuter checks in the same order. innerStart is the start
// node of the piece immediately inside el (whose first decoded frame the
// anchor-kind check compares against).
func (c *CompiledDecoder) joinPiece(sc *decodeScratch, el *Element, innerStart callgraph.NodeID) (pieceSeg, error) {
	if !c.valid(el.OuterEnd) || !c.valid(el.OuterStart) {
		return pieceSeg{}, fmt.Errorf("%w: piece boundary node out of range", ErrCorruptEncoding)
	}
	seg, err := c.decodePiece(sc, el.DecodeID, el.OuterEnd, el.OuterStart)
	if err != nil {
		return pieceSeg{}, err
	}
	switch el.Kind {
	case PieceAnchor:
		// The outer piece ends at the anchor, which must also be the
		// first frame of the inner piece (assemble drops the duplicate).
		if innerStart != el.OuterEnd {
			return pieceSeg{}, fmt.Errorf("%w: anchor piece does not start at %s",
				ErrCorruptEncoding, c.spec.Graph.Name(el.OuterEnd))
		}
	case PieceRecursion, PiecePruned, PieceUCP:
	default:
		return pieceSeg{}, fmt.Errorf("%w: unexpected piece kind %v on stack", ErrCorruptEncoding, el.Kind)
	}
	return seg, nil
}

// assemble concatenates the decoded segments outermost-first into dst.
// stack holds the elements whose pieces were decoded (joined suffix of the
// state's stack); sc.segs is [live, innermost suspended, ..., outermost].
// The transition after element i's piece follows el.Kind: an anchor's
// duplicated boundary frame is dropped, a UCP inserts a Gap frame.
func (c *CompiledDecoder) assemble(dst []Frame, sc *decodeScratch, stack []Element, reuse bool) []Frame {
	if reuse {
		dst = dst[:0]
	}
	k := len(stack)
	skip := false
	for j := k; j >= 0; j-- {
		seg := sc.segs[j]
		nodes := sc.flat[seg.off : seg.off+seg.n]
		if skip {
			nodes = nodes[1:]
			skip = false
		}
		for _, nd := range nodes {
			dst = append(dst, Frame{Node: nd})
		}
		if j >= 1 {
			switch stack[k-j].Kind {
			case PieceAnchor:
				skip = true
			case PieceUCP:
				dst = append(dst, Frame{Gap: true})
			}
		}
	}
	return dst
}

// decodePiece walks one piece bottom-up through the CSR rows, then writes
// it into the scratch arena in entry-to-end order.
func (c *CompiledDecoder) decodePiece(sc *decodeScratch, id uint64, end, start callgraph.NodeID) (pieceSeg, error) {
	terr := c.territory(start)
	sc.nodes = append(sc.nodes[:0], end)
	n := end
	maxSteps := int(c.numNodes) + 1
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return pieceSeg{}, fmt.Errorf("%w: decode did not terminate after %d steps", ErrCorruptEncoding, steps)
		}
		if n == start {
			if id != 0 {
				return pieceSeg{}, fmt.Errorf("%w: reached piece start %s with residual id %d",
					ErrResidualID, c.spec.Graph.Name(start), id)
			}
			break
		}
		slot, ok := c.pickEdge(n, id, terr)
		if !ok {
			return pieceSeg{}, fmt.Errorf("%w: no in-edge of %s matches id %d (piece start %s)",
				ErrNoMatchingEdge, c.spec.Graph.Name(n), id, c.spec.Graph.Name(start))
		}
		id -= c.inAV[slot]
		n = callgraph.NodeID(c.inCaller[slot])
		sc.nodes = append(sc.nodes, n)
	}
	seg := pieceSeg{off: int32(len(sc.flat)), n: int32(len(sc.nodes))}
	for i := len(sc.nodes) - 1; i >= 0; i-- {
		sc.flat = append(sc.flat, sc.nodes[i])
	}
	return seg, nil
}

// pickEdge returns the CSR slot of n's in-edge, within the territory, with
// the largest AV not exceeding id. The row descends by AV, so the candidate
// region starts at the first slot with AV ≤ id — found by binary search on
// long rows (an interval search over the AV table) — and the territory
// filter scans forward from there, exactly the legacy selection order.
func (c *CompiledDecoder) pickEdge(n callgraph.NodeID, id uint64, terr []uint64) (int32, bool) {
	c.memoHits.Inc()
	lo, hi := c.inStart[n], c.inStart[n+1]
	if hi-lo > 8 {
		row := c.inAV[lo:hi]
		lo += int32(sort.Search(len(row), func(k int) bool { return row[k] <= id }))
	}
	for s := lo; s < hi; s++ {
		if c.inAV[s] > id {
			continue // short rows skip the search; AVs descend
		}
		if terr != nil && terr[s>>6]&(1<<(uint(s)&63)) == 0 {
			continue
		}
		return s, true
	}
	return 0, false
}

// territory returns start's territory bitset row, or nil when the spec has
// no anchors (no restriction — the legacy contract). In sparse mode a start
// outside the precomputed piece-start set is served by a fresh bounded DFS:
// correct for any node, allocating, and counted as a memo miss.
func (c *CompiledDecoder) territory(start callgraph.NodeID) []uint64 {
	if c.terr != nil {
		c.memoHits.Inc()
		w := int32(start) * c.terrWords
		return c.terr[w : w+c.terrWords]
	}
	if c.terrRows == nil {
		return nil
	}
	if row, ok := c.terrRows[int32(start)]; ok {
		c.memoHits.Inc()
		return row
	}
	c.memoMisses.Inc()
	bits := make([]uint64, c.terrWords)
	seen := make([]int32, c.numNodes)
	for i := range seen {
		seen[i] = -1
	}
	c.fillTerritory(int32(start), bits, seen, 0, nil)
	return bits
}

// Spec returns the spec the decoder was compiled from.
func (c *CompiledDecoder) Spec() *Spec { return c.spec }

// valid reports whether n names a node of the spec's graph.
func (c *CompiledDecoder) valid(n callgraph.NodeID) bool {
	return n >= 0 && int32(n) < c.numNodes
}

// DecodeNames is Decode rendering node names, with gaps shown as "...".
func (c *CompiledDecoder) DecodeNames(st *State, end callgraph.NodeID) ([]string, error) {
	frames, err := c.Decode(st, end)
	if err != nil {
		return nil, err
	}
	return c.Names(frames), nil
}

// Names renders decoded frames as node names, with gaps shown as "...".
func (c *CompiledDecoder) Names(frames []Frame) []string {
	out := make([]string, len(frames))
	for i, f := range frames {
		if f.Gap {
			out[i] = "..."
		} else {
			out[i] = c.spec.Graph.Name(f.Node)
		}
	}
	return out
}
