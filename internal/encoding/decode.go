package encoding

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"

	"deltapath/internal/callgraph"
	"deltapath/internal/obs"
)

// Sentinel decode errors. They classify *corruption* — an encoding that no
// execution of the analysed program can produce (a flipped bit, a dropped
// probe event, a record decoded against the wrong analysis) — as opposed to
// API misuse (decoding a context captured outside the analysed program),
// which keeps returning plain errors. Callers match with errors.Is; the
// recovery path (instrument.Encoder.VerifyAndResync) treats any of the
// three as a trigger for a stack-walk resync.
var (
	// ErrCorruptEncoding marks structural corruption: out-of-range node
	// ids, an impossible piece kind, an anchor piece that does not start
	// at its anchor, or a decode that fails to terminate.
	ErrCorruptEncoding = errors.New("corrupt encoding")
	// ErrNoMatchingEdge marks an encoding ID that no in-edge within the
	// piece's territory can account for.
	ErrNoMatchingEdge = errors.New("no matching in-edge")
	// ErrResidualID marks an encoding ID with a nonzero remainder at the
	// piece start: the additions do not sum to a valid path.
	ErrResidualID = errors.New("residual id at piece start")
)

// Frame is one entry of a decoded calling context. A Gap frame stands for
// one or more frames of unanalysed code (dynamically loaded classes, or
// library code excluded under selective encoding) whose identity the
// encoding intentionally does not track; the decoded context is exact on
// both sides of the gap (Section 4.1: benign-vs-hazardous UCPs).
type Frame struct {
	Node callgraph.NodeID
	Gap  bool
}

// Decoder recovers calling contexts from runtime encoding states. It is
// deterministic and instant (no search), which is the paper's headline
// advantage over Breadcrumbs-style probabilistic decoding.
//
// A Decoder is safe for concurrent use: the lazily built per-node and
// per-territory caches are guarded internally, so one decoder can serve
// the decode requests of many goroutines (the log-processing deployment
// shape).
type Decoder struct {
	spec *Spec

	mu sync.RWMutex

	// inEdges[n] caches the non-push in-edges of n with their addition
	// values, sorted by descending AV (ties broken by insertion order,
	// which never matters within one territory — ranges are disjoint).
	inEdges map[callgraph.NodeID][]avEdge

	// territory caches, per piece-start node, the set of edges a piece
	// starting there can traverse: the bounded DFS of Section 3.2 that
	// retreats at anchor nodes.
	territory map[callgraph.NodeID]map[callgraph.Edge]bool

	// Observability hooks (nil = no-op): cache effectiveness of the two
	// memo layers above, and the size distribution of decoded contexts.
	memoHits   *obs.Counter
	memoMisses *obs.Counter
	frames     *obs.Histogram
}

type avEdge struct {
	e  callgraph.Edge
	av uint64
}

// NewDecoder builds a decoder for the spec.
func NewDecoder(spec *Spec) *Decoder {
	return &Decoder{
		spec:      spec,
		inEdges:   make(map[callgraph.NodeID][]avEdge),
		territory: make(map[callgraph.NodeID]map[callgraph.Edge]bool),
	}
}

// Observe resolves the decoder's metric hooks from reg (nil disables):
// memo hits/misses of the in-edge and territory caches, and a histogram
// of decoded-context sizes.
func (d *Decoder) Observe(reg *obs.Registry) {
	d.memoHits = reg.Counter(obs.MetricDecodeMemoHits)
	d.memoMisses = reg.Counter(obs.MetricDecodeMemoMisses)
	d.frames = reg.Histogram(obs.MetricDecodeFrames, obs.DefaultDepthBuckets)
}

// Decode recovers the full calling context whose encoding is st and which
// ends at node end. The result is ordered from the program entry (index 0)
// to end.
func (d *Decoder) Decode(st *State, end callgraph.NodeID) ([]Frame, error) {
	if err := d.validLive(st, end); err != nil {
		return nil, err
	}
	frames, err := d.decodePiece(st.ID, end, st.Start)
	if err != nil {
		return nil, err
	}
	for i := len(st.Stack) - 1; i >= 0; i-- {
		frames, err = d.joinOuter(frames, &st.Stack[i])
		if err != nil {
			return nil, fmt.Errorf("piece %d (%s): %w", i, st.Stack[i].Kind, err)
		}
	}
	d.frames.Observe(uint64(len(frames)))
	return frames, nil
}

// DecodeBestEffort recovers as much of the context as the state still
// encodes: the longest decodable suffix, preceded by a Gap frame when the
// outer pieces are lost. It never fails — an undecodable live piece
// degrades to just the end frame behind a gap — and reports whether the
// full context was recovered. This is the degraded-output mode a log
// pipeline falls back to when a record is corrupt: one bad piece costs the
// outer frames, not the whole record.
func (d *Decoder) DecodeBestEffort(st *State, end callgraph.NodeID) ([]Frame, bool) {
	if !d.validNode(end) {
		return []Frame{{Gap: true}}, false
	}
	if d.validLive(st, end) != nil {
		return []Frame{{Gap: true}, {Node: end}}, false
	}
	frames, err := d.decodePiece(st.ID, end, st.Start)
	if err != nil {
		return []Frame{{Gap: true}, {Node: end}}, false
	}
	for i := len(st.Stack) - 1; i >= 0; i-- {
		joined, err := d.joinOuter(frames, &st.Stack[i])
		if err != nil {
			return append([]Frame{{Gap: true}}, frames...), false
		}
		frames = joined
	}
	return frames, true
}

// joinOuter decodes one suspended piece and prepends it to the frames of
// the pieces inside it, according to its kind.
func (d *Decoder) joinOuter(inner []Frame, el *Element) ([]Frame, error) {
	if !d.validNode(el.OuterEnd) || !d.validNode(el.OuterStart) {
		return nil, fmt.Errorf("%w: piece boundary node out of range", ErrCorruptEncoding)
	}
	outer, err := d.decodePiece(el.DecodeID, el.OuterEnd, el.OuterStart)
	if err != nil {
		return nil, err
	}
	switch el.Kind {
	case PieceAnchor:
		// The outer piece ends at the anchor, which is also the
		// first frame of the inner piece: drop the duplicate.
		if len(inner) == 0 || inner[0].Node != el.OuterEnd {
			return nil, fmt.Errorf("%w: anchor piece does not start at %s",
				ErrCorruptEncoding, d.spec.Graph.Name(el.OuterEnd))
		}
		return append(outer, inner[1:]...), nil
	case PieceRecursion, PiecePruned:
		// The recorded call site connects caller (end of outer)
		// to the inner piece's start.
		return append(outer, inner...), nil
	case PieceUCP:
		joined := append(outer, Frame{Gap: true})
		return append(joined, inner...), nil
	default:
		return nil, fmt.Errorf("%w: unexpected piece kind %v on stack", ErrCorruptEncoding, el.Kind)
	}
}

// validNode reports whether n names a node of the spec's graph.
func (d *Decoder) validNode(n callgraph.NodeID) bool {
	return n >= 0 && int(n) < d.spec.Graph.NumNodes()
}

// validLive checks the live piece's boundary nodes, so corrupt records
// (arbitrary bytes through UnmarshalContext) fail with a typed error
// instead of indexing the graph out of range.
func (d *Decoder) validLive(st *State, end callgraph.NodeID) error {
	if !d.validNode(end) || !d.validNode(st.Start) {
		return fmt.Errorf("%w: piece boundary node out of range", ErrCorruptEncoding)
	}
	return nil
}

// DecodeNames is Decode rendering node names, with gaps shown as "...".
func (d *Decoder) DecodeNames(st *State, end callgraph.NodeID) ([]string, error) {
	frames, err := d.Decode(st, end)
	if err != nil {
		return nil, err
	}
	return d.Names(frames), nil
}

// Names renders decoded frames as node names, with gaps shown as "...".
func (d *Decoder) Names(frames []Frame) []string {
	out := make([]string, len(frames))
	for i, f := range frames {
		if f.Gap {
			out[i] = "..."
		} else {
			out[i] = d.spec.Graph.Name(f.Node)
		}
	}
	return out
}

// FormatContext joins decoded names with " > ".
func FormatContext(names []string) string { return strings.Join(names, " > ") }

// decodePiece recovers one piece: the acyclic path from start to end whose
// addition values sum to id. It walks bottom-up, at each node choosing the
// in-edge (within start's territory) with the greatest addition value not
// exceeding the remaining id — the decoding rule of Section 2, restricted
// to the piece's territory as Section 3.2 requires.
func (d *Decoder) decodePiece(id uint64, end, start callgraph.NodeID) ([]Frame, error) {
	terr := d.territoryOf(start)
	frames := []Frame{{Node: end}}
	n := end
	for steps := 0; ; steps++ {
		if steps > d.spec.Graph.NumNodes()+1 {
			return nil, fmt.Errorf("%w: decode did not terminate after %d steps", ErrCorruptEncoding, steps)
		}
		if n == start {
			if id != 0 {
				return nil, fmt.Errorf("%w: reached piece start %s with residual id %d",
					ErrResidualID, d.spec.Graph.Name(start), id)
			}
			break
		}
		best, ok := d.pickEdge(n, id, terr)
		if !ok {
			return nil, fmt.Errorf("%w: no in-edge of %s matches id %d (piece start %s)",
				ErrNoMatchingEdge, d.spec.Graph.Name(n), id, d.spec.Graph.Name(start))
		}
		id -= best.av
		n = best.e.Caller
		frames = append(frames, Frame{Node: n})
	}
	// Reverse into entry-to-end order.
	for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
		frames[i], frames[j] = frames[j], frames[i]
	}
	return frames, nil
}

// pickEdge returns the in-edge of n, within the territory, with the largest
// addition value that is at most id.
func (d *Decoder) pickEdge(n callgraph.NodeID, id uint64, terr map[callgraph.Edge]bool) (avEdge, bool) {
	for _, cand := range d.sortedIn(n) {
		if cand.av > id {
			continue // sorted descending: keep looking for a smaller AV
		}
		if terr != nil && !terr[cand.e] {
			continue
		}
		return cand, true
	}
	return avEdge{}, false
}

// sortedIn returns n's non-push in-edges sorted by descending AV. One memo
// hit or miss is counted per lookup — the same accounting the compiled
// decoder applies to its precomputed tables.
func (d *Decoder) sortedIn(n callgraph.NodeID) []avEdge {
	d.mu.RLock()
	cached, ok := d.inEdges[n]
	d.mu.RUnlock()
	if ok {
		d.memoHits.Inc()
		return cached
	}
	d.memoMisses.Inc()
	list := sortedInEdges(d.spec, n)
	d.mu.Lock()
	d.inEdges[n] = list
	d.mu.Unlock()
	return list
}

// sortedInEdges builds n's non-push in-edges sorted by descending AV, ties
// in reverse insertion order. Within one territory the order of ties never
// matters (AV ranges are disjoint), but on corrupt inputs the chosen edge
// depends on it, so the legacy cache and the compiled CSR rows both use
// this one builder and stay slot-for-slot identical.
func sortedInEdges(spec *Spec, n callgraph.NodeID) []avEdge {
	var list []avEdge
	for _, e := range spec.Graph.In(n) {
		if _, pushed := spec.Push[e]; pushed {
			continue
		}
		list = append(list, avEdge{e: e, av: spec.AV(e)})
	}
	slices.Reverse(list)
	slices.SortStableFunc(list, func(a, b avEdge) int { return cmp.Compare(b.av, a.av) })
	return list
}

// territoryOf returns the set of edges a piece starting at start may
// traverse: every non-push edge reachable from start without leaving
// through another anchor node. A nil result means "no restriction", used
// when the spec has no anchors at all (then every edge qualifies and the
// filter would be pure overhead).
func (d *Decoder) territoryOf(start callgraph.NodeID) map[callgraph.Edge]bool {
	if len(d.spec.Anchors) == 0 {
		return nil
	}
	d.mu.RLock()
	t, ok := d.territory[start]
	d.mu.RUnlock()
	if ok {
		d.memoHits.Inc()
		return t
	}
	d.memoMisses.Inc()
	t = make(map[callgraph.Edge]bool)
	seen := map[callgraph.NodeID]bool{start: true}
	work := []callgraph.NodeID{start}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if v != start && d.spec.Anchors[v] {
			continue // retreat at other anchors
		}
		for _, e := range d.spec.Graph.Out(v) {
			if _, pushed := d.spec.Push[e]; pushed {
				continue
			}
			t[e] = true
			if !seen[e.Callee] {
				seen[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	d.mu.Lock()
	d.territory[start] = t
	d.mu.Unlock()
	return t
}
