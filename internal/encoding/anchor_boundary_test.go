package encoding_test

// Anchor-selection boundary tests: synthetic graphs whose path counts sit
// exactly at, one below, and one above the encoding-space capacity, pinning
// Algorithm 2's overflow check (calculateIncrement: w > maxID-a). The
// external test package exercises core and encoding exactly as callers do.

import (
	"fmt"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/core"
	"deltapath/internal/encoding"
)

// ladder builds a DAG of k rungs with two parallel edges (distinct labels)
// per rung: 2^k distinct entry-to-end paths, the densest path growth per
// node. Capacity boundary: the graph encodes without anchors iff
// maxID >= 2^k.
func ladder(k int) *callgraph.Graph {
	g := callgraph.New()
	prev := g.AddNode("n0", false)
	g.SetEntry(prev)
	for i := 1; i <= k; i++ {
		n := g.AddNode(fmt.Sprintf("n%d", i), false)
		g.AddEdge(prev, 0, n)
		g.AddEdge(prev, 1, n)
		prev = n
	}
	return g
}

// fan builds entry -> mid_i -> sink for m mids: m paths through one shared
// sink, the shape where one hot node aggregates all pressure. Capacity
// boundary: anchors appear iff maxID < m.
func fan(m int) *callgraph.Graph {
	g := callgraph.New()
	entry := g.AddNode("entry", false)
	g.SetEntry(entry)
	sink := g.AddNode("sink", false)
	for i := 0; i < m; i++ {
		mid := g.AddNode(fmt.Sprintf("mid%d", i), false)
		g.AddEdge(entry, int32(i), mid)
		g.AddEdge(mid, 0, sink)
	}
	return g
}

func TestAnchorBoundary(t *testing.T) {
	const k = 4 // ladder: 2^4 = 16 paths
	const m = 8 // fan: 8 paths
	tests := []struct {
		name        string
		graph       *callgraph.Graph
		maxID       uint64
		wantAnchors bool
	}{
		{"ladder/at-capacity", ladder(k), 16, false},
		{"ladder/one-below", ladder(k), 15, true},
		{"ladder/one-above", ladder(k), 17, false},
		{"fan/at-capacity", fan(m), 8, false},
		{"fan/one-below", fan(m), 7, true},
		{"fan/one-above", fan(m), 9, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := core.Encode(tt.graph, core.Options{MaxID: tt.maxID})
			if err != nil {
				t.Fatal(err)
			}
			if got := len(res.OverflowAnchors) > 0; got != tt.wantAnchors {
				t.Fatalf("anchors = %v (%d), want anchors %v at maxID=%d",
					res.OverflowAnchors, len(res.OverflowAnchors), tt.wantAnchors, tt.maxID)
			}
			// The encoding space must respect the budget whether or not
			// anchors were needed.
			if res.MaxID > tt.maxID {
				t.Fatalf("res.MaxID = %d exceeds budget %d", res.MaxID, tt.maxID)
			}
			verifyAllPaths(t, tt.graph, res.Spec, tt.maxID)
		})
	}
}

// TestAnchorBoundaryExactCounts pins the deterministic anchor counts just
// below capacity: the fan needs one anchor at m-1 and two at m-2 (each
// anchor removes one unit of pressure at the shared sink).
func TestAnchorBoundaryExactCounts(t *testing.T) {
	for _, tt := range []struct {
		maxID uint64
		want  int
	}{{7, 1}, {6, 2}} {
		res, err := core.Encode(fan(8), core.Options{MaxID: tt.maxID})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.OverflowAnchors) != tt.want {
			t.Errorf("fan(8) maxID=%d: %d anchors, want %d", tt.maxID, len(res.OverflowAnchors), tt.want)
		}
	}
}

// verifyAllPaths enumerates every entry-to-leaf path, simulates the runtime
// encoding along it (Add per edge, PushAnchor on anchor entry), asserts the
// running ID never exceeds the budget — the no-addend-overflow property the
// anchors exist to guarantee — and decodes the final state back to the
// exact path.
func verifyAllPaths(t *testing.T, g *callgraph.Graph, spec *encoding.Spec, maxID uint64) {
	t.Helper()
	entry, ok := g.Entry()
	if !ok {
		t.Fatal("graph has no entry")
	}
	dec := encoding.NewDecoder(spec)
	seen := map[string]bool{}
	paths := 0

	var walk func(st *encoding.State, node callgraph.NodeID, path []callgraph.NodeID)
	walk = func(st *encoding.State, node callgraph.NodeID, path []callgraph.NodeID) {
		out := g.Out(node)
		if len(out) == 0 {
			paths++
			key := st.Key(node)
			if seen[key] {
				t.Fatalf("two paths share state key %q: encoding is ambiguous", key)
			}
			seen[key] = true
			frames, err := dec.Decode(st, node)
			if err != nil {
				t.Fatalf("decode at %s: %v", g.Name(node), err)
			}
			if len(frames) != len(path) {
				t.Fatalf("decoded %d frames, path has %d nodes", len(frames), len(path))
			}
			for i, f := range frames {
				if f.Node != path[i] {
					t.Fatalf("frame %d: decoded %s, path has %s", i, g.Name(f.Node), g.Name(path[i]))
				}
			}
			return
		}
		for _, e := range out {
			next := st.Snapshot()
			next.Add(spec.AV(e))
			if next.ID > maxID {
				t.Fatalf("ID %d exceeds budget %d after edge %v", next.ID, maxID, e)
			}
			if spec.Anchors[e.Callee] {
				next.PushAnchor(e.Callee)
			}
			walk(next, e.Callee, append(path[:len(path):len(path)], e.Callee))
		}
	}
	walk(encoding.NewState(entry), entry, []callgraph.NodeID{entry})

	// Exhaustiveness: the walk must have visited every distinct path.
	want := countPaths(g, entry)
	if paths != want {
		t.Fatalf("verified %d paths, graph has %d", paths, want)
	}
}

func countPaths(g *callgraph.Graph, n callgraph.NodeID) int {
	out := g.Out(n)
	if len(out) == 0 {
		return 1
	}
	total := 0
	for _, e := range out {
		total += countPaths(g, e.Callee)
	}
	return total
}
