package encoding

import (
	"fmt"

	"deltapath/internal/callgraph"
)

// EncodePath simulates the runtime encoding of a call path: starting at the
// graph entry, it applies for each edge exactly the operations the
// instrumentation performs — push-and-reset for recursive/pruned edges, an
// addition for ordinary edges, and a save-and-reset upon entering an anchor
// node. It is the reference semantics the instrumented interpreter must
// agree with, and it lets analyses be tested without running a VM.
//
// The path is the sequence of call edges from the entry; an empty path is
// the context consisting of the entry alone.
func EncodePath(spec *Spec, path []callgraph.Edge) (*State, error) {
	entry, ok := spec.Graph.Entry()
	if !ok {
		return nil, fmt.Errorf("encoding: graph has no entry")
	}
	st := NewState(entry)
	cur := entry
	for _, e := range path {
		if e.Caller != cur {
			return nil, fmt.Errorf("encoding: path edge %v does not continue from %s",
				e, spec.Graph.Name(cur))
		}
		if kind, pushed := spec.Push[e]; pushed {
			// The pushed piece already starts at the callee, so a
			// subsequent anchor push at its entry would only add an
			// empty piece; the instrumentation skips it and so do we.
			st.PushCallEdge(kind, e.Site(), e.Callee)
		} else {
			st.Add(spec.AV(e))
			if spec.Anchors[e.Callee] {
				st.PushAnchor(e.Callee)
			}
		}
		cur = e.Callee
	}
	return st, nil
}

// EnumeratePaths yields every call path from the entry in which each
// recursive edge appears at most maxRec times consecutively-in-total, up to
// maxLen edges. It calls fn with each path (the slice is reused; copy it to
// retain). Used by property tests and the exhaustive-uniqueness checks.
func EnumeratePaths(g *callgraph.Graph, maxRec, maxLen int, fn func(path []callgraph.Edge)) {
	entry, ok := g.Entry()
	if !ok {
		return
	}
	rec := g.RecursiveEdges()
	var path []callgraph.Edge
	recUse := make(map[callgraph.Edge]int)
	var visit func(n callgraph.NodeID)
	visit = func(n callgraph.NodeID) {
		fn(path)
		if len(path) >= maxLen {
			return
		}
		for _, e := range g.Out(n) {
			if rec[e] {
				if recUse[e] >= maxRec {
					continue
				}
				recUse[e]++
				path = append(path, e)
				visit(e.Callee)
				path = path[:len(path)-1]
				recUse[e]--
			} else {
				path = append(path, e)
				visit(e.Callee)
				path = path[:len(path)-1]
			}
		}
	}
	visit(entry)
}

// PathNodes renders a path as the node sequence it traverses, starting at
// the graph entry.
func PathNodes(g *callgraph.Graph, path []callgraph.Edge) []callgraph.NodeID {
	entry, _ := g.Entry()
	nodes := []callgraph.NodeID{entry}
	for _, e := range path {
		nodes = append(nodes, e.Callee)
	}
	return nodes
}
