package encoding

import (
	"fmt"

	"deltapath/internal/callgraph"
)

// Validate machine-checks the invariant of Section 3.1 on a produced Spec:
// for every node, the encoding sub-ranges of its incoming edges must be
// pairwise disjoint *within each piece-start territory*, and piece starts
// must have their reserved width. widths gives, per (node, piece start),
// the exclusive encoding bound (the algorithm's ICC); entries absent from
// widths are treated as width 0 (no contexts flow there).
//
// This is an internal audit: the encoding algorithms are property-tested
// against it, and long-running deployments can re-run it after loading a
// persisted analysis to detect corruption.
func (s *Spec) Validate(widths map[callgraph.NodeID]map[callgraph.NodeID]uint64) error {
	g := s.Graph
	if g == nil {
		return fmt.Errorf("encoding: spec has no graph")
	}
	entry, ok := g.Entry()
	if !ok {
		return fmt.Errorf("encoding: graph has no entry")
	}
	rec := g.RecursiveEdges()

	// Identify piece starts: entry, runtime anchors, context roots.
	starts := map[callgraph.NodeID]bool{entry: true}
	for n := range s.Anchors {
		starts[n] = true
	}
	for _, n := range g.ContextRoots() {
		starts[n] = true
	}

	// Recompute territories exactly as the decoder does and check range
	// disjointness per (node, territory start).
	for start := range starts {
		terr := territory(s, start)
		type rng struct {
			lo, hi uint64
			e      callgraph.Edge
		}
		byNode := make(map[callgraph.NodeID][]rng)
		for e := range terr {
			if _, pushed := s.Push[e]; pushed {
				continue
			}
			w := widths[e.Caller][start]
			if s.Anchors[e.Caller] || e.Caller == start {
				// A piece-start caller owns a reserved width of 1
				// relative to itself.
				if e.Caller == start {
					w = widths[e.Caller][e.Caller]
					if w == 0 {
						w = 1
					}
				}
			}
			if w == 0 {
				continue // no contexts flow along e from this start
			}
			av := s.AV(e)
			byNode[e.Callee] = append(byNode[e.Callee], rng{lo: av, hi: av + w, e: e})
		}
		for n, ranges := range byNode {
			for i := 0; i < len(ranges); i++ {
				for j := i + 1; j < len(ranges); j++ {
					a, b := ranges[i], ranges[j]
					if a.lo < b.hi && b.lo < a.hi {
						return fmt.Errorf(
							"encoding: node %s, territory of %s: ranges [%d,%d) via %v and [%d,%d) via %v overlap",
							g.Name(n), g.Name(start), a.lo, a.hi, a.e, b.lo, b.hi, b.e)
					}
				}
			}
		}
	}

	// Every recursive edge must be a push edge.
	for e := range rec {
		if _, pushed := s.Push[e]; !pushed {
			return fmt.Errorf("encoding: recursive edge %v carries no push", e)
		}
	}
	return nil
}

// territory recomputes the piece-start territory the decoder would use,
// without touching the decoder's caches.
func territory(s *Spec, start callgraph.NodeID) map[callgraph.Edge]bool {
	t := make(map[callgraph.Edge]bool)
	seen := map[callgraph.NodeID]bool{start: true}
	work := []callgraph.NodeID{start}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if v != start && s.Anchors[v] {
			continue
		}
		for _, e := range s.Graph.Out(v) {
			if _, pushed := s.Push[e]; pushed {
				continue
			}
			t[e] = true
			if !seen[e.Callee] {
				seen[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	return t
}
