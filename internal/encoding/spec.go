// Package encoding defines the artifacts shared by every calling-context
// encoding in this repository: the static Spec an encoding algorithm
// produces (addition values, anchors, push edges), the runtime State the
// instrumentation maintains (the encoding ID plus the piece stack of
// Section 3.2/4.1 of the paper), and the precise Decoder that recovers a
// calling context from a State.
//
// The runtime representation follows the paper exactly: a calling context is
// a stack of pieces. The bottom piece starts at the program entry; a new
// piece starts when
//
//   - an anchor node is invoked (Section 3.2) — the encoding ID is saved and
//     reset so each piece fits in one machine integer,
//   - a recursive call edge is taken (Section 2, following PCCE) — the call
//     site is saved so the cyclic step can be reconstructed, or
//   - a hazardous unexpected call path is detected (Section 4.1) — the saved
//     expectation is pushed and the decoded context shows a gap where the
//     dynamically loaded (unanalysed) frames ran.
package encoding

import (
	"fmt"
	"strings"

	"deltapath/internal/callgraph"
)

// Spec is the output of an encoding algorithm: everything the runtime needs
// to maintain encodings and everything the decoder needs to invert them.
type Spec struct {
	Graph *callgraph.Graph

	// SiteAV is the single addition value per call site (the DeltaPath
	// design: one value even for virtual sites). Sites absent from the
	// map have addition value 0.
	SiteAV map[callgraph.Site]uint64

	// EdgeAV holds per-edge addition values when PerEdge is true (the
	// PCCE design, which needs a dispatch switch at virtual sites).
	EdgeAV  map[callgraph.Edge]uint64
	PerEdge bool

	// Push marks edges that start a new piece at runtime instead of
	// adding: recursive edges always, plus PCCE-pruned edges.
	Push map[callgraph.Edge]PieceKind

	// Anchors marks nodes whose entry saves and resets the encoding:
	// overflow anchors chosen by Algorithm 2 and targets of recursive
	// edges (which must start pieces so that their reserved width of 1
	// keeps downstream ranges disjoint). The program entry is the start
	// of the bottom piece and is not listed here.
	Anchors map[callgraph.NodeID]bool
}

// AV returns the addition value of edge e under this spec.
func (s *Spec) AV(e callgraph.Edge) uint64 {
	if s.PerEdge {
		return s.EdgeAV[e]
	}
	return s.SiteAV[e.Site()]
}

// PieceKind says why a piece was started.
type PieceKind uint8

const (
	// PieceEntry is the bottom piece, starting at the program entry.
	PieceEntry PieceKind = iota
	// PieceAnchor starts at an anchor node invocation (Section 3.2).
	PieceAnchor
	// PieceRecursion starts at the target of a recursive call edge.
	PieceRecursion
	// PiecePruned starts at the target of a PCCE-pruned edge.
	PiecePruned
	// PieceUCP starts at the function that detected a hazardous
	// unexpected call path (Section 4.1).
	PieceUCP
)

func (k PieceKind) String() string {
	switch k {
	case PieceEntry:
		return "entry"
	case PieceAnchor:
		return "anchor"
	case PieceRecursion:
		return "recursion"
	case PiecePruned:
		return "pruned"
	case PieceUCP:
		return "ucp"
	}
	return fmt.Sprintf("PieceKind(%d)", uint8(k))
}

// Element is one suspended piece on the encoding stack.
type Element struct {
	Kind PieceKind

	// DecodeID is the encoding ID with which the suspended piece is
	// decoded; it represents the calling context ending at OuterEnd.
	DecodeID uint64
	// ResumeID is restored into State.ID when the inner piece ends.
	// It differs from DecodeID only for UCP pieces, where the call
	// site's addition value had already been applied when the hazard
	// was detected.
	ResumeID uint64

	// OuterEnd is the node at which the suspended piece ended: the
	// anchor itself for PieceAnchor, the caller of the recursive or
	// pruned call site, or the caller that saved the violated SID
	// expectation for PieceUCP.
	OuterEnd callgraph.NodeID
	// OuterStart is the start node of the suspended piece, restored
	// into State.Start on pop.
	OuterStart callgraph.NodeID

	// Site is the call site recorded for recursion/pruned/UCP pieces.
	Site    callgraph.Site
	HasSite bool

	// Gap is true when unanalysed (dynamically loaded or excluded)
	// frames ran between the suspended piece and the inner piece.
	Gap bool
}

// State is the per-thread runtime encoding state: the current ID, the start
// node of the current piece, and the stack of suspended pieces.
type State struct {
	ID    uint64
	Start callgraph.NodeID
	Stack []Element
}

// NewState returns a State positioned at the program entry.
func NewState(entry callgraph.NodeID) *State {
	return &State{Start: entry}
}

// Reset returns the state to the program entry with an empty stack.
func (s *State) Reset(entry callgraph.NodeID) {
	s.ID = 0
	s.Start = entry
	s.Stack = s.Stack[:0]
}

// Add applies a call site's addition value ("ID += c").
func (s *State) Add(av uint64) { s.ID += av }

// Sub reverses a call site's addition value ("ID -= c").
func (s *State) Sub(av uint64) { s.ID -= av }

// PushAnchor suspends the current piece upon entry to anchor node n and
// starts a fresh piece at n.
func (s *State) PushAnchor(n callgraph.NodeID) {
	s.Stack = append(s.Stack, Element{
		Kind:       PieceAnchor,
		DecodeID:   s.ID,
		ResumeID:   s.ID,
		OuterEnd:   n,
		OuterStart: s.Start,
	})
	s.ID = 0
	s.Start = n
}

// PushCallEdge suspends the current piece because the call at site is about
// to take a recursive or pruned edge to callee. kind must be PieceRecursion
// or PiecePruned.
func (s *State) PushCallEdge(kind PieceKind, site callgraph.Site, callee callgraph.NodeID) {
	s.Stack = append(s.Stack, Element{
		Kind:       kind,
		DecodeID:   s.ID,
		ResumeID:   s.ID,
		OuterEnd:   site.Caller,
		OuterStart: s.Start,
		Site:       site,
		HasSite:    true,
	})
	s.ID = 0
	s.Start = callee
}

// PushUCP suspends the current piece because detector observed a hazardous
// unexpected call path: the SID expectation saved at site does not match
// detector's SID. outerEnd is the innermost live instrumented frame and
// outerID the encoding of the context ending there; together they make the
// suspended piece decodable. The decoded context shows a gap between
// outerEnd and detector where the unanalysed frames ran.
func (s *State) PushUCP(site callgraph.Site, outerID uint64, outerEnd, detector callgraph.NodeID) {
	s.Stack = append(s.Stack, Element{
		Kind:       PieceUCP,
		DecodeID:   outerID,
		ResumeID:   s.ID,
		OuterEnd:   outerEnd,
		OuterStart: s.Start,
		Site:       site,
		HasSite:    true,
		Gap:        true,
	})
	s.ID = 0
	s.Start = detector
}

// Pop ends the current piece and resumes the suspended one, returning the
// popped element. It panics if the stack is empty, which indicates
// unbalanced instrumentation — a bug, not an input condition.
func (s *State) Pop() Element {
	if len(s.Stack) == 0 {
		panic("encoding: pop of empty piece stack")
	}
	top := s.Stack[len(s.Stack)-1]
	s.Stack = s.Stack[:len(s.Stack)-1]
	s.ID = top.ResumeID
	s.Start = top.OuterStart
	return top
}

// TryPop is Pop without the panic: it reports whether a piece was actually
// popped. The runtime encoder uses it so that unbalanced instrumentation —
// which a healthy deployment never produces, but dropped probe events or an
// injected piece-stack truncation do — degrades into a detectable
// corruption (the caller flags the state suspect) instead of a crash.
func (s *State) TryPop() (Element, bool) {
	if len(s.Stack) == 0 {
		return Element{}, false
	}
	return s.Pop(), true
}

// Depth returns the number of stack elements plus one: the total number of
// pieces representing the current context (Table 2's stack depth metric).
func (s *State) Depth() int { return len(s.Stack) + 1 }

// UCPCount returns how many hazardous-UCP pieces are on the stack
// (Table 2's UCP metric).
func (s *State) UCPCount() int {
	n := 0
	for i := range s.Stack {
		if s.Stack[i].Kind == PieceUCP {
			n++
		}
	}
	return n
}

// Snapshot returns a deep copy of the state, e.g. to record an encoding at
// an emit point while execution continues.
func (s *State) Snapshot() *State {
	cp := &State{ID: s.ID, Start: s.Start}
	cp.Stack = append([]Element(nil), s.Stack...)
	return cp
}

// Key folds the state and the end node into a canonical string. Two
// contexts with equal keys have identical encodings; the decoder maps each
// key to exactly one context. Used for uniqueness accounting (Table 2).
//
// Every field the decoder consumes participates: the per-element piece
// boundaries (DecodeID, OuterEnd, OuterStart, the recorded call site) and
// the live piece (ID, its start, the end node). Omitting the starts would
// conflate, e.g., two recursion pieces entered through different dispatch
// targets of one virtual site.
func (s *State) Key(end callgraph.NodeID) string {
	var b strings.Builder
	for i := range s.Stack {
		e := &s.Stack[i]
		fmt.Fprintf(&b, "%d:%d:%d:%d:%d/", e.Kind, e.DecodeID, e.OuterEnd, e.OuterStart, e.Site.Label)
	}
	fmt.Fprintf(&b, "%d@%d^%d", s.ID, end, s.Start)
	return b.String()
}
