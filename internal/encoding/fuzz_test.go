package encoding

import "testing"

// FuzzUnmarshalContext asserts record parsing never panics on arbitrary
// bytes and that valid records round-trip.
func FuzzUnmarshalContext(f *testing.F) {
	st := NewState(3)
	st.ID = 41
	st.PushAnchor(7)
	st.Add(5)
	f.Add(MarshalContext(st, 9))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0x80, 0x80, 0x80})
	f.Add([]byte{1, 1, 1, 1, 250, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, end, err := UnmarshalContext(data)
		if err != nil {
			return
		}
		// Whatever parsed must re-serialize to an equivalent record.
		again, end2, err := UnmarshalContext(MarshalContext(got, end))
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if end2 != end || !statesEqual(got, again) {
			t.Fatalf("marshal/unmarshal not idempotent")
		}
	})
}
