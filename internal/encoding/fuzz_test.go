package encoding

import (
	"testing"

	"deltapath/internal/callgraph"
)

// FuzzUnmarshalContext asserts record parsing never panics on arbitrary
// bytes and that valid records round-trip.
func FuzzUnmarshalContext(f *testing.F) {
	st := NewState(3)
	st.ID = 41
	st.PushAnchor(7)
	st.Add(5)
	f.Add(MarshalContext(st, 9))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0x80, 0x80, 0x80})
	f.Add([]byte{1, 1, 1, 1, 250, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, end, err := UnmarshalContext(data)
		if err != nil {
			return
		}
		// Whatever parsed must re-serialize to an equivalent record.
		again, end2, err := UnmarshalContext(MarshalContext(got, end))
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if end2 != end || !statesEqual(got, again) {
			t.Fatalf("marshal/unmarshal not idempotent")
		}
	})
}

// FuzzDecode pipes arbitrary bytes through UnmarshalContext into the
// decoder and asserts the corruption contract: whatever parses must either
// decode or fail with a typed error — never panic, never loop — and
// DecodeBestEffort must always return frames, agreeing with Decode exactly
// when it reports the context complete.
func FuzzDecode(f *testing.F) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)

	good := NewState(ids["a"])
	good.ID = 1
	f.Add(MarshalContext(good, ids["d"]))
	stacked := NewState(ids["a"])
	stacked.PushAnchor(ids["b"])
	stacked.PushUCP(callgraph.Site{Caller: ids["b"]}, 0, ids["b"], ids["c"])
	f.Add(MarshalContext(stacked, ids["d"]))
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9, 9})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff, 0x0f, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, end, err := UnmarshalContext(data)
		if err != nil {
			return
		}
		frames, err := dec.Decode(st, end)
		beFrames, complete := dec.DecodeBestEffort(st.Snapshot(), end)
		if len(beFrames) == 0 {
			t.Fatal("DecodeBestEffort returned no frames")
		}
		if complete != (err == nil) {
			t.Fatalf("complete=%v but Decode err=%v", complete, err)
		}
		if complete {
			if len(frames) != len(beFrames) {
				t.Fatalf("complete best-effort decode has %d frames, Decode has %d", len(beFrames), len(frames))
			}
			for i := range frames {
				if frames[i] != beFrames[i] {
					t.Fatalf("frame %d: best-effort %+v != %+v", i, beFrames[i], frames[i])
				}
			}
		}
	})
}
