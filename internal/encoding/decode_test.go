package encoding

import (
	"strings"
	"testing"

	"deltapath/internal/callgraph"
)

// diamondSpec builds a small spec: a->b->d (AVs 0,0), a->c->d (AVs via
// PCCE-style numbering: ab=0 ac=0 bd=0 cd=1).
func diamondSpec() (*Spec, map[string]callgraph.NodeID) {
	g := callgraph.New()
	ids := map[string]callgraph.NodeID{}
	for _, n := range []string{"a", "b", "c", "d"} {
		ids[n] = g.AddNode(n, false)
	}
	g.SetEntry(ids["a"])
	g.AddEdge(ids["a"], 0, ids["b"])
	g.AddEdge(ids["a"], 1, ids["c"])
	g.AddEdge(ids["b"], 0, ids["d"])
	g.AddEdge(ids["c"], 0, ids["d"])
	spec := &Spec{
		Graph: g,
		SiteAV: map[callgraph.Site]uint64{
			{Caller: ids["b"], Label: 0}: 0,
			{Caller: ids["c"], Label: 0}: 1,
		},
	}
	return spec, ids
}

func TestDecodeBothDiamondArms(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	for id, want := range map[uint64]string{0: "a > b > d", 1: "a > c > d"} {
		st := NewState(ids["a"])
		st.ID = id
		names, err := dec.DecodeNames(st, ids["d"])
		if err != nil {
			t.Fatal(err)
		}
		if FormatContext(names) != want {
			t.Errorf("decode(%d) = %v, want %s", id, names, want)
		}
	}
}

func TestDecodeCorruptIDRejected(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	// ID 99 is outside every range: no in-edge matches after subtracting.
	st := NewState(ids["a"])
	st.ID = 99
	if _, err := dec.Decode(st, ids["d"]); err == nil {
		t.Fatal("corrupt ID decoded without error")
	}
}

func TestDecodeResidualAtStartRejected(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	// End at b with ID 1: the only in-edge of b has AV 0 from a, leaving
	// residual 1 at the piece start.
	st := NewState(ids["a"])
	st.ID = 1
	_, err := dec.Decode(st, ids["b"])
	if err == nil || !strings.Contains(err.Error(), "residual") {
		t.Fatalf("want residual error, got %v", err)
	}
}

func TestDecodeUnreachableEndRejected(t *testing.T) {
	spec, ids := diamondSpec()
	// A node with no in-edges that is not the start.
	orphan := spec.Graph.AddNode("orphan", false)
	dec := NewDecoder(spec)
	st := NewState(ids["a"])
	if _, err := dec.Decode(st, orphan); err == nil {
		t.Fatal("context ending at unreachable node decoded")
	}
}

func TestDecodeCorruptStackRejected(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	st := NewState(ids["a"])
	// An anchor element whose inner piece does not start at the anchor.
	st.Stack = append(st.Stack, Element{
		Kind:       PieceAnchor,
		OuterEnd:   ids["c"],
		OuterStart: ids["a"],
	})
	st.Start = ids["b"] // inconsistent: should be the anchor c
	if _, err := dec.Decode(st, ids["d"]); err == nil {
		t.Fatal("inconsistent anchor piece decoded")
	}
}

func TestDecodeUnknownPieceKindRejected(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	st := NewState(ids["a"])
	st.Stack = append(st.Stack, Element{Kind: PieceKind(42), OuterEnd: ids["a"], OuterStart: ids["a"]})
	st.Start = ids["a"]
	if _, err := dec.Decode(st, ids["a"]); err == nil {
		t.Fatal("unknown piece kind decoded")
	}
}

func TestDecoderCachesAreConsistent(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	// Repeated decodes exercise the in-edge and territory caches.
	for i := 0; i < 100; i++ {
		st := NewState(ids["a"])
		st.ID = uint64(i % 2)
		if _, err := dec.Decode(st, ids["d"]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDecoderConcurrent(t *testing.T) {
	spec, ids := diamondSpec()
	spec.Anchors = map[callgraph.NodeID]bool{} // exercise territory path too
	spec.Anchors[ids["b"]] = true
	dec := NewDecoder(spec)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				st := NewState(ids["a"])
				st.ID = 1
				if _, err := dec.Decode(st, ids["d"]); err != nil {
					done <- err
					return
				}
				st2 := NewState(ids["a"])
				st2.Add(0)
				st2.PushAnchor(ids["b"])
				if _, err := dec.Decode(st2, ids["b"]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
