package encoding

import (
	"errors"
	"testing"

	"deltapath/internal/callgraph"
)

// These tests pin the graceful-degradation contract of the decoder: every
// corruption class fails with its sentinel (matchable via errors.Is), and
// DecodeBestEffort turns each failure into the longest decodable suffix
// behind an explicit gap instead of an error.

func TestDecodeSentinelNoMatchingEdge(t *testing.T) {
	spec, ids := diamondSpec()
	// A context can never end at a node with no in-edges (other than the
	// piece start): there is no edge to account for reaching it.
	orphan := spec.Graph.AddNode("orphan", false)
	dec := NewDecoder(spec)
	st := NewState(ids["a"])
	_, err := dec.Decode(st, orphan)
	if !errors.Is(err, ErrNoMatchingEdge) {
		t.Fatalf("want ErrNoMatchingEdge, got %v", err)
	}
}

func TestDecodeSentinelResidualID(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	st := NewState(ids["a"])
	st.ID = 1
	_, err := dec.Decode(st, ids["b"])
	if !errors.Is(err, ErrResidualID) {
		t.Fatalf("want ErrResidualID, got %v", err)
	}
}

func TestDecodeSentinelCorruptBoundaries(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)

	// End node outside the graph.
	st := NewState(ids["a"])
	if _, err := dec.Decode(st, 999); !errors.Is(err, ErrCorruptEncoding) {
		t.Fatalf("out-of-range end: want ErrCorruptEncoding, got %v", err)
	}
	if _, err := dec.Decode(st, -1); !errors.Is(err, ErrCorruptEncoding) {
		t.Fatalf("negative end: want ErrCorruptEncoding, got %v", err)
	}

	// Stack element with an out-of-range piece boundary.
	st = NewState(ids["a"])
	st.Stack = append(st.Stack, Element{Kind: PieceAnchor, OuterEnd: 999, OuterStart: ids["a"]})
	st.Start = ids["b"]
	if _, err := dec.Decode(st, ids["b"]); !errors.Is(err, ErrCorruptEncoding) {
		t.Fatalf("corrupt stack boundary: want ErrCorruptEncoding, got %v", err)
	}

	// Anchor piece whose inner piece does not start at the anchor.
	st = NewState(ids["a"])
	st.Stack = append(st.Stack, Element{Kind: PieceAnchor, OuterEnd: ids["c"], OuterStart: ids["a"]})
	st.Start = ids["b"]
	if _, err := dec.Decode(st, ids["b"]); !errors.Is(err, ErrCorruptEncoding) {
		t.Fatalf("anchor mismatch: want ErrCorruptEncoding, got %v", err)
	}
}

func TestDecodeBestEffortCompleteMatchesDecode(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	st := NewState(ids["a"])
	st.ID = 1
	want, err := dec.Decode(st, ids["d"])
	if err != nil {
		t.Fatal(err)
	}
	got, complete := dec.DecodeBestEffort(st, ids["d"])
	if !complete {
		t.Fatal("intact context reported incomplete")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDecodeBestEffortCorruptLivePiece(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	st := NewState(ids["a"])
	st.ID = 99 // no path sums to 99
	frames, complete := dec.DecodeBestEffort(st, ids["d"])
	if complete {
		t.Fatal("corrupt live piece reported complete")
	}
	if len(frames) != 2 || !frames[0].Gap || frames[1].Node != ids["d"] {
		t.Fatalf("want [gap, d], got %+v", frames)
	}
}

func TestDecodeBestEffortCorruptOuterPieceKeepsSuffix(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	// The live piece (b -> d along the AV-0 edge) is fine; the suspended
	// outer piece carries a corrupt DecodeID no path can account for.
	st := NewState(ids["a"])
	st.ID = 99
	st.PushAnchor(ids["b"])
	frames, complete := dec.DecodeBestEffort(st, ids["d"])
	if complete {
		t.Fatal("corrupt outer piece reported complete")
	}
	if len(frames) != 3 || !frames[0].Gap || frames[1].Node != ids["b"] || frames[2].Node != ids["d"] {
		t.Fatalf("want [gap, b, d], got %+v", frames)
	}
}

func TestDecodeBestEffortOutOfRangeEnd(t *testing.T) {
	spec, ids := diamondSpec()
	dec := NewDecoder(spec)
	st := NewState(ids["a"])
	frames, complete := dec.DecodeBestEffort(st, callgraph.NodeID(999))
	if complete || len(frames) != 1 || !frames[0].Gap {
		t.Fatalf("want single gap frame, got %+v (complete=%v)", frames, complete)
	}
}
