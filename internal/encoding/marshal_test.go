package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltapath/internal/callgraph"
)

func randomState(rng *rand.Rand) (*State, callgraph.NodeID) {
	st := NewState(callgraph.NodeID(rng.Intn(1000)))
	st.ID = rng.Uint64() >> uint(rng.Intn(64))
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		el := Element{
			Kind:       PieceKind(rng.Intn(5)),
			DecodeID:   rng.Uint64() >> uint(rng.Intn(64)),
			ResumeID:   rng.Uint64() >> uint(rng.Intn(64)),
			OuterEnd:   callgraph.NodeID(rng.Intn(1000)),
			OuterStart: callgraph.NodeID(rng.Intn(1000)),
			HasSite:    rng.Intn(2) == 0,
			Gap:        rng.Intn(2) == 0,
		}
		if el.HasSite {
			el.Site = callgraph.Site{
				Caller: callgraph.NodeID(rng.Intn(1000)),
				Label:  int32(rng.Intn(500)),
			}
		}
		st.Stack = append(st.Stack, el)
	}
	return st, callgraph.NodeID(rng.Intn(1000))
}

func statesEqual(a, b *State) bool {
	if a.ID != b.ID || a.Start != b.Start || len(a.Stack) != len(b.Stack) {
		return false
	}
	for i := range a.Stack {
		x, y := a.Stack[i], b.Stack[i]
		if x.Kind != y.Kind || x.DecodeID != y.DecodeID || x.ResumeID != y.ResumeID ||
			x.OuterEnd != y.OuterEnd || x.OuterStart != y.OuterStart ||
			x.Gap != y.Gap || x.HasSite != y.HasSite {
			return false
		}
		if x.HasSite && x.Site != y.Site {
			return false
		}
	}
	return true
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, end := randomState(rng)
		data := MarshalContext(st, end)
		got, gotEnd, err := UnmarshalContext(data)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if gotEnd != end {
			return false
		}
		// Site of site-less elements is not preserved bit-for-bit (it is
		// zero on the wire), matching HasSite semantics.
		return statesEqual(st, got) || statesEqualModuloSitelessSites(st, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func statesEqualModuloSitelessSites(a, b *State) bool {
	ac := a.Snapshot()
	for i := range ac.Stack {
		if !ac.Stack[i].HasSite {
			ac.Stack[i].Site = callgraph.Site{}
		}
	}
	return statesEqual(ac, b)
}

func TestMarshalCompact(t *testing.T) {
	st := NewState(0)
	st.ID = 42
	data := MarshalContext(st, 7)
	if len(data) > 8 {
		t.Fatalf("stackless context costs %d bytes, want <= 8", len(data))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,                   // empty
		{99},                  // bad version
		{1},                   // truncated after version
		{1, 0x80},             // truncated varint
		{1, 1, 1, 1, 200},     // huge stack count, truncated
		{1, 1, 1, 1, 0, 9, 9}, // trailing bytes
	}
	for i, data := range cases {
		if _, _, err := UnmarshalContext(data); err == nil {
			t.Errorf("case %d: corrupt record accepted", i)
		}
	}
}

func TestMarshalDecodeIntegration(t *testing.T) {
	// Serialize a real state produced by a path walk and decode it after
	// the round trip.
	g := callgraph.New()
	a := g.AddNode("a", false)
	b := g.AddNode("b", false)
	c := g.AddNode("c", false)
	g.SetEntry(a)
	e1 := g.AddEdge(a, 0, b)
	e2 := g.AddEdge(b, 0, c)
	spec := &Spec{
		Graph: g,
		SiteAV: map[callgraph.Site]uint64{
			{Caller: a, Label: 0}: 0,
			{Caller: b, Label: 0}: 0,
		},
	}
	st, err := EncodePath(spec, []callgraph.Edge{e1, e2})
	if err != nil {
		t.Fatal(err)
	}
	data := MarshalContext(st, c)
	back, end, err := UnmarshalContext(data)
	if err != nil {
		t.Fatal(err)
	}
	names, err := NewDecoder(spec).DecodeNames(back, end)
	if err != nil {
		t.Fatal(err)
	}
	if FormatContext(names) != "a > b > c" {
		t.Fatalf("decoded %v", names)
	}
}
