//go:build !race

package encoding

const raceEnabled = false
