package encoding

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"deltapath/internal/callgraph"
)

// anchoredSpec is a fixture whose decode exercises every compiled table:
// per-site AVs, a recursion push edge, and an anchor whose territory must
// exclude edges behind it.
//
//	a ──▶ b ──▶ d        b is an anchor; d→d is a recursive push edge
//	a ──▶ c ──▶ d
func anchoredSpec() (*Spec, map[string]callgraph.NodeID) {
	g := callgraph.New()
	ids := map[string]callgraph.NodeID{}
	for _, n := range []string{"a", "b", "c", "d"} {
		ids[n] = g.AddNode(n, false)
	}
	g.SetEntry(ids["a"])
	g.AddEdge(ids["a"], 0, ids["b"])
	g.AddEdge(ids["a"], 1, ids["c"])
	g.AddEdge(ids["b"], 0, ids["d"])
	g.AddEdge(ids["c"], 0, ids["d"])
	rec := g.AddEdge(ids["d"], 0, ids["d"])
	spec := &Spec{
		Graph: g,
		SiteAV: map[callgraph.Site]uint64{
			{Caller: ids["a"], Label: 1}: 1,
			{Caller: ids["c"], Label: 0}: 0,
		},
		Push:    map[callgraph.Edge]PieceKind{rec: PieceRecursion},
		Anchors: map[callgraph.NodeID]bool{ids["b"]: true, ids["d"]: true},
	}
	return spec, ids
}

// framesEqual reports whether two decoded contexts are identical.
func framesEqual(a, b []Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameErrorClass reports whether two decode errors carry the same sentinel
// (or are both nil / both untyped).
func sameErrorClass(a, b error) bool {
	for _, sentinel := range []error{ErrCorruptEncoding, ErrNoMatchingEdge, ErrResidualID} {
		if errors.Is(a, sentinel) != errors.Is(b, sentinel) {
			return false
		}
	}
	return (a == nil) == (b == nil)
}

// assertDifferential holds the compiled decoder byte-identical to the legacy
// one on a single input: same frames, same error class and message, same
// best-effort salvage.
func assertDifferential(t *testing.T, legacy *Decoder, compiled *CompiledDecoder, st *State, end callgraph.NodeID) {
	t.Helper()
	want, wantErr := legacy.Decode(st.Snapshot(), end)
	got, gotErr := compiled.Decode(st.Snapshot(), end)
	if !sameErrorClass(wantErr, gotErr) {
		t.Fatalf("error class diverged: legacy %v, compiled %v", wantErr, gotErr)
	}
	if wantErr != nil && wantErr.Error() != gotErr.Error() {
		t.Fatalf("error message diverged:\nlegacy:   %v\ncompiled: %v", wantErr, gotErr)
	}
	if wantErr == nil && !framesEqual(want, got) {
		t.Fatalf("frames diverged:\nlegacy:   %+v\ncompiled: %+v", want, got)
	}
	wantBE, wantOK := legacy.DecodeBestEffort(st.Snapshot(), end)
	gotBE, gotOK := compiled.DecodeBestEffort(st.Snapshot(), end)
	if wantOK != gotOK || !framesEqual(wantBE, gotBE) {
		t.Fatalf("best-effort diverged:\nlegacy:   %+v (complete=%v)\ncompiled: %+v (complete=%v)",
			wantBE, wantOK, gotBE, gotOK)
	}
}

func TestCompiledMatchesLegacyOnFixtures(t *testing.T) {
	for name, mk := range map[string]func() (*Spec, map[string]callgraph.NodeID){
		"diamond":  diamondSpec,
		"anchored": anchoredSpec,
	} {
		t.Run(name, func(t *testing.T) {
			spec, ids := mk()
			legacy := NewDecoder(spec)
			compiled := Compile(spec)
			// Every id in a generous window, from every node, plus stacked
			// states covering each piece kind.
			for _, endName := range []string{"a", "b", "c", "d"} {
				end := ids[endName]
				for id := uint64(0); id < 8; id++ {
					st := NewState(ids["a"])
					st.ID = id
					assertDifferential(t, legacy, compiled, st, end)
				}
			}
			st := NewState(ids["a"])
			st.Add(1)
			st.PushAnchor(ids["b"])
			assertDifferential(t, legacy, compiled, st, ids["b"])
			st.PushCallEdge(PieceRecursion, callgraph.Site{Caller: ids["d"]}, ids["d"])
			assertDifferential(t, legacy, compiled, st, ids["d"])
			st.PushUCP(callgraph.Site{Caller: ids["d"]}, 0, ids["d"], ids["c"])
			assertDifferential(t, legacy, compiled, st, ids["d"])
			// Corrupt stacks: wrong anchor boundary, bad kind, bad nodes.
			bad := NewState(ids["a"])
			bad.PushAnchor(ids["c"])
			bad.Stack[0].Kind = PieceKind(99)
			assertDifferential(t, legacy, compiled, bad, ids["d"])
			bad2 := NewState(ids["a"])
			bad2.PushAnchor(ids["b"])
			bad2.Stack[0].OuterEnd = callgraph.NodeID(77)
			assertDifferential(t, legacy, compiled, bad2, ids["d"])
		})
	}
}

// TestCompiledTerritoryRestriction pins the anchor-territory semantics: a
// piece starting at the anchor b must not use c's in-edges even when the
// residual id would match, exactly as the legacy bounded DFS restricts it.
func TestCompiledTerritoryRestriction(t *testing.T) {
	spec, ids := anchoredSpec()
	legacy := NewDecoder(spec)
	compiled := Compile(spec)
	st := NewState(ids["b"])
	for id := uint64(0); id < 4; id++ {
		st.ID = id
		assertDifferential(t, legacy, compiled, st, ids["d"])
	}
}

// TestCompiledSparseTerritories forces the huge-graph territory mode (rows
// precomputed only for anchors/entry/roots, lazy DFS elsewhere) on the small
// fixtures and holds it differential against the legacy decoder — including
// UCP piece starts outside the precomputed set, which exercise the fallback.
func TestCompiledSparseTerritories(t *testing.T) {
	defer func(old int64) { maxEagerTerritoryWords = old }(maxEagerTerritoryWords)
	maxEagerTerritoryWords = 0

	spec, ids := anchoredSpec()
	legacy := NewDecoder(spec)
	compiled := Compile(spec)
	if compiled.terr != nil || compiled.terrRows == nil {
		t.Fatal("sparse mode did not engage")
	}
	for _, want := range []string{"a", "b", "d"} {
		if _, ok := compiled.terrRows[int32(ids[want])]; !ok {
			t.Errorf("piece start %q missing a precomputed row", want)
		}
	}
	if _, ok := compiled.terrRows[int32(ids["c"])]; ok {
		t.Error("non-piece-start c should not be precomputed")
	}
	for _, endName := range []string{"a", "b", "c", "d"} {
		end := ids[endName]
		for id := uint64(0); id < 8; id++ {
			st := NewState(ids["a"])
			st.ID = id
			assertDifferential(t, legacy, compiled, st, end)
		}
	}
	// Anchor piece start (precomputed row) and a UCP resume at c, which has
	// no precomputed row and must fall back to the on-the-fly DFS.
	st := NewState(ids["a"])
	st.Add(1)
	st.PushAnchor(ids["b"])
	assertDifferential(t, legacy, compiled, st, ids["b"])
	ucp := NewState(ids["a"])
	ucp.PushUCP(callgraph.Site{Caller: ids["a"], Label: 1}, 0, ids["a"], ids["c"])
	assertDifferential(t, legacy, compiled, ucp, ids["d"])
	if compiled.memoMisses != nil && compiled.memoMisses.Value() == 0 {
		t.Error("UCP start at c should have counted a sparse fallback miss")
	}

	// The fallback allocates private state only — shared use stays race-free.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Frame
			for round := 0; round < 50; round++ {
				var err error
				if buf, err = compiled.DecodeInto(buf, ucp, ids["d"]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCompiledDecodeIntoReuse proves the documented buffer contract: passing
// the previous result back in reuses its storage and yields identical
// frames.
func TestCompiledDecodeIntoReuse(t *testing.T) {
	spec, ids := diamondSpec()
	compiled := Compile(spec)
	var buf []Frame
	for id := uint64(0); id < 2; id++ {
		st := NewState(ids["a"])
		st.ID = id
		fresh, err := compiled.Decode(st, ids["d"])
		if err != nil {
			t.Fatal(err)
		}
		buf, err = compiled.DecodeInto(buf, st, ids["d"])
		if err != nil {
			t.Fatal(err)
		}
		if !framesEqual(fresh, buf) {
			t.Fatalf("id %d: DecodeInto %+v != Decode %+v", id, buf, fresh)
		}
	}
}

// TestCompiledDecodeSteadyStateAllocs asserts the headline property of the
// compiled path: a warmed batch-decode loop performs zero allocations per
// context.
func TestCompiledDecodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	spec, ids := anchoredSpec()
	compiled := Compile(spec)
	// a → b (AV 0), anchor piece at b, then b → d inside the new piece.
	st := NewState(ids["a"])
	st.PushAnchor(ids["b"])
	var buf []Frame
	var err error
	// Warm the scratch pool and the destination buffer.
	for i := 0; i < 8; i++ {
		if buf, err = compiled.DecodeInto(buf, st, ids["d"]); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf, err = compiled.DecodeInto(buf, st, ids["d"])
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("steady-state DecodeInto allocates %v times per op, want 0", allocs)
	}
}

// TestCompiledDecoderConcurrent shares one compiled decoder across many
// goroutines with per-goroutine destination buffers — the lock-free usage
// the read-only tables promise. Run under -race, any unsynchronized write
// would be reported.
func TestCompiledDecoderConcurrent(t *testing.T) {
	spec, ids := anchoredSpec()
	compiled := Compile(spec)
	legacy := NewDecoder(spec)
	type input struct {
		st  *State
		end callgraph.NodeID
	}
	var inputs []input
	for id := uint64(0); id < 4; id++ {
		st := NewState(ids["a"])
		st.ID = id
		inputs = append(inputs, input{st, ids["d"]})
	}
	anch := NewState(ids["a"])
	anch.Add(1)
	anch.PushAnchor(ids["b"])
	inputs = append(inputs, input{anch, ids["b"]})
	want := make([][]Frame, len(inputs))
	for i, in := range inputs {
		want[i], _ = legacy.Decode(in.st.Snapshot(), in.end)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Frame
			for round := 0; round < 200; round++ {
				for i, in := range inputs {
					got, err := compiled.DecodeInto(buf, in.st, in.end)
					buf = got
					if want[i] == nil {
						if err == nil {
							errs <- fmt.Errorf("input %d: expected error, got frames", i)
							return
						}
						continue
					}
					if err != nil {
						errs <- fmt.Errorf("input %d: %v", i, err)
						return
					}
					if !framesEqual(got, want[i]) {
						errs <- fmt.Errorf("input %d: %+v != %+v", i, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// FuzzCompiledDecode is the differential fuzzer of the compiled fast path:
// arbitrary bytes parse into a state (or not), and whatever parses must
// decode byte-identically — frames, error class, error message, best-effort
// salvage — under the legacy decoder and the compiled tables, on both an
// anchor-free and an anchored spec.
func FuzzCompiledDecode(f *testing.F) {
	plain, plainIDs := diamondSpec()
	anchored, anchIDs := anchoredSpec()
	legacyPlain, compiledPlain := NewDecoder(plain), Compile(plain)
	legacyAnch, compiledAnch := NewDecoder(anchored), Compile(anchored)

	good := NewState(plainIDs["a"])
	good.ID = 1
	f.Add(MarshalContext(good, plainIDs["d"]))
	stacked := NewState(anchIDs["a"])
	stacked.Add(1)
	stacked.PushAnchor(anchIDs["b"])
	stacked.PushUCP(callgraph.Site{Caller: anchIDs["b"]}, 0, anchIDs["b"], anchIDs["c"])
	f.Add(MarshalContext(stacked, anchIDs["d"]))
	rec := NewState(anchIDs["a"])
	rec.Add(1)
	rec.PushCallEdge(PieceRecursion, callgraph.Site{Caller: anchIDs["d"]}, anchIDs["d"])
	f.Add(MarshalContext(rec, anchIDs["d"]))
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9, 9})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff, 0x0f, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, end, err := UnmarshalContext(data)
		if err != nil {
			return
		}
		for _, pair := range []struct {
			legacy   *Decoder
			compiled *CompiledDecoder
		}{{legacyPlain, compiledPlain}, {legacyAnch, compiledAnch}} {
			want, wantErr := pair.legacy.Decode(st.Snapshot(), end)
			got, gotErr := pair.compiled.Decode(st.Snapshot(), end)
			if !sameErrorClass(wantErr, gotErr) {
				t.Fatalf("error class diverged: legacy %v, compiled %v", wantErr, gotErr)
			}
			if wantErr != nil && wantErr.Error() != gotErr.Error() {
				t.Fatalf("error message diverged:\nlegacy:   %v\ncompiled: %v", wantErr, gotErr)
			}
			if wantErr == nil && !framesEqual(want, got) {
				t.Fatalf("frames diverged:\nlegacy:   %+v\ncompiled: %+v", want, got)
			}
			wantBE, wantOK := pair.legacy.DecodeBestEffort(st.Snapshot(), end)
			gotBE, gotOK := pair.compiled.DecodeBestEffort(st.Snapshot(), end)
			if wantOK != gotOK || !framesEqual(wantBE, gotBE) {
				t.Fatalf("best-effort diverged:\nlegacy %+v (%v)\ncompiled %+v (%v)",
					wantBE, wantOK, gotBE, gotOK)
			}
		}
	})
}
