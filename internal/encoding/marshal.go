package encoding

import (
	"encoding/binary"
	"fmt"

	"deltapath/internal/callgraph"
)

// Binary serialization of captured encodings, for the event-logging use
// case the paper motivates: a log sink persists a few bytes per record
// instead of a stack trace, and decoding happens offline or on demand.
//
// Format (version 1): a leading version byte, then unsigned varints —
//
//	ID, Start, end, len(Stack),
//	then per element: kind|flags, DecodeID, ResumeID, OuterEnd,
//	OuterStart, Site.Caller, Site.Label.
//
// A typical no-stack context costs 5–12 bytes.

const marshalVersion = 1

const (
	flagHasSite = 1 << 3
	flagGap     = 1 << 4
)

// MarshalContext serializes the state together with the node at which it
// was captured.
func MarshalContext(s *State, end callgraph.NodeID) []byte {
	buf := make([]byte, 0, 16+len(s.Stack)*12)
	buf = append(buf, marshalVersion)
	buf = binary.AppendUvarint(buf, s.ID)
	buf = binary.AppendUvarint(buf, uint64(s.Start))
	buf = binary.AppendUvarint(buf, uint64(end))
	buf = binary.AppendUvarint(buf, uint64(len(s.Stack)))
	for i := range s.Stack {
		e := &s.Stack[i]
		head := uint64(e.Kind) & 0x7
		if e.HasSite {
			head |= flagHasSite
		}
		if e.Gap {
			head |= flagGap
		}
		buf = binary.AppendUvarint(buf, head)
		buf = binary.AppendUvarint(buf, e.DecodeID)
		buf = binary.AppendUvarint(buf, e.ResumeID)
		buf = binary.AppendUvarint(buf, uint64(e.OuterEnd))
		buf = binary.AppendUvarint(buf, uint64(e.OuterStart))
		buf = binary.AppendUvarint(buf, uint64(e.Site.Caller))
		buf = binary.AppendUvarint(buf, uint64(e.Site.Label))
	}
	return buf
}

// UnmarshalContext inverts MarshalContext.
func UnmarshalContext(data []byte) (*State, callgraph.NodeID, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("encoding: empty context record")
	}
	if data[0] != marshalVersion {
		return nil, 0, fmt.Errorf("encoding: unsupported record version %d", data[0])
	}
	r := &reader{data: data[1:]}
	id := r.uvarint()
	start := r.node()
	end := r.node()
	n := r.uvarint()
	if r.err == nil && n > uint64(len(data)) {
		return nil, 0, fmt.Errorf("encoding: corrupt record: %d stack elements in %d bytes", n, len(data))
	}
	st := &State{ID: id, Start: start}
	for i := uint64(0); i < n && r.err == nil; i++ {
		head := r.uvarint()
		el := Element{
			Kind:       PieceKind(head & 0x7),
			DecodeID:   r.uvarint(),
			ResumeID:   r.uvarint(),
			OuterEnd:   r.node(),
			OuterStart: r.node(),
			HasSite:    head&flagHasSite != 0,
			Gap:        head&flagGap != 0,
		}
		el.Site.Caller = r.node()
		el.Site.Label = int32(r.uvarint())
		st.Stack = append(st.Stack, el)
	}
	if r.err != nil {
		return nil, 0, fmt.Errorf("encoding: corrupt record: %w", r.err)
	}
	if len(r.data) != 0 {
		return nil, 0, fmt.Errorf("encoding: %d trailing bytes in record", len(r.data))
	}
	return st, end, nil
}

type reader struct {
	data []byte
	err  error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.err = fmt.Errorf("truncated varint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *reader) node() callgraph.NodeID {
	v := r.uvarint()
	if r.err == nil && v > 1<<31-1 {
		r.err = fmt.Errorf("node id %d out of range", v)
		return 0
	}
	return callgraph.NodeID(v)
}
