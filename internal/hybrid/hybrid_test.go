package hybrid

import (
	"strings"
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
	"deltapath/internal/stackwalk"
)

// hybridProgram has an obvious hot trunk (main -> Dispatch.route ->
// Handler.handle runs every iteration) and a colder periphery.
const hybridProgram = `
entry Main.main
class Main {
  method main {
    loop 12 { call Dispatch.route }
    call Admin.rare
    emit done
  }
}
class Dispatch {
  method route { call Handler.handle; emit routed }
}
class Handler {
  method handle { call Worker.step; emit handled }
}
class Worker {
  method step { call Util.leaf; emit stepped }
}
class Admin {
  method rare { call Util.leaf; emit admin }
}
class Util { method leaf { emit leaf } }
`

func buildHybrid(t *testing.T) *Analysis {
	t.Helper()
	prog := lang.MustParse(hybridProgram)
	a, err := Build(prog, Options{HotContexts: 4, TrainSeeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTrunkDerivedFromProfile(t *testing.T) {
	a := buildHybrid(t)
	if a.TrunkSize() == 0 {
		t.Fatal("no trunk derived")
	}
	// The hot chain must be in the trunk.
	for _, m := range []minivm.MethodRef{
		{Class: "Dispatch", Method: "route"},
	} {
		if !a.trunk[m] {
			t.Fatalf("hot method %s not in trunk (trunk: %v)", m, a.trunk)
		}
	}
}

func TestHybridDecodesHotAndColdContexts(t *testing.T) {
	a := buildHybrid(t)
	prog := a.prog
	enc := a.NewEncoder()
	vm, err := minivm.NewVM(prog, 1) // a training seed: prefixes known
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(a.instrumentedMethods())
	walker := &stackwalk.Walker{}
	full, resolved := 0, 0
	vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
		cap := enc.Capture()
		names, err := a.Decode(cap, m)
		if err != nil {
			t.Fatalf("decode at %s: %v", m, err)
		}
		truth := stackwalk.Key(walker.Capture(v))
		got := strings.Join(names, ">")
		full++
		if !strings.Contains(got, "...") {
			resolved++
			if got != truth {
				t.Fatalf("hybrid decode mismatch at %s:\n got  %s\n want %s", m, got, truth)
			}
		} else {
			// Gapped decode: the non-gap parts must match the truth's
			// tail exactly.
			parts := strings.Split(got, "...")
			tail := strings.TrimPrefix(parts[len(parts)-1], ">")
			if tail != "" && !strings.HasSuffix(truth, tail) {
				t.Fatalf("gapped decode tail %q not a suffix of truth %q", tail, truth)
			}
		}
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if full == 0 {
		t.Fatal("no contexts decoded")
	}
	if resolved == 0 {
		t.Fatal("no hot contexts fully resolved through the trained table")
	}
	t.Logf("decoded %d contexts, %d fully resolved via trunk table", full, resolved)
}

func TestHybridShrinksDeltaPathSide(t *testing.T) {
	a := buildHybrid(t)
	prog := a.prog
	full, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(full.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if a.DeltaPathSites() >= full.Graph.NumSites() {
		t.Fatalf("hybrid DeltaPath instruments %d sites, full DeltaPath %d — no savings",
			a.DeltaPathSites(), full.Graph.NumSites())
	}
}

func TestHybridUntrainedPrefixStaysHonest(t *testing.T) {
	a := buildHybrid(t)
	// A capture with a PCC value never seen in training must decode with
	// a gap, not a wrong prefix.
	enc := a.NewEncoder()
	vm, err := minivm.NewVM(a.prog, 77) // unseen seed: dispatch same here, but
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(a.instrumentedMethods())
	vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
		cap := enc.Capture()
		cap.V = 0xdeadbeef // corrupt: untrained value
		if _, known := a.build.NodeOf[m]; !known {
			return
		}
		names, err := a.Decode(cap, m)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Any context that crossed the trunk must now show a gap.
		joined := strings.Join(names, ">")
		if strings.Contains(joined, "Dispatch.route") {
			t.Fatalf("untrained V resolved a trunk frame: %s", joined)
		}
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
}
