// Package hybrid implements the hybrid encoding sketched in Section 8
// (Future Work): profiling identifies the program's hot "trunk" — the
// functions appearing in the most frequent calling contexts — and the two
// encodings split the work:
//
//   - inside the trunk, PCC runs: one hash update per call, no static
//     analysis, and a profile-trained table maps each observed trunk hash
//     back to its exact frame sequence (hot contexts are few, so the table
//     is small and collisions are checked at training time);
//   - outside the trunk, DeltaPath runs, with the trunk excluded from its
//     call graph exactly as a library component would be (Section 4.2) —
//     call path tracking bridges the boundary, so the DeltaPath pieces are
//     precise from the first non-trunk frame down.
//
// Decoding composes the two: the DeltaPath decoder produces the non-trunk
// frames with gaps where trunk code ran, and the trained table resolves the
// gap from the captured PCC value. Contexts whose trunk prefix was never
// seen in training decode with an explicit gap rather than a wrong answer —
// the same honesty DeltaPath's UCP handling provides.
package hybrid

import (
	"fmt"
	"strings"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/instrument"
	"deltapath/internal/minivm"
	"deltapath/internal/pcc"
	"deltapath/internal/stackwalk"
)

// Options configures Build.
type Options struct {
	// HotContexts is how many of the most frequent training contexts
	// define the trunk (default 16).
	HotContexts int
	// TrainSeeds are the dispatch seeds of the training runs.
	TrainSeeds []uint64
}

// Analysis is a trained hybrid encoding.
type Analysis struct {
	prog  *minivm.Program
	build *cha.Result
	plan  *instrument.Plan
	dec   *encoding.Decoder

	// trunk is the set of trunk methods (excluded from DeltaPath).
	trunk map[minivm.MethodRef]bool
	// trunkCtx maps (V, query method) to the full context for emits
	// inside trunk methods — the paper's "mapping between frequently
	// generated calling contexts and their PCC encoding values".
	trunkCtx map[vmKey][]minivm.MethodRef
	// prefixes maps (V, boundary method) to the trunk prefix that ran
	// before the DeltaPath piece rooted at boundary.
	prefixes map[vmKey][]minivm.MethodRef
	// pccBuild carries the site constants for the whole program (the
	// trunk PCC instrumentation).
	pccBuild *cha.Result
}

// vmKey keys the trained tables: a PCC value together with the program
// point it was observed at.
type vmKey struct {
	v uint64
	m minivm.MethodRef
}

// Build profiles the program, derives the trunk, and prepares the split
// instrumentation.
func Build(prog *minivm.Program, opts Options) (*Analysis, error) {
	if opts.HotContexts == 0 {
		opts.HotContexts = 16
	}
	if len(opts.TrainSeeds) == 0 {
		opts.TrainSeeds = []uint64{1, 2, 3}
	}

	// Full-graph build for profiling and PCC site constants.
	full, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		return nil, err
	}

	// Training: count context frequencies with ground-truth stacks and
	// record the PCC value of each trunk prefix as it will appear at
	// runtime. (Training uses stack walking; production never does.)
	type ctxStat struct {
		frames []minivm.MethodRef
		count  int
	}
	counts := make(map[string]*ctxStat)
	for _, seed := range opts.TrainSeeds {
		vm, err := minivm.NewVM(prog, seed)
		if err != nil {
			return nil, err
		}
		walker := &stackwalk.Walker{}
		vm.OnEmit = func(v *minivm.VM, _ minivm.MethodRef, _ string) {
			ctx := walker.Capture(v)
			key := stackwalk.Key(ctx)
			if s, ok := counts[key]; ok {
				s.count++
				return
			}
			counts[key] = &ctxStat{frames: append([]minivm.MethodRef(nil), ctx...), count: 1}
		}
		if err := vm.Run(); err != nil {
			return nil, err
		}
	}
	hot := make([]*ctxStat, 0, len(counts))
	for _, s := range counts {
		hot = append(hot, s)
	}
	for i := 0; i < len(hot); i++ { // selection of top-K by count
		for j := i + 1; j < len(hot); j++ {
			if hot[j].count > hot[i].count ||
				(hot[j].count == hot[i].count && stackwalk.Key(hot[j].frames) < stackwalk.Key(hot[i].frames)) {
				hot[i], hot[j] = hot[j], hot[i]
			}
		}
	}
	if len(hot) > opts.HotContexts {
		hot = hot[:opts.HotContexts]
	}
	trunk := make(map[minivm.MethodRef]bool)
	for _, s := range hot {
		for _, f := range s.frames {
			if f != prog.Entry {
				trunk[f] = true
			}
		}
	}
	if len(trunk) == 0 {
		return nil, fmt.Errorf("hybrid: training found no trunk (no hot contexts?)")
	}

	// DeltaPath over the non-trunk remainder: the trunk is excluded like
	// a library component; CPT bridges the boundary.
	build, err := cha.Build(prog, cha.Options{
		KeepUnreachable: true,
		ExcludeMethods:  trunk,
	})
	if err != nil {
		return nil, err
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		return nil, err
	}
	plan, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		prog:     prog,
		build:    build,
		plan:     plan,
		dec:      encoding.NewDecoder(res.Spec),
		trunk:    trunk,
		trunkCtx: make(map[vmKey][]minivm.MethodRef),
		prefixes: make(map[vmKey][]minivm.MethodRef),
		pccBuild: full,
	}

	// Second training pass: run the production instrumentation and learn
	// the two tables — (V, emit point) -> full context for trunk emits,
	// and (V, boundary) -> trunk prefix for contexts crossing into the
	// DeltaPath region. Collisions would make decoding unreliable;
	// training detects and reports them.
	for _, seed := range opts.TrainSeeds {
		enc := a.NewEncoder()
		vm, err := minivm.NewVM(prog, seed)
		if err != nil {
			return nil, err
		}
		vm.SetProbes(enc)
		vm.SetInstrumented(a.instrumentedMethods())
		walker := &stackwalk.Walker{}
		var trainErr error
		record := func(tbl map[vmKey][]minivm.MethodRef, key vmKey, frames []minivm.MethodRef) {
			if old, ok := tbl[key]; ok {
				if stackwalk.Key(old) != stackwalk.Key(frames) {
					trainErr = fmt.Errorf("hybrid: PCC collision at %v: %v vs %v", key.m, old, frames)
				}
				return
			}
			tbl[key] = append([]minivm.MethodRef(nil), frames...)
		}
		vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
			if trainErr != nil {
				return
			}
			ctx := walker.Capture(v)
			v0 := enc.PCCValue()
			if _, inDP := a.build.NodeOf[m]; !inDP {
				record(a.trunkCtx, vmKey{v0, m}, ctx)
				return
			}
			// Find the last trunk->DeltaPath boundary: the prefix is
			// everything before the first DeltaPath frame that follows a
			// trunk frame... contexts may interleave; the DeltaPath piece
			// stack already handles the lower crossings, so only the
			// topmost prefix is needed: frames up to the first non-trunk,
			// non-entry frame.
			var prefix []minivm.MethodRef
			var boundary minivm.MethodRef
			for i, f := range ctx {
				if a.trunk[f] || f == prog.Entry {
					prefix = append(prefix, f)
					continue
				}
				boundary = f
				_ = i
				break
			}
			if boundary != (minivm.MethodRef{}) && len(prefix) > 0 && a.trunk[prefix[len(prefix)-1]] {
				record(a.prefixes, vmKey{v0, boundary}, prefix)
			}
		}
		if err := vm.Run(); err != nil {
			return nil, err
		}
		if trainErr != nil {
			return nil, trainErr
		}
	}
	return a, nil
}

// TrunkSize reports how many methods form the trunk.
func (a *Analysis) TrunkSize() int { return len(a.trunk) }

// DeltaPathSites reports how many call sites the DeltaPath half
// instruments (the savings come from the trunk being excluded).
func (a *Analysis) DeltaPathSites() int { return a.plan.NumInstrumentedSites() }

func (a *Analysis) instrumentedMethods() map[minivm.MethodRef]bool {
	// DeltaPath methods plus trunk methods (which carry PCC payloads).
	out := a.plan.InstrumentedMethods()
	for f := range a.trunk {
		out[f] = true
	}
	out[a.prog.Entry] = true
	return out
}

// Encoder is the hybrid runtime: PCC updates at trunk call sites,
// DeltaPath payloads everywhere else.
type Encoder struct {
	a  *Analysis
	dp *instrument.Encoder
	v  uint64
	// saved restores V across calls, as PCC's callee-local V does.
	saved []uint64
	cs    map[minivm.SiteRef]uint64
}

// NewEncoder builds a fresh runtime encoder (one per VM).
func (a *Analysis) NewEncoder() *Encoder {
	cs := make(map[minivm.SiteRef]uint64)
	g := a.pccBuild.Graph
	for _, s := range g.Sites() {
		ref := a.pccBuild.RefOf[s.Caller]
		if a.trunk[ref] || ref == a.prog.Entry {
			cs[minivm.SiteRef{In: ref, Site: s.Label}] = pcc.SiteConstant(minivm.SiteRef{In: ref, Site: s.Label})
		}
	}
	return &Encoder{a: a, dp: instrument.NewEncoder(a.plan), cs: cs}
}

// PCCValue returns the current trunk hash V.
func (e *Encoder) PCCValue() uint64 { return e.v }

// DeltaPath exposes the DeltaPath half (for state snapshots).
func (e *Encoder) DeltaPath() *instrument.Encoder { return e.dp }

// BeforeCall implements minivm.Probes.
func (e *Encoder) BeforeCall(site minivm.SiteRef, target minivm.MethodRef) uint8 {
	if c, ok := e.cs[site]; ok {
		e.saved = append(e.saved, e.v)
		e.v = (3*e.v + c) & 0xffffffff
		return 1 << 7
	}
	return e.dp.BeforeCall(site, target)
}

// AfterCall implements minivm.Probes.
func (e *Encoder) AfterCall(site minivm.SiteRef, target minivm.MethodRef, token uint8) {
	if token == 1<<7 {
		e.v = e.saved[len(e.saved)-1]
		e.saved = e.saved[:len(e.saved)-1]
		return
	}
	e.dp.AfterCall(site, target, token)
}

// Enter implements minivm.Probes.
func (e *Encoder) Enter(m minivm.MethodRef) uint8 { return e.dp.Enter(m) }

// Exit implements minivm.Probes.
func (e *Encoder) Exit(m minivm.MethodRef, token uint8) { e.dp.Exit(m, token) }

// BeginTask implements minivm.TaskProbes.
func (e *Encoder) BeginTask(entry minivm.MethodRef) {
	e.v = 0
	e.saved = e.saved[:0]
	e.dp.BeginTask(entry)
}

// Capture snapshots the hybrid encoding at an emit point.
type Capture struct {
	V     uint64
	State *encoding.State
}

// Capture records the current encoding.
func (e *Encoder) Capture() Capture {
	return Capture{V: e.v, State: e.dp.State().Snapshot()}
}

// Decode recovers the context of a capture taken at method m. Emits inside
// trunk methods resolve through the trained (V, point) memo — exactly the
// paper's "decode such a PCC value based on the mapping". Emits in the
// DeltaPath region decode precisely from the piece stack; if the context
// crossed out of the trunk, the leading gap resolves through the trained
// prefix table, or stays an honest "..." when the prefix was never seen in
// training.
func (a *Analysis) Decode(c Capture, m minivm.MethodRef) ([]string, error) {
	node, known := a.build.NodeOf[m]
	if !known {
		if ctx, ok := a.trunkCtx[vmKey{c.V, m}]; ok {
			return refNames(ctx), nil
		}
		return []string{"...", m.String()}, nil // honest gap: untrained hot context
	}
	names, err := a.dec.DecodeNames(c.State, node)
	if err != nil {
		return nil, err
	}
	// The DeltaPath decode shows a gap where the trunk ran; resolve the
	// leading portion from the trained prefix keyed by the boundary frame
	// (the first frame after the gap).
	for i, n := range names {
		if n != "..." {
			continue
		}
		if i+1 >= len(names) {
			break
		}
		boundary := parseRef(names[i+1])
		if prefix, ok := a.prefixes[vmKey{c.V, boundary}]; ok && i <= 1 {
			return append(refNames(prefix), names[i+1:]...), nil
		}
		break // only the topmost gap is trunk-resolvable
	}
	return names, nil
}

// parseRef splits "Class.method" at the last dot.
func parseRef(s string) minivm.MethodRef {
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == '.' {
			return minivm.MethodRef{Class: s[:i], Method: s[i+1:]}
		}
	}
	return minivm.MethodRef{Method: s}
}

func refNames(refs []minivm.MethodRef) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.String()
	}
	return out
}

func joinRefs(refs []minivm.MethodRef) string { return strings.Join(refNames(refs), ">") }

var (
	_ minivm.Probes     = (*Encoder)(nil)
	_ minivm.TaskProbes = (*Encoder)(nil)
	_                   = joinRefs
)
