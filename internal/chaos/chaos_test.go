package chaos

// The chaos suite: the package's injector (the adversary) against the
// recovery protocol in internal/instrument (the defender), over generated
// workload-corpus programs. The property under test, per run: after every
// injected fault, the self-healing protocol at the next emit point inside
// an analysed method leaves a state whose decoded context is exactly the
// stack-walk ground truth — no panics, no non-terminating decodes, no
// silently wrong contexts.
//
// The tests live in-package (they exercise unexported event plumbing), so
// they build their own analysis pipeline from the internal packages; the
// root deltapath package cannot be imported here (it imports chaos).

import (
	"strings"
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/instrument"
	"deltapath/internal/minivm"
	"deltapath/internal/verify"
	"deltapath/internal/workload"
)

type bench struct {
	name    string
	prog    *minivm.Program
	build   *cha.Result
	spec    *encoding.Spec
	cptPlan *cpt.Plan
	plan    *instrument.Plan
	dec     *encoding.Decoder
	window  uint64 // probe events in a fault-free reference run
}

var benchCache []*bench

// corpus are the workload programs the suite runs: two scaled-down
// SPECjvm2008-shaped benchmarks (virtual dispatch, tasks, dynamic loading,
// exceptions, recursion) plus a micro program small enough that one-shot
// faults land densely across its event window.
func corpus(t *testing.T) []workload.Params {
	t.Helper()
	compress, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("compress not in suite")
	}
	monte, ok := workload.ByName("scimark.monte_carlo")
	if !ok {
		t.Fatal("scimark.monte_carlo not in suite")
	}
	micro := workload.Params{
		Name: "chaos.micro", Seed: 7,
		LibClasses: 12, LibMethods: 4, AppClasses: 6, AppMethods: 4,
		LibFamilies: 3, AppFamilies: 2, FamilySubs: 3,
		Layers: 6, CallsPerMethod: 2,
		VirtualFrac: 0.4, CallbackFrac: 0.05, RecursionFrac: 0.05,
		ExceptionFrac: 0.05, DynClasses: 2, SpawnTasks: 2,
		ExecDepth: 8, LoopTrip: 6, WorkUnits: 2, EmitFrac: 0.4,
	}
	return []workload.Params{compress.Scale(0.01), monte.Scale(0.01), micro}
}

func benches(t *testing.T) []*bench {
	t.Helper()
	if benchCache != nil {
		return benchCache
	}
	for _, p := range corpus(t) {
		prog, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: generate: %v", p.Name, err)
		}
		build, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
		if err != nil {
			t.Fatalf("%s: build: %v", p.Name, err)
		}
		res, err := core.Encode(build.Graph, core.Options{})
		if err != nil {
			t.Fatalf("%s: encode: %v", p.Name, err)
		}
		cptPlan := cpt.Compute(build.Graph)
		plan, err := instrument.NewPlan(build, res.Spec, cptPlan)
		if err != nil {
			t.Fatalf("%s: plan: %v", p.Name, err)
		}
		// The static certificate must hold before any chaos runs: an
		// unsound encoding would make every "healed" assertion vacuous.
		if rep := verify.Check(res.Spec, cptPlan, verify.Options{}); !rep.Clean() {
			t.Fatalf("%s: analysis fails static verification before injection:\n%s", p.Name, rep.Text())
		}
		b := &bench{
			name:    p.Name,
			prog:    prog,
			build:   build,
			spec:    res.Spec,
			cptPlan: cptPlan,
			plan:    plan,
			dec:     encoding.NewDecoder(res.Spec),
		}
		// Measure the probe-event window with a quiet injector, so one-shot
		// faults can be aimed anywhere in a run.
		_, inj := runVerified(t, b, Config{}, 1)
		b.window = inj.Events()
		if b.window == 0 {
			t.Fatalf("%s: no probe events; corpus program is vacuous", p.Name)
		}
		benchCache = append(benchCache, b)
	}
	return benchCache
}

// runVerified executes one seeded run of b under cfg with the full
// self-healing protocol at every analysed emit point, asserting the
// headline property each time: the decoded context, gaps removed, equals
// the VM's stack filtered to instrumented methods.
func runVerified(t *testing.T, b *bench, cfg Config, vmSeed uint64) (*instrument.Encoder, *Injector) {
	t.Helper()
	enc := instrument.NewEncoder(b.plan)
	enc.SetDecoder(b.dec)
	inj := NewInjector(enc, cfg)
	vm, err := minivm.NewVM(b.prog, vmSeed)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(inj)
	vm.SetInstrumented(b.plan.InstrumentedMethods())
	checked := 0
	vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
		node, known := b.build.NodeOf[m]
		if !known {
			return // emit inside unanalysed code: encoding does not apply
		}
		enc.VerifyAndResync(v)
		names, err := b.dec.DecodeNames(enc.State().Snapshot(), node)
		if err != nil {
			t.Fatalf("%s seed %d fault %v event %d: post-heal decode failed at %s: %v",
				b.name, vmSeed, cfg.OneShotFault, cfg.OneShotEvent, m, err)
		}
		var truth []string
		for _, f := range v.Stack() {
			if _, ok := b.build.NodeOf[f]; ok {
				truth = append(truth, f.String())
			}
		}
		var got []string
		for _, n := range names {
			if n != "..." {
				got = append(got, n)
			}
		}
		if strings.Join(got, ">") != strings.Join(truth, ">") {
			t.Fatalf("%s seed %d fault %v event %d: post-heal context mismatch at %s:\n  got  %s (full: %v)\n  want %s",
				b.name, vmSeed, cfg.OneShotFault, cfg.OneShotEvent, m,
				strings.Join(got, ">"), names, strings.Join(truth, ">"))
		}
		checked++
	}
	if err := vm.Run(); err != nil {
		t.Fatalf("%s seed %d: vm: %v", b.name, vmSeed, err)
	}
	if checked == 0 {
		t.Fatalf("%s seed %d: no contexts verified; run is vacuous", b.name, vmSeed)
	}
	// Post-heal certification: whenever this run detected or healed a
	// corruption, the static analysis the recovery decoded against must
	// still verify clean — a healed-but-unsound state would mean the
	// dynamic assertions above passed against a broken injectivity proof,
	// which the per-emit decode==truth check alone cannot distinguish.
	if h := enc.Health; h.CorruptionsDetected > 0 || h.Resyncs > 0 {
		if rep := verify.Check(b.spec, b.cptPlan, verify.Options{}); !rep.Clean() {
			t.Fatalf("%s seed %d fault %v: analysis fails static verification after heal (health %+v):\n%s",
				b.name, vmSeed, cfg.OneShotFault, h, rep.Text())
		}
	}
	return enc, inj
}

// TestCheckerQuietWithoutFaults pins the false-positive rate of the
// invariant checker at zero: with the injector disarmed, no run over the
// corpus may detect a corruption or resync.
func TestCheckerQuietWithoutFaults(t *testing.T) {
	for _, b := range benches(t) {
		for seed := uint64(0); seed < 3; seed++ {
			enc, inj := runVerified(t, b, Config{}, seed)
			if h := enc.Health; h != (instrument.Health{}) {
				t.Fatalf("%s seed %d: health counters moved without faults: %+v", b.name, seed, h)
			}
			if inj.TotalInjected() != 0 {
				t.Fatalf("%s seed %d: disarmed injector injected", b.name, seed)
			}
		}
	}
}

// TestOneShotFaultsHealed is the property suite of the acceptance
// criteria: across ≥1000 seeded runs (benches × fault classes × seeds),
// one attributable fault is injected per run at a seeded position in the
// event window, and every analysed emit after it must still decode to the
// stack-walk ground truth. runVerified asserts the property; this driver
// also checks the faults actually fired often enough to mean anything.
func TestOneShotFaultsHealed(t *testing.T) {
	seedsPer := 48
	if testing.Short() {
		seedsPer = 4
	}
	runs, fired, healed := 0, 0, 0
	firedBy := make(map[Fault]int)
	healedBy := make(map[Fault]int)
	for _, b := range benches(t) {
		for _, f := range AllFaults() {
			for s := 0; s < seedsPer; s++ {
				ev := 1 + (uint64(s)*7919+uint64(f)*104729)%b.window
				cfg := Config{Seed: uint64(s)<<8 | uint64(f), OneShotEvent: ev, OneShotFault: f}
				enc, inj := runVerified(t, b, cfg, uint64(s%8))
				runs++
				if inj.TotalInjected() > 0 {
					fired++
					firedBy[f]++
				}
				if enc.Health.Resyncs > 0 {
					healed++
					healedBy[f]++
				}
			}
		}
	}
	if !testing.Short() && runs < 1000 {
		t.Fatalf("only %d runs; acceptance requires ≥1000", runs)
	}
	// A one-shot can miss (no eligible event after its position), and a
	// fired fault can be harmless — a dropped call whose addition value is
	// zero, a truncation of an already-empty stack, a fault after the last
	// emit. The non-vacuity bar is therefore not a blunt ratio but
	// coverage: injection must mostly fire, and (outside -short, where the
	// few seeds cannot cover every class) each fault class must have
	// produced at least one detected-and-healed corruption.
	if fired*2 < runs {
		t.Fatalf("only %d/%d runs injected a fault; event-window aiming is broken", fired, runs)
	}
	if healed == 0 {
		t.Fatal("no run resynced; faults are not reaching the checker")
	}
	if !testing.Short() {
		// DropCall and UnknownSite are MASKED rather than healed: dropping
		// a BeforeCall also suppresses its paired AfterCall (the token
		// bit), and call path tracking's hazard push at the callee's entry
		// absorbs the missing addition — so the state is never wrong at an
		// emit and the checker rightly stays quiet. runVerified has already
		// proven decode==truth throughout those runs; here we only require
		// that the classes actually fired. Every other class must have
		// produced at least one detected-and-healed corruption.
		masked := map[Fault]bool{DropCall: true, UnknownSite: true}
		for _, f := range AllFaults() {
			if masked[f] {
				if firedBy[f] == 0 {
					t.Errorf("masked fault class %v never fired", f)
				}
				continue
			}
			if healedBy[f] == 0 {
				t.Errorf("fault class %v never produced a healed corruption", f)
			}
		}
	}
	t.Logf("%d runs, %d injected, %d healed (%v)", runs, fired, healed, healedBy)
}

// TestRateStress soaks the protocol: sustained random faults of every
// class at a rate high enough that corruptions overlap, with the full
// verification at every emit. Counter sanity: every resync stems from at
// least one detection, and detections imply resyncs.
func TestRateStress(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for _, b := range benches(t) {
		sawFault := false
		for s := 0; s < seeds; s++ {
			enc, inj := runVerified(t, b, Config{Seed: uint64(s) + 1, Rate: 0.01}, uint64(s))
			if inj.TotalInjected() > 0 {
				sawFault = true
			}
			h := enc.Health
			if h.CorruptionsDetected < h.Resyncs {
				t.Fatalf("%s seed %d: %d resyncs from only %d detections", b.name, s, h.Resyncs, h.CorruptionsDetected)
			}
			if h.Resyncs == 0 && h.CorruptionsDetected > 0 {
				t.Fatalf("%s seed %d: %d detections never healed", b.name, s, h.CorruptionsDetected)
			}
		}
		if !sawFault {
			t.Fatalf("%s: rate-based injection never fired", b.name)
		}
	}
}

// TestInjectorDeterminism pins the replay guarantee: identical configs
// produce identical fault streams and identical health outcomes.
func TestInjectorDeterminism(t *testing.T) {
	b := benches(t)[0]
	cfg := Config{Seed: 42, Rate: 0.01}
	encA, injA := runVerified(t, b, cfg, 5)
	encB, injB := runVerified(t, b, cfg, 5)
	if injA.Events() != injB.Events() || injA.TotalInjected() != injB.TotalInjected() {
		t.Fatalf("fault streams diverged: %d/%d events, %d/%d faults",
			injA.Events(), injB.Events(), injA.TotalInjected(), injB.TotalInjected())
	}
	if encA.Health != encB.Health {
		t.Fatalf("health diverged: %+v vs %+v", encA.Health, encB.Health)
	}
}
