// Crash-safety soak for dprofiled: a real server process is SIGKILLed
// mid-ingest, over and over, while a retrying agent keeps pushing. The
// invariant under test is the daemon's durability contract end to end —
// through the real binary, the real WAL, and the real HTTP protocol:
//
//	every batch the client saw acknowledged is present in the recovered
//	store exactly once, regardless of when the process died.
//
// The test is in package chaos_test because it drives the public
// deltapath API to build its fixture (chaos_test → deltapath → chaos
// would be a cycle in-package).
package chaos_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deltapath"
	"deltapath/internal/analysisio"
	"deltapath/internal/profile"
	"deltapath/internal/server/agentclient"
)

// soakServer manages one dprofiled process that the test repeatedly
// murders and resurrects on a fixed address over a fixed data directory.
type soakServer struct {
	t    *testing.T
	bin  string
	data string
	dpa  string
	addr string
	// extra appends daemon flags (tiny flush/compaction thresholds for
	// the kill-during-flush soak).
	extra []string
	cmd   *exec.Cmd
}

// start launches the daemon and blocks until it reports listening. A
// just-killed predecessor may still hold the port for an instant, so a
// failed launch retries briefly.
func (s *soakServer) start() {
	s.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		args := append([]string{"-data", s.data, "-analysis", "app=" + s.dpa, "-addr", s.addr}, s.extra...)
		cmd := exec.Command(s.bin, args...)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			s.t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			s.t.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		listening := false
		for sc.Scan() {
			if strings.Contains(sc.Text(), "listening on") {
				listening = true
				break
			}
		}
		if listening {
			// Keep draining so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			s.cmd = cmd
			return
		}
		cmd.Wait() // exited before listening (port not yet released)
		if time.Now().After(deadline) {
			s.t.Fatalf("dprofiled would not start on %s", s.addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon — no warning, no drain, no fsync beyond what
// already happened. Exactly the crash the WAL exists for.
func (s *soakServer) kill() {
	s.t.Helper()
	if err := s.cmd.Process.Kill(); err != nil {
		s.t.Fatal(err)
	}
	s.cmd.Wait()
}

// freePort reserves an ephemeral port and releases it for the daemon to
// bind. The client needs one stable URL across every restart, so the
// usual listen-on-:0 trick is not enough.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type soakHealth struct {
	Tenants []struct {
		Records        uint64 `json:"records"`
		Batches        uint64 `json:"batches_applied"`
		DupBatches     uint64 `json:"duplicate_batches"`
		TruncatedTails uint64 `json:"wal_truncated_tails"`
		Quarantined    uint64 `json:"quarantined_unparseable"`
		Segments       int    `json:"segments"`
		Compactions    uint64 `json:"compactions"`
		Orphans        uint64 `json:"orphan_segments_discarded"`
	} `json:"tenants"`
}

func getHealth(t *testing.T, url string) soakHealth {
	t.Helper()
	var h soakHealth
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err == nil && len(h.Tenants) == 1 {
				return h
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never answered: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSoakKillRecovery is the headline crash-safety run: ≥10 SIGKILL
// cycles against a live ingest stream, then an exact ledger comparison —
// client-acked records vs recovered store. Zero acked-record loss, zero
// double-application.
func TestSoakKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Log("-short: trimming to 3 kill cycles")
	}
	cycles := 10
	if testing.Short() {
		cycles = 3
	}

	// Build the real daemon binary out of this module.
	dir := t.TempDir()
	bin := filepath.Join(dir, "dprofiled")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dprofiled")
	build.Dir = filepath.Join("..", "..")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dprofiled: %v\n%s", err, out)
	}

	// Fixture: a real analysis and real emitted context records.
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "recursion.mv"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := deltapath.ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dpaPath := filepath.Join(dir, "app.dpa")
	var dpa bytes.Buffer
	if err := an.SaveAnalysis(&dpa); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dpaPath, dpa.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	bundle, err := analysisio.Load(bytes.NewReader(dpa.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ctxs, err := an.Run(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var records []profile.Record
	for _, c := range ctxs {
		rec, err := c.MarshalBinary()
		if err != nil {
			continue
		}
		records = append(records, profile.Record{Key: rec, Count: 1})
	}
	if len(records) == 0 {
		t.Fatal("fixture emitted no records")
	}
	var perBatch uint64
	for _, r := range records {
		perBatch += r.Count
	}

	srv := &soakServer{
		t:    t,
		bin:  bin,
		data: filepath.Join(dir, "data"),
		dpa:  dpaPath,
		addr: freePort(t),
	}
	url := "http://" + srv.addr
	srv.start()

	// The pusher: one batch per PushRecords call so client-side
	// acknowledgement accounting is per batch. MaxAttempts is effectively
	// unbounded — a batch abandoned mid-retry could have been applied
	// under a lost ack, which would corrupt the ledger this test audits.
	client, err := agentclient.New(agentclient.Config{
		URL:         url,
		MaxAttempts: 10000,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var (
		stop       atomic.Bool
		acked      atomic.Uint64 // records in client-acked batches
		ackedBatch atomic.Uint64
		retries    atomic.Uint64
		dups       atomic.Uint64
		wg         sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			stats, err := client.PushRecords(context.Background(), bundle.Digest, records)
			if err != nil {
				t.Errorf("push: %v", err)
				return
			}
			acked.Add(perBatch)
			ackedBatch.Add(1)
			retries.Add(uint64(stats.Retries))
			dups.Add(uint64(stats.Duplicates))
		}
	}()

	for cycle := 0; cycle < cycles; cycle++ {
		// Let ingest run hot, then murder the daemon mid-stream.
		time.Sleep(120 * time.Millisecond)
		srv.kill()
		srv.start()
	}
	// Let the last retries settle against a live server, then stop the
	// pusher BETWEEN pushes — never mid-batch, so the ledger stays exact.
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		srv.kill()
		return
	}

	// One final death and resurrection, then audit the ledger.
	srv.kill()
	srv.start()
	defer srv.kill()
	h := getHealth(t, url)
	tn := h.Tenants[0]
	t.Logf("soak: %d cycles, %d batches acked (%d records), %d client retries, %d duplicate acks",
		cycles, ackedBatch.Load(), acked.Load(), retries.Load(), dups.Load())
	t.Logf("soak: server recovered %d records, %d batches applied, %d duplicate batches, %d truncated tails",
		tn.Records, tn.Batches, tn.DupBatches, tn.TruncatedTails)
	if tn.Records != acked.Load() {
		t.Fatalf("LEDGER MISMATCH: client acked %d records, server recovered %d (lost %d)",
			acked.Load(), tn.Records, int64(acked.Load())-int64(tn.Records))
	}
	if tn.Quarantined != 0 {
		t.Fatalf("valid records were quarantined: %d", tn.Quarantined)
	}
	// The aggregate must still decode end to end after all that abuse.
	resp, err := http.Get(url + "/top?tenant=app&n=3")
	if err != nil {
		t.Fatal(err)
	}
	var top struct {
		Rows []struct {
			Context string `json:"context"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(top.Rows) == 0 {
		t.Fatalf("/top after soak: status %d, %d rows", resp.StatusCode, len(top.Rows))
	}
	if !strings.Contains(top.Rows[0].Context, "fib") {
		t.Fatalf("decoded context looks wrong: %q", top.Rows[0].Context)
	}
}

// TestSoakKillDuringFlushAndCompaction runs the same zero-loss ledger
// audit with thresholds cranked so low that the daemon spends its life
// flushing memtables and compacting segments — SIGKILLs land mid-flush and
// mid-compaction, not just mid-WAL-append. Partially written segments
// (both a planted fake and whatever the kills leave behind) must be
// discarded on recovery, never counted.
func TestSoakKillDuringFlushAndCompaction(t *testing.T) {
	cycles := 8
	if testing.Short() {
		t.Log("-short: trimming to 3 kill cycles")
		cycles = 3
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "dprofiled")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dprofiled")
	build.Dir = filepath.Join("..", "..")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dprofiled: %v\n%s", err, out)
	}

	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "recursion.mv"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := deltapath.ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dpaPath := filepath.Join(dir, "app.dpa")
	var dpa bytes.Buffer
	if err := an.SaveAnalysis(&dpa); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dpaPath, dpa.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	bundle, err := analysisio.Load(bytes.NewReader(dpa.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ctxs, err := an.Run(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var records []profile.Record
	for _, c := range ctxs {
		if rec, err := c.MarshalBinary(); err == nil {
			records = append(records, profile.Record{Key: rec, Count: 1})
		}
	}
	if len(records) == 0 {
		t.Fatal("fixture emitted no records")
	}
	var perBatch uint64
	for _, r := range records {
		perBatch += r.Count
	}

	srv := &soakServer{
		t:    t,
		bin:  bin,
		data: filepath.Join(dir, "data"),
		dpa:  dpaPath,
		addr: freePort(t),
		// Memtable of 1 byte: every committed batch triggers a segment
		// flush. Compaction at 2 segments: the compactor runs
		// continuously. Kills land inside both paths.
		extra: []string{"-memtable-max-bytes", "1", "-compact-min-segments", "2",
			"-wal-max-bytes", "4096"},
	}
	url := "http://" + srv.addr
	srv.start()

	client, err := agentclient.New(agentclient.Config{
		URL:         url,
		MaxAttempts: 10000,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var (
		stop       atomic.Bool
		acked      atomic.Uint64
		ackedBatch atomic.Uint64
		wg         sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := client.PushRecords(context.Background(), bundle.Digest, records); err != nil {
				t.Errorf("push: %v", err)
				return
			}
			acked.Add(perBatch)
			ackedBatch.Add(1)
		}
	}()

	tenantDir := filepath.Join(srv.data, "app")
	for cycle := 0; cycle < cycles; cycle++ {
		time.Sleep(100 * time.Millisecond)
		srv.kill()
		srv.start()
	}
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		srv.kill()
		return
	}

	srv.kill()
	// A crash can die between segment temp-write and manifest install;
	// plant exactly that wreckage and require the audit restart to
	// discard it (the orphan counter is per-process, so plant just
	// before the startup whose health we inspect).
	if err := os.WriteFile(filepath.Join(tenantDir, "seg-77777777.dps"), []byte("DPS2\npartial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tenantDir, "seg-77777778.dps.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv.start()
	defer srv.kill()
	h := getHealth(t, url)
	tn := h.Tenants[0]
	t.Logf("flush soak: %d cycles, %d batches acked (%d records)", cycles, ackedBatch.Load(), acked.Load())
	t.Logf("flush soak: recovered %d records, %d segments live, %d compactions, %d orphans discarded",
		tn.Records, tn.Segments, tn.Compactions, tn.Orphans)
	if tn.Records != acked.Load() {
		t.Fatalf("LEDGER MISMATCH: client acked %d records, server recovered %d (lost %d)",
			acked.Load(), tn.Records, int64(acked.Load())-int64(tn.Records))
	}
	if tn.Quarantined != 0 {
		t.Fatalf("valid records were quarantined: %d", tn.Quarantined)
	}
	if tn.Segments < 1 {
		t.Fatalf("flush soak never produced a live segment (thresholds not exercised)")
	}
	if tn.Orphans < 2 {
		t.Fatalf("planted partial segments were not discarded (orphans=%d)", tn.Orphans)
	}
	// No torn temp files may survive recovery.
	entries, err := os.ReadDir(tenantDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("torn temp file survived recovery: %s", e.Name())
		}
	}
}

// TestSoakDigestRefusalAfterCrash: state written by one analysis must be
// refused by a daemon started with a different one, even after an unclean
// death — the crash path must not bypass the digest certification.
func TestSoakDigestRefusalAfterCrash(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "dprofiled")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dprofiled")
	build.Dir = filepath.Join("..", "..")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dprofiled: %v\n%s", err, out)
	}

	save := func(program string) (string, analysisio.GraphDigest, []profile.Record) {
		src, err := os.ReadFile(filepath.Join("..", "..", "testdata", program))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := deltapath.ParseProgram(string(src))
		if err != nil {
			t.Fatal(err)
		}
		an, err := deltapath.Analyze(prog, deltapath.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var dpa bytes.Buffer
		if err := an.SaveAnalysis(&dpa); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, program+".dpa")
		if err := os.WriteFile(path, dpa.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		bundle, err := analysisio.Load(bytes.NewReader(dpa.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		ctxs, err := an.Run(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		var recs []profile.Record
		for _, c := range ctxs {
			if rec, err := c.MarshalBinary(); err == nil {
				recs = append(recs, profile.Record{Key: rec, Count: 1})
			}
		}
		return path, bundle.Digest, recs
	}
	dpaA, digestA, recsA := save("recursion.mv")
	dpaB, _, _ := save("shapes.mv")

	srv := &soakServer{t: t, bin: bin, data: filepath.Join(dir, "data"), dpa: dpaA, addr: freePort(t)}
	srv.start()
	client, err := agentclient.New(agentclient.Config{URL: "http://" + srv.addr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.PushRecords(context.Background(), digestA, recsA); err != nil {
		t.Fatal(err)
	}
	srv.kill() // unclean: the WAL holds the batch

	// Same data dir, different analysis: the daemon must refuse to start
	// this tenant rather than replay alien state.
	cmd := exec.Command(bin, "-data", srv.data, "-analysis", "app="+dpaB, "-addr", srv.addr)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("daemon started over mismatched state:\n%s", out)
	}
	if !strings.Contains(string(out), "digest") {
		t.Fatalf("refusal does not mention the digest:\n%s", out)
	}
}
