// Package chaos is a deterministic fault-injection layer for the DeltaPath
// runtime: it wraps the probe stream between minivm and instrument.Encoder
// and injects seeded faults of the classes a production deployment would
// actually see — dropped probe events (a crashed agent thread, a lossy
// event transport), bit flips in the encoding ID (memory corruption,
// truncated persistence), piece-stack truncation, and call sites the
// static analysis never modelled. Everything is driven by a splitmix64
// seed, so every failing run replays exactly.
//
// The package is the adversary half of the repository's graceful-
// degradation story; the recovery half (invariant checker, stack-walk
// resync, health counters) lives in internal/instrument. Together they are
// exercised by the chaos suite in this package's tests: across ≥1000
// seeded runs over the workload corpus, every injected fault must be
// detected at the next emit point and healed such that the next decoded
// context is byte-identical to the stack-walk ground truth.
package chaos

import (
	"fmt"

	"deltapath/internal/instrument"
	"deltapath/internal/minivm"
)

// Fault is one injectable fault class.
type Fault uint8

const (
	// DropCall suppresses a BeforeCall event (and, automatically, its
	// matching AfterCall): the call's addition or piece push never runs.
	DropCall Fault = iota
	// DropReturn suppresses an AfterCall event: the call's addition is
	// never undone, or its pushed piece never popped.
	DropReturn
	// DropEnter suppresses an Enter event (and its matching Exit): anchor
	// and hazard pushes at this entry never run.
	DropEnter
	// DropExit suppresses an Exit event: pieces pushed at entry leak.
	DropExit
	// FlipID flips one random bit of the live encoding ID.
	FlipID
	// TruncateStack drops the top element of the piece stack.
	TruncateStack
	// UnknownSite rewrites a call site's identity to one the plan has no
	// payload for, as if the event came from code the analysis never saw:
	// the site's instrumentation silently does not run.
	UnknownSite

	numFaults
)

func (f Fault) String() string {
	switch f {
	case DropCall:
		return "drop-call"
	case DropReturn:
		return "drop-return"
	case DropEnter:
		return "drop-enter"
	case DropExit:
		return "drop-exit"
	case FlipID:
		return "flip-id"
	case TruncateStack:
		return "truncate-stack"
	case UnknownSite:
		return "unknown-site"
	}
	return fmt.Sprintf("Fault(%d)", uint8(f))
}

// AllFaults returns every injectable fault class.
func AllFaults() []Fault {
	out := make([]Fault, 0, numFaults)
	for f := Fault(0); f < numFaults; f++ {
		out = append(out, f)
	}
	return out
}

// tokDropped marks a token whose BeforeCall/Enter was suppressed, so the
// matching AfterCall/Exit is suppressed too (otherwise the pair would be
// unbalanced in the opposite direction from the one injected). The encoder
// only uses token bits 0–3, so bit 7 is free for the wrapper.
const tokDropped uint8 = 1 << 7

// event classes, for fault eligibility.
type eventKind uint8

const (
	evCall eventKind = iota
	evReturn
	evEnter
	evExit
)

// eligible reports whether fault f can fire on an event of kind k.
// State faults (FlipID, TruncateStack) can fire anywhere; drop faults only
// on their own event class.
func eligible(f Fault, k eventKind) bool {
	switch f {
	case DropCall, UnknownSite:
		return k == evCall
	case DropReturn:
		return k == evReturn
	case DropEnter:
		return k == evEnter
	case DropExit:
		return k == evExit
	case FlipID, TruncateStack:
		return true
	}
	return false
}

// Config configures an Injector.
type Config struct {
	// Seed drives every random choice; same seed, same faults.
	Seed uint64
	// Rate is the per-event fault probability (0 disables random
	// injection).
	Rate float64
	// Faults restricts the injectable classes; nil means all.
	Faults []Fault
	// OneShotEvent, when nonzero, arms exactly one injection: OneShotFault
	// fires at the first eligible probe event whose 1-based index is at
	// least OneShotEvent, then the injector goes quiet. Used by the
	// property suite to attribute each detection to one known fault.
	OneShotEvent uint64
	OneShotFault Fault
}

// Injector wraps an Encoder's probe stream with seeded fault injection.
// It implements minivm.Probes and minivm.TaskProbes.
type Injector struct {
	enc    *instrument.Encoder
	rng    uint64
	rate   float64
	faults []Fault

	oneShotAt    uint64
	oneShotFault Fault
	oneShotDone  bool

	events   uint64
	injected [numFaults]uint64
}

// NewInjector wraps enc with fault injection under cfg.
func NewInjector(enc *instrument.Encoder, cfg Config) *Injector {
	faults := cfg.Faults
	if faults == nil {
		faults = AllFaults()
	}
	return &Injector{
		enc:          enc,
		rng:          cfg.Seed*2654435769 + 0x9e3779b97f4a7c15,
		rate:         cfg.Rate,
		faults:       faults,
		oneShotAt:    cfg.OneShotEvent,
		oneShotFault: cfg.OneShotFault,
		oneShotDone:  cfg.OneShotEvent == 0,
	}
}

// Events reports how many probe events passed through the injector.
func (in *Injector) Events() uint64 { return in.events }

// Injected reports, per fault class, how many faults were injected.
func (in *Injector) Injected() map[Fault]uint64 {
	out := make(map[Fault]uint64, numFaults)
	for f := Fault(0); f < numFaults; f++ {
		if in.injected[f] > 0 {
			out[f] = in.injected[f]
		}
	}
	return out
}

// TotalInjected reports the total number of injected faults.
func (in *Injector) TotalInjected() uint64 {
	var t uint64
	for _, n := range in.injected {
		t += n
	}
	return t
}

// next is a splitmix64 step.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pick decides whether a fault fires on this event, and which.
func (in *Injector) pick(k eventKind) (Fault, bool) {
	in.events++
	if !in.oneShotDone && in.events >= in.oneShotAt && eligible(in.oneShotFault, k) {
		in.oneShotDone = true
		in.injected[in.oneShotFault]++
		return in.oneShotFault, true
	}
	if in.rate <= 0 {
		return 0, false
	}
	if float64(in.next()>>11)/(1<<53) >= in.rate {
		return 0, false
	}
	var cands []Fault
	for _, f := range in.faults {
		if eligible(f, k) {
			cands = append(cands, f)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	f := cands[in.next()%uint64(len(cands))]
	in.injected[f]++
	return f, true
}

// corruptState applies a state fault directly to the encoder's live state.
func (in *Injector) corruptState(f Fault) {
	st := in.enc.State()
	switch f {
	case FlipID:
		st.ID ^= 1 << (in.next() & 63)
	case TruncateStack:
		if n := len(st.Stack); n > 0 {
			st.Stack = st.Stack[:n-1]
		}
	}
}

// BeforeCall implements minivm.Probes.
func (in *Injector) BeforeCall(site minivm.SiteRef, target minivm.MethodRef) uint8 {
	if f, ok := in.pick(evCall); ok {
		switch f {
		case DropCall:
			in.enc.Health.DroppedEvents++
			return tokDropped
		case UnknownSite:
			// A site label the plan never assigned: the encoder finds no
			// payload and the event silently does nothing, exactly like a
			// call from unanalysed code.
			site.Site += 1 << 20
		default:
			in.corruptState(f)
		}
	}
	return in.enc.BeforeCall(site, target)
}

// AfterCall implements minivm.Probes.
func (in *Injector) AfterCall(site minivm.SiteRef, target minivm.MethodRef, token uint8) {
	if token&tokDropped != 0 {
		return
	}
	if f, ok := in.pick(evReturn); ok {
		switch f {
		case DropReturn:
			in.enc.Health.DroppedEvents++
			return
		default:
			in.corruptState(f)
		}
	}
	in.enc.AfterCall(site, target, token)
}

// Enter implements minivm.Probes.
func (in *Injector) Enter(m minivm.MethodRef) uint8 {
	if f, ok := in.pick(evEnter); ok {
		switch f {
		case DropEnter:
			in.enc.Health.DroppedEvents++
			return tokDropped
		default:
			in.corruptState(f)
		}
	}
	return in.enc.Enter(m)
}

// Exit implements minivm.Probes.
func (in *Injector) Exit(m minivm.MethodRef, token uint8) {
	if token&tokDropped != 0 {
		return
	}
	if f, ok := in.pick(evExit); ok {
		switch f {
		case DropExit:
			in.enc.Health.DroppedEvents++
			return
		default:
			in.corruptState(f)
		}
	}
	in.enc.Exit(m, token)
}

// BeginTask implements minivm.TaskProbes: task boundaries are never
// injected — they are the VM's own scheduling, not probe traffic.
func (in *Injector) BeginTask(entry minivm.MethodRef) { in.enc.BeginTask(entry) }

var _ minivm.Probes = (*Injector)(nil)
var _ minivm.TaskProbes = (*Injector)(nil)
