package verify

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Text renders the report for terminals: one line per finding, or a
// one-line certificate with the verified-surface statistics when clean.
// Output is deterministic (findings are generated in sorted order).
func (r *Report) Text() string {
	src := r.Source
	if src == "" {
		src = "<memory>"
	}
	var b strings.Builder
	if r.Clean() {
		fmt.Fprintf(&b, "%s: clean — %d nodes, %d edges, %d sites (%d virtual), %d piece starts, %d push edges, capacity %d",
			src, r.Stats.Nodes, r.Stats.Edges, r.Stats.Sites, r.Stats.VirtualSites,
			r.Stats.PieceStarts, r.Stats.PushEdges, r.Stats.MaxCapacity)
		if r.Stats.CPTSets > 0 {
			fmt.Fprintf(&b, ", %d cpt sets", r.Stats.CPTSets)
		}
		if r.Stats.CoverageHoles > 0 {
			fmt.Fprintf(&b, " (%d ids unused by dispatch inflation)", r.Stats.CoverageHoles)
		}
		b.WriteString("\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%s: %d finding(s)\n", src, len(r.Findings))
	for _, d := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", d.String())
	}
	return b.String()
}

// JSON renders the report as an indented JSON document with a trailing
// newline. Findings marshal as an empty array, never null, so consumers
// can index unconditionally.
func (r *Report) JSON() string {
	shadow := *r
	if shadow.Findings == nil {
		shadow.Findings = []Diagnostic{}
	}
	out, err := json.MarshalIndent(&shadow, "", "  ")
	if err != nil {
		// Report is a plain data struct; this cannot happen.
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(out) + "\n"
}
