// Package verify statically certifies that an encoding analysis is sound:
// that every runtime encoding the spec can produce decodes to exactly one
// calling context. The dynamic test suites observe this property on the
// executions they happen to run; the verifier proves it for all executions,
// by re-deriving the interval structure of Algorithms 1 and 2 from the
// spec's addition values and checking every invariant the decoder relies
// on.
//
// The checks, each guarding a part of the paper:
//
//   - structure: the spec's maps reference only nodes, edges, and call sites
//     that exist in its graph (a corrupted or mismatched .dpa violates this
//     first).
//   - push-kind / recursion-anchored: piece-starting edges carry a
//     recursion/pruned kind, and every recursive edge's target is an anchor
//     (Section 2 via Algorithm 2: each cyclic step starts a piece with
//     reserved width 1).
//   - forward-acyclic: the graph minus push edges is acyclic — every
//     recursive cycle crosses a push edge, so bottom-up decoding terminates.
//   - coverage: every node lies in at least one piece start's territory
//     (Section 3.2; orphan roots under selective encoding must themselves be
//     anchors).
//   - intervals: per piece start, the incoming-addition intervals
//     [AV, AV+ICC) of every territory node are pairwise disjoint, with the
//     node's ICC the tight upper bound — the injectivity core of
//     Algorithm 1. Note that the intervals need not cover [0, ICC) exactly:
//     a virtual site's single addition value is the maximum over its
//     dispatch targets and anchors, which deliberately inflates ICC and
//     leaves unused gaps (the paper's ICC vs NC distinction); the verifier
//     reports the gap total as a statistic, not a finding.
//   - capacity: no piece's ICC exceeds the configured integer limit, so
//     runtime additions cannot overflow (Algorithm 2's guarantee).
//   - virtual-site-av: one addition value per call site even under dynamic
//     dispatch — per-edge values, when present (PCCE mode), must agree at
//     every virtual site.
//   - cpt-*: the call-path-tracking plan is closed under the hazard rules of
//     Section 4.1: one SID per node, every call site carries the expectation
//     its dispatch targets share.
//
// Findings are deterministic: same input, same findings, same order.
package verify

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"deltapath/internal/analysisio"
	"deltapath/internal/callgraph"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
)

// Options configures a verification run.
type Options struct {
	// MaxID is the inclusive encoding-integer limit pieces must fit in.
	// Zero means 2^63-1, matching core.Encode's default.
	MaxID uint64
	// Workers sets how many goroutines prove territory obligations
	// concurrently (the per-territory interval checks are independent).
	// 0 or 1 means serial. Reports are byte-identical for every worker
	// count: obligations are merged back in start order.
	Workers int
}

// Diagnostic is one finding: a violated invariant, located as precisely as
// the check allows.
type Diagnostic struct {
	// Check names the violated invariant (e.g. "intervals", "coverage").
	Check string `json:"check"`
	// Node is the node the finding is anchored to, when node-scoped.
	Node string `json:"node,omitempty"`
	// Site is the call site ("Class.method@label"), when site-scoped.
	Site string `json:"site,omitempty"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
}

func (d Diagnostic) String() string {
	s := "[" + d.Check + "]"
	if d.Node != "" {
		s += " node=" + d.Node
	}
	if d.Site != "" {
		s += " site=" + d.Site
	}
	return s + " " + d.Detail
}

// Stats summarizes what was verified. CoverageHoles counts encoding IDs
// reserved by ICC inflation that no path produces (see the package comment:
// gaps are expected under virtual dispatch, and are a measure of how much
// space the single-addition-value design trades for dispatch-free sites).
type Stats struct {
	Nodes            int    `json:"nodes"`
	Edges            int    `json:"edges"`
	Sites            int    `json:"sites"`
	VirtualSites     int    `json:"virtual_sites"`
	PieceStarts      int    `json:"piece_starts"`
	PushEdges        int    `json:"push_edges"`
	CPTSets          int    `json:"cpt_sets"`
	IntervalsChecked int    `json:"intervals_checked"`
	MaxCapacity      uint64 `json:"max_capacity"`
	CoverageHoles    uint64 `json:"coverage_holes"`
}

// Report is the outcome of one verification.
type Report struct {
	// Source identifies the verified artifact (file path or program name).
	Source string `json:"source"`
	Stats  Stats  `json:"stats"`
	// Findings is empty iff the analysis is certified sound.
	Findings []Diagnostic `json:"findings"`
	// Delta is set by CheckDelta only: how much proof work was reused.
	Delta *DeltaInfo `json:"delta,omitempty"`
	// Certificate is the reusable proof state, set iff the report is clean
	// (see certificate.go). Excluded from the rendered surfaces.
	Certificate *Certificate `json:"-"`
}

// Clean reports whether no invariant was violated.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

func (r *Report) add(check, node, site, format string, args ...any) {
	r.Findings = append(r.Findings, Diagnostic{
		Check:  check,
		Node:   node,
		Site:   site,
		Detail: fmt.Sprintf(format, args...),
	})
}

// CheckFile loads a .dpa analysis file and verifies it. An unloadable file
// yields a report with a single "load" finding rather than an error: a
// corrupt artifact is a verification outcome, not a tool failure.
func CheckFile(path string, opts Options) *Report {
	data, err := os.ReadFile(path)
	if err != nil {
		return &Report{Source: path, Findings: []Diagnostic{{Check: "load", Detail: err.Error()}}}
	}
	rep := CheckBytes(data, opts)
	rep.Source = path
	return rep
}

// CheckBytes verifies a .dpa analysis held in memory. It never panics and
// always terminates, whatever the bytes — the contract the fuzz target
// pins.
func CheckBytes(data []byte, opts Options) *Report {
	bundle, err := analysisio.Load(bytes.NewReader(data))
	if err != nil {
		return &Report{Findings: []Diagnostic{{Check: "load", Detail: err.Error()}}}
	}
	return CheckBundle(bundle, opts)
}

// CheckBundle verifies a restored analysis bundle.
func CheckBundle(b *analysisio.Bundle, opts Options) *Report {
	return Check(b.Spec, b.CPT, opts)
}

// Check verifies an encoding spec (and its CPT plan, which may be nil) in
// memory.
func Check(spec *encoding.Spec, plan *cpt.Plan, opts Options) *Report {
	// Findings starts non-nil so a clean report marshals as [], never null.
	rep := &Report{Findings: []Diagnostic{}}
	maxID := opts.MaxID
	if maxID == 0 {
		maxID = math.MaxInt64
	}
	if spec == nil || spec.Graph == nil {
		rep.add("structure", "", "", "no spec/graph to verify")
		return rep
	}
	g := spec.Graph
	rep.Stats = Stats{
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		Sites:        g.NumSites(),
		VirtualSites: g.NumVirtualSites(),
		PushEdges:    len(spec.Push),
	}
	if err := g.Validate(); err != nil {
		rep.add("structure", "", "", "%v", err)
		return rep
	}

	checkStructure(rep, spec)
	pushOK := checkPushEdges(rep, spec)
	checkVirtualAV(rep, spec)

	starts := pieceStarts(spec)
	rep.Stats.PieceStarts = len(starts)

	// Interval verification needs a topological order of the forward
	// (non-push) graph; its existence is itself the recursion invariant.
	var nodeFP []uint64
	var obligations []territoryObligation
	topo, err := g.TopoOrder(pushEdgeSet(spec))
	if err != nil {
		reportForwardCycle(rep, spec)
	} else if pushOK {
		nodeFP = nodeFingerprints(spec)
		obligations = proveTerritories(spec, starts, topo, maxID, opts.Workers)
		checkCoverage(rep, spec, obligations)
		mergeObligations(rep, obligations)
	}

	checkCPT(rep, spec, plan)
	if plan != nil {
		rep.Stats.CPTSets = plan.NumSets
	}
	if rep.Clean() && nodeFP != nil {
		rep.Certificate = buildCertificate(spec, maxID, nodeFP, starts, obligations)
	}
	return rep
}

// checkStructure verifies that every spec map key references an entity of
// the graph. analysisio.Load guarantees this for well-formed files; an
// in-memory spec (or a tampered artifact) may not.
func checkStructure(rep *Report, spec *encoding.Spec) {
	g := spec.Graph
	for _, s := range sortedSites(spec.SiteAV) {
		if len(g.SiteTargets(s)) == 0 {
			rep.add("structure", "", siteName(g, s),
				"addition value %d assigned to a call site that does not exist", spec.SiteAV[s])
		}
	}
	for _, e := range sortedEdges(spec.EdgeAV) {
		if !g.HasEdge(e) {
			rep.add("structure", "", siteName(g, e.Site()),
				"per-edge addition value assigned to nonexistent edge to %s", nameOf(g, e.Callee))
		}
	}
	for _, n := range sortedNodes(spec.Anchors) {
		if n < 0 || int(n) >= g.NumNodes() {
			rep.add("structure", fmt.Sprintf("node#%d", n), "", "anchor is not a node of the graph")
		}
	}
}

// checkPushEdges verifies the piece-starting edges: they must exist, carry
// a call-edge piece kind, and — for recursive edges — target an anchor, so
// that every cyclic step starts a piece with its own reserved width
// (Algorithm 2's handling of PCCE recursion). It reports whether the push
// set is trustworthy enough for the interval checks to proceed.
func checkPushEdges(rep *Report, spec *encoding.Spec) bool {
	g := spec.Graph
	ok := true
	for _, e := range sortedPushEdges(spec.Push) {
		kind := spec.Push[e]
		if !g.HasEdge(e) {
			rep.add("structure", "", siteName(g, e.Site()),
				"push edge to %s does not exist in the graph", nameOf(g, e.Callee))
			ok = false
			continue
		}
		switch kind {
		case encoding.PieceRecursion:
			if !spec.Anchors[e.Callee] {
				rep.add("recursion-anchored", nameOf(g, e.Callee), siteName(g, e.Site()),
					"recursive edge target is not an anchor: the cycle through this edge has no piece boundary")
			}
		case encoding.PiecePruned:
			// Pruned edges may target any node; decoding from an arbitrary
			// start is sound whenever the anchor-rooted intervals are.
		default:
			rep.add("push-kind", "", siteName(g, e.Site()),
				"push edge to %s has kind %v; only recursion/pruned edges start pieces",
				nameOf(g, e.Callee), kind)
			ok = false
		}
	}
	return ok
}

// reportForwardCycle names one cycle of the forward graph: a strongly
// connected component not broken by any push edge.
func reportForwardCycle(rep *Report, spec *encoding.Spec) {
	g := spec.Graph
	push := pushEdgeSet(spec)
	// SCC over the forward graph: collapse using only non-push edges by
	// checking components of the full graph won't do (push edges may link
	// them), so run a small Tarjan-equivalent via Kosaraju on filtered
	// edges. Graphs here are small; simplicity over speed.
	comp := forwardSCC(g, push)
	bySize := map[int][]callgraph.NodeID{}
	for n, c := range comp {
		bySize[c] = append(bySize[c], callgraph.NodeID(n))
	}
	keys := make([]int, 0, len(bySize))
	for c := range bySize {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	for _, c := range keys {
		members := bySize[c]
		if len(members) < 2 && !hasForwardSelfLoop(g, push, members[0]) {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		names := make([]string, 0, 5)
		for i, m := range members {
			if i == 5 {
				names = append(names, "...")
				break
			}
			names = append(names, nameOf(g, m))
		}
		rep.add("forward-acyclic", names[0], "",
			"cycle not broken by any recursion push edge: {%s} — decoding cannot terminate",
			joinNames(names))
		return // one witness cycle is enough; the finding is structural
	}
	rep.add("forward-acyclic", "", "", "forward graph is cyclic")
}

func hasForwardSelfLoop(g *callgraph.Graph, push map[callgraph.Edge]bool, n callgraph.NodeID) bool {
	for _, e := range g.Out(n) {
		if e.Callee == n && !push[e] {
			return true
		}
	}
	return false
}

// checkCoverage verifies that every node lies in at least one piece start's
// territory: a node outside every territory has no anchor-relative encoding
// space, so no piece ending there could ever decode (core.addOrphanAnchors
// exists precisely to prevent this). Membership comes from the already-walked
// territory obligations, so the DFS runs once per territory, not twice.
func checkCoverage(rep *Report, spec *encoding.Spec, obs []territoryObligation) {
	g := spec.Graph
	covered := make([]bool, g.NumNodes())
	for _, ob := range obs {
		for _, n := range ob.members {
			covered[n] = true
		}
	}
	for _, n := range g.Nodes() {
		if !covered[n] {
			rep.add("coverage", nameOf(g, n), "",
				"node is outside every piece start's territory: contexts ending here are undecodable")
		}
	}
}

// interval is one in-edge's claim on a node's encoding space: [av, av+width).
type interval struct {
	e     callgraph.Edge
	av    uint64
	width uint64
}

// territoryObligation is the unit of proof work the verifier partitions by:
// one piece start's territory walk plus its interval check, with the
// findings and statistics it contributes to the report. Obligations over
// different starts are independent — the basis of both the Workers parallel
// mode and CheckDelta's reuse.
type territoryObligation struct {
	start    callgraph.NodeID
	members  []callgraph.NodeID // territory nodes, increasing order
	findings []Diagnostic       // capacity/interval findings, emission order

	intervals int    // in-edge intervals derived (Stats.IntervalsChecked)
	holes     uint64 // unused encoding IDs (Stats.CoverageHoles)
	maxCap    uint64 // largest ICC, ≥1 (Stats.MaxCapacity is the max over all)
}

// proveTerritory is the injectivity core for one piece start: recompute
// every territory node's inflated calling-context count (ICC) bottom-up
// from the spec's addition values, and require the incoming intervals to be
// pairwise disjoint with ICC their tight bound. Disjoint intervals make the
// decoder's greedy rule — largest addition value not exceeding the
// remaining ID — invert every path sum uniquely (Section 3.1); recomputing
// ICC rather than trusting a stored one means a tampered addition value
// cannot hide.
func proveTerritory(spec *encoding.Spec, start callgraph.NodeID,
	topo []callgraph.NodeID, maxID uint64) territoryObligation {

	g := spec.Graph
	ob := territoryObligation{start: start, maxCap: 1}
	sub := &Report{}
	nodes, edges := territory(spec, start)
	icc := make(map[callgraph.NodeID]uint64, len(nodes))
	icc[start] = 1
	for _, n := range topo {
		if n == start || !nodes[n] {
			continue
		}
		var in []interval
		for _, e := range g.In(n) {
			if !edges[e] {
				continue
			}
			w, ok := icc[e.Caller]
			if !ok {
				// Caller is a boundary anchor of this territory: paths
				// within the piece do not continue through it, so the
				// edge contributes no range here.
				continue
			}
			in = append(in, interval{e: e, av: spec.AV(e), width: w})
		}
		if len(in) == 0 {
			continue // territory-boundary anchor: in-territory in-edges all retreat
		}
		sort.Slice(in, func(i, j int) bool {
			if in[i].av != in[j].av {
				return in[i].av < in[j].av
			}
			return less(in[i].e, in[j].e)
		})
		ob.intervals += len(in)
		nodeOK := true
		var iccN uint64
		for i, iv := range in {
			if iv.av > maxID-iv.width {
				sub.add("capacity", nameOf(g, n), siteName(g, iv.e.Site()),
					"piece capacity overflows the integer limit: addition value %d + width %d > %d (territory of %s)",
					iv.av, iv.width, maxID, nameOf(g, start))
				nodeOK = false
				iccN = maxID // clamp so downstream arithmetic stays defined
				continue
			}
			if end := iv.av + iv.width; end > iccN {
				iccN = end
			}
			if i+1 < len(in) {
				next := in[i+1]
				if gap := next.av - iv.av; gap < iv.width {
					sub.add("intervals", nameOf(g, n), siteName(g, iv.e.Site()),
						"in-edge ranges overlap in territory of %s: [%d,%d) from %s collides with [%d,...) from %s — two paths share an encoding",
						nameOf(g, start), iv.av, iv.av+iv.width, nameOf(g, iv.e.Caller),
						next.av, nameOf(g, next.e.Caller))
					nodeOK = false
				}
			}
		}
		icc[n] = iccN
		if iccN > ob.maxCap {
			ob.maxCap = iccN
		}
		if nodeOK {
			// Unused IDs below the bound: the price of one addition
			// value per virtual site (ICC inflation), reported as a
			// statistic. Disjointness makes the subtraction safe.
			used := uint64(0)
			for _, iv := range in {
				used += iv.width
			}
			ob.holes += iccN - used
		}
	}
	ob.members = sortedNodes(nodes)
	ob.findings = sub.Findings
	return ob
}

// proveTerritories runs every obligation, optionally across a worker pool.
// The result slice is indexed like starts, so the merge order — and with it
// every rendered byte of the report — is identical for any worker count.
func proveTerritories(spec *encoding.Spec, starts []callgraph.NodeID,
	topo []callgraph.NodeID, maxID uint64, workers int) []territoryObligation {

	obs := make([]territoryObligation, len(starts))
	if workers > len(starts) {
		workers = len(starts)
	}
	if workers <= 1 {
		for i, s := range starts {
			obs[i] = proveTerritory(spec, s, topo, maxID)
		}
		return obs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(starts) {
					return
				}
				obs[i] = proveTerritory(spec, starts[i], topo, maxID)
			}
		}()
	}
	wg.Wait()
	return obs
}

// mergeObligations folds the proven obligations into the report in start
// order: interval/capacity findings after the coverage findings (the order
// the serial verifier has always emitted), and the additive statistics.
func mergeObligations(rep *Report, obs []territoryObligation) {
	for _, ob := range obs {
		rep.Findings = append(rep.Findings, ob.findings...)
		rep.Stats.IntervalsChecked += ob.intervals
		rep.Stats.CoverageHoles += ob.holes
		if ob.maxCap > rep.Stats.MaxCapacity {
			rep.Stats.MaxCapacity = ob.maxCap
		}
	}
}

// checkVirtualAV verifies the single-addition-value property at virtual
// sites. With SiteAV it holds by construction; a per-edge spec (PCCE mode)
// must assign every dispatch target of a site the same value, or the
// runtime's single addition at the site is wrong for some target — exactly
// the dispatch conflict DeltaPath's CAV/ICC machinery eliminates.
func checkVirtualAV(rep *Report, spec *encoding.Spec) {
	g := spec.Graph
	if !spec.PerEdge {
		if len(spec.EdgeAV) > 0 {
			rep.add("virtual-site-av", "", "",
				"spec carries %d per-edge addition values but is not per-edge: values would be silently ignored",
				len(spec.EdgeAV))
		}
		return
	}
	for _, s := range g.Sites() {
		targets := g.SiteTargets(s)
		if len(targets) < 2 {
			continue
		}
		want := spec.EdgeAV[targets[0]]
		for _, e := range targets[1:] {
			if got := spec.EdgeAV[e]; got != want {
				rep.add("virtual-site-av", "", siteName(g, s),
					"dispatch targets disagree on the addition value: %s gets %d, %s gets %d",
					nameOf(g, targets[0].Callee), want, nameOf(g, e.Callee), got)
			}
		}
	}
}

// checkCPT verifies the call-path-tracking plan is closed under the hazard
// rules: one dense SID per node, and every call site carries the one SID
// all of its dispatch targets share — the comparison the runtime makes at
// every function entry (Section 4.1).
func checkCPT(rep *Report, spec *encoding.Spec, plan *cpt.Plan) {
	if plan == nil {
		return
	}
	g := spec.Graph
	if len(plan.SID) != g.NumNodes() {
		rep.add("cpt-sids", "", "", "SID table has %d entries for %d nodes", len(plan.SID), g.NumNodes())
		return
	}
	for _, n := range g.Nodes() {
		if sid := plan.SID[n]; sid < 0 || int(sid) >= plan.NumSets {
			rep.add("cpt-sids", nameOf(g, n), "", "SID %d outside [0,%d)", sid, plan.NumSets)
		}
	}
	for _, s := range sortedSites(plan.Expected) {
		if len(g.SiteTargets(s)) == 0 {
			rep.add("cpt-closure", "", siteName(g, s), "expectation recorded for a call site that does not exist")
		}
	}
	for _, s := range g.Sites() {
		targets := g.SiteTargets(s)
		if len(targets) == 0 {
			continue
		}
		want, ok := plan.Expected[s]
		if !ok {
			rep.add("cpt-closure", "", siteName(g, s),
				"call site has no saved SID expectation: hazardous unexpected call paths through it are undetectable")
			continue
		}
		for _, e := range targets {
			if plan.SID[e.Callee] != want {
				rep.add("cpt-closure", nameOf(g, e.Callee), siteName(g, s),
					"dispatch target carries SID %d but the site expects %d: the sets are not merged",
					plan.SID[e.Callee], want)
			}
		}
	}
}

// --- helpers ---

// pieceStarts returns the nodes at which pieces begin — the entry plus
// every anchor — in increasing node order.
func pieceStarts(spec *encoding.Spec) []callgraph.NodeID {
	seen := make(map[callgraph.NodeID]bool, len(spec.Anchors)+1)
	if entry, ok := spec.Graph.Entry(); ok {
		seen[entry] = true
	}
	for n := range spec.Anchors {
		if n >= 0 && int(n) < spec.Graph.NumNodes() {
			seen[n] = true
		}
	}
	return sortedNodes(seen)
}

func pushEdgeSet(spec *encoding.Spec) map[callgraph.Edge]bool {
	set := make(map[callgraph.Edge]bool, len(spec.Push))
	for e := range spec.Push {
		set[e] = true
	}
	return set
}

// territory computes the nodes and edges reachable from start by the
// bounded DFS of Section 3.2: traversal retreats at other anchors (which
// still belong to the territory as its boundary) and never crosses push
// edges — the same walk the decoder and core.identifyTerritories use.
func territory(spec *encoding.Spec, start callgraph.NodeID) (map[callgraph.NodeID]bool, map[callgraph.Edge]bool) {
	g := spec.Graph
	nodes := map[callgraph.NodeID]bool{start: true}
	edges := make(map[callgraph.Edge]bool)
	work := []callgraph.NodeID{start}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if v != start && spec.Anchors[v] {
			continue // boundary anchor: belongs to the territory, not traversed
		}
		for _, e := range g.Out(v) {
			if _, pushed := spec.Push[e]; pushed {
				continue
			}
			edges[e] = true
			if !nodes[e.Callee] {
				nodes[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	return nodes, edges
}

func territoryNodes(spec *encoding.Spec, start callgraph.NodeID) []callgraph.NodeID {
	nodes, _ := territory(spec, start)
	return sortedNodes(nodes)
}

// forwardSCC returns component numbers over the graph restricted to
// non-push edges (iterative Kosaraju; graphs are analysis-sized).
func forwardSCC(g *callgraph.Graph, push map[callgraph.Edge]bool) []int {
	n := g.NumNodes()
	order := make([]callgraph.NodeID, 0, n)
	seen := make([]bool, n)
	type frame struct {
		v  callgraph.NodeID
		ei int
	}
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		stack := []frame{{v: callgraph.NodeID(s)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			out := g.Out(f.v)
			for f.ei < len(out) {
				e := out[f.ei]
				f.ei++
				if push[e] || seen[e.Callee] {
					continue
				}
				seen[e.Callee] = true
				stack = append(stack, frame{v: e.Callee})
				advanced = true
				break
			}
			if !advanced {
				order = append(order, f.v)
				stack = stack[:len(stack)-1]
			}
		}
	}
	// Transpose pass in reverse finishing order.
	rin := make([][]callgraph.NodeID, n)
	for _, id := range g.Nodes() {
		for _, e := range g.Out(id) {
			if !push[e] {
				rin[e.Callee] = append(rin[e.Callee], e.Caller)
			}
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	c := 0
	for i := len(order) - 1; i >= 0; i-- {
		root := order[i]
		if comp[root] != -1 {
			continue
		}
		work := []callgraph.NodeID{root}
		comp[root] = c
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]
			for _, u := range rin[v] {
				if comp[u] == -1 {
					comp[u] = c
					work = append(work, u)
				}
			}
		}
		c++
	}
	return comp
}

// nameOf is a bounds-checked g.Name: spec maps in a tampered in-memory
// spec may reference node IDs the graph does not have, and diagnostics
// must never panic.
func nameOf(g *callgraph.Graph, id callgraph.NodeID) string {
	if id < 0 || int(id) >= g.NumNodes() {
		return fmt.Sprintf("node#%d", id)
	}
	return g.Name(id)
}

func siteName(g *callgraph.Graph, s callgraph.Site) string {
	return fmt.Sprintf("%s@%d", nameOf(g, s.Caller), s.Label)
}

func less(a, b callgraph.Edge) bool {
	if a.Caller != b.Caller {
		return a.Caller < b.Caller
	}
	if a.Label != b.Label {
		return a.Label < b.Label
	}
	return a.Callee < b.Callee
}

func sortedNodes[V any](m map[callgraph.NodeID]V) []callgraph.NodeID {
	out := make([]callgraph.NodeID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedSites[V any](m map[callgraph.Site]V) []callgraph.Site {
	out := make([]callgraph.Site, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Label < out[j].Label
	})
	return out
}

func sortedEdges[V any](m map[callgraph.Edge]V) []callgraph.Edge {
	out := make([]callgraph.Edge, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func sortedPushEdges(m map[callgraph.Edge]encoding.PieceKind) []callgraph.Edge {
	return sortedEdges(m)
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
