// Incremental verification: CheckDelta re-proves a grown spec against the
// certificate of its previously-verified ancestor, re-running only the
// territory obligations the extension dirtied. The global checks (structure,
// push kinds, virtual-site agreement, the full topological acyclicity
// witness, CPT closure) are linear-time and always re-run in full — only the
// per-territory interval proofs, the superlinear part, are reused.
//
// Soundness rests on the frame condition: a territory obligation may be
// reused only if its certified fingerprint re-derives identically from the
// current spec's node fingerprints (certificate.go). When it does, the
// territory's bounded DFS, ICC recurrence, and interval comparisons are
// byte-identical to what a full Check would run, so its (empty) finding list
// and statistics transfer verbatim. When it does not — or when the
// certificate predates an incompatible change of graph, limits, or mode —
// CheckDelta returns ErrStaleCertificate and the caller falls back to the
// full Check, so a stale or tampered certificate can cost time, never
// soundness.
package verify

import (
	"errors"
	"fmt"
	"math"

	"deltapath/internal/callgraph"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
)

// ErrStaleCertificate reports that a certificate cannot prove the given
// spec incrementally: the spec changed in a way the certificate's frame
// conditions do not cover (or the certificate itself is damaged). The
// remedy is always a full Check.
var ErrStaleCertificate = errors.New("verify: certificate is stale for this spec")

func stalef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrStaleCertificate, fmt.Sprintf(format, args...))
}

// CheckDelta verifies spec incrementally against prev, the certificate of a
// previously-verified ancestor spec, re-proving only the territories named
// in dirty (piece-start node IDs, from core.ExtendStats.DirtyTerritoryList)
// plus any territory the certificate does not cover. Every global check
// still runs in full. On success the report is accept-equivalent to a full
// Check — identical findings and statistics — with Report.Delta describing
// the reuse; on ErrStaleCertificate the caller must fall back to Check.
// CheckDelta never panics, whatever the certificate contains.
func CheckDelta(prev *Certificate, spec *encoding.Spec, plan *cpt.Plan,
	dirty []callgraph.NodeID, opts Options) (*Report, error) {

	maxID := opts.MaxID
	if maxID == 0 {
		maxID = math.MaxInt64
	}
	if prev == nil {
		return nil, stalef("no certificate")
	}
	if spec == nil || spec.Graph == nil {
		return nil, stalef("no spec/graph to verify")
	}
	g := spec.Graph
	if prev.MaxID != maxID {
		return nil, stalef("certified under MaxID %d, verifying under %d", prev.MaxID, maxID)
	}
	if prev.PerEdge != spec.PerEdge {
		return nil, stalef("addition-value mode changed (per-edge %v -> %v)", prev.PerEdge, spec.PerEdge)
	}
	entry, ok := g.Entry()
	if !ok || entry != prev.Entry {
		return nil, stalef("entry node changed")
	}
	if g.NumNodes() < prev.NumNodes || g.NumEdges() < prev.NumEdges {
		return nil, stalef("graph shrank (%d/%d nodes, %d/%d edges): extensions are append-only",
			g.NumNodes(), prev.NumNodes, g.NumEdges(), prev.NumEdges)
	}
	if len(prev.NodeFP) != prev.NumNodes {
		return nil, stalef("certificate carries %d node fingerprints for %d nodes", len(prev.NodeFP), prev.NumNodes)
	}
	if err := g.Validate(); err != nil {
		return nil, stalef("graph does not validate: %v", err)
	}

	// The global, linear-time checks: identical to Check, run in full.
	rep := &Report{Findings: []Diagnostic{}}
	rep.Stats = Stats{
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		Sites:        g.NumSites(),
		VirtualSites: g.NumVirtualSites(),
		PushEdges:    len(spec.Push),
	}
	checkStructure(rep, spec)
	pushOK := checkPushEdges(rep, spec)
	checkVirtualAV(rep, spec)

	starts := pieceStarts(spec)
	rep.Stats.PieceStarts = len(starts)

	// The acyclicity witness is re-validated from scratch: TopoOrder is the
	// one global proof whose cost is linear anyway, and the dirty territory
	// proofs need the order regardless.
	var nodeFP []uint64
	var obligations []territoryObligation
	delta := &DeltaInfo{}
	topo, err := g.TopoOrder(pushEdgeSet(spec))
	if err != nil {
		reportForwardCycle(rep, spec)
	} else if pushOK {
		nodeFP = nodeFingerprints(spec)
		obligations, err = deltaObligations(prev, spec, nodeFP, starts, topo, maxID, dirty, opts.Workers, delta)
		if err != nil {
			return nil, err
		}
		checkCoverage(rep, spec, obligations)
		mergeObligations(rep, obligations)
	}

	checkCPT(rep, spec, plan)
	if plan != nil {
		rep.Stats.CPTSets = plan.NumSets
	}
	rep.Delta = delta
	if rep.Clean() && nodeFP != nil {
		rep.Certificate = buildCertificate(spec, maxID, nodeFP, starts, obligations)
	}
	return rep, nil
}

// deltaObligations partitions the current piece starts into reused and
// re-proven obligations. A start is dirty — re-proven from scratch — when it
// is named in the dirty list or absent from the certificate; every other
// start must satisfy the frame condition (its certified fingerprint
// re-derives from the current node fingerprints) or the whole delta is
// stale. Certified territories for starts that no longer exist are ignored:
// the report concerns only the current starts.
func deltaObligations(prev *Certificate, spec *encoding.Spec, nodeFP []uint64,
	starts, topo []callgraph.NodeID, maxID uint64, dirty []callgraph.NodeID,
	workers int, delta *DeltaInfo) ([]territoryObligation, error) {

	dirtySet := make(map[callgraph.NodeID]bool, len(dirty))
	for _, n := range dirty {
		dirtySet[n] = true
	}

	obs := make([]territoryObligation, len(starts))
	var proveIdx []int
	for i, s := range starts {
		tc, certified := prev.Territories[s]
		if !certified || dirtySet[s] {
			proveIdx = append(proveIdx, i)
			continue
		}
		// Frame condition. Bounds first: a damaged certificate must fail
		// cleanly, not index out of range.
		for _, m := range tc.Members {
			if m < 0 || int(m) >= len(nodeFP) {
				return nil, stalef("territory of node %d lists out-of-range member %d", s, m)
			}
		}
		if territoryFP(s, tc.Members, nodeFP, tc.Intervals, tc.Holes, tc.MaxCap) != tc.FP {
			return nil, stalef("territory of node %d changed but is not in the dirty list", s)
		}
		obs[i] = territoryObligation{
			start:     s,
			members:   tc.Members,
			intervals: tc.Intervals,
			holes:     tc.Holes,
			maxCap:    tc.MaxCap,
		}
	}

	// Re-prove the dirty territories, with the same worker pool and the
	// same per-obligation code path as the full verifier.
	proveStarts := make([]callgraph.NodeID, len(proveIdx))
	for k, i := range proveIdx {
		proveStarts[k] = starts[i]
	}
	proved := proveTerritories(spec, proveStarts, topo, maxID, workers)
	for k, i := range proveIdx {
		obs[i] = proved[k]
	}

	delta.DirtyTerritories = len(proveIdx)
	delta.ReusedTerritories = len(starts) - len(proveIdx)
	for _, ob := range proved {
		delta.ObligationsChecked += ob.intervals
	}
	for _, ob := range obs {
		delta.ObligationsTotal += ob.intervals
	}
	return obs, nil
}
