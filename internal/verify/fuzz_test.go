package verify

import (
	"bytes"
	"path/filepath"
	"testing"

	"deltapath/internal/analysisio"
	"deltapath/internal/cha"
)

// FuzzVerify pins the verifier's robustness contract: CheckBytes never
// panics and always terminates, whatever bytes it is handed — corrupt
// magic, truncated sections, bit-flipped addition values, implausible
// counts. It additionally asserts determinism: verifying the same bytes
// twice renders byte-identical reports, the property the golden tests and
// the chaos post-heal hook rely on.
func FuzzVerify(f *testing.F) {
	// Seeds: well-formed analyses over two structurally different corpus
	// programs (virtual dispatch + dynamic loading; recursion), then
	// truncations at structural boundaries and targeted mutations. The
	// committed corpus under testdata/fuzz/FuzzVerify mirrors these.
	for _, name := range []string{"dynload.mv", "recursion.mv"} {
		spec, plan := buildFile(f, filepath.Join("..", "..", "testdata", name), cha.EncodingAll)
		var buf bytes.Buffer
		if err := analysisio.Save(&buf, spec, plan); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(append([]byte(nil), valid...))
		f.Add(valid[:0])
		f.Add(valid[:3])            // mid-magic
		f.Add(valid[:5])            // magic only
		f.Add(valid[:len(valid)/2]) // mid-structure
		f.Add(valid[:len(valid)-1]) // truncated tail
		for _, at := range []int{8, len(valid) / 3, 2 * len(valid) / 3} {
			mut := append([]byte(nil), valid...)
			mut[at] ^= 0x40
			f.Add(mut)
		}
	}
	f.Add([]byte("DPA2\n\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")) // implausible counts
	f.Add([]byte("DPA1\nlegacy"))                                   // wrong version

	f.Fuzz(func(t *testing.T, data []byte) {
		rep := CheckBytes(data, Options{})
		if rep == nil {
			t.Fatal("CheckBytes returned nil report")
		}
		again := CheckBytes(data, Options{})
		if rep.JSON() != again.JSON() {
			t.Fatalf("nondeterministic verification:\n%s\nvs\n%s", rep.JSON(), again.JSON())
		}
	})
}
