// Certificates make verification incremental: a clean Check additionally
// emits a Certificate — per-territory proof fingerprints plus the inputs the
// global checks consumed — and CheckDelta (delta.go) later re-proves only
// the territories an extension dirtied, reusing every fingerprint-matching
// territory's obligation verbatim.
//
// The fingerprint discipline is what makes reuse sound. Every node carries a
// structural fingerprint over exactly the inputs the territory obligations
// read from it: its anchor flag and, per outgoing edge in insertion order,
// the edge label, callee, push kind, and effective addition value. A
// territory's fingerprint then hashes its start, its member list, the
// members' node fingerprints, and the obligation's recorded statistics.
// Because a territory's bounded DFS visits only its members and retreats at
// member anchors, an unchanged member fingerprint set implies the identical
// traversal, the identical ICC recurrence, and therefore the identical
// (empty) finding list — the frame condition CheckDelta enforces before
// reusing anything.
package verify

import (
	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
)

// Certificate is the reusable proof state of one clean verification: enough
// to re-prove a grown spec by re-checking only dirty territories. It is
// immutable once returned and safe to share across goroutines and epochs.
type Certificate struct {
	// MaxID is the encoding-integer limit the capacity obligations were
	// proven under (after defaulting); a delta under a different limit
	// cannot reuse them.
	MaxID uint64
	// PerEdge records the addition-value mode the fingerprints hashed.
	PerEdge bool
	// Entry is the graph's entry node (territory starts depend on it).
	Entry callgraph.NodeID
	// NumNodes/NumEdges are the certified graph's size; an extension may
	// only grow both.
	NumNodes int
	NumEdges int
	// NodeFP holds one structural fingerprint per node, indexed by NodeID.
	NodeFP []uint64
	// Starts are the piece starts, in increasing node order.
	Starts []callgraph.NodeID
	// Territories maps each start to its certified obligation.
	Territories map[callgraph.NodeID]TerritoryCert
}

// TerritoryCert is one certified per-territory proof obligation: the
// membership its interval check covered and the statistics it contributed,
// sealed by a fingerprint over the obligation's inputs.
type TerritoryCert struct {
	// FP seals (start, members, member node fingerprints, stats): reuse is
	// legal only while it re-derives identically.
	FP uint64
	// Members is the territory's node set in increasing order (boundary
	// anchors included).
	Members []callgraph.NodeID
	// Intervals/Holes/MaxCap are the obligation's Stats contributions.
	Intervals int
	Holes     uint64
	MaxCap    uint64
}

// DeltaInfo reports how much proof work an incremental verification reused,
// attached to CheckDelta reports (and surfaced by dplint -delta and the
// Extend stats). Ratios over these counts are machine-independent: they are
// obligation counts, not timings.
type DeltaInfo struct {
	// DirtyTerritories were re-proven from scratch; ReusedTerritories were
	// accepted on their matching fingerprints.
	DirtyTerritories  int `json:"dirty_territories"`
	ReusedTerritories int `json:"reused_territories"`
	// ObligationsChecked counts the in-edge intervals actually re-derived;
	// ObligationsTotal what a full Check would derive.
	ObligationsChecked int `json:"obligations_checked"`
	ObligationsTotal   int `json:"obligations_total"`
}

// fnv64 is FNV-1a over machine words — the certificate's fingerprint hash.
// Hand-rolled so fingerprints never allocate (hash/fnv works on bytes).
type fnv64 uint64

const fnvOffset64 fnv64 = 14695981039346656037

func (h fnv64) word(v uint64) fnv64 {
	for i := 0; i < 8; i++ {
		h ^= fnv64(v & 0xff)
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// nodeFingerprints hashes, per node, every spec input the territory
// obligations read from that node: anchor flag, then each outgoing edge's
// label, callee, push kind, and effective addition value, in insertion
// order. Two specs whose fingerprints agree on a node set run byte-identical
// territory proofs over that set.
func nodeFingerprints(spec *encoding.Spec) []uint64 {
	g := spec.Graph
	fps := make([]uint64, g.NumNodes())
	for _, n := range g.Nodes() {
		h := fnvOffset64
		if spec.Anchors[n] {
			h = h.word(1)
		} else {
			h = h.word(0)
		}
		for _, e := range g.Out(n) {
			h = h.word(uint64(uint32(e.Label)))
			h = h.word(uint64(uint32(e.Callee)))
			if kind, ok := spec.Push[e]; ok {
				h = h.word(2 + uint64(kind))
			} else {
				h = h.word(1)
			}
			h = h.word(spec.AV(e))
		}
		fps[n] = uint64(h)
	}
	return fps
}

// territoryFP seals one obligation: start, member list, the members' node
// fingerprints, and the obligation's stats. Members must be sorted (they
// are, both when emitted and when stored).
func territoryFP(start callgraph.NodeID, members []callgraph.NodeID,
	nodeFP []uint64, intervals int, holes, maxCap uint64) uint64 {

	h := fnvOffset64.word(uint64(uint32(start))).word(uint64(len(members)))
	for _, m := range members {
		h = h.word(uint64(uint32(m))).word(nodeFP[m])
	}
	return uint64(h.word(uint64(intervals)).word(holes).word(maxCap))
}

// buildCertificate assembles the certificate of a clean check from the
// territory obligations (already proven, in start order).
func buildCertificate(spec *encoding.Spec, maxID uint64,
	nodeFP []uint64, starts []callgraph.NodeID, obs []territoryObligation) *Certificate {

	g := spec.Graph
	entry, _ := g.Entry()
	cert := &Certificate{
		MaxID:       maxID,
		PerEdge:     spec.PerEdge,
		Entry:       entry,
		NumNodes:    g.NumNodes(),
		NumEdges:    g.NumEdges(),
		NodeFP:      nodeFP,
		Starts:      starts,
		Territories: make(map[callgraph.NodeID]TerritoryCert, len(obs)),
	}
	for _, ob := range obs {
		cert.Territories[ob.start] = TerritoryCert{
			FP:        territoryFP(ob.start, ob.members, nodeFP, ob.intervals, ob.holes, ob.maxCap),
			Members:   ob.members,
			Intervals: ob.intervals,
			Holes:     ob.holes,
			MaxCap:    ob.maxCap,
		}
	}
	return cert
}
