package verify

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deltapath/internal/analysisio"
	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/lang"
)

// buildFile runs the full analysis pipeline over a testdata program and
// returns the pieces the verifier consumes.
func buildFile(t testing.TB, path string, setting cha.Setting) (*encoding.Spec, *cpt.Plan) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: parse: %v", path, err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: setting, KeepUnreachable: true})
	if err != nil {
		t.Fatalf("%s: build: %v", path, err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatalf("%s: encode: %v", path, err)
	}
	return res.Spec, cpt.Compute(build.Graph)
}

func mvFiles(t testing.TB) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.mv"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	return paths
}

// TestCleanOnTestdata is the positive half of the verifier's contract:
// every analysis the real pipeline produces, over every testdata program
// and both encoding settings, must certify clean.
func TestCleanOnTestdata(t *testing.T) {
	for _, path := range mvFiles(t) {
		for _, setting := range []cha.Setting{cha.EncodingAll, cha.EncodingApplication} {
			spec, plan := buildFile(t, path, setting)
			rep := Check(spec, plan, Options{})
			if !rep.Clean() {
				t.Errorf("%s (%v): expected clean, got:\n%s", path, setting, rep.Text())
			}
			if rep.Stats.Nodes == 0 || rep.Stats.PieceStarts == 0 {
				t.Errorf("%s (%v): degenerate stats %+v", path, setting, rep.Stats)
			}
		}
	}
}

// TestDetectsLoweredAV proves the injectivity check has teeth: lowering
// some site's nonzero addition value must collide two intervals somewhere.
func TestDetectsLoweredAV(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "dynload.mv"), cha.EncodingAll)
	found := false
	for _, s := range spec.Graph.Sites() {
		av, ok := spec.SiteAV[s]
		if !ok || av == 0 {
			continue
		}
		spec.SiteAV[s] = av - 1
		rep := Check(spec, plan, Options{})
		spec.SiteAV[s] = av
		for _, d := range rep.Findings {
			if d.Check == "intervals" {
				found = true
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no lowered addition value produced an intervals finding")
	}
}

// TestDetectsUnanchoredRecursion removes a recursive edge's target from
// the anchor set; the cycle through it then has no piece boundary.
func TestDetectsUnanchoredRecursion(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "recursion.mv"), cha.EncodingAll)
	var rec callgraph.Edge
	ok := false
	for e, kind := range spec.Push {
		if kind == encoding.PieceRecursion {
			rec, ok = e, true
			break
		}
	}
	if !ok {
		t.Fatal("recursion.mv produced no recursion push edge")
	}
	delete(spec.Anchors, rec.Callee)
	rep := Check(spec, plan, Options{})
	if !hasCheck(rep, "recursion-anchored") {
		t.Fatalf("expected recursion-anchored finding, got:\n%s", rep.Text())
	}
}

// TestDetectsUnbrokenCycle drops a recursion push edge entirely: the
// forward graph keeps the cycle and decoding could not terminate. Not
// every recursion-marked edge lies on a cycle (Algorithm 2 may mark an
// anchor-target edge conservatively), so each is tried in turn — at
// least one must be load-bearing.
func TestDetectsUnbrokenCycle(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "recursion.mv"), cha.EncodingAll)
	var recEdges []callgraph.Edge
	for e, kind := range spec.Push {
		if kind == encoding.PieceRecursion {
			recEdges = append(recEdges, e)
		}
	}
	if len(recEdges) == 0 {
		t.Fatal("recursion.mv produced no recursion push edge")
	}
	found := false
	for _, e := range recEdges {
		kind := spec.Push[e]
		delete(spec.Push, e)
		rep := Check(spec, plan, Options{})
		spec.Push[e] = kind
		if hasCheck(rep, "forward-acyclic") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no dropped recursion push edge produced a forward-acyclic finding")
	}
}

// TestDetectsCapacityOverflow pins the machine-integer bound: an addition
// value at the limit overflows every positive width.
func TestDetectsCapacityOverflow(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "shapes.mv"), cha.EncodingAll)
	for _, s := range spec.Graph.Sites() {
		if _, ok := spec.SiteAV[s]; ok {
			spec.SiteAV[s] = math.MaxInt64
			break
		}
	}
	rep := Check(spec, plan, Options{})
	if !hasCheck(rep, "capacity") {
		t.Fatalf("expected capacity finding, got:\n%s", rep.Text())
	}
}

// TestDetectsVirtualAVDisagreement builds a per-edge spec whose virtual
// site assigns its dispatch targets different addition values.
func TestDetectsVirtualAVDisagreement(t *testing.T) {
	g := callgraph.New()
	main := g.AddNode("app.Main.main", false)
	a := g.AddNode("app.A.f", false)
	b := g.AddNode("app.B.f", false)
	g.SetEntry(main)
	ea := g.AddEdge(main, 0, a)
	eb := g.AddEdge(main, 0, b)
	spec := &encoding.Spec{
		Graph:   g,
		PerEdge: true,
		SiteAV:  map[callgraph.Site]uint64{},
		EdgeAV:  map[callgraph.Edge]uint64{ea: 0, eb: 1},
		Push:    map[callgraph.Edge]encoding.PieceKind{},
		Anchors: map[callgraph.NodeID]bool{},
	}
	rep := Check(spec, nil, Options{})
	if !hasCheck(rep, "virtual-site-av") {
		t.Fatalf("expected virtual-site-av finding, got:\n%s", rep.Text())
	}
	spec.EdgeAV[eb] = 0
	if rep := Check(spec, nil, Options{}); !rep.Clean() {
		t.Fatalf("agreeing per-edge AVs should be clean, got:\n%s", rep.Text())
	}
}

// TestDetectsCoverageHole: a node outside every piece start's territory
// has no decodable encoding space.
func TestDetectsCoverageHole(t *testing.T) {
	g := callgraph.New()
	main := g.AddNode("app.Main.main", false)
	g.AddNode("app.Orphan.run", false) // no in-edges, not an anchor
	g.SetEntry(main)
	spec := &encoding.Spec{
		Graph:   g,
		SiteAV:  map[callgraph.Site]uint64{},
		EdgeAV:  map[callgraph.Edge]uint64{},
		Push:    map[callgraph.Edge]encoding.PieceKind{},
		Anchors: map[callgraph.NodeID]bool{},
	}
	rep := Check(spec, nil, Options{})
	if !hasCheck(rep, "coverage") {
		t.Fatalf("expected coverage finding, got:\n%s", rep.Text())
	}
}

// TestDetectsCPTDrift covers both closure failures: a site whose targets
// carry a different SID than expected, and a site with no expectation.
func TestDetectsCPTDrift(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "shapes.mv"), cha.EncodingAll)
	sites := spec.Graph.Sites()
	if len(sites) == 0 {
		t.Fatal("no sites")
	}
	want := plan.Expected[sites[0]]
	plan.Expected[sites[0]] = want + int32(plan.NumSets) // out of any set
	rep := Check(spec, plan, Options{})
	if !hasCheck(rep, "cpt-closure") {
		t.Fatalf("expected cpt-closure finding for wrong SID, got:\n%s", rep.Text())
	}
	delete(plan.Expected, sites[0])
	rep = Check(spec, plan, Options{})
	if !hasCheck(rep, "cpt-closure") {
		t.Fatalf("expected cpt-closure finding for missing expectation, got:\n%s", rep.Text())
	}
}

// TestDetectsDanglingSpecEntries: spec maps referencing entities the graph
// does not have are structural corruption.
func TestDetectsDanglingSpecEntries(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "shapes.mv"), cha.EncodingAll)
	spec.SiteAV[callgraph.Site{Caller: 999, Label: 7}] = 3
	spec.Anchors[callgraph.NodeID(12345)] = true
	rep := Check(spec, plan, Options{})
	if !hasCheck(rep, "structure") {
		t.Fatalf("expected structure findings, got:\n%s", rep.Text())
	}
}

// TestCheckBytesRoundTrip: a saved clean analysis verifies clean from
// bytes; truncations yield load findings, never panics.
func TestCheckBytesRoundTrip(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "dynload.mv"), cha.EncodingAll)
	var buf bytes.Buffer
	if err := analysisio.Save(&buf, spec, plan); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if rep := CheckBytes(data, Options{}); !rep.Clean() {
		t.Fatalf("saved analysis not clean:\n%s", rep.Text())
	}
	for cut := 0; cut < len(data); cut += 17 {
		rep := CheckBytes(data[:cut], Options{})
		if rep.Clean() {
			t.Fatalf("truncation at %d verified clean", cut)
		}
	}
}

// TestDeterministicOutput: two runs over the same input render
// byte-identical text and JSON — the property golden tests rely on.
func TestDeterministicOutput(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "tasks.mv"), cha.EncodingAll)
	// Seed several defects at once so ordering across checks is exercised.
	delete(plan.Expected, spec.Graph.Sites()[0])
	spec.Anchors[callgraph.NodeID(4242)] = true
	r1 := Check(spec, plan, Options{})
	r2 := Check(spec, plan, Options{})
	if r1.Text() != r2.Text() || r1.JSON() != r2.JSON() {
		t.Fatalf("nondeterministic reports:\n%s\nvs\n%s", r1.Text(), r2.Text())
	}
	if r1.Clean() {
		t.Fatal("seeded defects verified clean")
	}
}

// TestRenderShape pins the two output surfaces' basic shape.
func TestRenderShape(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "exceptions.mv"), cha.EncodingAll)
	rep := Check(spec, plan, Options{})
	rep.Source = "exceptions.mv"
	if txt := rep.Text(); !strings.HasPrefix(txt, "exceptions.mv: clean — ") {
		t.Errorf("unexpected clean text: %q", txt)
	}
	if js := rep.JSON(); !strings.Contains(js, `"findings": []`) {
		t.Errorf("clean JSON should carry an empty findings array:\n%s", js)
	}
}

func hasCheck(rep *Report, check string) bool {
	for _, d := range rep.Findings {
		if d.Check == check {
			return true
		}
	}
	return false
}
