package verify

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/lang"
)

// buildResult runs the analysis pipeline like buildFile but keeps the
// core.Result, whose incremental state core.Extend needs.
func buildResult(t testing.TB, path string, setting cha.Setting) (*core.Result, *callgraph.Graph) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: parse: %v", path, err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: setting, KeepUnreachable: true})
	if err != nil {
		t.Fatalf("%s: build: %v", path, err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatalf("%s: encode: %v", path, err)
	}
	return res, build.Graph
}

// growOnce clones g and applies one deterministic growth step, cycling
// through the delta shapes with distinct dirty-closure behavior: a fresh
// leaf chain, an edge between old nodes (possibly creating a cycle), and a
// virtual site gaining a dispatch target.
func growOnce(g *callgraph.Graph, step int) *callgraph.Graph {
	grown := g.Clone()
	entry, _ := grown.Entry()
	nodes := grown.Nodes()
	switch step % 3 {
	case 0: // new two-node chain off the entry
		a := grown.AddNode(fmt.Sprintf("dxa%d", step), false)
		b := grown.AddNode(fmt.Sprintf("dxb%d", step), false)
		grown.AddEdge(entry, int32(1000+step), a)
		grown.AddEdge(a, 0, b)
	case 1: // edge between existing nodes under a fresh label
		caller := nodes[len(nodes)/3]
		callee := nodes[(2*len(nodes))/3]
		grown.AddEdge(caller, int32(1000+step), callee)
	default: // an existing site gains a new target (dispatch growth)
		target := grown.AddNode(fmt.Sprintf("dxt%d", step), false)
		for _, n := range nodes {
			if out := grown.Out(n); len(out) > 0 {
				grown.AddEdge(n, out[0].Label, target)
				return grown
			}
		}
		grown.AddEdge(entry, int32(1000+step), target)
	}
	return grown
}

// assertSameVerdict fails unless the delta report matches the full report
// on everything a caller can observe: findings, statistics, and the
// successor certificate.
func assertSameVerdict(t *testing.T, ctx string, drep, full *Report) {
	t.Helper()
	if !reflect.DeepEqual(drep.Findings, full.Findings) {
		t.Errorf("%s: findings diverge:\ndelta: %v\nfull:  %v", ctx, drep.Findings, full.Findings)
	}
	if drep.Stats != full.Stats {
		t.Errorf("%s: stats diverge:\ndelta: %+v\nfull:  %+v", ctx, drep.Stats, full.Stats)
	}
	if !reflect.DeepEqual(drep.Certificate, full.Certificate) {
		t.Errorf("%s: successor certificates diverge", ctx)
	}
}

// TestCheckDeltaDifferentialCorpus is the incremental verifier's positive
// contract, corpus-wide: over every testdata program and both encoding
// settings, a chain of genuine core.Extend deltas must verify incrementally
// — no stale fallback — with findings, stats, and successor certificate
// identical to the full verifier's, for serial and parallel proving alike.
func TestCheckDeltaDifferentialCorpus(t *testing.T) {
	chains := 0
	for _, path := range mvFiles(t) {
		for _, setting := range []cha.Setting{cha.EncodingAll, cha.EncodingApplication} {
			name := fmt.Sprintf("%s/%v", filepath.Base(path), setting)
			t.Run(name, func(t *testing.T) {
				res, g := buildResult(t, path, setting)
				rep := Check(res.Spec, cpt.Compute(g), Options{})
				if !rep.Clean() {
					t.Fatalf("base analysis not clean:\n%s", rep.Text())
				}
				cert := rep.Certificate
				if cert == nil {
					t.Fatal("clean Check produced no certificate")
				}
				for step := 0; step < 4; step++ {
					grown := growOnce(g, step)
					res2, stats, err := core.Extend(res, grown, core.Options{})
					if err != nil {
						t.Skipf("step %d: extend unsupported for this analysis: %v", step, err)
					}
					if stats.DirtyTerritories != len(stats.DirtyTerritoryList) {
						t.Fatalf("step %d: DirtyTerritories %d != len(list) %d",
							step, stats.DirtyTerritories, len(stats.DirtyTerritoryList))
					}
					plan2 := cpt.Compute(grown)
					full := Check(res2.Spec, plan2, Options{})
					var drep *Report
					for _, workers := range []int{1, 4} {
						ctx := fmt.Sprintf("step %d workers %d", step, workers)
						d, derr := CheckDelta(cert, res2.Spec, plan2,
							stats.DirtyTerritoryList, Options{Workers: workers})
						if derr != nil {
							t.Fatalf("%s: CheckDelta stale on a genuine extend: %v", ctx, derr)
						}
						if d.Delta == nil {
							t.Fatalf("%s: delta report carries no DeltaInfo", ctx)
						}
						if got := d.Delta.DirtyTerritories + d.Delta.ReusedTerritories; got != full.Stats.PieceStarts {
							t.Errorf("%s: dirty %d + reused %d != %d piece starts",
								ctx, d.Delta.DirtyTerritories, d.Delta.ReusedTerritories, full.Stats.PieceStarts)
						}
						assertSameVerdict(t, ctx, d, full)
						drep = d
					}
					if !drep.Clean() {
						t.Fatalf("step %d: genuine extend rejected:\n%s", step, drep.Text())
					}
					cert, res, g = drep.Certificate, res2, grown
					chains++
				}
			})
		}
	}
	if chains == 0 {
		t.Fatal("no extend chain ran: the differential corpus proved nothing")
	}
}

// TestCheckDeltaDefectEquivalence seeds the defects the whole-graph
// verifier is tested against, then checks the incremental verifier reaches
// the same verdict through the epoch gate's protocol: with every territory
// marked dirty CheckDelta must reproduce the full report exactly, and with
// an empty dirty list it must either match the full report or refuse with
// ErrStaleCertificate (never silently accept what the full verifier
// rejects).
func TestCheckDeltaDefectEquivalence(t *testing.T) {
	mutations := []struct {
		name  string
		apply func(t *testing.T, spec *encoding.Spec, plan *cpt.Plan)
	}{
		{"lowered-av", func(t *testing.T, spec *encoding.Spec, plan *cpt.Plan) {
			for _, s := range spec.Graph.Sites() {
				if av := spec.SiteAV[s]; av > 0 {
					spec.SiteAV[s] = av - 1
					return
				}
			}
			t.Skip("no nonzero addition value to lower")
		}},
		{"dropped-anchor", func(t *testing.T, spec *encoding.Spec, plan *cpt.Plan) {
			entry, _ := spec.Graph.Entry()
			for _, n := range spec.Graph.Nodes() {
				if spec.Anchors[n] && n != entry {
					delete(spec.Anchors, n)
					return
				}
			}
			t.Skip("no non-entry anchor to drop")
		}},
		{"dropped-push-kind", func(t *testing.T, spec *encoding.Spec, plan *cpt.Plan) {
			for e := range spec.Push {
				delete(spec.Push, e)
				return
			}
			t.Skip("no push edge to drop")
		}},
		{"dangling-site-av", func(t *testing.T, spec *encoding.Spec, plan *cpt.Plan) {
			spec.SiteAV[callgraph.Site{Caller: 0, Label: 31337}] = 7
		}},
		{"cpt-drift", func(t *testing.T, spec *encoding.Spec, plan *cpt.Plan) {
			sites := spec.Graph.Sites()
			if len(sites) == 0 {
				t.Skip("no sites")
			}
			plan.Expected[sites[0]] += int32(plan.NumSets)
		}},
	}
	for _, path := range []string{"dynload.mv", "recursion.mv", "shapes.mv"} {
		full := filepath.Join("..", "..", "testdata", path)
		for _, mut := range mutations {
			t.Run(path+"/"+mut.name, func(t *testing.T) {
				spec, plan := buildFile(t, full, cha.EncodingAll)
				base := Check(spec, plan, Options{})
				if !base.Clean() {
					t.Fatalf("base not clean:\n%s", base.Text())
				}
				cert := base.Certificate
				mut.apply(t, spec, plan)
				fullRep := Check(spec, plan, Options{})

				// Protocol step 1: the honest-gate path, everything dirty.
				drep, err := CheckDelta(cert, spec, plan, cert.Starts, Options{})
				if err != nil {
					t.Fatalf("all-dirty CheckDelta refused: %v", err)
				}
				assertSameVerdict(t, "all-dirty", drep, fullRep)
				if drep.Clean() != fullRep.Clean() {
					t.Fatalf("all-dirty verdict diverges: delta clean=%v full clean=%v",
						drep.Clean(), fullRep.Clean())
				}

				// Protocol step 2: an empty dirty list — the frame conditions
				// alone must force agreement or a stale refusal.
				drep2, err2 := CheckDelta(cert, spec, plan, nil, Options{})
				accepted := err2 == nil && drep2.Clean()
				if err2 != nil && !errors.Is(err2, ErrStaleCertificate) {
					t.Fatalf("unexpected error kind: %v", err2)
				}
				if err2 == nil {
					assertSameVerdict(t, "no-dirty", drep2, fullRep)
				}
				if accepted && !fullRep.Clean() {
					t.Fatalf("incremental verifier accepted a defect the full verifier rejects:\n%s",
						fullRep.Text())
				}
			})
		}
	}
}

// TestCheckDeltaStaleCertificates pins the refusal surface: damaged or
// mismatched certificates must yield ErrStaleCertificate, never a panic and
// never an acceptance.
func TestCheckDeltaStaleCertificates(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "dynload.mv"), cha.EncodingAll)
	base := Check(spec, plan, Options{})
	cert := base.Certificate
	if cert == nil {
		t.Fatal("no certificate")
	}
	somePositiveStart := func() callgraph.NodeID {
		for _, s := range cert.Starts {
			if len(cert.Territories[s].Members) > 0 {
				return s
			}
		}
		t.Fatal("no territory with members")
		return 0
	}

	cases := []struct {
		name   string
		tamper func(c *Certificate)
	}{
		{"nil-certificate", nil},
		{"maxid-mismatch", func(c *Certificate) { c.MaxID++ }},
		{"per-edge-mismatch", func(c *Certificate) { c.PerEdge = !c.PerEdge }},
		{"entry-moved", func(c *Certificate) { c.Entry++ }},
		{"node-count-grew", func(c *Certificate) { c.NumNodes = spec.Graph.NumNodes() + 1 }},
		{"fingerprints-truncated", func(c *Certificate) { c.NodeFP = c.NodeFP[:len(c.NodeFP)-1] }},
		{"territory-fp-flipped", func(c *Certificate) {
			s := somePositiveStart()
			tc := c.Territories[s]
			tc.FP ^= 1
			c.Territories[s] = tc
		}},
		{"territory-stats-tampered", func(c *Certificate) {
			s := somePositiveStart()
			tc := c.Territories[s]
			tc.Holes += 17 // sealed by the fingerprint: must be caught
			c.Territories[s] = tc
		}},
		{"member-out-of-range", func(c *Certificate) {
			s := somePositiveStart()
			tc := c.Territories[s]
			tc.Members = append(append([]callgraph.NodeID(nil), tc.Members...), callgraph.NodeID(1<<30))
			c.Territories[s] = tc
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c *Certificate
			if tc.tamper != nil {
				cp := cloneCertificate(cert)
				tc.tamper(cp)
				c = cp
			}
			rep, err := CheckDelta(c, spec, plan, nil, Options{})
			if err == nil {
				t.Fatalf("tampered certificate accepted: %+v", rep.Delta)
			}
			if !errors.Is(err, ErrStaleCertificate) {
				t.Fatalf("want ErrStaleCertificate, got %v", err)
			}
		})
	}
}

func cloneCertificate(c *Certificate) *Certificate {
	cp := *c
	cp.NodeFP = append([]uint64(nil), c.NodeFP...)
	cp.Starts = append([]callgraph.NodeID(nil), c.Starts...)
	cp.Territories = make(map[callgraph.NodeID]TerritoryCert, len(c.Territories))
	for s, tc := range c.Territories {
		tc.Members = append([]callgraph.NodeID(nil), tc.Members...)
		cp.Territories[s] = tc
	}
	return &cp
}

// TestParallelCheckIdentity is the level-parallel contract: reports are
// byte-identical for every worker count, clean and defective inputs alike,
// certificates included.
func TestParallelCheckIdentity(t *testing.T) {
	for _, path := range mvFiles(t) {
		for _, setting := range []cha.Setting{cha.EncodingAll, cha.EncodingApplication} {
			spec, plan := buildFile(t, path, setting)
			serial := Check(spec, plan, Options{Workers: 1})
			for _, workers := range []int{2, 4} {
				par := Check(spec, plan, Options{Workers: workers})
				if serial.Text() != par.Text() || serial.JSON() != par.JSON() {
					t.Errorf("%s (%v): workers=%d report differs from serial", path, setting, workers)
				}
				if !reflect.DeepEqual(serial.Certificate, par.Certificate) {
					t.Errorf("%s (%v): workers=%d certificate differs from serial", path, setting, workers)
				}
			}
		}
	}
	fixtures, err := filepath.Glob(filepath.Join("..", "..", "testdata", "lint", "*.dpa"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no lint fixtures: %v", err)
	}
	for _, p := range fixtures {
		serial := CheckFile(p, Options{Workers: 1})
		par := CheckFile(p, Options{Workers: 4})
		if serial.Text() != par.Text() || serial.JSON() != par.JSON() {
			t.Errorf("%s: parallel report differs from serial", p)
		}
	}
}

// TestCertificateDeterministic: the certificate is a pure function of the
// spec — two runs, serial or parallel, agree exactly.
func TestCertificateDeterministic(t *testing.T) {
	spec, plan := buildFile(t, filepath.Join("..", "..", "testdata", "shapes.mv"), cha.EncodingAll)
	a := Check(spec, plan, Options{})
	b := Check(spec, plan, Options{Workers: 4})
	if a.Certificate == nil || b.Certificate == nil {
		t.Fatal("clean check produced no certificate")
	}
	if !reflect.DeepEqual(a.Certificate, b.Certificate) {
		t.Fatal("certificates differ between runs")
	}
}
