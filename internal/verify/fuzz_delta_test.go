package verify

import (
	"fmt"
	"path/filepath"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
)

func cloneSpec(s *encoding.Spec) *encoding.Spec {
	cp := &encoding.Spec{
		Graph:   s.Graph.Clone(),
		PerEdge: s.PerEdge,
		SiteAV:  make(map[callgraph.Site]uint64, len(s.SiteAV)),
		EdgeAV:  make(map[callgraph.Edge]uint64, len(s.EdgeAV)),
		Push:    make(map[callgraph.Edge]encoding.PieceKind, len(s.Push)),
		Anchors: make(map[callgraph.NodeID]bool, len(s.Anchors)),
	}
	for k, v := range s.SiteAV {
		cp.SiteAV[k] = v
	}
	for k, v := range s.EdgeAV {
		cp.EdgeAV[k] = v
	}
	for k, v := range s.Push {
		cp.Push[k] = v
	}
	for k, v := range s.Anchors {
		cp.Anchors[k] = v
	}
	return cp
}

// FuzzCheckDelta pins the incremental verifier's two-sided contract under
// adversarial inputs: the fuzz bytes drive structured mutations of the spec
// (the "what changed" side), the certificate (the "what is claimed" side),
// and the dirty list (the "what was admitted" side). Whatever the
// combination, CheckDelta must never panic, and whenever it returns a
// report that report must match the full verifier's finding-for-finding and
// stat-for-stat — in particular it must never accept a spec the full
// verifier rejects. Stale refusals are always legal (the caller falls back
// to Check); silent divergence never is.
func FuzzCheckDelta(f *testing.F) {
	type base struct {
		spec *encoding.Spec
		plan *cpt.Plan
		cert *Certificate
	}
	var bases []base
	for _, name := range []string{"dynload.mv", "recursion.mv"} {
		spec, plan := buildFile(f, filepath.Join("..", "..", "testdata", name), cha.EncodingAll)
		rep := Check(spec, plan, Options{})
		if !rep.Clean() || rep.Certificate == nil {
			f.Fatalf("%s: base analysis did not certify", name)
		}
		bases = append(bases, base{spec, plan, rep.Certificate})
	}

	// Seeds mirror the committed corpus under testdata/fuzz/FuzzCheckDelta:
	// full reuse, a stale certificate (tampered node fingerprint), a
	// dirty-boundary frame violation (addition value changed, territory not
	// admitted dirty), honest growth with an admitted dirty start, and
	// tampered territory statistics.
	f.Add([]byte(""))
	f.Add([]byte("\x06\x00"))
	f.Add([]byte("\x00\x00"))
	f.Add([]byte("\x05\x00\x0b\x00"))
	f.Add([]byte("\x08\x01"))
	f.Add([]byte("\x02\x00\x03\x05\x04\x00\x07\x02\x09\x03\x0a\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		b := bases[len(data)%len(bases)]
		spec := cloneSpec(b.spec)
		cert := cloneCertificate(b.cert)
		var dirty []callgraph.NodeID

		const numOps = 12
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%numOps, int(data[i+1])
			switch op {
			case 0: // lower a site's addition value
				if sites := spec.Graph.Sites(); len(sites) > 0 {
					s := sites[arg%len(sites)]
					if spec.SiteAV[s] > 0 {
						spec.SiteAV[s]--
					}
				}
			case 1: // raise a site's addition value
				if sites := spec.Graph.Sites(); len(sites) > 0 {
					s := sites[arg%len(sites)]
					spec.SiteAV[s] += uint64(arg) + 1
				}
			case 2: // drop an anchor
				if an := sortedNodes(spec.Anchors); len(an) > 0 {
					delete(spec.Anchors, an[arg%len(an)])
				}
			case 3: // add an anchor
				nodes := spec.Graph.Nodes()
				spec.Anchors[nodes[arg%len(nodes)]] = true
			case 4: // drop a push kind
				if pe := sortedEdges(spec.Push); len(pe) > 0 {
					delete(spec.Push, pe[arg%len(pe)])
				}
			case 5: // grow the graph: a new callee off an existing node
				nodes := spec.Graph.Nodes()
				n := spec.Graph.AddNode(fmt.Sprintf("fz%d", i), false)
				spec.Graph.AddEdge(nodes[arg%len(nodes)], int32(2000+i), n)
			case 6: // certificate: flip a node fingerprint bit
				if len(cert.NodeFP) > 0 {
					cert.NodeFP[arg%len(cert.NodeFP)] ^= 1 << (arg % 63)
				}
			case 7: // certificate: flip a territory fingerprint bit
				if len(cert.Starts) > 0 {
					s := cert.Starts[arg%len(cert.Starts)]
					tc := cert.Territories[s]
					tc.FP ^= 1 << (arg % 63)
					cert.Territories[s] = tc
				}
			case 8: // certificate: tamper sealed territory statistics
				if len(cert.Starts) > 0 {
					s := cert.Starts[arg%len(cert.Starts)]
					tc := cert.Territories[s]
					tc.Holes += uint64(arg) + 1
					cert.Territories[s] = tc
				}
			case 9: // certificate: corrupt a member list
				if len(cert.Starts) > 0 {
					s := cert.Starts[arg%len(cert.Starts)]
					tc := cert.Territories[s]
					if arg%2 == 0 {
						tc.Members = append(append([]callgraph.NodeID(nil), tc.Members...),
							callgraph.NodeID(1<<28+arg))
					} else if len(tc.Members) > 0 {
						tc.Members = tc.Members[:len(tc.Members)-1]
					}
					cert.Territories[s] = tc
				}
			case 10: // certificate: drop a territory entry entirely
				if len(cert.Starts) > 0 {
					delete(cert.Territories, cert.Starts[arg%len(cert.Starts)])
				}
			case 11: // admit a start as dirty
				if starts := pieceStarts(spec); len(starts) > 0 {
					dirty = append(dirty, starts[arg%len(starts)])
				}
			}
		}

		workers := len(data) % 3
		full := Check(spec, b.plan, Options{})
		drep, err := CheckDelta(cert, spec, b.plan, dirty, Options{Workers: workers})
		if err != nil {
			return // stale refusal: the caller falls back to the full check
		}
		if drep.Delta == nil {
			t.Fatal("delta report carries no DeltaInfo")
		}
		if drep.Clean() && !full.Clean() {
			t.Fatalf("CheckDelta accepted a spec the full verifier rejects:\n%s", full.Text())
		}
		if drep.JSON() == "" || drep.Text() == "" {
			t.Fatal("empty rendering")
		}
		assertSameVerdict(t, "fuzz", drep, full)
		again, err2 := CheckDelta(cert, spec, b.plan, dirty, Options{Workers: workers})
		if err2 != nil {
			t.Fatalf("nondeterministic staleness: %v", err2)
		}
		if drep.JSON() != again.JSON() {
			t.Fatalf("nondeterministic delta verification:\n%s\nvs\n%s", drep.JSON(), again.JSON())
		}
	})
}
