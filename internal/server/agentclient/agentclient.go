// Package agentclient is the agent-side half of the dprofiled ingest
// protocol: it pushes .dpp profile streams to a server in bounded batches,
// riding out transient failure instead of losing samples.
//
// Reliability model:
//
//   - Every batch carries a client-generated batch ID (a random push ID
//     plus the batch index) in X-Batch-ID. The ID is stable across
//     retries, so a batch whose acknowledgement was lost — a crashed
//     server, a dropped connection — is re-sent under the same identity
//     and absorbed idempotently by the server's applied-batch set.
//     Exactly-once delivery without coordination.
//
//   - 429 (backpressure shed) and 503 (draining or transient failure)
//     are retryable; the client honors Retry-After when present and
//     otherwise backs off exponentially with jitter, so a fleet of
//     agents shedding together does not re-converge into a thundering
//     herd. Connection errors (the server is restarting) retry the same
//     way. Any other 4xx is permanent — a malformed or misrouted batch
//     will not become well-formed by resending.
package agentclient

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mathrand "math/rand"
	"net/http"
	"strconv"
	"time"

	"deltapath/internal/analysisio"
	"deltapath/internal/profile"
)

// Config configures a Client. Zero values select the defaults.
type Config struct {
	// URL is the server base URL (e.g. http://127.0.0.1:7077). Required.
	URL string
	// BatchRecords bounds one batch (default 512 records).
	BatchRecords int
	// MaxAttempts bounds sends of one batch, first try included
	// (default 10).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (default 50ms); each
	// retry doubles it up to MaxBackoff (default 5s), then a uniform
	// jitter in [0.5, 1.5) is applied.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HTTPClient overrides the transport (default: 30s-timeout client).
	HTTPClient *http.Client
	// Logf receives per-retry diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

// Stats accumulates what one or more Push calls actually did.
type Stats struct {
	Batches    int // batches acknowledged (duplicates included)
	Records    int // records in acknowledged batches
	Applied    int // records the server newly applied
	Duplicates int // batches the server had already applied
	Retries    int // re-sends (shed, draining, or connection failure)
	Shed429    int // retries caused specifically by backpressure sheds
}

func (s *Stats) add(o Stats) {
	s.Batches += o.Batches
	s.Records += o.Records
	s.Applied += o.Applied
	s.Duplicates += o.Duplicates
	s.Retries += o.Retries
	s.Shed429 += o.Shed429
}

// Client pushes profiles to one dprofiled server. Safe for use from one
// goroutine; create one Client per pushing goroutine.
type Client struct {
	cfg  Config
	http *http.Client
	rng  *mathrand.Rand
}

// New returns a client for cfg.
func New(cfg Config) (*Client, error) {
	if cfg.URL == "" {
		return nil, errors.New("agentclient: Config.URL is required")
	}
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = 512
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 10
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	var seed [8]byte
	rand.Read(seed[:])
	var s int64
	for _, b := range seed {
		s = s<<8 | int64(b)
	}
	return &Client{cfg: cfg, http: cfg.HTTPClient, rng: mathrand.New(mathrand.NewSource(s))}, nil
}

// pushID returns a fresh random identity for one Push call's batches.
func pushID() (string, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// Push parses a .dpp stream and pushes its records to the server in
// batches. It returns the stats of every acknowledged batch; on error the
// stats still count the batches that did land.
func (c *Client) Push(ctx context.Context, dpp []byte) (Stats, error) {
	pr, err := profile.NewReader(bytes.NewReader(dpp))
	if err != nil {
		return Stats{}, fmt.Errorf("agentclient: %w", err)
	}
	var recs []profile.Record
	for {
		rec, count, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Stats{}, fmt.Errorf("agentclient: %w", err)
		}
		recs = append(recs, profile.Record{Key: rec, Count: count})
	}
	return c.PushRecords(ctx, pr.Digest(), recs)
}

// PushRecords pushes records under the given analysis digest, chunked into
// batches of at most BatchRecords each. Batches are sent in order; the
// first permanent failure stops the push.
func (c *Client) PushRecords(ctx context.Context, digest analysisio.GraphDigest, recs []profile.Record) (Stats, error) {
	id, err := pushID()
	if err != nil {
		return Stats{}, fmt.Errorf("agentclient: %w", err)
	}
	var stats Stats
	for i := 0; len(recs) > 0; i++ {
		n := min(c.cfg.BatchRecords, len(recs))
		chunk := recs[:n]
		recs = recs[n:]
		batchStats, err := c.sendBatch(ctx, digest, chunk, fmt.Sprintf("%s-%d", id, i))
		stats.add(batchStats)
		if err != nil {
			return stats, fmt.Errorf("agentclient: batch %d: %w", i, err)
		}
	}
	return stats, nil
}

// sendBatch frames one batch as a .dpp body and sends it until
// acknowledged, retrying transient failures under the same batch ID.
func (c *Client) sendBatch(ctx context.Context, digest analysisio.GraphDigest, recs []profile.Record, batchID string) (Stats, error) {
	var body bytes.Buffer
	w, err := profile.NewWriter(&body, digest)
	if err != nil {
		return Stats{}, err
	}
	for _, r := range recs {
		if err := w.Add(r.Key, r.Count); err != nil {
			return Stats{}, err
		}
	}
	if err := w.Flush(); err != nil {
		return Stats{}, err
	}

	var stats Stats
	for attempt := 1; ; attempt++ {
		reply, status, err := c.post(ctx, body.Bytes(), batchID)
		switch {
		case err == nil && status == http.StatusOK:
			stats.Batches++
			stats.Records += len(recs)
			if reply.Duplicate {
				stats.Duplicates++
			} else {
				stats.Applied += reply.Applied
			}
			return stats, nil
		case err == nil && status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable:
			// Permanent: resending an unroutable or malformed batch
			// cannot succeed.
			return stats, fmt.Errorf("server rejected batch (%d): %s", status, reply.Error)
		}
		if attempt >= c.cfg.MaxAttempts {
			if err != nil {
				return stats, fmt.Errorf("gave up after %d attempts: %w", attempt, err)
			}
			return stats, fmt.Errorf("gave up after %d attempts (last status %d)", attempt, status)
		}
		stats.Retries++
		if status == http.StatusTooManyRequests {
			stats.Shed429++
		}
		delay := c.backoff(attempt, reply.RetryAfter)
		c.cfg.Logf("batch %s attempt %d: status %d err %v, retrying in %v",
			batchID, attempt, status, err, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return stats, ctx.Err()
		}
	}
}

// reply is the server's ingest response, plus transport-level fields.
type reply struct {
	Applied    int    `json:"applied"`
	Duplicate  bool   `json:"duplicate"`
	Error      string `json:"error"`
	RetryAfter time.Duration
}

func (c *Client) post(ctx context.Context, body []byte, batchID string) (reply, int, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", c.cfg.URL+"/ingest", bytes.NewReader(body))
	if err != nil {
		return reply{}, 0, err
	}
	req.Header.Set("X-Batch-ID", batchID)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return reply{}, 0, err
	}
	defer resp.Body.Close()
	var r reply
	// Best effort: non-JSON error bodies leave r zeroed, which is fine.
	json.NewDecoder(resp.Body).Decode(&r)
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			r.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return r, resp.StatusCode, nil
}

// backoff is exponential in attempt with uniform ±50% jitter, floored at
// the server's Retry-After hint when one was given.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	d = time.Duration(float64(d) * (0.5 + c.rng.Float64()))
	if retryAfter > 0 && d < retryAfter {
		d = retryAfter
	}
	return d
}

// Healthy reports whether the server answers /healthz with 200.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, "GET", c.cfg.URL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
