package agentclient

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"deltapath/internal/analysisio"
	"deltapath/internal/profile"
)

func testDigest() analysisio.GraphDigest {
	return analysisio.GraphDigest{Nodes: 5, Edges: 9, Hash: 0x1234}
}

func testDPP(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := profile.NewWriter(&buf, testDigest())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Add([]byte{byte(i), byte(i >> 8)}, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fakeServer mimics dprofiled's ingest contract: per-ID dedup, scripted
// failures, batch accounting.
type fakeServer struct {
	mu      sync.Mutex
	applied map[string]bool
	batches [][]profile.Record
	// fail scripts the next responses: each entry is an HTTP status to
	// return before finally accepting.
	fail []int
	// dropAck, when set, applies the next batch but returns 503 anyway —
	// the lost-acknowledgement window.
	dropAck bool
}

func (f *fakeServer) handler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if len(f.fail) > 0 {
			code := f.fail[0]
			f.fail = f.fail[1:]
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(map[string]string{"error": "scripted failure"})
			return
		}
		id := r.Header.Get("X-Batch-ID")
		if id == "" {
			t.Error("ingest without X-Batch-ID")
		}
		body, _ := io.ReadAll(r.Body)
		pr, err := profile.NewReader(bytes.NewReader(body))
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		if f.applied[id] {
			json.NewEncoder(w).Encode(map[string]any{"duplicate": true})
			return
		}
		var recs []profile.Record
		for {
			rec, count, err := pr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			recs = append(recs, profile.Record{Key: rec, Count: count})
		}
		f.applied[id] = true
		f.batches = append(f.batches, recs)
		if f.dropAck {
			f.dropAck = false
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"applied": len(recs)})
	})
}

func newFake(t *testing.T) (*fakeServer, *httptest.Server) {
	f := &fakeServer{applied: map[string]bool{}}
	ts := httptest.NewServer(f.handler(t))
	t.Cleanup(ts.Close)
	return f, ts
}

func fastClient(t *testing.T, url string) *Client {
	t.Helper()
	c, err := New(Config{
		URL:          url,
		BatchRecords: 10,
		MaxAttempts:  6,
		BaseBackoff:  time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPushChunksAndDelivers: 25 records under BatchRecords=10 become 3
// batches, all delivered in order with exact counts.
func TestPushChunksAndDelivers(t *testing.T) {
	f, ts := newFake(t)
	c := fastClient(t, ts.URL)
	stats, err := c.Push(context.Background(), testDPP(t, 25))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 3 || stats.Records != 25 || stats.Retries != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if len(f.batches) != 3 {
		t.Fatalf("server saw %d batches, want 3", len(f.batches))
	}
	total := 0
	for _, b := range f.batches {
		total += len(b)
	}
	if total != 25 {
		t.Fatalf("server saw %d records, want 25", total)
	}
}

// TestPushRetriesTransientFailures: scripted 429/503 responses are
// retried until the batch lands; the retry counters discriminate sheds.
func TestPushRetriesTransientFailures(t *testing.T) {
	f, ts := newFake(t)
	f.fail = []int{http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusTooManyRequests}
	c := fastClient(t, ts.URL)
	stats, err := c.Push(context.Background(), testDPP(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 1 || stats.Retries != 3 || stats.Shed429 != 2 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestPushResendAfterLostAckIsIdempotent: the server applies a batch but
// the acknowledgement is lost; the resend under the same batch ID comes
// back duplicate — applied exactly once.
func TestPushResendAfterLostAckIsIdempotent(t *testing.T) {
	f, ts := newFake(t)
	f.dropAck = true
	c := fastClient(t, ts.URL)
	stats, err := c.Push(context.Background(), testDPP(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 1 || stats.Duplicates != 1 || stats.Retries != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if len(f.batches) != 1 {
		t.Fatalf("server applied %d batches, want exactly 1", len(f.batches))
	}
}

// TestPushPermanentFailureStops: a 4xx other than 429 fails immediately
// with the server's error, without burning retries.
func TestPushPermanentFailureStops(t *testing.T) {
	f, ts := newFake(t)
	f.fail = []int{http.StatusPreconditionFailed}
	c := fastClient(t, ts.URL)
	_, err := c.Push(context.Background(), testDPP(t, 5))
	if err == nil || !strings.Contains(err.Error(), "412") {
		t.Fatalf("err = %v, want permanent 412 failure", err)
	}
	if len(f.batches) != 0 {
		t.Fatal("server applied a permanently-refused batch")
	}
}

// TestPushGivesUpAfterMaxAttempts: endless sheds exhaust MaxAttempts with
// an error instead of retrying forever.
func TestPushGivesUpAfterMaxAttempts(t *testing.T) {
	f, ts := newFake(t)
	for i := 0; i < 100; i++ {
		f.fail = append(f.fail, http.StatusServiceUnavailable)
	}
	c := fastClient(t, ts.URL)
	_, err := c.Push(context.Background(), testDPP(t, 5))
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("err = %v, want gave-up failure", err)
	}
}

// TestPushSurvivesServerRestart: connection errors (server down) retry
// until the server returns; no records lost across its death.
func TestPushSurvivesServerRestart(t *testing.T) {
	f := &fakeServer{applied: map[string]bool{}}
	ts := httptest.NewServer(f.handler(t))
	addr := ts.Listener.Addr().String()
	url := "http://" + addr
	ts.Close() // server is down at push time

	c := fastClient(t, url)
	done := make(chan error, 1)
	go func() {
		_, err := c.Push(context.Background(), testDPP(t, 5))
		done <- err
	}()
	// Resurrect the server at the same address while the client retries.
	time.Sleep(5 * time.Millisecond)
	ts2 := resurrect(t, addr, f.handler(t))
	defer ts2.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(f.batches) != 1 {
		t.Fatalf("server applied %d batches, want 1", len(f.batches))
	}
}

// resurrect binds a plain http.Server to addr, retrying briefly while the
// old listener's socket is released.
func resurrect(t *testing.T, addr string, h http.Handler) *httptest.Server {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: h}}
			ts.Start()
			return ts
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPushCancelledContext: cancellation aborts mid-backoff.
func TestPushCancelledContext(t *testing.T) {
	f, ts := newFake(t)
	for i := 0; i < 100; i++ {
		f.fail = append(f.fail, http.StatusServiceUnavailable)
	}
	c, err := New(Config{URL: ts.URL, BaseBackoff: time.Hour, MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Push(ctx, testDPP(t, 5)); err != context.Canceled {
		if err == nil || !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("err = %v, want context cancellation", err)
		}
	}
}

// TestBackoffGrowsAndJitters: the delay doubles per attempt, never
// exceeds 1.5×MaxBackoff, and honors a larger Retry-After hint.
func TestBackoffGrowsAndJitters(t *testing.T) {
	c, err := New(Config{URL: "http://x", BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 10; attempt++ {
		base := c.cfg.BaseBackoff << (attempt - 1)
		if base > c.cfg.MaxBackoff || base <= 0 {
			base = c.cfg.MaxBackoff
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt, 0)
			if d < base/2 || d > base*3/2 {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base/2, base*3/2)
			}
		}
	}
	if d := c.backoff(1, time.Second); d < time.Second {
		t.Fatalf("Retry-After floor ignored: %v", d)
	}
}

// TestBatchIDsDistinctAcrossPushes: two pushes of identical content use
// different batch IDs — accumulating the same profile twice is two
// deliveries, not a spurious dedup.
func TestBatchIDsDistinctAcrossPushes(t *testing.T) {
	f, ts := newFake(t)
	c := fastClient(t, ts.URL)
	body := testDPP(t, 5)
	for i := 0; i < 2; i++ {
		stats, err := c.Push(context.Background(), body)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Duplicates != 0 {
			t.Fatalf("push %d flagged duplicate: %+v", i, stats)
		}
	}
	if len(f.batches) != 2 {
		t.Fatalf("server applied %d batches, want 2 (one per push)", len(f.batches))
	}
}
