// GET /query — the bulk read path: the tenant's full aggregate (segments
// k-way-merged with the memtable) decoded and streamed as NDJSON.
//
// Unlike /top, which materializes the whole report before answering,
// /query streams: in its default mode server memory is O(segments) —
// independent of how many pairs the store holds. Filters are pushed into
// the merge loop:
//
//	tenant=NAME   required
//	top=K         keep only the K hottest rows, aggregated by decoded
//	              context exactly as /top reports them (count descending,
//	              context ascending). Distinct records can render to the
//	              same display context (recursion pieces collapse), so
//	              this mode aggregates decoded strings — memory is
//	              O(distinct decoded contexts), the same bound /top pays,
//	              but nothing else is materialized.
//	class=C       keep only contexts with a frame in class C
//
// Without top= the rows stream one line per merged record in merge
// (record-byte) order, flushed incrementally: server memory is
// O(segments), so a client can consume a store much larger than either
// side's memory.
package server

import (
	"container/heap"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// QueryRow is one /query NDJSON line.
type QueryRow struct {
	Context string `json:"context"`
	Count   uint64 `json:"count"`
}

// queryHeap is a bounded min-heap of the K best rows seen so far. The
// root is the weakest row — smallest count, and among equal counts the
// byte-largest context — so pushing a better row and popping the root
// maintains exactly the K rows /top would report, and popping everything
// at the end yields them in reverse report order.
type queryHeap []QueryRow

func (h queryHeap) Len() int { return len(h) }
func (h queryHeap) Less(i, j int) bool {
	if h[i].Count != h[j].Count {
		return h[i].Count < h[j].Count
	}
	return h[i].Context > h[j].Context
}
func (h queryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *queryHeap) Push(x any)   { *h = append(*h, x.(QueryRow)) }
func (h *queryHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// matchesClass reports whether any frame of a decoded context ("A.m > B.n")
// belongs to class c.
func matchesClass(ctx, c string) bool {
	for _, frame := range strings.Split(ctx, " > ") {
		if cls, _, ok := strings.Cut(frame, "."); ok && cls == c {
			return true
		}
	}
	return false
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t := s.tenantByName(r.URL.Query().Get("tenant"))
	if t == nil {
		httpError(w, http.StatusNotFound, "unknown tenant %q", r.URL.Query().Get("tenant"))
		return
	}
	topK := 0
	if v := r.URL.Query().Get("top"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, "bad top %q", v)
			return
		}
		topK = parsed
	}
	class := r.URL.Query().Get("class")

	mi, err := t.openMerge()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer mi.close()

	ctx, cancel := mergeContexts(r.Context(), s.queryCtx)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)

	// Aggregate decoded-context counts only in top-K mode; the plain
	// stream never holds more than one row.
	var agg map[string]uint64
	if topK > 0 {
		agg = make(map[string]uint64)
	}
	rows := 0
	for {
		if rows%256 == 0 && ctx.Err() != nil {
			return // stream already started; just stop
		}
		key, count, err := mi.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			enc.Encode(map[string]string{"error": err.Error()})
			return
		}
		rows++
		ctxStr, err := t.decodeRecord(key)
		if err != nil {
			// canonicalize only passes records that decode, so this is
			// state corruption, not client error — surface it.
			enc.Encode(map[string]string{"error": err.Error()})
			return
		}
		if class != "" && !matchesClass(ctxStr, class) {
			continue
		}
		if topK > 0 {
			agg[ctxStr] += count
			continue
		}
		if err := enc.Encode(QueryRow{Context: ctxStr, Count: count}); err != nil {
			return
		}
		if flusher != nil && rows%256 == 0 {
			flusher.Flush()
		}
	}
	if topK > 0 {
		// A bounded min-heap over the aggregated contexts keeps only K
		// rows; popping yields reverse report order (count descending,
		// context ascending — exactly profile.Report.Top's sort).
		var best queryHeap
		for ctxStr, count := range agg {
			row := QueryRow{Context: ctxStr, Count: count}
			if len(best) < topK {
				heap.Push(&best, row)
			} else if rowBeats(row, best[0]) {
				best[0] = row
				heap.Fix(&best, 0)
			}
		}
		out := make([]QueryRow, len(best))
		for i := len(best) - 1; i >= 0; i-- {
			out[i] = heap.Pop(&best).(QueryRow)
		}
		for _, row := range out {
			if err := enc.Encode(row); err != nil {
				return
			}
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// rowBeats reports whether candidate outranks cur in report order (count
// descending, context ascending) — i.e. whether it deserves cur's heap
// slot.
func rowBeats(candidate, cur QueryRow) bool {
	if candidate.Count != cur.Count {
		return candidate.Count > cur.Count
	}
	return candidate.Context < cur.Context
}
