// Background segment compaction for one ingestion tenant.
package server

import (
	"io"
	"time"
)

// kickCompact wakes the compactor if it is idle. The channel holds one
// pending kick; further kicks while one is pending are absorbed (the
// compactor re-reads the live segment list each pass, so one wake-up
// covers any number of flushes).
func (t *tenant) kickCompact() {
	select {
	case t.compactKick <- struct{}{}:
	default:
	}
}

// compactLoop runs until shutdown, merging segments whenever a flush kicks
// it and the live list has reached the compaction threshold.
func (t *tenant) compactLoop(m *metrics) {
	defer t.compactWG.Done()
	for {
		select {
		case <-t.stop:
			return
		case <-t.compactKick:
			if err := t.compact(m); err != nil {
				m.logf("tenant %s: compaction failed: %v", t.name, err)
			}
		}
	}
}

// compact merges the current live segments into one when there are at
// least compactMin of them. Counts of equal keys are summed, so the merged
// segment is observationally identical to its inputs. The merge streams:
// O(segments) memory regardless of store size.
//
// Only the compactor replaces segments and flushes only append, so the
// input list read here stays a prefix of the live list until
// replaceCompacted swaps it — no lock is held across the (long) merge.
func (t *tenant) compact(m *metrics) error {
	old := t.segs.list()
	if len(old) < t.compactMin || t.compactMin <= 0 {
		return nil
	}
	start := time.Now()
	iters := make([]pairIter, 0, len(old))
	for _, sg := range old {
		it, err := sg.iter(t.digest)
		if err != nil {
			for _, o := range iters {
				o.close()
			}
			return err
		}
		iters = append(iters, it)
	}
	mi, err := newMergeIter(iters)
	if err != nil {
		return err
	}
	defer mi.close()
	w, err := newSegmentWriter(t.dir, t.digest, t.segs.allocSeq())
	if err != nil {
		return err
	}
	for {
		key, count, err := mi.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Abort()
			return err
		}
		if err := w.Add(key, count); err != nil {
			w.Abort()
			return err
		}
	}
	merged, err := w.Close()
	if err != nil {
		return err
	}
	if err := t.segs.replaceCompacted(old, merged); err != nil {
		// The merged segment never became visible; recovery (or the next
		// orphan sweep) deletes it.
		return err
	}
	t.compactions.Add(1)
	m.compactions.Inc()
	m.compactedPairs.Add(merged.Pairs)
	m.compactNs.Add(uint64(time.Since(start).Nanoseconds()))
	m.segments.Set(uint64(t.segs.count()))
	return nil
}
