package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"deltapath"
	"deltapath/internal/analysisio"
	"deltapath/internal/profile"
)

// epochSrc has one dynamic class so the analysis can be extended past
// epoch 0 before it is handed to the server.
const epochSrc = `
entry E.main
class E {
  method main {
    load Late
    loop 3 { vcall Base.op }
    emit done
  }
}
class Base { method op { emit base } }
dynamic class Late extends Base { method op { emit late } }
`

// TestTenantEpochSurfacing registers a tenant from an extended (epoch-1)
// analysis and checks the epoch flows through: the DPA3 bundle, the
// AddTenant reply, /healthz, and ingest routing for a .dpp stamped with
// the same epoch.
func TestTenantEpochSurfacing(t *testing.T) {
	prog, err := deltapath.ParseProgram(epochSrc)
	if err != nil {
		t.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Extend("Late"); err != nil {
		t.Fatal(err)
	}
	var dpa bytes.Buffer
	if err := an.SaveAnalysis(&dpa); err != nil {
		t.Fatal(err)
	}
	bundle, err := analysisio.Load(bytes.NewReader(dpa.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if bundle.Epoch != 1 {
		t.Fatalf("extended bundle epoch = %d, want 1", bundle.Epoch)
	}

	s := newTestServer(t, t.TempDir(), Config{})
	defer s.Close(context.Background())
	th, err := s.AddTenant("live", bytes.NewReader(dpa.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if th.Epoch != 1 {
		t.Fatalf("AddTenant epoch = %d, want 1", th.Epoch)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	h := healthz(t, ts.URL)
	if len(h.Tenants) != 1 || h.Tenants[0].Epoch != 1 {
		t.Fatalf("healthz tenants = %+v, want one tenant at epoch 1", h.Tenants)
	}

	// A profile captured at that epoch ingests by digest as usual.
	ctxs, err := an.Run(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctxs) == 0 {
		t.Fatal("program emitted no contexts")
	}
	var dpp bytes.Buffer
	w, err := profile.NewWriterEpoch(&dpp, bundle.Digest, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ctxs {
		rec, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Add(rec, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, ir := ingest(t, ts.URL, dpp.Bytes(), "epoch-batch")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	if ir.Applied != len(ctxs) || ir.Quarantined != 0 {
		t.Fatalf("ingest reply: %+v", ir)
	}
}

// TestTenantEpochZeroDefault pins the compatibility side: a pre-epoch
// (DPA2) tenant reports epoch 0.
func TestTenantEpochZeroDefault(t *testing.T) {
	fx := loadFixture(t)
	s := newTestServer(t, t.TempDir(), Config{})
	defer s.Close(context.Background())
	th, err := s.AddTenant("app", bytes.NewReader(fx.dpa))
	if err != nil {
		t.Fatal(err)
	}
	if th.Epoch != 0 {
		t.Fatalf("legacy tenant epoch = %d, want 0", th.Epoch)
	}
}
