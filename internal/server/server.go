// Package server is dprofiled's engine: a fault-tolerant, multi-tenant
// profile ingestion service over the streaming .dpp pipeline.
//
// Robustness is the headline, delivered by four mechanisms:
//
//   - Backpressure: each tenant has a bounded ingest queue. A full queue
//     sheds the batch with 429 + Retry-After instead of blocking the
//     accept loop or buffering unboundedly; the agent client retries with
//     jittered exponential backoff, and dp_server_shed_total counts every
//     shed so overload is visible, not silent.
//
//   - Durability: a batch is acknowledged only after its records are
//     fsynced to the tenant's write-ahead log. The worker group-commits:
//     every batch that queued while the previous fsync ran rides the next
//     one, so the fsync cost amortizes across the group without weakening
//     the fsync-before-ack contract. kill -9 at any instant loses no
//     acknowledged batch; restart replays the WAL tail (dropping at most a
//     half-written unacknowledged suffix) after re-certifying the analysis
//     digest. Memtable flushes into immutable sorted segments (an
//     LSM-style manifest + background compaction) bound replay time and
//     keep reads streaming.
//
//   - Graceful degradation: records that fail to decode (corrupt
//     encoding, no matching edge, residual ID) are quarantined with
//     per-class health counters; the rest of the batch lands. Shutdown
//     stops intake, drains queues under a deadline, and flushes final
//     snapshots.
//
//   - Idempotency: batches carry client-assigned IDs; a resend of an
//     applied batch (a retry after a lost acknowledgement) is absorbed
//     without double-counting.
//
// Endpoints: POST /ingest (a .dpp stream; routed to the tenant whose
// analysis digest matches the profile header), GET /top, GET /decode,
// GET /profile (the store streamed back as .dpp), GET /query (decoded
// rows streamed as NDJSON with O(segments) server memory), GET /healthz,
// GET /metrics (Prometheus).
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"deltapath/internal/analysisio"
	"deltapath/internal/obs"
	"deltapath/internal/profile"
)

// Config configures a Server. Zero values select the defaults.
type Config struct {
	// DataDir is the root of per-tenant durable state (one subdirectory
	// per tenant). Required.
	DataDir string
	// QueueDepth bounds each tenant's ingest queue in batches
	// (default 64). A full queue sheds with 429.
	QueueDepth int
	// WALMaxBytes triggers a snapshot + WAL truncation once a tenant's
	// WAL grows past it (default 1 MiB).
	WALMaxBytes int64
	// RetryAfterSeconds is advertised on 429/503 responses (default 1).
	RetryAfterSeconds int
	// MaxBodyBytes bounds one ingest request body (default 32 MiB).
	MaxBodyBytes int64
	// MaxBatchRecords bounds the records in one batch (default 100000).
	MaxBatchRecords int
	// MemtableMaxBytes flushes a tenant's memtable to a segment once its
	// approximate resident size passes it (default 4 MiB).
	MemtableMaxBytes int64
	// CompactMinSegments triggers background compaction once a tenant has
	// at least this many live segments (default 4).
	CompactMinSegments int
	// NoGroupCommit restores the per-batch fsync path: every batch gets
	// its own WAL append + fsync instead of riding a commit group. Only
	// useful for measuring what group commit buys.
	NoGroupCommit bool
	// Registry receives the dp_server_* metrics (nil = metrics off).
	Registry *obs.Registry
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.DataDir == "" {
		return errors.New("server: Config.DataDir is required")
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.WALMaxBytes <= 0 {
		c.WALMaxBytes = 1 << 20
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxBatchRecords <= 0 {
		c.MaxBatchRecords = 100000
	}
	if c.MemtableMaxBytes <= 0 {
		c.MemtableMaxBytes = 4 << 20
	}
	if c.CompactMinSegments <= 0 {
		c.CompactMinSegments = 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// metrics is the once-resolved dp_server_* sink set (all nil-safe).
type metrics struct {
	batches     *obs.Counter
	dupBatches  *obs.Counter
	records     *obs.Counter
	shed        *obs.Counter
	quarantined *obs.Counter
	walAppends  *obs.Counter
	walReplayed *obs.Counter
	walTrunc    *obs.Counter
	snapshots   *obs.Counter

	groupFsyncs    *obs.Counter
	groupBatches   *obs.Histogram
	commitWait     *obs.Histogram
	compactions    *obs.Counter
	compactedPairs *obs.Counter
	compactNs      *obs.Counter
	orphanSegs     *obs.Counter

	queueDepth    *obs.Gauge
	walBytes      *obs.Gauge
	tenants       *obs.Gauge
	segments      *obs.Gauge
	memtableBytes *obs.Gauge
	logf          func(string, ...any)
}

func newMetrics(reg *obs.Registry, logf func(string, ...any)) *metrics {
	return &metrics{
		batches:     reg.Counter(obs.MetricServerBatches),
		dupBatches:  reg.Counter(obs.MetricServerBatchesDup),
		records:     reg.Counter(obs.MetricServerRecords),
		shed:        reg.Counter(obs.MetricServerShed),
		quarantined: reg.Counter(obs.MetricServerQuarantined),
		walAppends:  reg.Counter(obs.MetricServerWALAppends),
		walReplayed: reg.Counter(obs.MetricServerWALReplayed),
		walTrunc:    reg.Counter(obs.MetricServerWALTruncated),
		snapshots:   reg.Counter(obs.MetricServerSnapshots),

		groupFsyncs:    reg.Counter(obs.MetricServerGroupFsyncs),
		groupBatches:   reg.Histogram(obs.MetricServerGroupBatches, nil),
		commitWait:     reg.Histogram(obs.MetricServerCommitWaitNs, obs.CommitWaitBuckets),
		compactions:    reg.Counter(obs.MetricServerCompactions),
		compactedPairs: reg.Counter(obs.MetricServerCompactedPairs),
		compactNs:      reg.Counter(obs.MetricServerCompactNs),
		orphanSegs:     reg.Counter(obs.MetricServerOrphanSegments),

		queueDepth:    reg.Gauge(obs.MetricServerQueueDepth),
		walBytes:      reg.Gauge(obs.MetricServerWALBytes),
		tenants:       reg.Gauge(obs.MetricServerTenants),
		segments:      reg.Gauge(obs.MetricServerSegments),
		memtableBytes: reg.Gauge(obs.MetricServerMemtableBytes),
		logf:          logf,
	}
}

// Server is the ingestion service. Create with New, register tenants with
// AddTenant, serve Handler(), and Close on shutdown.
type Server struct {
	cfg Config
	m   *metrics
	reg *obs.Registry

	mu       sync.RWMutex
	byName   map[string]*tenant
	byDigest map[analysisio.GraphDigest]*tenant

	// draining flips once Close begins: ingest returns 503 from then on.
	draining atomic.Bool
	// queryCtx is cancelled first thing in Close, aborting in-flight /top
	// decodes promptly (profile.DecodeContext stops between records).
	queryCtx    context.Context
	cancelQuery context.CancelFunc

	closeOnce sync.Once
	closeErr  error
}

// New validates cfg and returns an empty server; add tenants before
// serving.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:         cfg,
		m:           newMetrics(cfg.Registry, cfg.Logf),
		reg:         cfg.Registry,
		byName:      map[string]*tenant{},
		byDigest:    map[analysisio.GraphDigest]*tenant{},
		queryCtx:    ctx,
		cancelQuery: cancel,
	}, nil
}

// AddTenant registers a tenant named name for the persisted analysis read
// from r (a .dpa stream), recovering any durable state under
// DataDir/name and starting its worker. Ingested profiles are routed to
// the tenant whose digest matches their header.
func (s *Server) AddTenant(name string, r io.Reader) (TenantHealth, error) {
	if s.draining.Load() {
		return TenantHealth{}, errors.New("server: draining, not accepting tenants")
	}
	bundle, err := analysisio.Load(r)
	if err != nil {
		return TenantHealth{}, fmt.Errorf("server: tenant %s: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byName[name]; ok {
		return TenantHealth{}, fmt.Errorf("server: tenant %s already registered", name)
	}
	if prev, ok := s.byDigest[bundle.Digest]; ok {
		return TenantHealth{}, fmt.Errorf("server: tenant %s: digest %s already served by tenant %s",
			name, bundle.Digest, prev.name)
	}
	t, err := newTenant(name, bundle, filepath.Join(s.cfg.DataDir, name), s.cfg, s.reg)
	if err != nil {
		return TenantHealth{}, fmt.Errorf("server: %w", err)
	}
	s.m.walReplayed.Add(t.replayed.Load())
	s.m.walTrunc.Add(t.truncatedTails.Load())
	s.m.orphanSegs.Add(t.orphans.Load())
	s.m.segments.Set(uint64(t.segs.count()))
	s.byName[name] = t
	s.byDigest[t.digest] = t
	s.m.tenants.Set(uint64(len(s.byName)))
	t.wg.Add(1)
	go t.run(s.m)
	h := t.health()
	s.cfg.Logf("tenant %s: recovered %d records (%d unique), %d replayed from WAL, truncated tails %d",
		name, h.Records, h.Unique, h.Replayed, h.TruncatedTails)
	return h, nil
}

// tenantByName resolves a query's tenant parameter.
func (s *Server) tenantByName(name string) *tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byName[name]
}

func (s *Server) tenants() []*tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*tenant, 0, len(s.byName))
	for _, t := range s.byName {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Close shuts the server down gracefully: queries are aborted, intake is
// refused with 503, queued batches drain under ctx's deadline, and every
// tenant flushes a final snapshot. Safe to call once; returns the first
// error.
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.cancelQuery()

		// Hand each tenant the caller's ctx as its drain budget (queryCtx
		// is already cancelled — it aborts queries, not the drain) and cut
		// producers off. The queue channel is never closed: in-flight
		// ingest handlers may still be sending, and beginDrain makes those
		// sends fail cleanly instead of panicking.
		tenants := s.tenants()
		for _, t := range tenants {
			t.beginDrain(ctx)
		}
		done := make(chan struct{})
		go func() {
			for _, t := range tenants {
				t.wg.Wait()
			}
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.closeErr = fmt.Errorf("server: drain deadline passed: %w", ctx.Err())
		}
	})
	return s.closeErr
}

// Handler returns the server's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /top", s.handleTop)
	mux.HandleFunc("GET /decode", s.handleDecode)
	mux.HandleFunc("GET /profile", s.handleProfile)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// httpError writes a JSON error payload.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) retryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
}

// IngestResponse is the /ingest success payload.
type IngestResponse struct {
	Status      string `json:"status"`
	Batch       string `json:"batch"`
	Tenant      string `json:"tenant"`
	Records     int    `json:"records"`
	Applied     int    `json:"applied"`
	Quarantined int    `json:"quarantined"`
	Duplicate   bool   `json:"duplicate"`
}

// handleIngest accepts one batch: a .dpp stream whose header digest routes
// it to a tenant. The X-Batch-ID header (or, absent that, a content hash)
// keys idempotent resends. The handler never blocks on a full queue — it
// sheds with 429 + Retry-After.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	pr, err := profile.NewReader(bytes.NewReader(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	t := s.byDigest[pr.Digest()]
	s.mu.RUnlock()
	if t == nil {
		httpError(w, http.StatusPreconditionFailed,
			"no tenant serves analysis digest %s (stale analysis or unregistered program?)", pr.Digest())
		return
	}
	// From here until the batch reaches the queue (or is refused) this
	// handler is a pusher the tenant's worker can wait for: raising
	// inflight tells it that holding the current commit group open can
	// still gain a joiner. The gauge must drop at enqueue-resolution, NOT
	// at handler return — after enqueueing we block on the worker's own
	// ack, and counting ourselves as still inbound would make the worker
	// wait out its full window cap on every group. The deferred form only
	// covers the early-return paths below.
	t.inflight.Add(1)
	pending := true
	defer func() {
		if pending {
			t.inflight.Add(-1)
		}
	}()
	var recs []profile.Record
	for {
		rec, count, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A truncated or corrupt *stream* is a transport-level
			// failure: the batch is refused whole (the agent retries);
			// per-record quarantine is for records that arrive intact
			// but do not decode.
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if len(recs) == s.cfg.MaxBatchRecords {
			httpError(w, http.StatusRequestEntityTooLarge,
				"batch exceeds %d records", s.cfg.MaxBatchRecords)
			return
		}
		recs = append(recs, profile.Record{Key: rec, Count: count})
	}
	if len(recs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	id := r.Header.Get("X-Batch-ID")
	if id == "" {
		// Content-addressed fallback: identical resends still dedupe.
		// SHA-256 (truncated to 128 bits) makes accidental collision
		// between distinct payloads a non-concern; byte-identical
		// unlabeled batches are deliberately treated as one batch.
		sum := sha256.Sum256(body)
		id = "sha256-" + hex.EncodeToString(sum[:16])
	}
	if len(id) > 1024 {
		httpError(w, http.StatusBadRequest, "batch ID exceeds 1024 bytes")
		return
	}

	// Canonicalize here, in the handler goroutine, not in the worker: the
	// decode+re-marshal is the CPU-heavy half of application, and running
	// it before enqueue lets it overlap the worker's fsync of the previous
	// commit group instead of serializing behind it. An all-quarantined
	// batch still enqueues (possibly empty) so its ID enters the dedupe
	// window and the ack carries the full accounting.
	nRecs := len(recs)
	clean, quarantined := t.canonicalize(recs)
	b := &batch{id: id, recs: clean, quarantined: quarantined, done: make(chan batchResult, 1)}
	ok, draining := t.enqueue(b)
	pending = false
	t.inflight.Add(-1)
	if draining {
		// Close began after the handler's draining check above — the
		// tenant refuses cleanly rather than racing the shutdown.
		s.retryAfter(w)
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	if !ok {
		s.m.shed.Inc()
		s.retryAfter(w)
		httpError(w, http.StatusTooManyRequests,
			"tenant %s ingest queue full (%d batches)", t.name, cap(t.queue))
		return
	}
	s.m.queueDepth.Set(uint64(len(t.queue)))

	// Wait for the worker's durable acknowledgement. If the client goes
	// away the batch still applies — its retry will dedupe by ID.
	select {
	case res := <-b.done:
		if res.err != nil {
			s.retryAfter(w)
			httpError(w, http.StatusServiceUnavailable, "%v", res.err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(IngestResponse{
			Status:      "ok",
			Batch:       id,
			Tenant:      t.name,
			Records:     nRecs,
			Applied:     res.applied,
			Quarantined: res.quarantined,
			Duplicate:   res.duplicate,
		})
	case <-r.Context().Done():
		// Client disconnected; nothing useful to write.
	}
}

// TopRow is one /top row.
type TopRow struct {
	Context string `json:"context"`
	Count   uint64 `json:"count"`
}

// TopResponse is the /top payload.
type TopResponse struct {
	Tenant  string   `json:"tenant"`
	Total   uint64   `json:"total"`
	Unique  uint64   `json:"unique_contexts"`
	Records uint64   `json:"records"`
	Rows    []TopRow `json:"rows"`
}

// handleTop renders the tenant's hottest contexts by streaming the store
// snapshot through the parallel profile decoder. The decode runs under
// both the request context and the server's query context, so a client
// disconnect or a server shutdown aborts it between records.
func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	t := s.tenantByName(r.URL.Query().Get("tenant"))
	if t == nil {
		httpError(w, http.StatusNotFound, "unknown tenant %q", r.URL.Query().Get("tenant"))
		return
	}
	n := 10
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
		n = parsed
	}
	workers := 4
	if v := r.URL.Query().Get("workers"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > 64 {
			httpError(w, http.StatusBadRequest, "bad workers %q", v)
			return
		}
		workers = parsed
	}

	var buf bytes.Buffer
	pw, err := profile.NewWriter(&buf, t.digest)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := writeMerged(pw, t); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := pw.Flush(); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	pr, err := profile.NewReader(&buf)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	ctx, cancel := mergeContexts(r.Context(), s.queryCtx)
	defer cancel()
	rep, err := profile.DecodeContext(ctx, pr, workers, t.decodeRecord, s.reg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			s.retryAfter(w)
			httpError(w, http.StatusServiceUnavailable, "decode aborted: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := TopResponse{Tenant: t.name, Total: rep.Total, Unique: uint64(len(rep.Rows)), Records: rep.Records}
	for _, row := range rep.Top(n) {
		resp.Rows = append(resp.Rows, TopRow{Context: row.Context, Count: row.Count})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleDecode decodes one hex-encoded context record.
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	t := s.tenantByName(r.URL.Query().Get("tenant"))
	if t == nil {
		httpError(w, http.StatusNotFound, "unknown tenant %q", r.URL.Query().Get("tenant"))
		return
	}
	rec, err := hex.DecodeString(r.URL.Query().Get("record"))
	if err != nil || len(rec) == 0 {
		httpError(w, http.StatusBadRequest, "record must be non-empty hex")
		return
	}
	ctxStr, err := t.decodeRecord(rec)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"context": ctxStr})
}

// handleProfile streams the tenant's current aggregate back as a .dpp
// profile — the server's store is itself a valid dpdecode input.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	t := s.tenantByName(r.URL.Query().Get("tenant"))
	if t == nil {
		httpError(w, http.StatusNotFound, "unknown tenant %q", r.URL.Query().Get("tenant"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	pw, err := profile.NewWriter(w, t.digest)
	if err != nil {
		return
	}
	if err := writeMerged(pw, t); err != nil {
		return
	}
	pw.Flush()
}

// writeMerged streams the tenant's full aggregate — segments merged with
// the memtable — into a profile writer. Memory is O(segments), not
// O(store).
func writeMerged(pw *profile.Writer, t *tenant) error {
	mi, err := t.openMerge()
	if err != nil {
		return err
	}
	defer mi.close()
	for {
		key, count, err := mi.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := pw.Add(key, count); err != nil {
			return err
		}
	}
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status  string         `json:"status"`
	Tenants []TenantHealth `json:"tenants"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok"}
	code := http.StatusOK
	if s.draining.Load() {
		// A draining server 503s all ingest; report that at the HTTP
		// layer too, so health-checked load balancers (and
		// agentclient.Healthy) stop routing to it.
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	for _, t := range s.tenants() {
		resp.Tenants = append(resp.Tenants, t.health())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		httpError(w, http.StatusNotFound, "metrics registry disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

// mergeContexts returns a context cancelled when either parent is.
func mergeContexts(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}
