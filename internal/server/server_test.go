package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"deltapath"
	"deltapath/internal/analysisio"
	"deltapath/internal/obs"
	"deltapath/internal/profile"
)

// fixture is a real analysis (built by the full pipeline over a testdata
// program) plus valid context records emitted by its interpreter — the
// same inputs a live agent would push.
type fixture struct {
	dpa     []byte
	digest  analysisio.GraphDigest
	records [][]byte
}

var (
	fixtureOnce sync.Once
	fixtureVal  fixture
	fixtureErr  error
)

func loadFixture(t testing.TB) fixture {
	t.Helper()
	fixtureOnce.Do(func() {
		src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "recursion.mv"))
		if err != nil {
			fixtureErr = err
			return
		}
		prog, err := deltapath.ParseProgram(string(src))
		if err != nil {
			fixtureErr = err
			return
		}
		an, err := deltapath.Analyze(prog, deltapath.Options{})
		if err != nil {
			fixtureErr = err
			return
		}
		var dpa bytes.Buffer
		if err := an.SaveAnalysis(&dpa); err != nil {
			fixtureErr = err
			return
		}
		bundle, err := analysisio.Load(bytes.NewReader(dpa.Bytes()))
		if err != nil {
			fixtureErr = err
			return
		}
		var records [][]byte
		for seed := uint64(1); seed <= 3; seed++ {
			ctxs, err := an.Run(seed, nil)
			if err != nil {
				fixtureErr = err
				return
			}
			for _, c := range ctxs {
				rec, err := c.MarshalBinary()
				if err != nil {
					fixtureErr = err
					return
				}
				records = append(records, rec)
			}
		}
		if len(records) == 0 {
			fixtureErr = fmt.Errorf("testdata program emitted no contexts")
			return
		}
		fixtureVal = fixture{dpa: dpa.Bytes(), digest: bundle.Digest, records: records}
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureVal
}

// dppBatch frames records as one .dpp stream under digest.
func dppBatch(t testing.TB, digest analysisio.GraphDigest, records [][]byte, count uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := profile.NewWriter(&buf, digest)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		if err := w.Add(rec, count); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t testing.TB, dataDir string, cfg Config) *Server {
	t.Helper()
	cfg.DataDir = dataDir
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ingest(t testing.TB, url string, body []byte, batchID string) (*http.Response, IngestResponse) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if batchID != "" {
		req.Header.Set("X-Batch-ID", batchID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir IngestResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
	}
	return resp, ir
}

func healthz(t testing.TB, url string) HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestServerIngestAndQuery is the happy path end to end: ingest routes by
// digest, acks exactly once, and every query endpoint serves the
// aggregated state.
func TestServerIngestAndQuery(t *testing.T) {
	fx := loadFixture(t)
	s := newTestServer(t, t.TempDir(), Config{})
	defer s.Close(context.Background())
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := dppBatch(t, fx.digest, fx.records, 2)
	resp, ir := ingest(t, ts.URL, body, "batch-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	if ir.Applied != len(fx.records) || ir.Quarantined != 0 || ir.Duplicate {
		t.Fatalf("ingest reply: %+v", ir)
	}

	// Idempotent resend: same batch ID is absorbed without double-count.
	resp, ir = ingest(t, ts.URL, body, "batch-1")
	if resp.StatusCode != http.StatusOK || !ir.Duplicate {
		t.Fatalf("resend: status %d, reply %+v", resp.StatusCode, ir)
	}
	h := healthz(t, ts.URL)
	if len(h.Tenants) != 1 {
		t.Fatalf("healthz tenants: %+v", h.Tenants)
	}
	th := h.Tenants[0]
	wantTotal := uint64(len(fx.records)) * 2
	if th.Records != wantTotal || th.Batches != 1 || th.DupBatches != 1 {
		t.Fatalf("healthz after resend: %+v", th)
	}

	// No X-Batch-ID falls back to content addressing: still deduped.
	if _, ir = ingest(t, ts.URL, body, ""); ir.Duplicate {
		t.Fatalf("first content-addressed send marked duplicate")
	}
	if _, ir = ingest(t, ts.URL, body, ""); !ir.Duplicate {
		t.Fatalf("identical content-addressed resend not deduped")
	}

	// /top decodes the aggregate through the parallel decoder.
	resp, err := http.Get(ts.URL + "/top?tenant=app&n=5&workers=2")
	if err != nil {
		t.Fatal(err)
	}
	var top TopResponse
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(top.Rows) == 0 {
		t.Fatalf("/top: status %d, %+v", resp.StatusCode, top)
	}
	for _, row := range top.Rows {
		if !strings.Contains(row.Context, ">") && !strings.Contains(row.Context, "main") {
			t.Fatalf("/top row does not look like a decoded context: %+v", row)
		}
	}

	// /decode renders a single record.
	resp, err = http.Get(ts.URL + "/decode?tenant=app&record=" + hex.EncodeToString(fx.records[0]))
	if err != nil {
		t.Fatal(err)
	}
	var dec map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || dec["context"] == "" {
		t.Fatalf("/decode: status %d, %+v", resp.StatusCode, dec)
	}

	// /profile streams back a valid .dpp carrying the same totals.
	resp, err = http.Get(ts.URL + "/profile?tenant=app")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.NewReader(bytes.NewReader(prof))
	if err != nil {
		t.Fatalf("/profile is not a valid .dpp: %v", err)
	}
	if pr.Digest() != fx.digest {
		t.Fatalf("/profile digest %s, want %s", pr.Digest(), fx.digest)
	}
	var streamed uint64
	for {
		_, count, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		streamed += count
	}
	if streamed != wantTotal*2 { // doubled by the content-addressed send
		t.Fatalf("/profile total %d, want %d", streamed, wantTotal*2)
	}

	// /metrics exposes the dp_server_* family.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{obs.MetricServerBatches, obs.MetricServerRecords, obs.MetricServerWALAppends} {
		if !bytes.Contains(prom, []byte(name)) {
			t.Fatalf("/metrics missing %s:\n%s", name, prom)
		}
	}
}

// TestServerRejectsBadIngest: unknown digests, garbage streams, truncated
// streams, and empty batches are refused whole with typed statuses —
// nothing partial lands.
func TestServerRejectsBadIngest(t *testing.T) {
	fx := loadFixture(t)
	s := newTestServer(t, t.TempDir(), Config{})
	defer s.Close(context.Background())
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	otherDigest := fx.digest
	otherDigest.Hash ^= 0xff
	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"unknown digest", dppBatch(t, otherDigest, fx.records[:1], 1), http.StatusPreconditionFailed},
		{"garbage", []byte("not a dpp stream"), http.StatusBadRequest},
		{"truncated", dppBatch(t, fx.digest, fx.records, 1)[:len(dppBatch(t, fx.digest, fx.records, 1))-3], http.StatusBadRequest},
		{"empty batch", dppBatch(t, fx.digest, nil, 1), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := ingest(t, ts.URL, tc.body, "")
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	if h := healthz(t, ts.URL); h.Tenants[0].Records != 0 {
		t.Fatalf("refused ingests left records behind: %+v", h.Tenants[0])
	}
}

// TestServerQuarantine: records that arrive intact but do not decode are
// quarantined by class — the batch still succeeds and the good records
// land. Graceful degradation, not batch failure.
func TestServerQuarantine(t *testing.T) {
	fx := loadFixture(t)
	s := newTestServer(t, t.TempDir(), Config{})
	defer s.Close(context.Background())
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two well-framed but undecodable records alongside one good one.
	garbage := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	mangled := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}
	body := dppBatch(t, fx.digest, [][]byte{fx.records[0], garbage, mangled}, 1)
	resp, ir := ingest(t, ts.URL, body, "q-batch")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	if ir.Applied != 1 || ir.Quarantined != 2 {
		t.Fatalf("ingest reply: %+v", ir)
	}
	th := healthz(t, ts.URL).Tenants[0]
	quarantined := th.QuarantinedCorrupt + th.QuarantinedNoEdge + th.QuarantinedResidual + th.QuarantinedMangled
	if quarantined != 2 || th.Records != 1 {
		t.Fatalf("healthz after quarantine: %+v", th)
	}
	// /decode reports the same failure as 422 rather than 500.
	resp, err := http.Get(ts.URL + "/decode?tenant=app&record=" + hex.EncodeToString(garbage))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("/decode of garbage: %d, want 422", resp.StatusCode)
	}
}

// TestServerRecovery: acked state survives a full stop/start cycle — the
// store, the idempotency set, and the digest binding all recover from
// snapshot + WAL.
func TestServerRecovery(t *testing.T) {
	fx := loadFixture(t)
	dir := t.TempDir()

	s := newTestServer(t, dir, Config{})
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	body := dppBatch(t, fx.digest, fx.records, 3)
	if resp, _ := ingest(t, ts.URL, body, "persist-1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	want := healthz(t, ts.URL).Tenants[0]
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Second life: same data dir, fresh process state.
	s2 := newTestServer(t, dir, Config{})
	defer s2.Close(context.Background())
	th, err := s2.AddTenant("app", bytes.NewReader(fx.dpa))
	if err != nil {
		t.Fatal(err)
	}
	if th.Records != want.Records || th.Unique != want.Unique {
		t.Fatalf("recovered %d records (%d unique), want %d (%d)",
			th.Records, th.Unique, want.Records, want.Unique)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	// The applied set survived: the old batch ID still dedupes.
	if _, ir := ingest(t, ts2.URL, body, "persist-1"); !ir.Duplicate {
		t.Fatal("applied-batch set did not survive restart")
	}
	if got := healthz(t, ts2.URL).Tenants[0].Records; got != want.Records {
		t.Fatalf("post-restart resend changed totals: %d, want %d", got, want.Records)
	}
}

// TestServerRecoveryRefusesChangedAnalysis: restarting a tenant against a
// different analysis refuses to replay its durable state.
func TestServerRecoveryRefusesChangedAnalysis(t *testing.T) {
	fx := loadFixture(t)
	dir := t.TempDir()
	s := newTestServer(t, dir, Config{})
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	if resp, _ := ingest(t, ts.URL, dppBatch(t, fx.digest, fx.records, 1), "b"); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest failed")
	}
	ts.Close()
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A different program produces a different graph digest.
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "shapes.mv"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := deltapath.ParseProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var otherDpa bytes.Buffer
	if err := an.SaveAnalysis(&otherDpa); err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, dir, Config{})
	defer s2.Close(context.Background())
	if _, err := s2.AddTenant("app", bytes.NewReader(otherDpa.Bytes())); err == nil {
		t.Fatal("tenant reopened against a different analysis")
	}
}

// TestServerShedsWhenQueueFull: with the worker stalled and the queue
// full, ingest sheds synchronously with 429 + Retry-After and counts the
// shed — it never blocks the accept loop. Once the worker drains, the
// queued batches all ack.
func TestServerShedsWhenQueueFull(t *testing.T) {
	fx := loadFixture(t)
	const depth = 4
	s := newTestServer(t, t.TempDir(), Config{QueueDepth: depth, RetryAfterSeconds: 7})
	bundle, err := analysisio.Load(bytes.NewReader(fx.dpa))
	if err != nil {
		t.Fatal(err)
	}
	// Construct the tenant by hand WITHOUT starting its worker, so the
	// queue fills deterministically.
	tn, err := newTenant("app", bundle, filepath.Join(s.cfg.DataDir, "app"), s.cfg, s.reg)
	if err != nil {
		t.Fatal(err)
	}
	s.byName["app"] = tn
	s.byDigest[tn.digest] = tn
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	oks := make(chan int, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := dppBatch(t, fx.digest, fx.records[:1], uint64(i+1))
			resp, _ := ingest(t, ts.URL, body, fmt.Sprintf("fill-%d", i))
			oks <- resp.StatusCode
		}(i)
	}
	// Wait for all four to be parked in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for len(tn.queue) < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d/%d", len(tn.queue), depth)
		}
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/ingest",
		bytes.NewReader(dppBatch(t, fx.digest, fx.records[:1], 99)))
	req.Header.Set("X-Batch-ID", "overflow")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow ingest: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After = %q, want 7", resp.Header.Get("Retry-After"))
	}

	// Start the worker; every parked batch must ack, and the shed counter
	// must show exactly the one overflow.
	tn.wg.Add(1)
	go tn.run(s.m)
	wg.Wait()
	close(oks)
	for code := range oks {
		if code != http.StatusOK {
			t.Fatalf("parked ingest finished with %d", code)
		}
	}
	if got := tn.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	if got := s.reg.Counter(obs.MetricServerShed).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", obs.MetricServerShed, got)
	}
	tn.beginDrain(context.Background())
	tn.wg.Wait()
}

// TestServerDrainAppliesQueued: batches already queued when shutdown
// begins are applied (and acknowledged) during the drain, not refused —
// the drain context is the Close caller's budget, not the cancelled query
// context.
func TestServerDrainAppliesQueued(t *testing.T) {
	fx := loadFixture(t)
	const depth = 4
	s := newTestServer(t, t.TempDir(), Config{QueueDepth: depth})
	bundle, err := analysisio.Load(bytes.NewReader(fx.dpa))
	if err != nil {
		t.Fatal(err)
	}
	// Tenant by hand, worker deliberately not started: the queue fills and
	// stays full until the drain runs.
	tn, err := newTenant("app", bundle, filepath.Join(s.cfg.DataDir, "app"), s.cfg, s.reg)
	if err != nil {
		t.Fatal(err)
	}
	s.byName["app"] = tn
	s.byDigest[tn.digest] = tn
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make(chan int, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := dppBatch(t, fx.digest, fx.records[:1], uint64(i+1))
			resp, _ := ingest(t, ts.URL, body, fmt.Sprintf("drain-%d", i))
			codes <- resp.StatusCode
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(tn.queue) < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d/%d", len(tn.queue), depth)
		}
		time.Sleep(time.Millisecond)
	}

	// Shutdown begins with a healthy drain budget; the worker starts and
	// immediately drains. Every parked batch must come back acknowledged.
	tn.beginDrain(context.Background())
	tn.wg.Add(1)
	go tn.run(s.m)
	wg.Wait()
	tn.wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("queued batch finished with %d during drain, want 200", code)
		}
	}
	var want uint64
	for i := 1; i <= depth; i++ {
		want += uint64(i)
	}
	if got := tn.records(); got != want {
		t.Fatalf("drained store total %d, want %d", got, want)
	}

	// Post-drain, enqueue refuses with the draining signal, not a shed.
	ok, draining := tn.enqueue(&batch{id: "late", done: make(chan batchResult, 1)})
	if ok || !draining {
		t.Fatalf("post-drain enqueue: ok=%v draining=%v, want refused as draining", ok, draining)
	}
}

// TestServerDrainDeadlineRefuses: batches still queued once the drain
// budget is spent are refused — they were never acknowledged, so refusal
// loses nothing.
func TestServerDrainDeadlineRefuses(t *testing.T) {
	fx := loadFixture(t)
	const depth = 3
	s := newTestServer(t, t.TempDir(), Config{QueueDepth: depth})
	bundle, err := analysisio.Load(bytes.NewReader(fx.dpa))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := newTenant("app", bundle, filepath.Join(s.cfg.DataDir, "app"), s.cfg, s.reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		b := &batch{id: fmt.Sprintf("late-%d", i), recs: []profile.Record{{Key: fx.records[0], Count: 1}},
			done: make(chan batchResult, 1)}
		if ok, _ := tn.enqueue(b); !ok {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	tn.beginDrain(expired)
	tn.wg.Add(1)
	go tn.run(s.m)
	tn.wg.Wait()
	if got := tn.records(); got != 0 {
		t.Fatalf("expired drain applied %d records, want 0", got)
	}
}

// TestServerCloseIngestRace: Close racing live ingest traffic must never
// panic the handlers (the queue channel is not closed under producers) —
// every request finishes with 200, 429, or 503. Run with -race in CI.
func TestServerCloseIngestRace(t *testing.T) {
	fx := loadFixture(t)
	s := newTestServer(t, t.TempDir(), Config{QueueDepth: 2})
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				body := dppBatch(t, fx.digest, fx.records[:1], 1)
				resp, err := http.Post(ts.URL+"/ingest", "application/octet-stream", bytes.NewReader(body))
				if err != nil {
					// A handler panic kills the connection mid-response;
					// any transport error here is a failure.
					errs <- fmt.Errorf("client %d req %d: %v", c, i, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests:
				case http.StatusServiceUnavailable:
					return // draining reached this client; clean exit
				default:
					errs <- fmt.Errorf("client %d req %d: status %d", c, i, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	close(start)
	time.Sleep(10 * time.Millisecond) // let traffic build before the close races it
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServerDrainRefusal: after Close begins, ingest answers 503 +
// Retry-After and /healthz reports draining.
func TestServerDrainRefusal(t *testing.T) {
	fx := loadFixture(t)
	s := newTestServer(t, t.TempDir(), Config{})
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, _ := ingest(t, ts.URL, dppBatch(t, fx.digest, fx.records[:1], 1), "late")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	if h := healthz(t, ts.URL); h.Status != "draining" {
		t.Fatalf("healthz status %q, want draining", h.Status)
	}
	// The drain must be visible at the HTTP layer too, so health-checked
	// load balancers stop routing here.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", hresp.StatusCode)
	}
}

// TestServerSnapshotTrigger: a tiny WAL budget forces snapshot + WAL
// truncation mid-stream; totals stay exact and recovery still works.
func TestServerSnapshotTrigger(t *testing.T) {
	fx := loadFixture(t)
	dir := t.TempDir()
	s := newTestServer(t, dir, Config{WALMaxBytes: 256})
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	const batches = 8
	for i := 0; i < batches; i++ {
		body := dppBatch(t, fx.digest, fx.records, 1)
		if resp, _ := ingest(t, ts.URL, body, fmt.Sprintf("s-%d", i)); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: not ok", i)
		}
	}
	th := healthz(t, ts.URL).Tenants[0]
	if th.Snapshots == 0 {
		t.Fatalf("no snapshot despite %d-byte WAL budget: %+v", 256, th)
	}
	want := th.Records
	ts.Close()
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, dir, Config{})
	defer s2.Close(context.Background())
	th2, err := s2.AddTenant("app", bytes.NewReader(fx.dpa))
	if err != nil {
		t.Fatal(err)
	}
	if th2.Records != want {
		t.Fatalf("recovered %d records, want %d", th2.Records, want)
	}
}

// TestServerIngestStress: many concurrent agents, a small queue, and
// retry-on-429 — the exactly-once contract holds under overload: every
// distinct batch lands exactly once, and sheds are visible in the
// metrics, not silent. Run with -race in CI.
func TestServerIngestStress(t *testing.T) {
	fx := loadFixture(t)
	agents, perAgent := 8, 40
	if testing.Short() {
		agents, perAgent = 4, 10
	}
	s := newTestServer(t, t.TempDir(), Config{QueueDepth: 2})
	defer s.Close(context.Background())
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, agents)
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for b := 0; b < perAgent; b++ {
				body := dppBatch(t, fx.digest, fx.records, uint64(a*perAgent+b+1))
				id := fmt.Sprintf("agent-%d-batch-%d", a, b)
				// Send twice: a retry storm. Dedup must absorb it.
				for attempt := 0; attempt < 2; attempt++ {
					for {
						req, _ := http.NewRequest("POST", ts.URL+"/ingest", bytes.NewReader(body))
						req.Header.Set("X-Batch-ID", id)
						resp, err := http.DefaultClient.Do(req)
						if err != nil {
							errs <- err
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode == http.StatusOK {
							break
						}
						if resp.StatusCode != http.StatusTooManyRequests {
							errs <- fmt.Errorf("batch %s: status %d", id, resp.StatusCode)
							return
						}
					}
				}
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Exactly-once accounting: sum of every batch's counts, once each.
	var want uint64
	for i := 1; i <= agents*perAgent; i++ {
		want += uint64(i) * uint64(len(fx.records))
	}
	th := healthz(t, ts.URL).Tenants[0]
	if th.Records != want {
		t.Fatalf("store total %d, want %d (exactly-once violated)", th.Records, want)
	}
	if th.Batches != uint64(agents*perAgent) {
		t.Fatalf("applied batches %d, want %d", th.Batches, agents*perAgent)
	}
	if th.DupBatches != uint64(agents*perAgent) {
		t.Fatalf("duplicate batches %d, want %d", th.DupBatches, agents*perAgent)
	}
}
