package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"deltapath/internal/analysisio"
	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
	"deltapath/internal/obs"
	"deltapath/internal/profile"
)

// maxAppliedIDs bounds the per-tenant idempotency window: the most recent
// batch IDs kept for duplicate detection. An agent retry storm spans
// seconds; 65536 batches is hours of headroom at any plausible push rate,
// and the FIFO eviction keeps the set (and the snapshot that persists it)
// bounded forever.
const maxAppliedIDs = 65536

// batchResult is what the worker reports back to the waiting ingest
// handler.
type batchResult struct {
	err         error
	duplicate   bool
	quarantined int
	applied     int
}

// batch is one ingest request queued for a tenant's worker.
type batch struct {
	id   string
	recs []profile.Record
	// done receives exactly one result; buffered so the worker never
	// blocks on a handler whose client has gone away.
	done chan batchResult
}

// TenantHealth is a tenant's health counters, as served by /healthz.
type TenantHealth struct {
	Name           string `json:"name"`
	Digest         string `json:"digest"`
	Epoch          uint64 `json:"epoch"`
	Records        uint64 `json:"records"`
	Unique         uint64 `json:"unique_contexts"`
	Batches        uint64 `json:"batches_applied"`
	DupBatches     uint64 `json:"duplicate_batches"`
	Shed           uint64 `json:"batches_shed"`
	QueueLen       int    `json:"queue_len"`
	QueueCap       int    `json:"queue_cap"`
	WALBytes       int64  `json:"wal_bytes"`
	Snapshots      uint64 `json:"snapshots"`
	Replayed       uint64 `json:"wal_replayed_records"`
	TruncatedTails uint64 `json:"wal_truncated_tails"`

	// Quarantine counters, typed by decode-error class. Quarantined
	// records are counted and skipped; the batch they arrived in still
	// succeeds — graceful degradation, not batch failure.
	QuarantinedCorrupt  uint64 `json:"quarantined_corrupt_encoding"`
	QuarantinedNoEdge   uint64 `json:"quarantined_no_matching_edge"`
	QuarantinedResidual uint64 `json:"quarantined_residual_id"`
	QuarantinedMangled  uint64 `json:"quarantined_unparseable"`
}

// tenant is one analysis digest's ingestion state: a bounded queue feeding
// a single worker that owns the WAL, the store, and the applied-batch set.
type tenant struct {
	name   string
	digest analysisio.GraphDigest
	epoch  uint64
	dec    *encoding.CompiledDecoder
	graph  *callgraph.Graph
	dir    string

	queue chan *batch
	store *profile.Store
	wal   *WAL // owned by the worker goroutine after start

	// stop is closed by beginDrain. The queue channel itself is never
	// closed — producers send on it concurrently with shutdown, and a
	// send on a closed channel panics even inside a select.
	stop chan struct{}
	// drainCtx bounds the post-stop drain. Written by beginDrain before
	// it closes stop; the worker reads it only after observing stop
	// closed, so the channel close is the happens-before edge.
	drainCtx context.Context

	// prodMu serializes producers against shutdown: enqueue holds it
	// shared, beginDrain exclusively. Once beginDrain returns, no
	// producer can touch the queue, so the worker may drain it to empty.
	prodMu  sync.RWMutex
	stopped bool

	walMaxBytes int64

	// applied is the idempotency set; order is its FIFO eviction ring.
	// Owned by the worker (reads from the handler go through appliedHas).
	appliedMu sync.RWMutex
	applied   map[string]struct{}
	order     []string

	// Health counters (atomics: written by worker, read by /healthz).
	batches        atomic.Uint64
	dupBatches     atomic.Uint64
	shed           atomic.Uint64
	snapshots      atomic.Uint64
	replayed       atomic.Uint64
	truncatedTails atomic.Uint64
	qCorrupt       atomic.Uint64
	qNoEdge        atomic.Uint64
	qResidual      atomic.Uint64
	qMangled       atomic.Uint64

	wg sync.WaitGroup
}

// newTenant opens (or creates) a tenant's durable state under dir and
// recovers it: snapshot first, then committed WAL entries not already in
// the applied set, then the WAL is reopened for appends past its committed
// prefix. Both files are refused on a digest mismatch.
func newTenant(name string, bundle *analysisio.Bundle, dir string, queueDepth int, walMaxBytes int64, reg *obs.Registry) (*tenant, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	t := &tenant{
		name:        name,
		digest:      bundle.Digest,
		epoch:       bundle.Epoch,
		dec:         encoding.Compile(bundle.Spec),
		graph:       bundle.Graph,
		dir:         dir,
		queue:       make(chan *batch, queueDepth),
		stop:        make(chan struct{}),
		drainCtx:    context.Background(),
		store:       profile.NewStore(0),
		walMaxBytes: walMaxBytes,
		applied:     make(map[string]struct{}),
	}
	t.store.Observe(reg)

	snap, err := ReadSnapshot(t.snapshotPath(), t.digest)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", name, err)
	}
	for _, id := range snap.AppliedIDs {
		t.applied[id] = struct{}{}
		t.order = append(t.order, id)
	}
	for _, r := range snap.Records {
		t.store.AddCount(r.Key, r.Count)
	}

	replay, err := ReplayWAL(t.walPath(), t.digest)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", name, err)
	}
	if replay.TruncatedTail {
		t.truncatedTails.Add(1)
	}
	for _, b := range replay.Batches {
		if _, dup := t.applied[b.ID]; dup {
			continue // already in the snapshot
		}
		applied, _ := t.applyRecords(b.Records)
		t.replayed.Add(uint64(applied))
		t.rememberApplied(b.ID)
	}

	if _, err := os.Stat(t.walPath()); os.IsNotExist(err) {
		t.wal, err = CreateWAL(t.walPath(), t.digest)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
	} else {
		t.wal, err = openWALForAppend(t.walPath(), t.digest, replay.CommittedSize)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
	}
	return t, nil
}

func (t *tenant) walPath() string      { return filepath.Join(t.dir, "wal.log") }
func (t *tenant) snapshotPath() string { return filepath.Join(t.dir, "snapshot.dps") }

// decodeRecord renders one context record through the compiled decoder.
func (t *tenant) decodeRecord(rec []byte) (string, error) {
	st, end, err := encoding.UnmarshalContext(rec)
	if err != nil {
		return "", err
	}
	names, err := t.dec.DecodeNames(st, end)
	if err != nil {
		return "", err
	}
	return strings.Join(names, " > "), nil
}

// applyRecords validates and interns a batch's records. Records that fail
// to decode are quarantined — counted by error class and skipped — so one
// corrupt agent cannot fail a batch or poison the store. Returns how many
// records were applied and how many quarantined.
func (t *tenant) applyRecords(recs []profile.Record) (applied, quarantined int) {
	for _, r := range recs {
		if _, err := t.decodeRecord(r.Key); err != nil {
			switch {
			case errors.Is(err, encoding.ErrNoMatchingEdge):
				t.qNoEdge.Add(1)
			case errors.Is(err, encoding.ErrResidualID):
				t.qResidual.Add(1)
			case errors.Is(err, encoding.ErrCorruptEncoding):
				t.qCorrupt.Add(1)
			default:
				t.qMangled.Add(1)
			}
			quarantined++
			continue
		}
		t.store.AddCount(r.Key, r.Count)
		applied++
	}
	return applied, quarantined
}

// rememberApplied records a batch ID in the idempotency set, evicting the
// oldest ID past the cap.
func (t *tenant) rememberApplied(id string) {
	t.appliedMu.Lock()
	defer t.appliedMu.Unlock()
	if _, ok := t.applied[id]; ok {
		return
	}
	t.applied[id] = struct{}{}
	t.order = append(t.order, id)
	if len(t.order) > maxAppliedIDs {
		delete(t.applied, t.order[0])
		t.order = t.order[1:]
	}
}

func (t *tenant) appliedHas(id string) bool {
	t.appliedMu.RLock()
	defer t.appliedMu.RUnlock()
	_, ok := t.applied[id]
	return ok
}

// enqueue attempts a non-blocking enqueue. ok=false with draining=true
// means shutdown has begun and the caller must answer 503; draining=false
// means the queue is full and the caller must shed with 429.
func (t *tenant) enqueue(b *batch) (ok, draining bool) {
	t.prodMu.RLock()
	defer t.prodMu.RUnlock()
	if t.stopped {
		return false, true
	}
	select {
	case t.queue <- b:
		return true, false
	default:
		t.shed.Add(1)
		return false, false
	}
}

// beginDrain transitions the tenant into shutdown: producers are cut off
// (enqueue reports draining from here on), ctx becomes the drain budget,
// and the worker is signalled. The exclusive lock waits out any producer
// already inside enqueue, so when this returns the queue's content is
// frozen and the worker alone touches it. Idempotent.
func (t *tenant) beginDrain(ctx context.Context) {
	t.prodMu.Lock()
	already := t.stopped
	t.stopped = true
	t.prodMu.Unlock()
	if already {
		return
	}
	t.drainCtx = ctx
	close(t.stop)
}

// run is the tenant's worker loop: apply queued batches until beginDrain
// signals shutdown, then drain what remains under the drain context's
// deadline and write a final snapshot. m carries the server-wide metric
// sinks.
func (t *tenant) run(m *metrics) {
	defer t.wg.Done()
	for {
		// Poll stop first: a two-way select picks randomly when both are
		// ready, which would let the normal branch keep applying batches
		// past an already-expired drain deadline.
		select {
		case <-t.stop:
			t.drain(m)
			t.snapshot(m)
			t.wal.Close()
			return
		default:
		}
		select {
		case b := <-t.queue:
			t.serve(b, m)
		case <-t.stop:
			t.drain(m)
			t.snapshot(m)
			t.wal.Close()
			return
		}
	}
}

// serve applies one batch and handles the bookkeeping that follows it.
func (t *tenant) serve(b *batch, m *metrics) {
	b.done <- t.apply(b, m)
	m.queueDepth.Set(uint64(len(t.queue)))
	if t.wal.Size() >= t.walMaxBytes {
		t.snapshot(m)
	}
}

// drain empties the queue after shutdown began. beginDrain has already cut
// producers off, so the queue only shrinks here. Batches still queued past
// the drain deadline are refused — none of them were acknowledged, so the
// agent re-sends them.
func (t *tenant) drain(m *metrics) {
	for {
		select {
		case b := <-t.queue:
			if t.drainCtx.Err() != nil {
				b.done <- batchResult{err: fmt.Errorf("server draining: %w", t.drainCtx.Err())}
				continue
			}
			t.serve(b, m)
		default:
			return
		}
	}
}

// apply processes one batch end to end: idempotency check, durable WAL
// append, validate + intern, remember the batch ID. The result is sent
// only after the WAL fsync — the acknowledgement IS the durability
// boundary.
func (t *tenant) apply(b *batch, m *metrics) batchResult {
	if t.appliedHas(b.id) {
		t.dupBatches.Add(1)
		m.dupBatches.Inc()
		return batchResult{duplicate: true}
	}
	if err := t.wal.Append(b.id, b.recs); err != nil {
		if t.wal.Failed() {
			// The log could not be cut back to a committed boundary and
			// is refusing appends; a successful snapshot subsumes it and
			// recreates it fresh.
			t.snapshot(m)
		}
		return batchResult{err: err}
	}
	m.walAppends.Inc()
	m.walBytes.Set(uint64(t.wal.Size()))
	applied, quarantined := t.applyRecords(b.recs)
	t.rememberApplied(b.id)
	t.batches.Add(1)
	m.batches.Inc()
	m.records.Add(uint64(applied))
	if quarantined > 0 {
		m.quarantined.Add(uint64(quarantined))
	}
	return batchResult{applied: applied, quarantined: quarantined}
}

// snapshot atomically persists the store and applied set, then truncates
// the WAL whose entries it subsumes.
func (t *tenant) snapshot(m *metrics) {
	t.appliedMu.RLock()
	ids := append([]string(nil), t.order...)
	t.appliedMu.RUnlock()
	snap := &Snapshot{AppliedIDs: ids, Records: t.store.Snapshot()}
	if err := WriteSnapshot(t.snapshotPath(), t.digest, snap); err != nil {
		// A failed snapshot is not fatal: the WAL still holds everything.
		m.logf("tenant %s: snapshot failed: %v", t.name, err)
		return
	}
	if err := t.wal.Reset(); err != nil {
		m.logf("tenant %s: wal reset failed: %v", t.name, err)
		return
	}
	t.snapshots.Add(1)
	m.snapshots.Inc()
	m.walBytes.Set(uint64(t.wal.Size()))
}

// health snapshots the tenant's counters.
func (t *tenant) health() TenantHealth {
	return TenantHealth{
		Name:                t.name,
		Digest:              t.digest.String(),
		Epoch:               t.epoch,
		Records:             t.store.Total(),
		Unique:              t.store.Unique(),
		Batches:             t.batches.Load(),
		DupBatches:          t.dupBatches.Load(),
		Shed:                t.shed.Load(),
		QueueLen:            len(t.queue),
		QueueCap:            cap(t.queue),
		WALBytes:            t.wal.Size(),
		Snapshots:           t.snapshots.Load(),
		Replayed:            t.replayed.Load(),
		TruncatedTails:      t.truncatedTails.Load(),
		QuarantinedCorrupt:  t.qCorrupt.Load(),
		QuarantinedNoEdge:   t.qNoEdge.Load(),
		QuarantinedResidual: t.qResidual.Load(),
		QuarantinedMangled:  t.qMangled.Load(),
	}
}
