package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deltapath/internal/analysisio"
	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
	"deltapath/internal/obs"
	"deltapath/internal/profile"
)

// maxAppliedIDs bounds the per-tenant idempotency window: the most recent
// batch IDs kept for duplicate detection. An agent retry storm spans
// seconds; 65536 batches is hours of headroom at any plausible push rate,
// and the FIFO eviction keeps the set (and the manifest that persists it)
// bounded forever.
const maxAppliedIDs = 65536

// batchResult is what the worker reports back to the waiting ingest
// handler.
type batchResult struct {
	err         error
	duplicate   bool
	quarantined int
	applied     int
}

// batch is one ingest request queued for a tenant's worker. recs are
// already canonical — the handler ran canonicalize before enqueueing —
// and quarantined carries the count of records it dropped doing so, so
// the worker can ack the full accounting without re-validating.
type batch struct {
	id          string
	recs        []profile.Record
	quarantined int
	// enqueuedAt feeds the commit-wait histogram: how long the batch sat
	// between entering the queue and its group's fsync completing.
	enqueuedAt time.Time
	// done receives exactly one result; buffered so the worker never
	// blocks on a handler whose client has gone away.
	done chan batchResult
}

// TenantHealth is a tenant's health counters, as served by /healthz.
type TenantHealth struct {
	Name           string `json:"name"`
	Digest         string `json:"digest"`
	Epoch          uint64 `json:"epoch"`
	Records        uint64 `json:"records"`
	Unique         uint64 `json:"unique_contexts"`
	Batches        uint64 `json:"batches_applied"`
	DupBatches     uint64 `json:"duplicate_batches"`
	Shed           uint64 `json:"batches_shed"`
	QueueLen       int    `json:"queue_len"`
	QueueCap       int    `json:"queue_cap"`
	WALBytes       int64  `json:"wal_bytes"`
	Snapshots      uint64 `json:"snapshots"`
	Replayed       uint64 `json:"wal_replayed_records"`
	TruncatedTails uint64 `json:"wal_truncated_tails"`

	// Segment-store shape: live segment files, approximate memtable
	// bytes, compaction passes, partially written segments discarded
	// during recovery, and how many fsyncs the group-commit loop issued
	// (batches_applied / group_fsyncs is the amortization factor).
	Segments      int    `json:"segments"`
	MemtableBytes uint64 `json:"memtable_bytes"`
	Compactions   uint64 `json:"compactions"`
	Orphans       uint64 `json:"orphan_segments_discarded"`
	GroupFsyncs   uint64 `json:"group_fsyncs"`

	// Quarantine counters, typed by decode-error class. Quarantined
	// records are counted and skipped; the batch they arrived in still
	// succeeds — graceful degradation, not batch failure.
	QuarantinedCorrupt  uint64 `json:"quarantined_corrupt_encoding"`
	QuarantinedNoEdge   uint64 `json:"quarantined_no_matching_edge"`
	QuarantinedResidual uint64 `json:"quarantined_residual_id"`
	QuarantinedMangled  uint64 `json:"quarantined_unparseable"`
}

// groupCommitWindow caps how long a commit group is held open for late
// joiners before its fsync. The hold is not a fixed sleep: the worker
// waits only while the tenant's inflight gauge shows handlers actually
// processing a request that has not reached the queue yet — the agents
// the previous fsync acked, mid-flight with their next batch. The moment
// every known pusher is either queued or idle the group commits, so a
// solo pusher never waits and the cap only bounds ack latency against a
// handler stuck mid-request.
const groupCommitWindow = 500 * time.Microsecond

// tenant is one analysis digest's ingestion state: a bounded queue feeding
// a single worker that owns the WAL, the memtable, and the applied-batch
// set, plus a background compactor that owns segment merges.
type tenant struct {
	name   string
	digest analysisio.GraphDigest
	epoch  uint64
	dec    *encoding.CompiledDecoder
	graph  *callgraph.Graph
	dir    string
	reg    *obs.Registry

	queue chan *batch
	// mem is the hot memtable. Only the worker swaps it (at flush);
	// queries load it through the segment-set mutex so they see a
	// (segments, memtable) pair from one instant — never a record both in
	// a fresh segment and in the memtable that was flushed into it.
	mem  atomic.Pointer[profile.Store]
	segs *segmentSet
	wal  *WAL // owned by the worker goroutine after start

	// stop is closed by beginDrain. The queue channel itself is never
	// closed — producers send on it concurrently with shutdown, and a
	// send on a closed channel panics even inside a select.
	stop chan struct{}
	// drainCtx bounds the post-stop drain. Written by beginDrain before
	// it closes stop; the worker reads it only after observing stop
	// closed, so the channel close is the happens-before edge.
	drainCtx context.Context

	// prodMu serializes producers against shutdown: enqueue holds it
	// shared, beginDrain exclusively. Once beginDrain returns, no
	// producer can touch the queue, so the worker may drain it to empty.
	prodMu  sync.RWMutex
	stopped bool

	walMaxBytes int64
	memMaxBytes int64
	// groupMax caps how many queued batches one fsync may absorb
	// (QueueDepth by default; 1 restores the seed's per-batch fsync).
	groupMax   int
	compactMin int

	// compactKick wakes the compactor (capacity 1: a pending kick absorbs
	// further ones). The compactor exits on stop; shutdown waits for it
	// before the final flush so manifests never interleave past close.
	compactKick chan struct{}
	compactWG   sync.WaitGroup

	// applied is the idempotency set; order is its FIFO eviction ring.
	// Owned by the worker (reads from the handler go through appliedHas).
	appliedMu sync.RWMutex
	applied   map[string]struct{}
	order     []string

	// inflight counts ingest handlers between accepting a request body and
	// resolving it (enqueued, refused, or failed). The worker reads it to
	// decide whether holding the current commit group open can still gain a
	// joiner; see run.
	inflight atomic.Int64

	// Health counters (atomics: written by worker, read by /healthz).
	totalRecords   atomic.Uint64 // Σ counts across segments + memtable
	batches        atomic.Uint64
	dupBatches     atomic.Uint64
	shed           atomic.Uint64
	snapshots      atomic.Uint64 // memtable flushes (field name kept for health compat)
	groupFsyncs    atomic.Uint64
	compactions    atomic.Uint64
	orphans        atomic.Uint64
	replayed       atomic.Uint64
	truncatedTails atomic.Uint64
	qCorrupt       atomic.Uint64
	qNoEdge        atomic.Uint64
	qResidual      atomic.Uint64
	qMangled       atomic.Uint64

	wg sync.WaitGroup
}

// newTenant opens (or creates) a tenant's durable state under dir and
// recovers it: the segment manifest first (migrating a legacy DPS1
// snapshot into the segment layout if that is what is on disk), then
// orphaned segment files are discarded, then committed WAL entries not in
// the manifest's applied set are replayed into a fresh memtable, and the
// WAL is reopened for appends past its committed prefix. Every file is
// refused on a digest mismatch.
func newTenant(name string, bundle *analysisio.Bundle, dir string, cfg Config, reg *obs.Registry) (*tenant, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	groupMax := cfg.QueueDepth
	if cfg.NoGroupCommit || groupMax < 1 {
		groupMax = 1
	}
	t := &tenant{
		name:        name,
		digest:      bundle.Digest,
		epoch:       bundle.Epoch,
		dec:         encoding.Compile(bundle.Spec),
		graph:       bundle.Graph,
		dir:         dir,
		reg:         reg,
		queue:       make(chan *batch, cfg.QueueDepth),
		stop:        make(chan struct{}),
		drainCtx:    context.Background(),
		walMaxBytes: cfg.WALMaxBytes,
		memMaxBytes: cfg.MemtableMaxBytes,
		groupMax:    groupMax,
		compactMin:  cfg.CompactMinSegments,
		compactKick: make(chan struct{}, 1),
		applied:     make(map[string]struct{}),
		segs:        &segmentSet{dir: dir, digest: bundle.Digest},
	}
	mem := profile.NewStore(0)
	mem.Observe(reg)
	t.mem.Store(mem)

	man, ok, err := readManifest(dir, t.digest)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", name, err)
	}
	if !ok {
		man, err = t.migrateLegacySnapshot()
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
	} else {
		// A lingering snapshot.dps next to a manifest is the leftover of
		// a crash between manifest install and snapshot delete during
		// migration — the manifest is authoritative.
		os.Remove(t.snapshotPath())
	}
	if man != nil {
		t.segs.nextSeq = man.NextSeq
		t.segs.manifestIDs = man.AppliedIDs
		for _, seq := range man.Segments {
			seg, err := OpenSegment(segmentPath(dir, seq), t.digest)
			if err != nil {
				return nil, fmt.Errorf("tenant %s: %w", name, err)
			}
			if seg.Seq != seq {
				return nil, fmt.Errorf("tenant %s: segment %s records seq %d, manifest says %d",
					name, seg.Path, seg.Seq, seq)
			}
			t.segs.segs = append(t.segs.segs, seg)
		}
		for _, id := range man.AppliedIDs {
			t.applied[id] = struct{}{}
			t.order = append(t.order, id)
		}
	}
	discarded, err := discardOrphans(dir, t.segs.segs)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", name, err)
	}
	t.orphans.Add(uint64(discarded))
	t.totalRecords.Store(t.segs.totalRecords())

	replay, err := ReplayWAL(t.walPath(), t.digest)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", name, err)
	}
	if replay.TruncatedTail {
		t.truncatedTails.Add(1)
	}
	for _, b := range replay.Batches {
		if _, dup := t.applied[b.ID]; dup {
			continue // already persisted in a segment
		}
		applied, _ := t.applyRecords(b.Records)
		t.replayed.Add(uint64(applied))
		t.rememberApplied(b.ID)
	}

	if _, statErr := os.Stat(t.walPath()); os.IsNotExist(statErr) || replay.CommittedSize == 0 {
		// No WAL, or one whose header was torn by a crash mid-Reset
		// (CommittedSize 0 — a readable header alone is already > 0):
		// start a fresh header-only file.
		t.wal, err = CreateWAL(t.walPath(), t.digest)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
	} else {
		t.wal, err = openWALForAppend(t.walPath(), t.digest, replay.CommittedSize)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
	}
	return t, nil
}

// migrateLegacySnapshot converts a pre-segment DPS1 monolith into the
// segment layout: its records become segment 0, its applied set the
// manifest's. Returns nil when there is nothing on disk. Crash-safe: the
// snapshot is deleted only after the manifest is durable, and a re-run
// overwrites the same segment 0.
func (t *tenant) migrateLegacySnapshot() (*manifest, error) {
	snap, err := ReadSnapshot(t.snapshotPath(), t.digest)
	if err != nil {
		return nil, err
	}
	if len(snap.AppliedIDs) == 0 && len(snap.Records) == 0 {
		return nil, nil
	}
	man := &manifest{NextSeq: 1, AppliedIDs: snap.AppliedIDs}
	if len(snap.Records) > 0 {
		recs := snap.Records
		sort.Slice(recs, func(i, j int) bool {
			return string(recs[i].Key) < string(recs[j].Key)
		})
		if _, err := writeSegment(t.dir, t.digest, 0, recs); err != nil {
			return nil, err
		}
		man.Segments = []uint64{0}
	}
	if err := writeManifest(t.dir, t.digest, man); err != nil {
		return nil, err
	}
	os.Remove(t.snapshotPath())
	return man, nil
}

func (t *tenant) walPath() string      { return filepath.Join(t.dir, "wal.log") }
func (t *tenant) snapshotPath() string { return filepath.Join(t.dir, "snapshot.dps") }

// records reports the tenant's aggregate hit count: everything in
// segments plus the memtable.
func (t *tenant) records() uint64 { return t.totalRecords.Load() }

// openMerge opens a k-way merge over the tenant's segments plus the
// memtable, capturing both under the segment-set mutex so the view is one
// instant's. The caller must close the iterator.
func (t *tenant) openMerge() (*mergeIter, error) {
	t.segs.mu.Lock()
	defer t.segs.mu.Unlock()
	iters := make([]pairIter, 0, len(t.segs.segs)+1)
	for _, sg := range t.segs.segs {
		it, err := sg.iter(t.digest)
		if err != nil {
			for _, o := range iters {
				o.close()
			}
			return nil, err
		}
		iters = append(iters, it)
	}
	iters = append(iters, &memPairs{recs: t.mem.Load().Snapshot()})
	return newMergeIter(iters)
}

// uniqueContexts counts distinct records across segments + memtable. With
// segments on disk this is a merge scan — O(1) memory, O(store) I/O — so
// it is priced for /healthz polls, not hot paths.
func (t *tenant) uniqueContexts() uint64 {
	t.segs.mu.Lock()
	nSegs := len(t.segs.segs)
	var segPairs uint64
	if nSegs == 1 {
		segPairs = t.segs.segs[0].Pairs
	}
	memUnique := t.mem.Load().Unique()
	t.segs.mu.Unlock()
	if nSegs == 0 {
		return memUnique
	}
	if nSegs == 1 && memUnique == 0 {
		return segPairs
	}
	mi, err := t.openMerge()
	if err != nil {
		return 0
	}
	defer mi.close()
	var n uint64
	for {
		if _, _, err := mi.next(); err != nil {
			return n
		}
		n++
	}
}

// decodeRecord renders one context record through the compiled decoder.
func (t *tenant) decodeRecord(rec []byte) (string, error) {
	st, end, err := encoding.UnmarshalContext(rec)
	if err != nil {
		return "", err
	}
	names, err := t.dec.DecodeNames(st, end)
	if err != nil {
		return "", err
	}
	return strings.Join(names, " > "), nil
}

// canonicalize validates a batch's records and rewrites the survivors into
// canonical bytes. Records that fail to decode are quarantined — counted by
// error class and dropped — so one corrupt agent cannot fail a batch or
// poison the store. The canonical re-marshal makes byte-key identity in the
// segment store coincide with decoded-context identity (varint-padded
// duplicates of the same context merge instead of splitting a row).
//
// This is the CPU-heavy half of record application, and it is deliberately
// NOT worker-owned: the ingest handler calls it from its own goroutine
// before enqueueing, so validation of the next batches overlaps the
// worker's fsync instead of serializing behind it. Only immutable tenant
// state (the compiled decoder) and atomic counters are touched — safe from
// any goroutine.
func (t *tenant) canonicalize(recs []profile.Record) (clean []profile.Record, quarantined int) {
	clean = recs[:0]
	for _, r := range recs {
		st, end, err := encoding.UnmarshalContext(r.Key)
		if err == nil {
			_, err = t.dec.DecodeNames(st, end)
		}
		if err != nil {
			switch {
			case errors.Is(err, encoding.ErrNoMatchingEdge):
				t.qNoEdge.Add(1)
			case errors.Is(err, encoding.ErrResidualID):
				t.qResidual.Add(1)
			case errors.Is(err, encoding.ErrCorruptEncoding):
				t.qCorrupt.Add(1)
			default:
				t.qMangled.Add(1)
			}
			quarantined++
			continue
		}
		clean = append(clean, profile.Record{Key: encoding.MarshalContext(st, end), Count: r.Count})
	}
	return clean, quarantined
}

// applyCanonical interns already-canonicalized records into the memtable —
// the worker-owned half of application, kept minimal so the commit loop
// spends its serial budget on fsyncs, not decoding.
func (t *tenant) applyCanonical(recs []profile.Record) (applied int) {
	mem := t.mem.Load()
	for _, r := range recs {
		mem.AddCount(r.Key, r.Count)
		t.totalRecords.Add(r.Count)
		applied++
	}
	return applied
}

// applyRecords validates, canonicalizes, and interns raw records — the
// WAL-replay path, where no handler has pre-validated the batch.
func (t *tenant) applyRecords(recs []profile.Record) (applied, quarantined int) {
	clean, quarantined := t.canonicalize(recs)
	return t.applyCanonical(clean), quarantined
}

// rememberApplied records a batch ID in the idempotency set, evicting the
// oldest ID past the cap.
func (t *tenant) rememberApplied(id string) {
	t.appliedMu.Lock()
	defer t.appliedMu.Unlock()
	if _, ok := t.applied[id]; ok {
		return
	}
	t.applied[id] = struct{}{}
	t.order = append(t.order, id)
	if len(t.order) > maxAppliedIDs {
		delete(t.applied, t.order[0])
		t.order = t.order[1:]
	}
}

func (t *tenant) appliedHas(id string) bool {
	t.appliedMu.RLock()
	defer t.appliedMu.RUnlock()
	_, ok := t.applied[id]
	return ok
}

// enqueue attempts a non-blocking enqueue. ok=false with draining=true
// means shutdown has begun and the caller must answer 503; draining=false
// means the queue is full and the caller must shed with 429.
func (t *tenant) enqueue(b *batch) (ok, draining bool) {
	t.prodMu.RLock()
	defer t.prodMu.RUnlock()
	if t.stopped {
		return false, true
	}
	b.enqueuedAt = time.Now()
	select {
	case t.queue <- b:
		return true, false
	default:
		t.shed.Add(1)
		return false, false
	}
}

// beginDrain transitions the tenant into shutdown: producers are cut off
// (enqueue reports draining from here on), ctx becomes the drain budget,
// and the worker is signalled. The exclusive lock waits out any producer
// already inside enqueue, so when this returns the queue's content is
// frozen and the worker alone touches it. Idempotent.
func (t *tenant) beginDrain(ctx context.Context) {
	t.prodMu.Lock()
	already := t.stopped
	t.stopped = true
	t.prodMu.Unlock()
	if already {
		return
	}
	t.drainCtx = ctx
	close(t.stop)
}

// run is the tenant's worker loop: group-commit queued batches until
// beginDrain signals shutdown, then drain what remains under the drain
// context's deadline, retire the compactor, and flush a final segment.
// m carries the server-wide metric sinks.
func (t *tenant) run(m *metrics) {
	defer t.wg.Done()
	t.compactWG.Add(1)
	go t.compactLoop(m)
	group := make([]*batch, 0, t.groupMax)
	for {
		// Poll stop first: a two-way select picks randomly when both are
		// ready, which would let the normal branch keep applying batches
		// past an already-expired drain deadline.
		select {
		case <-t.stop:
			t.shutdown(m)
			return
		default:
		}
		select {
		case b := <-t.queue:
			// Group commit: everything that queued up while the previous
			// fsync ran rides the next one. The first receive blocks (no
			// busy loop); the rest are drained without blocking.
			group = append(group[:0], b)
		fill:
			for len(group) < t.groupMax {
				select {
				case more := <-t.queue:
					group = append(group, more)
				default:
					break fill
				}
			}
			// Commit hold: handlers still mid-request (inflight) are
			// pushers this fsync could absorb — every joiner halves that
			// agent's fsync share. Hold the group open until no pusher is
			// inbound or the window cap expires, whichever is first. The
			// hold runs even for a singleton drain: right after a group
			// ack, the first re-pusher's batch often arrives while its
			// cohort is still runnable-but-unscheduled, showing a
			// momentarily empty queue and a zero gauge — committing on
			// that evidence would pin the group size at whatever the
			// scheduler happened to interleave. A true solo pusher exits
			// via the idle confirmation in a few yields; the cap only
			// bites when a handler stalls mid-request (slow body read).
			if t.groupMax > 1 {
				// Gosched, not Sleep: the point is to hand the CPU to the
				// handler goroutines carrying the joiners' requests, and a
				// timer sleep overshoots the window by more than the window.
				deadline := time.Now().Add(groupCommitWindow)
				idle := 0
			hold:
				for len(group) < t.groupMax && time.Now().Before(deadline) {
					select {
					case more := <-t.queue:
						group = append(group, more)
						idle = 0
					default:
						if t.inflight.Load() == 0 {
							// An agent this commit would ack late is often
							// runnable but not yet scheduled (it was just
							// acked and is turning its next batch around),
							// so a momentary zero is not proof the fleet
							// went quiet. Yield a few quanta and only
							// commit once the gauge stays zero.
							idle++
							if idle > 2 {
								break hold
							}
						} else {
							idle = 0
						}
						runtime.Gosched()
					}
				}
			}
			t.commitGroup(group, m)
			m.queueDepth.Set(uint64(len(t.queue)))
			t.maybeFlush(m)
		case <-t.stop:
			t.shutdown(m)
			return
		}
	}
}

// shutdown finishes the worker: drain the frozen queue, wait out the
// compactor (it observed stop), then flush so restart recovery replays an
// empty WAL tail.
func (t *tenant) shutdown(m *metrics) {
	t.drain(m)
	t.compactWG.Wait()
	t.flush(m)
	t.wal.Close()
}

// drain empties the queue after shutdown began. beginDrain has already cut
// producers off, so the queue only shrinks here. Batches still queued past
// the drain deadline are refused — none of them were acknowledged, so the
// agent re-sends them.
func (t *tenant) drain(m *metrics) {
	for {
		select {
		case b := <-t.queue:
			if t.drainCtx.Err() != nil {
				b.done <- batchResult{err: fmt.Errorf("server draining: %w", t.drainCtx.Err())}
				continue
			}
			t.commitGroup([]*batch{b}, m)
			m.queueDepth.Set(uint64(len(t.queue)))
			t.maybeFlush(m)
		default:
			return
		}
	}
}

// commitGroup processes one commit group end to end: idempotency
// partition, one durable WAL append+fsync for every fresh batch, then
// per-batch validate + intern + acknowledge. Acknowledgements are sent
// only after the group's fsync — the fsync-before-ack contract is the
// same as the seed's, amortized.
func (t *tenant) commitGroup(group []*batch, m *metrics) {
	fresh := make([]*batch, 0, len(group))
	// inGroup catches an ID appearing twice within one group: the second
	// occurrence must not be acknowledged as a duplicate until the first
	// is actually durable, so it is parked and answered after the fsync.
	inGroup := make(map[string]bool, len(group))
	var parked []*batch
	for _, b := range group {
		switch {
		case t.appliedHas(b.id):
			t.dupBatches.Add(1)
			m.dupBatches.Inc()
			b.done <- batchResult{duplicate: true}
		case inGroup[b.id]:
			parked = append(parked, b)
		default:
			inGroup[b.id] = true
			fresh = append(fresh, b)
		}
	}
	if len(fresh) == 0 {
		return
	}
	entries := make([]WALBatch, len(fresh))
	for i, b := range fresh {
		entries[i] = WALBatch{ID: b.id, Records: b.recs}
	}
	if err := t.wal.AppendGroup(entries); err != nil {
		if t.wal.Failed() {
			// The log could not be cut back to a committed boundary and
			// is refusing appends; a successful flush subsumes it and
			// recreates it fresh.
			t.flush(m)
		}
		for _, b := range fresh {
			b.done <- batchResult{err: err}
		}
		for _, b := range parked {
			b.done <- batchResult{err: err}
		}
		return
	}
	t.groupFsyncs.Add(1)
	m.groupFsyncs.Inc()
	m.groupBatches.Observe(uint64(len(fresh)))
	m.walAppends.Add(uint64(len(fresh)))
	m.walBytes.Set(uint64(t.wal.Size()))
	committed := time.Now()
	for _, b := range fresh {
		applied := t.applyCanonical(b.recs)
		t.rememberApplied(b.id)
		t.batches.Add(1)
		m.batches.Inc()
		m.records.Add(uint64(applied))
		if b.quarantined > 0 {
			m.quarantined.Add(uint64(b.quarantined))
		}
		if !b.enqueuedAt.IsZero() {
			m.commitWait.Observe(uint64(committed.Sub(b.enqueuedAt)))
		}
		b.done <- batchResult{applied: applied, quarantined: b.quarantined}
	}
	for _, b := range parked {
		// Its twin is durable now; the resend contract answers duplicate.
		t.dupBatches.Add(1)
		m.dupBatches.Inc()
		b.done <- batchResult{duplicate: true}
	}
}

// maybeFlush flushes the memtable when either threshold trips: WAL size
// (bounds replay time) or memtable size (bounds flush size and memory).
func (t *tenant) maybeFlush(m *metrics) {
	if t.wal.Size() >= t.walMaxBytes || t.mem.Load().Bytes() >= uint64(t.memMaxBytes) {
		t.flush(m)
	}
	m.memtableBytes.Set(t.mem.Load().Bytes())
}

// flush persists the memtable as a new immutable segment, installs a
// manifest carrying the current applied-ID set, swaps in a fresh memtable,
// and truncates the WAL the segment subsumes. The segment file is durable
// before the manifest references it; the manifest is durable before the
// WAL resets — a crash between any two steps recovers exactly (orphan
// segment discarded + full replay, or manifest + deduped replay).
func (t *tenant) flush(m *metrics) {
	mem := t.mem.Load()
	recs := mem.Snapshot()
	t.appliedMu.RLock()
	ids := append([]string(nil), t.order...)
	t.appliedMu.RUnlock()

	ss := t.segs
	if len(recs) > 0 {
		seg, err := writeSegment(t.dir, t.digest, ss.allocSeq(), recs)
		if err != nil {
			// Not fatal: the WAL still holds everything.
			m.logf("tenant %s: segment flush failed: %v", t.name, err)
			return
		}
		fresh := profile.NewStore(0)
		fresh.Observe(t.reg)
		ss.mu.Lock()
		prevSegs, prevIDs := ss.segs, ss.manifestIDs
		ss.segs = append(append([]*Segment(nil), ss.segs...), seg)
		ss.manifestIDs = ids
		err = writeManifest(ss.dir, ss.digest, ss.manifestLocked())
		if err != nil {
			ss.segs, ss.manifestIDs = prevSegs, prevIDs
		} else {
			// Swap inside the lock: a query must never observe the new
			// segment together with the memtable it came from.
			t.mem.Store(fresh)
		}
		ss.mu.Unlock()
		if err != nil {
			os.Remove(seg.Path)
			m.logf("tenant %s: manifest write failed: %v", t.name, err)
			return
		}
	} else {
		// Nothing interned since the last flush (empty tenant, or every
		// record quarantined) — refresh the manifest's applied set so the
		// WAL reset below stays replay-exact.
		ss.mu.Lock()
		prevIDs := ss.manifestIDs
		ss.manifestIDs = ids
		err := writeManifest(ss.dir, ss.digest, ss.manifestLocked())
		if err != nil {
			ss.manifestIDs = prevIDs
		}
		ss.mu.Unlock()
		if err != nil {
			m.logf("tenant %s: manifest write failed: %v", t.name, err)
			return
		}
	}
	if err := t.wal.Reset(); err != nil {
		m.logf("tenant %s: wal reset failed: %v", t.name, err)
		return
	}
	t.snapshots.Add(1)
	m.snapshots.Inc()
	m.walBytes.Set(uint64(t.wal.Size()))
	m.segments.Set(uint64(t.segs.count()))
	m.memtableBytes.Set(t.mem.Load().Bytes())
	t.kickCompact()
}

// health snapshots the tenant's counters.
func (t *tenant) health() TenantHealth {
	return TenantHealth{
		Name:                t.name,
		Digest:              t.digest.String(),
		Epoch:               t.epoch,
		Records:             t.records(),
		Unique:              t.uniqueContexts(),
		Batches:             t.batches.Load(),
		DupBatches:          t.dupBatches.Load(),
		Shed:                t.shed.Load(),
		QueueLen:            len(t.queue),
		QueueCap:            cap(t.queue),
		WALBytes:            t.wal.Size(),
		Snapshots:           t.snapshots.Load(),
		Replayed:            t.replayed.Load(),
		TruncatedTails:      t.truncatedTails.Load(),
		Segments:            t.segs.count(),
		MemtableBytes:       t.mem.Load().Bytes(),
		Compactions:         t.compactions.Load(),
		Orphans:             t.orphans.Load(),
		GroupFsyncs:         t.groupFsyncs.Load(),
		QuarantinedCorrupt:  t.qCorrupt.Load(),
		QuarantinedNoEdge:   t.qNoEdge.Load(),
		QuarantinedResidual: t.qResidual.Load(),
		QuarantinedMangled:  t.qMangled.Load(),
	}
}
