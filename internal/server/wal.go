// WAL and snapshot persistence for one ingestion tenant.
//
// Durability contract: a batch is acknowledged to the agent only after its
// WAL entry — batch ID, every record, and a commit marker — has been
// fsynced. A SIGKILL at any instant therefore loses only unacknowledged
// batches, which the agent client re-sends under the same batch ID; the
// applied-batch set makes the resend idempotent. Recovery replays committed
// entries in order, drops a half-written tail (the profile package's
// ErrTruncatedRecord contract pins exactly which cuts are droppable), and
// refuses to replay against an analysis whose graph digest differs from
// the one the WAL was recorded under — the same stale/tampered-analysis
// refusal .dpa and .dpp files enforce.
//
// On-disk layout per tenant directory:
//
//	wal.log       "DPW1\n" + digest, then batch entries:
//	              'B' uvarint(len(id)) id uvarint(n)
//	              n × DPP1 record framing (uvarint len, bytes, uvarint count)
//	              'C'
//	snapshot.dps  "DPS1\n" + digest,
//	              uvarint(nIDs) + nIDs × (uvarint len, id bytes),
//	              uvarint(nRecs) + nRecs × DPP1 record framing
//
// The snapshot is written to a temporary file, fsynced, and renamed into
// place, so it is atomically either the old or the new state; the WAL is
// truncated (recreated) only after the snapshot rename. A crash between
// the two leaves snapshot + full WAL, and the applied-batch set in the
// snapshot deduplicates the re-replay.
package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"deltapath/internal/analysisio"
	"deltapath/internal/profile"
)

const (
	walMagic      = "DPW1\n"
	snapshotMagic = "DPS1\n"

	walBatchBegin  = 'B'
	walBatchCommit = 'C'
)

// ErrDigestMismatch marks a WAL or snapshot recorded under a different
// analysis than the one the tenant is being opened with. Replaying it
// would aggregate counts for contexts the analysis cannot decode — the
// server refuses, exactly as .dpa/.dpp loading refuses. Match with
// errors.Is.
var ErrDigestMismatch = errors.New("graph digest mismatch")

// WALBatch is one committed batch recovered from (or appended to) the WAL.
type WALBatch struct {
	ID      string
	Records []profile.Record
}

// ErrWALFailed marks a WAL whose partial entry could not be rolled back
// after a failed append: the file may be structurally corrupt past its
// committed prefix, so further appends (and therefore acknowledgements)
// are refused until a snapshot Reset recreates it. Match with errors.Is.
var ErrWALFailed = errors.New("wal failed, awaiting snapshot reset")

// WAL is the append-only durability log of one tenant. Appends are owned
// by the tenant's single worker goroutine; Size is safe to read from any
// goroutine (the health endpoint polls it).
type WAL struct {
	path   string
	digest analysisio.GraphDigest
	f      *os.File
	size   atomic.Int64
	buf    []byte // entry scratch, reused across appends
	// failed is set when a failed append could not be rolled back; owned
	// by the worker goroutine, like Append itself.
	failed bool
}

// createWALFile writes a fresh header-only WAL file. O_APPEND matters:
// every write lands at end-of-file, so rolling a failed append back with
// Truncate leaves the next write at the committed boundary, not beyond it.
func createWALFile(path string, digest analysisio.GraphDigest) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	var hdr bytes.Buffer
	hdr.WriteString(walMagic)
	if err := profile.WriteDigest(&hdr, digest); err != nil {
		f.Close()
		return nil, 0, err
	}
	if _, err := f.Write(hdr.Bytes()); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, int64(hdr.Len()), nil
}

// CreateWAL creates (truncating) a WAL at path and writes its header.
func CreateWAL(path string, digest analysisio.GraphDigest) (*WAL, error) {
	f, n, err := createWALFile(path, digest)
	if err != nil {
		return nil, err
	}
	w := &WAL{path: path, digest: digest, f: f}
	w.size.Store(n)
	return w, nil
}

// openWALForAppend opens an existing WAL whose committed prefix ends at
// offset: any truncated tail beyond it is cut off before appending resumes.
func openWALForAppend(path string, digest analysisio.GraphDigest, offset int64) (*WAL, error) {
	if err := os.Truncate(path, offset); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{path: path, digest: digest, f: f}
	w.size.Store(offset)
	return w, nil
}

// Append durably writes one batch entry: begin marker, ID, records, commit
// marker, then fsync. Only after Append returns nil may the batch be
// acknowledged. A failed write or sync rolls the file back to the last
// committed boundary before returning, so a short write (ENOSPC, I/O
// error) never strands a partial entry for later appends to bury — which
// would corrupt the committed prefix and make every subsequently acked
// batch unrecoverable on replay.
func (w *WAL) Append(id string, recs []profile.Record) error {
	return w.AppendGroup([]WALBatch{{ID: id, Records: recs}})
}

// AppendGroup is the group-commit form of Append: every batch in the group
// is framed into one buffer, written with one Write, and made durable with
// one fsync — the call that amortizes the dominant per-ack cost across all
// batches queued during the previous fsync. All-or-nothing: on any error
// the file is rolled back to the previous committed boundary (the
// per-entry commit markers mean replay would also drop a torn group tail),
// and no batch in the group may be acknowledged.
func (w *WAL) AppendGroup(batches []WALBatch) error {
	if w.failed {
		return fmt.Errorf("wal append: %w", ErrWALFailed)
	}
	buf := w.buf[:0]
	for _, b := range batches {
		buf = append(buf, walBatchBegin)
		buf = binary.AppendUvarint(buf, uint64(len(b.ID)))
		buf = append(buf, b.ID...)
		buf = binary.AppendUvarint(buf, uint64(len(b.Records)))
		for _, r := range b.Records {
			buf = profile.AppendRecord(buf, r.Key, r.Count)
		}
		buf = append(buf, walBatchCommit)
	}
	w.buf = buf
	if _, err := w.f.Write(buf); err != nil {
		w.rollback()
		return fmt.Errorf("wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.rollback()
		return fmt.Errorf("wal sync: %w", err)
	}
	w.size.Add(int64(len(buf)))
	return nil
}

// rollback cuts any partially written entry back to the last committed
// boundary (the file is O_APPEND, so the next write lands exactly there).
// If the cut cannot be made durable the WAL is marked failed and refuses
// appends until Reset recreates it.
func (w *WAL) rollback() {
	if err := w.f.Truncate(w.size.Load()); err != nil {
		w.failed = true
		return
	}
	if err := w.f.Sync(); err != nil {
		w.failed = true
	}
}

// Failed reports whether the WAL has rejected an append rollback and is
// refusing further appends until Reset.
func (w *WAL) Failed() bool { return w.failed }

// Size reports the WAL's byte size (header + committed entries).
func (w *WAL) Size() int64 { return w.size.Load() }

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }

// Reset truncates the WAL back to a bare header — called after a snapshot
// has been atomically installed, so every entry it drops is already
// persisted in the snapshot.
func (w *WAL) Reset() error {
	if err := w.f.Close(); err != nil && !w.failed {
		return err
	}
	f, n, err := createWALFile(w.path, w.digest)
	if err != nil {
		return err
	}
	w.f = f
	w.size.Store(n)
	w.failed = false
	return nil
}

// WALReplay is the result of reading a WAL back.
type WALReplay struct {
	Batches []WALBatch
	// CommittedSize is the byte offset of the last committed entry's end —
	// the offset appends must resume from.
	CommittedSize int64
	// TruncatedTail is true when the file ended inside an uncommitted
	// entry (crash mid-append); the tail was dropped.
	TruncatedTail bool
}

// ReplayWAL reads the WAL at path, verifying its digest against want, and
// returns every committed batch in append order. A missing file returns an
// empty replay. The tail is dropped (and flagged) if the file ends inside
// an entry; structural corruption in the committed prefix is an error.
func ReplayWAL(path string, want analysisio.GraphDigest) (*WALReplay, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &WALReplay{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	cr := &countingReader{r: f}
	br := bufio.NewReader(cr)
	head := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// The file ends inside the header: a crash landed between
			// WAL creation (or a post-flush Reset's truncate) and the
			// header hitting disk. Everything the WAL ever held is
			// already durable in the manifest — Reset runs only after
			// the flush installs it — so an unreadable-short header is
			// an empty WAL, not corruption. CommittedSize 0 tells the
			// caller to recreate the file rather than append to it.
			return &WALReplay{TruncatedTail: true}, nil
		}
		return nil, fmt.Errorf("wal %s: truncated header: %w", path, err)
	}
	if string(head) != walMagic {
		return nil, fmt.Errorf("wal %s: bad magic %q", path, head)
	}
	digest, err := profile.ReadDigest(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return &WALReplay{TruncatedTail: true}, nil // torn mid-header, as above
		}
		return nil, fmt.Errorf("wal %s: %w", path, err)
	}
	if digest != want {
		return nil, fmt.Errorf("wal %s: recorded under %s, analysis graph is %s: %w",
			path, digest, want, ErrDigestMismatch)
	}

	rep := &WALReplay{CommittedSize: offset(cr, br)}
	for {
		marker, err := br.ReadByte()
		if err == io.EOF {
			return rep, nil // clean end at an entry boundary
		}
		if err != nil {
			return nil, fmt.Errorf("wal %s: %w", path, err)
		}
		if marker != walBatchBegin {
			return nil, fmt.Errorf("wal %s: entry %d: bad begin marker 0x%02x",
				path, len(rep.Batches), marker)
		}
		batch, err := readWALEntry(br)
		if err != nil {
			if errors.Is(err, profile.ErrTruncatedRecord) || err == io.EOF || err == io.ErrUnexpectedEOF {
				// Crash mid-append: drop exactly this tail entry.
				rep.TruncatedTail = true
				return rep, nil
			}
			return nil, fmt.Errorf("wal %s: entry %d: %w", path, len(rep.Batches), err)
		}
		rep.Batches = append(rep.Batches, batch)
		rep.CommittedSize = offset(cr, br)
	}
}

// readWALEntry parses one entry body (after the begin marker) through its
// commit marker. Truncation errors pass through untouched so the caller
// can classify the tail.
func readWALEntry(br *bufio.Reader) (WALBatch, error) {
	idLen, err := binary.ReadUvarint(br)
	if err != nil {
		return WALBatch{}, err
	}
	if idLen == 0 || idLen > 1024 {
		return WALBatch{}, fmt.Errorf("implausible batch ID length %d", idLen)
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(br, id); err != nil {
		return WALBatch{}, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return WALBatch{}, err
	}
	if n > 1<<24 {
		return WALBatch{}, fmt.Errorf("implausible record count %d", n)
	}
	batch := WALBatch{ID: string(id), Records: make([]profile.Record, 0, n)}
	for i := uint64(0); i < n; i++ {
		rec, count, err := profile.ReadRecord(br)
		if err != nil {
			if err == io.EOF {
				// The entry promised more records than the file holds:
				// a truncated tail, not a boundary.
				return WALBatch{}, io.ErrUnexpectedEOF
			}
			return WALBatch{}, err
		}
		batch.Records = append(batch.Records, profile.Record{Key: rec, Count: count})
	}
	commit, err := br.ReadByte()
	if err != nil {
		return WALBatch{}, err // EOF before commit: truncated tail
	}
	if commit != walBatchCommit {
		return WALBatch{}, fmt.Errorf("bad commit marker 0x%02x", commit)
	}
	return batch, nil
}

// countingReader tracks how many bytes the bufio.Reader has consumed from
// the file, so replay can report the committed offset precisely.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// offset is the file position of the next unread byte.
func offset(cr *countingReader, br *bufio.Reader) int64 {
	return cr.n - int64(br.Buffered())
}

// Snapshot is a tenant's durable state at one instant: the applied-batch
// set plus every interned record with its count.
type Snapshot struct {
	AppliedIDs []string
	Records    []profile.Record
}

// WriteSnapshot atomically installs snap at path: temp file, fsync,
// rename, directory fsync.
func WriteSnapshot(path string, digest analysisio.GraphDigest, snap *Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	bw.WriteString(snapshotMagic)
	if err := profile.WriteDigest(bw, digest); err != nil {
		f.Close()
		return err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(snap.AppliedIDs)))
	for _, id := range snap.AppliedIDs {
		buf = binary.AppendUvarint(buf, uint64(len(id)))
		buf = append(buf, id...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(snap.Records)))
	for _, r := range snap.Records {
		buf = profile.AppendRecord(buf, r.Key, r.Count)
	}
	if _, err := bw.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// ReadSnapshot loads the snapshot at path, verifying its digest against
// want. A missing file returns an empty snapshot.
func ReadSnapshot(path string, want analysisio.GraphDigest) (*Snapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &Snapshot{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("snapshot %s: truncated header: %w", path, err)
	}
	if string(head) != snapshotMagic {
		return nil, fmt.Errorf("snapshot %s: bad magic %q", path, head)
	}
	digest, err := profile.ReadDigest(br)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	if digest != want {
		return nil, fmt.Errorf("snapshot %s: recorded under %s, analysis graph is %s: %w",
			path, digest, want, ErrDigestMismatch)
	}
	snap := &Snapshot{}
	nIDs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: applied-ID count: %w", path, err)
	}
	if nIDs > 1<<24 {
		return nil, fmt.Errorf("snapshot %s: implausible applied-ID count %d", path, nIDs)
	}
	for i := uint64(0); i < nIDs; i++ {
		idLen, err := binary.ReadUvarint(br)
		if err != nil || idLen == 0 || idLen > 1024 {
			return nil, fmt.Errorf("snapshot %s: applied ID %d: bad length (%v)", path, i, err)
		}
		id := make([]byte, idLen)
		if _, err := io.ReadFull(br, id); err != nil {
			return nil, fmt.Errorf("snapshot %s: applied ID %d: %w", path, i, err)
		}
		snap.AppliedIDs = append(snap.AppliedIDs, string(id))
	}
	nRecs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: record count: %w", path, err)
	}
	if nRecs > 1<<30 {
		return nil, fmt.Errorf("snapshot %s: implausible record count %d", path, nRecs)
	}
	for i := uint64(0); i < nRecs; i++ {
		rec, count, err := profile.ReadRecord(br)
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: record %d: %w", path, i, err)
		}
		snap.Records = append(snap.Records, profile.Record{Key: rec, Count: count})
	}
	return snap, nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
