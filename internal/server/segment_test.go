package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"deltapath"
	"deltapath/internal/analysisio"
	"deltapath/internal/encoding"
	"deltapath/internal/profile"
)

func sortedRecords(recs []profile.Record) []profile.Record {
	out := append([]profile.Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool { return string(out[i].Key) < string(out[j].Key) })
	return out
}

// TestSegmentRoundTrip: write → open → iterate reproduces every pair, and
// a segment that lost its tail (the completion footer) is refused.
func TestSegmentRoundTrip(t *testing.T) {
	fx := loadFixture(t)
	dir := t.TempDir()
	recs := sortedRecords([]profile.Record{
		{Key: fx.records[0], Count: 7},
		{Key: fx.records[1%len(fx.records)], Count: 3},
	})
	// Dedup in case the fixture repeats a record.
	uniq := recs[:1]
	for _, r := range recs[1:] {
		if !bytes.Equal(r.Key, uniq[len(uniq)-1].Key) {
			uniq = append(uniq, r)
		}
	}
	seg, err := writeSegment(dir, fx.digest, 5, uniq)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Seq != 5 || seg.Pairs != uint64(len(uniq)) {
		t.Fatalf("segment header %+v, want seq 5 pairs %d", seg, len(uniq))
	}
	opened, err := OpenSegment(seg.Path, fx.digest)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Pairs != seg.Pairs || opened.Total != seg.Total {
		t.Fatalf("reopened %+v != written %+v", opened, seg)
	}
	it, err := opened.iter(fx.digest)
	if err != nil {
		t.Fatal(err)
	}
	defer it.close()
	for i := 0; ; i++ {
		key, count, err := it.next()
		if err == io.EOF {
			if i != len(uniq) {
				t.Fatalf("iterated %d pairs, want %d", i, len(uniq))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(key, uniq[i].Key) || count != uniq[i].Count {
			t.Fatalf("pair %d = (%x, %d), want (%x, %d)", i, key, count, uniq[i].Key, uniq[i].Count)
		}
	}

	// Chop the footer off: the file must be refused as partial.
	data, err := os.ReadFile(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg.Path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegment(seg.Path, fx.digest); err == nil {
		t.Fatal("OpenSegment accepted a truncated segment")
	}
}

// TestManifestRoundTrip: the manifest survives a write/read cycle and a
// wrong digest is refused.
func TestManifestRoundTrip(t *testing.T) {
	fx := loadFixture(t)
	dir := t.TempDir()
	in := &manifest{NextSeq: 9, Segments: []uint64{2, 5, 7}, AppliedIDs: []string{"a", "bb"}}
	if err := writeManifest(dir, fx.digest, in); err != nil {
		t.Fatal(err)
	}
	out, ok, err := readManifest(dir, fx.digest)
	if err != nil || !ok {
		t.Fatalf("readManifest: ok=%v err=%v", ok, err)
	}
	if out.NextSeq != in.NextSeq || fmt.Sprint(out.Segments) != fmt.Sprint(in.Segments) ||
		fmt.Sprint(out.AppliedIDs) != fmt.Sprint(in.AppliedIDs) {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
	var other analysisio.GraphDigest // zero digest != a real analysis digest
	if _, _, err := readManifest(dir, other); err == nil {
		t.Fatal("readManifest accepted a wrong digest")
	}
}

// TestMergeIterSumsCounts: overlapping sources merge into one ascending
// stream with per-key count sums.
func TestMergeIterSumsCounts(t *testing.T) {
	mk := func(pairs ...string) pairIter {
		var recs []profile.Record
		for _, p := range pairs {
			key, n, _ := strings.Cut(p, "=")
			var c uint64
			fmt.Sscanf(n, "%d", &c)
			recs = append(recs, profile.Record{Key: []byte(key), Count: c})
		}
		return &memPairs{recs: recs}
	}
	mi, err := newMergeIter([]pairIter{
		mk("a=1", "c=2", "d=5"),
		mk("a=10", "b=4"),
		mk("d=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mi.close()
	want := []string{"a=11", "b=4", "c=2", "d=6"}
	for i := 0; ; i++ {
		key, count, err := mi.next()
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("merged %d keys, want %d", i, len(want))
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%s=%d", key, count); got != want[i] {
			t.Fatalf("merge[%d] = %s, want %s", i, got, want[i])
		}
	}
}

// TestGroupCommitCoalesces: batches queued while no fsync is running ride
// one group — one WAL fsync commits all of them — while NoGroupCommit
// restores one fsync per batch.
func TestGroupCommitCoalesces(t *testing.T) {
	fx := loadFixture(t)
	for _, tc := range []struct {
		name       string
		noGroup    bool
		wantFsyncs uint64
	}{
		{"grouped", false, 1},
		{"per-batch", true, 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, t.TempDir(), Config{QueueDepth: 16, NoGroupCommit: tc.noGroup})
			bundle, err := analysisio.Load(bytes.NewReader(fx.dpa))
			if err != nil {
				t.Fatal(err)
			}
			tn, err := newTenant("app", bundle, filepath.Join(s.cfg.DataDir, "app"), s.cfg, s.reg)
			if err != nil {
				t.Fatal(err)
			}
			// Queue everything BEFORE the worker starts: the first receive
			// takes one batch and the fill loop drains the other nine, so
			// the grouped run commits all ten in exactly one fsync.
			const n = 10
			dones := make([]chan batchResult, n)
			for i := 0; i < n; i++ {
				dones[i] = make(chan batchResult, 1)
				b := &batch{id: fmt.Sprintf("b-%d", i),
					recs: []profile.Record{{Key: fx.records[0], Count: 1}}, done: dones[i]}
				if ok, _ := tn.enqueue(b); !ok {
					t.Fatalf("enqueue %d refused", i)
				}
			}
			tn.wg.Add(1)
			go tn.run(s.m)
			for i, done := range dones {
				res := <-done
				if res.err != nil || res.duplicate {
					t.Fatalf("batch %d: err=%v duplicate=%v", i, res.err, res.duplicate)
				}
			}
			if got := tn.groupFsyncs.Load(); got != tc.wantFsyncs {
				t.Fatalf("group fsyncs = %d, want %d", got, tc.wantFsyncs)
			}
			if got := tn.records(); got != n {
				t.Fatalf("records = %d, want %d", got, n)
			}
			tn.beginDrain(context.Background())
			tn.wg.Wait()
		})
	}
}

// TestGroupCommitInGroupDuplicate: a batch whose ID repeats inside one
// commit group is acknowledged as a duplicate only after its twin's fsync,
// and its records are counted exactly once.
func TestGroupCommitInGroupDuplicate(t *testing.T) {
	fx := loadFixture(t)
	s := newTestServer(t, t.TempDir(), Config{QueueDepth: 8})
	bundle, err := analysisio.Load(bytes.NewReader(fx.dpa))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := newTenant("app", bundle, filepath.Join(s.cfg.DataDir, "app"), s.cfg, s.reg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string) (*batch, chan batchResult) {
		done := make(chan batchResult, 1)
		return &batch{id: id, recs: []profile.Record{{Key: fx.records[0], Count: 3}}, done: done}, done
	}
	b1, d1 := mk("same")
	b2, d2 := mk("same")
	b3, d3 := mk("other")
	for _, b := range []*batch{b1, b2, b3} {
		if ok, _ := tn.enqueue(b); !ok {
			t.Fatal("enqueue refused")
		}
	}
	tn.wg.Add(1)
	go tn.run(s.m)
	if res := <-d1; res.err != nil || res.duplicate {
		t.Fatalf("first occurrence: %+v", res)
	}
	if res := <-d2; res.err != nil || !res.duplicate {
		t.Fatalf("in-group resend not marked duplicate: %+v", res)
	}
	if res := <-d3; res.err != nil || res.duplicate {
		t.Fatalf("distinct batch: %+v", res)
	}
	if got := tn.records(); got != 6 {
		t.Fatalf("records = %d, want 6 (duplicate must not double-count)", got)
	}
	if got := tn.dupBatches.Load(); got != 1 {
		t.Fatalf("dup batches = %d, want 1", got)
	}
	tn.beginDrain(context.Background())
	tn.wg.Wait()
}

// TestSegmentRecoveryRoundTrip: a tenant that flushed several segments
// restarts with identical contents; orphan segment files and temp files
// planted in its directory (a crash mid-flush or mid-compaction) are
// discarded, not double-counted.
func TestSegmentRecoveryRoundTrip(t *testing.T) {
	fx := loadFixture(t)
	dataDir := t.TempDir()
	// MemtableMaxBytes=1 flushes after every batch → one segment per
	// batch; CompactMinSegments is high so compaction cannot collapse
	// them mid-test.
	cfg := Config{QueueDepth: 8, MemtableMaxBytes: 1, CompactMinSegments: 100}

	open := func() (*Server, *httptest.Server) {
		s := newTestServer(t, dataDir, cfg)
		if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
			t.Fatal(err)
		}
		return s, httptest.NewServer(s.Handler())
	}
	s, ts := open()
	const batches = 5
	for i := 0; i < batches; i++ {
		rec := fx.records[i%len(fx.records)]
		resp, _ := ingest(t, ts.URL, dppBatch(t, fx.digest, [][]byte{rec}, uint64(i+1)), fmt.Sprintf("rt-%d", i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d", i, resp.StatusCode)
		}
	}
	before := healthz(t, ts.URL).Tenants[0]
	if before.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", before.Segments)
	}
	topBefore := getJSON[TopResponse](t, ts.URL+"/top?tenant=app&n=50")
	ts.Close()
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Plant a fake partially-written segment and a temp file: recovery
	// must discard both (neither is in the manifest).
	tdir := filepath.Join(dataDir, "app")
	orphan := filepath.Join(tdir, "seg-90000000.dps")
	tmp := filepath.Join(tdir, "seg-90000001.dps.tmp")
	if err := os.WriteFile(orphan, []byte("DPS2\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := open()
	defer ts2.Close()
	defer s2.Close(context.Background())
	after := healthz(t, ts2.URL).Tenants[0]
	if after.Records != before.Records || after.Unique != before.Unique {
		t.Fatalf("recovered records/unique %d/%d, want %d/%d",
			after.Records, after.Unique, before.Records, before.Unique)
	}
	if after.Orphans != 2 {
		t.Fatalf("orphans discarded = %d, want 2", after.Orphans)
	}
	for _, p := range []string{orphan, tmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s survived recovery", p)
		}
	}
	topAfter := getJSON[TopResponse](t, ts2.URL+"/top?tenant=app&n=50")
	if fmt.Sprint(topAfter.Rows) != fmt.Sprint(topBefore.Rows) {
		t.Fatalf("/top rows changed across restart:\n before %v\n after  %v", topBefore.Rows, topAfter.Rows)
	}
}

// TestTenantRecoversTornWALHeader: a SIGKILL landing between a
// post-flush WAL Reset's truncate and the fresh header reaching disk
// leaves a short, headerless wal.log. Everything that WAL held is
// already durable in the manifest — Reset only runs after the flush
// installs it — so the restarted tenant must treat the stub as an empty
// WAL, recreate the header, and keep serving, not refuse to start.
func TestTenantRecoversTornWALHeader(t *testing.T) {
	fx := loadFixture(t)
	for _, cut := range []int64{0, 3} { // empty file, and mid-magic
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dataDir := t.TempDir()
			cfg := Config{QueueDepth: 8, MemtableMaxBytes: 1, CompactMinSegments: 100}
			open := func() (*Server, *httptest.Server) {
				s := newTestServer(t, dataDir, cfg)
				if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
					t.Fatal(err)
				}
				return s, httptest.NewServer(s.Handler())
			}
			s, ts := open()
			resp, _ := ingest(t, ts.URL, dppBatch(t, fx.digest, [][]byte{fx.records[0]}, 7), "torn-1")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest: %d", resp.StatusCode)
			}
			before := healthz(t, ts.URL).Tenants[0]
			ts.Close()
			if err := s.Close(context.Background()); err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(filepath.Join(dataDir, "app", "wal.log"), cut); err != nil {
				t.Fatal(err)
			}

			s2, ts2 := open()
			defer ts2.Close()
			defer s2.Close(context.Background())
			after := healthz(t, ts2.URL).Tenants[0]
			if after.Records != before.Records {
				t.Fatalf("recovered records = %d, want %d", after.Records, before.Records)
			}
			// The recreated WAL must accept and recover new appends.
			resp, _ = ingest(t, ts2.URL, dppBatch(t, fx.digest, [][]byte{fx.records[1]}, 3), "torn-2")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("post-recovery ingest: %d", resp.StatusCode)
			}
			if got := healthz(t, ts2.URL).Tenants[0].Records; got != before.Records+3 {
				t.Fatalf("records after post-recovery ingest = %d, want %d", got, before.Records+3)
			}
		})
	}
}

// TestCompactionMergesSegments: once the live list reaches the threshold
// the background compactor folds it into one segment without changing any
// observable count, and the compacted store recovers identically.
func TestCompactionMergesSegments(t *testing.T) {
	fx := loadFixture(t)
	dataDir := t.TempDir()
	cfg := Config{QueueDepth: 8, MemtableMaxBytes: 1, CompactMinSegments: 3}
	s := newTestServer(t, dataDir, cfg)
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	for i := 0; i < 6; i++ {
		rec := fx.records[i%len(fx.records)]
		resp, _ := ingest(t, ts.URL, dppBatch(t, fx.digest, [][]byte{rec}, 2), fmt.Sprintf("cp-%d", i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d", i, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	var h TenantHealth
	for {
		h = healthz(t, ts.URL).Tenants[0]
		if h.Compactions >= 1 && h.Segments < 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction never ran: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h.Records != 12 {
		t.Fatalf("records after compaction = %d, want 12", h.Records)
	}
	top := getJSON[TopResponse](t, ts.URL+"/top?tenant=app&n=50")
	var sum uint64
	for _, row := range top.Rows {
		sum += row.Count
	}
	if sum != 12 {
		t.Fatalf("/top counts sum to %d after compaction, want 12", sum)
	}
	ts.Close()
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, dataDir, cfg)
	h2, err := s2.AddTenant("app", bytes.NewReader(fx.dpa))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close(context.Background())
	if h2.Records != 12 || h2.Unique != h.Unique {
		t.Fatalf("post-compaction recovery %d/%d, want 12/%d", h2.Records, h2.Unique, h.Unique)
	}
}

func getJSON[T any](t testing.TB, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v T
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// queryRows fetches /query and parses its NDJSON stream.
func queryRows(t testing.TB, url string) []QueryRow {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	var rows []QueryRow
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row QueryRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if row.Context == "" {
			t.Fatalf("error row in stream: %s", sc.Text())
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestQueryMatchesTop: /query?top=K streams exactly the rows /top
// materializes — same contexts, counts, and order — over a store spread
// across segments and memtable; the full stream and the class filter are
// consistent with it.
func TestQueryMatchesTop(t *testing.T) {
	fx := loadFixture(t)
	// Small memtable: most of the store lives in segments, with the tail
	// of the ingest typically still in the memtable.
	s := newTestServer(t, t.TempDir(), Config{QueueDepth: 8, MemtableMaxBytes: 512, CompactMinSegments: 100})
	if _, err := s.AddTenant("app", bytes.NewReader(fx.dpa)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close(context.Background())
	for i := 0; i < 4; i++ {
		resp, _ := ingest(t, ts.URL, dppBatch(t, fx.digest, fx.records, uint64(i+1)), fmt.Sprintf("qm-%d", i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d", i, resp.StatusCode)
		}
	}
	h := healthz(t, ts.URL).Tenants[0]
	if h.Segments == 0 {
		t.Fatalf("store never flushed a segment: %+v", h)
	}

	full := queryRows(t, ts.URL+"/query?tenant=app")
	if uint64(len(full)) != h.Unique {
		t.Fatalf("full stream has %d rows, health says %d unique", len(full), h.Unique)
	}
	var sum uint64
	seen := map[string]uint64{}
	for _, row := range full {
		sum += row.Count
		seen[row.Context] += row.Count
	}
	if sum != h.Records {
		t.Fatalf("full stream sums to %d, health says %d records", sum, h.Records)
	}

	for _, k := range []int{1, 3, 1000} {
		top := getJSON[TopResponse](t, fmt.Sprintf("%s/top?tenant=app&n=%d", ts.URL, k))
		qt := queryRows(t, fmt.Sprintf("%s/query?tenant=app&top=%d", ts.URL, k))
		if len(qt) != len(top.Rows) {
			t.Fatalf("top=%d: /query %d rows, /top %d rows", k, len(qt), len(top.Rows))
		}
		for i := range qt {
			if qt[i].Context != top.Rows[i].Context || qt[i].Count != top.Rows[i].Count {
				t.Fatalf("top=%d row %d: /query (%s, %d) != /top (%s, %d)",
					k, i, qt[i].Context, qt[i].Count, top.Rows[i].Context, top.Rows[i].Count)
			}
		}
	}

	filtered := queryRows(t, ts.URL+"/query?tenant=app&class=Even")
	wantFiltered := 0
	for ctx := range seen {
		if matchesClass(ctx, "Even") {
			wantFiltered++
		}
	}
	if len(filtered) != wantFiltered || wantFiltered == 0 {
		t.Fatalf("class filter returned %d rows, want %d (>0)", len(filtered), wantFiltered)
	}
	for _, row := range filtered {
		if !matchesClass(row.Context, "Even") {
			t.Fatalf("class filter leaked context %q", row.Context)
		}
	}
}

// diamondBundle analyzes a K-layer diamond program (each layer has two
// call sites into the next, so the sink has 2^K calling contexts) and
// fabricates one record per context by enumerating the sink's dense
// encoding IDs — the paper's bijection between [0, paths) and contexts.
func diamondBundle(t testing.TB, layers int) (dpa []byte, bundle *analysisio.Bundle, records [][]byte) {
	t.Helper()
	var src strings.Builder
	fmt.Fprintf(&src, "entry D.l0\nclass D {\n")
	for i := 0; i < layers; i++ {
		fmt.Fprintf(&src, "  method l%d { call D.l%d; call D.l%d }\n", i, i+1, i+1)
	}
	fmt.Fprintf(&src, "  method l%d { emit hit }\n}\n", layers)
	prog, err := deltapath.ParseProgram(src.String())
	if err != nil {
		t.Fatal(err)
	}
	an, err := deltapath.Analyze(prog, deltapath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := an.SaveAnalysis(&buf); err != nil {
		t.Fatal(err)
	}
	bundle, err = analysisio.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := bundle.Graph.Entry()
	if !ok {
		t.Fatal("diamond program has no entry")
	}
	sink := bundle.Graph.Lookup(fmt.Sprintf("D.l%d", layers))
	dec := encoding.Compile(bundle.Spec)
	n := 1 << layers
	records = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		st := &encoding.State{ID: uint64(i), Start: entry}
		rec := encoding.MarshalContext(st, sink)
		if _, err := dec.DecodeNames(st, sink); err != nil {
			t.Fatalf("fabricated context %d does not decode: %v", i, err)
		}
		records = append(records, rec)
	}
	return buf.Bytes(), bundle, records
}

// TestQueryMemoryBounded: streaming /query over a store far larger than
// the memtable threshold must not buffer the store — peak added heap while
// serving a store 16× bigger stays within a constant factor of the small
// store's, instead of scaling with it.
func TestQueryMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory profile too slow for -short")
	}
	run := func(layers int) (peak uint64, pairs uint64) {
		dpa, bundle, records := diamondBundle(t, layers)
		s := newTestServer(t, t.TempDir(), Config{
			QueueDepth: 8, MemtableMaxBytes: 16 << 10, CompactMinSegments: 100,
			MaxBodyBytes: 256 << 20, MaxBatchRecords: 1 << 20,
		})
		if _, err := s.AddTenant("app", bytes.NewReader(dpa)); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer s.Close(context.Background())
		const chunk = 256
		for i := 0; i < len(records); i += chunk {
			end := i + chunk
			if end > len(records) {
				end = len(records)
			}
			resp, ir := ingest(t, ts.URL, dppBatch(t, bundle.Digest, records[i:end], 1), fmt.Sprintf("mb-%d", i))
			if resp.StatusCode != http.StatusOK || ir.Quarantined != 0 {
				t.Fatalf("ingest chunk %d: status %d, quarantined %d", i, resp.StatusCode, ir.Quarantined)
			}
		}
		// The flush after the last acknowledged batch runs asynchronously
		// in the worker; give it a moment to land.
		var h TenantHealth
		for deadline := time.Now().Add(5 * time.Second); ; {
			h = healthz(t, ts.URL).Tenants[0]
			if h.Segments >= 2 || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if h.Unique != uint64(len(records)) {
			t.Fatalf("store has %d unique contexts, want %d", h.Unique, len(records))
		}
		if h.Segments < 2 {
			t.Fatalf("store not segmented (segments=%d) — memory bound untested", h.Segments)
		}

		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		var peakAlloc atomic.Uint64
		stop := make(chan struct{})
		sampled := make(chan struct{})
		go func() {
			defer close(sampled)
			var ms runtime.MemStats
			for {
				select {
				case <-stop:
					return
				default:
				}
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakAlloc.Load() {
					peakAlloc.Store(ms.HeapAlloc)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		resp, err := http.Get(ts.URL + "/query?tenant=app")
		if err != nil {
			t.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || n == 0 {
			t.Fatalf("streaming query: copied %d bytes, err %v", n, err)
		}
		close(stop)
		<-sampled
		peak = peakAlloc.Load()
		if peak < base.HeapAlloc {
			peak = base.HeapAlloc
		}
		return peak - base.HeapAlloc, h.Unique
	}

	smallPeak, smallPairs := run(10) // 1024 contexts
	largePeak, largePairs := run(14) // 16384 contexts — 16× the store
	t.Logf("small store: %d pairs, peak added heap %d KiB", smallPairs, smallPeak>>10)
	t.Logf("large store: %d pairs, peak added heap %d KiB", largePairs, largePeak>>10)
	// The stream must not materialize the store: allow a generous constant
	// (GC timing, HTTP buffers) but reject anything resembling O(store)
	// growth — a materialized large store would add tens of MiB.
	if largePeak > 4*smallPeak+8<<20 {
		t.Fatalf("peak added heap grew with store size: small %d KiB, large %d KiB",
			smallPeak>>10, largePeak>>10)
	}
}
