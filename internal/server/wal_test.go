package server

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deltapath/internal/analysisio"
	"deltapath/internal/profile"
)

func walDigest() analysisio.GraphDigest {
	return analysisio.GraphDigest{Nodes: 7, Edges: 11, Hash: 0xdeadbeefcafe}
}

func walBatches() []WALBatch {
	return []WALBatch{
		{ID: "b-1", Records: []profile.Record{
			{Key: []byte{1, 2, 3}, Count: 4},
			{Key: []byte{9}, Count: 1},
		}},
		{ID: "b-2", Records: []profile.Record{
			{Key: bytes.Repeat([]byte{0xab}, 300), Count: 1 << 40},
		}},
		{ID: strings.Repeat("x", 64), Records: []profile.Record{
			{Key: []byte{0}, Count: 1},
		}},
	}
}

func sameBatches(t *testing.T, got, want []WALBatch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d batches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("batch %d: ID %q, want %q", i, got[i].ID, want[i].ID)
		}
		if len(got[i].Records) != len(want[i].Records) {
			t.Fatalf("batch %d: %d records, want %d", i, len(got[i].Records), len(want[i].Records))
		}
		for j, r := range want[i].Records {
			if !bytes.Equal(got[i].Records[j].Key, r.Key) || got[i].Records[j].Count != r.Count {
				t.Fatalf("batch %d record %d: got (%x, %d), want (%x, %d)",
					i, j, got[i].Records[j].Key, got[i].Records[j].Count, r.Key, r.Count)
			}
		}
	}
}

// TestWALRoundTrip: appended batches replay byte-exact, in order, with the
// committed offset landing at end of file.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	batches := walBatches()
	for _, b := range batches {
		if err := w.Append(b.ID, b.Records); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != info.Size() {
		t.Fatalf("WAL.Size() = %d, file is %d bytes", w.Size(), info.Size())
	}

	rep, err := ReplayWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	sameBatches(t, rep.Batches, batches)
	if rep.TruncatedTail {
		t.Fatal("clean WAL reported a truncated tail")
	}
	if rep.CommittedSize != info.Size() {
		t.Fatalf("CommittedSize = %d, want %d", rep.CommittedSize, info.Size())
	}
}

// TestWALMissingFile: no WAL yet means an empty replay, not an error.
func TestWALMissingFile(t *testing.T) {
	rep, err := ReplayWAL(filepath.Join(t.TempDir(), "absent.log"), walDigest())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Batches) != 0 || rep.TruncatedTail || rep.CommittedSize != 0 {
		t.Fatalf("missing WAL replayed as %+v", rep)
	}
}

// TestWALDigestMismatch: a WAL recorded under another analysis is refused
// with ErrDigestMismatch, never silently replayed.
func TestWALDigestMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("b", []profile.Record{{Key: []byte{1}, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	other := walDigest()
	other.Hash ^= 1
	if _, err := ReplayWAL(path, other); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("err = %v, want ErrDigestMismatch", err)
	}
}

// TestWALEveryPrefixTruncation is the crash-safety core: for EVERY byte
// prefix of a committed WAL, replay must return exactly the batches whose
// commit markers made it to disk, flagging a dropped tail for any
// mid-entry cut. A cut inside the header — a crash between a post-flush
// Reset's truncate and the fresh header reaching disk — is an empty torn
// WAL (CommittedSize 0), since Reset only runs after the flush made its
// contents durable elsewhere. No prefix may panic, error structurally, or
// invent a batch.
func TestWALEveryPrefixTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := CreateWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := w.Size()
	batches := walBatches()
	var ends []int64 // entry-boundary offsets, ascending
	for _, b := range batches {
		if err := w.Append(b.ID, b.Records); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, w.Size())
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cutPath := filepath.Join(dir, "cut.log")
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := ReplayWAL(cutPath, walDigest())
		if int64(cut) < headerEnd {
			if err != nil {
				t.Fatalf("cut %d (mid-header): %v", cut, err)
			}
			if len(rep.Batches) != 0 || !rep.TruncatedTail || rep.CommittedSize != 0 {
				t.Fatalf("cut %d (mid-header): batches=%d tail=%v committed=%d, want empty torn replay",
					cut, len(rep.Batches), rep.TruncatedTail, rep.CommittedSize)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		committed := 0
		for _, end := range ends {
			if int64(cut) >= end {
				committed++
			}
		}
		sameBatches(t, rep.Batches, batches[:committed])
		atBoundary := int64(cut) == headerEnd
		for _, end := range ends {
			if int64(cut) == end {
				atBoundary = true
			}
		}
		if rep.TruncatedTail == atBoundary {
			t.Fatalf("cut %d: TruncatedTail = %v, at boundary = %v", cut, rep.TruncatedTail, atBoundary)
		}
		wantCommitted := headerEnd
		if committed > 0 {
			wantCommitted = ends[committed-1]
		}
		if rep.CommittedSize != wantCommitted {
			t.Fatalf("cut %d: CommittedSize = %d, want %d", cut, rep.CommittedSize, wantCommitted)
		}
	}
}

// TestWALStructuralCorruption: corruption inside the committed prefix (a
// flipped marker) is an error, not a silent drop.
func TestWALStructuralCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := CreateWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := w.Size()
	if err := w.Append("b-1", []profile.Record{{Key: []byte{1}, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("b-2", []profile.Record{{Key: []byte{2}, Count: 2}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerEnd] = 'X' // first entry's begin marker
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayWAL(path, walDigest()); err == nil {
		t.Fatal("corrupted begin marker replayed without error")
	}
}

// TestWALResetAndResume: Reset truncates to a bare header (post-snapshot),
// and openWALForAppend resumes past a dropped tail without resurrecting it.
func TestWALResetAndResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := CreateWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := w.Size()
	if err := w.Append("old", []profile.Record{{Key: []byte{1}, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != headerEnd {
		t.Fatalf("post-reset Size = %d, want header size %d", w.Size(), headerEnd)
	}
	if err := w.Append("new", []profile.Record{{Key: []byte{2}, Count: 2}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rep, err := ReplayWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	sameBatches(t, rep.Batches, []WALBatch{{ID: "new", Records: []profile.Record{{Key: []byte{2}, Count: 2}}}})

	// Simulate a crash mid-append: chop the last entry in half, then resume.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := headerEnd + (rep.CommittedSize-headerEnd)/2
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = ReplayWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TruncatedTail || len(rep.Batches) != 0 {
		t.Fatalf("half-entry replay: %d batches, truncated=%v", len(rep.Batches), rep.TruncatedTail)
	}
	w, err = openWALForAppend(path, walDigest(), rep.CommittedSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("resumed", []profile.Record{{Key: []byte{3}, Count: 3}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rep, err = ReplayWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	sameBatches(t, rep.Batches, []WALBatch{{ID: "resumed", Records: []profile.Record{{Key: []byte{3}, Count: 3}}}})
	if rep.TruncatedTail {
		t.Fatal("resumed WAL still reports a truncated tail")
	}
}

// TestWALAppendRollback: a partial entry left by a failed append is cut
// back to the committed boundary, so later appends land cleanly and replay
// never sees structural corruption mid-file.
func TestWALAppendRollback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	good := []WALBatch{
		{ID: "good", Records: []profile.Record{{Key: []byte{1}, Count: 1}}},
		{ID: "after", Records: []profile.Record{{Key: []byte{2}, Count: 2}}},
	}
	if err := w.Append(good[0].ID, good[0].Records); err != nil {
		t.Fatal(err)
	}
	// Simulate a short write: half an entry lands on disk, then the append
	// machinery rolls it back — exactly what Append does internally when
	// Write or Sync errors out.
	if _, err := w.f.Write([]byte{walBatchBegin, 0x04, 'h', 'a'}); err != nil {
		t.Fatal(err)
	}
	w.rollback()
	if w.Failed() {
		t.Fatal("successful rollback left the WAL failed")
	}
	if err := w.Append(good[1].ID, good[1].Records); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rep, err := ReplayWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	sameBatches(t, rep.Batches, good)
	if rep.TruncatedTail {
		t.Fatal("rolled-back WAL still reports a truncated tail")
	}
}

// TestWALFailedRefusesAppends: when the rollback itself cannot succeed the
// WAL flips to failed and refuses appends (so no batch is acked against a
// possibly-corrupt log) until Reset recreates the file.
func TestWALFailedRefusesAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("good", []profile.Record{{Key: []byte{1}, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	// Yank the file out from under the WAL: the write fails and so does
	// the rollback's truncate.
	w.f.Close()
	if err := w.Append("bad", []profile.Record{{Key: []byte{2}, Count: 2}}); err == nil {
		t.Fatal("append on a closed file succeeded")
	}
	if !w.Failed() {
		t.Fatal("irrecoverable append did not mark the WAL failed")
	}
	if err := w.Append("refused", nil); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append on failed WAL: %v, want ErrWALFailed", err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Failed() {
		t.Fatal("Reset did not clear the failed state")
	}
	if err := w.Append("new", []profile.Record{{Key: []byte{3}, Count: 3}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rep, err := ReplayWAL(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	sameBatches(t, rep.Batches, []WALBatch{{ID: "new", Records: []profile.Record{{Key: []byte{3}, Count: 3}}}})
}

// TestSnapshotRoundTrip: write/read round-trips applied IDs and records in
// order; a missing file is an empty snapshot; a digest mismatch refuses;
// the temp file never survives a successful install.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.dps")

	empty, err := ReadSnapshot(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.AppliedIDs) != 0 || len(empty.Records) != 0 {
		t.Fatalf("missing snapshot read as %+v", empty)
	}

	snap := &Snapshot{
		AppliedIDs: []string{"a", "bb", strings.Repeat("c", 100)},
		Records: []profile.Record{
			{Key: []byte{1, 2}, Count: 3},
			{Key: bytes.Repeat([]byte{7}, 500), Count: 1 << 33},
		},
	}
	if err := WriteSnapshot(path, walDigest(), snap); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived install: %v", err)
	}
	got, err := ReadSnapshot(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.AppliedIDs) != len(snap.AppliedIDs) {
		t.Fatalf("applied IDs: got %d, want %d", len(got.AppliedIDs), len(snap.AppliedIDs))
	}
	for i, id := range snap.AppliedIDs {
		if got.AppliedIDs[i] != id {
			t.Fatalf("applied ID %d: %q, want %q", i, got.AppliedIDs[i], id)
		}
	}
	if len(got.Records) != len(snap.Records) {
		t.Fatalf("records: got %d, want %d", len(got.Records), len(snap.Records))
	}
	for i, r := range snap.Records {
		if !bytes.Equal(got.Records[i].Key, r.Key) || got.Records[i].Count != r.Count {
			t.Fatalf("record %d drifted", i)
		}
	}

	other := walDigest()
	other.Nodes++
	if _, err := ReadSnapshot(path, other); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("err = %v, want ErrDigestMismatch", err)
	}

	// Overwrite is atomic: a second snapshot replaces the first whole.
	if err := WriteSnapshot(path, walDigest(), &Snapshot{AppliedIDs: []string{"z"}}); err != nil {
		t.Fatal(err)
	}
	got, err = ReadSnapshot(path, walDigest())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.AppliedIDs) != 1 || got.AppliedIDs[0] != "z" || len(got.Records) != 0 {
		t.Fatalf("overwritten snapshot read as %+v", got)
	}
}

// TestSnapshotTruncationRefused: every truncation of a snapshot is an
// error — a half-written snapshot must never load as partial state. (The
// atomic rename makes this unreachable in practice; the reader still
// refuses defensively.)
func TestSnapshotTruncationRefused(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.dps")
	snap := &Snapshot{
		AppliedIDs: []string{"abc", "def"},
		Records:    []profile.Record{{Key: []byte{1, 2, 3}, Count: 9}},
	}
	if err := WriteSnapshot(path, walDigest(), snap); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cutPath := filepath.Join(dir, "cut.dps")
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(cutPath, walDigest()); err == nil {
			t.Fatalf("truncation at %d loaded without error", cut)
		}
	}
}
