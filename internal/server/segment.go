// LSM-style segment storage for one ingestion tenant.
//
// The snapshot monolith (DPS1: the whole store rewritten on every flush)
// becomes a manifest of immutable sorted segments:
//
//	seg-NNNNNNNN.dps  "DPS2\n" + digest + fixed header
//	                  (8-byte LE seq, pairs, total), then `pairs` sorted
//	                  (uvarint len, key bytes, uvarint count) entries in
//	                  ascending key order, then the footer byte 'E'
//	MANIFEST          "DPM1\n" + digest + uvarint(nextSeq) +
//	                  uvarint(nSegs) + nSegs × uvarint(seq) +
//	                  uvarint(nIDs) + nIDs × (uvarint len, id bytes)
//
// Invariants:
//
//   - A segment is visible if and only if its seq is listed in MANIFEST.
//     Segments are written to a temp file, fsynced, renamed, and the
//     directory fsynced *before* the manifest that lists them is installed
//     (same temp/fsync/rename protocol), so a crash at any instant leaves
//     either the old manifest (new segment is an unreferenced orphan) or
//     the new one (segment is complete). Recovery deletes any seg-*.dps or
//     *.tmp file the manifest does not list — that is how partially
//     written segments are discarded.
//
//   - The manifest's applied-ID set is captured at memtable-flush time
//     only. Compaction rewrites the segment list but must NOT refresh the
//     IDs: batches applied since the last flush live only in WAL +
//     memtable, and recovery re-applies exactly the WAL batches whose IDs
//     the manifest does not contain. Writing a younger ID set without
//     flushing the memtable would make recovery skip batches whose records
//     were lost with the process — acknowledged-batch loss.
//
//   - Segment files are immutable once renamed into place. Compaction
//     writes a brand-new segment (fresh seq from nextSeq, which the
//     manifest persists so orphan seqs are never reused for live data
//     while an orphan file still exists) and deletes the inputs only after
//     the swapped manifest is durable.
package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"deltapath/internal/analysisio"
	"deltapath/internal/profile"
)

const (
	segmentMagic  = "DPS2\n"
	manifestMagic = "DPM1\n"
	manifestName  = "MANIFEST"
	// segmentFooter terminates a complete segment; OpenSegment checks it so
	// a manifest-listed file that somehow lost its tail is refused loudly
	// instead of silently under-counting.
	segmentFooter = 'E'
)

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.dps", seq))
}

// Segment is one immutable sorted run of (record, count) pairs on disk.
type Segment struct {
	Path  string
	Seq   uint64
	Pairs uint64 // distinct records
	Total uint64 // sum of counts
	Bytes int64  // file size
}

// segmentWriter streams sorted pairs into a temp file and installs the
// segment atomically on Close. Add must be called in strictly ascending
// key order (the writer enforces it — a mis-sorted segment would corrupt
// every future merge).
type segmentWriter struct {
	dir     string
	tmp     string
	path    string
	seq     uint64
	f       *os.File
	bw      *bufio.Writer
	pairs   uint64
	total   uint64
	hdrOff  int64 // file offset of the fixed pairs/total fields
	prevKey []byte
	scratch []byte
}

// newSegmentWriter starts segment seq in dir. The pairs/total header
// fields are fixed-width and written as zero placeholders, then patched in
// Close — so the writer streams arbitrarily large merges without knowing
// the pair count up front.
func newSegmentWriter(dir string, digest analysisio.GraphDigest, seq uint64) (*segmentWriter, error) {
	path := segmentPath(dir, seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr bytes.Buffer
	hdr.WriteString(segmentMagic)
	if err := profile.WriteDigest(&hdr, digest); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	hdr.Write(seqBuf[:])
	hdrOff := int64(hdr.Len())
	hdr.Write(make([]byte, 16)) // pairs + total placeholders
	if _, err := f.Write(hdr.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	return &segmentWriter{
		dir: dir, tmp: tmp, path: path, seq: seq,
		f: f, bw: bufio.NewWriterSize(f, 1<<16), hdrOff: hdrOff,
	}, nil
}

// Add appends one pair. Keys must arrive in strictly ascending byte order.
func (w *segmentWriter) Add(key []byte, count uint64) error {
	if w.pairs > 0 && bytes.Compare(key, w.prevKey) <= 0 {
		return fmt.Errorf("segment %s: keys out of order", w.tmp)
	}
	w.prevKey = append(w.prevKey[:0], key...)
	w.scratch = profile.AppendRecord(w.scratch[:0], key, count)
	if _, err := w.bw.Write(w.scratch); err != nil {
		return err
	}
	w.pairs++
	w.total += count
	return nil
}

// Close writes the footer, patches the pair/total counts into the header,
// fsyncs, and renames the segment into place (directory fsynced). On any
// error the temp file is removed and nothing becomes visible.
func (w *segmentWriter) Close() (*Segment, error) {
	install := func() error {
		if err := w.bw.WriteByte(segmentFooter); err != nil {
			return err
		}
		if err := w.bw.Flush(); err != nil {
			return err
		}
		var cnt [16]byte
		binary.LittleEndian.PutUint64(cnt[:8], w.pairs)
		binary.LittleEndian.PutUint64(cnt[8:], w.total)
		if _, err := w.f.WriteAt(cnt[:], w.hdrOff); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
		return w.f.Close()
	}
	if err := install(); err != nil {
		w.f.Close()
		os.Remove(w.tmp)
		return nil, err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return nil, err
	}
	if err := syncDir(w.dir); err != nil {
		return nil, err
	}
	fi, err := os.Stat(w.path)
	if err != nil {
		return nil, err
	}
	return &Segment{Path: w.path, Seq: w.seq, Pairs: w.pairs, Total: w.total, Bytes: fi.Size()}, nil
}

// Abort discards the temp file without installing anything.
func (w *segmentWriter) Abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

// writeSegment materializes sorted records as segment seq — the memtable
// flush path (records come from Store.Snapshot, already key-sorted).
func writeSegment(dir string, digest analysisio.GraphDigest, seq uint64, recs []profile.Record) (*Segment, error) {
	w, err := newSegmentWriter(dir, digest, seq)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if err := w.Add(r.Key, r.Count); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w.Close()
}

// OpenSegment validates a manifest-listed segment: magic, digest, seq
// consistency, and the completion footer.
func OpenSegment(path string, want analysisio.GraphDigest) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	hdr, err := readSegmentHeader(br, path, want)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < 1 {
		return nil, fmt.Errorf("segment %s: empty file", path)
	}
	var foot [1]byte
	if _, err := f.ReadAt(foot[:], fi.Size()-1); err != nil {
		return nil, fmt.Errorf("segment %s: footer: %w", path, err)
	}
	if foot[0] != segmentFooter {
		return nil, fmt.Errorf("segment %s: missing completion footer (partial write?)", path)
	}
	hdr.Path = path
	hdr.Bytes = fi.Size()
	return hdr, nil
}

// readSegmentHeader parses the fixed segment header, leaving br positioned
// at the first pair.
func readSegmentHeader(br *bufio.Reader, path string, want analysisio.GraphDigest) (*Segment, error) {
	head := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("segment %s: truncated header: %w", path, err)
	}
	if string(head) != segmentMagic {
		return nil, fmt.Errorf("segment %s: bad magic %q", path, head)
	}
	digest, err := profile.ReadDigest(br)
	if err != nil {
		return nil, fmt.Errorf("segment %s: %w", path, err)
	}
	if digest != want {
		return nil, fmt.Errorf("segment %s: recorded under %s, analysis graph is %s: %w",
			path, digest, want, ErrDigestMismatch)
	}
	var fixed [24]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return nil, fmt.Errorf("segment %s: truncated header: %w", path, err)
	}
	return &Segment{
		Seq:   binary.LittleEndian.Uint64(fixed[:8]),
		Pairs: binary.LittleEndian.Uint64(fixed[8:16]),
		Total: binary.LittleEndian.Uint64(fixed[16:24]),
	}, nil
}

// pairIter yields (key, count) pairs in ascending key order; next returns
// io.EOF after the last pair. The returned key is only valid until the
// following next call.
type pairIter interface {
	next() (key []byte, count uint64, err error)
	close() error
}

// segmentIter streams one segment file.
type segmentIter struct {
	f         *os.File
	br        *bufio.Reader
	path      string
	remaining uint64
}

// iter opens a streaming reader over the segment's pairs.
func (s *Segment) iter(digest analysisio.GraphDigest) (*segmentIter, error) {
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	hdr, err := readSegmentHeader(br, s.Path, digest)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &segmentIter{f: f, br: br, path: s.Path, remaining: hdr.Pairs}, nil
}

func (it *segmentIter) next() ([]byte, uint64, error) {
	if it.remaining == 0 {
		foot, err := it.br.ReadByte()
		if err != nil || foot != segmentFooter {
			return nil, 0, fmt.Errorf("segment %s: missing completion footer", it.path)
		}
		return nil, 0, io.EOF
	}
	key, count, err := profile.ReadRecord(it.br)
	if err != nil {
		return nil, 0, fmt.Errorf("segment %s: %w", it.path, err)
	}
	it.remaining--
	return key, count, nil
}

func (it *segmentIter) close() error { return it.f.Close() }

// memPairs iterates a memtable snapshot (already key-sorted).
type memPairs struct {
	recs []profile.Record
	i    int
}

func (m *memPairs) next() ([]byte, uint64, error) {
	if m.i >= len(m.recs) {
		return nil, 0, io.EOF
	}
	r := m.recs[m.i]
	m.i++
	return r.Key, r.Count, nil
}

func (m *memPairs) close() error { return nil }

// mergeIter k-way-merges sorted pair sources, summing the counts of equal
// keys, and yields a single ascending, deduplicated pair stream. Memory is
// O(sources), independent of how many pairs flow through — the property
// the /query endpoint's streaming bound rests on.
type mergeIter struct {
	srcs    []pairIter
	heads   [][]byte // current key per source (nil = exhausted)
	counts  []uint64
	ordered []int // source indices with live heads, sorted by (key, index)
	key     []byte
}

// newMergeIter takes ownership of srcs (they are closed by close, or here
// on error) and primes the merge.
func newMergeIter(srcs []pairIter) (*mergeIter, error) {
	m := &mergeIter{
		srcs:   srcs,
		heads:  make([][]byte, len(srcs)),
		counts: make([]uint64, len(srcs)),
	}
	for i := range srcs {
		if err := m.advance(i); err != nil {
			m.close()
			return nil, err
		}
	}
	for i, h := range m.heads {
		if h != nil {
			m.ordered = append(m.ordered, i)
		}
	}
	m.sortLive()
	return m, nil
}

func (m *mergeIter) sortLive() {
	sort.Slice(m.ordered, func(a, b int) bool {
		ia, ib := m.ordered[a], m.ordered[b]
		if c := bytes.Compare(m.heads[ia], m.heads[ib]); c != 0 {
			return c < 0
		}
		return ia < ib
	})
}

// advance pulls the next pair from source i into heads/counts. The key is
// copied: pairIter keys are only valid until the next call, but merge
// heads must survive across pulls from other sources.
func (m *mergeIter) advance(i int) error {
	key, count, err := m.srcs[i].next()
	if err == io.EOF {
		m.heads[i] = nil
		return nil
	}
	if err != nil {
		return err
	}
	if len(key) == 0 {
		// A zero-length record cannot occur (profile.Writer rejects empty
		// records), and nil is the exhaustion sentinel — refuse rather
		// than silently dropping the source.
		return fmt.Errorf("merge: empty key from source %d", i)
	}
	m.heads[i] = append(m.heads[i][:0], key...)
	m.counts[i] = count
	return nil
}

// next returns the smallest un-yielded key with the summed count of every
// source holding it. Returns io.EOF when all sources are exhausted. The
// key is valid until the following next call.
func (m *mergeIter) next() ([]byte, uint64, error) {
	// Drop exhausted sources off the front.
	for len(m.ordered) > 0 && m.heads[m.ordered[0]] == nil {
		m.ordered = m.ordered[1:]
	}
	if len(m.ordered) == 0 {
		return nil, 0, io.EOF
	}
	first := m.ordered[0]
	m.key = append(m.key[:0], m.heads[first]...)
	var total uint64
	// Sum every source whose head equals key, advancing each.
	for _, i := range m.ordered {
		if m.heads[i] == nil || !bytes.Equal(m.heads[i], m.key) {
			continue
		}
		total += m.counts[i]
		if err := m.advance(i); err != nil {
			return nil, 0, err
		}
	}
	m.sortLive()
	return m.key, total, nil
}

func (m *mergeIter) close() {
	for _, s := range m.srcs {
		s.close()
	}
}

// manifest is the durable registry of a tenant's live segments.
type manifest struct {
	NextSeq    uint64
	Segments   []uint64 // live segment seqs, oldest first
	AppliedIDs []string // idempotency set as of the last memtable flush
}

// writeManifest atomically installs m (temp, fsync, rename, dir fsync).
func writeManifest(dir string, digest analysisio.GraphDigest, m *manifest) error {
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	bw.WriteString(manifestMagic)
	if err := profile.WriteDigest(bw, digest); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, m.NextSeq)
	buf = binary.AppendUvarint(buf, uint64(len(m.Segments)))
	for _, seq := range m.Segments {
		buf = binary.AppendUvarint(buf, seq)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.AppliedIDs)))
	for _, id := range m.AppliedIDs {
		buf = binary.AppendUvarint(buf, uint64(len(id)))
		buf = append(buf, id...)
	}
	if _, err := bw.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// readManifest loads dir's manifest. ok=false (no error) when none exists
// — a fresh tenant or one still on the legacy DPS1 snapshot layout.
func readManifest(dir string, want analysisio.GraphDigest) (*manifest, bool, error) {
	path := filepath.Join(dir, manifestName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, false, fmt.Errorf("manifest %s: truncated header: %w", path, err)
	}
	if string(head) != manifestMagic {
		return nil, false, fmt.Errorf("manifest %s: bad magic %q", path, head)
	}
	digest, err := profile.ReadDigest(br)
	if err != nil {
		return nil, false, fmt.Errorf("manifest %s: %w", path, err)
	}
	if digest != want {
		return nil, false, fmt.Errorf("manifest %s: recorded under %s, analysis graph is %s: %w",
			path, digest, want, ErrDigestMismatch)
	}
	m := &manifest{}
	if m.NextSeq, err = binary.ReadUvarint(br); err != nil {
		return nil, false, fmt.Errorf("manifest %s: next seq: %w", path, err)
	}
	nSegs, err := binary.ReadUvarint(br)
	if err != nil || nSegs > 1<<20 {
		return nil, false, fmt.Errorf("manifest %s: bad segment count (%v)", path, err)
	}
	for i := uint64(0); i < nSegs; i++ {
		seq, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, false, fmt.Errorf("manifest %s: segment %d: %w", path, i, err)
		}
		m.Segments = append(m.Segments, seq)
	}
	nIDs, err := binary.ReadUvarint(br)
	if err != nil || nIDs > 1<<24 {
		return nil, false, fmt.Errorf("manifest %s: bad applied-ID count (%v)", path, err)
	}
	for i := uint64(0); i < nIDs; i++ {
		idLen, err := binary.ReadUvarint(br)
		if err != nil || idLen == 0 || idLen > 1024 {
			return nil, false, fmt.Errorf("manifest %s: applied ID %d: bad length (%v)", path, i, err)
		}
		id := make([]byte, idLen)
		if _, err := io.ReadFull(br, id); err != nil {
			return nil, false, fmt.Errorf("manifest %s: applied ID %d: %w", path, i, err)
		}
		m.AppliedIDs = append(m.AppliedIDs, string(id))
	}
	return m, true, nil
}

// segmentSet is a tenant's live segment list plus the manifest state that
// makes it durable. The mutex serializes the three manifest writers
// (memtable flush, compaction, recovery migration) against each other and
// against query iterator opens, so every reader sees a (segments,
// memtable) pair from one instant.
type segmentSet struct {
	mu     sync.Mutex
	dir    string
	digest analysisio.GraphDigest

	nextSeq uint64
	segs    []*Segment // oldest first
	// manifestIDs is the applied-ID set as of the last memtable flush —
	// the ONLY ID set a manifest may carry (see the package comment's
	// compaction invariant).
	manifestIDs []string
}

func (ss *segmentSet) allocSeq() uint64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	seq := ss.nextSeq
	ss.nextSeq++
	return seq
}

// list returns a point-in-time copy of the live segments.
func (ss *segmentSet) list() []*Segment {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return append([]*Segment(nil), ss.segs...)
}

func (ss *segmentSet) count() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.segs)
}

func (ss *segmentSet) totalRecords() uint64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var n uint64
	for _, sg := range ss.segs {
		n += sg.Total
	}
	return n
}

func (ss *segmentSet) manifestLocked() *manifest {
	m := &manifest{NextSeq: ss.nextSeq, AppliedIDs: ss.manifestIDs}
	for _, sg := range ss.segs {
		m.Segments = append(m.Segments, sg.Seq)
	}
	return m
}

// replaceCompacted installs merged in place of the old segments (which
// must be a prefix of the live list — flushes only append) and deletes the
// inputs once the swapped manifest is durable. The applied-ID set is
// deliberately left at its last-flush value.
func (ss *segmentSet) replaceCompacted(old []*Segment, merged *Segment) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if len(old) > len(ss.segs) {
		return fmt.Errorf("compaction: input list longer than live list")
	}
	for i, sg := range old {
		if ss.segs[i] != sg {
			return fmt.Errorf("compaction: live segment list changed under the merge")
		}
	}
	newSegs := append([]*Segment{merged}, ss.segs[len(old):]...)
	prev := ss.segs
	ss.segs = newSegs
	if err := writeManifest(ss.dir, ss.digest, ss.manifestLocked()); err != nil {
		ss.segs = prev
		return err
	}
	// Manifest is durable: the inputs are unreferenced. Deleting them is
	// safe even with reader iterators open (POSIX keeps unlinked files
	// readable through existing descriptors), and a crash before a delete
	// only leaves orphans for recovery to discard.
	for _, sg := range old {
		os.Remove(sg.Path)
	}
	return nil
}

// discardOrphans deletes every seg-*.dps and *.tmp in dir that live does
// not reference, returning how many files were discarded. Called during
// recovery, before any new segment can be written.
func discardOrphans(dir string, live []*Segment) (int, error) {
	keep := make(map[string]bool, len(live))
	for _, sg := range live {
		keep[filepath.Base(sg.Path)] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	discarded := 0
	for _, e := range entries {
		name := e.Name()
		isTmp := filepath.Ext(name) == ".tmp"
		isSeg := len(name) > 4 && name[:4] == "seg-" && filepath.Ext(name) == ".dps"
		if (!isTmp && !isSeg) || keep[name] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return discarded, err
		}
		discarded++
	}
	return discarded, nil
}
