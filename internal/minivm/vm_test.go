package minivm

import (
	"errors"
	"strings"
	"testing"
)

// testProgram builds a small program:
//
//	Main.main: call Main.setup; loop 3 { vcall Shape.area }; emit end
//	Main.setup: work 10
//	Shape.area, Circle.area, Square.area (Circle/Square extend Shape)
//	Dyn.area (dynamic, extends Shape) — loaded by Main.load
func testProgram() *Program {
	p := &Program{
		Classes: []*Class{
			{Name: "Main", Methods: []*Method{
				{Name: "main", Body: []Instr{
					Call("Main", "setup"),
					Loop(3, VCall("Shape", "area")),
					Emit("end"),
				}},
				{Name: "setup", Body: []Instr{Work(10)}},
				{Name: "load", Body: []Instr{LoadClass("Dyn"), VCall("Shape", "area")}},
			}},
			{Name: "Shape", Methods: []*Method{
				{Name: "area", Body: []Instr{Work(1)}},
			}},
			{Name: "Circle", Super: "Shape", Methods: []*Method{
				{Name: "area", Body: []Instr{Work(2), Emit("circle")}},
			}},
			{Name: "Square", Super: "Shape", Methods: []*Method{
				{Name: "area", Body: []Instr{Work(2)}},
			}},
		},
		Dynamic: []*Class{
			{Name: "Dyn", Super: "Shape", Methods: []*Method{
				{Name: "area", Body: []Instr{Work(1)}},
			}},
		},
		Entry: MethodRef{Class: "Main", Method: "main"},
	}
	if err := p.Normalize(); err != nil {
		panic(err)
	}
	return p
}

func TestNormalizeAssignsUniqueSites(t *testing.T) {
	p := testProgram()
	main := p.Class("Main").Method("main")
	if main.Body[0].Site != 0 {
		t.Errorf("first call site = %d, want 0", main.Body[0].Site)
	}
	if main.Body[1].Body[0].Site != 1 {
		t.Errorf("loop call site = %d, want 1", main.Body[1].Body[0].Site)
	}
}

func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{"no entry", &Program{Classes: []*Class{{Name: "A"}}}, "no entry"},
		{"dup class", &Program{
			Classes: []*Class{{Name: "A"}, {Name: "A"}},
			Entry:   MethodRef{"A", "m"},
		}, "duplicate class"},
		{"dup method", &Program{
			Classes: []*Class{{Name: "A", Methods: []*Method{{Name: "m"}, {Name: "m"}}}},
			Entry:   MethodRef{"A", "m"},
		}, "twice"},
		{"bad super", &Program{
			Classes: []*Class{{Name: "A", Super: "Nope", Methods: []*Method{{Name: "m"}}}},
			Entry:   MethodRef{"A", "m"},
		}, "unknown class"},
		{"missing entry class", &Program{
			Classes: []*Class{{Name: "A", Methods: []*Method{{Name: "m"}}}},
			Entry:   MethodRef{"B", "m"},
		}, "entry class"},
		{"missing entry method", &Program{
			Classes: []*Class{{Name: "A", Methods: []*Method{{Name: "m"}}}},
			Entry:   MethodRef{"A", "nope"},
		}, "entry method"},
		{"negative loop", &Program{
			Classes: []*Class{{Name: "A", Methods: []*Method{{Name: "m", Body: []Instr{Loop(-1)}}}}},
			Entry:   MethodRef{"A", "m"},
		}, "negative"},
		{"empty call target", &Program{
			Classes: []*Class{{Name: "A", Methods: []*Method{{Name: "m", Body: []Instr{{Op: OpCall}}}}}},
			Entry:   MethodRef{"A", "m"},
		}, "empty target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.prog.Normalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Normalize() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestRunNative(t *testing.T) {
	vm, err := NewVM(testProgram(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var emits []string
	vm.OnEmit = func(_ *VM, m MethodRef, tag string) { emits = append(emits, m.String()+":"+tag) }
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if len(emits) == 0 || emits[len(emits)-1] != "Main.main:end" {
		t.Fatalf("emits = %v, want last Main.main:end", emits)
	}
	if vm.Steps == 0 {
		t.Fatal("Steps not counted")
	}
	if vm.Depth() != 0 {
		t.Fatalf("Depth after run = %d, want 0", vm.Depth())
	}
}

func TestDispatchSetBeforeAndAfterLoad(t *testing.T) {
	p := testProgram()
	p.Entry = MethodRef{"Main", "load"}
	vm, err := NewVM(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	before := vm.DispatchTargets("Shape", "area")
	if len(before) != 3 {
		t.Fatalf("static dispatch set = %v, want 3 targets", before)
	}
	if vm.Loaded("Dyn") {
		t.Fatal("Dyn loaded before execution")
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if !vm.Loaded("Dyn") {
		t.Fatal("Dyn not loaded after execution")
	}
	after := vm.DispatchTargets("Shape", "area")
	if len(after) != 4 {
		t.Fatalf("post-load dispatch set = %v, want 4 targets", after)
	}
	if vm.Loads != 1 {
		t.Fatalf("Loads = %d, want 1", vm.Loads)
	}
}

func TestDispatchDeterministicBySeed(t *testing.T) {
	run := func(seed uint64) []string {
		vm, err := NewVM(testProgram(), seed)
		if err != nil {
			t.Fatal(err)
		}
		var order []string
		vm.OnEmit = func(v *VM, m MethodRef, tag string) {
			st := v.Stack()
			parts := make([]string, len(st))
			for i, r := range st {
				parts[i] = r.String()
			}
			order = append(order, strings.Join(parts, ">"))
		}
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a := run(42)
	b := run(42)
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Fatalf("same seed, different traces:\n%v\n%v", a, b)
	}
}

func TestStackGroundTruth(t *testing.T) {
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: []Instr{Call("B", "f")}},
			}},
			{Name: "B", Methods: []*Method{
				{Name: "f", Body: []Instr{Call("C", "g")}},
			}},
			{Name: "C", Methods: []*Method{
				{Name: "g", Body: []Instr{Emit("x")}},
			}},
		},
		Entry: MethodRef{"A", "main"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []MethodRef
	vm.OnEmit = func(v *VM, _ MethodRef, _ string) { got = v.Stack() }
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	want := []MethodRef{{"A", "main"}, {"B", "f"}, {"C", "g"}}
	if len(got) != len(want) {
		t.Fatalf("stack = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stack[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: []Instr{Call("A", "main")}},
			}},
		},
		Entry: MethodRef{"A", "main"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	vm.MaxDepth = 32
	err = vm.Run()
	if !errors.Is(err, ErrMaxDepth) {
		t.Fatalf("Run = %v, want ErrMaxDepth", err)
	}
}

func TestCallToUnloadedMethodFails(t *testing.T) {
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: []Instr{Call("Ghost", "f")}},
			}},
		},
		Entry: MethodRef{"A", "main"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err == nil || !strings.Contains(err.Error(), "unloaded method") {
		t.Fatalf("Run = %v, want unloaded-method error", err)
	}
}

func TestVCallNoImplementation(t *testing.T) {
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: []Instr{VCall("A", "ghost")}},
			}},
		},
		Entry: MethodRef{"A", "main"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err == nil || !strings.Contains(err.Error(), "no loaded implementation") {
		t.Fatalf("Run = %v, want no-implementation error", err)
	}
}

// countingProbes records probe events for assertions.
type countingProbes struct {
	before, after, enter, exit int
	dynamicEnters              int
	lastTarget                 MethodRef
}

func (c *countingProbes) BeforeCall(_ SiteRef, target MethodRef) uint8 {
	c.before++
	c.lastTarget = target
	return 7
}
func (c *countingProbes) AfterCall(_ SiteRef, _ MethodRef, tok uint8) {
	if tok != 7 {
		panic("token not threaded")
	}
	c.after++
}
func (c *countingProbes) Enter(m MethodRef) uint8 {
	c.enter++
	if m.Class == "Dyn" {
		c.dynamicEnters++
	}
	return 9
}
func (c *countingProbes) Exit(_ MethodRef, tok uint8) {
	if tok != 9 {
		panic("token not threaded")
	}
	c.exit++
}

func TestProbesFireAndBalance(t *testing.T) {
	vm, err := NewVM(testProgram(), 3)
	if err != nil {
		t.Fatal(err)
	}
	probes := &countingProbes{}
	vm.SetProbes(probes)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if probes.before == 0 || probes.before != probes.after {
		t.Fatalf("before/after unbalanced: %d/%d", probes.before, probes.after)
	}
	if probes.enter == 0 || probes.enter != probes.exit {
		t.Fatalf("enter/exit unbalanced: %d/%d", probes.enter, probes.exit)
	}
	// main + setup + 3 area calls = 5 enters (entry method included).
	if probes.enter != 5 {
		t.Fatalf("enter = %d, want 5", probes.enter)
	}
}

func TestDynamicCodeNotInstrumented(t *testing.T) {
	p := testProgram()
	p.Entry = MethodRef{"Main", "load"}
	// Force dispatch to hit Dyn at least sometimes by looping.
	p.Classes[0].Methods[2].Body = []Instr{
		LoadClass("Dyn"),
		Loop(64, VCall("Shape", "area")),
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	probes := &countingProbes{}
	vm.SetProbes(probes)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if probes.dynamicEnters != 0 {
		t.Fatalf("Enter fired %d times for dynamically loaded methods", probes.dynamicEnters)
	}
	// BeforeCall still fires at the (instrumented) call site even when the
	// dynamic target is chosen — that is how the encoder sees the call.
	if probes.before != 64+1 { // 64 vcalls + 0... LoadClass isn't a call; plus nothing else
		t.Logf("before = %d (dispatch-dependent enters ok)", probes.before)
	}
}

func TestDuplicateStaticDynamicClassRejected(t *testing.T) {
	p := &Program{
		Classes: []*Class{{Name: "A", Methods: []*Method{{Name: "m"}}}},
		Dynamic: []*Class{{Name: "A"}},
		Entry:   MethodRef{"A", "m"},
	}
	if err := p.Normalize(); err == nil {
		// Normalize also catches the duplicate; either layer may reject.
		if _, err := NewVM(p, 0); err == nil {
			t.Fatal("duplicate static/dynamic class not rejected")
		}
	}
}

func TestProgramStringRoundTripShape(t *testing.T) {
	p := testProgram()
	s := p.String()
	for _, frag := range []string{
		"entry Main.main", "class Main {", "method main {",
		"call Main.setup", "vcall Shape.area", "loop 3 {",
		"emit end", "dynamic class Dyn extends Shape", "work 10",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestWorkAffectsSink(t *testing.T) {
	vm, err := NewVM(testProgram(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.Sink() == 0 {
		t.Fatal("work sink never written")
	}
}

func TestSpawnExecutorOrderAndNesting(t *testing.T) {
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: []Instr{
					Spawn("A", "t1"),
					Spawn("A", "t2"),
					Emit("main"),
				}},
				{Name: "t1", Body: []Instr{Spawn("A", "t3"), Emit("t1")}},
				{Name: "t2", Body: []Instr{Emit("t2")}},
				{Name: "t3", Body: []Instr{Emit("t3")}},
			}},
		},
		Entry: MethodRef{"A", "main"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	vm.OnEmit = func(v *VM, _ MethodRef, tag string) {
		if v.Depth() != 1 {
			t.Fatalf("emit %s at depth %d; tasks must run on fresh stacks", tag, v.Depth())
		}
		order = append(order, tag)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	// FIFO executor: main, then t1, t2, then t1's nested spawn t3.
	want := "main,t1,t2,t3"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Fatalf("task order = %s, want %s", got, want)
	}
	if vm.Tasks != 3 {
		t.Fatalf("Tasks = %d, want 3", vm.Tasks)
	}
}

func TestSpawnUnloadedTaskFails(t *testing.T) {
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: []Instr{Spawn("Ghost", "run")}},
			}},
		},
		Entry: MethodRef{"A", "main"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err == nil {
		t.Fatal("spawn of unloaded task succeeded")
	}
}

// taskProbes records BeginTask calls.
type taskProbes struct {
	countingProbes
	tasks []MethodRef
}

func (tp *taskProbes) BeginTask(entry MethodRef) { tp.tasks = append(tp.tasks, entry) }

func TestBeginTaskFires(t *testing.T) {
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: []Instr{Spawn("A", "w")}},
				{Name: "w", Body: []Instr{Work(1)}},
			}},
		},
		Entry: MethodRef{"A", "main"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	tp := &taskProbes{}
	vm.SetProbes(tp)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tp.tasks) != 2 || tp.tasks[0] != (MethodRef{"A", "main"}) || tp.tasks[1] != (MethodRef{"A", "w"}) {
		t.Fatalf("BeginTask calls = %v", tp.tasks)
	}
}

func TestSpawnValidation(t *testing.T) {
	p := &Program{
		Classes: []*Class{{Name: "A", Methods: []*Method{
			{Name: "m", Body: []Instr{{Op: OpSpawn}}},
		}}},
		Entry: MethodRef{"A", "m"},
	}
	if err := p.Normalize(); err == nil {
		t.Fatal("empty spawn target accepted")
	}
}
