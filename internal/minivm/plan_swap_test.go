package minivm

import (
	"fmt"
	"testing"
)

// Regression tests for probe-id freshness across plan swaps. An incremental
// analysis (Analysis.Extend) swaps the installed FastProbes and calls
// MarkAnalyzed mid-run; the dense per-method id tables (methodID, siteIDs)
// are caches against the previous resolver and must be rebuilt, including
// for calls already in flight: the id fields are re-read from the
// loadedMethod at fire time, so a frame entered under the old plan exits
// with ids the new resolver assigned.

// fastRec is a FastProbes fake that assigns ids from a per-generation base
// (so stale ids from another generation are detectable) and records every
// fast-path event as a readable string.
type fastRec struct {
	gen     string
	base    int32
	next    int32
	methods map[MethodRef]int32
	sites   map[SiteRef]int32
	events  []string
}

func newFastRec(gen string, base int32) *fastRec {
	return &fastRec{gen: gen, base: base, next: base,
		methods: make(map[MethodRef]int32), sites: make(map[SiteRef]int32)}
}

func (r *fastRec) ResolveMethod(m MethodRef) int32 {
	id, ok := r.methods[m]
	if !ok {
		id = r.next
		r.next++
		r.methods[m] = id
	}
	return id
}

func (r *fastRec) ResolveSite(s SiteRef) int32 {
	id, ok := r.sites[s]
	if !ok {
		id = r.next
		r.next++
		r.sites[s] = id
	}
	return id
}

func (r *fastRec) rec(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

func (r *fastRec) FastBeforeCall(site, target int32) uint8 {
	r.rec("%s before site=%d target=%d", r.gen, site, target)
	return 1
}

func (r *fastRec) FastAfterCall(site, target int32, token uint8) {
	r.rec("%s after site=%d target=%d", r.gen, site, target)
}

func (r *fastRec) FastEnter(m int32) uint8 { r.rec("%s enter m=%d", r.gen, m); return 1 }
func (r *fastRec) FastExit(m int32, token uint8) {
	r.rec("%s exit m=%d", r.gen, m)
}

// Ref-path half of Probes; unused on the fast path but required by the
// interface.
func (r *fastRec) BeforeCall(site SiteRef, target MethodRef) uint8 { return 0 }
func (r *fastRec) AfterCall(site SiteRef, target MethodRef, token uint8) {
}
func (r *fastRec) Enter(m MethodRef) uint8       { return 0 }
func (r *fastRec) Exit(m MethodRef, token uint8) {}

// swapProgram drives the plan-swap scenario:
//
//	A.main:   call A.driver; emit end
//	A.driver: load Dyn; call Dyn.op (swap fires inside); call A.leaf; call Dyn.op
//	A.leaf:   work
//	Dyn.op (dynamic): emit inside
func swapProgram() *Program {
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: []Instr{Call("A", "driver"), Emit("end")}},
				{Name: "driver", Body: []Instr{
					LoadClass("Dyn"),
					Call("Dyn", "op"),
					Call("A", "leaf"),
					Call("Dyn", "op"),
				}},
				{Name: "leaf", Body: []Instr{Work(1)}},
			}},
		},
		Dynamic: []*Class{
			{Name: "Dyn", Methods: []*Method{
				{Name: "op", Body: []Instr{Emit("inside")}},
			}},
		},
		Entry: MethodRef{Class: "A", Method: "main"},
	}
	if err := p.Normalize(); err != nil {
		panic(err)
	}
	return p
}

// TestPlanSwapRefreshesProbeIDs swaps probes and absorbs a dynamic class
// while a call into that class is in flight, then checks every subsequent
// fast-path event fires on the new probes with the new resolver's ids —
// no event may carry an id from the old generation's range.
func TestPlanSwapRefreshesProbeIDs(t *testing.T) {
	prog := swapProgram()
	vm, err := NewVM(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := newFastRec("old", 0)
	next := newFastRec("new", 100)
	vm.SetProbes(old)

	dyn := MethodRef{Class: "Dyn", Method: "op"}
	driver := MethodRef{Class: "A", Method: "driver"}
	swapped := false
	vm.OnEmit = func(vm *VM, m MethodRef, tag string) {
		if tag != "inside" || swapped {
			return
		}
		swapped = true
		// The emit runs inside Dyn.op with the call from A.driver in
		// flight — the moment Session.Adopt swaps plans after an Extend.
		vm.SetProbes(next)
		vm.MarkAnalyzed("Dyn")
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}

	// The old probes may have been asked to *resolve* the dynamic method
	// (a resolver answers "no payload" for methods outside its plan), but
	// its entry/exit must never have *fired* while the class was dynamic.
	oldDynEnter := fmt.Sprintf("old enter m=%d", old.methods[dyn])
	if contains(old.events, oldDynEnter) {
		t.Errorf("old probes saw dynamic entry %q", oldDynEnter)
	}

	// Every post-swap event arrives at the new probes with fresh ids where
	// the VM re-reads them from the loadedMethod tables: method ids on
	// enter/exit and the target id on call probes (both re-resolved by
	// MarkAnalyzed). A return-side *site* id may legitimately come from the
	// old generation — it was captured when the call began, and plans keep
	// site ids stable across epochs precisely so such tokens stay valid.
	if len(next.events) == 0 {
		t.Fatal("no events reached the new probes after the swap")
	}
	for _, ev := range next.events {
		var site, target, m int32 = -1, -1, -1
		inFlight := false
		if n, _ := fmt.Sscanf(ev, "new after site=%d target=%d", &site, &target); n == 2 {
			inFlight = true // may have begun before the swap
		} else if n, _ := fmt.Sscanf(ev, "new before site=%d target=%d", &site, &target); n == 2 {
		} else if n, _ := fmt.Sscanf(ev, "new enter m=%d", &m); n == 1 {
		} else if n, _ := fmt.Sscanf(ev, "new exit m=%d", &m); n == 1 {
		} else {
			t.Fatalf("unparsed event %q", ev)
		}
		for _, id := range []int32{target, m} {
			if id >= 0 && id < 100 {
				t.Errorf("event %q carries id %d from the old generation's range", ev, id)
			}
		}
		if !inFlight && site >= 0 && site < 100 {
			t.Errorf("fresh call %q carries stale site id %d", ev, site)
		}
	}

	// The call to Dyn.op in flight at the swap: its return-side probe must
	// report the target id the NEW resolver assigned when MarkAnalyzed
	// re-resolved the method — not the "no payload" id cached at call time.
	wantAfter := fmt.Sprintf("new after site=%d target=%d", old.sites[SiteRef{In: driver, Site: 0}], next.methods[dyn])
	if !contains(next.events, wantAfter) {
		t.Errorf("in-flight call's return probe missing or stale:\n  want %q\n  got  %v", wantAfter, next.events)
	}

	// The second call to Dyn.op (entirely post-swap) must fire its entry
	// and exit with the new resolver's method id: the absorbed class is
	// instrumented like a static one from MarkAnalyzed on.
	wantEnter := fmt.Sprintf("new enter m=%d", next.methods[dyn])
	wantExit := fmt.Sprintf("new exit m=%d", next.methods[dyn])
	if !contains(next.events, wantEnter) || !contains(next.events, wantExit) {
		t.Errorf("absorbed class's method did not fire entry/exit with new ids:\n  want %q and %q\n  got  %v",
			wantEnter, wantExit, next.events)
	}
}

func contains(events []string, want string) bool {
	for _, ev := range events {
		if ev == want {
			return true
		}
	}
	return false
}

// TestMarkAnalyzedBeforeRun is the quiescent half: absorbing before any
// call leaves no in-flight frames, so the entire run fires with the new
// ids and the dynamic method behaves exactly like a static one.
func TestMarkAnalyzedBeforeRun(t *testing.T) {
	prog := swapProgram()
	vm, err := NewVM(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := newFastRec("new", 100)
	vm.SetProbes(rec)
	vm.MarkAnalyzed("Dyn")
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	dyn := MethodRef{Class: "Dyn", Method: "op"}
	wantEnter := fmt.Sprintf("new enter m=%d", rec.methods[dyn])
	n := 0
	for _, ev := range rec.events {
		if ev == wantEnter {
			n++
		}
	}
	if n != 2 {
		t.Errorf("absorbed-before-run method entered %d times with resolved id, want 2\nevents: %v", n, rec.events)
	}
}
