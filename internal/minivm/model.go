// Package minivm implements a small object-oriented virtual machine that
// plays the role the JVM plays in the DeltaPath paper: it runs programs made
// of classes with single inheritance, static and virtual method calls,
// loops, recursion, and — crucially — dynamic class loading, where classes
// unknown to static analysis join virtual dispatch mid-execution.
//
// The encoding techniques under study never see minivm internals: they see a
// call graph (built by package cha) and a stream of call/enter/exit events
// (delivered through the Probes interface), exactly as a Java agent sees
// bytecode call sites and method entries. Instrumentation is modelled by
// attaching encoder probes to the interpreter; uninstrumented code (library
// methods under selective encoding, dynamically loaded classes) simply has
// no payload, just as un-rewritten bytecode has none.
package minivm

import (
	"fmt"
	"strings"
)

// MethodRef names a method globally: "Class.method".
type MethodRef struct {
	Class  string
	Method string
}

func (r MethodRef) String() string { return r.Class + "." + r.Method }

// SiteRef names a call site globally: a labelled position inside a method.
type SiteRef struct {
	In   MethodRef
	Site int32
}

func (s SiteRef) String() string { return fmt.Sprintf("%s@%d", s.In, s.Site) }

// Opcode enumerates minivm instructions.
type Opcode uint8

const (
	// OpCall invokes a statically bound method (Class.Name).
	OpCall Opcode = iota
	// OpVCall invokes a virtually dispatched method: the target is chosen
	// at runtime among all loaded classes at or below Class that declare
	// Name. This is the minivm analog of invokevirtual.
	OpVCall
	// OpLoop repeats Body N times.
	OpLoop
	// OpEmit marks a program point whose calling context is of interest
	// (the analog of a system call or logging statement); the VM reports
	// it through the OnEmit callback.
	OpEmit
	// OpLoadClass dynamically loads the named class, making its methods
	// visible to virtual dispatch from then on. Loading an already-loaded
	// class is a no-op, like Class.forName on a loaded class.
	OpLoadClass
	// OpWork burns N units of synthetic computation. It gives benchmark
	// programs a realistic ratio of application work to call overhead so
	// that instrumentation slowdowns are meaningful.
	OpWork
	// OpThrow raises an exception that unwinds the stack to the nearest
	// enclosing OpTry handler. Instrumentation must stay balanced across
	// the unwinding — the minivm analog of the try/finally blocks a
	// bytecode rewriter wraps around instrumented calls.
	OpThrow
	// OpTry executes Body; if an exception unwinds out of it, control
	// transfers to Handler and the exception is consumed.
	OpTry
	// OpSpawn submits Class.Name as a task to the VM's executor. Tasks
	// run to completion after the spawning code finishes (a deterministic
	// run-to-completion executor, the analog of a thread pool draining a
	// queue); each runs on a fresh stack with fresh per-thread encoding
	// state, so calling contexts root at the task's entry method.
	OpSpawn
)

// Instr is one minivm instruction. Which fields are meaningful depends on Op:
//
//	OpCall, OpVCall:  Site, Class, Name, and optionally Depth
//	OpLoop:           N, Body
//	OpEmit:           Tag
//	OpLoadClass:      Class
//	OpWork:           N
//	OpThrow:          Tag (the exception tag), optionally Depth (thrown
//	                  only when the call depth is at least Depth — the
//	                  stand-in for a data-dependent error condition)
//	OpTry:            Body, Handler
//
// Depth, when positive, makes a call conditional: it executes only while
// the current call depth is below Depth. It is the minivm stand-in for a
// recursion base case (the VM has no data-dependent branches); static
// analysis still sees an unconditional call edge, which is exactly the
// conservative treatment a real analyser applies to a guarded call.
type Instr struct {
	Op      Opcode
	Site    int32
	Class   string
	Name    string
	N       int
	Depth   int
	Tag     string
	Body    []Instr
	Handler []Instr
}

// Call builds an OpCall instruction (site label assigned by Normalize).
func Call(class, method string) Instr { return Instr{Op: OpCall, Class: class, Name: method} }

// CallBounded builds an OpCall executed only while the call depth is below
// limit — the bounded form used to express terminating recursion.
func CallBounded(class, method string, limit int) Instr {
	return Instr{Op: OpCall, Class: class, Name: method, Depth: limit}
}

// VCallBounded is CallBounded for virtual calls.
func VCallBounded(class, method string, limit int) Instr {
	return Instr{Op: OpVCall, Class: class, Name: method, Depth: limit}
}

// VCall builds an OpVCall instruction (site label assigned by Normalize).
func VCall(class, method string) Instr { return Instr{Op: OpVCall, Class: class, Name: method} }

// Loop builds an OpLoop instruction.
func Loop(n int, body ...Instr) Instr { return Instr{Op: OpLoop, N: n, Body: body} }

// Emit builds an OpEmit instruction.
func Emit(tag string) Instr { return Instr{Op: OpEmit, Tag: tag} }

// LoadClass builds an OpLoadClass instruction.
func LoadClass(class string) Instr { return Instr{Op: OpLoadClass, Class: class} }

// Work builds an OpWork instruction.
func Work(n int) Instr { return Instr{Op: OpWork, N: n} }

// Throw builds an OpThrow instruction.
func Throw(tag string) Instr { return Instr{Op: OpThrow, Tag: tag} }

// ThrowIfDeeper builds an OpThrow that only fires at call depth >= limit.
func ThrowIfDeeper(tag string, limit int) Instr {
	return Instr{Op: OpThrow, Tag: tag, Depth: limit}
}

// Try builds an OpTry instruction.
func Try(body, handler []Instr) Instr { return Instr{Op: OpTry, Body: body, Handler: handler} }

// Spawn builds an OpSpawn instruction.
func Spawn(class, method string) Instr { return Instr{Op: OpSpawn, Class: class, Name: method} }

// Method is a method body. Site labels within one method are unique after
// Normalize runs (they are the analog of bytecode indices of invoke
// instructions).
type Method struct {
	Name string
	Body []Instr
}

// Class is a minivm class: a name, an optional superclass, a library flag
// (for the encoding-application setting of Section 4.2), and methods.
type Class struct {
	Name    string
	Super   string // "" if the class has no superclass
	Library bool
	Methods []*Method
}

// Method returns the declared method with the given name, or nil.
func (c *Class) Method(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Program is a complete minivm program: the statically loaded classes (the
// ones static analysis sees), the dynamically loadable classes (invisible to
// static analysis until an OpLoadClass executes), and the entry method.
type Program struct {
	Classes []*Class
	Dynamic []*Class
	Entry   MethodRef
}

// Class returns the static or dynamic class with the given name, or nil.
func (p *Program) Class(name string) *Class {
	for _, c := range p.Classes {
		if c.Name == name {
			return c
		}
	}
	for _, c := range p.Dynamic {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Normalize assigns unique, stable site labels to every call instruction of
// every method (numbering them in body order, including inside loops), and
// validates basic structural properties. It must be called once after a
// program is constructed and before analysis or execution.
func (p *Program) Normalize() error {
	seen := make(map[string]bool)
	all := make([]*Class, 0, len(p.Classes)+len(p.Dynamic))
	all = append(all, p.Classes...)
	all = append(all, p.Dynamic...)
	for _, c := range all {
		if c.Name == "" {
			return fmt.Errorf("minivm: class with empty name")
		}
		if seen[c.Name] {
			return fmt.Errorf("minivm: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		mseen := make(map[string]bool)
		for _, m := range c.Methods {
			if m.Name == "" {
				return fmt.Errorf("minivm: class %q has a method with empty name", c.Name)
			}
			if mseen[m.Name] {
				return fmt.Errorf("minivm: class %q declares method %q twice", c.Name, m.Name)
			}
			mseen[m.Name] = true
			var next int32
			if err := numberSites(m.Body, &next); err != nil {
				return fmt.Errorf("minivm: %s.%s: %w", c.Name, m.Name, err)
			}
		}
	}
	for _, c := range all {
		if c.Super != "" && !seen[c.Super] {
			return fmt.Errorf("minivm: class %q extends unknown class %q", c.Name, c.Super)
		}
	}
	if p.Entry.Class == "" || p.Entry.Method == "" {
		return fmt.Errorf("minivm: program has no entry method")
	}
	ec := p.Class(p.Entry.Class)
	if ec == nil {
		return fmt.Errorf("minivm: entry class %q not found", p.Entry.Class)
	}
	if ec.Method(p.Entry.Method) == nil {
		return fmt.Errorf("minivm: entry method %s not found", p.Entry)
	}
	return nil
}

func numberSites(body []Instr, next *int32) error {
	for i := range body {
		in := &body[i]
		switch in.Op {
		case OpCall, OpVCall:
			if in.Class == "" || in.Name == "" {
				return fmt.Errorf("call instruction with empty target")
			}
			in.Site = *next
			*next++
		case OpLoop:
			if in.N < 0 {
				return fmt.Errorf("loop with negative count %d", in.N)
			}
			if err := numberSites(in.Body, next); err != nil {
				return err
			}
		case OpEmit, OpWork:
			// nothing to validate
		case OpThrow:
			if in.Tag == "" {
				return fmt.Errorf("throw with empty tag")
			}
		case OpTry:
			if err := numberSites(in.Body, next); err != nil {
				return err
			}
			if err := numberSites(in.Handler, next); err != nil {
				return err
			}
		case OpLoadClass:
			if in.Class == "" {
				return fmt.Errorf("loadclass with empty class name")
			}
		case OpSpawn:
			if in.Class == "" || in.Name == "" {
				return fmt.Errorf("spawn with empty target")
			}
		default:
			return fmt.Errorf("unknown opcode %d", in.Op)
		}
	}
	return nil
}

// String renders the program in the textual form accepted by package lang.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "entry %s\n", p.Entry)
	for _, c := range p.Classes {
		writeClass(&b, c, false)
	}
	for _, c := range p.Dynamic {
		writeClass(&b, c, true)
	}
	return b.String()
}

func writeClass(b *strings.Builder, c *Class, dynamic bool) {
	if dynamic {
		b.WriteString("dynamic ")
	}
	if c.Library {
		b.WriteString("library ")
	}
	fmt.Fprintf(b, "class %s", c.Name)
	if c.Super != "" {
		fmt.Fprintf(b, " extends %s", c.Super)
	}
	b.WriteString(" {\n")
	for _, m := range c.Methods {
		fmt.Fprintf(b, "  method %s {\n", m.Name)
		writeBody(b, m.Body, "    ")
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
}

func writeBody(b *strings.Builder, body []Instr, indent string) {
	for _, in := range body {
		switch in.Op {
		case OpCall:
			if in.Depth > 0 {
				fmt.Fprintf(b, "%srcall %d %s.%s\n", indent, in.Depth, in.Class, in.Name)
			} else {
				fmt.Fprintf(b, "%scall %s.%s\n", indent, in.Class, in.Name)
			}
		case OpVCall:
			if in.Depth > 0 {
				fmt.Fprintf(b, "%srvcall %d %s.%s\n", indent, in.Depth, in.Class, in.Name)
			} else {
				fmt.Fprintf(b, "%svcall %s.%s\n", indent, in.Class, in.Name)
			}
		case OpLoop:
			fmt.Fprintf(b, "%sloop %d {\n", indent, in.N)
			writeBody(b, in.Body, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		case OpEmit:
			fmt.Fprintf(b, "%semit %s\n", indent, in.Tag)
		case OpLoadClass:
			fmt.Fprintf(b, "%sload %s\n", indent, in.Class)
		case OpWork:
			fmt.Fprintf(b, "%swork %d\n", indent, in.N)
		case OpThrow:
			if in.Depth > 0 {
				fmt.Fprintf(b, "%srthrow %d %s\n", indent, in.Depth, in.Tag)
			} else {
				fmt.Fprintf(b, "%sthrow %s\n", indent, in.Tag)
			}
		case OpSpawn:
			fmt.Fprintf(b, "%sspawn %s.%s\n", indent, in.Class, in.Name)
		case OpTry:
			fmt.Fprintf(b, "%stry {\n", indent)
			writeBody(b, in.Body, indent+"  ")
			fmt.Fprintf(b, "%s} catch {\n", indent)
			writeBody(b, in.Handler, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		}
	}
}
