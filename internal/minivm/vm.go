package minivm

import (
	"errors"
	"fmt"

	"deltapath/internal/obs"
)

// Probes is the instrumentation interface. A static analysis binds encoding
// payloads to call sites and method entries; the resulting encoder
// implements Probes and the VM invokes it at the corresponding events.
//
// Tokens let an instrumentation site communicate with its matching
// counterpart (BeforeCall→AfterCall around one invocation, Enter→Exit around
// one activation). They model the local variables an instrumenting agent
// would introduce into the rewritten method body; the VM threads them
// through but never interprets them.
//
// A nil Probes means the program runs natively (no instrumentation at all).
type Probes interface {
	// BeforeCall fires immediately before an invocation at the given call
	// site transfers control to target. For a virtual site, target is the
	// dynamically chosen method — which may belong to a dynamically
	// loaded class the static analysis never saw.
	BeforeCall(site SiteRef, target MethodRef) (token uint8)
	// AfterCall fires immediately after the invocation returns.
	AfterCall(site SiteRef, target MethodRef, token uint8)
	// Enter fires at the entry of method m, but only if m was statically
	// loaded: dynamically loaded classes are never instrumented
	// (Section 4.1 — "instrumentation of dynamically loaded classes is
	// completely avoided").
	Enter(m MethodRef) (token uint8)
	// Exit fires at the exit of a statically loaded method m, with the
	// token its Enter returned.
	Exit(m MethodRef, token uint8)
}

// FastProbes is an optional extension of Probes for probe implementations
// that can be driven by dense integer ids instead of structured refs. When
// the installed probes implement it, the VM resolves every call site and
// method to an id once per loaded method (via ResolveMethod/ResolveSite) and
// the interpreter hot path fires the Fast variants — two slice indexes
// instead of a map lookup per event, the minivm analog of an agent baking
// constant operands into rewritten bytecode.
//
// Ids are probe-defined. A negative id means "no payload here"; the VM
// passes it through unchanged and the probe implementation ignores it.
type FastProbes interface {
	Probes
	// ResolveMethod returns the dense id FastEnter/FastExit expect for m,
	// or a negative id if m carries no entry payload.
	ResolveMethod(m MethodRef) int32
	// ResolveSite returns the dense id FastBeforeCall/FastAfterCall expect
	// for s, or a negative id if s carries no payload.
	ResolveSite(s SiteRef) int32
	FastBeforeCall(site, target int32) (token uint8)
	FastAfterCall(site, target int32, token uint8)
	FastEnter(m int32) (token uint8)
	FastExit(m int32, token uint8)
}

// Sentinel site ids the VM stores in a loaded method's siteIDs table.
// fastSiteSkip marks an encoding-free site (excluded by SetInstrumentedSites):
// the VM skips the probe calls entirely, exactly as the ref path's set check
// does. Unmodelled sites keep the probe's own negative id (the probe fires
// and ignores it, matching the ref path's nil-payload behaviour).
const fastSiteSkip int32 = -2

// EmitFunc receives emit events: the method containing the OpEmit, its tag,
// and the VM (whose Stack method gives the ground-truth calling context).
type EmitFunc func(vm *VM, m MethodRef, tag string)

// TaskProbes is implemented by probes that need task boundaries: the VM
// calls BeginTask before each executor task (including the main task)
// starts, so per-thread encoding state can be rooted at the task's entry.
type TaskProbes interface {
	Probes
	BeginTask(entry MethodRef)
}

// loadedMethod is a linked, runnable method.
type loadedMethod struct {
	ref     MethodRef
	body    []Instr
	library bool
	dynamic bool // belongs to a dynamically loaded class

	// Dense probe ids, resolved once per method when FastProbes are
	// installed: methodID for Enter/Exit, siteIDs indexed by site label
	// (labels are dense per method after Normalize) for call probes.
	methodID int32
	siteIDs  []int32
}

// dispatchKey identifies a virtual dispatch set: all loaded declarations of
// Method at or below Class.
type dispatchKey struct {
	Class  string
	Method string
}

// VM executes a minivm program.
type VM struct {
	prog    *Program
	classes map[string]*Class // name -> definition (static + dynamic)
	static  map[string]bool   // statically loaded class names
	// analyzed marks dynamically loaded classes a later incremental
	// analysis absorbed (Analysis.Extend): their methods are instrumented
	// exactly like static ones from the moment MarkAnalyzed runs.
	analyzed map[string]bool

	loaded  map[string]bool             // currently loaded class names
	methods map[MethodRef]*loadedMethod // loaded methods
	supers  map[string]string           // class -> super
	dtables map[dispatchKey][]*loadedMethod

	probes Probes
	// fast is probes when it implements FastProbes, else nil. Non-nil
	// switches the interpreter's call/enter/exit hot path to dense ids.
	fast FastProbes
	// instrumented, when non-nil, restricts probes to the listed methods:
	// only their entries/exits and the call sites inside them fire. This
	// models selective bytecode rewriting (Section 4.2): a method the
	// agent did not rewrite carries no payload anywhere in its body.
	instrumented map[MethodRef]bool
	// instrumentedSites, when non-nil, restricts call-site probes to the
	// listed sites: a site outside the set carries no payload at all.
	// Models "encoding free" sites (profile-guided zero addition values,
	// Section 8) where the rewriter inserts nothing.
	instrumentedSites map[SiteRef]bool
	// probeDynamic additionally fires Enter/Exit probes for dynamically
	// loaded methods. DeltaPath never needs this — avoiding it is a
	// design goal (Section 4.1) — but the depth-tracking alternative the
	// paper sketches requires counters at dynamic entries and exits, so
	// the VM supports it for the ablation.
	probeDynamic bool
	OnEmit       EmitFunc

	rng   uint64
	stack []MethodRef

	// Steps counts executed instructions plus work units: the throughput
	// measure used by the Figure 8 experiment ("operations per minute").
	Steps uint64
	sink  uint64

	// MaxDepth bounds the interpreter call stack; exceeding it is a
	// runtime error (the analog of StackOverflowError).
	MaxDepth int

	// Loads counts dynamic class-load events that actually loaded a class.
	Loads int

	// tasks is the executor queue fed by OpSpawn.
	tasks []MethodRef
	// Tasks counts executor tasks run (excluding the main task).
	Tasks int

	// obs holds the interpreter's observability hooks (see Observe). The
	// zero value is the default no-op sink.
	obs vmObs
}

// vmObs is the VM's pre-resolved hook set: interpreter call/return
// volume, emit points, and executor tasks. All fields are nil-safe.
type vmObs struct {
	calls   *obs.Counter
	returns *obs.Counter
	emits   *obs.Counter
	tasks   *obs.Counter
	tracer  *obs.Tracer
}

// Observe resolves the VM's metric hooks from reg and attaches tr for
// event tracing; either may be nil. Trace records carry the call depth as
// the site and the step count as the context, correlating interpreter
// events with the encoder's piece events in one dump.
func (vm *VM) Observe(reg *obs.Registry, tr *obs.Tracer) {
	vm.obs = vmObs{
		calls:   reg.Counter(obs.MetricVMCalls),
		returns: reg.Counter(obs.MetricVMReturns),
		emits:   reg.Counter(obs.MetricVMEmits),
		tasks:   reg.Counter(obs.MetricVMTasks),
		tracer:  tr,
	}
}

// ErrMaxDepth is returned when the interpreter call stack exceeds MaxDepth.
var ErrMaxDepth = errors.New("minivm: maximum call depth exceeded")

// Exception is the error produced by an OpThrow that no OpTry caught. It
// propagates like any error, unwinding interpreter frames — with every
// Exit/AfterCall probe still firing, as a bytecode rewriter's try/finally
// wrappers guarantee.
type Exception struct{ Tag string }

func (e *Exception) Error() string { return "minivm: uncaught exception " + e.Tag }

// AsException reports whether err is an uncaught minivm exception.
func AsException(err error) (*Exception, bool) {
	var ex *Exception
	if errors.As(err, &ex) {
		return ex, true
	}
	return nil, false
}

// NewVM prepares a VM for the program: all static classes are loaded,
// dynamic ones are registered but not loaded. seed drives the deterministic
// virtual-dispatch choice. The program must have been normalized.
func NewVM(prog *Program, seed uint64) (*VM, error) {
	vm := &VM{
		prog:     prog,
		classes:  make(map[string]*Class),
		static:   make(map[string]bool),
		analyzed: make(map[string]bool),
		loaded:   make(map[string]bool),
		methods:  make(map[MethodRef]*loadedMethod),
		supers:   make(map[string]string),
		dtables:  make(map[dispatchKey][]*loadedMethod),
		rng:      seed*2654435769 + 0x9e3779b97f4a7c15,
		MaxDepth: 512,
	}
	for _, c := range prog.Classes {
		vm.classes[c.Name] = c
		vm.static[c.Name] = true
	}
	for _, c := range prog.Dynamic {
		if vm.classes[c.Name] != nil {
			return nil, fmt.Errorf("minivm: class %q is both static and dynamic", c.Name)
		}
		vm.classes[c.Name] = c
	}
	// Load static classes in superclass-first order.
	for _, c := range prog.Classes {
		if err := vm.load(c.Name); err != nil {
			return nil, err
		}
	}
	return vm, nil
}

// SetProbes installs (or clears, with nil) the instrumentation probes.
// Probes that implement FastProbes get the dense-id hot path: the VM
// resolves ids for every loaded method now and for each later dynamic load.
func (vm *VM) SetProbes(p Probes) {
	vm.probes = p
	vm.fast, _ = p.(FastProbes)
	vm.resolveFast()
}

// SetInstrumented restricts probes to the given methods; nil means every
// statically loaded method is instrumented.
func (vm *VM) SetInstrumented(set map[MethodRef]bool) { vm.instrumented = set }

// SetProbeDynamic makes Enter/Exit probes fire for dynamically loaded
// methods too (depth-tracking ablation only).
func (vm *VM) SetProbeDynamic(on bool) { vm.probeDynamic = on }

// MarkAnalyzed flips the named dynamically loaded classes into the analysed
// world, after an incremental analysis (Analysis.Extend) absorbed them:
// their methods — already loaded or loaded later — are instrumented exactly
// like static ones from now on. Call it after installing the extended
// analysis's probes: it re-resolves every loaded method's dense probe-id
// tables, because ids cached against the previous plan are stale for newly
// analysed methods (their entries and call sites resolved to "no payload"
// when the class was outside the graph).
func (vm *VM) MarkAnalyzed(names ...string) {
	for _, n := range names {
		vm.analyzed[n] = true
	}
	for _, lm := range vm.methods {
		if lm.dynamic && vm.analyzed[lm.ref.Class] {
			lm.dynamic = false
		}
	}
	vm.resolveFast()
}

// SetInstrumentedSites restricts call-site probes to the given sites; nil
// means every site within instrumented methods fires. The fast-path site
// tables bake the exclusion in, so the set must be installed before Run.
func (vm *VM) SetInstrumentedSites(set map[SiteRef]bool) {
	vm.instrumentedSites = set
	vm.resolveFast()
}

// resolveFast (re)builds every loaded method's dense probe-id tables.
func (vm *VM) resolveFast() {
	if vm.fast == nil {
		return
	}
	for _, lm := range vm.methods {
		vm.resolveMethodFast(lm)
	}
}

// resolveMethodFast resolves one method's dense ids against vm.fast.
func (vm *VM) resolveMethodFast(lm *loadedMethod) {
	lm.methodID = vm.fast.ResolveMethod(lm.ref)
	n := countSites(lm.body)
	if n == 0 {
		lm.siteIDs = nil
		return
	}
	lm.siteIDs = make([]int32, n)
	vm.fillSiteIDs(lm, lm.body)
}

// countSites returns one past the largest site label in body, mirroring
// numberSites's recursion into loop and try blocks.
func countSites(body []Instr) int32 {
	var n int32
	for i := range body {
		in := &body[i]
		switch in.Op {
		case OpCall, OpVCall:
			if in.Site+1 > n {
				n = in.Site + 1
			}
		case OpLoop:
			if k := countSites(in.Body); k > n {
				n = k
			}
		case OpTry:
			if k := countSites(in.Body); k > n {
				n = k
			}
			if k := countSites(in.Handler); k > n {
				n = k
			}
		}
	}
	return n
}

func (vm *VM) fillSiteIDs(lm *loadedMethod, body []Instr) {
	for i := range body {
		in := &body[i]
		switch in.Op {
		case OpCall, OpVCall:
			s := SiteRef{In: lm.ref, Site: in.Site}
			if vm.instrumentedSites != nil && !vm.instrumentedSites[s] {
				lm.siteIDs[in.Site] = fastSiteSkip
			} else {
				lm.siteIDs[in.Site] = vm.fast.ResolveSite(s)
			}
		case OpLoop:
			vm.fillSiteIDs(lm, in.Body)
		case OpTry:
			vm.fillSiteIDs(lm, in.Body)
			vm.fillSiteIDs(lm, in.Handler)
		}
	}
}

// hasProbes reports whether method m carries entry/exit instrumentation.
func (vm *VM) hasProbes(m *loadedMethod) bool {
	if vm.probes == nil {
		return false
	}
	if m.dynamic {
		return vm.probeDynamic
	}
	return vm.instrumented == nil || vm.instrumented[m.ref]
}

// hasCallProbes reports whether call sites inside m carry instrumentation;
// unlike entries, dynamic methods' call sites are never rewritten.
func (vm *VM) hasCallProbes(m *loadedMethod) bool {
	if vm.probes == nil || m.dynamic {
		return false
	}
	return vm.instrumented == nil || vm.instrumented[m.ref]
}

// Program returns the program this VM runs.
func (vm *VM) Program() *Program { return vm.prog }

// load links the named class and its not-yet-loaded ancestors.
func (vm *VM) load(name string) error {
	if vm.loaded[name] {
		return nil
	}
	c := vm.classes[name]
	if c == nil {
		return fmt.Errorf("minivm: load of unknown class %q", name)
	}
	if c.Super != "" && !vm.loaded[c.Super] {
		if err := vm.load(c.Super); err != nil {
			return err
		}
	}
	vm.loaded[name] = true
	vm.supers[name] = c.Super
	dynamic := !vm.static[name] && !vm.analyzed[name]
	for _, m := range c.Methods {
		ref := MethodRef{Class: name, Method: m.Name}
		lm := &loadedMethod{
			ref:     ref,
			body:    m.Body,
			library: c.Library,
			dynamic: dynamic,
		}
		vm.methods[ref] = lm
		if vm.fast != nil {
			vm.resolveMethodFast(lm)
		}
		// Register in the dispatch table of every ancestor (and self):
		// a vcall on any ancestor type can now dispatch here.
		for cls := name; cls != ""; cls = vm.supers[cls] {
			k := dispatchKey{Class: cls, Method: m.Name}
			vm.dtables[k] = append(vm.dtables[k], lm)
		}
	}
	return nil
}

// Loaded reports whether the class is currently loaded.
func (vm *VM) Loaded(name string) bool { return vm.loaded[name] }

// Stack returns a copy of the current ground-truth calling context, from
// the entry method (index 0) to the innermost active method.
func (vm *VM) Stack() []MethodRef {
	out := make([]MethodRef, len(vm.stack))
	copy(out, vm.stack)
	return out
}

// Depth returns the current call depth.
func (vm *VM) Depth() int { return len(vm.stack) }

// Frame returns the i-th active method, outermost first (0 ≤ i < Depth).
// With Depth it lets a walker visit the stack without copying it.
func (vm *VM) Frame(i int) MethodRef { return vm.stack[i] }

// nextRand is a splitmix64 step: deterministic, fast, well mixed.
func (vm *VM) nextRand() uint64 {
	vm.rng += 0x9e3779b97f4a7c15
	z := vm.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Run executes the program's entry method to completion, then drains the
// executor queue: each spawned task runs to completion on a fresh stack,
// in spawn order (deterministic). An uncaught exception in a task aborts
// the run, like an uncaught exception killing a worker thread under a
// fail-fast policy.
func (vm *VM) Run() error {
	entry := vm.methods[vm.prog.Entry]
	if entry == nil {
		return fmt.Errorf("minivm: entry method %s is not loaded", vm.prog.Entry)
	}
	if err := vm.runTask(entry); err != nil {
		return err
	}
	for len(vm.tasks) > 0 {
		ref := vm.tasks[0]
		vm.tasks = vm.tasks[1:]
		target := vm.methods[ref]
		if target == nil {
			return fmt.Errorf("minivm: spawned task %s is not loaded", ref)
		}
		vm.Tasks++
		if err := vm.runTask(target); err != nil {
			return err
		}
	}
	return nil
}

// runTask runs one executor task (or the main task) on a fresh stack.
func (vm *VM) runTask(m *loadedMethod) error {
	vm.obs.tasks.Inc()
	if vm.obs.tracer != nil {
		vm.obs.tracer.Record(obs.EvTaskBegin, uint64(len(vm.stack)), vm.Steps)
	}
	if tp, ok := vm.probes.(TaskProbes); ok && vm.probes != nil {
		tp.BeginTask(m.ref)
	}
	return vm.invoke(m)
}

// invoke executes one activation of m, firing Enter/Exit probes for
// statically loaded methods.
func (vm *VM) invoke(m *loadedMethod) error {
	if len(vm.stack) >= vm.MaxDepth {
		return fmt.Errorf("%w (%d)", ErrMaxDepth, vm.MaxDepth)
	}
	vm.stack = append(vm.stack, m.ref)
	vm.obs.calls.Inc()
	if vm.obs.tracer != nil {
		vm.obs.tracer.Record(obs.EvCall, uint64(len(vm.stack)), vm.Steps)
	}
	var tok uint8
	probed := vm.hasProbes(m)
	fast := probed && vm.fast != nil
	if fast {
		tok = vm.fast.FastEnter(m.methodID)
	} else if probed {
		tok = vm.probes.Enter(m.ref)
	}
	err := vm.exec(m, m.body)
	if fast {
		vm.fast.FastExit(m.methodID, tok)
	} else if probed {
		vm.probes.Exit(m.ref, tok)
	}
	vm.obs.returns.Inc()
	if vm.obs.tracer != nil {
		vm.obs.tracer.Record(obs.EvReturn, uint64(len(vm.stack)), vm.Steps)
	}
	vm.stack = vm.stack[:len(vm.stack)-1]
	return err
}

// exec runs a body slice within method m's activation.
func (vm *VM) exec(m *loadedMethod, body []Instr) error {
	for i := range body {
		in := &body[i]
		vm.Steps++
		switch in.Op {
		case OpCall:
			if in.Depth > 0 && len(vm.stack) >= in.Depth {
				continue // bounded call: recursion base case reached
			}
			target := vm.methods[MethodRef{Class: in.Class, Method: in.Name}]
			if target == nil {
				return fmt.Errorf("minivm: %s: call to unloaded method %s.%s", m.ref, in.Class, in.Name)
			}
			if err := vm.call(m, in.Site, target); err != nil {
				return err
			}
		case OpVCall:
			if in.Depth > 0 && len(vm.stack) >= in.Depth {
				continue // bounded call: recursion base case reached
			}
			target, err := vm.dispatch(in.Class, in.Name)
			if err != nil {
				return fmt.Errorf("minivm: %s: %w", m.ref, err)
			}
			if err := vm.call(m, in.Site, target); err != nil {
				return err
			}
		case OpLoop:
			for k := 0; k < in.N; k++ {
				if err := vm.exec(m, in.Body); err != nil {
					return err
				}
			}
		case OpEmit:
			vm.obs.emits.Inc()
			if vm.obs.tracer != nil {
				vm.obs.tracer.Record(obs.EvEmit, uint64(len(vm.stack)), vm.Steps)
			}
			if vm.OnEmit != nil {
				vm.OnEmit(vm, m.ref, in.Tag)
			}
		case OpLoadClass:
			if !vm.loaded[in.Class] {
				if err := vm.load(in.Class); err != nil {
					return err
				}
				vm.Loads++
			}
		case OpWork:
			vm.work(in.N)
			vm.Steps += uint64(in.N)
		case OpSpawn:
			vm.tasks = append(vm.tasks, MethodRef{Class: in.Class, Method: in.Name})
		case OpThrow:
			if in.Depth > 0 && len(vm.stack) < in.Depth {
				continue // condition not met: no throw
			}
			return &Exception{Tag: in.Tag}
		case OpTry:
			if err := vm.exec(m, in.Body); err != nil {
				if _, ok := AsException(err); !ok {
					return err // genuine runtime error: not catchable
				}
				if herr := vm.exec(m, in.Handler); herr != nil {
					return herr
				}
			}
		}
	}
	return nil
}

// call performs one invocation with its surrounding probes. Probes only
// fire for call sites in statically loaded (analysed, hence instrumented)
// methods; call sites inside dynamically loaded code carry no payload.
func (vm *VM) call(caller *loadedMethod, site int32, target *loadedMethod) error {
	if !vm.hasCallProbes(caller) {
		return vm.invoke(target)
	}
	if vm.fast != nil && int(site) < len(caller.siteIDs) {
		sid := caller.siteIDs[site]
		if sid == fastSiteSkip {
			return vm.invoke(target) // encoding-free site: nothing inserted
		}
		tok := vm.fast.FastBeforeCall(sid, target.methodID)
		err := vm.invoke(target)
		vm.fast.FastAfterCall(sid, target.methodID, tok)
		return err
	}
	s := SiteRef{In: caller.ref, Site: site}
	if vm.instrumentedSites != nil && !vm.instrumentedSites[s] {
		return vm.invoke(target) // encoding-free site: nothing inserted
	}
	tok := vm.probes.BeforeCall(s, target.ref)
	err := vm.invoke(target)
	vm.probes.AfterCall(s, target.ref, tok)
	return err
}

// dispatch picks the dynamic target of a virtual call on Class.Method among
// all loaded declarations at or below Class, uniformly pseudo-randomly.
func (vm *VM) dispatch(class, method string) (*loadedMethod, error) {
	cands := vm.dtables[dispatchKey{Class: class, Method: method}]
	switch len(cands) {
	case 0:
		return nil, fmt.Errorf("vcall %s.%s has no loaded implementation", class, method)
	case 1:
		return cands[0], nil
	}
	return cands[vm.nextRand()%uint64(len(cands))], nil
}

// work burns n units of computation (integer mixing) that the compiler
// cannot remove, simulating application work between calls.
func (vm *VM) work(n int) {
	x := vm.sink ^ 0x2545f4914f6cdd1d
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	vm.sink = x
}

// Sink returns the accumulated work value; benchmarks read it so the work
// loops cannot be optimized away.
func (vm *VM) Sink() uint64 { return vm.sink }

// DispatchTargets returns the currently loaded dispatch candidates for a
// virtual call on Class.Method, in load order. Used by tests.
func (vm *VM) DispatchTargets(class, method string) []MethodRef {
	cands := vm.dtables[dispatchKey{Class: class, Method: method}]
	out := make([]MethodRef, len(cands))
	for i, c := range cands {
		out[i] = c.ref
	}
	return out
}
