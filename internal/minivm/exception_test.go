package minivm

import (
	"testing"
)

func exProgram(body string) *Program {
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: nil},
				{Name: "risky", Body: []Instr{Work(1), Throw("boom"), Emit("unreached")}},
				{Name: "safe", Body: []Instr{Emit("safe")}},
			}},
		},
		Entry: MethodRef{"A", "main"},
	}
	return p
}

func TestThrowUnwindsToCatch(t *testing.T) {
	p := exProgram("")
	p.Classes[0].Methods[0].Body = []Instr{
		Try(
			[]Instr{Call("A", "risky"), Emit("after-risky")},
			[]Instr{Emit("handled")},
		),
		Emit("end"),
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var tags []string
	vm.OnEmit = func(_ *VM, _ MethodRef, tag string) { tags = append(tags, tag) }
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	want := "handled,end"
	got := ""
	for i, tag := range tags {
		if i > 0 {
			got += ","
		}
		got += tag
	}
	if got != want {
		t.Fatalf("emits = %s, want %s", got, want)
	}
	if vm.Depth() != 0 {
		t.Fatalf("stack depth %d after handled exception", vm.Depth())
	}
}

func TestUncaughtThrowSurfaces(t *testing.T) {
	p := exProgram("")
	p.Classes[0].Methods[0].Body = []Instr{Call("A", "risky")}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = vm.Run()
	ex, ok := AsException(err)
	if !ok || ex.Tag != "boom" {
		t.Fatalf("Run = %v, want uncaught exception boom", err)
	}
	if vm.Depth() != 0 {
		t.Fatal("frames leaked during unwinding")
	}
}

func TestConditionalThrow(t *testing.T) {
	// rthrow fires only at depth >= threshold.
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: []Instr{
					Try([]Instr{Call("A", "deep")}, []Instr{Emit("caught")}),
					Instr{Op: OpThrow, Tag: "shallow", Depth: 99}, // never fires
					Emit("end"),
				}},
				{Name: "deep", Body: []Instr{CallBounded("A", "deep", 5), ThrowIfDeeper("deep!", 5)}},
			}},
		},
		Entry: MethodRef{"A", "main"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var tags []string
	vm.OnEmit = func(_ *VM, _ MethodRef, tag string) { tags = append(tags, tag) }
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 || tags[0] != "caught" || tags[1] != "end" {
		t.Fatalf("tags = %v", tags)
	}
}

// TestProbesBalancedAcrossThrow is the key property: Exit and AfterCall
// fire during unwinding, so instrumentation stays balanced.
func TestProbesBalancedAcrossThrow(t *testing.T) {
	p := exProgram("")
	p.Classes[0].Methods[0].Body = []Instr{
		Try(
			[]Instr{Call("A", "safe"), Call("A", "risky")},
			[]Instr{Call("A", "safe")},
		),
		Emit("end"),
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	probes := &countingProbes{}
	vm.SetProbes(probes)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if probes.before != probes.after {
		t.Fatalf("BeforeCall %d != AfterCall %d across exception", probes.before, probes.after)
	}
	if probes.enter != probes.exit {
		t.Fatalf("Enter %d != Exit %d across exception", probes.enter, probes.exit)
	}
}

func TestRuntimeErrorNotCatchable(t *testing.T) {
	// A genuine runtime error (call to unloaded method) must not be
	// swallowed by a catch handler.
	p := &Program{
		Classes: []*Class{
			{Name: "A", Methods: []*Method{
				{Name: "main", Body: []Instr{
					Try([]Instr{Call("Ghost", "f")}, []Instr{Emit("swallowed")}),
				}},
			}},
		},
		Entry: MethodRef{"A", "main"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = vm.Run()
	if err == nil {
		t.Fatal("runtime error swallowed by catch")
	}
	if _, ok := AsException(err); ok {
		t.Fatal("runtime error misclassified as exception")
	}
}

func TestThrowValidation(t *testing.T) {
	p := &Program{
		Classes: []*Class{{Name: "A", Methods: []*Method{
			{Name: "m", Body: []Instr{{Op: OpThrow}}},
		}}},
		Entry: MethodRef{"A", "m"},
	}
	if err := p.Normalize(); err == nil {
		t.Fatal("empty throw tag accepted")
	}
}

func TestTrySiteNumbering(t *testing.T) {
	p := &Program{
		Classes: []*Class{{Name: "A", Methods: []*Method{
			{Name: "m", Body: []Instr{
				Try([]Instr{Call("A", "m")}, []Instr{Call("A", "m")}),
				Call("A", "m"),
			}},
		}}},
		Entry: MethodRef{"A", "m"},
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	body := p.Classes[0].Methods[0].Body
	sites := []int32{body[0].Body[0].Site, body[0].Handler[0].Site, body[1].Site}
	seen := map[int32]bool{}
	for _, s := range sites {
		if seen[s] {
			t.Fatalf("duplicate site label in try/catch: %v", sites)
		}
		seen[s] = true
	}
}
