package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseFixture loads a testdata source file under the given package
// import path.
func parseFixture(t *testing.T, name, pkg string) *File {
	t.Helper()
	path := filepath.Join("testdata", name)
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseFile(path, pkg, src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// wantLines reads the fixture's own "// want <analyzer>" markers — the
// expected findings are declared next to the code that earns them.
func wantLines(t *testing.T, name, analyzer string) map[int]bool {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]bool)
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "// want "+analyzer) {
			want[i+1] = true
		}
	}
	if len(want) == 0 {
		t.Fatalf("%s carries no want markers", name)
	}
	return want
}

func checkFixture(t *testing.T, name, pkg string, a *Analyzer) {
	t.Helper()
	f := parseFixture(t, name, pkg)
	want := wantLines(t, name, a.Name)
	got := make(map[int]bool)
	for _, fd := range Check(f, []*Analyzer{a}) {
		if fd.Analyzer != a.Name {
			t.Errorf("unexpected analyzer %q in finding %s", fd.Analyzer, fd)
		}
		got[fd.Pos.Line] = true
	}
	for line := range want {
		if !got[line] {
			t.Errorf("%s:%d: expected a %s finding, got none", name, line, a.Name)
		}
	}
	for line := range got {
		if !want[line] {
			t.Errorf("%s:%d: unexpected %s finding", name, line, a.Name)
		}
	}
}

// TestObsSinkFixture proves the analyzer fails on the seeded violations —
// the "demonstrably red" half of the vettool's contract — and stays quiet
// on the resolved-sink, gauge, and suppressed patterns.
func TestObsSinkFixture(t *testing.T) {
	checkFixture(t, "obssink_src.go", "example.com/app/hotpath", ObsSink)
}

func TestProfileLockFixture(t *testing.T) {
	checkFixture(t, "profilelock_src.go", "deltapath/internal/profile", ProfileLock)
}

func TestMagicBytesFixture(t *testing.T) {
	checkFixture(t, "magicbytes_src.go", "example.com/app/sniffing", MagicBytes)
}

func TestEpochPublishFixture(t *testing.T) {
	checkFixture(t, "epochpublish_src.go", "deltapath", EpochPublish)
}

// TestExemptScopes: the same violating sources are clean inside the
// packages that own each invariant, and inside test files.
func TestExemptScopes(t *testing.T) {
	cases := []struct {
		fixture string
		pkg     string
		a       *Analyzer
	}{
		{"obssink_src.go", "deltapath/internal/obs", ObsSink},
		{"profilelock_src.go", "deltapath/internal/cpt", ProfileLock}, // rule is profile-only
		{"magicbytes_src.go", "deltapath/internal/analysisio", MagicBytes},
		{"magicbytes_src.go", "deltapath/internal/profile", MagicBytes},
		{"epochpublish_src.go", "deltapath/internal/core", EpochPublish}, // rule is root-package-only
	}
	for _, c := range cases {
		f := parseFixture(t, c.fixture, c.pkg)
		if got := Check(f, []*Analyzer{c.a}); len(got) != 0 {
			t.Errorf("%s in %s: expected exemption, got %v", c.fixture, c.pkg, got)
		}
	}
	// Test files are exempt regardless of package.
	src, err := os.ReadFile(filepath.Join("testdata", "magicbytes_src.go"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseFile("sniff_test.go", "example.com/app/sniffing", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := Check(f, All()); len(got) != 0 {
		t.Errorf("test file not exempt: %v", got)
	}
}

// TestRepoClean runs every analyzer over the repository's own sources —
// the unit-test twin of CI's `go vet -vettool=dplint-go ./...` gate. Any
// finding here means a hot path regressed into inline sink resolution, a
// shard lock lost its contention counting, or a format magic leaked out
// of its owning package.
func TestRepoClean(t *testing.T) {
	root := filepath.Join("..", "..")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || name == "results" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		pkg := "deltapath"
		if dir := filepath.ToSlash(filepath.Dir(rel)); dir != "." {
			pkg += "/" + dir
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := ParseFile(rel, pkg, src)
		if err != nil {
			t.Errorf("%s: parse: %v", rel, err)
			return nil
		}
		for _, fd := range Check(f, All()) {
			t.Errorf("repo not lint-clean: %s", fd)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
