package lint

import (
	"fmt"
	"go/ast"
)

// ObsSink flags metric updates that resolve their sink inline:
//
//	reg.Counter(obs.MetricX).Inc()           // flagged
//	reg.Histogram(obs.MetricY, b).Observe(v) // flagged
//
// Resolution walks the registry under a lock; the once-resolved pattern
// (w.hits = reg.Counter(...) at setup, w.hits.Inc() on the hot path) costs
// a nil check and an atomic add instead. Gauge chains are exempt: gauges
// are set at analysis/setup time, never on a hot path. The obs package
// itself and test files are exempt.
var ObsSink = &Analyzer{
	Name: "obssink",
	Doc: "metric sinks must be resolved once at setup, not per event " +
		"(reg.Counter(x).Inc() resolves under the registry lock on every call)",
	Run: runObsSink,
}

// obsResolvers are the registry methods that look a sink up by name;
// obsUpdates are the hot-path sink methods.
var (
	obsResolvers = map[string]bool{"Counter": true, "Histogram": true}
	obsUpdates   = map[string]bool{"Inc": true, "Add": true, "Observe": true}
)

func runObsSink(f *File) []Finding {
	if f.Test() || pkgIs(f, "internal/obs") {
		return nil
	}
	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		// The violating shape is update(resolve(...)(...)): a call whose
		// Fun selects an update method off another call that selects a
		// resolver method.
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !obsUpdates[sel.Sel.Name] {
			return true
		}
		inner, ok := sel.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		innerSel, ok := inner.Fun.(*ast.SelectorExpr)
		if !ok || !obsResolvers[innerSel.Sel.Name] {
			return true
		}
		out = append(out, Finding{
			Analyzer: "obssink",
			Pos:      f.Fset.Position(call.Pos()),
			Message: fmt.Sprintf(
				"%s(...).%s(...) resolves the metric sink on the event path: resolve it once at setup and keep the sink (see internal/obs nil-safe sinks)",
				innerSel.Sel.Name, sel.Sel.Name),
		})
		return true
	})
	return out
}
