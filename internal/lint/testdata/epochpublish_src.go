// Fixture for the epochpublish analyzer: epoch-pointer stores outside the
// publish helper are flagged; publish itself, loads, unrelated atomic
// pointers, and suppressed lines stay quiet.
package deltapath

import "sync/atomic"

type epochState struct{ id uint64 }

type analysisLike struct {
	cur    atomic.Pointer[epochState]
	epochs []*epochState
}

func (a *analysisLike) publish(ep *epochState) {
	a.epochs = append(a.epochs, ep)
	a.cur.Store(ep) // allowed: the epochMu-serialized publish helper
}

func (a *analysisLike) hotSwap(ep *epochState) {
	a.cur.Store(ep) // want epochpublish
}

func (a *analysisLike) rollback(ep *epochState) *epochState {
	return a.cur.Swap(ep) // want epochpublish
}

type wrapper struct{ inner *analysisLike }

func (w *wrapper) sneak(ep *epochState) {
	w.inner.cur.Store(ep) // want epochpublish
}

func (a *analysisLike) read() *epochState {
	return a.cur.Load() // allowed: lock-free reads are the point
}

func (a *analysisLike) unrelated(p *atomic.Pointer[epochState], ep *epochState) {
	p.Store(ep) // allowed: not the epoch pointer
}

func (a *analysisLike) suppressed(ep *epochState) {
	//dplint:coldpath
	a.cur.Store(ep)
}
