// Fixture for the profilelock analyzer: shard-mutex locking patterns in a
// package posing as deltapath/internal/profile.
package profile

func violations(s *store) {
	sh := &s.shards[0]
	sh.mu.Lock() // want profilelock
	sh.mu.Unlock()

	if !s.global.mu.TryLock() {
		s.contention.Inc()
		sh.mu.Lock() // want profilelock: guard receiver is s.global.mu, not sh.mu
	}
}

func allowed(s *store) {
	sh := &s.shards[0]
	if !sh.mu.TryLock() {
		s.contention.Inc()
		sh.mu.Lock()
	}
	sh.mu.Unlock()

	// A bare local mutex is not a shard lock.
	var mu locker
	mu.Lock()
	mu.Unlock()

	// Cold path, suppressed:
	//dplint:coldpath
	sh.mu.Lock()
	sh.mu.Unlock()
}
