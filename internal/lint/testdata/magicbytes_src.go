// Fixture for the magicbytes analyzer: wire-format magics spelled outside
// the owning packages.
package sniffing

const staleMagic = "DPA1\n" // want magicbytes

func sniff(head []byte) bool {
	if string(head) == "DPA2\n" { // want magicbytes
		return true
	}
	return string(head[:5]) == "DPP1\n" // want magicbytes
}

func fine(head []byte) bool {
	// Not a magic: prefix alone, or different version strings.
	return string(head) == "DPA" || string(head) == "DPX9\n"
}
