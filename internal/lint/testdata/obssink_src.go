// Fixture for the obssink analyzer: hot-path metric chains that must be
// flagged, next to the allowed patterns. Lives under testdata so the go
// tool never builds it; the lint tests parse it directly.
package hotpath

func violations(reg registry, v uint64) {
	reg.Counter(metricCalls).Inc()                 // want obssink
	reg.Counter(metricBytes).Add(v)                // want obssink
	reg.Histogram(metricDepth, buckets).Observe(v) // want obssink
}

func allowed(reg registry, v uint64) {
	// Once-resolved sinks: resolution happens here, updates elsewhere.
	calls := reg.Counter(metricCalls)
	calls.Inc()
	calls.Add(v)

	// Gauges are setup-time, not hot-path: exempt.
	reg.Gauge(metricNodes).Set(v)

	// Deliberate inline resolution on a cold path, suppressed:
	//dplint:coldpath
	reg.Counter(metricCold).Inc()
	reg.Counter(metricCold2).Add(1) //dplint:coldpath
}
