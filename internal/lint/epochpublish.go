package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// EpochPublish guards the epoch-publication invariant of the root package:
// the current-epoch pointer (`cur atomic.Pointer[epochState]`) may only be
// stored through the epochMu-serialized publish helper. A Store or Swap
// anywhere else can publish an epoch without registering it in the epochs
// list (breaking digest routing of old profiles) and races with a
// concurrent Extend. Loads are unrestricted — that is the whole point of
// the atomic pointer. Test files are exempt.
var EpochPublish = &Analyzer{
	Name: "epochpublish",
	Doc: "epoch state may only be published via the epochMu-serialized " +
		"publish helper (a stray cur.Store/Swap races Extend and skips " +
		"epoch registration)",
	Run: runEpochPublish,
}

// epochPublishMutators are the atomic.Pointer methods that replace the
// published epoch.
var epochPublishMutators = map[string]bool{"Store": true, "Swap": true}

// epochPublisher is the one function allowed to mutate the pointer.
const epochPublisher = "publish"

func runEpochPublish(f *File) []Finding {
	if f.Test() || !pkgIs(f, "deltapath") {
		return nil
	}
	var out []Finding
	for _, decl := range f.AST.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Name.Name == epochPublisher {
			continue
		}
		ast.Inspect(fn, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !epochPublishMutators[sel.Sel.Name] {
				return true
			}
			// The epoch pointer is the `cur` field of the Analysis; match
			// any receiver whose rendered form ends in ".cur" (a.cur,
			// an.cur, a.inner.cur, ...).
			recv := exprString(sel.X)
			if recv != "cur" && !strings.HasSuffix(recv, ".cur") {
				return true
			}
			out = append(out, Finding{
				Analyzer: "epochpublish",
				Pos:      f.Fset.Position(call.Pos()),
				Message: fmt.Sprintf(
					"%s.%s(...) publishes epoch state outside %s: only the epochMu-serialized %s helper may store the current-epoch pointer",
					recv, sel.Sel.Name, epochPublisher, epochPublisher),
			})
			return true
		})
	}
	return out
}
