package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// MagicBytes flags string literals spelling a wire-format magic — "DPA1\n",
// "DPA2\n" (analysis files), "DPP1\n" (profile files) — outside the
// packages that own those formats (internal/analysisio, internal/profile)
// and outside tests. A re-spelled magic is a hidden format dependency: the
// owning reader revs its version string and the stray copy keeps matching
// the old bytes. Consumers should call the owning package's reader instead
// of sniffing headers themselves.
var MagicBytes = &Analyzer{
	Name: "magicbytes",
	Doc: "wire-format magic strings are spelled once, in the package that " +
		"owns the format; elsewhere, call that package's reader",
	Run: runMagicBytes,
}

var magicStrings = []string{"DPA1\n", "DPA2\n", "DPA3\n", "DPP1\n", "DPP2\n"}

func runMagicBytes(f *File) []Finding {
	// internal/lint is exempt too: the rule definition has to spell the
	// magics it matches.
	if f.Test() || pkgIs(f, "internal/analysisio") || pkgIs(f, "internal/profile") ||
		pkgIs(f, "internal/lint") {
		return nil
	}
	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		val, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		for _, magic := range magicStrings {
			if strings.Contains(val, magic) {
				out = append(out, Finding{
					Analyzer: "magicbytes",
					Pos:      f.Fset.Position(lit.Pos()),
					Message: fmt.Sprintf(
						"literal spells the %q wire magic: use the owning package's reader instead of matching format bytes here",
						strings.TrimSuffix(magic, "\n")),
				})
				break
			}
		}
		return true
	})
	return out
}
