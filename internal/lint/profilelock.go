package lint

import (
	"fmt"
	"go/ast"
)

// ProfileLock enforces the sharded store's locking discipline in
// internal/profile: a shard mutex field is taken with
//
//	if !sh.mu.TryLock() {
//	    s.contention.Inc() // or any bookkeeping
//	    sh.mu.Lock()
//	}
//
// so the contended path is counted before blocking. A raw `x.mu.Lock()`
// on a field silently stops counting contention — the observability the
// profile experiment's scaling numbers depend on. The rule fires only on
// field-qualified mutexes (`recv.mu.Lock()`); a bare local `mu.Lock()` is
// not a shard lock. Deliberately cold paths (Snapshot draining shards)
// opt out with //dplint:coldpath.
var ProfileLock = &Analyzer{
	Name: "profilelock",
	Doc: "internal/profile shard mutexes use TryLock-then-Lock so contention " +
		"is counted; raw field Lock calls lose the contention signal",
	Run: runProfileLock,
}

func runProfileLock(f *File) []Finding {
	if f.Test() || !pkgIs(f, "internal/profile") {
		return nil
	}

	// First pass: receivers whose Lock is guarded — an if statement on
	// !recv.TryLock() blesses every recv.Lock() inside its body.
	guarded := make(map[ast.Node]bool)
	ast.Inspect(f.AST, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		recv, ok := tryLockGuard(ifStmt.Cond)
		if !ok {
			return true
		}
		ast.Inspect(ifStmt.Body, func(inner ast.Node) bool {
			if call, ok := mutexFieldCall(inner, "Lock"); ok && exprString(call.recv) == recv {
				guarded[call.node] = true
			}
			return true
		})
		return true
	})

	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := mutexFieldCall(n, "Lock")
		if !ok || guarded[call.node] {
			return true
		}
		out = append(out, Finding{
			Analyzer: "profilelock",
			Pos:      f.Fset.Position(call.node.Pos()),
			Message: fmt.Sprintf(
				"raw %s.Lock() skips the TryLock contention counter: guard with `if !%s.TryLock() { count; %s.Lock() }` or mark //dplint:coldpath",
				exprString(call.recv), exprString(call.recv), exprString(call.recv)),
		})
		return true
	})
	return out
}

// tryLockGuard matches the condition `!recv.TryLock()` where recv is a
// mutex field chain, returning the rendered receiver.
func tryLockGuard(cond ast.Expr) (string, bool) {
	not, ok := cond.(*ast.UnaryExpr)
	if !ok || not.Op.String() != "!" {
		return "", false
	}
	if call, ok := mutexFieldCallExpr(not.X, "TryLock"); ok {
		return exprString(call.recv), true
	}
	return "", false
}

// fieldCall is a matched `<recv>.<method>()` where recv ends in a mutex
// field selection (x.mu, sh.mu, s.shards[i].mu, ...).
type fieldCall struct {
	node *ast.CallExpr
	recv ast.Expr // the mutex expression, e.g. sh.mu
}

func mutexFieldCall(n ast.Node, method string) (fieldCall, bool) {
	e, ok := n.(ast.Expr)
	if !ok {
		return fieldCall{}, false
	}
	return mutexFieldCallExpr(e, method)
}

func mutexFieldCallExpr(e ast.Expr, method string) (fieldCall, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return fieldCall{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method || len(call.Args) != 0 {
		return fieldCall{}, false
	}
	// The receiver must be a field selection of a mutex named mu
	// (recv.mu), not a bare identifier: only field-held mutexes are shard
	// locks, and the repo's convention names them mu.
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "mu" {
		return fieldCall{}, false
	}
	return fieldCall{node: call, recv: sel.X}, true
}
