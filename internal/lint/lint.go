// Package lint implements the project's custom invariant analyzers — the
// rules that keep the hot paths and the byte formats honest and that
// generic linters cannot know about:
//
//   - obssink: observability probe sites must use the once-resolved
//     nil-safe sink pattern, never resolve a Counter/Histogram on the hot
//     path (see internal/obs: resolution takes a registry lock, the
//     resolved sink is a nil-check and an atomic add).
//   - profilelock: in internal/profile, shard mutexes follow the
//     TryLock-then-Lock contention-counting discipline; a raw Lock on a
//     shard field silently stops counting contention.
//   - magicbytes: the .dpa/.dpp format magics are spelled once, in the
//     packages that own the formats; a re-spelled literal elsewhere is a
//     format dependency the owning package cannot see when it revs the
//     version.
//   - epochpublish: the root package's current-epoch pointer is stored only
//     through the epochMu-serialized publish helper; a stray Store/Swap
//     races Extend and skips epoch registration.
//
// The framework is deliberately syntactic and stdlib-only (go/ast,
// go/parser, go/token): the build environment pins zero dependencies, so
// there is no golang.org/x/tools and no go/analysis. The analyzers run
// both as unit tests here and as a `go vet -vettool` plugin via
// cmd/dplint-go, which speaks the unitchecker protocol by hand.
//
// Suppression: a finding is dropped when the comment directive
// `//dplint:coldpath` appears on the finding's line or the line above it —
// the escape hatch for deliberately cold code (e.g. profile.Store.Snapshot
// locking shards without the contention counter).
package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at one position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return f.Pos.String() + ": " + f.Analyzer + ": " + f.Message
}

// File is one parsed source file plus the package context the analyzers
// scope their rules by.
type File struct {
	// Path is the file path findings are reported under.
	Path string
	// Pkg is the import path of the enclosing package (e.g.
	// "deltapath/internal/profile"); rules use it to exempt the packages
	// that own an invariant.
	Pkg  string
	Fset *token.FileSet
	AST  *ast.File
}

// Test reports whether this is a test file — most rules exempt tests,
// which may legitimately spell corrupt magics or exercise locks raw.
func (f *File) Test() bool { return strings.HasSuffix(f.Path, "_test.go") }

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(f *File) []Finding
}

// All returns every analyzer cmd/dplint-go runs.
func All() []*Analyzer {
	return []*Analyzer{ObsSink, ProfileLock, MagicBytes, EpochPublish}
}

// ParseFile parses one source file (with comments, for the suppression
// directive) into the form analyzers consume.
func ParseFile(path, pkg string, src []byte) (*File, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return &File{Path: path, Pkg: pkg, Fset: fset, AST: f}, nil
}

// Check runs the analyzers over the file, applies //dplint:coldpath
// suppression, and returns the surviving findings in position order.
func Check(f *File, analyzers []*Analyzer) []Finding {
	var out []Finding
	suppressed := coldpathLines(f)
	for _, a := range analyzers {
		for _, fd := range a.Run(f) {
			if suppressed[fd.Pos.Line] || suppressed[fd.Pos.Line-1] {
				continue
			}
			out = append(out, fd)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// coldpathLines collects the lines carrying a //dplint:coldpath directive.
func coldpathLines(f *File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//dplint:coldpath") {
				lines[f.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// pkgIs reports whether the file's package import path is pkg or ends in
// "/"+pkg — so rules written against this module's layout also fire on
// fixture packages named after it.
func pkgIs(f *File, pkg string) bool {
	return f.Pkg == pkg || strings.HasSuffix(f.Pkg, "/"+pkg)
}

// exprString renders a (simple) expression for receiver-identity
// comparison: identifiers, selectors, indexes, calls, and unary/star
// chains — everything a mutex receiver plausibly is.
func exprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		writeExpr(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, e.X)
		b.WriteByte('[')
		writeExpr(b, e.Index)
		b.WriteByte(']')
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, e.X)
	case *ast.UnaryExpr:
		b.WriteString(e.Op.String())
		writeExpr(b, e.X)
	case *ast.ParenExpr:
		b.WriteByte('(')
		writeExpr(b, e.X)
		b.WriteByte(')')
	case *ast.BasicLit:
		b.WriteString(e.Value)
	case *ast.CallExpr:
		writeExpr(b, e.Fun)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a)
		}
		b.WriteByte(')')
	default:
		// Anything more exotic renders as a non-matching placeholder, so
		// receiver comparison fails closed (the finding stands).
		b.WriteString("<?expr>")
	}
}
