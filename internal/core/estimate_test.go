package core

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"deltapath/internal/callgraph"
)

// TestEstimateMatchesEncodeWhenSmall: on graphs that fit in uint64, the
// big-integer estimate equals Encode's MaxID exactly.
func TestEstimateMatchesEncodeWhenSmall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(30), true)
		res, err := Encode(g, Options{})
		if err != nil {
			return false
		}
		est, bits, err := EstimateSpace(g)
		if err != nil {
			return false
		}
		if est.Cmp(new(big.Int).SetUint64(res.MaxID)) != 0 {
			t.Logf("seed %d: estimate %s != MaxID %d", seed, est, res.MaxID)
			return false
		}
		if bits != est.BitLen() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateExceeds64Bit builds a deep doubling chain whose context count
// exceeds 2^64, the situation that forces anchors in Table 1.
func TestEstimateExceeds64Bit(t *testing.T) {
	g := callgraph.New()
	prev := []callgraph.NodeID{g.AddNode("main", false)}
	g.SetEntry(prev[0])
	var label int32
	for layer := 0; layer < 70; layer++ {
		var cur []callgraph.NodeID
		for i := 0; i < 2; i++ {
			n := g.AddNode(fmt.Sprintf("L%dN%d", layer, i), false)
			cur = append(cur, n)
			for _, p := range prev {
				g.AddEdge(p, label, n)
				label++
			}
		}
		prev = cur
	}
	est, bits, err := EstimateSpace(g)
	if err != nil {
		t.Fatal(err)
	}
	if bits <= 64 {
		t.Fatalf("estimate %s fits in %d bits; wanted >64", est, bits)
	}
	// Exact: 2^69 contexts at the deepest layer (index 69), largest
	// ID 2^69 - 1.
	want := new(big.Int).Lsh(big.NewInt(1), 69)
	want.Sub(want, big.NewInt(1))
	if est.Cmp(want) != 0 {
		t.Fatalf("estimate = %s, want %s", est, want)
	}
	// Algorithm 2 must now introduce anchors at 63-bit width and succeed.
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OverflowAnchors) == 0 {
		t.Fatal("no anchors despite >64-bit space requirement")
	}
	t.Logf("anchors added: %d, residual MaxID: %d", len(res.OverflowAnchors), res.MaxID)
}

// TestEstimateWithRecursion: recursive targets root their own pieces, so the
// estimate stays finite on cyclic graphs.
func TestEstimateWithRecursion(t *testing.T) {
	g := callgraph.New()
	mainN := g.AddNode("main", false)
	f := g.AddNode("f", false)
	h := g.AddNode("h", false)
	g.SetEntry(mainN)
	g.AddEdge(mainN, 0, f)
	g.AddEdge(f, 0, h)
	g.AddEdge(h, 0, f) // cycle f <-> h
	est, _, err := EstimateSpace(g)
	if err != nil {
		t.Fatal(err)
	}
	if !est.IsUint64() || est.Uint64() > 4 {
		t.Fatalf("estimate on tiny cyclic graph = %s", est)
	}
}

func TestFormatSpace(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"0", "0"},
		{"12", "12"},
		{"8191", "8191"},
		{"78000000", "7.8e+07"},
		{"4400000000000000000000", "4.4e+21"},
	}
	for _, c := range cases {
		v, ok := new(big.Int).SetString(c.in, 10)
		if !ok {
			t.Fatal("bad test input")
		}
		got := FormatSpace(v)
		if got != c.want && !strings.EqualFold(got, c.want) {
			t.Errorf("FormatSpace(%s) = %q, want %q", c.in, got, c.want)
		}
	}
}
