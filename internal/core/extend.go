// Incremental re-encoding (the ROADMAP's "absorb new code" step): Extend
// takes the Result of a previous Encode and a grown call graph — the old
// graph plus late-loaded classes' nodes and edges — and produces the Result
// a full re-run of Algorithm 2 over the grown graph would produce, while
// recomputing addition values and territories only for the *dirty
// territory* of the delta.
//
// The dirty territory is the least fixpoint of three propagation rules,
// each justified by how Algorithm 1's quantities flow:
//
//  1. A node with a changed CAV cell dirties the callees of its non-recursive
//     out-edges — unless the node was already an anchor in the previous
//     encoding, because an anchor's ICC is the constant {self: 1} and so its
//     downstream writes (ICC[caller][r] + AV) cannot change.
//  2. A dirty node dirties the sites of its non-recursive in-edges: their
//     addition value is a max over their targets' CAVs.
//  3. A dirty site dirties all of its non-recursive dispatch targets: the
//     site writes ICC[caller][r] + AV into every one of them.
//
// Rule 3 gives the invariant the pass depends on: a site is either entirely
// clean (no dirty target, so its AV and every value it writes are unchanged
// from the previous pass) or entirely dirty (recomputed here, reading only
// CAV cells that are themselves rebuilt or provably unchanged). Territories
// are likewise recomputed only for anchors whose bounded DFS could have
// changed: new anchors, plus every anchor whose territory contains a changed
// edge's caller or a new anchor (anything else sees the identical traversal).
//
// Reused clean values and recomputed dirty values always compose into a
// sound encoding: clean cells are only ever written by clean sites and dirty
// cells only by dirty sites, and a dirty site's addition value is maximized
// over its targets' cells with every clean contribution already at its final
// value — so dirty ranges stack strictly above clean ones and disjointness
// (the injectivity core internal/verify certifies) holds piece by piece.
//
// Bit-exactness with a from-scratch pass is a stronger property and holds
// conditionally: Algorithm 1's addition values depend on the order sites are
// processed, which follows the deterministic topological order of the whole
// graph. When the grown graph's topological order restricted to the old
// nodes equals the old order (always true when no added edge points into an
// old node, and commonly true otherwise), clean sites cannot overflow —
// their written values already fit under the same MaxID — so the first
// overflow Extend meets is the first a full pass would meet, the
// anchor-promotion loop converges identically, and the Result equals
// Encode(grown graph, ForceAnchors: previous piece starts) cell for cell.
// When the delta does reorder old nodes, Extend keeps the previous (equally
// valid) choice for clean territory instead of chasing the re-shuffled one;
// the differential tests then certify soundness through internal/verify and
// frame-exact decoding rather than spec equality.
package core

import (
	"fmt"
	"math"
	"sort"

	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
)

// ExtendStats reports how much of the encoding an Extend actually touched —
// the incremental win over a from-scratch Encode.
type ExtendStats struct {
	NewNodes          int `json:"new_nodes"`
	NewEdges          int `json:"new_edges"`
	NewlyRecursive    int `json:"newly_recursive_edges"`
	DirtyNodes        int `json:"dirty_nodes"`
	TotalNodes        int `json:"total_nodes"`
	DirtySites        int `json:"dirty_sites"`
	TotalSites        int `json:"total_sites"`
	RecomputedAnchors int `json:"recomputed_anchors"`
	TotalAnchors      int `json:"total_anchors"`
	Restarts          int `json:"restarts"`
	// DirtyTerritories counts the piece-start territories whose verification
	// obligations this extension invalidated; DirtyTerritoryList names them
	// (piece-start node IDs, sorted) for verify.CheckDelta. The list is a
	// superset of the re-walked territories: a territory whose membership is
	// unchanged still re-proves when a dirty node or dirty site changed the
	// addition values its interval check reads.
	DirtyTerritories   int                `json:"dirty_territories"`
	DirtyTerritoryList []callgraph.NodeID `json:"-"`
}

// Extend incrementally re-encodes g, which must be the graph of prev plus
// appended nodes and edges (never removals — clone the old graph and grow
// the clone). opts must carry the same MaxID prev was encoded under; the
// profile-guided and batch-anchor modes are not supported incrementally.
// prev is never mutated: old-epoch decoders may keep reading it while
// Extend runs.
func Extend(prev *Result, g *callgraph.Graph, opts Options) (*Result, *ExtendStats, error) {
	if prev == nil || prev.inc == nil {
		return nil, nil, fmt.Errorf("core: Extend needs a Result produced by Encode or Extend in this process (loaded analyses carry no incremental state)")
	}
	if len(opts.EdgeProfile) > 0 || opts.BatchAnchors || len(opts.ForceAnchors) > 0 {
		return nil, nil, fmt.Errorf("core: Extend supports only the MaxID option (profile ordering, batch anchors and forced anchors are whole-pass modes)")
	}
	if prev.Spec.PerEdge {
		return nil, nil, fmt.Errorf("core: Extend does not support per-edge encodings")
	}
	for _, k := range prev.Spec.Push {
		if k != encoding.PieceRecursion {
			return nil, nil, fmt.Errorf("core: Extend does not support pruned encodings (push kind %v)", k)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	maxID := opts.MaxID
	if maxID == 0 {
		maxID = math.MaxInt64
	}
	oldG := prev.Spec.Graph
	entry, _ := g.Entry()
	if oldEntry, _ := oldG.Entry(); oldEntry != entry {
		return nil, nil, fmt.Errorf("core: Extend changed the entry node (%s -> %s)", oldG.Name(oldEntry), g.Name(entry))
	}
	if g.NumNodes() < oldG.NumNodes() {
		return nil, nil, fmt.Errorf("core: Extend removed nodes (%d -> %d)", oldG.NumNodes(), g.NumNodes())
	}
	for _, n := range oldG.Nodes() {
		if g.Node(n).Name != oldG.Node(n).Name {
			return nil, nil, fmt.Errorf("core: Extend renumbered node %d (%s -> %s); the old graph must be a prefix of the new",
				n, oldG.Node(n).Name, g.Node(n).Name)
		}
		for _, e := range oldG.Out(n) {
			if !g.HasEdge(e) {
				return nil, nil, fmt.Errorf("core: Extend removed edge %v", e)
			}
		}
	}

	rec2 := g.RecursiveEdges()
	topo, err := g.TopoOrder(rec2)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}

	// The graph delta. Adding edges can only merge SCCs, so the old
	// recursive set is a subset of the new one: edges are newly recursive,
	// never newly acyclic.
	var newEdges, newlyRec []callgraph.Edge
	for _, n := range g.Nodes() {
		for _, e := range g.Out(n) {
			if !oldG.HasEdge(e) {
				newEdges = append(newEdges, e)
			} else if rec2[e] && !prev.inc.rec[e] {
				newlyRec = append(newlyRec, e)
			}
		}
	}

	// Anchor set: everything the previous encoding chose (entry, recursive
	// targets, overflow anchors, context roots) plus the delta's recursive
	// targets, context roots and orphan-coverage anchors. Keeping every old
	// anchor is what lets clean territory be reused verbatim.
	an := make(map[callgraph.NodeID]bool, len(prev.PieceStarts)+4)
	for n := range prev.PieceStarts {
		an[n] = true
	}
	recTargets := make(map[callgraph.NodeID]bool)
	for e := range rec2 {
		an[e.Callee] = true
		recTargets[e.Callee] = true
	}
	for _, n := range g.ContextRoots() {
		an[n] = true
	}
	addOrphanAnchors(g, rec2, an)
	// The resetting subset carries over the previous choice for the entry
	// (it may have been overflow-promoted) and adds it when the delta made
	// the entry a recursive target.
	resets := resetAnchors(an, entry, recTargets[entry] || prev.Spec.Anchors[entry])

	res := &Result{}
	stats := &ExtendStats{
		NewNodes:       g.NumNodes() - oldG.NumNodes(),
		NewEdges:       len(newEdges),
		NewlyRecursive: len(newlyRec),
		TotalNodes:     g.NumNodes(),
		TotalSites:     g.NumSites(),
	}
	for {
		p, overflowAt, ok := runExtendOnce(prev, g, topo, rec2, an, resets, newEdges, newlyRec, maxID, stats)
		if ok {
			res.finish(g, rec2, an, resets, p)
			stats.TotalAnchors = len(an)
			return res, stats, nil
		}
		if resets[overflowAt] {
			return nil, nil, fmt.Errorf("%w: overflow at anchor %s with limit %d",
				errWidthTooSmall, g.Name(overflowAt), maxID)
		}
		an[overflowAt] = true
		resets[overflowAt] = true
		res.OverflowAnchors = append(res.OverflowAnchors, overflowAt)
		res.Restarts++
		stats.Restarts++
	}
}

// runExtendOnce is one attempt of the incremental pass over the current
// anchor set. On overflow it returns the caller to promote and ok=false,
// exactly like runOnce — and, because clean sites cannot overflow, the
// promoted caller is the one a full pass would promote.
func runExtendOnce(prev *Result, g *callgraph.Graph, topo []callgraph.NodeID,
	rec2 map[callgraph.Edge]bool, an, resets map[callgraph.NodeID]bool,
	newEdges, newlyRec []callgraph.Edge, maxID uint64,
	stats *ExtendStats) (*pass, callgraph.NodeID, bool) {

	prevPS := prev.PieceStarts
	prevResets := prev.Spec.Anchors

	// Anchors whose territory must be re-walked: every new anchor, plus
	// every old anchor whose territory contains a changed edge's caller or
	// a new anchor (its bounded DFS sees a different graph or retreats at a
	// new boundary). New nodes are reachable only through new edges whose
	// callers are covered here, so chains into new code are included.
	var newAnchors []callgraph.NodeID
	for n := range an {
		if !prevPS[n] {
			newAnchors = append(newAnchors, n)
		}
	}
	// The entry can flip from flow-through to resetting (the delta made it
	// a recursive target): territories that ran through it now retreat at
	// it and its ICC collapses to {entry: 1}, so it behaves exactly like a
	// new anchor for both territory recomputation and dirtiness.
	for n := range resets {
		if !prevResets[n] && prevPS[n] {
			newAnchors = append(newAnchors, n)
		}
	}
	inR := make(map[callgraph.NodeID]bool, len(newAnchors))
	touched := append([]callgraph.NodeID(nil), newAnchors...)
	for _, e := range newEdges {
		touched = append(touched, e.Caller)
	}
	for _, e := range newlyRec {
		touched = append(touched, e.Caller)
	}
	for _, v := range newAnchors {
		inR[v] = true
	}
	for _, x := range touched {
		for _, r := range prev.NAnchors[x] {
			inR[r] = true
		}
	}
	recompute := make([]callgraph.NodeID, 0, len(inR))
	for r := range inR {
		recompute = append(recompute, r)
	}
	sort.Slice(recompute, func(i, j int) bool { return recompute[i] < recompute[j] })
	stats.RecomputedAnchors = len(recompute)

	p := &pass{
		nanchors: make(map[callgraph.NodeID][]callgraph.NodeID, len(prev.NAnchors)),
		eanchors: make(map[callgraph.Edge][]callgraph.NodeID, len(prev.inc.eanchors)),
		cav:      make(map[callgraph.NodeID]map[callgraph.NodeID]uint64, len(prev.inc.cav)),
		icc:      make(map[callgraph.NodeID]map[callgraph.NodeID]uint64, len(prev.ICC)),
		av:       make(map[callgraph.Site]uint64, len(prev.Spec.SiteAV)),
		dead:     make(map[callgraph.NodeID]map[callgraph.NodeID]bool),
		seenOver: make(map[callgraph.NodeID]bool),
	}
	// Territory reuse: keep every membership owed to an anchor outside the
	// recompute set (its DFS is provably identical), then re-walk the
	// recompute set. List order ends up differing from a full pass's
	// sorted-anchor interleave, but nothing downstream depends on it: AV is
	// a max, CAV/ICC cells are keyed writes, and a site's overflow always
	// promotes that site's one caller.
	for n, list := range prev.NAnchors {
		keep := filterAnchors(list, inR)
		if len(keep) > 0 {
			p.nanchors[n] = keep
		}
	}
	for e, list := range prev.inc.eanchors {
		keep := filterAnchors(list, inR)
		if len(keep) > 0 {
			p.eanchors[e] = keep
		}
	}
	for _, r := range recompute {
		territoryDFS(g, rec2, resets, p, r)
	}

	// Dirty closure (rules 1–3 above). Seeds: new nodes, the sites and
	// non-recursive targets of new edges, the sites of newly recursive
	// edges (their AV loses a contributor), and new anchors (their ICC
	// flips to {self: 1}).
	dirty := make(map[callgraph.NodeID]bool)
	dirtySite := make(map[callgraph.Site]bool)
	var queue []callgraph.NodeID
	addNode := func(n callgraph.NodeID) {
		if !dirty[n] {
			dirty[n] = true
			queue = append(queue, n)
		}
	}
	markSite := func(s callgraph.Site) {
		if dirtySite[s] {
			return
		}
		dirtySite[s] = true
		for _, e := range g.SiteTargets(s) {
			if !rec2[e] {
				addNode(e.Callee)
			}
		}
	}
	for n := oldGNumNodes(prev); n < g.NumNodes(); n++ {
		addNode(callgraph.NodeID(n))
	}
	for _, e := range newEdges {
		if !rec2[e] {
			markSite(e.Site())
			addNode(e.Callee)
		}
	}
	for _, e := range newlyRec {
		// The site's AV loses this edge as a contributor, and the callee —
		// now a recursion anchor — may drop out of territories whose DFS
		// previously ran through the edge, so its CAV cells must be rebuilt.
		markSite(e.Site())
		addNode(e.Callee)
	}
	for _, v := range newAnchors {
		addNode(v)
	}
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Old resetting anchors stop rule 1: their ICC is the constant
		// {self: 1}. A flow-through entry's ICC is not constant, so it
		// propagates like any interior node.
		if !prevResets[n] {
			for _, e := range g.Out(n) {
				if !rec2[e] {
					addNode(e.Callee)
				}
			}
		}
		for _, e := range g.In(n) {
			if !rec2[e] {
				markSite(e.Site())
			}
		}
	}
	stats.DirtyNodes = len(dirty)
	stats.DirtySites = len(dirtySite)

	// Export the territories whose proof obligations this delta invalidates:
	// every re-walked territory (membership may differ) plus every territory
	// containing a dirty node or a dirty site's caller — their interval
	// checks re-derive from changed AV/ICC values even when membership is
	// untouched. p.nanchors is complete for the new graph at this point, so
	// the lookups see post-delta territories.
	dirtyTerr := make(map[callgraph.NodeID]bool, len(inR))
	for r := range inR {
		dirtyTerr[r] = true
	}
	for n := range dirty {
		for _, r := range p.nanchors[n] {
			dirtyTerr[r] = true
		}
	}
	for s := range dirtySite {
		for _, r := range p.nanchors[s.Caller] {
			dirtyTerr[r] = true
		}
	}
	list := make([]callgraph.NodeID, 0, len(dirtyTerr))
	for r := range dirtyTerr {
		list = append(list, r)
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	stats.DirtyTerritoryList = list
	stats.DirtyTerritories = len(list)

	// Copy-on-write state: clean nodes share their final CAV/ICC maps with
	// prev (never written again); dirty nodes get fresh zeroed cells.
	for n, m := range prev.inc.cav {
		p.cav[n] = m
	}
	for n, m := range prev.ICC {
		p.icc[n] = m
	}
	for n := range dirty {
		anchors := p.nanchors[n]
		m := make(map[callgraph.NodeID]uint64, len(anchors))
		for _, r := range anchors {
			m[r] = 0
		}
		p.cav[n] = m
	}
	for s, v := range prev.Spec.SiteAV {
		p.av[s] = v
	}
	// A site whose last non-recursive target turned recursive no longer
	// has an addition value at all (a full pass never visits it).
	for _, e := range newlyRec {
		s := e.Site()
		live := false
		for _, t := range g.SiteTargets(s) {
			if !rec2[t] {
				live = true
				break
			}
		}
		if !live {
			delete(p.av, s)
		}
	}

	// The pass itself: the full topological sweep restricted to dirty
	// nodes. Dirty sites surface only in dirty nodes' forward in-edges
	// (every target of a dirty site is dirty), and the earliest-target
	// dedup visits them in exactly the order a full pass would.
	processed := make(map[callgraph.Site]bool)
	for _, n := range topo {
		if !dirty[n] {
			continue
		}
		for _, e := range g.ForwardIn(n, rec2) {
			cs := e.Site()
			if processed[cs] {
				continue
			}
			processed[cs] = true
			if !dirtySite[cs] {
				continue
			}
			a, overflow := calculateIncrement(g, rec2, cs, p, maxID)
			if overflow {
				return nil, cs.Caller, false
			}
			p.av[cs] = a
		}
		if resets[n] {
			p.icc[n] = map[callgraph.NodeID]uint64{n: 1}
		} else if cavN := p.cav[n]; len(cavN) > 0 {
			m := make(map[callgraph.NodeID]uint64, len(cavN))
			for r, v := range cavN {
				m[r] = v
			}
			if an[n] {
				m[n] = 1 // non-resetting entry: reserved width of 1
			}
			p.icc[n] = m
		} else {
			delete(p.icc, n)
		}
	}

	// Final CAV cells are the maxima of their write sequences (each write
	// strictly increases a cell), so the global maximum over final cells
	// equals the running maximum a full pass tracks.
	for _, m := range p.cav {
		for _, v := range m {
			if v > p.maxCAV {
				p.maxCAV = v
			}
		}
	}
	return p, 0, true
}

func oldGNumNodes(prev *Result) int { return prev.Spec.Graph.NumNodes() }

// filterAnchors returns list minus the members of drop, as a fresh slice
// (prev's slices are shared with a live epoch and must never be appended to).
func filterAnchors(list []callgraph.NodeID, drop map[callgraph.NodeID]bool) []callgraph.NodeID {
	keep := make([]callgraph.NodeID, 0, len(list))
	for _, r := range list {
		if !drop[r] {
			keep = append(keep, r)
		}
	}
	if len(keep) == 0 {
		return nil
	}
	return keep
}
