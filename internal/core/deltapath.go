// Package core implements the DeltaPath encoding algorithms — the paper's
// primary contribution:
//
//   - Algorithm 1 (Section 3.1): calling-context encoding in the presence of
//     dynamic dispatch. Every call site — even a virtual one with many
//     dispatch targets — receives a single addition value, computed with the
//     candidate-addition-value (CAV) and inflated-calling-context-count (ICC)
//     machinery so that every node's encoding space splits into disjoint
//     sub-ranges per incoming edge.
//
//   - Algorithm 2 (Section 3.2): the same encoding made scalable. Whenever an
//     ICC would overflow the configured integer width, the offending caller
//     becomes an anchor node and the analysis restarts; anchors divide long
//     calling contexts into pieces, each encoded relative to its anchor
//     within the anchor's territory, so no runtime overflow checks are ever
//     needed.
//
// Encode always runs Algorithm 2; when the graph fits in the integer width
// without anchors it degenerates to Algorithm 1 exactly, and when the
// program additionally has no virtual call sites it degenerates to PCCE
// (ICC == NC for every node), which the tests verify.
//
// Recursion is handled as in PCCE (Section 2): intra-SCC call edges start a
// new piece at runtime. Their targets are made piece-start (anchor) nodes so
// each owns a reserved encoding width of 1 and roots its own territory; this
// keeps every range disjoint without special cases.
package core

import (
	"fmt"
	"math"
	"sort"

	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
)

// Options configures the encoding.
type Options struct {
	// MaxID is the largest value the encoding integer can hold
	// (inclusive). ICC values never exceed it, so runtime IDs cannot
	// overflow. Zero means 2^63-1, the paper's 64-bit signed setting.
	MaxID uint64

	// ForceAnchors seeds the anchor set with the given nodes before the
	// first pass. Forced anchors reset the runtime encoding (they appear
	// in Spec.Anchors) even when the entry is forced. Used to reproduce
	// the paper's worked examples (Figure 5 fixes C and D as anchors) and
	// by the hybrid-encoding mode, where profiled trunk functions become
	// anchors (Section 8).
	ForceAnchors []callgraph.NodeID

	// EdgeProfile, when non-nil, gives execution frequencies for call
	// edges. Each node's incoming edges are then processed hottest-first,
	// so the hottest edge lands in the lowest sub-range and its site's
	// addition value is 0 — an "encoding free" site that needs no
	// instrumentation at all when call path tracking is off. This is the
	// profile-guided optimization Section 8 adopts from PCCE.
	EdgeProfile map[callgraph.Edge]uint64

	// BatchAnchors changes the restart policy of Algorithm 2 (an
	// engineering extension, not in the paper): instead of restarting
	// after the first overflow, the pass continues with the overflowing
	// range marked dead, collecting every distinct overflowing caller of
	// the round, and all of them become anchors before the single
	// restart. On graphs without hub structure — where pressure crosses
	// the integer limit across a wide frontier — this turns one restart
	// per anchor into one restart per round (see
	// BenchmarkAblationBatchAnchors). Anchor sets can be slightly larger
	// than the sequential policy's.
	BatchAnchors bool

	// Workers selects the analysis engine. 0 (auto) uses the
	// level-parallel engine with up to GOMAXPROCS workers, but only when
	// GOMAXPROCS > 1 and the graph has at least ParThreshold nodes —
	// otherwise the serial reference engine runs, so every existing
	// workload is unaffected by default. 1 forces serial; >1 forces the
	// parallel engine with that many workers (subject to the threshold).
	// Both engines produce bit-identical Results (see parallel.go).
	Workers int

	// ParThreshold overrides the node count below which auto mode stays
	// serial (default 32768). Negative removes the size gate entirely,
	// which the differential tests use to force the parallel engine onto
	// small graphs.
	ParThreshold int

	// MeasureMemory enables live-heap sampling at analysis checkpoints;
	// the high-water mark is reported in Result.Stats.PeakBytes. Off by
	// default: runtime.ReadMemStats stops the world.
	MeasureMemory bool
}

// Result is the outcome of the DeltaPath static analysis.
type Result struct {
	// Spec carries everything the runtime and the decoder need.
	Spec *encoding.Spec

	// ICC maps node -> anchor -> inflated calling-context count: the
	// exclusive upper bound of the encoding space for contexts reaching
	// the node from that anchor.
	ICC map[callgraph.NodeID]map[callgraph.NodeID]uint64

	// NAnchors lists, per node, the anchors whose territory contains it.
	NAnchors map[callgraph.NodeID][]callgraph.NodeID

	// PieceStarts is the full anchor set An of Algorithm 2: the entry,
	// every recursive-edge target, and every overflow anchor.
	PieceStarts map[callgraph.NodeID]bool

	// OverflowAnchors are the anchors added by Algorithm 2's restart
	// loop, in the order they were added (Table 1's "anchor" count).
	OverflowAnchors []callgraph.NodeID

	// Restarts counts how many times the analysis restarted.
	Restarts int

	// MaxID is the largest encoding ID any context can produce: the
	// static encoding-space requirement (Table 1's "max. ID").
	MaxID uint64

	// UnifiedVirtualSites counts virtual call sites (>1 dispatch target)
	// that received a single addition value — all of them, by
	// construction; reported for comparison against PCCE's conflicts.
	UnifiedVirtualSites int

	// Stats reports scalability characteristics of the run: which engine
	// ran, its wave count, and (with Options.MeasureMemory) the peak
	// memory budget. Nil for results not produced by Encode in this
	// process (analysisio.Load, Extend).
	Stats *AnalysisStats

	// inc retains the successful pass's internal state (final CAV cells,
	// edge territories, recursive-edge set) so Extend can recompute only
	// the dirty territory of a graph delta. Nil for results that did not
	// come out of Encode/Extend in this process (e.g. analysisio.Load).
	inc *incState
}

// incState is the retained per-pass state Extend needs. All maps are
// treated as immutable once published in a Result: Extend builds fresh
// (copy-on-write) maps for the next Result, so concurrent readers of an
// old epoch never observe mutation.
type incState struct {
	cav      map[callgraph.NodeID]map[callgraph.NodeID]uint64
	eanchors map[callgraph.Edge][]callgraph.NodeID
	rec      map[callgraph.Edge]bool
}

// ErrWidthTooSmall is wrapped by Encode when even turning every possible
// caller into an anchor cannot fit the encoding into MaxID.
var errWidthTooSmall = fmt.Errorf("core: integer width too small to encode this graph")

// Encode runs the DeltaPath analysis (Algorithm 2) on g.
func Encode(g *callgraph.Graph, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	maxID := opts.MaxID
	if maxID == 0 {
		maxID = math.MaxInt64
	}
	entry, _ := g.Entry()
	rec := g.RecursiveEdges()
	topo, err := g.TopoOrder(rec)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// An: entry + recursive-edge targets; overflow anchors join below.
	an := map[callgraph.NodeID]bool{entry: true}
	recTargets := map[callgraph.NodeID]bool{}
	for e := range rec {
		an[e.Callee] = true
		recTargets[e.Callee] = true
	}
	for _, n := range opts.ForceAnchors {
		an[n] = true
	}
	// Additional context roots (executor-task entries) are piece starts.
	for _, n := range g.ContextRoots() {
		an[n] = true
	}
	addOrphanAnchors(g, rec, an)
	resets := resetAnchors(an, entry, recTargets[entry])
	for _, n := range opts.ForceAnchors {
		resets[n] = true
	}

	// Engine selection: the level-parallel engine (parallel.go) builds its
	// flat schedule once and reuses it across Algorithm 2's restarts; it
	// produces bit-identical passes, so restart decisions are unaffected.
	workers := effectiveWorkers(opts, g.NumNodes())
	mem := &memPeak{enabled: opts.MeasureMemory}
	mem.sample()
	var eng *parEngine
	if workers > 1 {
		eng = newParEngine(g, topo, rec, opts.EdgeProfile, workers)
		mem.sample()
	}

	res := &Result{}
	for {
		var run *pass
		var overflowAt []callgraph.NodeID
		var ok bool
		if eng != nil {
			run, overflowAt, ok = eng.runOnce(an, resets, maxID, opts.BatchAnchors, mem)
		} else {
			run, overflowAt, ok = runOnce(g, topo, rec, an, resets, maxID, opts.EdgeProfile, opts.BatchAnchors)
		}
		if ok {
			res.finish(g, rec, an, resets, run)
			mem.sample()
			st := &AnalysisStats{
				Nodes:   g.NumNodes(),
				Edges:   g.NumEdges(),
				Sites:   g.NumSites(),
				Anchors: len(an),
				Par:     workers,
			}
			if eng != nil {
				st.Levels = eng.levels
			}
			if opts.MeasureMemory {
				st.PeakBytes = mem.peak
				if st.Nodes > 0 {
					st.BytesPerNode = float64(st.PeakBytes) / float64(st.Nodes)
				}
			}
			res.Stats = st
			return res, nil
		}
		progress := false
		for _, p := range overflowAt {
			if !resets[p] {
				an[p] = true
				resets[p] = true
				res.OverflowAnchors = append(res.OverflowAnchors, p)
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("%w: overflow at anchor %s with limit %d",
				errWidthTooSmall, g.Name(overflowAt[0]), maxID)
		}
		res.Restarts++
	}
}

// pass is the state of one analysis attempt.
type pass struct {
	nanchors map[callgraph.NodeID][]callgraph.NodeID
	eanchors map[callgraph.Edge][]callgraph.NodeID
	cav      map[callgraph.NodeID]map[callgraph.NodeID]uint64
	icc      map[callgraph.NodeID]map[callgraph.NodeID]uint64
	av       map[callgraph.Site]uint64
	maxCAV   uint64

	// batch mode: dead marks (node, anchor) entries whose range
	// overflowed; they are excluded from further propagation so the pass
	// can keep collecting overflow sites. overflows lists the callers to
	// anchor, in discovery order.
	batch     bool
	dead      map[callgraph.NodeID]map[callgraph.NodeID]bool
	overflows []callgraph.NodeID
	seenOver  map[callgraph.NodeID]bool
}

func (p *pass) markDead(n, r callgraph.NodeID) {
	m := p.dead[n]
	if m == nil {
		m = make(map[callgraph.NodeID]bool)
		p.dead[n] = m
	}
	m[r] = true
}

func (p *pass) isDead(n, r callgraph.NodeID) bool { return p.dead[n][r] }

func (p *pass) recordOverflow(n callgraph.NodeID) {
	if !p.seenOver[n] {
		p.seenOver[n] = true
		p.overflows = append(p.overflows, n)
	}
}

// resetAnchors derives the runtime-resetting anchor set (the Spec.Anchors
// to be) from the piece starts: every piece start except the entry. The
// entry starts the bottom piece without a runtime reset — a non-recursive
// call into it continues the caller's piece, exactly as the decoder and
// encoding.Validate model it — so it bounds no other anchor's territory.
// A recursive entry must reset (re-entries push), and overflow promotion
// may add the entry later.
func resetAnchors(an map[callgraph.NodeID]bool, entry callgraph.NodeID,
	entryResets bool) map[callgraph.NodeID]bool {
	resets := make(map[callgraph.NodeID]bool, len(an))
	for n := range an {
		if n != entry || entryResets {
			resets[n] = true
		}
	}
	return resets
}

// recursiveEntry reports whether the entry is the target of a recursive
// edge (so re-entries push and the entry must reset).
func recursiveEntry(rec map[callgraph.Edge]bool, entry callgraph.NodeID) bool {
	for e := range rec {
		if e.Callee == entry {
			return true
		}
	}
	return false
}

// runOnce is one iteration of Algorithm 2's restart loop. On overflow it
// returns the caller node to promote to anchor and ok=false.
func runOnce(g *callgraph.Graph, topo []callgraph.NodeID, rec map[callgraph.Edge]bool,
	an, resets map[callgraph.NodeID]bool, maxID uint64, profile map[callgraph.Edge]uint64,
	batch bool) (*pass, []callgraph.NodeID, bool) {

	p := &pass{
		nanchors: make(map[callgraph.NodeID][]callgraph.NodeID),
		eanchors: make(map[callgraph.Edge][]callgraph.NodeID),
		cav:      make(map[callgraph.NodeID]map[callgraph.NodeID]uint64),
		icc:      make(map[callgraph.NodeID]map[callgraph.NodeID]uint64),
		av:       make(map[callgraph.Site]uint64),
		batch:    batch,
		dead:     make(map[callgraph.NodeID]map[callgraph.NodeID]bool),
		seenOver: make(map[callgraph.NodeID]bool),
	}
	identifyTerritories(g, rec, an, resets, p)

	// CAV[n][r] starts at 0 for every anchor r that can reach n.
	for n, anchors := range p.nanchors {
		m := make(map[callgraph.NodeID]uint64, len(anchors))
		for _, r := range anchors {
			m[r] = 0
		}
		p.cav[n] = m
	}

	processed := make(map[callgraph.Site]bool)
	for _, n := range topo {
		for _, e := range orderIn(g.ForwardIn(n, rec), profile) {
			cs := e.Site()
			if processed[cs] {
				continue
			}
			processed[cs] = true
			a, overflow := calculateIncrement(g, rec, cs, p, maxID)
			if overflow && !batch {
				return nil, []callgraph.NodeID{cs.Caller}, false
			}
			p.av[cs] = a
		}
		if resets[n] {
			p.icc[n] = map[callgraph.NodeID]uint64{n: 1}
		} else if cavN := p.cav[n]; len(cavN) > 0 {
			m := make(map[callgraph.NodeID]uint64, len(cavN))
			for r, v := range cavN {
				if p.batch && p.isDead(n, r) {
					continue // dead range: do not seed downstream counts
				}
				m[r] = v
			}
			if an[n] {
				// Non-resetting piece start — the entry: exactly one
				// context (program start) reaches it within its own
				// piece, while calls into it continue their callers'
				// pieces, so its ICC merges the reserved 1 with the
				// interior cells those callers see.
				m[n] = 1
			}
			p.icc[n] = m
		}
	}
	if len(p.overflows) > 0 {
		return nil, p.overflows, false
	}
	return p, nil, true
}

// calculateIncrement computes the single addition value for call site cs
// (the maximum candidate addition value over all dispatch targets and all
// anchors reaching them) and then updates every target's CAVs. It reports
// overflow against maxID.
func calculateIncrement(g *callgraph.Graph, rec map[callgraph.Edge]bool,
	cs callgraph.Site, p *pass, maxID uint64) (uint64, bool) {

	var a uint64
	targets := g.SiteTargets(cs)
	for _, e := range targets {
		if rec[e] {
			continue // recursive edges carry no range; runtime pushes
		}
		for _, r := range p.eanchors[e] {
			if p.batch && p.isDead(e.Callee, r) {
				continue
			}
			if v := p.cav[e.Callee][r]; v > a {
				a = v
			}
		}
	}
	overflowed := false
	for _, e := range targets {
		if rec[e] {
			continue
		}
		iccP := p.icc[e.Caller]
		for _, r := range p.eanchors[e] {
			w := iccP[r]
			if w > maxID-a {
				if !p.batch {
					return 0, true
				}
				// Batch mode: record the caller, kill this range, and
				// keep scanning for more overflow sites this round.
				p.recordOverflow(e.Caller)
				p.markDead(e.Callee, r)
				overflowed = true
				continue
			}
			v := w + a
			if !(p.batch && p.isDead(e.Callee, r)) {
				p.cav[e.Callee][r] = v
			}
			if v > p.maxCAV {
				p.maxCAV = v
			}
		}
	}
	return a, overflowed
}

// addOrphanAnchors extends the anchor set with every node that is not
// forward-reachable from any anchor. Such nodes exist under selective
// encoding: an application method invoked only through excluded library
// code (Figure 7's G) has no incoming edges in the analysed graph, yet
// pieces START there at runtime (the hazardous-UCP response). Making it an
// anchor gives it a reserved width of 1 and a territory of its own, so the
// ranges its outgoing edges occupy downstream stay disjoint from every
// other range. Only the roots of the uncovered region (nodes all of whose
// forward predecessors are also uncovered — in a DAG, ultimately nodes
// with no forward in-edges at all) need to be added: their territories
// cover the rest.
func addOrphanAnchors(g *callgraph.Graph, rec map[callgraph.Edge]bool, an map[callgraph.NodeID]bool) {
	covered := make(map[callgraph.NodeID]bool, g.NumNodes())
	var work []callgraph.NodeID
	for r := range an {
		covered[r] = true
		work = append(work, r)
	}
	expand := func() {
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]
			for _, e := range g.Out(v) {
				if rec[e] || covered[e.Callee] {
					continue
				}
				covered[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	expand()
	for _, n := range g.Nodes() {
		if covered[n] || len(g.ForwardIn(n, rec)) > 0 {
			continue
		}
		an[n] = true
		covered[n] = true
		work = append(work, n)
		expand()
	}
}

// orderIn returns the in-edges sorted hottest-first by the profile (stable
// for ties and for absent profiles, preserving insertion order).
func orderIn(in []callgraph.Edge, profile map[callgraph.Edge]uint64) []callgraph.Edge {
	if len(profile) == 0 || len(in) < 2 {
		return in
	}
	out := append([]callgraph.Edge(nil), in...)
	sort.SliceStable(out, func(i, j int) bool {
		return profile[out[i]] > profile[out[j]]
	})
	return out
}

// identifyTerritories computes, for every piece start, the nodes and edges
// its bounded depth-first search reaches: traversal starts at the anchor
// and retreats at resetting anchors (which still belong to the territory
// as its boundary) — only those reset the runtime encoding, so only those
// end a piece; a non-resetting entry is flowed through like any interior
// node. Recursive edges are never traversed — they start new pieces.
func identifyTerritories(g *callgraph.Graph, rec map[callgraph.Edge]bool,
	an, resets map[callgraph.NodeID]bool, p *pass) {

	anchors := make([]callgraph.NodeID, 0, len(an))
	for r := range an {
		anchors = append(anchors, r)
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i] < anchors[j] })

	for _, r := range anchors {
		territoryDFS(g, rec, resets, p, r)
	}
}

// territoryDFS walks one anchor's territory, appending r to the nanchors
// and eanchors lists of everything its bounded traversal reaches. resets
// is the boundary set: the runtime-resetting anchors.
func territoryDFS(g *callgraph.Graph, rec map[callgraph.Edge]bool,
	resets map[callgraph.NodeID]bool, p *pass, r callgraph.NodeID) {

	seen := map[callgraph.NodeID]bool{r: true}
	p.nanchors[r] = append(p.nanchors[r], r)
	work := []callgraph.NodeID{r}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if v != r && resets[v] {
			continue // boundary anchor: belongs to territory, not traversed
		}
		for _, e := range g.Out(v) {
			if rec[e] {
				continue
			}
			p.eanchors[e] = append(p.eanchors[e], r)
			if !seen[e.Callee] {
				seen[e.Callee] = true
				p.nanchors[e.Callee] = append(p.nanchors[e.Callee], r)
				work = append(work, e.Callee)
			}
		}
	}
}

// finish assembles the Result from a successful pass.
func (res *Result) finish(g *callgraph.Graph, rec map[callgraph.Edge]bool,
	an, resets map[callgraph.NodeID]bool, p *pass) {

	spec := &encoding.Spec{
		Graph:   g,
		SiteAV:  p.av,
		Push:    make(map[callgraph.Edge]encoding.PieceKind, len(rec)),
		Anchors: make(map[callgraph.NodeID]bool, len(resets)),
	}
	for e := range rec {
		spec.Push[e] = encoding.PieceRecursion
	}
	// Runtime anchors: exactly the resetting piece starts — every anchor
	// except a non-recursive, non-promoted entry.
	for n := range resets {
		spec.Anchors[n] = true
	}
	res.Spec = spec
	res.ICC = p.icc
	res.NAnchors = p.nanchors
	res.PieceStarts = an
	if p.maxCAV > 0 {
		res.MaxID = p.maxCAV - 1
	}
	res.UnifiedVirtualSites = g.NumVirtualSites()
	res.inc = &incState{cav: p.cav, eanchors: p.eanchors, rec: rec}
}

// AdditionValue returns the single addition value assigned to a call site.
func (res *Result) AdditionValue(s callgraph.Site) uint64 { return res.Spec.SiteAV[s] }
