package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
	"deltapath/internal/pcce"
)

// figure4 builds the graph of Figure 4: the seven-node graph where
// D'E and DF are one virtual call site in D, and CF and CG are one virtual
// call site in C.
//
// Site labels: A{0:B,1:C}; B{0:D}; C{0:D, 1:(F,G) virtual}; D{0:E, 1:(E,F)
// virtual}; E{0:G}; F{0:G}.
func figure4() (*callgraph.Graph, map[string]callgraph.NodeID) {
	g := callgraph.New()
	ids := make(map[string]callgraph.NodeID)
	for _, n := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		ids[n] = g.AddNode(n, false)
	}
	g.SetEntry(ids["A"])
	g.AddEdge(ids["A"], 0, ids["B"])
	g.AddEdge(ids["A"], 1, ids["C"])
	g.AddEdge(ids["B"], 0, ids["D"])
	g.AddEdge(ids["C"], 0, ids["D"])
	g.AddEdge(ids["D"], 0, ids["E"]) // DE: its own (static) call site
	g.AddEdge(ids["D"], 1, ids["E"]) // D'E: virtual site in D...
	g.AddEdge(ids["D"], 1, ids["F"]) // ...dispatching to E and F
	g.AddEdge(ids["C"], 1, ids["F"]) // CF: virtual site in C...
	g.AddEdge(ids["C"], 1, ids["G"]) // ...dispatching to F and G
	g.AddEdge(ids["E"], 0, ids["G"])
	g.AddEdge(ids["F"], 0, ids["G"])
	return g, ids
}

func iccOf(t *testing.T, res *Result, n, r callgraph.NodeID) uint64 {
	t.Helper()
	m, ok := res.ICC[n]
	if !ok {
		t.Fatalf("no ICC entry for node %d", n)
	}
	v, ok := m[r]
	if !ok {
		t.Fatalf("no ICC[%d][%d]", n, r)
	}
	return v
}

// TestFigure4Algorithm1 walks the exact narrative of Section 3.1.
func TestFigure4Algorithm1(t *testing.T) {
	g, ids := figure4()
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OverflowAnchors) != 0 || res.Restarts != 0 {
		t.Fatalf("unexpected anchors %v on a tiny graph", res.OverflowAnchors)
	}
	entry := ids["A"]
	// Node annotations (ICC values) from the narrative:
	// ICC[A]=1 (entry), ICC[B]=1, ICC[C]=1, ICC[D]=2, ICC[E]=4, ICC[F]=5.
	wantICC := map[string]uint64{"B": 1, "C": 1, "D": 2, "E": 4, "F": 5, "G": 14}
	for name, want := range wantICC {
		if got := iccOf(t, res, ids[name], entry); got != want {
			t.Errorf("ICC[%s] = %d, want %d", name, got, want)
		}
	}
	// The virtual call site in D gets the single addition value 2
	// (the narrative's max{CAV[E], CAV[F]} = 2).
	av := res.Spec.SiteAV
	if got := av[callgraph.Site{Caller: ids["D"], Label: 1}]; got != 2 {
		t.Errorf("AV[D virtual site] = %d, want 2", got)
	}
	if got := av[callgraph.Site{Caller: ids["D"], Label: 0}]; got != 0 {
		t.Errorf("AV[DE] = %d, want 0", got)
	}
	if got := av[callgraph.Site{Caller: ids["C"], Label: 0}]; got != 1 {
		t.Errorf("AV[CD] = %d, want 1", got)
	}
	if got := av[callgraph.Site{Caller: ids["C"], Label: 1}]; got != 4 {
		t.Errorf("AV[C virtual site] = %d, want 4", got)
	}
	if got := av[callgraph.Site{Caller: ids["E"], Label: 0}]; got != 5 {
		t.Errorf("AV[EG] = %d, want 5", got)
	}
	if got := av[callgraph.Site{Caller: ids["F"], Label: 0}]; got != 9 {
		t.Errorf("AV[FG] = %d, want 9", got)
	}
	if res.UnifiedVirtualSites != 2 {
		t.Errorf("UnifiedVirtualSites = %d, want 2", res.UnifiedVirtualSites)
	}
}

// TestFigure5Anchors forces C and D as anchors and checks the per-anchor
// ICC values and the worked CFG example of Section 3.2.
func TestFigure5Anchors(t *testing.T) {
	g, ids := figure4()
	res, err := Encode(g, Options{ForceAnchors: []callgraph.NodeID{ids["C"], ids["D"]}})
	if err != nil {
		t.Fatal(err)
	}
	A, C, D := ids["A"], ids["C"], ids["D"]
	// ICC[E][D] = 2 — stated explicitly in the figure caption.
	if got := iccOf(t, res, ids["E"], D); got != 2 {
		t.Errorf("ICC[E][D] = %d, want 2", got)
	}
	if got := iccOf(t, res, ids["F"], C); got != 1 {
		t.Errorf("ICC[F][C] = %d, want 1", got)
	}
	if got := iccOf(t, res, ids["F"], D); got != 2 {
		t.Errorf("ICC[F][D] = %d, want 2", got)
	}
	if got := iccOf(t, res, ids["B"], A); got != 1 {
		t.Errorf("ICC[B][A] = %d, want 1", got)
	}
	// Anchor ICCs are 1 relative to themselves.
	if got := iccOf(t, res, C, C); got != 1 {
		t.Errorf("ICC[C][C] = %d, want 1", got)
	}
	// Addition values from the narrative: CF/CG site 0, D virtual site 1,
	// EG 0, FG 2.
	av := res.Spec.SiteAV
	if got := av[callgraph.Site{Caller: C, Label: 1}]; got != 0 {
		t.Errorf("AV[C virtual site] = %d, want 0", got)
	}
	if got := av[callgraph.Site{Caller: ids["F"], Label: 0}]; got != 2 {
		t.Errorf("AV[FG] = %d, want 2", got)
	}
	if got := av[callgraph.Site{Caller: ids["E"], Label: 0}]; got != 0 {
		t.Errorf("AV[EG] = %d, want 0", got)
	}

	// Runtime walk of the call path A -> C -> F -> G: upon invoking the
	// anchor C the ID is saved and reset; at G the ID is 2 (the figure's
	// "encoding ID value 2" with element c on the stack).
	path := []callgraph.Edge{
		{Caller: A, Callee: C, Label: 1},
		{Caller: C, Callee: ids["F"], Label: 1},
		{Caller: ids["F"], Callee: ids["G"], Label: 0},
	}
	st, err := encoding.EncodePath(res.Spec, path)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != 2 {
		t.Errorf("ID at G = %d, want 2", st.ID)
	}
	if len(st.Stack) != 1 || st.Stack[0].Kind != encoding.PieceAnchor || st.Stack[0].OuterEnd != C {
		t.Fatalf("stack = %+v, want one anchor element for C", st.Stack)
	}
	// Decode recovers A > C > F > G.
	dec := encoding.NewDecoder(res.Spec)
	names, err := dec.DecodeNames(st, ids["G"])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, "") != "ACFG" {
		t.Fatalf("decode = %v, want ACFG", names)
	}
}

// exhaustiveCheck enumerates every context (recursion bounded) and checks
// encoding uniqueness and decode round trips.
func exhaustiveCheck(t *testing.T, g *callgraph.Graph, res *Result, maxRec, maxLen int) int {
	t.Helper()
	dec := encoding.NewDecoder(res.Spec)
	seen := make(map[string]string)
	count := 0
	encoding.EnumeratePaths(g, maxRec, maxLen, func(path []callgraph.Edge) {
		count++
		st, err := encoding.EncodePath(res.Spec, path)
		if err != nil {
			t.Fatal(err)
		}
		nodes := encoding.PathNodes(g, path)
		end := nodes[len(nodes)-1]
		parts := make([]string, len(nodes))
		for i, n := range nodes {
			parts[i] = g.Name(n)
		}
		want := strings.Join(parts, ">")
		key := st.Key(end)
		if prev, dup := seen[key]; dup && prev != want {
			t.Fatalf("encoding collision: key %q decodes as both %s and %s", key, prev, want)
		}
		seen[key] = want
		names, err := dec.DecodeNames(st, end)
		if err != nil {
			t.Fatalf("decode %s: %v", want, err)
		}
		if got := strings.Join(names, ">"); got != want {
			t.Fatalf("round trip: got %s, want %s", got, want)
		}
	})
	return count
}

func TestFigure4ExhaustiveRoundTrip(t *testing.T) {
	g, _ := figure4()
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := exhaustiveCheck(t, g, res, 0, 16); n < 20 {
		t.Fatalf("only %d contexts enumerated", n)
	}
}

func TestFigure5ExhaustiveRoundTrip(t *testing.T) {
	g, ids := figure4()
	res, err := Encode(g, Options{ForceAnchors: []callgraph.NodeID{ids["C"], ids["D"]}})
	if err != nil {
		t.Fatal(err)
	}
	exhaustiveCheck(t, g, res, 0, 16)
}

// TestInvariantDisjointRanges verifies the Section 3.1 invariant directly:
// for every node and every anchor reaching it, the sub-ranges of its
// incoming edges are pairwise disjoint and contained in [0, ICC[n][r]).
func TestInvariantDisjointRanges(t *testing.T) {
	g, ids := figure4()
	for _, anchors := range [][]callgraph.NodeID{nil, {ids["C"], ids["D"]}, {ids["D"]}} {
		res, err := Encode(g, Options{ForceAnchors: anchors})
		if err != nil {
			t.Fatal(err)
		}
		assertDisjointRanges(t, g, res)
	}
}

func assertDisjointRanges(t *testing.T, g *callgraph.Graph, res *Result) {
	t.Helper()
	rec := g.RecursiveEdges()
	for _, n := range g.Nodes() {
		// Collect, per anchor, the ranges of n's in-edges.
		type rng struct {
			lo, hi uint64
			e      callgraph.Edge
		}
		byAnchor := make(map[callgraph.NodeID][]rng)
		for _, e := range g.ForwardIn(n, rec) {
			av := res.Spec.AV(e)
			for r, w := range res.ICC[e.Caller] {
				// Edge e belongs to r's territory only if r actually
				// reaches it; approximate via NAnchors of the caller
				// and the ICC entry — width w is the range size.
				byAnchor[r] = append(byAnchor[r], rng{lo: av, hi: av + w, e: e})
			}
		}
		for r, ranges := range byAnchor {
			for i := 0; i < len(ranges); i++ {
				for j := i + 1; j < len(ranges); j++ {
					a, b := ranges[i], ranges[j]
					if a.lo < b.hi && b.lo < a.hi {
						t.Errorf("node %s anchor %s: ranges [%d,%d) (%v) and [%d,%d) (%v) overlap",
							g.Name(n), g.Name(r), a.lo, a.hi, a.e, b.lo, b.hi, b.e)
					}
				}
			}
		}
	}
}

// TestPCCEEquivalenceNoVirtual: with no virtual sites and no recursion,
// DeltaPath's ICC equals PCCE's NC on every node (Section 3.1: "when there
// is no virtual function in a program, ICC[n] = NC[n]").
func TestPCCEEquivalenceNoVirtual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40), false)
		entry, _ := g.Entry()
		dp, err := Encode(g, Options{})
		if err != nil {
			return false
		}
		pc, err := pcce.Encode(g, pcce.Options{})
		if err != nil {
			return false
		}
		for _, n := range g.Nodes() {
			icc := dp.ICC[n][entry]
			if n == entry {
				icc = 1
			}
			if icc != pc.NC[n] {
				t.Logf("seed %d: ICC[%s]=%d NC=%d", seed, g.Name(n), icc, pc.NC[n])
				return false
			}
		}
		// Addition values agree edge by edge.
		for e := range allEdges(g) {
			if dp.Spec.AV(e) != pc.Spec.AV(e) {
				t.Logf("seed %d: AV mismatch on %v: %d vs %d", seed, e, dp.Spec.AV(e), pc.Spec.AV(e))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func allEdges(g *callgraph.Graph) map[callgraph.Edge]bool {
	out := make(map[callgraph.Edge]bool)
	for _, n := range g.Nodes() {
		for _, e := range g.Out(n) {
			out[e] = true
		}
	}
	return out
}

// randomDAG builds a random layered DAG; when virtual is set, some sites
// dispatch to several targets.
func randomDAG(rng *rand.Rand, nodes int, virtual bool) *callgraph.Graph {
	g := callgraph.New()
	for i := 0; i < nodes; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), false)
	}
	g.SetEntry(0)
	var label int32
	for i := 1; i < nodes; i++ {
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			p := callgraph.NodeID(rng.Intn(i))
			if virtual && rng.Intn(3) == 0 && i+1 < nodes {
				// A virtual site in p dispatching to node i and a few
				// other nodes later than p.
				g.AddEdge(p, label, callgraph.NodeID(i))
				extra := 1 + rng.Intn(2)
				for x := 0; x < extra; x++ {
					q := int(p) + 1 + rng.Intn(nodes-int(p)-1)
					g.AddEdge(p, label, callgraph.NodeID(q))
				}
			} else {
				g.AddEdge(p, label, callgraph.NodeID(i))
			}
			label++
		}
	}
	return g
}

// TestPropertyRandomVirtualGraphs is the central correctness property:
// on random graphs with virtual dispatch, every context encodes uniquely
// and decodes exactly.
func TestPropertyRandomVirtualGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(25), true)
		res, err := Encode(g, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		exhaustiveCheck(t, g, res, 0, 12)
		assertDisjointRanges(t, g, res)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySmallWidthAnchors forces overflow anchors with tiny integer
// widths and re-checks correctness.
func TestPropertySmallWidthAnchors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 5+rng.Intn(25), true)
		res, err := Encode(g, Options{MaxID: 255}) // 8-bit encoding space
		if err != nil {
			// Width genuinely too small is a legal outcome; skip.
			return true
		}
		for _, m := range res.ICC {
			for _, v := range m {
				if v > 255 {
					t.Logf("seed %d: ICC %d exceeds MaxID", seed, v)
					return false
				}
			}
		}
		if res.MaxID > 254 {
			t.Logf("seed %d: MaxID %d exceeds limit", seed, res.MaxID)
			return false
		}
		exhaustiveCheck(t, g, res, 0, 12)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestOverflowAnchorsAdded builds a doubling diamond chain so that a small
// MaxID forces Algorithm 2 to add anchors, then round-trips.
func TestOverflowAnchorsAdded(t *testing.T) {
	g := callgraph.New()
	prev := []callgraph.NodeID{g.AddNode("main", false)}
	g.SetEntry(prev[0])
	var label int32
	for layer := 0; layer < 10; layer++ {
		var cur []callgraph.NodeID
		for i := 0; i < 2; i++ {
			n := g.AddNode(fmt.Sprintf("L%dN%d", layer, i), false)
			cur = append(cur, n)
			for _, p := range prev {
				g.AddEdge(p, label, n)
				label++
			}
		}
		prev = cur
	}
	res, err := Encode(g, Options{MaxID: 63})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OverflowAnchors) == 0 {
		t.Fatal("no overflow anchors added despite MaxID 63 on a 2^10-context graph")
	}
	if res.Restarts != len(res.OverflowAnchors) {
		t.Fatalf("restarts %d != anchors %d", res.Restarts, len(res.OverflowAnchors))
	}
	if res.MaxID > 63 {
		t.Fatalf("MaxID %d > 63", res.MaxID)
	}
	exhaustiveCheck(t, g, res, 0, 14)
	// Without a limit, the same graph needs no anchors.
	res2, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.OverflowAnchors) != 0 {
		t.Fatalf("anchors added at full width: %v", res2.OverflowAnchors)
	}
	// Layer k holds 2^k contexts per node; the deepest layer (9) holds
	// 2^9 = 512, so the largest ID is 511.
	if res2.MaxID != 1<<9-1 {
		t.Fatalf("full-width MaxID = %d, want %d", res2.MaxID, 1<<9-1)
	}
}

// TestRecursionWithVirtual mixes a virtual site with a recursive target.
func TestRecursionWithVirtual(t *testing.T) {
	g := callgraph.New()
	mainN := g.AddNode("main", false)
	f := g.AddNode("f", false)
	h := g.AddNode("h", false)
	k := g.AddNode("k", false)
	g.SetEntry(mainN)
	g.AddEdge(mainN, 0, f)
	g.AddEdge(f, 0, h) // virtual site in f...
	g.AddEdge(f, 0, f) // ...dispatching to h and recursively to f
	g.AddEdge(f, 1, k)
	g.AddEdge(h, 0, k)
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// f is a recursive-edge target: it must be a runtime anchor.
	if !res.Spec.Anchors[f] {
		t.Fatal("recursive target f is not a piece-start anchor")
	}
	exhaustiveCheck(t, g, res, 2, 12)
}

// TestEntryInRecursionCycle: the entry itself is re-entered recursively.
func TestEntryInRecursionCycle(t *testing.T) {
	g := callgraph.New()
	mainN := g.AddNode("main", false)
	f := g.AddNode("f", false)
	g.SetEntry(mainN)
	g.AddEdge(mainN, 0, f)
	g.AddEdge(f, 0, mainN) // back to main: main and f share an SCC
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spec.Anchors[mainN] {
		t.Fatal("recursively re-entered entry must be a runtime anchor")
	}
	exhaustiveCheck(t, g, res, 2, 10)
}

func TestWidthTooSmallError(t *testing.T) {
	// One caller with three distinct call sites to the same callee needs
	// an encoding space of 3 at the callee even when the caller is an
	// anchor, so MaxID 1 is fundamentally insufficient — anchoring cannot
	// split pressure that originates within a single territory.
	g := callgraph.New()
	mainN := g.AddNode("main", false)
	p := g.AddNode("p", false)
	sink := g.AddNode("sink", false)
	g.SetEntry(mainN)
	g.AddEdge(mainN, 0, p)
	g.AddEdge(p, 0, sink)
	g.AddEdge(p, 1, sink)
	g.AddEdge(p, 2, sink)
	if _, err := Encode(g, Options{MaxID: 1}); err == nil {
		t.Fatal("expected width-too-small error")
	}
	// MaxID 3 suffices (three unit-width ranges after anchoring p).
	if _, err := Encode(g, Options{MaxID: 3}); err != nil {
		t.Fatalf("MaxID 3 should suffice: %v", err)
	}
}

func TestNoEntryRejected(t *testing.T) {
	g := callgraph.New()
	g.AddNode("A", false)
	if _, err := Encode(g, Options{}); err == nil {
		t.Fatal("graph without entry accepted")
	}
}

// TestEdgeProfileOrdering: the hottest in-edge of each node is processed
// first and gets addition value 0; correctness is unchanged.
func TestEdgeProfileOrdering(t *testing.T) {
	g, ids := figure4()
	// Profile says CD (normally second, AV 1) is hotter than BD.
	profile := map[callgraph.Edge]uint64{
		{Caller: ids["C"], Callee: ids["D"], Label: 0}: 100,
		{Caller: ids["B"], Callee: ids["D"], Label: 0}: 1,
	}
	res, err := Encode(g, Options{EdgeProfile: profile})
	if err != nil {
		t.Fatal(err)
	}
	if av := res.Spec.SiteAV[callgraph.Site{Caller: ids["C"], Label: 0}]; av != 0 {
		t.Fatalf("hot edge CD has AV %d, want 0", av)
	}
	if av := res.Spec.SiteAV[callgraph.Site{Caller: ids["B"], Label: 0}]; av == 0 {
		t.Fatal("cold edge BD unexpectedly free")
	}
	exhaustiveCheck(t, g, res, 0, 16)
}

// TestBatchAnchorsCorrectAndFewerRestarts: the batched restart policy must
// preserve correctness while using far fewer restarts on graphs whose
// pressure crosses the limit across a wide frontier.
func TestBatchAnchorsCorrectAndFewerRestarts(t *testing.T) {
	// A wide doubling lattice: 3 nodes per layer, each called by all
	// nodes of the previous layer — no hubs, so the sequential policy
	// needs many anchors/restarts at a small width.
	g := callgraph.New()
	prev := []callgraph.NodeID{g.AddNode("main", false)}
	g.SetEntry(prev[0])
	var label int32
	for layer := 0; layer < 8; layer++ {
		var cur []callgraph.NodeID
		for i := 0; i < 3; i++ {
			n := g.AddNode(fmt.Sprintf("L%dN%d", layer, i), false)
			cur = append(cur, n)
			for _, p := range prev {
				g.AddEdge(p, label, n)
				label++
			}
		}
		prev = cur
	}
	seq, err := Encode(g, Options{MaxID: 63})
	if err != nil {
		t.Fatal(err)
	}
	bat, err := Encode(g, Options{MaxID: 63, BatchAnchors: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential: %d anchors, %d restarts; batched: %d anchors, %d restarts",
		len(seq.OverflowAnchors), seq.Restarts, len(bat.OverflowAnchors), bat.Restarts)
	if bat.Restarts >= seq.Restarts {
		t.Fatalf("batching did not reduce restarts: %d vs %d", bat.Restarts, seq.Restarts)
	}
	if bat.MaxID > 63 || seq.MaxID > 63 {
		t.Fatalf("limit violated: seq %d, batch %d", seq.MaxID, bat.MaxID)
	}
	exhaustiveCheck(t, g, bat, 0, 12)
}

// TestBatchAnchorsPropertyRandom: batched mode stays exact on random
// virtual-dispatch graphs at small widths.
func TestBatchAnchorsPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 5+rng.Intn(25), true)
		res, err := Encode(g, Options{MaxID: 127, BatchAnchors: true})
		if err != nil {
			return true // width genuinely too small: legal outcome
		}
		for _, m := range res.ICC {
			for _, v := range m {
				if v > 127 {
					return false
				}
			}
		}
		exhaustiveCheck(t, g, res, 0, 12)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSpecValidateProperty: every spec the algorithm produces passes the
// machine-checked range-disjointness audit; a corrupted spec fails it.
func TestSpecValidateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 3+rng.Intn(30), true)
		res, err := Encode(g, Options{MaxID: 4095})
		if err != nil {
			return true
		}
		if err := res.Spec.Validate(res.ICC); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidateDetectsCorruption(t *testing.T) {
	g, ids := figure4()
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Spec.Validate(res.ICC); err != nil {
		t.Fatalf("clean spec rejected: %v", err)
	}
	// Corrupt one addition value so two ranges collide.
	site := callgraph.Site{Caller: ids["F"], Label: 0} // AV[FG] = 9
	res.Spec.SiteAV[site] = 0                          // collides with EG's range
	if err := res.Spec.Validate(res.ICC); err == nil {
		t.Fatal("corrupted spec passed validation")
	}
}
