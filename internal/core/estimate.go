package core

import (
	"fmt"
	"math/big"

	"deltapath/internal/callgraph"
)

// EstimateSpace computes, with arbitrary-precision integers, the encoding
// space the graph would need without any overflow anchors: the largest
// encoding ID any context could take when only the entry and the
// recursive-edge targets start pieces. This is Table 1's "max. ID" column,
// which for the largest SPECjvm programs exceeds a 64-bit integer — the
// very observation motivating Algorithm 2.
//
// It mirrors Encode's pass exactly, substituting big.Int arithmetic for
// uint64 and never overflowing; the equivalence is property-tested against
// Encode on graphs that fit in uint64.
//
// The second result is the number of bits required (bit length of the
// space bound), handy for "needs N-bit integers" reporting.
func EstimateSpace(g *callgraph.Graph) (*big.Int, int, error) {
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	entry, _ := g.Entry()
	rec := g.RecursiveEdges()
	topo, err := g.TopoOrder(rec)
	if err != nil {
		return nil, 0, fmt.Errorf("core: %w", err)
	}
	an := map[callgraph.NodeID]bool{entry: true}
	for e := range rec {
		an[e.Callee] = true
	}
	for _, n := range g.ContextRoots() {
		an[n] = true
	}
	resets := resetAnchors(an, entry, recursiveEntry(rec, entry))

	p := &pass{
		nanchors: make(map[callgraph.NodeID][]callgraph.NodeID),
		eanchors: make(map[callgraph.Edge][]callgraph.NodeID),
	}
	identifyTerritories(g, rec, an, resets, p)

	one := big.NewInt(1)
	cav := make(map[callgraph.NodeID]map[callgraph.NodeID]*big.Int)
	icc := make(map[callgraph.NodeID]map[callgraph.NodeID]*big.Int)
	for n, anchors := range p.nanchors {
		m := make(map[callgraph.NodeID]*big.Int, len(anchors))
		for _, r := range anchors {
			m[r] = big.NewInt(0)
		}
		cav[n] = m
	}
	maxCAV := big.NewInt(0)
	processed := make(map[callgraph.Site]bool)

	for _, n := range topo {
		for _, e := range g.ForwardIn(n, rec) {
			cs := e.Site()
			if processed[cs] {
				continue
			}
			processed[cs] = true
			a := big.NewInt(0)
			targets := g.SiteTargets(cs)
			for _, te := range targets {
				if rec[te] {
					continue
				}
				for _, r := range p.eanchors[te] {
					if v := cav[te.Callee][r]; v.Cmp(a) > 0 {
						a = v
					}
				}
			}
			a = new(big.Int).Set(a)
			for _, te := range targets {
				if rec[te] {
					continue
				}
				iccP := icc[te.Caller]
				for _, r := range p.eanchors[te] {
					w := iccP[r]
					if w == nil {
						w = big.NewInt(0)
					}
					v := new(big.Int).Add(w, a)
					cav[te.Callee][r] = v
					if v.Cmp(maxCAV) > 0 {
						maxCAV = v
					}
				}
			}
		}
		if resets[n] {
			icc[n] = map[callgraph.NodeID]*big.Int{n: one}
		} else if cavN := cav[n]; len(cavN) > 0 {
			m := make(map[callgraph.NodeID]*big.Int, len(cavN))
			for r, v := range cavN {
				m[r] = v
			}
			if an[n] {
				m[n] = one // non-resetting entry: reserved width of 1
			}
			icc[n] = m
		}
	}
	maxValue := new(big.Int).Set(maxCAV)
	if maxValue.Sign() > 0 {
		maxValue.Sub(maxValue, one) // exclusive bound -> largest ID
	}
	return maxValue, maxValue.BitLen(), nil
}

// FormatSpace renders a space bound the way Table 1 does: small numbers in
// full, large ones in scientific notation with one decimal (e.g. "4.4e21").
func FormatSpace(v *big.Int) string {
	if v.BitLen() <= 13 { // < 8192: print exactly
		return v.String()
	}
	f := new(big.Float).SetInt(v)
	return fmt.Sprintf("%.1e", f)
}
