package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"deltapath/internal/analysisio"
	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/cpt"
	"deltapath/internal/workload"
)

// encodeBoth runs the serial reference engine and the parallel engine on
// the same graph and options, with the parallel engine forced on via a
// negative threshold.
func encodeBoth(t *testing.T, g *callgraph.Graph, opts Options, workers int) (*Result, *Result) {
	t.Helper()
	serialOpts := opts
	serialOpts.Workers = 1
	serial, err := Encode(g, serialOpts)
	if err != nil {
		t.Fatalf("serial Encode: %v", err)
	}
	parOpts := opts
	parOpts.Workers = workers
	parOpts.ParThreshold = -1
	par, err := Encode(g, parOpts)
	if err != nil {
		t.Fatalf("parallel Encode: %v", err)
	}
	if par.Stats == nil || par.Stats.Par != workers || par.Stats.Levels == 0 {
		t.Fatalf("parallel engine did not engage: stats %+v", par.Stats)
	}
	return serial, par
}

// assertIdentical compares every analysis output the two engines must agree
// on, including the serialized .dpa bytes and the call-path-tracking SIDs.
func assertIdentical(t *testing.T, g *callgraph.Graph, serial, par *Result) {
	t.Helper()
	if !reflect.DeepEqual(serial.Spec.SiteAV, par.Spec.SiteAV) {
		t.Errorf("SiteAV diverged: serial %d sites, parallel %d sites",
			len(serial.Spec.SiteAV), len(par.Spec.SiteAV))
	}
	if !reflect.DeepEqual(serial.Spec.Anchors, par.Spec.Anchors) {
		t.Errorf("Anchors diverged: %v vs %v", serial.Spec.Anchors, par.Spec.Anchors)
	}
	if !reflect.DeepEqual(serial.Spec.Push, par.Spec.Push) {
		t.Errorf("Push diverged")
	}
	if !reflect.DeepEqual(serial.ICC, par.ICC) {
		t.Errorf("ICC diverged")
	}
	if !reflect.DeepEqual(serial.NAnchors, par.NAnchors) {
		t.Errorf("NAnchors diverged")
	}
	if !reflect.DeepEqual(serial.PieceStarts, par.PieceStarts) {
		t.Errorf("PieceStarts diverged: %v vs %v", serial.PieceStarts, par.PieceStarts)
	}
	if !reflect.DeepEqual(serial.OverflowAnchors, par.OverflowAnchors) {
		t.Errorf("OverflowAnchors diverged: %v vs %v", serial.OverflowAnchors, par.OverflowAnchors)
	}
	if serial.Restarts != par.Restarts {
		t.Errorf("Restarts diverged: %d vs %d", serial.Restarts, par.Restarts)
	}
	if serial.MaxID != par.MaxID {
		t.Errorf("MaxID diverged: %d vs %d", serial.MaxID, par.MaxID)
	}
	if !reflect.DeepEqual(serial.inc.cav, par.inc.cav) {
		t.Errorf("incState.cav diverged")
	}
	if !reflect.DeepEqual(serial.inc.eanchors, par.inc.eanchors) {
		t.Errorf("incState.eanchors diverged")
	}

	// SIDs depend only on the graph, but the scale pipeline saves them
	// next to the spec — assert the full .dpa byte stream is identical.
	plan := cpt.Compute(g)
	var sb, pb bytes.Buffer
	if err := analysisio.Save(&sb, serial.Spec, plan); err != nil {
		t.Fatalf("Save(serial): %v", err)
	}
	if err := analysisio.Save(&pb, par.Spec, plan); err != nil {
		t.Fatalf("Save(parallel): %v", err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Errorf(".dpa bytes diverged: %d vs %d bytes", sb.Len(), pb.Len())
	}
}

// TestParallelSerialDifferential proves the two engines equivalent over the
// whole generated corpus, under both encoding settings and for worker
// counts bracketing the GOMAXPROCS ∈ {1, 4} CI matrix.
func TestParallelSerialDifferential(t *testing.T) {
	suite := workload.Suite()
	if testing.Short() {
		suite = suite[:5]
	}
	for _, params := range suite {
		for _, setting := range []cha.Setting{cha.EncodingAll, cha.EncodingApplication} {
			params, setting := params, setting
			t.Run(fmt.Sprintf("%s/setting%d", params.Name, setting), func(t *testing.T) {
				prog, err := params.Generate()
				if err != nil {
					t.Fatalf("Generate: %v", err)
				}
				build, err := cha.Build(prog, cha.Options{Setting: setting})
				if err != nil {
					t.Fatalf("cha.Build: %v", err)
				}
				for _, workers := range []int{2, 4} {
					serial, par := encodeBoth(t, build.Graph, Options{}, workers)
					assertIdentical(t, build.Graph, serial, par)
				}
			})
		}
	}
}

// layeredTestGraph builds a random layered DAG whose node IDs interleave
// across layers — the shape where the Kahn order diverges most from a
// naive level order — with virtual fan-out sites and a few recursion
// pockets. Deterministic per seed.
func layeredTestGraph(seed int64, nodes, layers int) *callgraph.Graph {
	rnd := rand.New(rand.NewSource(seed))
	g := callgraph.New()
	// Interleave: node i lands in layer i % layers, so IDs do not follow
	// the layer structure.
	var byLayer [][]callgraph.NodeID
	byLayer = make([][]callgraph.NodeID, layers)
	entry := g.AddNode("entry", false)
	g.SetEntry(entry)
	byLayer[0] = append(byLayer[0], entry)
	for i := 1; i < nodes; i++ {
		id := g.AddNode(fmt.Sprintf("f%d", i), false)
		byLayer[1+rnd.Intn(layers-1)] = append(byLayer[1+rnd.Intn(layers-1)], id)
	}
	label := func(n callgraph.NodeID) int32 { return int32(len(g.Out(n))) + 100 }
	for l := 0; l < layers-1; l++ {
		for _, n := range byLayer[l] {
			// Every node calls 1–3 sites into later layers; some sites
			// are virtual with 2–3 targets.
			for s := 0; s < 1+rnd.Intn(3); s++ {
				tl := l + 1 + rnd.Intn(layers-l-1)
				if len(byLayer[tl]) == 0 {
					continue
				}
				lab := label(n)
				for k := 0; k < 1+rnd.Intn(3); k++ {
					g.AddEdge(n, lab, byLayer[tl][rnd.Intn(len(byLayer[tl]))])
				}
			}
		}
	}
	// Coverage: every non-entry node gets a caller from an earlier layer.
	for l := 1; l < layers; l++ {
		for _, n := range byLayer[l] {
			if len(g.In(n)) > 0 {
				continue
			}
			pl := rnd.Intn(l)
			for len(byLayer[pl]) == 0 {
				pl = rnd.Intn(l)
			}
			c := byLayer[pl][rnd.Intn(len(byLayer[pl]))]
			g.AddEdge(c, label(c), n)
		}
	}
	// Recursion pockets: a few mutual 2-cycles.
	for i := 0; i < 3; i++ {
		l := 1 + rnd.Intn(layers-1)
		if len(byLayer[l]) < 2 {
			continue
		}
		a := byLayer[l][rnd.Intn(len(byLayer[l]))]
		b := byLayer[l][rnd.Intn(len(byLayer[l]))]
		g.AddEdge(a, label(a), b)
		g.AddEdge(b, label(b), a)
	}
	return g
}

// TestParallelRandomGraphs sweeps random layered DAGs across MaxID widths
// small enough to trigger Algorithm 2's restart loop, in both restart
// policies, asserting engine equivalence each time.
func TestParallelRandomGraphs(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		g := layeredTestGraph(seed, 120, 8)
		for _, maxID := range []uint64{0, 1 << 20, 4096, 255} {
			for _, batch := range []bool{false, true} {
				opts := Options{MaxID: maxID, BatchAnchors: batch}
				name := fmt.Sprintf("seed%d/max%d/batch%v", seed, maxID, batch)
				t.Run(name, func(t *testing.T) {
					serialOpts := opts
					serialOpts.Workers = 1
					serial, serr := Encode(g, serialOpts)
					parOpts := opts
					parOpts.Workers = 4
					parOpts.ParThreshold = -1
					par, perr := Encode(g, parOpts)
					if (serr == nil) != (perr == nil) {
						t.Fatalf("error divergence: serial %v, parallel %v", serr, perr)
					}
					if serr != nil {
						// Both engines must reject the width identically.
						if serr.Error() != perr.Error() {
							t.Fatalf("error text diverged: %q vs %q", serr, perr)
						}
						return
					}
					assertIdentical(t, g, serial, par)
				})
			}
		}
	}
}

// TestParallelEdgeProfile checks the hottest-first in-edge ordering is
// honored by the parallel schedule: the profile changes site assignment,
// and both engines must agree on the result.
func TestParallelEdgeProfile(t *testing.T) {
	g := layeredTestGraph(42, 80, 6)
	profile := make(map[callgraph.Edge]uint64)
	rnd := rand.New(rand.NewSource(99))
	for _, n := range g.Nodes() {
		for _, e := range g.Out(n) {
			profile[e] = uint64(rnd.Intn(1000))
		}
	}
	serial, par := encodeBoth(t, g, Options{EdgeProfile: profile}, 4)
	assertIdentical(t, g, serial, par)
}

// TestParallelForcedAnchors reproduces the hybrid-encoding mode: forced
// anchors reset the runtime encoding and reshape every territory.
func TestParallelForcedAnchors(t *testing.T) {
	g := layeredTestGraph(7, 100, 7)
	forced := []callgraph.NodeID{5, 17, 33}
	serial, par := encodeBoth(t, g, Options{ForceAnchors: forced}, 4)
	assertIdentical(t, g, serial, par)
}

// TestParallelFigure4 pins the paper's worked example through the parallel
// engine — tiny graph, every AV checked by the serial tests already.
func TestParallelFigure4(t *testing.T) {
	g, _ := figure4()
	serial, par := encodeBoth(t, g, Options{}, 2)
	assertIdentical(t, g, serial, par)
}

// TestEffectiveWorkers pins the fallback policy: serial when forced, when
// auto-capped by GOMAXPROCS==1, or when the graph is below the threshold.
func TestEffectiveWorkers(t *testing.T) {
	if got := effectiveWorkers(Options{Workers: 1}, 1<<20); got != 1 {
		t.Errorf("Workers=1 must force serial, got %d", got)
	}
	if got := effectiveWorkers(Options{Workers: 4}, 100); got != 1 {
		t.Errorf("below-threshold graph must fall back to serial, got %d", got)
	}
	if got := effectiveWorkers(Options{Workers: 4, ParThreshold: -1}, 100); got != 4 {
		t.Errorf("negative threshold must remove the size gate, got %d", got)
	}
	if got := effectiveWorkers(Options{Workers: 4}, 1<<20); got != 4 {
		t.Errorf("explicit workers on a huge graph, got %d", got)
	}
}

// TestParallelStatsMemory checks MeasureMemory populates the budget fields.
func TestParallelStatsMemory(t *testing.T) {
	g := layeredTestGraph(3, 60, 5)
	res, err := Encode(g, Options{Workers: 2, ParThreshold: -1, MeasureMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil || st.PeakBytes == 0 || st.BytesPerNode <= 0 {
		t.Fatalf("memory stats not collected: %+v", st)
	}
	if st.Nodes != g.NumNodes() || st.Edges != g.NumEdges() || st.Sites != g.NumSites() {
		t.Fatalf("shape stats wrong: %+v", st)
	}
}
