// Level-parallel analysis engine for huge graphs (10⁵–10⁶ nodes).
//
// The serial reference pass (runOnce) processes call sites in the graph's
// canonical Kahn order and every downstream consumer — golden files, .dpa
// fixtures, Extend's bit-exact replay — depends on the addition values that
// order produces. The parallel engine therefore does NOT re-order the
// computation; it extracts the dependency structure of the *same* schedule
// and runs independent portions concurrently:
//
//   - task(n) = "process node n's first-encountered sites in serial order,
//     then n's ICC is final". One task per node.
//   - task(m) must precede task(n) when n reads m's ICC (m is the caller of
//     a site assigned to n), or when both touch the CAV row of some node t
//     (all touchers of t are serialized in their serial relative order; the
//     last toucher of t is task(t) itself, because every site targeting t
//     is assigned at a node no later than t in the Kahn order).
//   - Waves are the longest-path levels of that task DAG. Within a wave,
//     tasks touch pairwise-disjoint CAV rows and read only ICCs finalized
//     in earlier waves, so they commute: any interleaving produces exactly
//     the serial result, regardless of worker count. Equivalence is also
//     proven empirically corpus-wide by TestParallelSerialDifferential.
//
// The engine keeps its hot state in compact int32 CSR arrays (anchor rows,
// edge territories, CAV cells in one backing slice) instead of the serial
// pass's nested maps; ICC is never materialized during the sweep — reads
// reconstruct it from the frozen CAV row and the anchor flags, which is
// exactly how the serial pass builds the ICC map. On success the arrays are
// converted into the ordinary *pass shape, so Result, incState and Extend
// are byte-for-byte indistinguishable from the serial engine's output.
package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"deltapath/internal/callgraph"
)

// AnalysisStats reports the scalability characteristics of one Encode run,
// in the style of ExtendStats. Populated on every successful Encode;
// PeakBytes/BytesPerNode only when Options.MeasureMemory is set.
type AnalysisStats struct {
	Nodes   int `json:"nodes"`
	Edges   int `json:"edges"`
	Sites   int `json:"sites"`
	Anchors int `json:"anchors"` // piece starts in the final pass

	// Levels is the number of conflict waves the parallel schedule found
	// (the depth of the task-dependency DAG). 0 when the legacy serial
	// path ran: the serial sweep has no wave structure to report.
	Levels int `json:"levels"`

	// Par is the worker count the analysis ran with (1 = serial).
	Par int `json:"par"`

	// PeakBytes is the high-water live-heap mark observed at engine
	// checkpoints (after territory construction, after each pass, after
	// Result assembly). It includes the input graph itself — that is the
	// honest budget an operator must provision. BytesPerNode divides by
	// the node count.
	PeakBytes    uint64  `json:"peak_bytes"`
	BytesPerNode float64 `json:"bytes_per_node"`
}

const (
	// defaultParThreshold is the node count below which auto mode
	// (Options.Workers == 0) keeps the serial engine: wave scheduling
	// only pays for itself on huge graphs, and every existing workload
	// stays on the reference path by default.
	defaultParThreshold = 32 << 10

	// maxAutoWorkers caps auto mode; the wave executor's per-task work is
	// small, so very wide pools only add barrier traffic.
	maxAutoWorkers = 8

	// waveChunk is the number of wave tasks a worker claims per cursor
	// bump.
	waveChunk = 128
)

// effectiveWorkers resolves Options.Workers against GOMAXPROCS and the node
// threshold. Workers == 1 always forces serial; auto mode (0) is serial when
// GOMAXPROCS == 1 or the graph is below the threshold; ParThreshold < 0
// removes the size gate (used by the differential tests on small graphs).
func effectiveWorkers(opts Options, nodes int) int {
	if opts.Workers == 1 {
		return 1
	}
	thr := opts.ParThreshold
	if thr == 0 {
		thr = defaultParThreshold
	}
	if thr > 0 && nodes < thr {
		return 1
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > maxAutoWorkers {
			w = maxAutoWorkers
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// memPeak samples the live heap at engine checkpoints when enabled.
type memPeak struct {
	enabled bool
	peak    uint64
}

func (m *memPeak) sample() {
	if !m.enabled {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > m.peak {
		m.peak = ms.HeapAlloc
	}
}

// parEngine holds everything that depends only on the graph, the recursive
// edge set and the (optional) edge profile — built once and reused across
// Algorithm 2's restarts. Anchor-dependent state lives in parRun.
type parEngine struct {
	g       *callgraph.Graph
	rec     map[callgraph.Edge]bool
	workers int

	numNodes int
	numEdges int

	// Out-edge CSR in AddEdge order: the dense edge index space every
	// other array is keyed by. The caller of edge ei is the row it lies
	// in; only callee/label/rec need explicit storage.
	outStart   []int32
	edgeCallee []int32
	edgeLabel  []int32
	edgeRec    []bool

	// Dense site table in callgraph.Sites() order.
	siteList  []callgraph.Site
	siteOff   []int32 // site -> span in siteEdges (targets, insertion order)
	siteEdges []int32

	// Schedule: the serial sweep's site-to-node assignment. taskBuf holds
	// dense site IDs in global serial processing order (so a site's index
	// in taskBuf is its canonical sequence number, used to merge overflow
	// events back into serial discovery order).
	taskStart []int32
	taskEnd   []int32
	taskBuf   []int32
	sitePos   []int32 // site -> sequence number, -1 if never processed

	// Waves: task-DAG levels, each wave in topo order.
	waves  [][]callgraph.NodeID
	levels int
}

// newParEngine flattens the graph and computes the wave schedule.
func newParEngine(g *callgraph.Graph, topo []callgraph.NodeID, rec map[callgraph.Edge]bool,
	profile map[callgraph.Edge]uint64, workers int) *parEngine {

	nn := g.NumNodes()
	ne := g.NumEdges()
	eng := &parEngine{
		g: g, rec: rec, workers: workers,
		numNodes:   nn,
		numEdges:   ne,
		outStart:   make([]int32, nn+1),
		edgeCallee: make([]int32, ne),
		edgeLabel:  make([]int32, ne),
		edgeRec:    make([]bool, ne),
	}

	// Out-edge CSR + transient edge-to-index map (released after build).
	edgeIdx := make(map[callgraph.Edge]int32, ne)
	pos := int32(0)
	for n := 0; n < nn; n++ {
		eng.outStart[n] = pos
		for _, e := range g.Out(callgraph.NodeID(n)) {
			eng.edgeCallee[pos] = int32(e.Callee)
			eng.edgeLabel[pos] = e.Label
			eng.edgeRec[pos] = rec[e]
			edgeIdx[e] = pos
			pos++
		}
	}
	eng.outStart[nn] = pos

	// Dense site table.
	sites := g.Sites()
	eng.siteList = sites
	sid := make(map[callgraph.Site]int32, len(sites))
	eng.siteOff = make([]int32, len(sites)+1)
	total := int32(0)
	for i, s := range sites {
		sid[s] = int32(i)
		eng.siteOff[i] = total
		total += int32(len(g.SiteTargets(s)))
	}
	eng.siteOff[len(sites)] = total
	eng.siteEdges = make([]int32, total)
	pos = 0
	for _, s := range sites {
		for _, e := range g.SiteTargets(s) {
			eng.siteEdges[pos] = edgeIdx[e]
			pos++
		}
	}

	// Schedule: replicate the serial sweep's site assignment exactly —
	// first-encountered target in Kahn order, in-edges in orderIn order.
	eng.taskStart = make([]int32, nn)
	eng.taskEnd = make([]int32, nn)
	eng.taskBuf = make([]int32, 0, len(sites))
	eng.sitePos = make([]int32, len(sites))
	for i := range eng.sitePos {
		eng.sitePos[i] = -1
	}
	for _, n := range topo {
		eng.taskStart[n] = int32(len(eng.taskBuf))
		for _, e := range orderIn(g.ForwardIn(n, rec), profile) {
			s := sid[e.Site()]
			if eng.sitePos[s] >= 0 {
				continue
			}
			eng.sitePos[s] = int32(len(eng.taskBuf))
			eng.taskBuf = append(eng.taskBuf, s)
		}
		eng.taskEnd[n] = int32(len(eng.taskBuf))
	}

	eng.buildWaves(topo)
	return eng
}

// buildWaves computes each task's DAG level in one pass over the serial
// order. The constraints are exactly the conflict structure described in
// the package comment:
//
//   - task(n) runs after the previous toucher of every CAV row its sites
//     read or write (including row n itself, which its ICC finalization
//     reads),
//   - and after task(caller) for every assigned site with a forward
//     target, whose ICC the increment computation reads.
//
// All constraint sources precede n in the serial order, so level[] is
// complete when read. The constraints are anchor-independent (they assume
// every edge's territory list is non-empty), which over-serializes some
// restarts slightly but lets the schedule be built once.
func (eng *parEngine) buildWaves(topo []callgraph.NodeID) {
	level := make([]int32, eng.numNodes)
	lastTouch := make([]int32, eng.numNodes)
	for i := range lastTouch {
		lastTouch[i] = -1
	}
	touched := make([]int32, 0, 64)
	maxLevel := int32(0)
	for _, n := range topo {
		lvl := int32(0)
		touched = touched[:0]
		if lt := lastTouch[n]; lt >= lvl {
			lvl = lt + 1
		}
		touched = append(touched, int32(n))
		for _, s := range eng.taskBuf[eng.taskStart[n]:eng.taskEnd[n]] {
			hasForward := false
			for _, ei := range eng.siteEdges[eng.siteOff[s]:eng.siteOff[s+1]] {
				if eng.edgeRec[ei] {
					continue
				}
				hasForward = true
				t := eng.edgeCallee[ei]
				if lt := lastTouch[t]; lt >= lvl {
					lvl = lt + 1
				}
				touched = append(touched, t)
			}
			if hasForward {
				if lc := level[eng.siteList[s].Caller]; lc >= lvl {
					lvl = lc + 1
				}
			}
		}
		level[n] = lvl
		for _, t := range touched {
			lastTouch[t] = lvl
		}
		if lvl > maxLevel {
			maxLevel = lvl
		}
	}

	eng.levels = int(maxLevel) + 1
	counts := make([]int32, eng.levels)
	for _, n := range topo {
		counts[level[n]]++
	}
	eng.waves = make([][]callgraph.NodeID, eng.levels)
	for l := range eng.waves {
		eng.waves[l] = make([]callgraph.NodeID, 0, counts[l])
	}
	for _, n := range topo {
		eng.waves[level[n]] = append(eng.waves[level[n]], n)
	}
}

// overEvent is one overflow discovery, stamped with the canonical sequence
// number of the site that produced it so per-worker events merge back into
// serial discovery order.
type overEvent struct {
	seq    int32
	caller callgraph.NodeID
}

// parRun is one anchor-set attempt: the parallel counterpart of runOnce.
type parRun struct {
	eng     *parEngine
	anB     []bool
	resetsB []bool
	maxID   uint64
	batch   bool

	// Territory CSR: per node the sorted anchors reaching it, per edge the
	// sorted anchors whose territory contains it. cavBuf is the CAV cell
	// per (node, anchor) pair, aligned with nanchBuf; deadBuf (batch mode
	// only) marks killed cells the same way.
	nanchOff []int32
	nanchBuf []int32
	eanchOff []int32
	eanchBuf []int32
	cavBuf   []uint64
	deadBuf  []bool

	av    []uint64
	avSet []bool

	// Per-worker accumulators, merged after the sweep.
	maxCAV  []uint64
	overMin []map[callgraph.NodeID]int32 // batch: caller -> min seq
	firstOv []overEvent                  // non-batch: min-seq event, seq<0 = none
}

// runOnce runs one parallel pass. Result contract matches the serial
// runOnce: (pass, nil, true) on success, (nil, callers, false) on overflow
// with callers in serial discovery order.
func (eng *parEngine) runOnce(an, resets map[callgraph.NodeID]bool, maxID uint64,
	batch bool, mem *memPeak) (*pass, []callgraph.NodeID, bool) {

	run := &parRun{
		eng:     eng,
		anB:     make([]bool, eng.numNodes),
		resetsB: make([]bool, eng.numNodes),
		maxID:   maxID,
		batch:   batch,
		av:      make([]uint64, len(eng.siteList)),
		avSet:   make([]bool, len(eng.siteList)),
		maxCAV:  make([]uint64, eng.workers),
	}
	for n := range an {
		run.anB[n] = true
	}
	for n := range resets {
		run.resetsB[n] = true
	}

	anchors := make([]callgraph.NodeID, 0, len(an))
	for r := range an {
		anchors = append(anchors, r)
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i] < anchors[j] })

	run.buildTerritories(anchors)
	if batch {
		run.deadBuf = make([]bool, len(run.cavBuf))
	}
	mem.sample()

	run.overMin = make([]map[callgraph.NodeID]int32, eng.workers)
	run.firstOv = make([]overEvent, eng.workers)
	for w := range run.firstOv {
		run.firstOv[w] = overEvent{seq: -1}
		run.overMin[w] = map[callgraph.NodeID]int32{}
	}

	run.exec()
	mem.sample()

	if !batch {
		best := overEvent{seq: -1}
		for _, ev := range run.firstOv {
			if ev.seq >= 0 && (best.seq < 0 || ev.seq < best.seq) {
				best = ev
			}
		}
		if best.seq >= 0 {
			return nil, []callgraph.NodeID{best.caller}, false
		}
	} else {
		merged := map[callgraph.NodeID]int32{}
		for _, m := range run.overMin {
			for c, seq := range m {
				if prev, ok := merged[c]; !ok || seq < prev {
					merged[c] = seq
				}
			}
		}
		if len(merged) > 0 {
			callers := make([]callgraph.NodeID, 0, len(merged))
			for c := range merged {
				callers = append(callers, c)
			}
			sort.Slice(callers, func(i, j int) bool { return merged[callers[i]] < merged[callers[j]] })
			return nil, callers, false
		}
	}

	p := run.toPass()
	mem.sample()
	return p, nil, true
}

// buildTerritories runs every anchor's bounded DFS concurrently (work-stolen
// off a shared cursor, each worker with its own epoch-stamped visited array)
// and merges the per-anchor node/edge lists into sorted CSR rows: anchors
// are merged in ascending order, so each row lists its anchors sorted —
// the same lists the serial territoryDFS builds, and binary-searchable.
func (run *parRun) buildTerritories(anchors []callgraph.NodeID) {
	eng := run.eng
	terrNodes := make([][]int32, len(anchors))
	terrEdges := make([][]int32, len(anchors))

	var cursor atomic.Int64
	var wg sync.WaitGroup
	workers := eng.workers
	if workers > len(anchors) {
		workers = len(anchors)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			visited := make([]int32, eng.numNodes) // epoch = anchor index + 1
			var stack []int32
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(anchors) {
					return
				}
				r := int32(anchors[i])
				epoch := int32(i) + 1
				nodes := []int32{r}
				var edges []int32
				visited[r] = epoch
				stack = append(stack[:0], r)
				for len(stack) > 0 {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if v != r && run.resetsB[v] {
						continue // boundary anchor: in the territory, not traversed
					}
					for ei := eng.outStart[v]; ei < eng.outStart[v+1]; ei++ {
						if eng.edgeRec[ei] {
							continue
						}
						edges = append(edges, ei)
						t := eng.edgeCallee[ei]
						if visited[t] != epoch {
							visited[t] = epoch
							nodes = append(nodes, t)
							stack = append(stack, t)
						}
					}
				}
				terrNodes[i] = nodes
				terrEdges[i] = edges
			}
		}()
	}
	wg.Wait()

	nanchCnt := make([]int32, eng.numNodes)
	eanchCnt := make([]int32, eng.numEdges)
	var nTotal, eTotal int32
	for i := range anchors {
		for _, n := range terrNodes[i] {
			nanchCnt[n]++
		}
		for _, ei := range terrEdges[i] {
			eanchCnt[ei]++
		}
		nTotal += int32(len(terrNodes[i]))
		eTotal += int32(len(terrEdges[i]))
	}
	run.nanchOff = make([]int32, eng.numNodes+1)
	run.eanchOff = make([]int32, eng.numEdges+1)
	var acc int32
	for n := 0; n < eng.numNodes; n++ {
		run.nanchOff[n] = acc
		acc += nanchCnt[n]
	}
	run.nanchOff[eng.numNodes] = acc
	acc = 0
	for ei := 0; ei < eng.numEdges; ei++ {
		run.eanchOff[ei] = acc
		acc += eanchCnt[ei]
	}
	run.eanchOff[eng.numEdges] = acc

	run.nanchBuf = make([]int32, nTotal)
	run.eanchBuf = make([]int32, eTotal)
	nFill := make([]int32, eng.numNodes)
	copy(nFill, run.nanchOff[:eng.numNodes])
	eFill := make([]int32, eng.numEdges)
	copy(eFill, run.eanchOff[:eng.numEdges])
	for i, r := range anchors {
		for _, n := range terrNodes[i] {
			run.nanchBuf[nFill[n]] = int32(r)
			nFill[n]++
		}
		for _, ei := range terrEdges[i] {
			run.eanchBuf[eFill[ei]] = int32(r)
			eFill[ei]++
		}
	}
	run.cavBuf = make([]uint64, nTotal) // CAV[n][r] starts at 0
}

// cavIdx returns the cavBuf position of cell (n, r), or -1 when r's
// territory does not contain n. Rows are sorted; binary search.
func (run *parRun) cavIdx(n, r int32) int32 {
	lo, hi := run.nanchOff[n], run.nanchOff[n+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if run.nanchBuf[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < run.nanchOff[n+1] && run.nanchBuf[lo] == r {
		return lo
	}
	return -1
}

// iccRead reconstructs ICC[c][r] exactly as the serial pass's icc map would
// hold it at the moment a later node reads it: resetting anchors expose
// {c: 1}; otherwise the frozen CAV row, with dead cells absent and the
// reserved 1 of a non-resetting piece start (the entry) overriding its own
// cell. Absent cells read as 0, matching the serial map lookup.
func (run *parRun) iccRead(c, r int32) uint64 {
	if run.resetsB[c] {
		if r == c {
			return 1
		}
		return 0
	}
	if run.anB[c] && r == c {
		return 1
	}
	ci := run.cavIdx(c, r)
	if ci < 0 {
		return 0
	}
	if run.batch && run.deadBuf[ci] {
		return 0
	}
	return run.cavBuf[ci]
}

// exec runs the wave schedule: a barrier between waves, a work-stealing
// cursor within each. A failed pass always runs to completion: the serial
// engine stops at its first overflow, but the first overflow in sequence
// order can sit anywhere in the wave schedule, so every event is collected
// and the minimum-sequence one reproduces the serial promotion. That is
// sound because each site's inputs flow only from strictly
// smaller-sequence sites (the conflict chains and ICC deps both point
// backward in sequence order), so every site below the minimal overflow
// computes clean serial values regardless of how later overflows were
// handled.
func (run *parRun) exec() {
	for _, wave := range run.eng.waves {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < run.eng.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(cursor.Add(waveChunk)) - waveChunk
					if i >= len(wave) {
						return
					}
					end := i + waveChunk
					if end > len(wave) {
						end = len(wave)
					}
					for _, n := range wave[i:end] {
						run.task(int32(n), w)
					}
				}
			}(w)
		}
		wg.Wait()
	}
}

// task processes node n's assigned sites in serial order. ICC finalization
// needs no work at run time: the CAV row freezes here by schedule
// construction, and iccRead reconstructs the map the serial pass would
// build from it.
func (run *parRun) task(n int32, w int) {
	eng := run.eng
	for _, s := range eng.taskBuf[eng.taskStart[n]:eng.taskEnd[n]] {
		run.av[s] = run.calcIncrement(s, w)
		run.avSet[s] = true
	}
}

// calcIncrement is the parallel calculateIncrement: same maximum over the
// targets' live CAV cells, same ICC-plus-increment writes, same overflow
// bookkeeping (batch mode kills the range; either mode records the event
// with its sequence number and keeps sweeping).
func (run *parRun) calcIncrement(s int32, w int) uint64 {
	eng := run.eng
	row := eng.siteEdges[eng.siteOff[s]:eng.siteOff[s+1]]

	var a uint64
	for _, ei := range row {
		if eng.edgeRec[ei] {
			continue
		}
		t := eng.edgeCallee[ei]
		for k := run.eanchOff[ei]; k < run.eanchOff[ei+1]; k++ {
			ci := run.cavIdx(t, run.eanchBuf[k])
			if run.batch && run.deadBuf[ci] {
				continue
			}
			if v := run.cavBuf[ci]; v > a {
				a = v
			}
		}
	}

	caller := int32(eng.siteList[s].Caller)
	for _, ei := range row {
		if eng.edgeRec[ei] {
			continue
		}
		t := eng.edgeCallee[ei]
		for k := run.eanchOff[ei]; k < run.eanchOff[ei+1]; k++ {
			r := run.eanchBuf[k]
			iw := run.iccRead(caller, r)
			if iw > run.maxID-a {
				seq := eng.sitePos[s]
				if !run.batch {
					if ev := &run.firstOv[w]; ev.seq < 0 || seq < ev.seq {
						*ev = overEvent{seq: seq, caller: callgraph.NodeID(caller)}
					}
					continue // failed pass: keep sweeping, skip the write
				}
				if prev, ok := run.overMin[w][callgraph.NodeID(caller)]; !ok || seq < prev {
					run.overMin[w][callgraph.NodeID(caller)] = seq
				}
				ci := run.cavIdx(t, r)
				run.deadBuf[ci] = true
				continue
			}
			v := iw + a
			ci := run.cavIdx(t, r)
			if !(run.batch && run.deadBuf[ci]) {
				run.cavBuf[ci] = v
			}
			if v > run.maxCAV[w] {
				run.maxCAV[w] = v
			}
		}
	}
	return a
}

// toPass converts the CSR state of a successful run into the serial pass
// shape, so Result assembly (finish) and Extend's incState are identical to
// the serial engine's output.
func (run *parRun) toPass() *pass {
	eng := run.eng
	p := &pass{
		nanchors: make(map[callgraph.NodeID][]callgraph.NodeID),
		eanchors: make(map[callgraph.Edge][]callgraph.NodeID),
		cav:      make(map[callgraph.NodeID]map[callgraph.NodeID]uint64),
		icc:      make(map[callgraph.NodeID]map[callgraph.NodeID]uint64),
		av:       make(map[callgraph.Site]uint64, len(eng.siteList)),
		batch:    run.batch,
		dead:     make(map[callgraph.NodeID]map[callgraph.NodeID]bool),
		seenOver: make(map[callgraph.NodeID]bool),
	}
	for w := 0; w < eng.workers; w++ {
		if run.maxCAV[w] > p.maxCAV {
			p.maxCAV = run.maxCAV[w]
		}
	}
	for s, set := range run.avSet {
		if set {
			p.av[eng.siteList[s]] = run.av[s]
		}
	}
	for n := 0; n < eng.numNodes; n++ {
		off, end := run.nanchOff[n], run.nanchOff[n+1]
		if off == end {
			if run.resetsB[n] {
				p.icc[callgraph.NodeID(n)] = map[callgraph.NodeID]uint64{callgraph.NodeID(n): 1}
			}
			continue
		}
		anchors := make([]callgraph.NodeID, end-off)
		cav := make(map[callgraph.NodeID]uint64, end-off)
		for k := off; k < end; k++ {
			r := callgraph.NodeID(run.nanchBuf[k])
			anchors[k-off] = r
			cav[r] = run.cavBuf[k]
		}
		id := callgraph.NodeID(n)
		p.nanchors[id] = anchors
		p.cav[id] = cav
		if run.resetsB[n] {
			p.icc[id] = map[callgraph.NodeID]uint64{id: 1}
			continue
		}
		m := make(map[callgraph.NodeID]uint64, end-off)
		for k := off; k < end; k++ {
			if run.batch && run.deadBuf[k] {
				continue // dead range: do not seed downstream counts
			}
			m[callgraph.NodeID(run.nanchBuf[k])] = run.cavBuf[k]
		}
		if run.anB[n] {
			m[id] = 1
		}
		p.icc[id] = m
	}
	for n := 0; n < eng.numNodes; n++ {
		for ei := eng.outStart[n]; ei < eng.outStart[n+1]; ei++ {
			off, end := run.eanchOff[ei], run.eanchOff[ei+1]
			if off == end {
				continue
			}
			anchors := make([]callgraph.NodeID, end-off)
			for k := off; k < end; k++ {
				anchors[k-off] = callgraph.NodeID(run.eanchBuf[k])
			}
			e := callgraph.Edge{
				Caller: callgraph.NodeID(n),
				Callee: callgraph.NodeID(eng.edgeCallee[ei]),
				Label:  eng.edgeLabel[ei],
			}
			p.eanchors[e] = anchors
		}
	}
	return p
}
