package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
	"deltapath/internal/verify"
)

// orderStable reports whether grown's topological order, restricted to
// base's nodes, equals base's topological order — the condition under which
// Extend is bit-exact with the whole-pass oracle (see the package comment
// in extend.go).
func orderStable(t *testing.T, base, grown *callgraph.Graph) bool {
	t.Helper()
	bt, err := base.TopoOrder(base.RecursiveEdges())
	if err != nil {
		t.Fatalf("base topo: %v", err)
	}
	gt, err := grown.TopoOrder(grown.RecursiveEdges())
	if err != nil {
		t.Fatalf("grown topo: %v", err)
	}
	restricted := gt[:0:0]
	for _, n := range gt {
		if int(n) < base.NumNodes() {
			restricted = append(restricted, n)
		}
	}
	return reflect.DeepEqual(bt, restricted)
}

// checkSound certifies an Extend result through the static verifier: every
// encoding the spec can produce decodes to exactly one context. This is the
// contract for deltas that reorder old nodes, where spec equality with the
// from-scratch oracle is not promised.
func checkSound(t *testing.T, res *Result, prev *Result, maxID uint64) {
	t.Helper()
	rep := verify.Check(res.Spec, nil, verify.Options{MaxID: maxID})
	if !rep.Clean() {
		t.Errorf("Extend result fails verification:\n%s", rep.Text())
	}
	for n := range prev.PieceStarts {
		if !res.PieceStarts[n] {
			t.Errorf("previous piece start %d dropped", n)
		}
	}
}

// oracleFor is the whole-pass ground truth an Extend must reproduce: a full
// Encode of the grown graph with the previous resetting anchors forced,
// which is exactly the anchor-retention policy Extend implements. (The
// entry is a piece start but not forced: ForceAnchors forces resets, and a
// non-recursive entry must stay flow-through.)
func oracleFor(t *testing.T, g *callgraph.Graph, prev *Result, maxID uint64) *Result {
	t.Helper()
	force := make([]callgraph.NodeID, 0, len(prev.Spec.Anchors))
	for n := range prev.Spec.Anchors {
		force = append(force, n)
	}
	sort.Slice(force, func(i, j int) bool { return force[i] < force[j] })
	res, err := Encode(g, Options{MaxID: maxID, ForceAnchors: force})
	if err != nil {
		t.Fatalf("oracle Encode: %v", err)
	}
	return res
}

func sortedAnchorLists(m map[callgraph.NodeID][]callgraph.NodeID) map[callgraph.NodeID][]callgraph.NodeID {
	out := make(map[callgraph.NodeID][]callgraph.NodeID, len(m))
	for n, list := range m {
		c := append([]callgraph.NodeID(nil), list...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out[n] = c
	}
	return out
}

func sortedEdgeAnchorLists(m map[callgraph.Edge][]callgraph.NodeID) map[callgraph.Edge][]callgraph.NodeID {
	out := make(map[callgraph.Edge][]callgraph.NodeID, len(m))
	for e, list := range m {
		c := append([]callgraph.NodeID(nil), list...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out[e] = c
	}
	return out
}

// checkSameEncoding asserts got (an Extend result) equals want (the oracle)
// on every externally meaningful quantity and on the retained internal
// state, so chained Extends stay exact too. Territory list order is the one
// quantity allowed to differ (documented in extend.go); it is compared as
// sets.
func checkSameEncoding(t *testing.T, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Spec.SiteAV, want.Spec.SiteAV) {
		t.Errorf("SiteAV mismatch:\n got %v\nwant %v", got.Spec.SiteAV, want.Spec.SiteAV)
	}
	if !reflect.DeepEqual(got.Spec.Anchors, want.Spec.Anchors) {
		t.Errorf("Anchors mismatch:\n got %v\nwant %v", got.Spec.Anchors, want.Spec.Anchors)
	}
	if !reflect.DeepEqual(got.Spec.Push, want.Spec.Push) {
		t.Errorf("Push mismatch:\n got %v\nwant %v", got.Spec.Push, want.Spec.Push)
	}
	if !reflect.DeepEqual(got.ICC, want.ICC) {
		t.Errorf("ICC mismatch:\n got %v\nwant %v", got.ICC, want.ICC)
	}
	if !reflect.DeepEqual(got.PieceStarts, want.PieceStarts) {
		t.Errorf("PieceStarts mismatch:\n got %v\nwant %v", got.PieceStarts, want.PieceStarts)
	}
	if !reflect.DeepEqual(got.OverflowAnchors, want.OverflowAnchors) {
		t.Errorf("OverflowAnchors mismatch:\n got %v\nwant %v", got.OverflowAnchors, want.OverflowAnchors)
	}
	if got.MaxID != want.MaxID {
		t.Errorf("MaxID mismatch: got %d want %d", got.MaxID, want.MaxID)
	}
	if got.Restarts != want.Restarts {
		t.Errorf("Restarts mismatch: got %d want %d", got.Restarts, want.Restarts)
	}
	if !reflect.DeepEqual(sortedAnchorLists(got.NAnchors), sortedAnchorLists(want.NAnchors)) {
		t.Errorf("NAnchors mismatch:\n got %v\nwant %v", got.NAnchors, want.NAnchors)
	}
	if !reflect.DeepEqual(got.inc.cav, want.inc.cav) {
		t.Errorf("retained CAV mismatch:\n got %v\nwant %v", got.inc.cav, want.inc.cav)
	}
	if !reflect.DeepEqual(sortedEdgeAnchorLists(got.inc.eanchors), sortedEdgeAnchorLists(want.inc.eanchors)) {
		t.Errorf("retained eanchors mismatch:\n got %v\nwant %v", got.inc.eanchors, want.inc.eanchors)
	}
	if !reflect.DeepEqual(got.inc.rec, want.inc.rec) {
		t.Errorf("retained rec mismatch:\n got %v\nwant %v", got.inc.rec, want.inc.rec)
	}
}

// TestExtendHandcrafted covers the delta shapes with distinct dirty-closure
// behavior: a virtual site gaining a target, a new edge merging old nodes
// into a cycle (newly recursive edges), a site losing its last
// non-recursive target, and plain new-subtree growth.
func TestExtendHandcrafted(t *testing.T) {
	t.Run("virtual site gains target", func(t *testing.T) {
		g := callgraph.New()
		main := g.AddNode("main", false)
		a := g.AddNode("a", false)
		b := g.AddNode("b", false)
		sink := g.AddNode("sink", false)
		g.SetEntry(main)
		g.AddEdge(main, 0, a)
		g.AddEdge(main, 1, b) // virtual site 1, first target
		g.AddEdge(a, 0, sink)
		g.AddEdge(b, 0, sink)
		prev := mustEncode(t, g, Options{})

		g2 := g.Clone()
		c := g2.AddNode("c", false)
		g2.AddEdge(main, 1, c) // same site, new dispatch target
		g2.AddEdge(c, 0, sink)

		got, stats, err := Extend(prev, g2, Options{})
		if err != nil {
			t.Fatalf("Extend: %v", err)
		}
		if !orderStable(t, g, g2) {
			t.Fatal("test premise broken: delta reorders old nodes")
		}
		checkSameEncoding(t, got, oracleFor(t, g2, prev, 0))
		if stats.NewNodes != 1 || stats.NewEdges != 2 {
			t.Errorf("stats = %+v, want 1 new node, 2 new edges", stats)
		}
		if stats.DirtyNodes >= stats.TotalNodes {
			t.Errorf("nothing stayed clean: %+v", stats)
		}
	})

	t.Run("new edge creates recursion among old nodes", func(t *testing.T) {
		g := callgraph.New()
		main := g.AddNode("main", false)
		a := g.AddNode("a", false)
		b := g.AddNode("b", false)
		c := g.AddNode("c", false)
		g.SetEntry(main)
		g.AddEdge(main, 0, a)
		g.AddEdge(a, 0, b)
		g.AddEdge(b, 0, c)
		prev := mustEncode(t, g, Options{})

		g2 := g.Clone()
		g2.AddEdge(c, 0, a) // closes a->b->c->a: all three edges turn recursive

		got, _, err := Extend(prev, g2, Options{})
		if err != nil {
			t.Fatalf("Extend: %v", err)
		}
		if !orderStable(t, g, g2) {
			t.Fatal("test premise broken: delta reorders old nodes")
		}
		checkSameEncoding(t, got, oracleFor(t, g2, prev, 0))
	})

	t.Run("site loses last non-recursive target", func(t *testing.T) {
		g := callgraph.New()
		main := g.AddNode("main", false)
		a := g.AddNode("a", false)
		b := g.AddNode("b", false)
		g.SetEntry(main)
		g.AddEdge(main, 0, a)
		g.AddEdge(a, 0, b) // monomorphic site; will turn recursive
		prev := mustEncode(t, g, Options{})
		if _, ok := prev.Spec.SiteAV[callgraph.Site{Caller: a, Label: 0}]; !ok {
			t.Fatalf("precondition: site a@0 should have an AV before the cycle forms")
		}

		g2 := g.Clone()
		g2.AddEdge(b, 0, a) // a<->b cycle: both edges recursive

		got, _, err := Extend(prev, g2, Options{})
		if err != nil {
			t.Fatalf("Extend: %v", err)
		}
		if !orderStable(t, g, g2) {
			t.Fatal("test premise broken: delta reorders old nodes")
		}
		checkSameEncoding(t, got, oracleFor(t, g2, prev, 0))
		if _, ok := got.Spec.SiteAV[callgraph.Site{Caller: a, Label: 0}]; ok {
			t.Errorf("site a@0 kept a stale AV after its only edge turned recursive")
		}
	})

	t.Run("new subtree from old leaf", func(t *testing.T) {
		g := callgraph.New()
		main := g.AddNode("main", false)
		a := g.AddNode("a", false)
		g.SetEntry(main)
		g.AddEdge(main, 0, a)
		prev := mustEncode(t, g, Options{})

		g2 := g.Clone()
		x := g2.AddNode("x", false)
		y := g2.AddNode("y", false)
		g2.AddEdge(a, 1, x)
		g2.AddEdge(x, 0, y)
		g2.AddEdge(x, 1, y) // second site into y: ICC(y) = 2 through x

		got, _, err := Extend(prev, g2, Options{})
		if err != nil {
			t.Fatalf("Extend: %v", err)
		}
		if !orderStable(t, g, g2) {
			t.Fatal("test premise broken: delta reorders old nodes")
		}
		checkSameEncoding(t, got, oracleFor(t, g2, prev, 0))
	})
}

// TestExtendOverflowPromotion forces the incremental pass through the
// anchor-promotion restart loop with a tiny integer width and checks the
// promoted anchors match the whole-pass oracle exactly.
func TestExtendOverflowPromotion(t *testing.T) {
	const maxID = 20 // fits the 3-rung base (peak ICC 8), not the grown 5-rung ladder (peak 32)
	g := callgraph.New()
	main := g.AddNode("main", false)
	g.SetEntry(main)
	// A diamond ladder: each rung doubles the context count.
	prevL, prevR := main, main
	for i := 0; i < 3; i++ {
		l := g.AddNode(fmt.Sprintf("l%d", i), false)
		r := g.AddNode(fmt.Sprintf("r%d", i), false)
		join := g.AddNode(fmt.Sprintf("j%d", i), false)
		g.AddEdge(prevL, 0, l)
		g.AddEdge(prevL, 1, r)
		if prevR != prevL {
			g.AddEdge(prevR, 0, l)
			g.AddEdge(prevR, 1, r)
		}
		g.AddEdge(l, 0, join)
		g.AddEdge(r, 0, join)
		prevL, prevR = join, join
	}
	prev, err := Encode(g, Options{MaxID: maxID})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	// Grow two more rungs: the added doublings must overflow maxID and
	// promote anchors during Extend.
	g2 := g.Clone()
	for i := 3; i < 5; i++ {
		l := g2.AddNode(fmt.Sprintf("l%d", i), false)
		r := g2.AddNode(fmt.Sprintf("r%d", i), false)
		join := g2.AddNode(fmt.Sprintf("j%d", i), false)
		g2.AddEdge(prevL, 0, l)
		g2.AddEdge(prevL, 1, r)
		g2.AddEdge(l, 0, join)
		g2.AddEdge(r, 0, join)
		prevL = join
	}

	got, stats, err := Extend(prev, g2, Options{MaxID: maxID})
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if stats.Restarts == 0 {
		t.Fatalf("expected overflow restarts at maxID=%d, got none (stats %+v)", maxID, stats)
	}
	if !orderStable(t, g, g2) {
		t.Fatal("test premise broken: delta reorders old nodes")
	}
	checkSameEncoding(t, got, oracleFor(t, g2, prev, maxID))
}

func mustEncode(t *testing.T, g *callgraph.Graph, opts Options) *Result {
	t.Helper()
	res, err := Encode(g, opts)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return res
}

// randomGrowth builds a random base graph, encodes it, applies a random
// delta (new nodes, new edges of every shape: old->old at new and existing
// sites, old->new, new->new, new->old back-edges that create recursion) and
// returns everything needed for a differential check.
func randomGrowth(rng *rand.Rand) (base *callgraph.Graph, grown *callgraph.Graph) {
	g := callgraph.New()
	nBase := 4 + rng.Intn(12)
	ids := make([]callgraph.NodeID, nBase)
	for i := range ids {
		ids[i] = g.AddNode(fmt.Sprintf("n%d", i), false)
	}
	g.SetEntry(ids[0])
	addRandomEdges(rng, g, ids, nil, 1+rng.Intn(2*nBase))
	if rng.Intn(3) == 0 {
		g.MarkContextRoot(ids[rng.Intn(nBase)])
	}

	g2 := g.Clone()
	nNew := 1 + rng.Intn(5)
	newIDs := make([]callgraph.NodeID, nNew)
	for i := range newIDs {
		newIDs[i] = g2.AddNode(fmt.Sprintf("x%d", i), false)
	}
	addRandomEdges(rng, g2, ids, newIDs, 1+rng.Intn(nBase+2*nNew))
	if rng.Intn(4) == 0 {
		g2.MarkContextRoot(newIDs[rng.Intn(nNew)])
	}
	return g, g2
}

// addRandomEdges inserts count random edges. With both old and new node
// pools it biases toward deltas that touch old territory: new dispatch
// targets on existing sites, cross edges in both directions, and back-edges
// (which may create recursion among old nodes).
func addRandomEdges(rng *rand.Rand, g *callgraph.Graph, old, new_ []callgraph.NodeID, count int) {
	all := append(append([]callgraph.NodeID(nil), old...), new_...)
	for i := 0; i < count; i++ {
		caller := all[rng.Intn(len(all))]
		callee := all[rng.Intn(len(all))]
		if caller == callee && rng.Intn(2) == 0 {
			continue // keep self-loops rarer than other shapes
		}
		label := int32(rng.Intn(4))
		g.AddEdge(caller, label, callee)
	}
}

// TestExtendRandomDifferential is the core proof of incrementality: across
// many random base graphs and random deltas — including ones that create
// recursion, widen virtual sites and trigger overflow restarts — Extend
// must reproduce the whole-pass oracle exactly, and a second chained Extend
// must too.
func TestExtendRandomDifferential(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for seed := 0; seed < iters; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			maxID := uint64(0)
			if seed%3 == 0 {
				maxID = uint64(8 + rng.Intn(64)) // tiny width: exercise promotion
			}
			base, grown := randomGrowth(rng)
			prev, err := Encode(base, Options{MaxID: maxID})
			if err != nil {
				t.Skipf("base graph does not fit maxID=%d: %v", maxID, err)
			}
			got, _, err := Extend(prev, grown, Options{MaxID: maxID})
			oracleErr := func() error {
				_, e := Encode(grown, Options{MaxID: maxID})
				return e
			}
			stable := orderStable(t, base, grown)
			if err != nil {
				// The only legitimate failure is a width too small for the
				// grown graph — and under a stable order the oracle must
				// fail too. (A reordering delta may overflow differently.)
				if stable && oracleErr() == nil {
					t.Fatalf("Extend failed (%v) but a full pass succeeds", err)
				}
				return
			}
			if stable {
				checkSameEncoding(t, got, oracleFor(t, grown, prev, maxID))
			} else {
				checkSound(t, got, prev, maxID)
			}

			// Chain a second delta on top of the Extend result.
			g3 := grown.Clone()
			extra := g3.AddNode("chain0", false)
			pool := append([]callgraph.NodeID(nil), g3.Nodes()...)
			addRandomEdges(rng, g3, pool, []callgraph.NodeID{extra}, 1+rng.Intn(6))
			got2, _, err := Extend(got, g3, Options{MaxID: maxID})
			stable2 := stable && orderStable(t, grown, g3)
			if err != nil {
				if stable2 {
					if oe := func() error { _, e := Encode(g3, Options{MaxID: maxID}); return e }(); oe == nil {
						t.Fatalf("chained Extend failed (%v) but a full pass succeeds", err)
					}
				}
				return
			}
			if stable2 {
				checkSameEncoding(t, got2, oracleFor(t, g3, got, maxID))
			} else {
				checkSound(t, got2, got, maxID)
			}
		})
	}
}

// TestExtendRejects pins the unsupported-mode contract.
func TestExtendRejects(t *testing.T) {
	g := callgraph.New()
	main := g.AddNode("main", false)
	a := g.AddNode("a", false)
	g.SetEntry(main)
	g.AddEdge(main, 0, a)
	prev := mustEncode(t, g, Options{})
	g2 := g.Clone()
	g2.AddNode("b", false)

	if _, _, err := Extend(nil, g2, Options{}); err == nil {
		t.Errorf("nil prev accepted")
	}
	if _, _, err := Extend(&Result{}, g2, Options{}); err == nil {
		t.Errorf("prev without incremental state accepted")
	}
	if _, _, err := Extend(prev, g2, Options{BatchAnchors: true}); err == nil {
		t.Errorf("BatchAnchors accepted")
	}
	if _, _, err := Extend(prev, g2, Options{ForceAnchors: []callgraph.NodeID{a}}); err == nil {
		t.Errorf("ForceAnchors accepted")
	}
	if _, _, err := Extend(prev, g2, Options{EdgeProfile: map[callgraph.Edge]uint64{{Caller: main, Callee: a}: 1}}); err == nil {
		t.Errorf("EdgeProfile accepted")
	}

	// A graph that renames an old node is not a prefix extension.
	bad := callgraph.New()
	bad.AddNode("main", false)
	bad.AddNode("zzz", false)
	bad.SetEntry(0)
	bad.AddEdge(0, 0, 1)
	if _, _, err := Extend(prev, bad, Options{}); err == nil {
		t.Errorf("renumbered graph accepted")
	}

	prunedSpec := &encoding.Spec{Graph: g, Push: map[callgraph.Edge]encoding.PieceKind{
		{Caller: main, Callee: a}: encoding.PiecePruned,
	}}
	pruned := &Result{Spec: prunedSpec, inc: prev.inc, PieceStarts: prev.PieceStarts}
	if _, _, err := Extend(pruned, g2, Options{}); err == nil {
		t.Errorf("pruned encoding accepted")
	}
}
