package core

import (
	"fmt"
	"math/big"

	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
)

// BigResult is the output of EncodeBig: the strawman design Section 3.2
// rejects, in which no anchors are used and addition values are
// arbitrary-precision integers. It exists so the rejection can be measured
// (BenchmarkAblationBigIntEncoder) rather than asserted.
type BigResult struct {
	Graph *callgraph.Graph
	// AV is the per-site addition value, arbitrary precision.
	AV map[callgraph.Site]*big.Int
	// Push marks recursive edges (they still start pieces — recursion is
	// orthogonal to the integer-width question).
	Push map[callgraph.Edge]encoding.PieceKind
	// Anchors are the runtime piece-start nodes (recursion targets and
	// orphans; never overflow anchors — avoiding those is the point of
	// this design). Their entries save and reset the big ID.
	Anchors map[callgraph.NodeID]bool
	// MaxID is the largest encoding value any context can take.
	MaxID *big.Int
}

// EncodeBig runs Algorithm 1 with big.Int arithmetic and no overflow
// anchors: the entire encoding space lives in one arbitrary-precision
// integer per thread. Addition values can be hundreds of bits wide; the
// runtime cost of applying them is what BenchmarkAblationBigIntEncoder
// measures against the anchor-based design.
func EncodeBig(g *callgraph.Graph) (*BigResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	entry, _ := g.Entry()
	rec := g.RecursiveEdges()
	topo, err := g.TopoOrder(rec)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	an := map[callgraph.NodeID]bool{entry: true}
	for e := range rec {
		an[e.Callee] = true
	}
	for _, n := range g.ContextRoots() {
		an[n] = true
	}
	resets := resetAnchors(an, entry, recursiveEntry(rec, entry))

	p := &pass{
		nanchors: make(map[callgraph.NodeID][]callgraph.NodeID),
		eanchors: make(map[callgraph.Edge][]callgraph.NodeID),
	}
	identifyTerritories(g, rec, an, resets, p)
	addBigOrphans(g, rec, an, resets, p)

	one := big.NewInt(1)
	cav := make(map[callgraph.NodeID]map[callgraph.NodeID]*big.Int)
	icc := make(map[callgraph.NodeID]map[callgraph.NodeID]*big.Int)
	for n, anchors := range p.nanchors {
		m := make(map[callgraph.NodeID]*big.Int, len(anchors))
		for _, r := range anchors {
			m[r] = big.NewInt(0)
		}
		cav[n] = m
	}
	res := &BigResult{
		Graph: g,
		AV:    make(map[callgraph.Site]*big.Int),
		Push:  make(map[callgraph.Edge]encoding.PieceKind, len(rec)),
		MaxID: big.NewInt(0),
	}
	for e := range rec {
		res.Push[e] = encoding.PieceRecursion
	}
	processed := make(map[callgraph.Site]bool)
	for _, n := range topo {
		for _, e := range g.ForwardIn(n, rec) {
			cs := e.Site()
			if processed[cs] {
				continue
			}
			processed[cs] = true
			a := big.NewInt(0)
			targets := g.SiteTargets(cs)
			for _, te := range targets {
				if rec[te] {
					continue
				}
				for _, r := range p.eanchors[te] {
					if v := cav[te.Callee][r]; v.Cmp(a) > 0 {
						a = v
					}
				}
			}
			a = new(big.Int).Set(a)
			for _, te := range targets {
				if rec[te] {
					continue
				}
				iccP := icc[te.Caller]
				for _, r := range p.eanchors[te] {
					w := iccP[r]
					if w == nil {
						w = big.NewInt(0)
					}
					v := new(big.Int).Add(w, a)
					cav[te.Callee][r] = v
					if v.Cmp(res.MaxID) > 0 {
						res.MaxID = v
					}
				}
			}
			res.AV[cs] = a
		}
		if resets[n] {
			icc[n] = map[callgraph.NodeID]*big.Int{n: one}
		} else if cavN := cav[n]; len(cavN) > 0 {
			m := make(map[callgraph.NodeID]*big.Int, len(cavN))
			for r, v := range cavN {
				m[r] = v
			}
			if an[n] {
				m[n] = one // non-resetting entry: reserved width of 1
			}
			icc[n] = m
		}
	}
	if res.MaxID.Sign() > 0 {
		res.MaxID = new(big.Int).Sub(res.MaxID, one)
	}
	res.Anchors = make(map[callgraph.NodeID]bool, len(resets))
	for n := range resets {
		res.Anchors[n] = true
	}
	return res, nil
}

// addBigOrphans mirrors addOrphanAnchors for the big-int pass: nodes with
// no forward in-edges still need a territory of their own.
func addBigOrphans(g *callgraph.Graph, rec map[callgraph.Edge]bool,
	an, resets map[callgraph.NodeID]bool, p *pass) {
	before := len(an)
	addOrphanAnchors(g, rec, an)
	if len(an) != before {
		for n := range an {
			if !resets[n] && n != mustEntry(g) {
				resets[n] = true
			}
		}
		// Rebuild territories with the enlarged anchor set.
		p.nanchors = make(map[callgraph.NodeID][]callgraph.NodeID)
		p.eanchors = make(map[callgraph.Edge][]callgraph.NodeID)
		identifyTerritories(g, rec, an, resets, p)
	}
}

func mustEntry(g *callgraph.Graph) callgraph.NodeID {
	entry, _ := g.Entry()
	return entry
}
