package callgraph

import "fmt"

// SCC computes the strongly connected components of the graph with Tarjan's
// algorithm (iterative, so deep graphs do not overflow the goroutine stack).
// It returns a slice mapping NodeID -> component number. Components are
// numbered in reverse topological order of the condensation (a callee's
// component number is never greater than its caller's... specifically,
// Tarjan emits components in reverse topological order, so component numbers
// increase from leaves toward the entry).
func (g *Graph) SCC() []int {
	n := len(g.nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []NodeID
	var next int32
	var ncomp int

	type frame struct {
		v  NodeID
		ei int // next out-edge index to consider
	}
	var call []frame

	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		call = append(call[:0], frame{v: NodeID(start)})
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, NodeID(start))
		onStack[start] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.out[v]) {
				w := g.out[v][f.ei].Callee
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				u := call[len(call)-1].v
				if low[v] < low[u] {
					low[u] = low[v]
				}
			}
		}
	}
	return comp
}

// RecursiveEdges returns the set of edges that participate in recursion:
// an edge is recursive iff its endpoints are in the same strongly connected
// component (which covers self-loops as a special case). Removing these
// edges leaves an acyclic graph. Section 2 of the paper: "a recursive call
// path is divided into acyclic sub-paths, each of which is encoded
// separately"; these are exactly the edges at which the division happens.
func (g *Graph) RecursiveEdges() map[Edge]bool {
	comp := g.SCC()
	rec := make(map[Edge]bool)
	for e := range g.edgeSet {
		if comp[e.Caller] == comp[e.Callee] {
			rec[e] = true
		}
	}
	return rec
}

// ForwardIn returns the incoming edges of n that are not in the rec set,
// in insertion order.
func (g *Graph) ForwardIn(n NodeID, rec map[Edge]bool) []Edge {
	in := g.in[n]
	if len(rec) == 0 {
		return in
	}
	var out []Edge
	for _, e := range in {
		if !rec[e] {
			out = append(out, e)
		}
	}
	return out
}

// TopoOrder returns the nodes in a topological order of the graph with the
// recursive edges rec removed: every node appears after all of its
// (non-recursive) predecessors. The order is deterministic: among ready
// nodes, the smallest NodeID is emitted first (Kahn's algorithm with an
// ordered frontier).
//
// It returns an error if the reduced graph still contains a cycle, which
// indicates rec was not a valid recursive-edge set.
func (g *Graph) TopoOrder(rec map[Edge]bool) ([]NodeID, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for e := range g.edgeSet {
		if rec[e] {
			continue
		}
		indeg[e.Callee]++
	}
	// Min-heap of ready nodes, keyed by NodeID for determinism.
	var heap nodeHeap
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			heap.push(NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for heap.len() > 0 {
		v := heap.pop()
		order = append(order, v)
		for _, e := range g.out[v] {
			if rec[e] {
				continue
			}
			indeg[e.Callee]--
			if indeg[e.Callee] == 0 {
				heap.push(e.Callee)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("callgraph: graph is cyclic after removing %d recursive edges", len(rec))
	}
	return order, nil
}

// ReachableFrom returns the set of nodes reachable from start (inclusive)
// following all edges.
func (g *Graph) ReachableFrom(start NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{start: true}
	work := []NodeID{start}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.out[v] {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	return seen
}

// nodeHeap is a small binary min-heap of NodeIDs. Implemented locally to
// avoid the interface boxing of container/heap in the hot analysis path.
type nodeHeap struct{ a []NodeID }

func (h *nodeHeap) len() int { return len(h.a) }

func (h *nodeHeap) push(v NodeID) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *nodeHeap) pop() NodeID {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.a) && h.a[l] < h.a[m] {
			m = l
		}
		if r < len(h.a) && h.a[r] < h.a[m] {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
