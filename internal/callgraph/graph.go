// Package callgraph defines the call-graph intermediate representation used
// by every encoding algorithm in this repository (PCCE, DeltaPath Algorithm 1
// and Algorithm 2, and call path tracking).
//
// A graph is a set of nodes (functions/methods) and directed edges. Following
// Section 3.1 of the DeltaPath paper, an edge is a triple ⟨caller, callee,
// label⟩ where ⟨caller, label⟩ identifies a call site; several edges may share
// one call site, which is exactly how virtual dispatch is modelled: one site,
// many callee targets.
//
// The package also provides the graph algorithms the encodings depend on:
// deterministic topological ordering, Tarjan strongly-connected components,
// and the classification of recursive (intra-SCC) edges that must be excluded
// from Ball–Larus-style numbering.
package callgraph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node (a function or method) within one Graph.
// IDs are dense: 0..NumNodes()-1.
type NodeID int32

// InvalidNode is returned by lookups that find nothing.
const InvalidNode NodeID = -1

// Node is a function or method in the program under analysis.
type Node struct {
	ID NodeID
	// Name is the fully qualified method name, e.g. "spec.Main.run".
	Name string
	// Library marks nodes excluded under the encoding-application setting
	// (Section 4.2, "flexible encoding"). Library nodes stay in the graph
	// so that call path tracking can reason about paths through them, but
	// the selective-encoding builders strip them.
	Library bool
}

// Site identifies a call site: a position (Label) inside a caller method.
// In Java the label would be the bytecode index of the invoke instruction;
// in the minivm it is the instruction's site number within the method.
type Site struct {
	Caller NodeID
	Label  int32
}

func (s Site) String() string { return fmt.Sprintf("site(%d@%d)", s.Caller, s.Label) }

// Edge is a directed call edge ⟨Caller, Callee, Label⟩.
type Edge struct {
	Caller NodeID
	Callee NodeID
	Label  int32
}

// Site returns the call site this edge originates from.
func (e Edge) Site() Site { return Site{Caller: e.Caller, Label: e.Label} }

// Graph is a call graph. The zero value is not usable; call New.
//
// Edge insertion order is preserved and is significant: the encoding
// algorithms process a node's incoming edges in insertion order, which is the
// order the static analyser discovered them, mirroring the deterministic
// traversal the paper assumes.
type Graph struct {
	nodes  []Node
	byName map[string]NodeID

	out map[NodeID][]Edge
	in  map[NodeID][]Edge

	// sites maps a call site to its dispatch target edges, in insertion
	// order. A monomorphic (static) site has one entry; a virtual site has
	// one per possible dispatch target.
	sites map[Site][]Edge

	entry    NodeID
	hasEntry bool

	// roots are additional context roots besides the entry: methods at
	// which calling contexts can begin (executor-task entries). Encoding
	// algorithms treat them as piece-start anchors.
	roots []NodeID

	edgeSet map[Edge]struct{}
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		byName:  make(map[string]NodeID),
		out:     make(map[NodeID][]Edge),
		in:      make(map[NodeID][]Edge),
		sites:   make(map[Site][]Edge),
		entry:   InvalidNode,
		edgeSet: make(map[Edge]struct{}),
	}
}

// AddNode inserts a node with the given name and returns its ID.
// Adding a name twice returns the existing ID (the Library flag of the
// first insertion wins).
func (g *Graph) AddNode(name string, library bool) NodeID {
	if id, ok := g.byName[name]; ok {
		return id
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Library: library})
	g.byName[name] = id
	return id
}

// Lookup returns the node ID for name, or InvalidNode.
func (g *Graph) Lookup(name string) NodeID {
	if id, ok := g.byName[name]; ok {
		return id
	}
	return InvalidNode
}

// Node returns the node with the given ID. It panics on an invalid ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Name returns the node's name, or "<invalid>" for InvalidNode.
func (g *Graph) Name(id NodeID) string {
	if id == InvalidNode {
		return "<invalid>"
	}
	return g.nodes[id].Name
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.edgeSet) }

// SetEntry declares the program entry node (the paper's "main").
func (g *Graph) SetEntry(id NodeID) {
	g.entry = id
	g.hasEntry = true
}

// Entry returns the entry node. The second result reports whether one was set.
func (g *Graph) Entry() (NodeID, bool) { return g.entry, g.hasEntry }

// MarkContextRoot declares n an additional context root: calling contexts
// may begin there (an executor-task entry). Idempotent.
func (g *Graph) MarkContextRoot(n NodeID) {
	for _, r := range g.roots {
		if r == n {
			return
		}
	}
	g.roots = append(g.roots, n)
}

// ContextRoots returns the additional context roots in marking order.
func (g *Graph) ContextRoots() []NodeID { return g.roots }

// AddEdge inserts the edge ⟨caller, callee, label⟩. Duplicate edges are
// ignored. It returns the edge.
func (g *Graph) AddEdge(caller NodeID, label int32, callee NodeID) Edge {
	e := Edge{Caller: caller, Callee: callee, Label: label}
	if _, dup := g.edgeSet[e]; dup {
		return e
	}
	g.edgeSet[e] = struct{}{}
	g.out[caller] = append(g.out[caller], e)
	g.in[callee] = append(g.in[callee], e)
	s := e.Site()
	g.sites[s] = append(g.sites[s], e)
	return e
}

// HasEdge reports whether the exact edge exists.
func (g *Graph) HasEdge(e Edge) bool {
	_, ok := g.edgeSet[e]
	return ok
}

// Out returns the outgoing edges of n in insertion order.
// The returned slice must not be modified.
func (g *Graph) Out(n NodeID) []Edge { return g.out[n] }

// In returns the incoming edges of n in insertion order.
// The returned slice must not be modified.
func (g *Graph) In(n NodeID) []Edge { return g.in[n] }

// SiteTargets returns the dispatch target edges of a call site, in insertion
// order. The returned slice must not be modified.
func (g *Graph) SiteTargets(s Site) []Edge { return g.sites[s] }

// Sites returns every call site in the graph in a deterministic order
// (by caller ID, then label).
func (g *Graph) Sites() []Site {
	out := make([]Site, 0, len(g.sites))
	for s := range g.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// NumSites reports the number of distinct call sites.
func (g *Graph) NumSites() int { return len(g.sites) }

// NumVirtualSites reports the number of call sites with more than one
// dispatch target (the paper's VCS column in Table 1).
func (g *Graph) NumVirtualSites() int {
	n := 0
	for _, targets := range g.sites {
		if len(targets) > 1 {
			n++
		}
	}
	return n
}

// Nodes returns all node IDs in increasing order.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, len(g.nodes))
	for i := range g.nodes {
		ids[i] = NodeID(i)
	}
	return ids
}

// Validate checks structural invariants: an entry is set, the entry has no
// incoming edges is NOT required (recursion to main is legal), but every
// edge endpoint must be a valid node.
func (g *Graph) Validate() error {
	if !g.hasEntry {
		return fmt.Errorf("callgraph: no entry node set")
	}
	if int(g.entry) >= len(g.nodes) || g.entry < 0 {
		return fmt.Errorf("callgraph: entry node %d out of range", g.entry)
	}
	for e := range g.edgeSet {
		if e.Caller < 0 || int(e.Caller) >= len(g.nodes) {
			return fmt.Errorf("callgraph: edge %v has invalid caller", e)
		}
		if e.Callee < 0 || int(e.Callee) >= len(g.nodes) {
			return fmt.Errorf("callgraph: edge %v has invalid callee", e)
		}
	}
	return nil
}

// Clone returns a deep copy of the graph. The copy shares no mutable state
// with the original, so incremental builders (cha.Extend) can append nodes
// and edges to the clone while readers of the original — decoders pinned to
// an older analysis epoch — keep traversing it concurrently.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:    append([]Node(nil), g.nodes...),
		byName:   make(map[string]NodeID, len(g.byName)),
		out:      make(map[NodeID][]Edge, len(g.out)),
		in:       make(map[NodeID][]Edge, len(g.in)),
		sites:    make(map[Site][]Edge, len(g.sites)),
		entry:    g.entry,
		hasEntry: g.hasEntry,
		roots:    append([]NodeID(nil), g.roots...),
		edgeSet:  make(map[Edge]struct{}, len(g.edgeSet)),
	}
	for name, id := range g.byName {
		c.byName[name] = id
	}
	for n, edges := range g.out {
		c.out[n] = append([]Edge(nil), edges...)
	}
	for n, edges := range g.in {
		c.in[n] = append([]Edge(nil), edges...)
	}
	for s, edges := range g.sites {
		c.sites[s] = append([]Edge(nil), edges...)
	}
	for e := range g.edgeSet {
		c.edgeSet[e] = struct{}{}
	}
	return c
}

// DOT renders the graph in Graphviz dot format, with virtual sites drawn as
// dashed edges and library nodes in grey. Useful for debugging analyses.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph callgraph {\n")
	for _, n := range g.nodes {
		attr := ""
		if n.Library {
			attr = " [color=grey,fontcolor=grey]"
		}
		if g.hasEntry && n.ID == g.entry {
			attr = " [shape=doublecircle]"
		}
		fmt.Fprintf(&b, "  %q%s;\n", n.Name, attr)
	}
	for _, s := range g.Sites() {
		targets := g.sites[s]
		style := ""
		if len(targets) > 1 {
			style = " [style=dashed]"
		}
		for _, e := range targets {
			fmt.Fprintf(&b, "  %q -> %q%s; // label %d\n",
				g.Name(e.Caller), g.Name(e.Callee), style, e.Label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
