package callgraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildFigure1 builds the call graph from Figure 1 of the paper:
// A calls B and C; B calls D; C calls D, E, F; D has two sites calling E;
// E calls G; F calls G; C calls G.
func buildFigure1(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	g := New()
	ids := make(map[string]NodeID)
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		ids[name] = g.AddNode(name, false)
	}
	g.SetEntry(ids["A"])
	g.AddEdge(ids["A"], 0, ids["B"])
	g.AddEdge(ids["A"], 1, ids["C"])
	g.AddEdge(ids["B"], 0, ids["D"])
	g.AddEdge(ids["C"], 0, ids["D"])
	g.AddEdge(ids["D"], 0, ids["E"]) // site D
	g.AddEdge(ids["D"], 1, ids["E"]) // site D' (second site calling E)
	g.AddEdge(ids["D"], 2, ids["F"])
	g.AddEdge(ids["C"], 1, ids["F"])
	g.AddEdge(ids["E"], 0, ids["G"])
	g.AddEdge(ids["F"], 0, ids["G"])
	g.AddEdge(ids["C"], 2, ids["G"])
	return g, ids
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	a := g.AddNode("A", false)
	b := g.AddNode("A", true)
	if a != b {
		t.Fatalf("AddNode twice: got %d and %d", a, b)
	}
	if g.Node(a).Library {
		t.Fatalf("second AddNode overwrote Library flag")
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestLookup(t *testing.T) {
	g := New()
	a := g.AddNode("A", false)
	if got := g.Lookup("A"); got != a {
		t.Fatalf("Lookup(A) = %d, want %d", got, a)
	}
	if got := g.Lookup("missing"); got != InvalidNode {
		t.Fatalf("Lookup(missing) = %d, want InvalidNode", got)
	}
	if got := g.Name(InvalidNode); got != "<invalid>" {
		t.Fatalf("Name(InvalidNode) = %q", got)
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	g := New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", false)
	g.AddEdge(a, 0, b)
	g.AddEdge(a, 0, b)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if len(g.Out(a)) != 1 || len(g.In(b)) != 1 {
		t.Fatalf("adjacency lists contain duplicates")
	}
}

func TestSiteTargets(t *testing.T) {
	g := New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", false)
	c := g.AddNode("C", false)
	g.AddEdge(a, 7, b)
	g.AddEdge(a, 7, c) // same site, virtual dispatch
	g.AddEdge(a, 8, b)
	s := Site{Caller: a, Label: 7}
	targets := g.SiteTargets(s)
	if len(targets) != 2 {
		t.Fatalf("SiteTargets = %d edges, want 2", len(targets))
	}
	if targets[0].Callee != b || targets[1].Callee != c {
		t.Fatalf("SiteTargets order not preserved: %v", targets)
	}
	if g.NumSites() != 2 {
		t.Fatalf("NumSites = %d, want 2", g.NumSites())
	}
	if g.NumVirtualSites() != 1 {
		t.Fatalf("NumVirtualSites = %d, want 1", g.NumVirtualSites())
	}
}

func TestSitesDeterministicOrder(t *testing.T) {
	g := New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", false)
	g.AddEdge(b, 5, a)
	g.AddEdge(a, 9, b)
	g.AddEdge(a, 1, b)
	sites := g.Sites()
	want := []Site{{a, 1}, {a, 9}, {b, 5}}
	if len(sites) != len(want) {
		t.Fatalf("Sites len = %d, want %d", len(sites), len(want))
	}
	for i := range want {
		if sites[i] != want[i] {
			t.Fatalf("Sites[%d] = %v, want %v", i, sites[i], want[i])
		}
	}
}

func TestValidate(t *testing.T) {
	g := New()
	if err := g.Validate(); err == nil {
		t.Fatalf("Validate on entry-less graph: want error")
	}
	a := g.AddNode("A", false)
	g.SetEntry(a)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestTopoOrderFigure1(t *testing.T) {
	g, ids := buildFigure1(t)
	order, err := g.TopoOrder(nil)
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[NodeID]int)
	for i, n := range order {
		pos[n] = i
	}
	for e := range g.edgeSet {
		if pos[e.Caller] >= pos[e.Callee] {
			t.Errorf("edge %s->%s violates topo order", g.Name(e.Caller), g.Name(e.Callee))
		}
	}
	if order[0] != ids["A"] {
		t.Errorf("first node = %s, want A", g.Name(order[0]))
	}
}

func TestTopoOrderCycleDetected(t *testing.T) {
	g := New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", false)
	g.AddEdge(a, 0, b)
	g.AddEdge(b, 0, a)
	if _, err := g.TopoOrder(nil); err == nil {
		t.Fatalf("TopoOrder on cyclic graph: want error")
	}
	// With recursive edges removed it must succeed.
	rec := g.RecursiveEdges()
	if len(rec) != 2 {
		t.Fatalf("RecursiveEdges = %d, want 2", len(rec))
	}
	if _, err := g.TopoOrder(rec); err != nil {
		t.Fatalf("TopoOrder after removing recursive edges: %v", err)
	}
}

func TestSCCSelfLoop(t *testing.T) {
	g := New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", false)
	g.AddEdge(a, 0, b)
	g.AddEdge(b, 0, b) // self recursion
	rec := g.RecursiveEdges()
	if len(rec) != 1 {
		t.Fatalf("RecursiveEdges = %v, want only the self loop", rec)
	}
	if !rec[Edge{Caller: b, Callee: b, Label: 0}] {
		t.Fatalf("self loop not classified recursive")
	}
}

func TestSCCComponents(t *testing.T) {
	// A -> B <-> C -> D, and D -> B closes a larger cycle {B, C, D}.
	g := New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", false)
	c := g.AddNode("C", false)
	d := g.AddNode("D", false)
	g.AddEdge(a, 0, b)
	g.AddEdge(b, 0, c)
	g.AddEdge(c, 0, b)
	g.AddEdge(c, 1, d)
	g.AddEdge(d, 0, b)
	comp := g.SCC()
	if comp[b] != comp[c] || comp[c] != comp[d] {
		t.Fatalf("B, C, D should share a component: %v", comp)
	}
	if comp[a] == comp[b] {
		t.Fatalf("A should be its own component: %v", comp)
	}
	rec := g.RecursiveEdges()
	wantRec := 3 // B->C, C->B, C->D, D->B are intra-SCC... B->C, C->B, C->D, D->B
	if len(rec) != 4 {
		t.Fatalf("RecursiveEdges = %d (%v), want 4", len(rec), rec)
	}
	_ = wantRec
	// A->B crosses components.
	if rec[Edge{Caller: a, Callee: b, Label: 0}] {
		t.Fatalf("A->B wrongly classified recursive")
	}
}

func TestForwardIn(t *testing.T) {
	g := New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", false)
	g.AddEdge(a, 0, b)
	g.AddEdge(b, 0, b)
	rec := g.RecursiveEdges()
	fwd := g.ForwardIn(b, rec)
	if len(fwd) != 1 || fwd[0].Caller != a {
		t.Fatalf("ForwardIn = %v, want just A->B", fwd)
	}
	// With no recursive set the full in-list is returned.
	if got := g.ForwardIn(b, nil); len(got) != 2 {
		t.Fatalf("ForwardIn(nil) = %v, want both edges", got)
	}
}

func TestReachableFrom(t *testing.T) {
	g, ids := buildFigure1(t)
	r := g.ReachableFrom(ids["C"])
	for _, name := range []string{"C", "D", "E", "F", "G"} {
		if !r[ids[name]] {
			t.Errorf("%s should be reachable from C", name)
		}
	}
	if r[ids["A"]] || r[ids["B"]] {
		t.Errorf("A/B should not be reachable from C")
	}
}

func TestDOT(t *testing.T) {
	g, _ := buildFigure1(t)
	dot := g.DOT()
	if !strings.Contains(dot, `"A" -> "B"`) {
		t.Fatalf("DOT missing edge A->B:\n%s", dot)
	}
	if !strings.Contains(dot, "doublecircle") {
		t.Fatalf("DOT missing entry decoration:\n%s", dot)
	}
}

func TestDOTVirtualDashed(t *testing.T) {
	g := New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", true)
	c := g.AddNode("C", false)
	g.SetEntry(a)
	g.AddEdge(a, 0, b)
	g.AddEdge(a, 0, c)
	dot := g.DOT()
	if !strings.Contains(dot, "style=dashed") {
		t.Fatalf("virtual edge not dashed:\n%s", dot)
	}
	if !strings.Contains(dot, "color=grey") {
		t.Fatalf("library node not grey:\n%s", dot)
	}
}

// randomDAG builds a random layered DAG for property tests.
func randomDAG(rng *rand.Rand, nodes int) *Graph {
	g := New()
	for i := 0; i < nodes; i++ {
		g.AddNode(string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune('0'+i/260)), false)
	}
	g.SetEntry(0)
	var label int32
	for i := 1; i < nodes; i++ {
		// Each node gets 1..3 predecessors among earlier nodes.
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			p := NodeID(rng.Intn(i))
			g.AddEdge(p, label, NodeID(i))
			label++
		}
	}
	return g
}

func TestTopoOrderPropertyRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(60))
		order, err := g.TopoOrder(nil)
		if err != nil {
			return false
		}
		pos := make(map[NodeID]int)
		for i, n := range order {
			pos[n] = i
		}
		for e := range g.edgeSet {
			if pos[e.Caller] >= pos[e.Callee] {
				return false
			}
		}
		return len(order) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCPropertyRecursiveRemovalAcyclic(t *testing.T) {
	// Take a random DAG, add random extra edges (possibly creating cycles);
	// removing RecursiveEdges must always restore acyclicity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40))
		n := g.NumNodes()
		extra := rng.Intn(2 * n)
		var label int32 = 1000
		for i := 0; i < extra; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), label, NodeID(rng.Intn(n)))
			label++
		}
		rec := g.RecursiveEdges()
		_, err := g.TopoOrder(rec)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
