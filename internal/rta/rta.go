// Package rta constructs call graphs by rapid-type-style on-the-fly
// reachability, the precision refinement of class hierarchy analysis the
// paper leans on for encoding-space scalability (Section 6: fewer spurious
// edges mean smaller ICC products and fewer anchors).
//
// The classical RTA refinement — narrowing virtual dispatch to instantiated
// types — is deliberately NOT applied: the minivm dispatches a virtual call
// uniformly over every loaded subclass declaring the method, whether or not
// the program ever instantiates it, so a type-narrowed graph would miss
// edges the runtime takes. What IS sound here, and what cha.Build gives
// away, is spawn-root precision: cha seeds reachability with every OpSpawn
// target in the program, even spawns that occur only in methods no
// execution can reach, and (under KeepUnreachable) retains every declared
// method as a node. This builder grows the graph from the entry alone —
// a method's calls and spawns contribute only once the method itself is
// reachable — which is exactly the call-graph fixpoint of Bacon & Sweeney's
// RTA with the type filter replaced by the VM's uniform-dispatch rule.
//
// The result is structurally a subset of cha.Build's graph on the same
// program and options: every rta node/edge/spawn root is a cha
// node/edge/spawn root, never the reverse. Methods the fixpoint never
// reaches are not instrumented; should dynamically loaded code call into
// one anyway, call path tracking bridges the gap the same way it bridges
// excluded library methods (Section 4.2).
package rta

import (
	"fmt"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/minivm"
)

// Build constructs the RTA call graph of prog's statically loaded classes.
// It accepts cha.Options so analysis construction can switch builders
// freely; KeepUnreachable is ignored — pruning methods the entry cannot
// reach is the precision this builder exists for.
func Build(prog *minivm.Program, opts cha.Options) (*cha.Result, error) {
	h := cha.NewHierarchy(prog.Classes)
	appOnly := opts.Setting == cha.EncodingApplication

	if c := h.Class(prog.Entry.Class); c == nil || c.Method(prog.Entry.Method) == nil {
		return nil, fmt.Errorf("rta: entry method %s not found among static classes", prog.Entry)
	}
	if opts.ExcludeMethods[prog.Entry] {
		return nil, fmt.Errorf("rta: entry method %s cannot be excluded", prog.Entry)
	}
	if appOnly {
		if ec := h.Class(prog.Entry.Class); ec != nil && ec.Library {
			return nil, fmt.Errorf("rta: entry method %s is in a library class; it cannot be excluded", prog.Entry)
		}
	}

	// Fixpoint: a method's body is scanned exactly once, when it first
	// becomes reachable; its call targets (all CHA dispatch targets — the
	// VM dispatches over every subclass) and spawn targets join the
	// frontier. The reachable set is order-independent, so the worklist
	// order doesn't matter; determinism of the final graph comes from the
	// declaration-order assembly pass below.
	reach := map[minivm.MethodRef]bool{prog.Entry: true}
	work := []minivm.MethodRef{prog.Entry}
	mark := func(ref minivm.MethodRef) {
		if !reach[ref] {
			reach[ref] = true
			work = append(work, ref)
		}
	}
	for len(work) > 0 {
		ref := work[len(work)-1]
		work = work[:len(work)-1]
		cls := h.Class(ref.Class)
		if cls == nil {
			continue // dynamic or unknown class: no static body to scan
		}
		m := cls.Method(ref.Method)
		if m == nil {
			continue
		}
		cha.WalkCalls(m.Body, func(in *minivm.Instr) {
			switch in.Op {
			case minivm.OpCall:
				mark(minivm.MethodRef{Class: in.Class, Method: in.Name})
			case minivm.OpVCall:
				for _, t := range h.Dispatch(in.Class, in.Name) {
					mark(t)
				}
			case minivm.OpSpawn:
				// The spawn-root precision: the task entry becomes a
				// reachability root only because this spawning method is
				// itself reachable.
				mark(minivm.MethodRef{Class: in.Class, Method: in.Name})
			}
		})
	}

	include := func(ref minivm.MethodRef) bool {
		cls := h.Class(ref.Class)
		if cls == nil || cls.Method(ref.Method) == nil {
			return false
		}
		if appOnly && cls.Library {
			return false
		}
		if opts.ExcludeMethods[ref] {
			return false
		}
		return reach[ref]
	}

	res := &cha.Result{
		Graph:   callgraph.New(),
		NodeOf:  make(map[minivm.MethodRef]callgraph.NodeID),
		Setting: opts.Setting,
	}
	add := func(ref minivm.MethodRef) callgraph.NodeID {
		if id, ok := res.NodeOf[ref]; ok {
			return id
		}
		id := res.Graph.AddNode(ref.String(), h.Class(ref.Class).Library)
		res.NodeOf[ref] = id
		res.RefOf = append(res.RefOf, ref)
		return id
	}

	// Assembly mirrors cha.Build: entry first, then declaration order, so
	// the two builders' graphs differ only where precision differs.
	add(prog.Entry)
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			ref := minivm.MethodRef{Class: c.Name, Method: m.Name}
			if include(ref) {
				add(ref)
			}
		}
	}
	spawnSeen := make(map[minivm.MethodRef]bool)
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			from := minivm.MethodRef{Class: c.Name, Method: m.Name}
			if !reach[from] {
				continue // edges and spawns count only from reachable code
			}
			cha.WalkCalls(m.Body, func(in *minivm.Instr) {
				switch in.Op {
				case minivm.OpCall:
					to := minivm.MethodRef{Class: in.Class, Method: in.Name}
					if include(from) && include(to) {
						res.Graph.AddEdge(res.NodeOf[from], in.Site, res.NodeOf[to])
					}
				case minivm.OpVCall:
					for _, to := range h.Dispatch(in.Class, in.Name) {
						if include(from) && include(to) {
							res.Graph.AddEdge(res.NodeOf[from], in.Site, res.NodeOf[to])
						}
					}
				case minivm.OpSpawn:
					ref := minivm.MethodRef{Class: in.Class, Method: in.Name}
					if spawnSeen[ref] {
						return
					}
					if n, ok := res.NodeOf[ref]; ok {
						spawnSeen[ref] = true
						res.SpawnEntries = append(res.SpawnEntries, ref)
						res.Graph.MarkContextRoot(n)
					}
				}
			})
		}
	}
	res.Graph.SetEntry(res.NodeOf[prog.Entry])
	if err := res.Graph.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}
