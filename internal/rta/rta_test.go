package rta

import (
	"os"
	"path/filepath"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
)

func parseFile(t *testing.T, path string) *minivm.Program {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// edgeKey is a builder-independent edge identity: node IDs differ between
// graphs, names and site labels do not.
type edgeKey struct {
	from  string
	label int32
	to    string
}

func edgeSet(g *callgraph.Graph) map[edgeKey]bool {
	set := make(map[edgeKey]bool, g.NumEdges())
	for _, n := range g.Nodes() {
		for _, e := range g.Out(n) {
			set[edgeKey{g.Name(e.Caller), e.Label, g.Name(e.Callee)}] = true
		}
	}
	return set
}

func nameSet(g *callgraph.Graph) map[string]bool {
	set := make(map[string]bool, g.NumNodes())
	for _, n := range g.Nodes() {
		set[g.Name(n)] = true
	}
	return set
}

// TestSubsetOfCHA pins the structural contract on the whole corpus and
// both settings: every rta node and edge is a cha node and edge (against
// the statically pruned cha graph, the one the paper reports sizes over).
func TestSubsetOfCHA(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.mv"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, path := range paths {
		prog := parseFile(t, path)
		for _, setting := range []cha.Setting{cha.EncodingAll, cha.EncodingApplication} {
			opts := cha.Options{Setting: setting}
			chaRes, err := cha.Build(prog, opts)
			if err != nil {
				t.Fatalf("%s: cha: %v", path, err)
			}
			rtaRes, err := Build(prog, opts)
			if err != nil {
				t.Fatalf("%s: rta: %v", path, err)
			}
			chaNodes, rtaNodes := nameSet(chaRes.Graph), nameSet(rtaRes.Graph)
			for n := range rtaNodes {
				if !chaNodes[n] {
					t.Errorf("%s (%v): rta node %s not in cha graph", path, setting, n)
				}
			}
			chaEdges, rtaEdges := edgeSet(chaRes.Graph), edgeSet(rtaRes.Graph)
			for e := range rtaEdges {
				if !chaEdges[e] {
					t.Errorf("%s (%v): rta edge %v not in cha graph", path, setting, e)
				}
			}
			if len(rtaEdges) > len(chaEdges) {
				t.Errorf("%s (%v): rta has more edges (%d) than cha (%d)",
					path, setting, len(rtaEdges), len(chaEdges))
			}
		}
	}
}

// deadSpawnSrc has a spawn reachable only from dead code: rapid.orphan is
// never called, so cha seeds app.Task.run as a reachability root (it
// collects spawns from every method body) while rta does not.
const deadSpawnSrc = `
entry app.Main.main
class app.Main {
  method main {
    call app.Work.step
    emit here
  }
}
class app.Work {
  method step { work 1 }
  method orphan { spawn app.Task.run }
}
class app.Task {
  method run { call app.Work.step }
}
`

// TestPrunesDeadSpawn is the precision witness: the spawn inside the
// unreachable method must not inflate the rta graph.
func TestPrunesDeadSpawn(t *testing.T) {
	prog := lang.MustParse(deadSpawnSrc)
	chaRes, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rtaRes, err := Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !nameSet(chaRes.Graph)["app.Task.run"] {
		t.Fatal("cha should keep the dead-spawned task (that is its imprecision)")
	}
	if nameSet(rtaRes.Graph)["app.Task.run"] {
		t.Fatal("rta kept a task spawned only from unreachable code")
	}
	if nameSet(rtaRes.Graph)["app.Work.orphan"] {
		t.Fatal("rta kept an unreachable method")
	}
	if rtaRes.Graph.NumEdges() >= chaRes.Graph.NumEdges() {
		t.Fatalf("expected strictly fewer rta edges, got rta=%d cha=%d",
			rtaRes.Graph.NumEdges(), chaRes.Graph.NumEdges())
	}
	if len(rtaRes.SpawnEntries) != 0 {
		t.Fatalf("unexpected rta spawn entries: %v", rtaRes.SpawnEntries)
	}
}

// TestAgreesWhenFullyReachable: on a program with no dead code the two
// builders must produce identical node and edge sets — rta's gain is
// precision, never a different semantics.
func TestAgreesWhenFullyReachable(t *testing.T) {
	prog := parseFile(t, filepath.Join("..", "..", "testdata", "shapes.mv"))
	chaRes, err := cha.Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rtaRes, err := Build(prog, cha.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce, re := edgeSet(chaRes.Graph), edgeSet(rtaRes.Graph)
	if len(ce) != len(re) {
		t.Fatalf("edge sets differ: cha=%d rta=%d", len(ce), len(re))
	}
	for e := range ce {
		if !re[e] {
			t.Errorf("cha edge %v missing from rta", e)
		}
	}
}

// TestEncodable: the rta graph feeds the encoder like any cha graph —
// entry set, deterministic node order, Validate clean.
func TestEncodable(t *testing.T) {
	for _, name := range []string{"tasks.mv", "dynload.mv", "recursion.mv"} {
		prog := parseFile(t, filepath.Join("..", "..", "testdata", name))
		res, err := Build(prog, cha.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := core.Encode(res.Graph, core.Options{}); err != nil {
			t.Fatalf("%s: encode over rta graph: %v", name, err)
		}
	}
}

// TestErrors pins the constructor's refusal cases.
func TestErrors(t *testing.T) {
	prog := lang.MustParse(deadSpawnSrc)
	if _, err := Build(prog, cha.Options{ExcludeMethods: map[minivm.MethodRef]bool{prog.Entry: true}}); err == nil {
		t.Fatal("excluding the entry should fail")
	}
}
