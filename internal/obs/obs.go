// Package obs is the runtime observability layer: zero-dependency metrics
// (atomic counters, gauges, and histograms, registered by name) and a
// fixed-size lock-free ring-buffer event tracer, wired through the encoder,
// the VM, the decoder, the stack-walk healer, and the profile pipeline.
//
// The design constraint is the paper's own: instrumentation must not
// distort what it measures. Every metric type is nil-safe — calling Inc,
// Add, Set, or Observe on a nil pointer is a no-op — so the disabled state
// is simply "the hook fields were never resolved": one predictable branch
// per event, no interface dispatch, no map lookup, no allocation. A
// component opts in by resolving its counters from a Registry once
// (Encoder.Observe, VM.Observe, ...); the hot path then touches only the
// pre-resolved pointers.
//
// The registry exports two shapes: a flat JSON document (WriteJSON) and
// Prometheus text exposition format (WritePrometheus). Both are
// deterministic (name-sorted) so they can be golden-tested.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Canonical metric names. Every name the repository registers is listed
// here (and in DESIGN.md §11's table) so commands, tests, and dashboards
// agree on spelling. Counters follow the Prometheus *_total convention.
const (
	// Interpreter events (internal/minivm).
	MetricVMCalls   = "dp_vm_calls_total"
	MetricVMReturns = "dp_vm_returns_total"
	MetricVMEmits   = "dp_vm_emits_total"
	MetricVMTasks   = "dp_vm_tasks_total"

	// Encoder events (internal/instrument).
	MetricEncoderAdditions    = "dp_encoder_additions_total"
	MetricEncoderAnchorPushes = "dp_encoder_anchor_pushes_total"
	MetricEncoderAnchorPops   = "dp_encoder_anchor_pops_total"
	MetricEncoderEdgePushes   = "dp_encoder_edge_pushes_total"
	MetricEncoderUCPPushes    = "dp_encoder_ucp_hazard_pushes_total"
	MetricEncoderSIDSaves     = "dp_encoder_sid_saves_total"
	MetricEncoderSIDChecks    = "dp_encoder_sid_checks_total"
	MetricEncoderUnderflows   = "dp_encoder_underflows_total"
	MetricEncoderPieceDepth   = "dp_encoder_piece_depth"

	// Self-healing events (internal/instrument recovery protocol).
	MetricHealCorruptions    = "dp_heal_corruptions_detected_total"
	MetricHealResyncs        = "dp_heal_resyncs_total"
	MetricHealPartialDecodes = "dp_heal_partial_decodes_total"

	// Decoder cache events (internal/encoding).
	MetricDecodeMemoHits   = "dp_decode_memo_hits_total"
	MetricDecodeMemoMisses = "dp_decode_memo_misses_total"
	MetricDecodeFrames     = "dp_decode_frames"

	// Stack-walk healer (internal/stackwalk).
	MetricStackwalkWalks     = "dp_stackwalk_walks_total"
	MetricStackwalkFrames    = "dp_stackwalk_frames_total"
	MetricStackwalkReencodes = "dp_stackwalk_reencodes_total"

	// Profile pipeline (internal/profile).
	MetricProfileInterns         = "dp_profile_interns_total"
	MetricProfileShardContention = "dp_profile_shard_contention_total"
	MetricProfileDecodeMemoHits  = "dp_profile_decode_memo_hits_total"
	MetricProfileDecodeMemoMiss  = "dp_profile_decode_memo_misses_total"

	// Profile ingestion service (internal/server, cmd/dprofiled).
	// Counters follow the ingest pipeline: batches accepted, duplicate
	// batch IDs absorbed idempotently, records applied, batches shed
	// under backpressure (429), records quarantined on decode errors,
	// WAL appends and recovery replays, snapshots taken.
	MetricServerBatches      = "dp_server_batches_total"
	MetricServerBatchesDup   = "dp_server_duplicate_batches_total"
	MetricServerRecords      = "dp_server_records_total"
	MetricServerShed         = "dp_server_shed_total"
	MetricServerQuarantined  = "dp_server_quarantined_total"
	MetricServerWALAppends   = "dp_server_wal_appends_total"
	MetricServerWALReplayed  = "dp_server_wal_replayed_records_total"
	MetricServerWALTruncated = "dp_server_wal_truncated_tails_total"
	MetricServerSnapshots    = "dp_server_snapshots_total"
	// Group-commit WAL: fsyncs issued (one per commit group), how many
	// batches each fsync amortized (histogram), and how long an acked
	// batch waited from enqueue to commit (nanoseconds, histogram).
	MetricServerGroupFsyncs  = "dp_server_group_fsyncs_total"
	MetricServerGroupBatches = "dp_server_group_batches_per_fsync"
	MetricServerCommitWaitNs = "dp_server_commit_wait_ns"
	// Segment store: compaction passes run, (key,count) pairs written by
	// compaction merges, nanoseconds spent compacting, and partially
	// written segment files discarded during recovery.
	MetricServerCompactions    = "dp_server_compactions_total"
	MetricServerCompactedPairs = "dp_server_compaction_merged_pairs_total"
	MetricServerCompactNs      = "dp_server_compaction_ns_total"
	MetricServerOrphanSegments = "dp_server_orphan_segments_discarded_total"
	// Gauges: live queue occupancy across tenants, WAL bytes on disk,
	// registered tenants, live segment files, approximate memtable bytes.
	MetricServerQueueDepth    = "dp_server_queue_depth"
	MetricServerWALBytes      = "dp_server_wal_bytes"
	MetricServerTenants       = "dp_server_tenants"
	MetricServerSegments      = "dp_server_segments"
	MetricServerMemtableBytes = "dp_server_memtable_bytes"

	// Static analysis shape (gauges, set once per analysis).
	MetricGraphNodes = "dp_graph_nodes"
	MetricGraphEdges = "dp_graph_edges"
	MetricAnchors    = "dp_anchors"
	MetricMaxID      = "dp_max_id"
	MetricCPTSets    = "dp_cpt_sets"
	MetricCPTSites   = "dp_cpt_expected_sites"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// usable; a nil *Counter is a valid no-op sink, which is how the disabled
// path stays within the ≤2% hot-path overhead bound.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on nil.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" on nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomic last-value metric (analysis shape, configuration).
// A nil *Gauge is a valid no-op sink.
type Gauge struct {
	name string
	v    atomic.Uint64
}

// Set stores v. Safe on nil.
func (g *Gauge) Set(v uint64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered name ("" on nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Histogram counts observations into fixed upper-bound buckets (plus an
// implicit +Inf bucket) with an atomic sum and count — the Prometheus
// histogram shape without labels. A nil *Histogram is a valid no-op sink.
type Histogram struct {
	name    string
	bounds  []uint64 // ascending upper bounds, exclusive of +Inf
	buckets []atomic.Uint64
	inf     atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
}

// DefaultDepthBuckets suits piece-stack and frame-count distributions.
var DefaultDepthBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128}

// CommitWaitBuckets covers enqueue-to-commit latencies from 100µs to 1s
// in nanoseconds — the range a group-commit fsync loop actually produces.
var CommitWaitBuckets = []uint64{
	100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
	50_000_000, 100_000_000, 500_000_000, 1_000_000_000,
}

// Observe records one observation of v. Safe on nil.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.sum.Add(v)
	h.count.Add(1)
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds named metrics. Registration is idempotent: asking for an
// existing name returns the existing metric, so components sharing one
// registry aggregate into the same counters. A nil *Registry is the no-op
// sink: every accessor returns nil, which every metric method accepts.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   *Tracer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use. Returns
// nil (the no-op sink) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// ascending upper bounds on first use (nil bounds selects
// DefaultDepthBuckets). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if bounds == nil {
			bounds = DefaultDepthBuckets
		}
		h = &Histogram{
			name:    name,
			bounds:  append([]uint64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)),
		}
		r.hists[name] = h
	}
	return h
}

// SetTracer attaches an event tracer so exports can report its depth and
// Tracer() hands it to components. Safe on nil.
func (r *Registry) SetTracer(t *Tracer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tracer = t
	r.mu.Unlock()
}

// Tracer returns the attached tracer (nil on a nil registry or when none
// is attached).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// histSnapshot is a histogram's exported form.
type histSnapshot struct {
	name   string
	bounds []uint64
	counts []uint64 // per bound, then +Inf appended
	sum    uint64
	count  uint64
}

// snapshot captures every metric under the lock, name-sorted.
func (r *Registry) snapshot() (counters []*Counter, gauges []*Gauge, hists []histSnapshot) {
	if r == nil {
		return nil, nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	for _, h := range r.hists {
		hs := histSnapshot{name: h.name, bounds: h.bounds, sum: h.sum.Load(), count: h.count.Load()}
		for i := range h.buckets {
			hs.counts = append(hs.counts, h.buckets[i].Load())
		}
		hs.counts = append(hs.counts, h.inf.Load())
		hists = append(hists, hs)
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	return counters, gauges, hists
}

// Snapshot returns every counter and gauge as a flat name→value map.
// Histograms contribute their _count and _sum. Nil-safe (empty map).
func (r *Registry) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	counters, gauges, hists := r.snapshot()
	for _, c := range counters {
		out[c.name] = c.v.Load()
	}
	for _, g := range gauges {
		out[g.name] = g.v.Load()
	}
	for _, h := range hists {
		out[h.name+"_count"] = h.count
		out[h.name+"_sum"] = h.sum
	}
	return out
}

// WriteJSON writes the registry as one flat, name-sorted JSON document:
// counters and gauges as numbers, histograms as {buckets, sum, count}
// objects. The shape is stable and golden-tested.
func (r *Registry) WriteJSON(w io.Writer) error {
	counters, gauges, hists := r.snapshot()
	doc := make(map[string]any, len(counters)+len(gauges)+len(hists))
	for _, c := range counters {
		doc[c.name] = c.v.Load()
	}
	for _, g := range gauges {
		doc[g.name] = g.v.Load()
	}
	for _, h := range hists {
		buckets := make(map[string]uint64, len(h.counts))
		for i, b := range h.bounds {
			buckets[fmt.Sprintf("le_%d", b)] = h.counts[i]
		}
		buckets["le_inf"] = h.counts[len(h.counts)-1]
		doc[h.name] = map[string]any{"buckets": buckets, "sum": h.sum, "count": h.count}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): # TYPE lines, cumulative histogram buckets with
// le labels, name-sorted.
func (r *Registry) WritePrometheus(w io.Writer) error {
	counters, gauges, hists := r.snapshot()
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.v.Load()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.v.Load()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.name); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.name, b, cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			h.name, cum, h.name, h.sum, h.name, h.count); err != nil {
			return err
		}
	}
	return nil
}
