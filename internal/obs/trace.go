package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// EventKind classifies one trace record.
type EventKind uint8

const (
	// EvCall/EvReturn bracket one interpreter invocation.
	EvCall EventKind = iota + 1
	EvReturn
	// EvEnter/EvExit bracket one instrumented method activation.
	EvEnter
	EvExit
	// EvAnchorPush/EvAnchorPop bracket one anchor piece (Section 3.2).
	EvAnchorPush
	EvAnchorPop
	// EvEdgePush marks a recursive/pruned call-edge piece start.
	EvEdgePush
	// EvUCPPush marks a hazardous unexpected-call-path piece start
	// (Section 4.1) — the event a chaos post-mortem looks for first.
	EvUCPPush
	// EvEmit marks a context capture at an emit point.
	EvEmit
	// EvResync marks a stack-walk resynchronization (self-healing).
	EvResync
	// EvTaskBegin marks an executor task starting on a fresh stack.
	EvTaskBegin
)

func (k EventKind) String() string {
	switch k {
	case EvCall:
		return "call"
	case EvReturn:
		return "return"
	case EvEnter:
		return "enter"
	case EvExit:
		return "exit"
	case EvAnchorPush:
		return "anchor-push"
	case EvAnchorPop:
		return "anchor-pop"
	case EvEdgePush:
		return "edge-push"
	case EvUCPPush:
		return "ucp-push"
	case EvEmit:
		return "emit"
	case EvResync:
		return "resync"
	case EvTaskBegin:
		return "task-begin"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one decoded trace record.
type Event struct {
	// Seq is the global 1-based record sequence number; it totals every
	// Record call, so Seq gaps in a dump show exactly how much the ring
	// overwrote.
	Seq uint64
	// Time is the capture time in Unix nanoseconds.
	Time int64
	// Kind classifies the event.
	Kind EventKind
	// Site identifies the program point: a call-site label or a graph
	// node id, depending on Kind (the producer documents which).
	Site uint64
	// Context is the encoding ID in flight at the event.
	Context uint64
}

// slot is one ring entry. Fields are atomics so concurrent writers that
// lap each other on the same slot stay race-free; seq is written last
// (and checked on read) so a torn record is dropped, not misreported.
type slot struct {
	seq      atomic.Uint64
	time     atomic.Int64
	kindSite atomic.Uint64 // kind in the top byte, site in the low 56 bits
	context  atomic.Uint64
}

// Tracer is a fixed-size lock-free ring buffer of trace events. Writers
// claim a slot with one atomic add and store four words — no locks, no
// allocation — so tracing can stay on in production; the ring keeps the
// most recent events for post-mortem dumps (dprun -trace). A nil *Tracer
// is a valid no-op sink.
type Tracer struct {
	mask uint64
	pos  atomic.Uint64
	ring []slot
}

// DefaultTraceCapacity is the ring size NewTracer uses for capacity <= 0.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer whose ring holds capacity events, rounded up
// to a power of two (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	size := 16
	for size < capacity {
		size <<= 1
	}
	return &Tracer{mask: uint64(size - 1), ring: make([]slot, size)}
}

// Cap returns the ring capacity (0 on nil).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Recorded returns the total number of Record calls (0 on nil); records
// beyond Cap have been overwritten.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.pos.Load()
}

// Record appends one event to the ring. Safe on nil and for concurrent
// use; a writer lapped mid-store yields a torn slot that Events discards
// via its seq check.
func (t *Tracer) Record(kind EventKind, site, context uint64) {
	if t == nil {
		return
	}
	seq := t.pos.Add(1)
	s := &t.ring[(seq-1)&t.mask]
	s.seq.Store(0) // invalidate while the fields are in flight
	s.time.Store(time.Now().UnixNano())
	s.kindSite.Store(uint64(kind)<<56 | site&(1<<56-1))
	s.context.Store(context)
	s.seq.Store(seq)
}

// Events returns the ring's current contents, oldest first. Slots being
// concurrently rewritten (seq changed between reads) are skipped; the
// result is consistent for any interleaving.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	for i := range t.ring {
		s := &t.ring[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		ev := Event{
			Seq:     seq,
			Time:    s.time.Load(),
			Context: s.context.Load(),
		}
		ks := s.kindSite.Load()
		ev.Kind = EventKind(ks >> 56)
		ev.Site = ks & (1<<56 - 1)
		if s.seq.Load() != seq {
			continue // torn by a concurrent writer; drop
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump writes the ring's events as one line per record:
//
//	seq=42 t=1712345678901234 kind=anchor-push site=7 ctx=19
//
// oldest first — the post-mortem format dprun -trace prints.
func (t *Tracer) Dump(w io.Writer) error {
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintf(w, "seq=%d t=%d kind=%s site=%d ctx=%d\n",
			ev.Seq, ev.Time, ev.Kind, ev.Site, ev.Context); err != nil {
			return err
		}
	}
	return nil
}
