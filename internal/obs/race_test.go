//go:build race

package obs

// raceEnabled reports that this binary was built with -race, whose
// instrumentation inflates every atomic access — timing bounds are
// meaningless under it.
const raceEnabled = true
