package obs

import (
	"testing"
)

// The no-op-sink benchmarks quantify the disabled path: a nil metric is a
// single predictable branch, which is what keeps the encode hot path
// within its ≤2% overhead budget when observability is off (the
// end-to-end check is BenchmarkEncodeHotPath at the repo root, compared
// against results/ENCODE_HOTPATH_BASELINE.txt).

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() == 0 {
		b.Fatal("counter did not count")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench", nil)
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i & 63))
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(4096)
	for i := 0; i < b.N; i++ {
		tr.Record(EvCall, uint64(i), uint64(i))
	}
}

// TestDisabledSinkOverheadBound asserts the disabled-path bound directly:
// a nil-counter Inc must stay within a few nanoseconds per call (it
// compiles to a nil check and a skipped call). The bound is deliberately
// loose — this repo's CI runs on noisy shared containers — and the test
// takes the best of several attempts, standard practice for wall-clock
// assertions under contention.
func TestDisabledSinkOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound: skipped under -short")
	}
	if raceEnabled {
		t.Skip("wall-clock bound: race instrumentation inflates every call")
	}
	const boundNs = 8.0
	best := boundNs + 1
	for attempt := 0; attempt < 5 && best > boundNs; attempt++ {
		res := testing.Benchmark(func(b *testing.B) {
			var c *Counter
			var h *Histogram
			var tr *Tracer
			for i := 0; i < b.N; i++ {
				c.Inc()
				h.Observe(1)
				tr.Record(EvCall, 1, 1)
			}
		})
		if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < best {
			best = ns
		}
	}
	if best > boundNs {
		t.Fatalf("disabled-path cost %.2f ns per 3-sink event, want <= %.0f ns", best, boundNs)
	}
}
