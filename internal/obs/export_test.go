package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateExport = flag.Bool("update", false, "rewrite testdata export goldens")

// exportFixture builds a registry with one of everything, with fixed
// values, so the two export formats can be golden-tested byte for byte.
func exportFixture() *Registry {
	r := NewRegistry()
	r.Counter(MetricEncoderAdditions).Add(1234)
	r.Counter(MetricEncoderAnchorPushes).Add(56)
	r.Counter(MetricEncoderUCPPushes).Add(3)
	r.Counter(MetricServerBatches).Add(78)
	r.Counter(MetricServerShed).Add(9)
	r.Counter(MetricServerQuarantined).Add(2)
	r.Counter(MetricServerGroupFsyncs).Add(17)
	r.Counter(MetricServerCompactions).Add(4)
	r.Counter(MetricServerCompactedPairs).Add(512)
	r.Counter(MetricServerCompactNs).Add(73000)
	r.Counter(MetricServerOrphanSegments).Add(1)
	r.Gauge(MetricGraphNodes).Set(420)
	r.Gauge(MetricMaxID).Set(987654)
	r.Gauge(MetricServerQueueDepth).Set(11)
	r.Gauge(MetricServerSegments).Set(3)
	r.Gauge(MetricServerMemtableBytes).Set(4096)
	h := r.Histogram(MetricEncoderPieceDepth, []uint64{1, 2, 4, 8})
	for _, v := range []uint64{1, 1, 2, 3, 5, 8, 13} {
		h.Observe(v)
	}
	gb := r.Histogram(MetricServerGroupBatches, nil)
	for _, v := range []uint64{1, 3, 8, 8, 12} {
		gb.Observe(v)
	}
	cw := r.Histogram(MetricServerCommitWaitNs, CommitWaitBuckets)
	for _, v := range []uint64{250_000, 900_000, 4_000_000, 40_000_000} {
		cw.Observe(v)
	}
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateExport {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Export -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("export drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestExportJSONGolden pins the flat JSON export shape.
func TestExportJSONGolden(t *testing.T) {
	var b bytes.Buffer
	if err := exportFixture().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	// The document must be valid JSON with flat counters.
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc[MetricEncoderAdditions] != float64(1234) {
		t.Fatalf("%s = %v, want 1234", MetricEncoderAdditions, doc[MetricEncoderAdditions])
	}
	checkGolden(t, "export.json.golden", b.Bytes())
}

// TestExportPrometheusGolden pins the Prometheus text exposition shape.
func TestExportPrometheusGolden(t *testing.T) {
	var b bytes.Buffer
	if err := exportFixture().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "export.prom.golden", b.Bytes())
}
