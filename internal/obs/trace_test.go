package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestTracerWraparound: the ring keeps exactly the newest Cap events, in
// sequence order, once more than Cap have been recorded.
func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(10) // rounds up to 16
	if tr.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", tr.Cap())
	}
	const n = 40
	for i := 1; i <= n; i++ {
		tr.Record(EvEmit, uint64(i), uint64(100+i))
	}
	if tr.Recorded() != n {
		t.Fatalf("recorded = %d, want %d", tr.Recorded(), n)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("len(events) = %d, want 16", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(n - 16 + 1 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("events[%d].Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Site != wantSeq || ev.Context != 100+wantSeq {
			t.Fatalf("events[%d] fields do not match seq %d: %+v", i, wantSeq, ev)
		}
		if ev.Kind != EvEmit {
			t.Fatalf("events[%d].Kind = %v, want emit", i, ev.Kind)
		}
	}
}

// TestTracerPartialFill: fewer records than capacity dump completely and
// in order, with no phantom slots.
func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(64)
	tr.Record(EvAnchorPush, 7, 19)
	tr.Record(EvAnchorPop, 7, 19)
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != EvAnchorPush || evs[1].Kind != EvAnchorPop {
		t.Fatalf("events = %+v", evs)
	}
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "kind=anchor-push site=7 ctx=19") {
		t.Fatalf("dump missing record:\n%s", b.String())
	}
}

// TestTracerConcurrentWriters is the race-gate test for the lock-free
// ring: many writers lapping a small ring while a reader dumps it. Every
// Record call writes Context = 7*Site, so any surviving record that
// breaks the invariant was torn across two Record calls — exactly what
// the seq validation must prevent. The total sequence count stays exact.
func TestTracerConcurrentWriters(t *testing.T) {
	tr := NewTracer(32)
	const (
		workers = 8
		perW    = 8000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			for _, ev := range tr.Events() {
				if ev.Context != ev.Site*7 || ev.Kind != EvEnter {
					t.Errorf("torn record survived the seq check: %+v", ev)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				v := uint64(w)<<32 | uint64(i)
				tr.Record(EvEnter, v, v*7)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := tr.Recorded(); got != workers*perW {
		t.Fatalf("recorded = %d, want %d", got, workers*perW)
	}
	evs := tr.Events()
	if len(evs) == 0 || len(evs) > tr.Cap() {
		t.Fatalf("events = %d records, cap %d", len(evs), tr.Cap())
	}
	for _, ev := range evs {
		if ev.Context != ev.Site*7 {
			t.Fatalf("torn record in final dump: %+v", ev)
		}
	}
}
