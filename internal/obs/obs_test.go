package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilSinks: every metric type, and the registry itself, must be a
// valid no-op when nil — this is the disabled path the whole design
// hinges on.
func TestNilSinks(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter must read as zero")
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 || g.Name() != "" {
		t.Fatal("nil gauge must read as zero")
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil sinks")
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if r.Tracer() != nil {
		t.Fatal("nil registry must have no tracer")
	}
	var tr *Tracer
	tr.Record(EvCall, 1, 2)
	if tr.Events() != nil || tr.Cap() != 0 || tr.Recorded() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	if err := tr.Dump(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryIdempotent: the same name yields the same metric, so
// components sharing one registry aggregate together.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(MetricEncoderAdditions)
	b := r.Counter(MetricEncoderAdditions)
	if a != b {
		t.Fatal("Counter registration is not idempotent")
	}
	a.Inc()
	b.Add(2)
	if got := a.Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	if r.Histogram("h", []uint64{1, 2}) != r.Histogram("h", nil) {
		t.Fatal("Histogram registration is not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge registration is not idempotent")
	}
}

// TestCounterConcurrency is the race-gate test for the atomic counters:
// many goroutines hammer one counter, one gauge, and one histogram; the
// totals must be exact.
func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []uint64{4, 16, 64})
	const (
		workers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Set(uint64(w))
				h.Observe(uint64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perW {
		t.Fatalf("counter = %d, want %d", got, workers*perW)
	}
	if got := h.Count(); got != workers*perW {
		t.Fatalf("histogram count = %d, want %d", got, workers*perW)
	}
	if g.Value() >= workers {
		t.Fatalf("gauge = %d, want a worker id < %d", g.Value(), workers)
	}
	// Bucket totals must add up to the observation count.
	var wantSum uint64
	for i := 0; i < perW; i++ {
		wantSum += uint64(i % 100)
	}
	if got := h.Sum(); got != wantSum*workers {
		t.Fatalf("histogram sum = %d, want %d", got, wantSum*workers)
	}
}

// TestHistogramBuckets pins the bucket boundary rule: v <= bound lands in
// the bucket, larger values fall through to +Inf.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("depth", []uint64{1, 4})
	for _, v := range []uint64{0, 1, 2, 4, 5, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`depth_bucket{le="1"} 2`,    // 0, 1
		`depth_bucket{le="4"} 4`,    // + 2, 4 (cumulative)
		`depth_bucket{le="+Inf"} 6`, // + 5, 100
		"depth_sum 112",
		"depth_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
