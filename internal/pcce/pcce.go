// Package pcce implements Precise Calling Context Encoding (Sumner et al.,
// ICSE 2010), the baseline DeltaPath improves on. PCCE adapts the
// Ball–Larus path-numbering algorithm to call graphs:
//
//   - the number of calling contexts NC of each node is the sum of the NCs
//     of its predecessors (NC of the entry is 1);
//   - a node's incoming edges get addition values: 0 for the first edge, and
//     for each following edge the sum of the NCs of the predecessors of the
//     previously processed edges (Section 2 of the DeltaPath paper).
//
// Addition values are per edge. At a virtual call site with several dispatch
// targets the edges carry conflicting values, so instrumentation needs a
// per-target dispatch switch — the very cost DeltaPath's Algorithm 1
// eliminates. The produced Spec therefore has PerEdge set.
//
// When an addition value would overflow the configured limit, PCCE prunes
// the edge: it carries no addition value and is handled at runtime like a
// recursive edge (save the ID and the call site, reset, continue), at a
// relatively high runtime cost — the scalability weakness Section 3.2 of
// the DeltaPath paper addresses with anchor nodes.
package pcce

import (
	"fmt"
	"math"

	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
)

// Options configures the encoding.
type Options struct {
	// MaxID is the largest representable encoding value; addition values
	// and context counts are kept at or below it by pruning edges.
	// Zero means 2^63-1.
	MaxID uint64
}

// Result is the outcome of the PCCE static analysis.
type Result struct {
	Spec *encoding.Spec
	// NC is the number of calling contexts of each node (clamped by
	// pruning; at least 1).
	NC []uint64
	// Pruned lists the edges pruned to avoid overflow, in discovery order.
	Pruned []callgraph.Edge
	// MaxID is the largest encoding ID value any context can take: the
	// static encoding-space requirement (Table 1's "max. ID" column).
	MaxID uint64
	// VirtualConflicts counts call sites whose dispatch targets carry
	// differing addition values — the sites where PCCE needs a dispatch
	// switch and DeltaPath does not.
	VirtualConflicts int
}

// Encode runs the PCCE analysis on g.
func Encode(g *callgraph.Graph, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	maxID := opts.MaxID
	if maxID == 0 {
		maxID = math.MaxInt64
	}
	entry, _ := g.Entry()
	rec := g.RecursiveEdges()
	topo, err := g.TopoOrder(rec)
	if err != nil {
		return nil, fmt.Errorf("pcce: %w", err)
	}

	spec := &encoding.Spec{
		Graph:   g,
		EdgeAV:  make(map[callgraph.Edge]uint64),
		SiteAV:  make(map[callgraph.Site]uint64),
		PerEdge: true,
		Push:    make(map[callgraph.Edge]encoding.PieceKind),
	}
	for e := range rec {
		spec.Push[e] = encoding.PieceRecursion
	}

	res := &Result{Spec: spec, NC: make([]uint64, g.NumNodes())}

	for _, n := range topo {
		var sum uint64
		for _, e := range g.ForwardIn(n, rec) {
			p := e.Caller
			nc := res.NC[p]
			if nc > maxID-sum {
				// Overflow: prune this edge; it starts a new piece
				// at runtime instead of contributing a range.
				spec.Push[e] = encoding.PiecePruned
				res.Pruned = append(res.Pruned, e)
				continue
			}
			spec.EdgeAV[e] = sum
			sum += nc
		}
		if sum > res.MaxID {
			res.MaxID = sum
		}
		if sum == 0 {
			// Entry, or a node reached only through recursive or
			// pruned edges: it starts pieces, so reserve width 1 to
			// keep downstream ranges disjoint.
			sum = 1
		}
		res.NC[n] = sum
	}
	_ = entry
	if res.MaxID > 0 {
		res.MaxID-- // NC is an exclusive bound; the largest ID is NC-1.
	}

	res.VirtualConflicts = countConflicts(g, spec)
	return res, nil
}

// countConflicts counts sites whose (non-push) dispatch edges disagree on
// the addition value.
func countConflicts(g *callgraph.Graph, spec *encoding.Spec) int {
	n := 0
	for _, s := range g.Sites() {
		var first uint64
		seen := false
		conflict := false
		for _, e := range g.SiteTargets(s) {
			if _, pushed := spec.Push[e]; pushed {
				continue
			}
			av := spec.EdgeAV[e]
			if !seen {
				first, seen = av, true
			} else if av != first {
				conflict = true
			}
		}
		if conflict {
			n++
		}
	}
	return n
}
