package pcce

import (
	"fmt"
	"strings"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
)

// figure1 builds the exact graph of Figure 1 of the DeltaPath paper, with
// incoming edges inserted in the order that reproduces the figure's
// addition values.
func figure1() (*callgraph.Graph, map[string]callgraph.NodeID) {
	g := callgraph.New()
	ids := make(map[string]callgraph.NodeID)
	for _, n := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		ids[n] = g.AddNode(n, false)
	}
	g.SetEntry(ids["A"])
	g.AddEdge(ids["A"], 0, ids["B"]) // AB
	g.AddEdge(ids["A"], 1, ids["C"]) // AC
	g.AddEdge(ids["B"], 0, ids["D"]) // BD (first in-edge of D)
	g.AddEdge(ids["C"], 0, ids["D"]) // CD
	g.AddEdge(ids["D"], 0, ids["E"]) // DE (first in-edge of E)
	g.AddEdge(ids["D"], 1, ids["E"]) // D'E (second site in D calling E)
	g.AddEdge(ids["D"], 2, ids["F"]) // DF (first in-edge of F)
	g.AddEdge(ids["C"], 1, ids["F"]) // CF
	g.AddEdge(ids["E"], 0, ids["G"]) // EG (first in-edge of G)
	g.AddEdge(ids["F"], 0, ids["G"]) // FG
	g.AddEdge(ids["C"], 2, ids["G"]) // CG
	return g, ids
}

func TestFigure1NC(t *testing.T) {
	g, ids := figure1()
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"A": 1, "B": 1, "C": 1, "D": 2, "E": 4, "F": 3, "G": 8}
	for name, nc := range want {
		if got := res.NC[ids[name]]; got != nc {
			t.Errorf("NC[%s] = %d, want %d", name, got, nc)
		}
	}
}

func TestFigure1AdditionValues(t *testing.T) {
	g, ids := figure1()
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	av := func(from string, label int32, to string) uint64 {
		return res.Spec.EdgeAV[callgraph.Edge{Caller: ids[from], Callee: ids[to], Label: label}]
	}
	cases := []struct {
		from  string
		label int32
		to    string
		want  uint64
	}{
		{"A", 0, "B", 0},
		{"A", 1, "C", 0},
		{"B", 0, "D", 0},
		{"C", 0, "D", 1},
		{"D", 0, "E", 0}, // DE
		{"D", 1, "E", 2}, // D'E — the figure's "+2"
		{"D", 2, "F", 0}, // DF
		{"C", 1, "F", 2}, // CF — the figure's "+2"
		{"E", 0, "G", 0}, // EG
		{"F", 0, "G", 4}, // FG — the figure's "+4"
		{"C", 2, "G", 7}, // CG — the figure's "+7"
	}
	for _, c := range cases {
		if got := av(c.from, c.label, c.to); got != c.want {
			t.Errorf("AV[%s->%s (label %d)] = %d, want %d", c.from, c.to, c.label, got, c.want)
		}
	}
}

// TestFigure1Encodings checks the encoding table printed in Figure 1,
// including the worked example ACFG = 6.
func TestFigure1Encodings(t *testing.T) {
	g, _ := figure1()
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	name := func(id callgraph.NodeID) string { return g.Name(id) }
	// A node sequence like ABDE can arise through either of D's two sites
	// calling E, with distinct encodings; collect the set of IDs per
	// sequence.
	got := make(map[string]map[uint64]bool)
	encoding.EnumeratePaths(g, 0, 16, func(path []callgraph.Edge) {
		st, err := encoding.EncodePath(res.Spec, path)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, n := range encoding.PathNodes(g, path) {
			sb.WriteString(name(n))
		}
		if len(st.Stack) != 0 {
			t.Fatalf("acyclic context %s produced stack depth %d", sb.String(), st.Depth())
		}
		if got[sb.String()] == nil {
			got[sb.String()] = make(map[uint64]bool)
		}
		got[sb.String()][st.ID] = true
	})
	want := map[string]uint64{
		"ACFG":  6,
		"AB":    0,
		"AC":    0,
		"ABD":   0,
		"ACD":   1,
		"ABDE":  0, // via DE
		"ACDE":  1, // via DE
		"ABDF":  0,
		"ACF":   2,
		"ABDFG": 4,
		"ACG":   7,
	}
	for ctx, id := range want {
		if !got[ctx][id] {
			t.Errorf("encodings of %s = %v, want to include %d", ctx, got[ctx], id)
		}
	}
	if res.MaxID != 7 {
		t.Errorf("MaxID = %d, want 7 (NC[G]-1)", res.MaxID)
	}
}

// TestFigure1DecodeWorkedExample follows Section 2's decoding walk-through:
// ID 6 at node G decodes to A C F G.
func TestFigure1DecodeWorkedExample(t *testing.T) {
	g, ids := figure1()
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec := encoding.NewDecoder(res.Spec)
	st := encoding.NewState(ids["A"])
	st.ID = 6
	names, err := dec.DecodeNames(st, ids["G"])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, "") != "ACFG" {
		t.Fatalf("decode(6@G) = %v, want ACFG", names)
	}
}

// TestExhaustiveUniqueRoundTrip checks, over every context of Figure 1,
// that encodings are unique per ending node and decode back exactly.
func TestExhaustiveUniqueRoundTrip(t *testing.T) {
	g, _ := figure1()
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec := encoding.NewDecoder(res.Spec)
	seen := make(map[string]string)
	count := 0
	encoding.EnumeratePaths(g, 0, 16, func(path []callgraph.Edge) {
		count++
		st, err := encoding.EncodePath(res.Spec, path)
		if err != nil {
			t.Fatal(err)
		}
		nodes := encoding.PathNodes(g, path)
		end := nodes[len(nodes)-1]
		var want []string
		for _, n := range nodes {
			want = append(want, g.Name(n))
		}
		wantStr := strings.Join(want, ">")
		// Contexts traversing distinct site labels (D->E vs D'->E) share
		// node sequences but must still decode to the same node sequence;
		// uniqueness is over (encoding key) -> node sequence.
		key := st.Key(end)
		if prev, dup := seen[key]; dup && prev != wantStr {
			t.Fatalf("encoding collision: key %q is %s and %s", key, prev, wantStr)
		}
		seen[key] = wantStr
		names, err := dec.DecodeNames(st, end)
		if err != nil {
			t.Fatalf("decode %s: %v", wantStr, err)
		}
		if strings.Join(names, ">") != wantStr {
			t.Fatalf("round trip: got %v, want %s", names, wantStr)
		}
	})
	if count < 20 {
		t.Fatalf("enumerated only %d contexts", count)
	}
}

// TestRecursionRoundTrip builds main -> f -> f (self recursion) -> g and
// checks stacked-piece decoding.
func TestRecursionRoundTrip(t *testing.T) {
	g := callgraph.New()
	mainN := g.AddNode("main", false)
	f := g.AddNode("f", false)
	gg := g.AddNode("g", false)
	g.SetEntry(mainN)
	g.AddEdge(mainN, 0, f)
	g.AddEdge(f, 0, f) // recursive
	g.AddEdge(f, 1, gg)
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec := encoding.NewDecoder(res.Spec)
	seen := make(map[string]string)
	encoding.EnumeratePaths(g, 3, 10, func(path []callgraph.Edge) {
		st, err := encoding.EncodePath(res.Spec, path)
		if err != nil {
			t.Fatal(err)
		}
		nodes := encoding.PathNodes(g, path)
		end := nodes[len(nodes)-1]
		var want []string
		for _, n := range nodes {
			want = append(want, g.Name(n))
		}
		wantStr := strings.Join(want, ">")
		key := st.Key(end)
		if prev, dup := seen[key]; dup && prev != wantStr {
			t.Fatalf("collision: %q is %s and %s", key, prev, wantStr)
		}
		seen[key] = wantStr
		names, err := dec.DecodeNames(st, end)
		if err != nil {
			t.Fatalf("decode %s: %v", wantStr, err)
		}
		if strings.Join(names, ">") != wantStr {
			t.Fatalf("round trip: got %v, want %s", names, wantStr)
		}
		// A context main f^k ... must use k-1 recursion pieces.
		recs := 0
		for _, el := range st.Stack {
			if el.Kind == encoding.PieceRecursion {
				recs++
			}
		}
		fCount := strings.Count(wantStr, "f")
		if fCount > 1 && recs != fCount-1 {
			t.Fatalf("%s: recursion pieces = %d, want %d", wantStr, recs, fCount-1)
		}
	})
}

// TestPruningOverflow forces pruning with a tiny MaxID on a diamond chain
// whose context counts double per layer.
func TestPruningOverflow(t *testing.T) {
	g := callgraph.New()
	prev := []callgraph.NodeID{g.AddNode("main", false)}
	g.SetEntry(prev[0])
	var label int32
	// Each layer: two nodes, each called by both nodes of the previous
	// layer; NC doubles per layer.
	for layer := 0; layer < 8; layer++ {
		var cur []callgraph.NodeID
		for i := 0; i < 2; i++ {
			n := g.AddNode(fmt.Sprintf("L%dN%d", layer, i), false)
			cur = append(cur, n)
			for _, p := range prev {
				g.AddEdge(p, label, n)
				label++
			}
		}
		prev = cur
	}
	res, err := Encode(g, Options{MaxID: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pruned) == 0 {
		t.Fatal("no edges pruned despite MaxID 15")
	}
	if res.MaxID > 15 {
		t.Fatalf("MaxID = %d exceeds limit 15", res.MaxID)
	}
	for _, nc := range res.NC {
		if nc > 16 {
			t.Fatalf("NC %d exceeds the encodable space", nc)
		}
	}
	// Round trip still exact despite pruning.
	dec := encoding.NewDecoder(res.Spec)
	seen := make(map[string]string)
	checked := 0
	encoding.EnumeratePaths(g, 0, 10, func(path []callgraph.Edge) {
		st, err := encoding.EncodePath(res.Spec, path)
		if err != nil {
			t.Fatal(err)
		}
		nodes := encoding.PathNodes(g, path)
		end := nodes[len(nodes)-1]
		var want []string
		for _, n := range nodes {
			want = append(want, g.Name(n))
		}
		wantStr := strings.Join(want, ">")
		key := st.Key(end)
		if prev, dup := seen[key]; dup && prev != wantStr {
			t.Fatalf("collision after pruning: %q is %s and %s", key, prev, wantStr)
		}
		seen[key] = wantStr
		names, err := dec.DecodeNames(st, end)
		if err != nil {
			t.Fatalf("decode %s: %v", wantStr, err)
		}
		if strings.Join(names, ">") != wantStr {
			t.Fatalf("round trip: got %v, want %s", names, wantStr)
		}
		checked++
	})
	if checked < 100 {
		t.Fatalf("checked only %d contexts", checked)
	}
}

// TestVirtualConflicts verifies PCCE reports sites needing a dispatch
// switch: two edges from one site with different addition values.
func TestVirtualConflicts(t *testing.T) {
	g := callgraph.New()
	a := g.AddNode("A", false)
	b := g.AddNode("B", false)
	c := g.AddNode("C", false)
	d := g.AddNode("D", false)
	g.SetEntry(a)
	g.AddEdge(a, 0, b)
	g.AddEdge(a, 1, c)
	g.AddEdge(b, 0, d) // first in-edge of D: AV 0
	g.AddEdge(c, 0, d) // AV 1
	g.AddEdge(c, 0, b) // same site in C: virtual dispatch to B (AV=1) and D
	res, err := Encode(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualConflicts == 0 {
		t.Fatal("virtual conflict not detected")
	}
	if !res.Spec.PerEdge {
		t.Fatal("PCCE spec must be per-edge")
	}
}

func TestNoEntryRejected(t *testing.T) {
	g := callgraph.New()
	g.AddNode("A", false)
	if _, err := Encode(g, Options{}); err == nil {
		t.Fatal("graph without entry accepted")
	}
}
