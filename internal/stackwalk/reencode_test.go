package stackwalk_test

// External test package: the replay test needs internal/instrument (which
// imports stackwalk), so an in-package test would be an import cycle.

import (
	"strings"
	"testing"

	"deltapath/internal/callgraph"
	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/instrument"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
	"deltapath/internal/stackwalk"
)

// TestReencodeMatchesGroundTruth runs instrumented programs and, at every
// emit point, re-derives an encoding.State from the walked stack and checks
// that it decodes (gaps removed) to exactly the walked stack — the property
// the resync path of graceful degradation rests on: a reencoded state is
// always a valid substitute for the incrementally maintained one.
func TestReencodeMatchesGroundTruth(t *testing.T) {
	programs := []struct {
		name    string
		src     string
		setting cha.Setting
		maxID   uint64
		seeds   int
	}{
		{name: "virtual", src: `
entry Main.main
class Main {
  method main { loop 4 { call Main.work; vcall Shape.area } emit top }
  method work { vcall Shape.area; emit w }
}
class Shape { method area { emit s } }
class Circle extends Shape { method area { call Shape.area; emit c } }
class Square extends Shape { method area { emit q } }
`, seeds: 6},
		{name: "anchors", src: `
entry M.main
class M {
  method main { loop 6 { call M.a; call M.b } emit top }
  method a { call M.c; call M.d }
  method b { call M.c; call M.d }
  method c { call M.e; emit c }
  method d { call M.e; call M.e; emit d }
  method e { emit e }
}
`, maxID: 3, seeds: 2},
		{name: "dynload", src: `
entry A.main
class A { method main { load X; call C.go; loop 8 { call B.go } emit top } }
class B { method go { vcall D.impl; emit b } }
class C { method go { call E.run; call D.impl } }
class D { method impl { emit d } }
class E { method run { emit e } }
dynamic class X extends D { method impl { call E.run; call D.impl; emit x } }
`, seeds: 4},
		{name: "selective", src: `
entry A.main
class A { method main { call B.go; emit top } }
class B { method go { call D.lib; emit b } }
library class D { method lib { call F.lib } }
library class F { method lib { call G.cb } }
class G { method cb { emit g } }
`, setting: cha.EncodingApplication, seeds: 2},
	}
	for _, p := range programs {
		t.Run(p.name, func(t *testing.T) {
			prog := lang.MustParse(p.src)
			build, err := cha.Build(prog, cha.Options{Setting: p.setting, KeepUnreachable: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Encode(build.Graph, core.Options{MaxID: p.maxID})
			if err != nil {
				t.Fatal(err)
			}
			plan, err := instrument.NewPlan(build, res.Spec, cpt.Compute(build.Graph))
			if err != nil {
				t.Fatal(err)
			}
			dec := encoding.NewDecoder(res.Spec)
			for seed := uint64(0); seed < uint64(p.seeds); seed++ {
				vm, err := minivm.NewVM(prog, seed)
				if err != nil {
					t.Fatal(err)
				}
				// The encoder only provides the probe traffic the VM
				// expects; the assertions are about Reencode alone.
				vm.SetProbes(instrument.NewEncoder(plan))
				vm.SetInstrumented(plan.InstrumentedMethods())
				walker := &stackwalk.Walker{Filter: plan.InstrumentedMethods()}
				checked := 0
				vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
					var path []callgraph.NodeID
					var truth []string
					for _, f := range walker.Capture(v) {
						if n, ok := build.NodeOf[f]; ok {
							path = append(path, n)
							truth = append(truth, f.String())
						}
					}
					if len(path) == 0 {
						return
					}
					entry, _ := build.Graph.Entry()
					st := stackwalk.Reencode(res.Spec, entry, path)
					names, err := dec.DecodeNames(st, path[len(path)-1])
					if err != nil {
						t.Fatalf("seed %d at %s: reencoded state undecodable: %v", seed, m, err)
					}
					var got []string
					for _, n := range names {
						if n != "..." {
							got = append(got, n)
						}
					}
					if strings.Join(got, ">") != strings.Join(truth, ">") {
						t.Fatalf("seed %d at %s: reencode decodes to\n  %s\nwant\n  %s",
							seed, m, strings.Join(got, ">"), strings.Join(truth, ">"))
					}
					checked++
				}
				if err := vm.Run(); err != nil {
					t.Fatal(err)
				}
				if checked == 0 {
					t.Fatalf("seed %d: no contexts checked; test is vacuous", seed)
				}
			}
		})
	}
}

// TestReencodeEmptyPath pins the degenerate case: a walk that saw no
// analysed frame reencodes to a fresh state at the program entry.
func TestReencodeEmptyPath(t *testing.T) {
	spec := &encoding.Spec{Graph: callgraph.New()}
	entry := spec.Graph.AddNode("main", false)
	st := stackwalk.Reencode(spec, entry, nil)
	if st.ID != 0 || st.Start != entry || len(st.Stack) != 0 {
		t.Fatalf("unexpected state %+v", st)
	}
}
