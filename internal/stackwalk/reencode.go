package stackwalk

import (
	"deltapath/internal/callgraph"
	"deltapath/internal/encoding"
	"deltapath/internal/obs"
)

// Reencode derives a valid encoding.State from a walked stack: the state
// the instrumentation would hold had every probe event along the walked
// path fired correctly. path is the ground-truth call stack filtered to
// analysed methods and mapped to graph nodes, outermost first; entry is the
// program entry, used when the walk saw no analysed frame at all.
//
// This is the recovery half of graceful degradation (the paper's Section 7
// stack-walking baseline turned into a repair tool): when the runtime
// detects that its incrementally maintained state is corrupt — a dropped
// event, a flipped bit — it walks the stack once, replays the walked path
// through the spec with the same rules the encoder applies per event
// (addition values for plain edges, piece pushes for recursive/pruned
// edges and anchors, a hazardous-UCP push where no static edge explains a
// transition), and resumes exact incremental tracking from the result. The
// cost is O(depth), the same bill as one anchor push amortized over the
// events since the fault.
func Reencode(spec *encoding.Spec, entry callgraph.NodeID, path []callgraph.NodeID) *encoding.State {
	return ReencodeObserved(spec, entry, path, nil)
}

// ReencodeObserved is Reencode with an observability hook: reencodes (nil
// = no-op) counts each state rebuild, the healer's primary rate signal.
func ReencodeObserved(spec *encoding.Spec, entry callgraph.NodeID, path []callgraph.NodeID, reencodes *obs.Counter) *encoding.State {
	return ReencodeDirect(spec, entry, path, nil, reencodes)
}

// ReencodeDirect is ReencodeObserved with call adjacency from the walk:
// direct, when non-nil, is parallel to path and reports for each frame
// whether it was entered directly from the previous kept frame (see
// Walker.CaptureNodesDirect). A transition that is not direct flowed
// through unanalysed frames, so the replay pushes a hazardous UCP there —
// matching what the live probes did — even when a static edge happens to
// connect the pair. Without the flags a connecting edge is preferred, the
// most compact state consistent with the filtered path.
func ReencodeDirect(spec *encoding.Spec, entry callgraph.NodeID, path []callgraph.NodeID, direct []bool, reencodes *obs.Counter) *encoding.State {
	reencodes.Inc()
	if len(path) == 0 {
		return encoding.NewState(entry)
	}
	st := encoding.NewState(path[0])
	if spec.Anchors[path[0]] {
		// Task entries are anchors; their Enter pushes an (empty) piece.
		st.PushAnchor(path[0])
	}
	prev := path[0]
	for i, n := range path[1:] {
		viaCall := direct == nil || direct[i+1]
		pushedEdge := false
		if e, ok := findEdge(spec, prev, n); ok && viaCall {
			if kind, push := spec.Push[e]; push {
				st.PushCallEdge(kind, e.Site(), n)
				pushedEdge = true
			} else {
				st.Add(spec.AV(e))
			}
		} else {
			// No static edge explains this transition: control flowed
			// through unanalysed frames. This is exactly the situation
			// call path tracking answers with a hazardous-UCP push, so
			// the replay pushes one too and the decoded context shows a
			// gap here.
			st.PushUCP(callgraph.Site{Caller: prev}, st.ID, prev, n)
		}
		if spec.Anchors[n] && !pushedEdge {
			st.PushAnchor(n)
		}
		prev = n
	}
	return st
}

// findEdge returns a static edge caller→callee, preferring a plain
// (non-push) edge so the replay produces the fewest pieces. When several
// sites connect the pair the choice does not matter for decoding: the
// decoded context is a node sequence, identical whichever site carried the
// call.
func findEdge(spec *encoding.Spec, caller, callee callgraph.NodeID) (callgraph.Edge, bool) {
	var found callgraph.Edge
	ok := false
	for _, e := range spec.Graph.Out(caller) {
		if e.Callee != callee {
			continue
		}
		if _, push := spec.Push[e]; !push {
			return e, true
		}
		if !ok {
			found, ok = e, true
		}
	}
	return found, ok
}
