// Package stackwalk is the trivial exact baseline: obtain the calling
// context by walking the call stack at the point of interest. It is what
// debuggers and error reporters do (Section 7, "Stack Walking"), precise by
// construction but far too expensive for continuous tracking — the very
// motivation for encoding techniques.
//
// On the minivm substrate a walk is a copy of the interpreter's frame list,
// optionally filtered to instrumented (application) methods so its output
// is comparable with selective encodings.
package stackwalk

import (
	"strings"

	"deltapath/internal/minivm"
)

// Walker captures calling contexts from a VM by walking its stack.
type Walker struct {
	// Filter, when non-nil, keeps only these methods in captured
	// contexts (mirroring the encoding-application setting).
	Filter map[minivm.MethodRef]bool
}

// Capture returns the current calling context, outermost first.
func (w *Walker) Capture(vm *minivm.VM) []minivm.MethodRef {
	st := vm.Stack()
	if w.Filter == nil {
		return st
	}
	out := st[:0]
	for _, f := range st {
		if w.Filter[f] {
			out = append(out, f)
		}
	}
	return out
}

// Key canonicalizes a context for uniqueness accounting.
func Key(ctx []minivm.MethodRef) string {
	parts := make([]string, len(ctx))
	for i, f := range ctx {
		parts[i] = f.String()
	}
	return strings.Join(parts, ">")
}
