// Package stackwalk is the trivial exact baseline: obtain the calling
// context by walking the call stack at the point of interest. It is what
// debuggers and error reporters do (Section 7, "Stack Walking"), precise by
// construction but far too expensive for continuous tracking — the very
// motivation for encoding techniques.
//
// On the minivm substrate a walk is a copy of the interpreter's frame list,
// optionally filtered to instrumented (application) methods so its output
// is comparable with selective encodings.
package stackwalk

import (
	"strings"

	"deltapath/internal/callgraph"
	"deltapath/internal/minivm"
	"deltapath/internal/obs"
)

// Walker captures calling contexts from a VM by walking its stack.
type Walker struct {
	// Filter, when non-nil, keeps only these methods in captured
	// contexts (mirroring the encoding-application setting).
	Filter map[minivm.MethodRef]bool

	// walks/frames are observability hooks (nil = no-op): how often the
	// expensive ground-truth walk runs, and how many frames it copied —
	// the healer's cost signal.
	walks  *obs.Counter
	frames *obs.Counter
}

// Observe resolves the walker's metric hooks from reg (nil disables).
func (w *Walker) Observe(reg *obs.Registry) {
	w.walks = reg.Counter(obs.MetricStackwalkWalks)
	w.frames = reg.Counter(obs.MetricStackwalkFrames)
}

// Capture returns the current calling context, outermost first.
func (w *Walker) Capture(vm *minivm.VM) []minivm.MethodRef {
	st := vm.Stack()
	w.walks.Inc()
	w.frames.Add(uint64(len(st)))
	if w.Filter == nil {
		return st
	}
	out := st[:0]
	for _, f := range st {
		if w.Filter[f] {
			out = append(out, f)
		}
	}
	return out
}

// CaptureNodes captures the current calling context directly as graph
// nodes, in one pass: filter, map through nodeOf, and append to buf
// (which the caller may reuse across walks to avoid allocation). Frames
// outside the filter or unknown to nodeOf are dropped, matching
// Capture followed by a nodeOf lookup per frame.
func (w *Walker) CaptureNodes(vm *minivm.VM, nodeOf map[minivm.MethodRef]callgraph.NodeID, buf []callgraph.NodeID) []callgraph.NodeID {
	depth := vm.Depth()
	w.walks.Inc()
	w.frames.Add(uint64(depth))
	for i := 0; i < depth; i++ {
		f := vm.Frame(i)
		if w.Filter != nil && !w.Filter[f] {
			continue
		}
		if n, ok := nodeOf[f]; ok {
			buf = append(buf, n)
		}
	}
	return buf
}

// CaptureNodesDirect is CaptureNodes plus call adjacency: alongside the
// node for each kept frame it records whether that frame sits immediately
// above the previous kept frame on the raw stack — i.e. whether the call
// that created it came directly from the previous kept frame, with no
// dropped (unanalysed or filtered-out) frames in between. For the first
// kept frame the flag reports whether it is the raw stack bottom. The
// reencoder uses the flags to place hazardous-UCP pushes exactly where
// the live instrumentation would have, instead of guessing a direct edge
// when one happens to exist. Both buffers may be reused across walks.
func (w *Walker) CaptureNodesDirect(vm *minivm.VM, nodeOf map[minivm.MethodRef]callgraph.NodeID, buf []callgraph.NodeID, dbuf []bool) ([]callgraph.NodeID, []bool) {
	depth := vm.Depth()
	w.walks.Inc()
	w.frames.Add(uint64(depth))
	dropped := false
	for i := 0; i < depth; i++ {
		f := vm.Frame(i)
		if w.Filter != nil && !w.Filter[f] {
			dropped = true
			continue
		}
		n, ok := nodeOf[f]
		if !ok {
			dropped = true
			continue
		}
		buf = append(buf, n)
		dbuf = append(dbuf, !dropped)
		dropped = false
	}
	return buf, dbuf
}

// Key canonicalizes a context for uniqueness accounting.
func Key(ctx []minivm.MethodRef) string {
	parts := make([]string, len(ctx))
	for i, f := range ctx {
		parts[i] = f.String()
	}
	return strings.Join(parts, ">")
}
