package stackwalk

import (
	"testing"

	"deltapath/internal/lang"
	"deltapath/internal/minivm"
)

func TestCaptureAndFilter(t *testing.T) {
	prog := lang.MustParse(`
entry A.main
class A { method main { call B.f } }
class B { method f { call C.g } }
class C { method g { emit x } }
`)
	vm, err := minivm.NewVM(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := &Walker{}
	filtered := &Walker{Filter: map[minivm.MethodRef]bool{
		{Class: "A", Method: "main"}: true,
		{Class: "C", Method: "g"}:    true,
	}}
	var gotFull, gotFiltered []minivm.MethodRef
	vm.OnEmit = func(v *minivm.VM, _ minivm.MethodRef, _ string) {
		gotFull = full.Capture(v)
		gotFiltered = filtered.Capture(v)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if Key(gotFull) != "A.main>B.f>C.g" {
		t.Fatalf("full capture = %q", Key(gotFull))
	}
	if Key(gotFiltered) != "A.main>C.g" {
		t.Fatalf("filtered capture = %q", Key(gotFiltered))
	}
}

func TestKeyEmpty(t *testing.T) {
	if Key(nil) != "" {
		t.Fatalf("Key(nil) = %q", Key(nil))
	}
}
