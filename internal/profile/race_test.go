package profile

import (
	"fmt"
	"sync"
	"testing"
)

// TestStoreRaceInternSnapshot is the sharded store's race/stress gate,
// wired into `make race` via the ordinary test run: 8 goroutines perform
// 10k interleaved Intern and Snapshot calls each against one store, and
// the final counts must equal the serial sum. Under -race this also proves
// the shard locking and the atomic aggregate counters are sound.
func TestStoreRaceInternSnapshot(t *testing.T) {
	const (
		goroutines = 8
		ops        = 10000
		distinct   = 64
	)
	records := make([][]byte, distinct)
	for i := range records {
		records[i] = []byte(fmt.Sprintf("ctx-record-%03d", i))
	}

	store := NewStore(16)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				// Interleave: every 512th op takes a full snapshot while
				// the other goroutines keep interning.
				if i%512 == 511 {
					if snap := store.Snapshot(); len(snap) > distinct {
						panic(fmt.Sprintf("snapshot grew past corpus: %d records", len(snap)))
					}
					continue
				}
				store.Intern(records[(g*13+i)%distinct])
			}
		}(g)
	}
	wg.Wait()

	// Serial reference: replay the same access pattern single-threaded.
	expected := make(map[string]uint64)
	var expTotal uint64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < ops; i++ {
			if i%512 == 511 {
				continue
			}
			expected[string(records[(g*13+i)%distinct])]++
			expTotal++
		}
	}

	if store.Total() != expTotal {
		t.Fatalf("Total = %d, want %d", store.Total(), expTotal)
	}
	if store.Unique() != uint64(len(expected)) {
		t.Fatalf("Unique = %d, want %d", store.Unique(), len(expected))
	}
	snap := store.Snapshot()
	if len(snap) != len(expected) {
		t.Fatalf("snapshot has %d records, want %d", len(snap), len(expected))
	}
	seenIDs := make(map[uint64]bool)
	var total uint64
	for _, r := range snap {
		want, ok := expected[string(r.Key)]
		if !ok {
			t.Fatalf("unexpected record %q in snapshot", r.Key)
		}
		if r.Count != want {
			t.Fatalf("record %q: count %d, want %d", r.Key, r.Count, want)
		}
		if seenIDs[r.ID] {
			t.Fatalf("interned ID %d assigned twice", r.ID)
		}
		seenIDs[r.ID] = true
		if r.ID >= uint64(len(expected)) {
			t.Fatalf("interned ID %d not dense (%d records)", r.ID, len(expected))
		}
		total += r.Count
	}
	if total != expTotal {
		t.Fatalf("snapshot counts sum to %d, want %d", total, expTotal)
	}
}
