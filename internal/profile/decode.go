package profile

import (
	"context"
	"io"
	"sort"
	"sync"

	"deltapath/internal/obs"
)

// HotContext is one row of a decoded profile report.
type HotContext struct {
	// Context is the rendered calling context ("A.main > B.run > ...").
	Context string
	// Count is the aggregate hit count.
	Count uint64
}

// Report is the result of decoding a profile: every distinct calling
// context with its count, hottest first (ties broken by context string, so
// the order is fully deterministic regardless of worker count).
type Report struct {
	Rows []HotContext
	// Records is the number of record entries read from the profile
	// (duplicate records are possible in an append-mode profile and are
	// merged into one row).
	Records uint64
	// Total is the aggregate count across all rows.
	Total uint64
}

// Top returns the first n rows (all rows when n <= 0 or n exceeds the row
// count).
func (r *Report) Top(n int) []HotContext {
	if n <= 0 || n > len(r.Rows) {
		return r.Rows
	}
	return r.Rows[:n]
}

// decodeJob is one record fanned out to the worker pool.
type decodeJob struct {
	record string
	count  uint64
}

// Decode reads every record of r, renders each through decode on a pool of
// workers goroutines, and merges the results into a deterministic Report.
//
// Each worker memoizes the records it has already decoded, so append-mode
// profiles (where one record can recur with separate counts) pay for each
// distinct record at most once per worker; the expensive per-piece work is
// additionally shared across workers by the encoding.Decoder's internal
// territory/in-edge caches, which decode closes over.
//
// The first error — a corrupt record, a failed decode — aborts the run;
// remaining records are drained but not decoded.
func Decode(r *Reader, workers int, decode func(record []byte) (string, error)) (*Report, error) {
	return DecodeContext(context.Background(), r, workers, decode, nil)
}

// DecodeObserved is Decode with an observability hook: reg (nil = no-op)
// receives the per-worker memo's hit/miss counters, the measure of how much
// decode work append-mode duplication saved.
func DecodeObserved(r *Reader, workers int, decode func(record []byte) (string, error), reg *obs.Registry) (*Report, error) {
	return DecodeContext(context.Background(), r, workers, decode, reg)
}

// DecodeContext is DecodeObserved with cancellation: when ctx is cancelled
// the reader stops feeding the pool, workers drain the queue without
// decoding, and the call returns ctx.Err() promptly — between records, not
// mid-record, so an in-flight batch decode aborts within one record's
// decode time. This is the hook a long-running server's shutdown path uses
// to cut short /top and /decode work it no longer needs.
func DecodeContext(ctx context.Context, r *Reader, workers int, decode func(record []byte) (string, error), reg *obs.Registry) (*Report, error) {
	memoHits := reg.Counter(obs.MetricProfileDecodeMemoHits)
	memoMisses := reg.Counter(obs.MetricProfileDecodeMemoMiss)
	if workers < 1 {
		workers = 1
	}

	jobs := make(chan decodeJob, 4*workers)
	var (
		readErr error
		mu      sync.Mutex
		wg      sync.WaitGroup
		failed  bool
		firstEr error
		merged  = make(map[string]uint64)
		total   uint64
	)

	// Reader goroutine: stream records into the pool. On corrupt input or
	// cancellation it stops; workers drain whatever was queued.
	go func() {
		defer close(jobs)
		for {
			if ctx.Err() != nil {
				return
			}
			rec, count, err := r.Next()
			if err != nil {
				if err != io.EOF {
					readErr = err
				}
				return
			}
			select {
			case jobs <- decodeJob{record: string(rec), count: count}:
			case <-ctx.Done():
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			memo := make(map[string]string) // record -> rendered context
			local := make(map[string]uint64)
			var localTotal uint64
			for j := range jobs {
				mu.Lock()
				stop := failed
				mu.Unlock()
				if stop || ctx.Err() != nil {
					continue // drain without decoding
				}
				ctx, ok := memo[j.record]
				if ok {
					memoHits.Inc()
				} else {
					memoMisses.Inc()
					var err error
					ctx, err = decode([]byte(j.record))
					if err != nil {
						mu.Lock()
						if !failed {
							failed = true
							firstEr = err
						}
						mu.Unlock()
						continue
					}
					memo[j.record] = ctx
				}
				local[ctx] += j.count
				localTotal += j.count
			}
			mu.Lock()
			for ctx, c := range local {
				merged[ctx] += c
			}
			total += localTotal
			mu.Unlock()
		}()
	}
	wg.Wait()

	// Error precedence: a real decode failure names the broken record; a
	// read error names the corrupt stream; cancellation is only the answer
	// when nothing else went wrong first.
	if failed {
		return nil, firstEr
	}
	if readErr != nil {
		return nil, readErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{Records: r.Records(), Total: total}
	rep.Rows = make([]HotContext, 0, len(merged))
	for ctx, c := range merged {
		rep.Rows = append(rep.Rows, HotContext{Context: ctx, Count: c})
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Count != rep.Rows[j].Count {
			return rep.Rows[i].Count > rep.Rows[j].Count
		}
		return rep.Rows[i].Context < rep.Rows[j].Context
	})
	return rep, nil
}
