package profile

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// buildTwoRecordProfile returns a valid two-record .dpp stream plus the
// offsets of its structural boundaries: header end, end of record 0, end of
// record 1 (== len).
func buildTwoRecordProfile(t *testing.T) (data []byte, headerEnd, rec0End int) {
	t.Helper()
	var head bytes.Buffer
	w, err := NewWriter(&head, testDigest())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	headerEnd = head.Len()

	var buf bytes.Buffer
	w, err = NewWriter(&buf, testDigest())
	if err != nil {
		t.Fatal(err)
	}
	// Record 0: multi-byte count (300 needs a 2-byte uvarint) so a cut can
	// land mid-varint. Record 1: multi-byte body.
	if err := w.Add([]byte{0xaa, 0xbb, 0xcc}, 300); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec0End = buf.Len()
	if err := w.Add([]byte("second-record-body"), 7); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), headerEnd, rec0End
}

// TestReaderTruncationOffsets cuts a valid profile at every byte offset and
// asserts the truncation contract: a cut inside the header fails NewReader;
// a cut exactly at a record boundary is a clean io.EOF; a cut anywhere
// inside a record is ErrTruncatedRecord — never a clean EOF, never a
// generic corruption error, so a WAL replayer can drop exactly the final
// partial record and keep every complete one before it.
func TestReaderTruncationOffsets(t *testing.T) {
	data, headerEnd, rec0End := buildTwoRecordProfile(t)
	for cut := 0; cut <= len(data); cut++ {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if cut < headerEnd {
			if err == nil {
				t.Errorf("cut %d (inside header): NewReader accepted", cut)
			}
			continue
		}
		if err != nil {
			t.Errorf("cut %d: NewReader failed on intact header: %v", cut, err)
			continue
		}
		var complete int
		var final error
		for {
			_, _, err := r.Next()
			if err != nil {
				final = err
				break
			}
			complete++
		}
		wantComplete := 0
		if cut >= rec0End {
			wantComplete = 1
		}
		if cut == len(data) {
			wantComplete = 2
		}
		if complete != wantComplete {
			t.Errorf("cut %d: read %d complete records, want %d", cut, complete, wantComplete)
		}
		atBoundary := cut == headerEnd || cut == rec0End || cut == len(data)
		if atBoundary {
			if final != io.EOF {
				t.Errorf("cut %d (record boundary): err = %v, want io.EOF", cut, final)
			}
		} else {
			if !errors.Is(final, ErrTruncatedRecord) {
				t.Errorf("cut %d (mid-record): err = %v, want ErrTruncatedRecord", cut, final)
			}
		}
	}
}

// TestTruncatedRecordIsNotStructuralCorruption: structural damage (zero
// length, implausible length, zero count) must NOT match ErrTruncatedRecord
// — a replayer that dropped "the last record" on these would be masking
// real corruption.
func TestTruncatedRecordIsNotStructuralCorruption(t *testing.T) {
	header := func() []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, testDigest())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := map[string][]byte{
		"zero length":        append(append([]byte{}, header...), 0x00),
		"implausible length": append(append([]byte{}, header...), 0xff, 0xff, 0xff, 0xff, 0x7f),
		"zero count":         append(append([]byte{}, header...), 0x01, 0xaa, 0x00),
	}
	for name, data := range cases {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: header rejected: %v", name, err)
		}
		_, _, err = r.Next()
		if err == nil || err == io.EOF {
			t.Errorf("%s: structural corruption read cleanly (err=%v)", name, err)
			continue
		}
		if errors.Is(err, ErrTruncatedRecord) {
			t.Errorf("%s: structural corruption classified as truncation: %v", name, err)
		}
	}
}

// TestAppendRecordRoundTrips: AppendRecord's framing is byte-identical to
// Writer.Add's, so WAL entries and .dpp records stay interchangeable.
func TestAppendRecordRoundTrips(t *testing.T) {
	var viaWriter bytes.Buffer
	w, err := NewWriter(&viaWriter, testDigest())
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Key: []byte{0x01}, Count: 1},
		{Key: []byte("a-longer-record"), Count: 1 << 40},
	}
	for _, r := range recs {
		if err := w.Add(r.Key, r.Count); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var viaAppend bytes.Buffer
	w2, err := NewWriter(&viaAppend, testDigest())
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	frame := []byte{}
	for _, r := range recs {
		frame = AppendRecord(frame, r.Key, r.Count)
	}
	viaAppend.Write(frame)

	if !bytes.Equal(viaWriter.Bytes(), viaAppend.Bytes()) {
		t.Fatalf("AppendRecord framing drifted from Writer.Add:\n% x\nvs\n% x",
			viaWriter.Bytes(), viaAppend.Bytes())
	}
}
