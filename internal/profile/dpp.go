package profile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"deltapath/internal/analysisio"
)

// The streaming binary profile format (".dpp"):
//
//	magic   "DPP2\n" (or "DPP1\n", the pre-epoch format)
//	digest  uvarint nodes, uvarint edges, uvarint hash
//	        — the analysisio.GraphDigest of the call graph the records
//	          were captured under; a reader refuses to decode against a
//	          mismatching analysis, exactly like analysisio.Load refuses
//	          stale/tampered analyses.
//	epoch   uvarint (DPP2 only) — the analysis epoch the records were
//	        captured under: how many incremental extensions
//	        (Analysis.Extend) behind the whole-program analysis. DPP1
//	        files are epoch 0.
//	records repeated until EOF:
//	        uvarint len (1..MaxRecordBytes), len record bytes, uvarint
//	        count (>= 1)
//
// An epoch-0 profile is written as DPP1, byte-identical with pre-epoch
// builds — existing files, WAL fixtures and golden bytes stay valid — and
// the epoch field appears only when there is an epoch to record.
//
// The format is append-friendly: the same record may appear more than once
// (e.g. one Writer fed from several runs without a merging store); readers
// sum the counts. A typical record is 5–30 bytes, so a million-context
// profile streams in a few megabytes with no in-memory table on either
// side.

const (
	dppMagic   = "DPP1\n"
	dppMagicV2 = "DPP2\n"
)

// ErrTruncatedRecord marks a record cut short by end of input — a stream
// that stopped mid-varint or mid-record-body, the signature of a crash
// during an append (a half-written WAL tail, a copy that died mid-file).
// It is distinct from structural corruption (implausible lengths, zero
// counts): a replayer may safely drop the final truncated record of an
// append-only log and keep everything before it, whereas structural
// corruption poisons the stream. Match with errors.Is.
var ErrTruncatedRecord = errors.New("truncated record at end of input")

// MaxRecordBytes bounds a single record's length. Context records are tiny
// (a handful of bytes per stack piece); anything near this limit is corrupt
// input, and the bound keeps a hostile length prefix from forcing a huge
// allocation.
const MaxRecordBytes = 1 << 20

// Writer streams a .dpp profile. Create with NewWriter, call Add per
// record, then Flush. Writer is not safe for concurrent use; aggregate
// concurrently into a Store and stream its Snapshot instead.
type Writer struct {
	bw  *bufio.Writer
	err error
	n   uint64
}

// NewWriter writes the header and returns a streaming writer. digest must
// describe the call graph of the analysis the records were captured under.
// The profile is stamped epoch 0; use NewWriterEpoch for records captured
// under an extended analysis.
func NewWriter(w io.Writer, digest analysisio.GraphDigest) (*Writer, error) {
	return NewWriterEpoch(w, digest, 0)
}

// NewWriterEpoch is NewWriter with an explicit analysis epoch. Epoch 0
// writes the DPP1 header (no epoch field, byte-identical with pre-epoch
// builds); a nonzero epoch writes DPP2 with the epoch after the digest.
func NewWriterEpoch(w io.Writer, digest analysisio.GraphDigest, epoch uint64) (*Writer, error) {
	bw := bufio.NewWriter(w)
	head := dppMagic
	if epoch > 0 {
		head = dppMagicV2
	}
	if _, err := bw.WriteString(head); err != nil {
		return nil, err
	}
	if err := WriteDigest(bw, digest); err != nil {
		return nil, err
	}
	if epoch > 0 {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], epoch)
		if _, err := bw.Write(buf[:n]); err != nil {
			return nil, err
		}
	}
	return &Writer{bw: bw}, nil
}

// WriteDigest writes a graph digest in the .dpp wire form (three uvarints:
// nodes, edges, hash). Exported so other append-only formats carrying the
// same compatibility key — e.g. the ingestion server's WAL — share one
// encoding.
func WriteDigest(w io.Writer, digest analysisio.GraphDigest) error {
	var buf [binary.MaxVarintLen64]byte
	for _, v := range []uint64{digest.Nodes, digest.Edges, digest.Hash} {
		n := binary.PutUvarint(buf[:], v)
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// ReadDigest reads a graph digest written by WriteDigest.
func ReadDigest(br io.ByteReader) (analysisio.GraphDigest, error) {
	var dig [3]uint64
	for i := range dig {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return analysisio.GraphDigest{}, fmt.Errorf("truncated digest: %w", err)
		}
		dig[i] = v
	}
	return analysisio.GraphDigest{Nodes: dig[0], Edges: dig[1], Hash: dig[2]}, nil
}

// Add appends one record with its count. Zero-length records and zero
// counts are rejected — neither has a meaning in a profile, and rejecting
// them keeps the reader's corruption contract crisp.
func (w *Writer) Add(record []byte, count uint64) error {
	if w.err != nil {
		return w.err
	}
	if len(record) == 0 {
		return fmt.Errorf("profile: empty record")
	}
	if len(record) > MaxRecordBytes {
		return fmt.Errorf("profile: record of %d bytes exceeds limit %d", len(record), MaxRecordBytes)
	}
	if count == 0 {
		return fmt.Errorf("profile: zero count")
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(record)))
	if _, err := w.bw.Write(buf[:n]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.bw.Write(record); err != nil {
		w.err = err
		return err
	}
	n = binary.PutUvarint(buf[:], count)
	if _, err := w.bw.Write(buf[:n]); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Records reports how many records have been written.
func (w *Writer) Records() uint64 { return w.n }

// Flush writes out any buffered data. Call once after the last Add.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// WriteSnapshot streams the store's current snapshot through w: one record
// per distinct context, in deterministic (record-byte) order.
func (w *Writer) WriteSnapshot(s *Store) error {
	for _, r := range s.Snapshot() {
		if err := w.Add(r.Key, r.Count); err != nil {
			return err
		}
	}
	return nil
}

// AppendRecord appends one DPP1-framed record — uvarint length, record
// bytes, uvarint count — to buf and returns the extended slice: the
// write-side counterpart of ReadRecord for callers (the ingestion WAL)
// that frame records into their own containers.
func AppendRecord(buf []byte, record []byte, count uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(record)))
	buf = append(buf, record...)
	return binary.AppendUvarint(buf, count)
}

// Reader streams a .dpp profile. Create with NewReader (which validates the
// header), check Digest against the analysis in hand, then call Next until
// io.EOF.
type Reader struct {
	br     *bufio.Reader
	digest analysisio.GraphDigest
	epoch  uint64
	n      uint64
	err    error
}

// NewReader parses the header. It fails on a bad magic, an unsupported
// version (a typed analysisio.VersionSkewError naming both sides), or a
// truncated digest. Both DPP2 and the pre-epoch DPP1 are accepted; DPP1
// profiles report epoch 0.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(dppMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	var epochal bool
	switch string(head) {
	case dppMagic:
	case dppMagicV2:
		epochal = true
	default:
		if strings.HasPrefix(string(head), "DPP") {
			return nil, fmt.Errorf("profile: %w", &analysisio.VersionSkewError{
				Found:     strings.TrimSuffix(string(head), "\n"),
				Supported: []string{"DPP2", "DPP1"},
			})
		}
		return nil, fmt.Errorf("profile: bad magic %q (not a .dpp profile)", head)
	}
	digest, err := ReadDigest(br)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	var epoch uint64
	if epochal {
		if epoch, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("profile: truncated epoch: %w", err)
		}
	}
	return &Reader{br: br, digest: digest, epoch: epoch}, nil
}

// Digest returns the graph digest the profile was recorded under.
func (r *Reader) Digest() analysisio.GraphDigest { return r.digest }

// Epoch returns the analysis epoch the profile was recorded under (0 for
// DPP1 files and whole-program analyses).
func (r *Reader) Epoch() uint64 { return r.epoch }

// Records reports how many records Next has returned so far.
func (r *Reader) Records() uint64 { return r.n }

// Next returns the next record and its count. It returns io.EOF at a clean
// end of stream; any other error marks corrupt input. Truncation by end of
// input — a stream that stops mid-varint or mid-record-body — matches
// errors.Is(err, ErrTruncatedRecord), distinct from structural corruption
// (a zero or implausible length, a zero count). The returned slice is owned
// by the caller.
func (r *Reader) Next() (record []byte, count uint64, err error) {
	if r.err != nil {
		return nil, 0, r.err
	}
	record, count, err = ReadRecord(r.br)
	if err != nil {
		if err == io.EOF {
			r.err = io.EOF
			return nil, 0, io.EOF
		}
		r.err = fmt.Errorf("profile: record %d: %w", r.n, err)
		return nil, 0, r.err
	}
	r.n++
	return record, count, nil
}

// ReadRecord reads one DPP1-framed record — uvarint length, record bytes,
// uvarint count — from br. It returns io.EOF when the input ends cleanly at
// a record boundary and an error wrapping ErrTruncatedRecord when the input
// ends anywhere inside a record. Exported so WAL replayers share the exact
// framing (and its corruption contract) with the .dpp reader.
func ReadRecord(br *bufio.Reader) (record []byte, count uint64, err error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			// One or more length bytes arrived, then the stream ended:
			// the classic half-written append.
			return nil, 0, fmt.Errorf("%w (mid-varint length)", ErrTruncatedRecord)
		}
		return nil, 0, fmt.Errorf("reading length: %w", err)
	}
	if size == 0 || size > MaxRecordBytes {
		return nil, 0, fmt.Errorf("implausible length %d", size)
	}
	record = make([]byte, size)
	if _, err := io.ReadFull(br, record); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, 0, fmt.Errorf("%w (mid-record body, want %d bytes)", ErrTruncatedRecord, size)
		}
		return nil, 0, fmt.Errorf("reading body: %w", err)
	}
	count, err = binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, 0, fmt.Errorf("%w (mid-varint count)", ErrTruncatedRecord)
		}
		return nil, 0, fmt.Errorf("reading count: %w", err)
	}
	if count == 0 {
		return nil, 0, fmt.Errorf("zero count")
	}
	return record, count, nil
}
