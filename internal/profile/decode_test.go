package profile

import (
	"bytes"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// buildProfile writes records (possibly with duplicates — append mode) and
// returns the serialized .dpp bytes.
func buildProfile(t *testing.T, recs []struct {
	rec   string
	count uint64
}) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testDigest())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Add([]byte(r.rec), r.count); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeMergesAndSorts(t *testing.T) {
	data := buildProfile(t, []struct {
		rec   string
		count uint64
	}{
		{"r1", 3},
		{"r2", 10},
		{"r1", 2}, // append-mode duplicate: merged
		{"r3", 5}, // decodes to the same context as r1
	})

	decode := func(rec []byte) (string, error) {
		if string(rec) == "r2" {
			return "ctx-b", nil
		}
		return "ctx-a", nil
	}
	for _, workers := range []int{0, 1, 4} {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Decode(r, workers, decode)
		if err != nil {
			t.Fatal(err)
		}
		// Equal counts: ties sort by context string ("ctx-a" < "ctx-b").
		want := []HotContext{{Context: "ctx-a", Count: 10}, {Context: "ctx-b", Count: 10}}
		if !reflect.DeepEqual(rep.Rows, want) {
			t.Fatalf("workers=%d: rows = %+v, want %+v", workers, rep.Rows, want)
		}
		if rep.Records != 4 || rep.Total != 20 {
			t.Fatalf("workers=%d: Records=%d Total=%d, want 4/20", workers, rep.Records, rep.Total)
		}
	}
}

func TestDecodeDeterministicAcrossWorkerCounts(t *testing.T) {
	var recs []struct {
		rec   string
		count uint64
	}
	for i := 0; i < 500; i++ {
		recs = append(recs, struct {
			rec   string
			count uint64
		}{fmt.Sprintf("rec-%03d", i), uint64(i%17 + 1)})
	}
	data := buildProfile(t, recs)
	decode := func(rec []byte) (string, error) {
		return "ctx:" + string(rec[len(rec)-1:]), nil // 10 distinct contexts
	}
	var first *Report
	for _, workers := range []int{1, 2, 8} {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Decode(r, workers, decode)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = rep
			continue
		}
		if !reflect.DeepEqual(rep, first) {
			t.Fatalf("workers=%d: report differs from workers=1", workers)
		}
	}
}

func TestDecodeErrorAborts(t *testing.T) {
	data := buildProfile(t, []struct {
		rec   string
		count uint64
	}{{"good", 1}, {"bad", 1}, {"good", 1}})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("undecodable")
	_, err = Decode(r, 4, func(rec []byte) (string, error) {
		if string(rec) == "bad" {
			return "", wantErr
		}
		return "ok", nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestDecodeCorruptStreamSurfaces(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testDigest())
	w.Add([]byte("x"), 1)
	w.Flush()
	data := append(buf.Bytes(), 0x00) // trailing zero-length record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(r, 2, func([]byte) (string, error) { return "c", nil }); err == nil {
		t.Fatal("corrupt stream decoded without error")
	}
}

// TestDecodeMemoization: a record recurring in an append-mode profile is
// decoded at most once per worker.
func TestDecodeMemoization(t *testing.T) {
	var recs []struct {
		rec   string
		count uint64
	}
	for i := 0; i < 100; i++ {
		recs = append(recs, struct {
			rec   string
			count uint64
		}{"same", 1})
	}
	data := buildProfile(t, recs)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Uint64
	rep, err := Decode(r, 4, func([]byte) (string, error) {
		calls.Add(1)
		return "c", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 100 || len(rep.Rows) != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if calls.Load() > 4 {
		t.Fatalf("decode called %d times for one distinct record across 4 workers", calls.Load())
	}
}
