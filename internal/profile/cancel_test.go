package profile

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// buildProfileN returns a .dpp stream of n distinct records.
func buildProfileN(t *testing.T, n int) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testDigest())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Add([]byte(fmt.Sprintf("record-%06d", i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDecodeContextCancelAborts: cancelling mid-decode returns ctx.Err()
// promptly — the pool stops between records instead of grinding through the
// whole profile.
func TestDecodeContextCancelAborts(t *testing.T) {
	r := buildProfileN(t, 10_000)
	ctx, cancel := context.WithCancel(context.Background())
	var decoded atomic.Int64
	start := time.Now()
	_, err := DecodeContext(ctx, r, 4, func(rec []byte) (string, error) {
		if decoded.Add(1) == 8 {
			cancel() // cancel from inside the pool: the next records must not decode
		}
		time.Sleep(time.Millisecond)
		return string(rec), nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 10k records × 1ms over 4 workers would be ~2.5s; an aborted run
	// decodes only the records already in flight.
	if n := decoded.Load(); n > 100 {
		t.Fatalf("decoded %d records after cancellation (pool did not stop)", n)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestDecodeContextPreCancelled: an already-cancelled context decodes
// nothing and reports ctx.Err().
func TestDecodeContextPreCancelled(t *testing.T) {
	r := buildProfileN(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var decoded atomic.Int64
	_, err := DecodeContext(ctx, r, 2, func(rec []byte) (string, error) {
		decoded.Add(1)
		return string(rec), nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := decoded.Load(); n != 0 {
		t.Fatalf("pre-cancelled context decoded %d records", n)
	}
}

// TestDecodeContextErrorBeatsCancellation: a decode failure that happened
// before cancellation is reported as itself, not masked by ctx.Err().
func TestDecodeContextErrorBeatsCancellation(t *testing.T) {
	r := buildProfileN(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	_, err := DecodeContext(ctx, r, 2, func(rec []byte) (string, error) {
		cancel()
		return "", boom
	}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the decode error", err)
	}
}

// TestDecodeContextBackgroundUnchanged: with a background context the
// behaviour is identical to Decode.
func TestDecodeContextBackgroundUnchanged(t *testing.T) {
	r := buildProfileN(t, 50)
	rep, err := DecodeContext(context.Background(), r, 4, func(rec []byte) (string, error) {
		return string(rec), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 50 || rep.Total != 50 || len(rep.Rows) != 50 {
		t.Fatalf("report = %d records, %d total, %d rows; want 50/50/50",
			rep.Records, rep.Total, len(rep.Rows))
	}
}
