package profile

import (
	"bytes"
	"io"
	"testing"
)

// FuzzProfileReader feeds arbitrary bytes to the .dpp reader and asserts
// the corruption contract: any input either parses or fails with a clean
// error — never a panic, never an unbounded allocation (record lengths are
// capped at MaxRecordBytes before any buffer is sized), never an infinite
// loop (every Next consumes input or errors). Valid profiles round-trip.
func FuzzProfileReader(f *testing.F) {
	// Seed: a well-formed two-record profile.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testDigest())
	if err != nil {
		f.Fatal(err)
	}
	w.Add([]byte("record-one"), 3)
	w.Add([]byte{0x00, 0xff, 0x80}, 1<<40)
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Seed: truncations at every structural boundary.
	f.Add(valid[:0])
	f.Add(valid[:3])                                   // mid-magic
	f.Add(valid[:len(dppMagic)])                       // magic only, no digest
	f.Add(valid[:len(dppMagic)+2])                     // mid-digest
	f.Add(valid[:len(valid)-1])                        // mid-final-count
	f.Add(append(valid[:len(valid):len(valid)], 0x00)) // trailing zero length
	// Seed: hostile lengths and counts.
	f.Add([]byte("DPP1\n\x01\x01\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Add([]byte("DPP1\n\x00\x00\x00\x01A\x00"))                        // zero count
	f.Add([]byte("XXXX\n\x00\x00\x00"))                                 // wrong magic
	f.Add([]byte("DPP1\n\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80")) // overlong uvarint

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var recs []Record
		var total uint64
		for {
			rec, count, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			if len(rec) == 0 || len(rec) > MaxRecordBytes {
				t.Fatalf("reader yielded record of length %d", len(rec))
			}
			if count == 0 {
				t.Fatal("reader yielded zero count")
			}
			recs = append(recs, Record{Key: append([]byte(nil), rec...), Count: count})
			total += count
		}
		// Whatever parsed cleanly must survive a write/read round-trip.
		var out bytes.Buffer
		w, err := NewWriter(&out, r.Digest())
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.Add(rec.Key, rec.Count); err != nil {
				t.Fatalf("re-writing parsed record: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewReader(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading round-trip: %v", err)
		}
		var total2 uint64
		i := 0
		for {
			rec, count, err := r2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("round-trip record %d: %v", i, err)
			}
			if !bytes.Equal(rec, recs[i].Key) || count != recs[i].Count {
				t.Fatalf("round-trip record %d drifted", i)
			}
			total2 += count
			i++
		}
		if i != len(recs) || total2 != total {
			t.Fatalf("round-trip lost records: %d/%d, %d/%d", i, len(recs), total2, total)
		}
	})
}
