package profile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"deltapath/internal/analysisio"
)

// Wire-format tests for the .dpp epoch field DPP2 added: exact layout, the
// epoch-0 DPP1 compatibility guarantee, and version-skew rejection.

func TestDPPEpochHeaderGolden(t *testing.T) {
	dig := analysisio.GraphDigest{Nodes: 11, Edges: 29, Hash: 0xfeedface}
	write := func(epoch uint64) []byte {
		var buf bytes.Buffer
		w, err := NewWriterEpoch(&buf, dig, epoch)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Add([]byte{1, 2, 3}, 4); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	v1 := write(0)
	const epoch = 5
	v2 := write(epoch)

	// Epoch 0 stays on the pre-epoch wire format, byte for byte.
	var legacy bytes.Buffer
	w, err := NewWriter(&legacy, dig)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]byte{1, 2, 3}, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1, legacy.Bytes()) {
		t.Fatal("NewWriterEpoch(0) is not byte-identical with NewWriter")
	}
	if !bytes.HasPrefix(v1, []byte("DPP1\n")) {
		t.Fatalf("epoch-0 magic = %q, want DPP1", v1[:5])
	}
	if !bytes.HasPrefix(v2, []byte("DPP2\n")) {
		t.Fatalf("epochal magic = %q, want DPP2", v2[:5])
	}

	// DPP2 layout: magic, digest (same bytes as DPP1), epoch uvarint, then
	// the identical record stream.
	r1, r2 := v1[5:], v2[5:]
	dlen := 0
	for i := 0; i < 3; i++ {
		_, n := binary.Uvarint(r1[dlen:])
		if n <= 0 {
			t.Fatal("cannot parse digest uvarints")
		}
		dlen += n
	}
	if !bytes.Equal(r1[:dlen], r2[:dlen]) {
		t.Fatal("digest bytes differ between DPP1 and DPP2")
	}
	got, n := binary.Uvarint(r2[dlen:])
	if n <= 0 || got != epoch {
		t.Fatalf("epoch field after digest = %d, want %d", got, epoch)
	}
	if !bytes.Equal(r1[dlen:], r2[dlen+n:]) {
		t.Fatal("record stream differs after the epoch field")
	}

	// Readers surface the stamp.
	for _, tc := range []struct {
		data []byte
		want uint64
	}{{v1, 0}, {v2, epoch}} {
		r, err := NewReader(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatal(err)
		}
		if r.Epoch() != tc.want {
			t.Fatalf("Reader.Epoch() = %d, want %d", r.Epoch(), tc.want)
		}
		if r.Digest() != dig {
			t.Fatalf("Reader.Digest() = %+v, want %+v", r.Digest(), dig)
		}
		if _, _, err := r.Next(); err != nil {
			t.Fatalf("first record: %v", err)
		}
	}
}

func TestDPPVersionSkew(t *testing.T) {
	_, err := NewReader(strings.NewReader("DPP7\n\x00\x00\x00"))
	var skew *analysisio.VersionSkewError
	if !errors.As(err, &skew) {
		t.Fatalf("NewReader = %v, want VersionSkewError", err)
	}
	if skew.Found != "DPP7" {
		t.Errorf("Found = %q, want DPP7", skew.Found)
	}
	msg := skew.Error()
	for _, v := range []string{"DPP7", "DPP2", "DPP1"} {
		if !strings.Contains(msg, v) {
			t.Errorf("error %q does not name version %q", msg, v)
		}
	}
	// Non-DPP magic is corruption, not skew.
	_, err = NewReader(strings.NewReader("nope\nxxxx"))
	if err == nil || errors.As(err, &skew) {
		t.Fatalf("bad magic: NewReader = %v, want a plain (non-skew) error", err)
	}
}
