package profile

import (
	"fmt"
	"testing"
)

// benchCorpus builds a corpus shaped like a real profile: many interns,
// few distinct records (hot contexts recur).
func benchCorpus(distinct int) [][]byte {
	recs := make([][]byte, distinct)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("\x01\x0a\x2f-context-record-%05d", i))
	}
	return recs
}

// BenchmarkIntern measures single-threaded intern cost on a hot store
// (every record already present — the steady-state path).
func BenchmarkIntern(b *testing.B) {
	recs := benchCorpus(1024)
	store := NewStore(0)
	for _, r := range recs {
		store.Intern(r)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store.Intern(recs[i&1023])
	}
}

// BenchmarkInternParallel measures contended intern throughput: all procs
// hammer one store. Shard count fixed at the default so numbers are
// comparable across machines.
func BenchmarkInternParallel(b *testing.B) {
	recs := benchCorpus(1024)
	store := NewStore(0)
	for _, r := range recs {
		store.Intern(r)
	}
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			store.Intern(recs[i&1023])
			i++
		}
	})
}

// BenchmarkInternMiss measures the first-sight path: every intern inserts.
func BenchmarkInternMiss(b *testing.B) {
	recs := make([][]byte, b.N)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("miss-record-%09d", i))
	}
	store := NewStore(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store.Intern(recs[i])
	}
}
