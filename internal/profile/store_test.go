package profile

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"deltapath/internal/analysisio"
)

func TestStoreInternDedup(t *testing.T) {
	s := NewStore(4)
	a := []byte{1, 2, 3}
	b := []byte{9, 9}
	idA := s.Intern(a)
	if got := s.Intern(a); got != idA {
		t.Fatalf("re-intern changed ID: %d then %d", idA, got)
	}
	idB := s.Intern(b)
	if idA == idB {
		t.Fatalf("distinct records share ID %d", idA)
	}
	s.AddCount(b, 7)
	if s.Total() != 10 {
		t.Fatalf("Total = %d, want 10", s.Total())
	}
	if s.Unique() != 2 {
		t.Fatalf("Unique = %d, want 2", s.Unique())
	}
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d records", len(snap))
	}
	// Deterministic order: sorted by record bytes.
	if !bytes.Equal(snap[0].Key, a) || !bytes.Equal(snap[1].Key, b) {
		t.Fatalf("snapshot order: %v", snap)
	}
	if snap[0].Count != 2 || snap[1].Count != 8 {
		t.Fatalf("snapshot counts: %d, %d (want 2, 8)", snap[0].Count, snap[1].Count)
	}
}

func TestStoreShardRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{-1, DefaultShards}, {0, DefaultShards}, {1, 1}, {3, 4}, {8, 8}, {65, 128},
	} {
		if got := NewStore(c.in).NumShards(); got != c.want {
			t.Errorf("NewStore(%d): %d shards, want %d", c.in, got, c.want)
		}
	}
}

// TestStoreInternDoesNotAliasCaller ensures the store owns its keys: a
// caller reusing its record buffer must not corrupt interned entries.
func TestStoreInternDoesNotAliasCaller(t *testing.T) {
	s := NewStore(1)
	buf := []byte{5, 5, 5}
	s.Intern(buf)
	buf[0] = 6
	s.Intern(buf)
	if s.Unique() != 2 {
		t.Fatalf("Unique = %d, want 2 (store aliased the caller's buffer?)", s.Unique())
	}
}

func testDigest() analysisio.GraphDigest {
	return analysisio.GraphDigest{Nodes: 7, Edges: 12, Hash: 0xfeedface}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testDigest())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(8)
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("rec-%02d", i%10))
		s.Intern(rec)
	}
	if err := w.WriteSnapshot(s); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 10 {
		t.Fatalf("wrote %d records, want 10", w.Records())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Digest() != testDigest() {
		t.Fatalf("digest round-trip: %v", r.Digest())
	}
	var total uint64
	n := 0
	for {
		rec, count, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(rec) == 0 || count == 0 {
			t.Fatal("reader yielded empty record or zero count")
		}
		total += count
		n++
	}
	if n != 10 || total != 50 {
		t.Fatalf("read %d records totalling %d, want 10 totalling 50", n, total)
	}
	if r.Records() != 10 {
		t.Fatalf("Records() = %d, want 10", r.Records())
	}
}

func TestWriterRejectsDegenerateRecords(t *testing.T) {
	w, err := NewWriter(&bytes.Buffer{}, testDigest())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(nil, 1); err == nil {
		t.Fatal("empty record accepted")
	}
	if err := w.Add([]byte{1}, 0); err == nil {
		t.Fatal("zero count accepted")
	}
	if err := w.Add(make([]byte, MaxRecordBytes+1), 1); err == nil {
		t.Fatal("oversized record accepted")
	}
}

// TestReaderRejectsCorruptStreams: every corrupt stream must surface a
// non-EOF error, either at NewReader (header damage) or from Next (body
// damage) — never a clean EOF, never a panic.
func TestReaderRejectsCorruptStreams(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, testDigest())
		w.Add([]byte{1, 2, 3}, 4)
		w.Flush()
		return buf.Bytes()
	}()
	header := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, testDigest())
		w.Flush()
		return buf.Bytes()
	}()

	cases := map[string][]byte{
		"empty":            {},
		"bad magic":        []byte("DPA2\nxxxxxx"),
		"truncated digest": []byte("DPP1\n\x87"),
		"truncated record": valid[:len(valid)-2],
		"zero length":      append(append([]byte{}, header...), 0x00),
		"implausible length": append(append([]byte{}, header...),
			0xff, 0xff, 0xff, 0xff, 0x7f),
		"zero count": append(append(append([]byte{}, header...),
			0x01, 0xaa), 0x00),
	}
	for name, data := range cases {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue // header damage rejected cleanly at construction
		}
		for err == nil {
			_, _, err = r.Next()
		}
		if err == io.EOF {
			t.Errorf("%s: corrupt stream read to clean EOF", name)
		}
	}
}

// TestReaderEmptyProfile: a header with no records is a valid, empty
// profile.
func TestReaderEmptyProfile(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testDigest())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty profile: err = %v, want io.EOF", err)
	}
}

// TestReaderErrorSticks: after a corrupt record, every further Next returns
// the same error instead of resynchronizing mid-stream.
func TestReaderErrorSticks(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testDigest())
	w.Flush()
	data := append(buf.Bytes(), 0x00) // zero-length record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err1 := r.Next()
	_, _, err2 := r.Next()
	if err1 == nil || err2 == nil || err1 != err2 {
		t.Fatalf("errors do not stick: %v then %v", err1, err2)
	}
}
