// Package profile is the collection/aggregation half of the DeltaPath
// deployment story: the paper makes a calling context a small integer so
// that *capturing* one is constant-time — this package makes *aggregating*
// millions of captured contexts nearly free as well.
//
// Three pieces:
//
//   - Store: a sharded context-interning store. Many concurrent sessions
//     intern their marshalled context records (encoding.MarshalContext
//     bytes) into one store; each record is deduplicated to an interned ID
//     plus a hit count. Shards are selected by a hash of the record, so
//     writers contend only when they hash to the same shard.
//
//   - Writer/Reader: the streaming binary ".dpp" profile format — a
//     magic/version header, the graph digest of the analysis the records
//     were captured under (reused from analysisio's DPA2 format), then a
//     varint-encoded record table with counts. Both sides stream: the
//     writer never buffers the profile, the reader yields one record at a
//     time.
//
//   - Decode: parallel batch decoding of a profile into a deterministic,
//     sorted hot-context report, fanning records out over a worker pool
//     with per-worker memoization.
package profile

import (
	"sort"
	"sync"
	"sync/atomic"

	"deltapath/internal/obs"
)

// DefaultShards is the shard count NewStore uses when given n <= 0. 64
// shards keep the per-shard collision probability low for up to a few tens
// of concurrent writers while costing only ~4 KiB of fixed overhead.
const DefaultShards = 64

// Store is a sharded context-interning store: a concurrent map from
// marshalled context record to interned ID and hit count. The zero value is
// not usable; call NewStore.
//
// All methods are safe for concurrent use. The aggregate counters (Total,
// Unique) are maintained with atomics so readers never take a shard lock.
type Store struct {
	shards []shard
	mask   uint64

	total  atomic.Uint64 // every successful Intern/AddCount sample
	unique atomic.Uint64 // distinct records interned
	nextID atomic.Uint64 // next interned ID
	bytes  atomic.Uint64 // approximate resident size of interned records

	// Observability hooks (nil = no-op): intern rate, and how often a
	// writer found its shard lock held — the signal that the shard count
	// is too low for the writer count.
	interns    *obs.Counter
	contention *obs.Counter
}

// Observe resolves the store's metric hooks from reg (nil disables).
func (s *Store) Observe(reg *obs.Registry) {
	s.interns = reg.Counter(obs.MetricProfileInterns)
	s.contention = reg.Counter(obs.MetricProfileShardContention)
}

// shard is one mutex-guarded slice of the record space. The padding keeps
// neighbouring shards on distinct cache lines, so uncontended locks on
// different shards do not false-share.
type shard struct {
	mu sync.Mutex
	m  map[string]*entry
	_  [64 - 16]byte
}

type entry struct {
	id    uint64
	count uint64
}

// NewStore returns a store with the given shard count, rounded up to the
// next power of two. n <= 0 selects DefaultShards.
func NewStore(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Store{shards: make([]shard, size), mask: uint64(size - 1)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*entry)
	}
	return s
}

// NumShards reports the (power-of-two) shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// fnv1a hashes a record for shard selection (FNV-1a, the same family the
// graph digest uses; inlined here to keep the hot path allocation-free).
func fnv1a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// Intern records one hit of record, deduplicating it against everything the
// store has seen, and returns the record's interned ID. IDs are dense and
// stable for the lifetime of the store, but their assignment order depends
// on goroutine interleaving — persist records and counts, never IDs.
func (s *Store) Intern(record []byte) uint64 {
	return s.AddCount(record, 1)
}

// AddCount is Intern with a weight: it adds n hits in one shard visit. Used
// when merging pre-aggregated profiles. n == 0 records nothing and returns
// the record's ID if it is already interned (or interns it with count 0).
func (s *Store) AddCount(record []byte, n uint64) uint64 {
	s.interns.Inc()
	sh := &s.shards[fnv1a(record)&s.mask]
	if !sh.mu.TryLock() {
		// Another writer holds this shard: count the collision, then block
		// normally. TryLock-then-Lock costs one extra CAS only on the
		// already-slow contended path.
		s.contention.Inc()
		sh.mu.Lock()
	}
	e := sh.m[string(record)] // no-alloc map lookup
	if e == nil {
		e = &entry{id: s.nextID.Add(1) - 1}
		sh.m[string(record)] = e
		s.unique.Add(1)
		s.bytes.Add(uint64(len(record)) + entryOverheadBytes)
	}
	e.count += n
	sh.mu.Unlock()
	s.total.Add(n)
	return e.id
}

// entryOverheadBytes approximates the per-record bookkeeping cost beyond
// the key bytes themselves: the entry struct, its pointer, and the map
// cell. The absolute number only needs to be stable — Bytes feeds a flush
// threshold, not an accountant.
const entryOverheadBytes = 48

// Total reports the aggregate hit count across all records.
func (s *Store) Total() uint64 { return s.total.Load() }

// Bytes reports the approximate resident size of the store: key bytes plus
// a fixed per-record overhead. Counts are monotone (records are never
// evicted), so Bytes is a cheap memtable-flush trigger.
func (s *Store) Bytes() uint64 { return s.bytes.Load() }

// Unique reports the number of distinct records interned.
func (s *Store) Unique() uint64 { return s.unique.Load() }

// Record is one interned record as returned by Snapshot.
type Record struct {
	// ID is the interned ID (stable within this store only).
	ID uint64
	// Key is the marshalled context record.
	Key []byte
	// Count is the hit count at snapshot time.
	Count uint64
}

// Snapshot returns every interned record with its count, sorted by record
// bytes — a deterministic order independent of interning interleaving.
// Snapshot locks one shard at a time, so concurrent writers are delayed
// only briefly; counts interned while the snapshot is in progress may or
// may not be included, exactly like any other racing reader.
func (s *Store) Snapshot() []Record {
	out := make([]Record, 0, s.unique.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		// Snapshot drains shards off the hot path; the TryLock contention
		// counter tracks writer-vs-writer races, not readers.
		//dplint:coldpath
		sh.mu.Lock()
		for k, e := range sh.m {
			out = append(out, Record{ID: e.id, Key: []byte(k), Count: e.count})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i].Key) < string(out[j].Key)
	})
	return out
}
