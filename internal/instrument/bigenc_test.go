package instrument

import (
	"math/big"
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/minivm"
	"deltapath/internal/workload"
)

// TestBigEncoderMatchesUint64: on programs whose encoding space fits a
// machine integer (so core.Encode introduces no overflow anchors), the
// big-int strawman and the anchor-based encoder must compute identical IDs
// at every emit point — they run the same algorithm over different
// arithmetic.
func TestBigEncoderMatchesUint64(t *testing.T) {
	prog, err := stressParams(9).Generate()
	if err != nil {
		t.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OverflowAnchors) != 0 {
		t.Skip("graph needs overflow anchors; equivalence undefined")
	}
	bigRes, err := core.EncodeBig(build.Graph)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(build, res.Spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	run := func(probes minivm.Probes, capture func() *big.Int) []string {
		vm, err := minivm.NewVM(prog, 5)
		if err != nil {
			t.Fatal(err)
		}
		vm.SetProbes(probes)
		vm.SetInstrumented(plan.InstrumentedMethods())
		var ids []string
		vm.OnEmit = func(_ *minivm.VM, m minivm.MethodRef, _ string) {
			if _, known := build.NodeOf[m]; known {
				ids = append(ids, capture().String())
			}
		}
		if err := vm.Run(); err != nil {
			t.Fatal(err)
		}
		return ids
	}

	enc := NewEncoder(plan)
	small := run(enc, func() *big.Int { return new(big.Int).SetUint64(enc.State().ID) })
	bigEnc := NewBigEncoder(build, bigRes)
	bigIDs := run(bigEnc, func() *big.Int { return new(big.Int).Set(bigEnc.Value()) })

	if len(small) == 0 || len(small) != len(bigIDs) {
		t.Fatalf("emit counts differ: %d vs %d", len(small), len(bigIDs))
	}
	for i := range small {
		if small[i] != bigIDs[i] {
			t.Fatalf("emit %d: uint64 ID %s != big ID %s", i, small[i], bigIDs[i])
		}
	}
	if bigEnc.Value().Sign() != 0 || len(bigEnc.saved) != 0 {
		t.Fatal("big encoder unbalanced after run")
	}
}

// TestBigEncoderHugeSpace: on a graph beyond 64 bits the strawman still
// works (that is its one virtue); IDs simply get enormous.
func TestBigEncoderHugeSpace(t *testing.T) {
	p, _ := workload.ByName("xml.validation")
	prog, err := p.Scale(0.02).Generate()
	if err != nil {
		t.Fatal(err)
	}
	build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingAll})
	if err != nil {
		t.Fatal(err)
	}
	bigRes, err := core.EncodeBig(build.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if bigRes.MaxID.BitLen() <= 64 {
		t.Fatalf("expected >64-bit space, got %d bits", bigRes.MaxID.BitLen())
	}
	enc := NewBigEncoder(build, bigRes)
	vm, err := minivm.NewVM(prog, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	instr := make(map[minivm.MethodRef]bool)
	for ref := range build.NodeOf {
		instr[ref] = true
	}
	vm.SetInstrumented(instr)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if enc.Value().Sign() != 0 {
		t.Fatalf("unbalanced big ID after run: %s", enc.Value())
	}
}

func TestBigEncoderReset(t *testing.T) {
	prog, _ := stressParams(2).Generate()
	build, _ := cha.Build(prog, cha.Options{KeepUnreachable: true})
	bigRes, err := core.EncodeBig(build.Graph)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewBigEncoder(build, bigRes)
	enc.id.SetInt64(42)
	enc.saved = append(enc.saved, big.NewInt(7))
	enc.Reset()
	if enc.Value().Sign() != 0 || len(enc.saved) != 0 {
		t.Fatal("Reset did not clear state")
	}
}
