package instrument

import (
	"strings"
	"testing"

	"deltapath/internal/minivm"
)

// recoverHarness runs virtualProgram and hands each emit point to check,
// giving tests a stream of quiescent points at which to corrupt and repair
// the encoder's state.
func recoverHarness(t *testing.T, o harnessOpts, check func(e *Encoder, vm *minivm.VM)) *Encoder {
	t.Helper()
	h := newHarness(t, virtualProgram, o)
	emits := 0
	h.vm.OnEmit = func(vm *minivm.VM, m minivm.MethodRef, _ string) {
		if _, known := h.build.NodeOf[m]; !known {
			return
		}
		emits++
		check(h.enc, vm)
	}
	if err := h.vm.Run(); err != nil {
		t.Fatal(err)
	}
	if emits == 0 {
		t.Fatal("no emits; test is vacuous")
	}
	return h.enc
}

func TestVerifyStateQuietOnCleanRun(t *testing.T) {
	enc := recoverHarness(t, harnessOpts{cptOn: true, seed: 3}, func(e *Encoder, vm *minivm.VM) {
		if err := e.VerifyState(vm); err != nil {
			t.Fatalf("checker fired on a fault-free run: %v", err)
		}
		if e.VerifyAndResync(vm) {
			t.Fatal("resync on a fault-free run")
		}
	})
	if enc.Health != (Health{}) {
		t.Fatalf("health counters moved on a fault-free run: %+v", enc.Health)
	}
}

func TestVerifyAndResyncHealsFlippedID(t *testing.T) {
	faults := 0
	enc := recoverHarness(t, harnessOpts{cptOn: true, seed: 3}, func(e *Encoder, vm *minivm.VM) {
		// Corrupt, assert detection+repair, then assert the repaired state
		// passes a fresh check.
		e.State().ID ^= 1 << 7
		faults++
		if !e.VerifyAndResync(vm) {
			// The flip may be invisible at this emit only if the decoded
			// context is unchanged — which a bit 7 flip of a small ID
			// never is for this program; treat it as a failure.
			t.Fatal("flipped ID not detected")
		}
		if err := e.VerifyState(vm); err != nil {
			t.Fatalf("state still corrupt after resync: %v", err)
		}
	})
	if enc.Health.Resyncs != uint64(faults) || enc.Health.CorruptionsDetected != uint64(faults) {
		t.Fatalf("want %d detections and resyncs, got %+v", faults, enc.Health)
	}
}

func TestVerifyAndResyncHealsTruncatedStack(t *testing.T) {
	// MaxID 1 forces anchors, so emits actually see a non-empty piece
	// stack to truncate.
	truncated := 0
	enc := recoverHarness(t, harnessOpts{cptOn: true, maxID: 1, seed: 3}, func(e *Encoder, vm *minivm.VM) {
		st := e.State()
		if len(st.Stack) == 0 {
			return
		}
		st.Stack = st.Stack[:len(st.Stack)-1]
		truncated++
		if !e.VerifyAndResync(vm) {
			t.Fatal("truncated piece stack not detected")
		}
		if err := e.VerifyState(vm); err != nil {
			t.Fatalf("state still corrupt after resync: %v", err)
		}
	})
	if truncated == 0 {
		t.Fatal("program never had a piece stack at an emit; test is vacuous")
	}
	if enc.Health.Resyncs != uint64(truncated) {
		t.Fatalf("want %d resyncs, got %+v", truncated, enc.Health)
	}
}

func TestSuspectFlagForcesResync(t *testing.T) {
	// A pop underflow flags the state suspect; the next VerifyAndResync
	// must repair unconditionally, even if the checker would not notice.
	resyncs := 0
	recoverHarness(t, harnessOpts{cptOn: true, seed: 3}, func(e *Encoder, vm *minivm.VM) {
		if resyncs > 0 {
			return
		}
		e.noteUnderflow()
		if !e.VerifyAndResync(vm) {
			t.Fatal("suspect state not resynced")
		}
		resyncs++
	})
	if resyncs != 1 {
		t.Fatalf("resyncs = %d", resyncs)
	}
}

func TestResyncKeepsCPTConservative(t *testing.T) {
	// After a resync the saved call-path expectation is dropped; the run
	// must still complete with every later context decodable (worst case a
	// spurious gap, never a corrupted encoding).
	h := newHarness(t, figure6Program, harnessOpts{cptOn: true, seed: 1})
	first := true
	h.vm.OnEmit = func(vm *minivm.VM, m minivm.MethodRef, _ string) {
		if first {
			if _, known := h.build.NodeOf[m]; known {
				first = false
				h.enc.State().ID ^= 1 << 3
				if !h.enc.VerifyAndResync(vm) {
					h.t.Fatal("flip not detected")
				}
			}
		}
		// The regular harness check: decoded-sans-gaps == filtered truth.
		decodedMatchesTruth(h, vm, m)
	}
	if err := h.vm.Run(); err != nil {
		t.Fatal(err)
	}
	if first {
		t.Fatal("no analysed emit reached")
	}
}

// decodedMatchesTruth replicates the harness invariant at one emit point.
func decodedMatchesTruth(h *harness, vm *minivm.VM, m minivm.MethodRef) bool {
	h.t.Helper()
	node, known := h.build.NodeOf[m]
	if !known {
		return false
	}
	st := h.enc.State().Snapshot()
	names, err := h.dec.DecodeNames(st, node)
	if err != nil {
		h.t.Fatalf("decode at %s: %v", m, err)
	}
	var truth []string
	for _, f := range vm.Stack() {
		if _, ok := h.build.NodeOf[f]; ok {
			truth = append(truth, f.String())
		}
	}
	var got []string
	for _, n := range names {
		if n != "..." {
			got = append(got, n)
		}
	}
	if strings.Join(got, ">") != strings.Join(truth, ">") {
		h.t.Fatalf("post-resync decode mismatch at %s:\n  got  %v\n  want %v", m, names, truth)
	}
	return true
}
