package instrument

import (
	"deltapath/internal/obs"
)

// encoderObs holds the encoder's pre-resolved observability hooks. The
// zero value (all nil) is the default no-op sink: every field is nil-safe,
// so the disabled hot path pays one predictable branch per touched hook
// and nothing else — the property BenchmarkEncodeHotPath guards.
type encoderObs struct {
	additions    *obs.Counter
	anchorPushes *obs.Counter
	anchorPops   *obs.Counter
	edgePushes   *obs.Counter
	ucpPushes    *obs.Counter
	sidSaves     *obs.Counter
	sidChecks    *obs.Counter
	underflows   *obs.Counter
	corruptions  *obs.Counter
	resyncs      *obs.Counter
	partials     *obs.Counter
	pieceDepth   *obs.Histogram
	tracer       *obs.Tracer
}

// Observe resolves the encoder's metric hooks from reg and attaches tr for
// event tracing. Either argument may be nil: a nil registry leaves the
// counters as no-op sinks, a nil tracer disables tracing. Call before the
// run whose events should be counted; counters are shared, so every
// encoder observed from one registry aggregates into the same totals.
func (e *Encoder) Observe(reg *obs.Registry, tr *obs.Tracer) {
	e.obs = encoderObs{
		additions:    reg.Counter(obs.MetricEncoderAdditions),
		anchorPushes: reg.Counter(obs.MetricEncoderAnchorPushes),
		anchorPops:   reg.Counter(obs.MetricEncoderAnchorPops),
		edgePushes:   reg.Counter(obs.MetricEncoderEdgePushes),
		ucpPushes:    reg.Counter(obs.MetricEncoderUCPPushes),
		sidSaves:     reg.Counter(obs.MetricEncoderSIDSaves),
		sidChecks:    reg.Counter(obs.MetricEncoderSIDChecks),
		underflows:   reg.Counter(obs.MetricEncoderUnderflows),
		corruptions:  reg.Counter(obs.MetricHealCorruptions),
		resyncs:      reg.Counter(obs.MetricHealResyncs),
		partials:     reg.Counter(obs.MetricHealPartialDecodes),
		pieceDepth:   reg.Histogram(obs.MetricEncoderPieceDepth, nil),
		tracer:       tr,
	}
	if e.walker != nil {
		e.walker.Observe(reg)
	}
	e.obsReg = reg
}
