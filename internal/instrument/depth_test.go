package instrument

import (
	"strings"
	"testing"

	"deltapath/internal/cha"
	"deltapath/internal/core"
	"deltapath/internal/cpt"
	"deltapath/internal/encoding"
	"deltapath/internal/lang"
	"deltapath/internal/minivm"
)

// runDepth runs a program under the depth-tracking encoder with decode
// verification at every emit in analysed code.
func runDepth(t *testing.T, src string, seed uint64) *DepthEncoder {
	t.Helper()
	prog := lang.MustParse(src)
	build, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(build, res.Spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewDepthEncoder(plan)
	vm, err := minivm.NewVM(prog, seed)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(plan.InstrumentedMethods())
	vm.SetProbeDynamic(true) // the scheme's requirement
	dec := encoding.NewDecoder(res.Spec)
	checked := 0
	vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
		node, known := build.NodeOf[m]
		if !known {
			return
		}
		st := enc.State().Snapshot()
		names, err := dec.DecodeNames(st, node)
		if err != nil {
			t.Fatalf("decode at %s: %v", m, err)
		}
		var truth []string
		for _, f := range v.Stack() {
			if _, ok := build.NodeOf[f]; ok {
				truth = append(truth, f.String())
			}
		}
		var got []string
		for _, n := range names {
			if n != "..." {
				got = append(got, n)
			}
		}
		if strings.Join(got, ">") != strings.Join(truth, ">") {
			t.Fatalf("depth-tracking decode mismatch at %s:\n got  %v\n want %v", m, names, truth)
		}
		checked++
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no contexts verified")
	}
	if d := enc.State().Depth(); d != 1 {
		t.Fatalf("stack unbalanced after run: depth %d", d)
	}
	if enc.depth != 0 {
		t.Fatalf("dynamic depth counter unbalanced: %d", enc.depth)
	}
	return enc
}

const depthProgram = `
entry A.main
class A {
  method main {
    load X
    loop 6 { vcall D.impl }
    call E.run
    emit top
  }
}
class D { method impl { emit d } }
class E { method run { emit e } }
dynamic class X extends D {
  method impl { call E.run; call D.impl; emit x }
}
`

func TestDepthTrackingRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		runDepth(t, depthProgram, seed)
	}
}

func TestDepthTrackingDetectsAllUCPs(t *testing.T) {
	enc := runDepth(t, depthProgram, 1)
	if enc.Hazards == 0 {
		t.Fatal("no UCPs detected despite dynamic dispatch")
	}
}

// TestDepthTrackingStricterThanCPT: depth tracking has no benign case, so
// it pushes at least as often as call path tracking on the same trace.
func TestDepthTrackingStricterThanCPT(t *testing.T) {
	prog := lang.MustParse(depthProgram)
	build, err := cha.Build(prog, cha.Options{KeepUnreachable: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	planCPT, err := NewPlan(build, res.Spec, cpt.Compute(build.Graph))
	if err != nil {
		t.Fatal(err)
	}
	cptEnc := NewEncoder(planCPT)
	vm, err := minivm.NewVM(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(cptEnc)
	vm.SetInstrumented(planCPT.InstrumentedMethods())
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}

	depthEnc := runDepth(t, depthProgram, 1)
	if depthEnc.Hazards < cptEnc.Hazards {
		t.Fatalf("depth tracking pushed %d times, CPT %d — depth tracking cannot push less",
			depthEnc.Hazards, cptEnc.Hazards)
	}
	t.Logf("pushes: depth tracking %d, call path tracking %d", depthEnc.Hazards, cptEnc.Hazards)
}

// TestDepthTrackingSelectiveEncoding: under the encoding-application
// setting the excluded library must carry depth counters (unlike call path
// tracking, which leaves it untouched) — and with them, decoding stays
// exact across library gaps.
func TestDepthTrackingSelectiveEncoding(t *testing.T) {
	src := `
entry A.main
class A { method main { loop 3 { call B.go } emit top } }
class B { method go { call L.lib; emit b } }
library class L { method lib { call C.cb } }
class C { method cb { emit c } }
`
	prog := lang.MustParse(src)
	build, err := cha.Build(prog, cha.Options{Setting: cha.EncodingApplication})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Encode(build.Graph, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(build, res.Spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewDepthEncoder(plan)
	vm, err := minivm.NewVM(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetProbes(enc)
	vm.SetInstrumented(nil) // library entries/exits must count depth
	vm.SetProbeDynamic(true)
	dec := encoding.NewDecoder(res.Spec)
	sawGap := false
	vm.OnEmit = func(v *minivm.VM, m minivm.MethodRef, _ string) {
		node, known := build.NodeOf[m]
		if !known {
			return
		}
		names, err := dec.DecodeNames(enc.State().Snapshot(), node)
		if err != nil {
			t.Fatalf("decode at %s: %v", m, err)
		}
		var truth []string
		for _, f := range v.Stack() {
			if _, ok := build.NodeOf[f]; ok {
				truth = append(truth, f.String())
			}
		}
		var got []string
		for _, n := range names {
			if n == "..." {
				sawGap = true
				continue
			}
			got = append(got, n)
		}
		if strings.Join(got, ">") != strings.Join(truth, ">") {
			t.Fatalf("mismatch at %s: got %v want %v", m, names, truth)
		}
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawGap {
		t.Fatal("library gap never appeared in decoded contexts")
	}
	if enc.Hazards == 0 {
		t.Fatal("library call-back not detected")
	}
}
